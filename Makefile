# Developer entry points. `make check` is the gate every change must pass:
# it enforces the harness/engine race-safety guarantees (-race on the
# packages with concurrent paths) on top of the tier-1 build+test suite.

GO ?= go

.PHONY: check vet build test race short bench benchcmp trace-gate store-gate serve-gate par-gate load-gate obs-gate policy-gate cluster-gate bench-serve

check: vet build race short trace-gate store-gate serve-gate par-gate load-gate obs-gate policy-gate cluster-gate

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Race-detect the concurrent layers: the memoizing runner and the event
# engine. Kept separate from `short` so the (slower) instrumented run only
# covers the packages with goroutines.
race:
	$(GO) test -race ./internal/harness/ ./internal/sim/

# The short-scale suite across every package.
short:
	$(GO) test -short ./...

# Trace overhead gate: tracing disabled must stay allocation-free on the
# per-access hot path (a nil Recorder is one pointer compare), and a traced
# end-to-end run must keep producing valid output from every machine layer.
trace-gate:
	$(GO) test -run 'TestGETMStepAllocs|TestTxLogHotPathAllocs|TestEmitDisabledZeroAlloc' ./internal/core/ ./internal/tm/ ./internal/trace/
	$(GO) test -run 'TestTraceSmoke' ./cmd/getm-sim/

# Persistence & cancellation gate: stored metrics must round-trip exactly
# (bit-flips and truncation read as misses, never as data), a resumed sweep
# must simulate only the missing cells with byte-identical reports, and a
# context cancel must stop the engine within one chunk of cycles.
store-gate:
	$(GO) test -run 'TestStore|TestKey|TestLoadDir' ./internal/store/
	$(GO) test -run 'TestRunnerStore|TestResume|TestRunnerCanceled' ./internal/harness/
	$(GO) test -run 'TestCancelLatency|TestRunContext|TestCycleBudget|TestChunkedRun' ./internal/gpu/
	$(GO) test -run 'TestStoreResume' ./cmd/getm-sim/

# Serving gate: the HTTP service's concurrency guarantees under the race
# detector — load shedding (429 + Retry-After), readiness flips, graceful
# and forced drain, identical submissions collapsing onto one simulation,
# and ids resolving from the store across restarts.
serve-gate:
	$(GO) test -race ./internal/serve/ ./cmd/getm-serve/

# Parallel-engine gate: the sharded engine must match the serial reference
# event-for-event across thousands of randomized schedules, survive
# stop/resume at every window, and produce machine-level results identical
# across worker counts — all under the race detector. BENCH_parallel.json
# records the recorded timings (regenerate with `make bench-parallel`).
par-gate:
	$(GO) test -race -run 'TestSharded|TestEngineStopEveryEvent|TestEngineRunLimitClamp|TestReopenedGate|TestRolloverResumes' ./internal/sim/ ./internal/simt/ ./internal/gpu/
	$(GO) test -run 'TestShardClassIdentity' ./internal/harness/

test:
	$(GO) test ./...

# Perf baselines (see BENCH_harness.json / BENCH_hotpath.json for recorded
# numbers).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngine' -benchmem ./internal/sim/
	$(GO) test -run xxx -bench 'BenchmarkSuite' -benchtime 1x .

# Serve-path SLO gate: a sustained dedupe-heavy zipfian run against a live
# in-process server must hold the latency and shed-rate SLOs. Runs on every
# `make check`, so a serving-path regression fails the gate, not just a
# benchmark diff.
load-gate:
	$(GO) run ./cmd/getm-load -mix dedupe-heavy -duration 1500ms -clients 4 \
		-batch 16 -keys 8 -scale 0.02 -slo-p99 250ms -slo-shed 0.01 -out /dev/null

# Observability gate: spans disabled must cost zero allocations on the
# serving hot path (the nil-recorder pointer compare, stage accounting, and
# per-client counters are all alloc-gated); the live /metrics scrape must
# pass the Prometheus-conventions lint and pin its Content-Type; the
# X-Getm-Timings header must round-trip against /v1/runs/{id}/timings; the
# span recorder must lose nothing under -race; and getm-top must render a
# frame from a canned scrape.
obs-gate:
	$(GO) test -run 'TestSpanDisabledZeroAlloc|TestSpanEnabledEmitZeroAlloc|TestMetricsLintConventions|TestMetricsContentType|TestTimingsHeader|TestSpanExportFormats|TestSpanInternBounded' ./internal/serve/
	$(GO) test -race -run 'TestSpanRecorderConcurrentNoLoss' ./internal/serve/
	$(GO) test -run 'TestPrecomputeProgress|TestRunnerTraceSink' ./internal/harness/
	$(GO) test ./cmd/getm-top/

# Policy-matrix gate: the four paper protocols selected as matrix presets
# must stay bit-identical to name selection (golden fingerprints, seed
# differential, golden store addresses), every invalid combination must be
# rejected on all three surfaces (API errors.Is, CLI exit 2, serve 400),
# and the assembled lifecycle engine must stay race-clean.
policy-gate:
	$(GO) test -short ./internal/policy/
	$(GO) test -race -run 'TestPresetFingerprints|TestNonPresetPointsRun' ./internal/policy/
	$(GO) test -run 'TestKeyStabilityAcrossPolicyRedesign|TestKeyNonPresetPolicies' ./internal/store/
	$(GO) test -run 'TestPoliciesEnumeration|TestParsePolicy|TestRunInvalidPolicy|TestRunExperimentInvalidPolicy|TestRunPolicyPresetIdentity' .
	$(GO) test -run 'TestPolicyFlag|TestPolicyPresetSharesStoreRecord' ./cmd/getm-sim/
	$(GO) test -run 'TestPolicyGrid|TestPolicyFlagErrors' ./cmd/getm-sweep/
	$(GO) test -run 'TestSubmitPolicy|TestPolicyMetricsLabel' ./internal/serve/

# Cluster gate: the distributed sweep fabric under the race detector — an
# in-process 3-node cluster (coordinator + workers) must shard a full paper
# grid byte-identically to a single node, survive a worker killed mid-sweep
# without re-simulating completed cells, hedge slow owners, fail over from
# dead ones, steal from saturated ones, and sync store records across nodes;
# plus the flag-level end-to-end run through cmd/getm-serve.
cluster-gate:
	$(GO) test -race -run 'TestCluster' ./internal/serve/
	$(GO) test -race -run 'TestServeCluster' ./cmd/getm-serve/

# Serve-path throughput baselines (recorded in BENCH_serve.json): both
# traffic mixes against the per-request-write baseline server and the
# coalesced one, with the dedupe-heavy speedup as the headline number.
# -spans adds the server's own stage breakdown (server_*_ms) next to the
# client-observed latency in the coalesced arms.
bench-serve:
	$(GO) run ./cmd/getm-load -compare -spans -duration 3s -clients 4 -batch 16 \
		-keys 8 -scale 0.02 -out BENCH_serve.json

# Parallel-engine timings (recorded in BENCH_parallel.json).
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkShardedWindows' -benchtime 5x ./internal/sim/
	$(GO) test -run xxx -bench 'BenchmarkRunEngines' -benchtime 3x ./internal/gpu/

# Compare two saved bench runs. Capture each side with e.g.
#   $(GO) test -run xxx -bench . -benchmem ./... > /tmp/old.txt
# then:
#   make benchcmp OLD=/tmp/old.txt NEW=/tmp/new.txt
# cmd/benchdiff is stdlib-only: it averages repeated runs per benchmark and
# prints ns/op, B/op, allocs/op deltas as percentages.
benchcmp:
	@test -n "$(OLD)" -a -n "$(NEW)" || { echo "usage: make benchcmp OLD=<old.txt> NEW=<new.txt>"; exit 2; }
	$(GO) run ./cmd/benchdiff $(OLD) $(NEW)
