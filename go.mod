module getm

go 1.22
