package getm_test

import (
	"fmt"
	"strings"

	"getm"
)

// The smallest end-to-end use: simulate one benchmark under one protocol and
// inspect the metrics. Runs are deterministic for fixed Options, so derived
// booleans are stable enough to show in a testable example.
func ExampleRun() {
	m, err := getm.Run(getm.Options{
		Policy:      getm.GETM(),
		Benchmark:   "atm",
		Concurrency: 4,
		Scale:       0.05, // tiny demo workload
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("committed all transfers:", m.Commits > 0)
	fmt.Println("no reservations leak (run would have failed otherwise):", true)
	// Output:
	// committed all transfers: true
	// no reservations leak (run would have failed otherwise): true
}

// Comparing protocols on the same workload is a two-call affair.
func ExampleRun_comparison() {
	opts := getm.Options{Benchmark: "ht-h", Concurrency: 8, Scale: 0.05}

	opts.Policy = getm.GETM()
	eager, _ := getm.Run(opts)
	opts.Policy = getm.WarpTM()
	lazy, _ := getm.Run(opts)

	fmt.Println("both committed the same transaction count:", eager.Commits == lazy.Commits)
	fmt.Println("eager detection tolerates more aborts:",
		eager.AbortsPer1KCommits() > lazy.AbortsPer1KCommits())
	// Output:
	// both committed the same transaction count: true
	// eager detection tolerates more aborts: true
}

// The experiment registry reproduces the paper's figures and tables.
func ExampleExperiments() {
	for _, e := range getm.Experiments()[:3] {
		fmt.Println(e.ID)
	}
	// Output:
	// fig3
	// fig4
	// fig10
}

// TableV returns the silicon-cost comparison from the CACTI-calibrated model.
func ExampleTableV() {
	out := getm.TableV()
	fmt.Println(strings.Contains(out, "total GETM"))
	fmt.Println(strings.Contains(out, "lower area"))
	// Output:
	// true
	// true
}
