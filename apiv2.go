package getm

// The context-aware v2 experiment API. Everything here is additive: the v1
// entry points (Run, RunExperiment) remain as thin wrappers, and future
// releases may add Options fields and functional options but will not change
// the meaning of existing ones.

import (
	"context"
	"errors"
	"fmt"

	"getm/internal/harness"
	"getm/internal/store"
)

// expConfig collects the functional options for RunExperimentContext.
type expConfig struct {
	scale    float64
	workers  int
	storeDir string
	resume   bool
	shards   int
	policy   Policy
}

// Option configures RunExperimentContext.
type Option func(*expConfig)

// WithScale sets the workload scale (1.0 = full reproduction scale).
// Non-positive values mean 1.0.
func WithScale(s float64) Option {
	return func(c *expConfig) {
		if s > 0 {
			c.scale = s
		}
	}
}

// WithWorkers precomputes the experiment grid on n parallel workers before
// assembling the report (n <= 1 runs everything sequentially on demand).
// Simulations are deterministic and deduplicated, so the worker count changes
// wall-clock time only, never results.
func WithWorkers(n int) Option {
	return func(c *expConfig) { c.workers = n }
}

// WithStore attaches a durable result store at dir: completed simulations are
// persisted crash-safely, and cells already present (from this or any earlier
// process) are reused instead of re-simulated, so an interrupted experiment
// resumed against the same dir re-runs only the missing cells and renders a
// byte-identical report. An unwritable dir degrades to no persistence rather
// than failing. Corrupt or truncated records are detected and re-simulated.
func WithStore(dir string) Option {
	return func(c *expConfig) {
		c.storeDir = dir
		c.resume = true
	}
}

// WithShards runs each shardable simulation cell (getm and fglock
// protocols) on the domain-partitioned parallel engine with n worker
// goroutines; n <= 0 keeps the serial engine. Sharded results are
// deterministic and identical for every n >= 1 — the worker count is
// physical, not semantic — but serial and sharded runs are distinct
// semantics classes and are cached and stored separately (DESIGN.md §10).
// Cells the parallel engine cannot host fall back to serial.
func WithShards(n int) Option {
	return func(c *expConfig) {
		if n > 0 {
			c.shards = n
		}
	}
}

// WithPolicy pins every transactional simulation cell of the experiment
// grid to one protocol-matrix point (the fglock cells are untouched — locks
// are not a TM policy). Pinning a preset — WithPolicy(GETM()) and so on —
// changes nothing versus the protocol's name-based cells, including store
// content addresses; pinning any other point from Policies() re-runs the
// experiment's protocol rows under that point, which collapses
// protocol-comparison experiments to a single behaviour by design. Invalid
// combinations fail RunExperimentContext with an error matching
// ErrInvalidPolicy.
func WithPolicy(p Policy) Option {
	return func(c *expConfig) { c.policy = p }
}

// RunExperimentContext regenerates one of the paper's figures or tables
// (see Experiments) and returns the rendered report, honouring ctx: a cancel
// or deadline stops in-flight simulations within one chunk of simulated
// cycles and returns an error matching ErrCanceled. Unknown ids return an
// error matching ErrUnknownExperiment.
func RunExperimentContext(ctx context.Context, id string, opts ...Option) (string, error) {
	c := expConfig{scale: 1}
	for _, o := range opts {
		o(&c)
	}

	e, ok := harness.ByID(id)
	if !ok {
		return "", fmt.Errorf("%w %q (want one of %v)", ErrUnknownExperiment, id, experimentIDs())
	}
	if !c.policy.IsZero() {
		if err := c.policy.Validate(); err != nil {
			return "", fmt.Errorf("getm: experiment %s: %w", id, err)
		}
	}

	r := harness.NewRunner(c.scale)
	r.Ctx = ctx
	r.Shards = c.shards
	r.Policy = c.policy.internal()
	if c.storeDir != "" {
		r.Store = store.Open(c.storeDir)
		r.StoreReuse = c.resume
	}
	if c.workers > 1 {
		// Precompute failures are recorded in r.Err(); cancellation is
		// detected below and other failures degrade to zero rows, exactly
		// like the sequential path.
		_ = harness.Precompute(r, c.workers)
		if err := ctx.Err(); err != nil {
			return "", fmt.Errorf("getm: experiment %s: %w", id, errors.Join(ErrCanceled, context.Cause(ctx)))
		}
	}

	out := e.Run(r).String()
	if err := r.Err(); errors.Is(err, ErrCanceled) {
		return "", fmt.Errorf("getm: experiment %s: %w", id, err)
	}
	return out, nil
}
