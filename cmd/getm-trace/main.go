// getm-trace replays the paper's Fig 7 walkthrough against a real GETM
// validation unit and prints every protocol event and metadata transition:
// two conflicting bank-transfer transactions (tx1 moves A→B at logical time
// 20, tx2 moves B→A at logical time 10), showing eager WAR detection, abort
// cleanup, warpts advancement, stall-buffer queueing, and the off-critical-
// path commit releasing the queued access.
//
// The events come from the machine-wide trace recorder (internal/trace) —
// the same records a full-machine `getm-sim -trace` run captures — drained
// and pretty-printed after every step.
package main

import (
	"fmt"

	"getm/internal/core"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/trace"
)

// Accounts A and B live in distinct 32-byte granules.
const (
	addrA = uint64(0x100)
	addrB = uint64(0x200)
)

// printer pretty-prints the recorder's core-source events as they appear.
type printer struct {
	cfg     core.Config
	rec     *trace.Recorder
	printed int
}

func (p *printer) name(granule uint64) string {
	switch granule {
	case p.cfg.GranuleOf(addrA):
		return "A"
	case p.cfg.GranuleOf(addrB):
		return "B"
	}
	return fmt.Sprintf("%#x", granule*uint64(p.cfg.GranularityBytes))
}

// drain prints the events recorded since the last call.
func (p *printer) drain() {
	evs := p.rec.Events(trace.SrcCore)
	for _, e := range evs[p.printed:] {
		switch e.Kind {
		case trace.KVURequest:
			kind := "LD"
			if e.D != 0 {
				kind = "ST"
			}
			fmt.Printf("  VU%d <- %s %s @ warpts %d (tx%d)\n",
				e.Unit, kind, p.name(p.cfg.GranuleOf(e.A)), e.B, e.C)
		case trace.KVUOutcome:
			outcome, cause, writes, owner := trace.UnpackVUOutcome(e.D)
			detail := ""
			if outcome == trace.VUAbort {
				detail = fmt.Sprintf(" (%s)", tm.AbortCause(cause))
			}
			fmt.Printf("  VU%d -> %-7s%s   [%s: wts=%d rts=%d #writes=%d owner=tx%d]\n",
				e.Unit, trace.VUOutcomeString(outcome), detail,
				p.name(p.cfg.GranuleOf(e.A)), e.B, e.C, writes, owner)
		case trace.KVURelease:
			action := "commit"
			if e.C == 0 {
				action = "cleanup"
			}
			fmt.Printf("  VU%d %s releases %s (#writes now %d)\n",
				e.Unit, action, p.name(e.A), e.B)
		}
	}
	p.printed = len(evs)
}

func main() {
	eng := sim.NewEngine()
	img := mem.NewImage()
	img.Write(addrA, 1000) // account A balance
	img.Write(addrB, 500)  // account B balance

	pcfg := mem.DefaultPartitionConfig()
	pcfg.LLCBytes = 16 << 10
	part := mem.NewPartition(0, eng, img, pcfg)
	cfg := core.DefaultConfig()
	vu := core.NewVU(cfg, eng, part, 256, 64, sim.NewRNG(1))
	cu := core.NewCU(cfg, eng, part, vu)
	rec := trace.NewRecorder(eng, trace.Options{Sources: trace.MaskOf(trace.SrcCore), RingSize: 4096})
	vu.SetTrace(rec)
	cu.SetTrace(rec)
	pr := &printer{cfg: cfg, rec: rec}

	step := func(title string, fn func()) {
		fmt.Printf("\n%s\n", title)
		eng.Schedule(0, fn)
		eng.Run(0)
		pr.drain()
	}
	access := func(gwid int, ts uint64, addr uint64, isWrite bool, onReply func(core.Reply)) {
		vu.Submit(&core.Request{GWID: gwid, Warpts: ts, Addr: addr, IsWrite: isWrite,
			Reply: func(r core.Reply) {
				if onReply != nil {
					onReply(r)
				}
			}})
	}

	fmt.Println("GETM Fig 7 walkthrough: tx1 (A->B, warpts 20) vs tx2 (B->A, warpts 10)")
	fmt.Printf("initial balances: A=%d B=%d\n", img.Read(addrA), img.Read(addrB))

	step("tx1 loads and stores A (rts(A)=20, then locked with wts=21):", func() {
		access(1, 20, addrA, false, nil)
		access(1, 20, addrA, true, nil)
	})

	step("tx2 loads and stores B (rts(B)=10, then locked with wts=11):", func() {
		access(2, 10, addrB, false, nil)
		access(2, 10, addrB, true, nil)
	})

	var abortTS uint64
	step("tx2 reads A — logically older than A's wts, so eager WAR abort:", func() {
		access(2, 10, addrA, false, func(r core.Reply) {
			abortTS = r.AbortTS
			fmt.Printf("  core: tx2 aborted; observed timestamp %d -> restart at warpts %d\n", r.AbortTS, r.AbortTS+1)
		})
	})

	step("tx2's cleanup log releases its reservation on B (no data written):", func() {
		cu.Submit([]core.CommitEntry{{Addr: addrB, Writes: 1, Commit: false}}, nil)
	})

	step("tx1 loads and stores B — succeeds now that tx2's lock is gone:", func() {
		access(1, 20, addrB, false, nil)
		access(1, 20, addrB, true, nil)
	})

	newTS := abortTS + 1
	step(fmt.Sprintf("tx2 restarts at warpts %d; its load of B finds tx1's reservation and queues:", newTS), func() {
		access(2, newTS, addrB, false, func(r core.Reply) {
			fmt.Printf("  core: queued load of B finally replied: value %d\n", r.Value)
		})
	})
	fmt.Printf("  (stall buffer occupancy: %d)\n", vu.Stall.Occupancy())

	step("tx1 commits off the critical path: write log {A-100, B+100} releases both locks,\nwhich wakes tx2's queued load:", func() {
		cu.Submit([]core.CommitEntry{
			{Addr: addrA, Data: 900, Writes: 1, Commit: true},
			{Addr: addrB, Data: 600, Writes: 1, Commit: true},
		}, nil)
	})

	step(fmt.Sprintf("tx2 finishes its transfer B->A at warpts %d and commits:", newTS), func() {
		access(2, newTS, addrB, true, nil)
		access(2, newTS, addrA, false, nil)
		access(2, newTS, addrA, true, nil)
	})
	step("tx2's commit log:", func() {
		cu.Submit([]core.CommitEntry{
			{Addr: addrB, Data: 550, Writes: 1, Commit: true},
			{Addr: addrA, Data: 950, Writes: 1, Commit: true},
		}, nil)
	})

	fmt.Printf("\nfinal balances: A=%d B=%d (sum conserved: %d)\n",
		img.Read(addrA), img.Read(addrB), img.Read(addrA)+img.Read(addrB))
	fmt.Printf("locked granules remaining: %d\n", vu.Meta.LockedEntries())
}
