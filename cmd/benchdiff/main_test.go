package main

import (
	"os"
	"testing"

	"getm/internal/stats"
	"getm/internal/store"
)

// Two store directories must reduce to comparable per-cell metric tables,
// joined by record description.
func TestParseStoreDir(t *testing.T) {
	dir := t.TempDir()
	st := store.Open(dir)
	if err := st.Degraded(); err != nil {
		t.Fatal(err)
	}

	mk := func(cycles, commits uint64) *stats.Metrics {
		m := stats.NewMetrics()
		m.TotalCycles = cycles
		m.TxExecCycles = cycles / 2
		m.TxWaitCycles = cycles / 4
		m.Commits = commits
		m.Aborts = commits / 10
		m.XbarUpBytes = 1000
		m.XbarDownBytes = 500
		return m
	}
	if err := st.Put("aaaa", "getm/ht-h", mk(5000, 400)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("bbbb", "getm/atm", mk(8000, 900)); err != nil {
		t.Fatal(err)
	}

	got, order, err := parseStoreDir(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("got %d cells, want 2 (%v)", len(order), order)
	}
	// LoadDir sorts by description.
	if order[0] != "getm/atm" || order[1] != "getm/ht-h" {
		t.Fatalf("unexpected cell order %v", order)
	}
	if v := got[metricKey{"getm/ht-h", "cycles"}]; v != 5000 {
		t.Fatalf("ht-h cycles = %v, want 5000", v)
	}
	if v := got[metricKey{"getm/atm", "commits"}]; v != 900 {
		t.Fatalf("atm commits = %v, want 900", v)
	}
	if v := got[metricKey{"getm/ht-h", "xbar-B"}]; v != 1500 {
		t.Fatalf("ht-h xbar bytes = %v, want 1500", v)
	}
}

// A store directory and a flat file must be mutually unmixable but each
// parseable on its own; here we only pin the directory detector.
func TestIsDir(t *testing.T) {
	dir := t.TempDir()
	if !isDir(dir) {
		t.Error("isDir(tempdir) = false")
	}
	if isDir(dir + "/missing") {
		t.Error("isDir(missing) = true")
	}
}

// A recorded-baseline JSON must flatten to one metric per numeric leaf,
// keyed by its object path, with prose fields skipped — and parseFile must
// sniff the format from the leading brace.
func TestParseBenchJSON(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	body := `{
  "description": "prose, not a metric",
  "recorded": "2026-08-08",
  "machine": {
    "bench_cmd": "go test ...",
    "serial_ns_per_op": 100,
    "sharded_w2_ns_per_op": 150,
    "nested": {"deep_value": 7}
  }
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, order, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m[metricKey{"machine", "serial_ns_per_op"}]; got != 100 {
		t.Fatalf("serial_ns_per_op = %v, want 100", got)
	}
	if got := m[metricKey{"machine.nested", "deep_value"}]; got != 7 {
		t.Fatalf("deep_value = %v, want 7", got)
	}
	if _, ok := m[metricKey{"(top)", "description"}]; ok {
		t.Fatal("prose field leaked into metrics")
	}
	if len(order) != 2 {
		t.Fatalf("order = %v, want [machine machine.nested]", order)
	}
}

// Arrays flatten too: numeric elements key by index, object elements by
// positional path, so per-stage series recorded as JSON arrays diff
// element by element against a same-shape baseline.
func TestParseBenchJSONArrays(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	body := `{
  "series": [10, 20, 30],
  "stages": [
    {"name": "queue", "p99_ms": 1.5},
    {"name": "sim", "p99_ms": 9.9}
  ],
  "grid": [[1, 2], [3, 4]]
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	m, _, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[metricKey]float64{
		{"series", "[0]"}:       10,
		{"series", "[2]"}:       30,
		{"stages[0]", "p99_ms"}: 1.5,
		{"stages[1]", "p99_ms"}: 9.9,
		{"grid[1]", "[0]"}:      3,
	}
	for key, want := range checks {
		got, ok := m[key]
		if !ok || got != want {
			t.Errorf("%v.%v = %v (present=%v), want %v", key.bench, key.unit, got, ok, want)
		}
	}
	if _, ok := m[metricKey{"stages[0]", "name"}]; ok {
		t.Fatal("string array element leaked into metrics")
	}
}

// The committed serve-path baseline must stay diffable: every mix arm
// parses to numeric leaves (so `benchdiff BENCH_serve.json <new>` works),
// and the headline dedupe-heavy speedup is present and sane.
func TestParseCommittedServeBaseline(t *testing.T) {
	m, _, err := parseFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("BENCH_serve.json unparseable: %v", err)
	}
	for _, key := range []metricKey{
		{"dedupe_heavy.baseline", "rps"},
		{"dedupe_heavy.coalesced", "rps"},
		{"dedupe_heavy.coalesced", "p99_ms"},
		{"dedupe_heavy.coalesced", "shed_rate"},
		{"dedupe_heavy.coalesced", "server_p99_ms"},
		{"dedupe_heavy.coalesced", "server_sim_p99_ms"},
		{"dedupe_heavy.coalesced", "timings_n"},
		{"dedupe_heavy", "speedup_rps"},
		{"dedupe_free.baseline", "rps"},
		{"dedupe_free.coalesced", "rps"},
		{"config", "batch"},
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("BENCH_serve.json missing metric %v.%v", key.bench, key.unit)
		}
	}
	if sp := m[metricKey{"dedupe_heavy", "speedup_rps"}]; sp < 5 {
		t.Fatalf("recorded dedupe-heavy speedup %.2fx below the 5x claim", sp)
	}
	if rps := m[metricKey{"dedupe_heavy.coalesced", "rps"}]; rps <= 0 {
		t.Fatalf("recorded coalesced rps %v", rps)
	}
	// The recorded baseline must carry the server-reported side of the
	// side-by-side comparison (bench-serve runs with -spans).
	if n := m[metricKey{"dedupe_heavy.coalesced", "timings_n"}]; n <= 0 {
		t.Fatalf("recorded baseline has no server-reported timings (timings_n %v)", n)
	}
}

// -policy narrows a store-dir diff by whole description segments: "warptm"
// must not match a "warptm-el" cell, and canonical tuples match exactly.
func TestMatchesPolicy(t *testing.T) {
	cases := []struct {
		desc, needle string
		want         bool
	}{
		{"warptm/ht-h", "warptm", true},
		{"warptm-el/ht-h", "warptm", false},
		{"warptm/ht-h", "warptm-el", false},
		{"getm|ht-h|c8|n16|m4|g4|b64|s42", "getm", true},
		{"eapg|ht-h|c8|n16|m4|g4|b64|s42", "getm", false},
		{"vm=lazy,cd=eager,res=fww,arb=ring/atm", "vm=lazy,cd=eager,res=fww,arb=ring", true},
		{"vm=lazy,cd=eager,res=fww,arb=ring/atm", "vm=lazy,cd=eager,res=fww,arb=local", false},
		{"getm/ht-h", "ht-h", true}, // segments, not positions: benches filter too
	}
	for _, c := range cases {
		if got := matchesPolicy(c.desc, c.needle); got != c.want {
			t.Errorf("matchesPolicy(%q, %q) = %v, want %v", c.desc, c.needle, got, c.want)
		}
	}
}

// parseStoreDir with a policy filter keeps only matching cells.
func TestParseStoreDirPolicyFilter(t *testing.T) {
	dir := t.TempDir()
	st := store.Open(dir)
	if err := st.Degraded(); err != nil {
		t.Fatal(err)
	}
	mk := func(cycles uint64) *stats.Metrics {
		m := stats.NewMetrics()
		m.TotalCycles = cycles
		m.Commits = 100
		return m
	}
	if err := st.Put("aaaa", "warptm/ht-h", mk(5000)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("bbbb", "warptm-el/ht-h", mk(6000)); err != nil {
		t.Fatal(err)
	}

	got, order, err := parseStoreDir(dir, "warptm")
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "warptm/ht-h" {
		t.Fatalf("filtered cells = %v, want [warptm/ht-h]", order)
	}
	if v := got[metricKey{"warptm/ht-h", "cycles"}]; v != 5000 {
		t.Fatalf("cycles = %v, want 5000", v)
	}
}
