// Command benchdiff compares two `go test -bench` output files and prints
// per-benchmark deltas for every recorded metric (ns/op, B/op, allocs/op,
// and any custom ReportMetric units). It is a deliberately small, stdlib-only
// stand-in for benchstat: no statistics, just the percentage change between
// the two runs — enough to sanity-check a perf PR against a saved baseline.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... > old.txt
//	# ...make changes...
//	go test -run xxx -bench . -benchmem ./... > new.txt
//	benchdiff old.txt new.txt
//
// When a benchmark appears multiple times in one file (e.g. -count=N), the
// metric values are averaged before comparison.
//
// It also diffs interval-sample CSVs produced by `getm-sim -trace x.csv
// -trace-format csv`: a file whose first line starts with "cycle," is parsed
// as a time series, and each column is reduced to its max and mean before
// the same percentage comparison. The two input files may be of different
// kinds, but comparing a bench output against a sample CSV yields no common
// series.
//
// And it diffs result stores: when both arguments are directories, each is
// loaded as a getm result store (the `-store DIR` of getm-sim/-sweep/-bench)
// and the cells are compared pairwise by their descriptions — cycles, tx
// exec/wait, commits, aborts, crossbar bytes per cell. That turns two stored
// campaigns (say, before and after a protocol change) into one delta table:
//
//	getm-bench -scale 0.25 -store runs/base all
//	# ...make changes...
//	getm-bench -scale 0.25 -store runs/tuned all
//	benchdiff runs/base runs/tuned
//
// Store-dir diffs can be narrowed to one protocol-policy point with
// -policy (a preset name like "getm" or an axis list like
// "vm=lazy,cd=eager,res=fww,arb=ring"): only cells whose description names
// that point are compared, so a matrix campaign diffs one policy at a time:
//
//	getm-sweep -policy-grid -store runs/base
//	# ...make changes...
//	getm-sweep -policy-grid -store runs/tuned
//	benchdiff -policy vm=lazy,cd=eager,res=fww,arb=ring runs/base runs/tuned
//
// Finally it diffs the repo's recorded perf baselines (BENCH_*.json): a file
// whose first byte is "{" is parsed as JSON, every numeric leaf becomes a
// metric keyed by its object path, and strings (descriptions, hostnames,
// dates) are ignored. Comparing a fresh capture against the committed
// baseline turns "did this change regress the parallel engine?" into one
// table:
//
//	benchdiff BENCH_parallel.json /tmp/new-parallel.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"getm/internal/policy"
	"getm/internal/store"
)

// metricKey identifies one measured series: a benchmark plus a unit.
type metricKey struct {
	bench string
	unit  string
}

// parseFile extracts metric sums and sample counts from one bench output or
// interval-sample CSV (sniffed by its "cycle,..." header line).
func parseFile(path string) (map[metricKey]float64, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()

	sums := map[metricKey]float64{}
	counts := map[metricKey]int{}
	var order []string
	seen := map[string]bool{}

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	first := true
	for sc.Scan() {
		if first {
			first = false
			if strings.HasPrefix(sc.Text(), "cycle,") {
				return parseSampleCSV(sc)
			}
			if strings.HasPrefix(strings.TrimSpace(sc.Text()), "{") {
				return parseBenchJSON(path)
			}
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		// fields[1] is the iteration count; metrics follow as "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			k := metricKey{bench: name, unit: fields[i+1]}
			sums[k] += v
			counts[k]++
		}
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	for k := range sums {
		sums[k] /= float64(counts[k])
	}
	return sums, order, nil
}

// parseSampleCSV reduces each time-series column of an interval-sample CSV
// to two metrics — its max and its mean over the run — keyed by the series
// name. The scanner is positioned on the header line when called.
func parseSampleCSV(sc *bufio.Scanner) (map[metricKey]float64, []string, error) {
	names := strings.Split(sc.Text(), ",")[1:] // drop the "cycle" column
	maxs := make([]float64, len(names))
	sums := make([]float64, len(names))
	rows := 0
	for sc.Scan() {
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(names)+1 {
			continue
		}
		rows++
		for i, s := range fields[1:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				continue
			}
			sums[i] += v
			if rows == 1 || v > maxs[i] {
				maxs[i] = v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := map[metricKey]float64{}
	for i, name := range names {
		out[metricKey{bench: name, unit: "max"}] = maxs[i]
		if rows > 0 {
			out[metricKey{bench: name, unit: "mean"}] = sums[i] / float64(rows)
		}
	}
	return out, names, nil
}

// parseBenchJSON flattens a recorded-baseline file (BENCH_*.json) into
// metrics: every numeric leaf is keyed by the path of objects holding it
// (bench) and its own field name (unit); non-numeric leaves are prose and
// are skipped. Two baselines of the same shape therefore line up leaf by
// leaf whatever their nesting.
func parseBenchJSON(path string) (map[metricKey]float64, []string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var root map[string]any
	if err := json.Unmarshal(b, &root); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[metricKey]float64{}
	var order []string
	seen := map[string]bool{}
	leaf := func(prefix, field string, v float64) {
		bench := prefix
		if bench == "" {
			bench = "(top)"
		}
		out[metricKey{bench, field}] = v
		if !seen[bench] {
			seen[bench] = true
			order = append(order, bench)
		}
	}
	join := func(prefix, k string) string {
		if prefix == "" {
			return k
		}
		return prefix + "." + k
	}
	var walk func(prefix string, node map[string]any)
	var walkArr func(prefix string, arr []any)
	// Array elements key by position — "series[3]" — so two baselines with
	// the same series lengths line up element by element; a numeric element
	// is a leaf whose unit is its index.
	walkArr = func(prefix string, arr []any) {
		for i, e := range arr {
			switch v := e.(type) {
			case float64:
				leaf(prefix, fmt.Sprintf("[%d]", i), v)
			case map[string]any:
				walk(fmt.Sprintf("%s[%d]", prefix, i), v)
			case []any:
				walkArr(fmt.Sprintf("%s[%d]", prefix, i), v)
			}
		}
	}
	walk = func(prefix string, node map[string]any) {
		keys := make([]string, 0, len(node))
		for k := range node {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := node[k].(type) {
			case float64:
				leaf(prefix, k, v)
			case map[string]any:
				walk(join(prefix, k), v)
			case []any:
				walkArr(join(prefix, k), v)
			}
		}
	}
	walk("", root)
	return out, order, nil
}

// parseStoreDir reduces every record of a result store to its headline
// metrics, keyed by the record's description (the runner's job key or the
// CLI's proto/bench label). Corrupt records are skipped by LoadDir, exactly
// as the runners themselves would skip them. A non-empty polFilter keeps
// only cells whose description names that policy point (see matchesPolicy).
func parseStoreDir(dir, polFilter string) (map[metricKey]float64, []string, error) {
	recs, err := store.LoadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	out := map[metricKey]float64{}
	var order []string
	for _, rec := range recs {
		name := rec.Desc
		if name == "" {
			name = rec.Key
		}
		if polFilter != "" && !matchesPolicy(name, polFilter) {
			continue
		}
		m := rec.Metrics
		out[metricKey{name, "cycles"}] = float64(m.TotalCycles)
		out[metricKey{name, "tx-exec"}] = float64(m.TxExecCycles)
		out[metricKey{name, "tx-wait"}] = float64(m.TxWaitCycles)
		out[metricKey{name, "commits"}] = float64(m.Commits)
		out[metricKey{name, "aborts"}] = float64(m.Aborts)
		out[metricKey{name, "xbar-B"}] = float64(m.XbarBytes())
		order = append(order, name)
	}
	return out, order, nil
}

// trimProcSuffix drops the -GOMAXPROCS suffix so runs from machines with
// different CPU counts still line up.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// unitRank orders metrics within one benchmark: time, then space, then the
// rest alphabetically.
func unitRank(unit string) int {
	switch unit {
	case "ns/op":
		return 0
	case "B/op":
		return 1
	case "allocs/op":
		return 2
	}
	return 3
}

// matchesPolicy reports whether a store record's description names the given
// policy point. Descriptions are segment-structured — harness job keys are
// "|"-separated ("getm|ht-h|c8|…", with the canonical tuple as its own
// segment for non-preset points), CLI descriptions "/"-separated
// ("getm/ht-h", "vm=…,arb=ring/atm") — so the filter compares whole
// segments, never substrings: "-policy warptm" cannot match a warptm-el
// cell.
func matchesPolicy(desc, needle string) bool {
	for _, seg := range strings.FieldsFunc(desc, func(r rune) bool { return r == '|' || r == '/' }) {
		if seg == needle {
			return true
		}
	}
	return false
}

func main() {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	policyFlag := fs.String("policy", "", "store-dir mode: compare only cells of this protocol-matrix point (preset name or axis list)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-policy POINT] <old-bench-output|store-dir> <new-bench-output|store-dir>\n", os.Args[0])
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	args := fs.Args()
	if len(args) != 2 {
		fs.Usage()
		os.Exit(2)
	}
	polFilter := ""
	if *policyFlag != "" {
		p, err := policy.Parse(*policyFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		polFilter = p.String()
	}
	oldDir, newDir := isDir(args[0]), isDir(args[1])
	if oldDir != newDir {
		fmt.Fprintln(os.Stderr, "benchdiff: cannot compare a store directory against a file")
		os.Exit(2)
	}
	if polFilter != "" && !oldDir {
		fmt.Fprintln(os.Stderr, "benchdiff: -policy filters result-store cells; both arguments must be store directories")
		os.Exit(2)
	}
	parse := func(path string) (map[metricKey]float64, []string, error) { return parseFile(path) }
	if oldDir {
		parse = func(path string) (map[metricKey]float64, []string, error) { return parseStoreDir(path, polFilter) }
	}
	oldM, oldOrder, err := parse(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newM, newOrder, err := parse(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}

	// Benchmarks in old-file order, then any new-only ones.
	inOld := map[string]bool{}
	for _, b := range oldOrder {
		inOld[b] = true
	}
	benches := append([]string{}, oldOrder...)
	for _, b := range newOrder {
		if !inOld[b] {
			benches = append(benches, b)
		}
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, b := range benches {
		var units []string
		for k := range oldM {
			if k.bench == b {
				units = append(units, k.unit)
			}
		}
		for k := range newM {
			if k.bench == b {
				if _, ok := oldM[k]; !ok {
					units = append(units, k.unit)
				}
			}
		}
		sort.Slice(units, func(i, j int) bool {
			if r1, r2 := unitRank(units[i]), unitRank(units[j]); r1 != r2 {
				return r1 < r2
			}
			return units[i] < units[j]
		})
		for _, u := range units {
			ov, haveOld := oldM[metricKey{b, u}]
			nv, haveNew := newM[metricKey{b, u}]
			switch {
			case haveOld && haveNew:
				fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", b, u, fmtVal(ov), fmtVal(nv), fmtDelta(ov, nv))
			case haveOld:
				fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", b, u, fmtVal(ov), "-", "gone")
			default:
				fmt.Fprintf(w, "%-44s %-10s %14s %14s %9s\n", b, u, "-", fmtVal(nv), "new")
			}
		}
	}
}

// isDir reports whether path names an existing directory.
func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// fmtVal prints a metric value without trailing decimal noise.
func fmtVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// fmtDelta prints the relative change from old to new.
func fmtDelta(oldV, newV float64) string {
	if oldV == 0 {
		if newV == 0 {
			return "0.0%"
		}
		return "+inf%"
	}
	return fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
}
