// getm-sim runs one benchmark on one protocol and prints its metrics.
//
// Usage:
//
//	getm-sim -bench ht-h -proto getm [-conc 8] [-scale 1.0] [-cores 15] [-verbose]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"getm/internal/gpu"
	"getm/internal/workloads"
)

func main() {
	bench := flag.String("bench", "ht-h", "benchmark name ("+fmt.Sprint(workloads.Names())+")")
	proto := flag.String("proto", "getm", "protocol: getm, warptm, warptm-el, eapg, fglock")
	conc := flag.Int("conc", 0, "max concurrent tx warps per core (0 = unlimited)")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	cores := flag.Int("cores", 15, "SIMT core count (15 or 56 for the paper's configs)")
	seed := flag.Uint64("seed", 42, "workload seed")
	verbose := flag.Bool("verbose", false, "print extra counters")
	flag.Parse()

	var cfg gpu.Config
	if *cores == 56 {
		cfg = gpu.ScaledConfig(gpu.Protocol(*proto))
	} else {
		cfg = gpu.DefaultConfig(gpu.Protocol(*proto))
		cfg.Cores = *cores
	}
	cfg.Core.MaxTxWarps = *conc

	params := workloads.Params{Scale: *scale, Seed: *seed}
	variant := workloads.TM
	if gpu.Protocol(*proto) == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}
	k, err := workloads.Build(*bench, variant, params)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	res, err := gpu.Run(cfg, k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	m := res.Metrics
	fmt.Printf("benchmark        %s (%s, %d cores, conc %s)\n", *bench, *proto, cfg.Cores, concStr(*conc))
	fmt.Printf("total cycles     %d\n", m.TotalCycles)
	fmt.Printf("tx exec cycles   %d\n", m.TxExecCycles)
	fmt.Printf("tx wait cycles   %d\n", m.TxWaitCycles)
	fmt.Printf("commits          %d\n", m.Commits)
	fmt.Printf("aborts           %d (%.0f per 1K commits)\n", m.Aborts, m.AbortsPer1KCommits())
	fmt.Printf("xbar traffic     %d B up, %d B down\n", m.XbarUpBytes, m.XbarDownBytes)
	if m.SilentCommits > 0 {
		fmt.Printf("silent commits   %d\n", m.SilentCommits)
	}
	if m.MetaAccessCycles.Total() > 0 {
		fmt.Printf("meta access      %.3f cycles/request\n", m.MetaAccessCycles.Mean())
		fmt.Printf("stall buffer     max %d queued, %.2f reqs/addr\n",
			m.StallBufMaxOccupancy, m.StallBufPerAddr.Mean())
	}
	if len(m.AbortsByCause) > 0 {
		fmt.Printf("abort causes     %v\n", m.AbortsByCause)
	}
	if *verbose {
		keys := make([]string, 0, len(m.Extra))
		for k := range m.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-24s %d\n", k, m.Extra[k])
		}
	}
}

func concStr(c int) string {
	if c == 0 {
		return "NL"
	}
	return fmt.Sprint(c)
}
