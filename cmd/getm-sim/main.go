// getm-sim runs one benchmark on one protocol and prints its metrics.
//
// Usage:
//
//	getm-sim -bench ht-h -proto getm [-conc 8] [-scale 1.0] [-cores 15] [-verbose]
//	         [-trace out.json] [-trace-format perfetto|csv|text]
//	         [-trace-filter simt,xbar,mem,core,warptm,eapg,tx] [-sample-interval 1000]
//	         [-store DIR] [-resume] [-timeout 30s]
//
// With -trace, the run records structured events from every machine layer
// plus interval-sampled time series, and writes them to the given file:
// perfetto output loads into ui.perfetto.dev / chrome://tracing, csv holds
// the sampled series only, text is a human-readable merged log.
//
// With -store DIR, the completed run is persisted to a crash-safe result
// store, and (unless -resume=false) an existing record for this exact
// configuration is reused instead of re-simulating — printing the identical
// metrics. Traced runs never reuse records (the trace must be regenerated)
// but still persist their metrics, which are cycle-identical to untraced
// ones. -timeout bounds the run's wall-clock time; a run cut short prints
// its partial metrics with a "TRUNCATED" note on stderr and exits nonzero,
// and is never persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"getm/internal/gpu"
	"getm/internal/policy"
	"getm/internal/stats"
	"getm/internal/store"
	"getm/internal/trace"
	"getm/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "ht-h", "benchmark name ("+fmt.Sprint(workloads.Names())+")")
	proto := fs.String("proto", "getm", "protocol: getm, warptm, warptm-el, eapg, fglock")
	policyFlag := fs.String("policy", "", "protocol-matrix point: a preset name or an axis list like vm=eager,cd=eager,res=timestamp (overrides -proto)")
	conc := fs.Int("conc", 0, "max concurrent tx warps per core (0 = unlimited)")
	scale := fs.Float64("scale", 1.0, "workload scale factor")
	cores := fs.Int("cores", 15, "SIMT core count (15 or 56 for the paper's configs)")
	seed := fs.Uint64("seed", 42, "workload seed")
	verbose := fs.Bool("verbose", false, "print extra counters")
	traceFile := fs.String("trace", "", "write a machine trace to this file")
	traceFormat := fs.String("trace-format", trace.FormatPerfetto, "trace output format: perfetto, csv, text")
	traceFilter := fs.String("trace-filter", "all", "comma-separated event sources to record (simt,xbar,mem,core,warptm,eapg,tx) or 'all'")
	sampleInterval := fs.Uint64("sample-interval", 1000, "cycles between telemetry samples (0 disables sampling)")
	storeDir := fs.String("store", "", "persist results to (and reuse them from) this directory")
	resume := fs.Bool("resume", true, "with -store, reuse existing records instead of re-simulating")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none)")
	shards := fs.Int("shards", 0, "run on the parallel engine with this many workers (0 = serial; getm/fglock only, results identical for any value >= 1)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if explicitFlag(fs, "resume") && *storeDir == "" {
		fmt.Fprintln(stderr, "error: -resume requires -store (there is no store to resume from)")
		return 2
	}
	// -policy overrides -proto: a preset behaves exactly like naming the
	// protocol (same config, same store key); an invalid point is a usage
	// error, like any other bad flag value.
	var pol policy.Policy
	if *policyFlag != "" {
		p, err := policy.Parse(*policyFlag)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		pol = p
		*proto = p.String()
	}

	var cfg gpu.Config
	if *cores == 56 {
		cfg = gpu.ScaledConfig(gpu.Protocol(*proto))
	} else {
		cfg = gpu.DefaultConfig(gpu.Protocol(*proto))
		cfg.Cores = *cores
	}
	cfg.Core.MaxTxWarps = *conc
	cfg.Shards = *shards
	cfg.Policy = pol

	if *traceFile != "" {
		mask, err := trace.ParseSources(*traceFilter)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		cfg.Trace = &trace.Options{Sources: mask, SampleInterval: *sampleInterval}
	}
	if *shards > 0 && !gpu.Shardable(cfg) {
		fmt.Fprintln(stderr, "warning: -shards ignored (configuration not shardable; running serial)")
	}

	params := workloads.Params{Scale: *scale, Seed: *seed}
	variant := workloads.TM
	if gpu.Protocol(*proto) == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}
	k, err := workloads.Build(*bench, variant, params)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var st *store.Store
	var storeKey string
	if *storeDir != "" {
		st = store.Open(*storeDir)
		if err := st.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
		storeKey = store.Key(cfg, *bench, *scale, *seed)
		if *resume && *traceFile != "" {
			fmt.Fprintln(stderr, "warning: -trace forces re-simulation; the stored record is refreshed, not reused")
		}
	}

	// A verified stored record short-circuits the simulation — except when a
	// trace was requested, since the trace itself must be regenerated (the
	// metrics of a traced run are cycle-identical, so the record stays valid).
	var m *stats.Metrics
	truncated := false
	if st != nil && *resume && *traceFile == "" {
		if got, ok := st.Get(storeKey); ok {
			m = got
			fmt.Fprintln(stderr, "result loaded from store")
		}
	}
	if m == nil {
		res, err := gpu.RunContext(ctx, cfg, k)
		if res == nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		if *traceFile != "" {
			if err := exportTrace(*traceFile, res.Trace, *traceFormat); err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return 1
			}
			fmt.Fprintf(stdout, "trace written    %s (%s)\n", *traceFile, *traceFormat)
		}
		m = res.Metrics
		truncated = res.Truncated
		switch {
		case err != nil:
			fmt.Fprintln(stderr, "error:", err)
		case st != nil && !res.Truncated:
			if perr := st.Put(storeKey, *proto+"/"+*bench, m); perr != nil {
				fmt.Fprintln(stderr, "warning: store:", perr)
			}
		}
		if err != nil {
			truncated = true
		}
		if truncated {
			// Diagnostic, not data: stdout stays byte-identical across
			// complete runs whatever the run's fate, so truncation notes
			// belong on stderr with the other operational chatter.
			fmt.Fprintf(stderr, "TRUNCATED: partial metrics, run stopped at cycle %d\n", res.TruncatedAt)
		}
	}
	fmt.Fprintf(stdout, "benchmark        %s (%s, %d cores, conc %s)\n", *bench, *proto, cfg.Cores, concStr(*conc))
	fmt.Fprintf(stdout, "total cycles     %d\n", m.TotalCycles)
	fmt.Fprintf(stdout, "tx exec cycles   %d\n", m.TxExecCycles)
	fmt.Fprintf(stdout, "tx wait cycles   %d\n", m.TxWaitCycles)
	fmt.Fprintf(stdout, "commits          %d\n", m.Commits)
	fmt.Fprintf(stdout, "aborts           %d (%.0f per 1K commits)\n", m.Aborts, m.AbortsPer1KCommits())
	fmt.Fprintf(stdout, "xbar traffic     %d B up, %d B down\n", m.XbarUpBytes, m.XbarDownBytes)
	if m.SilentCommits > 0 {
		fmt.Fprintf(stdout, "silent commits   %d\n", m.SilentCommits)
	}
	if m.MetaAccessCycles.Total() > 0 {
		fmt.Fprintf(stdout, "meta access      %.3f cycles/request\n", m.MetaAccessCycles.Mean())
		fmt.Fprintf(stdout, "stall buffer     max %d queued, %.2f reqs/addr\n",
			m.StallBufMaxOccupancy, m.StallBufPerAddr.Mean())
	}
	if len(m.AbortsByCause) > 0 {
		fmt.Fprintf(stdout, "abort causes     %v\n", m.AbortsByCause)
	}
	if *verbose {
		keys := make([]string, 0, len(m.Extra))
		for k := range m.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(stdout, "  %-24s %d\n", k, m.Extra[k])
		}
	}
	if truncated {
		return 1
	}
	return 0
}

func exportTrace(path string, rec *trace.Recorder, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Export(f, rec, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// explicitFlag reports whether the user set the named flag on the command
// line (fs.Visit walks only explicitly-set flags).
func explicitFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func concStr(c int) string {
	if c == 0 {
		return "NL"
	}
	return fmt.Sprint(c)
}
