package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Smoke test for the acceptance criterion: a traced hashtable run must emit
// valid Chrome trace-event JSON containing events from at least four
// distinct machine layers (simt, xbar, mem, core).
func TestTraceSmokeJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "ht-h", "-scale", "0.05", "-trace", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}

	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// WritePerfetto names a process only for sources that recorded events.
	sources := map[string]bool{}
	counters := 0
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			sources[e.Args["name"].(string)] = true
		}
		if e.Ph == "C" {
			counters++
		}
	}
	for _, want := range []string{"simt", "xbar", "mem", "core"} {
		if !sources[want] {
			t.Errorf("missing events from source %q (have %v)", want, sources)
		}
	}
	if counters == 0 {
		t.Error("no interval-sample counter events (sampler not running)")
	}
	if !strings.Contains(stdout.String(), "trace written") {
		t.Errorf("stdout missing trace confirmation:\n%s", stdout.String())
	}
}

// The CSV format must produce a parseable sampled time series.
func TestTraceCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.csv")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "atm", "-scale", "0.05", "-trace", out,
		"-trace-format", "csv", "-sample-interval", "500"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines, want header + samples:\n%s", len(lines), data)
	}
	if !strings.HasPrefix(lines[0], "cycle,") || !strings.Contains(lines[0], "ipc") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	nCols := len(strings.Split(lines[0], ","))
	for i, ln := range lines[1:] {
		if got := len(strings.Split(ln, ",")); got != nCols {
			t.Errorf("row %d has %d columns, header has %d", i+1, got, nCols)
		}
	}
}

// An unknown source in -trace-filter must fail cleanly.
func TestTraceBadFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", "x.json", "-trace-filter", "bogus"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("accepted unknown trace source")
	}
	if !strings.Contains(stderr.String(), "bogus") {
		t.Errorf("error does not name the bad source: %s", stderr.String())
	}
}

// A stored run re-invoked against the same directory must load the record
// instead of re-simulating, with byte-identical stdout; a corrupted record
// must be silently recomputed, again byte-identically.
func TestStoreResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	args := []string{"-bench", "ht-h", "-scale", "0.05", "-conc", "4", "-store", dir}

	var out1, err1 bytes.Buffer
	if code := run(args, &out1, &err1); code != 0 {
		t.Fatalf("first run exited %d\nstderr: %s", code, err1.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("store holds %d records, want 1", len(ents))
	}

	var out2, err2 bytes.Buffer
	if code := run(args, &out2, &err2); code != 0 {
		t.Fatalf("second run exited %d\nstderr: %s", code, err2.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("resumed output differs:\n--- first ---\n%s--- second ---\n%s", out1.String(), out2.String())
	}
	if !strings.Contains(err2.String(), "loaded from store") {
		t.Errorf("second run did not report a store hit:\n%s", err2.String())
	}

	// Corrupt the record: the next run silently recomputes, identically.
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x08
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out3, err3 bytes.Buffer
	if code := run(args, &out3, &err3); code != 0 {
		t.Fatalf("post-corruption run exited %d\nstderr: %s", code, err3.String())
	}
	if out1.String() != out3.String() {
		t.Fatal("recomputed output differs from the original run")
	}
	if strings.Contains(err3.String(), "loaded from store") {
		t.Error("corrupt record was served as a store hit")
	}

	// -resume=false must re-simulate even with an intact record.
	var out4, err4 bytes.Buffer
	if code := run(append(args, "-resume=false"), &out4, &err4); code != 0 {
		t.Fatalf("-resume=false run exited %d\nstderr: %s", code, err4.String())
	}
	if strings.Contains(err4.String(), "loaded from store") {
		t.Error("-resume=false still read the store")
	}
	if out1.String() != out4.String() {
		t.Fatal("re-simulated output differs")
	}
}

// An explicit -resume without -store is a misconfiguration, not a silent
// no-op: there is nothing to resume from.
func TestResumeRequiresStore(t *testing.T) {
	for _, arg := range []string{"-resume", "-resume=false"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{arg, "-bench", "ht-h", "-scale", "0.05"}, &stdout, &stderr)
		if code != 2 {
			t.Errorf("%s without -store exited %d, want 2", arg, code)
		}
		if !strings.Contains(stderr.String(), "-store") {
			t.Errorf("%s error does not mention -store: %s", arg, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s usage error wrote to stdout: %s", arg, stdout.String())
		}
	}
}

// -trace with an active store must warn that the record is refreshed rather
// than reused (the trace forces a fresh simulation).
func TestTraceWithStoreWarns(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "ht-h", "-scale", "0.05", "-store", filepath.Join(dir, "results"), "-trace", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "refreshed, not reused") {
		t.Errorf("missing trace/store warning on stderr:\n%s", stderr.String())
	}
}

// A timed-out run reports TRUNCATED on stderr, keeping stdout pure metrics.
func TestTruncatedNoteOnStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "ap", "-scale", "1.0", "-timeout", "5ms"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("timed-out run exited 0")
	}
	if strings.Contains(stdout.String(), "TRUNCATED") {
		t.Errorf("TRUNCATED note leaked to stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "TRUNCATED") {
		t.Errorf("TRUNCATED note missing from stderr:\n%s", stderr.String())
	}
}

// -policy must reject invalid matrix points as a usage error (exit 2)
// before any simulation, and accept every spelling of a valid one.
func TestPolicyFlag(t *testing.T) {
	for _, bad := range []string{
		"vm=eager,cd=lazy",       // eager VM has nothing to validate lazily
		"vm=eager,res=requester", // reservation holder cannot lose
		"vm=lazy,res=timestamp",  // no timestamps under value validation
		"mesi",                   // unknown preset
		"speed=fast",             // unknown axis
	} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-policy", bad, "-bench", "atm", "-scale", "0.01"}, &stdout, &stderr)
		if code != 2 {
			t.Errorf("-policy %q exited %d, want 2", bad, code)
		}
		if !strings.Contains(stderr.String(), "invalid policy") {
			t.Errorf("-policy %q stderr missing diagnosis: %s", bad, stderr.String())
		}
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-policy", "vm=lazy,cd=eager,res=fww,arb=ring", "-bench", "atm", "-scale", "0.01"}, &stdout, &stderr); code != 0 {
		t.Fatalf("valid non-preset point exited %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "commits") {
		t.Errorf("run produced no metrics:\n%s", stdout.String())
	}
}

// A preset selected with -policy must hit the same store record a -proto
// run wrote: matrix spelling is key-invisible for the paper's protocols.
func TestPolicyPresetSharesStoreRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "results")
	args := []string{"-bench", "atm", "-scale", "0.05", "-store", dir}

	var out1, err1 bytes.Buffer
	if code := run(append([]string{"-proto", "getm"}, args...), &out1, &err1); code != 0 {
		t.Fatalf("-proto run exited %d\nstderr: %s", code, err1.String())
	}
	var out2, err2 bytes.Buffer
	if code := run(append([]string{"-policy", "getm"}, args...), &out2, &err2); code != 0 {
		t.Fatalf("-policy run exited %d\nstderr: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "loaded from store") {
		t.Errorf("-policy getm re-simulated instead of loading the -proto getm record:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("metrics differ between -proto and -policy spellings:\n--- proto ---\n%s--- policy ---\n%s",
			out1.String(), out2.String())
	}
}
