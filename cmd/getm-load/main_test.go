package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":  {"-nope"},
		"bad mix":       {"-mix", "all-cache"},
		"zero clients":  {"-clients", "0"},
		"batch too big": {"-batch", "1000"},
		"flat zipf":     {"-zipf", "0.5"},
		"no duration":   {"-duration", "0s"},
		"compare+url":   {"-compare", "-url", "http://127.0.0.1:1"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errOut.String())
		}
	}
}

func TestQuantileAndMean(t *testing.T) {
	if q := quantile(nil, 0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(xs, 0.50); q != 5 {
		t.Fatalf("p50 = %v, want 5", q)
	}
	if q := quantile(xs, 0.99); q != 9 {
		t.Fatalf("p99 of 10 samples = %v, want 9 (index 8)", q)
	}
	if m := mean(xs); m != 5.5 {
		t.Fatalf("mean = %v, want 5.5", m)
	}
	if m := mean(nil); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestSpecShape(t *testing.T) {
	cfg := loadCfg{protocol: "getm", benchmark: "ht-h", scale: 0.25}
	sp := spec(cfg, 7)
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"protocol":"getm"`, `"benchmark":"ht-h"`, `"scale":0.25`, `"seed":7`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("spec JSON %s missing %s", b, want)
		}
	}
}

// End-to-end: a short dedupe-heavy run against a spawned server produces a
// sane result file, and errors against a dead server are counted, not fatal.
func TestLoadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load run")
	}
	out := filepath.Join(t.TempDir(), "load.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mix", "dedupe-heavy", "-duration", "300ms", "-clients", "2",
		"-batch", "4", "-keys", "3", "-scale", "0.02", "-out", out,
		"-slo-p99", "5s", "-slo-shed", "0.5",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res mixResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("result not valid JSON: %v", err)
	}
	if res.Requests <= 0 || res.OK <= 0 || res.RPS <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("%v errors against a healthy server", res.Errors)
	}
	if !strings.Contains(stderr.String(), "SLOs met") {
		t.Fatalf("SLO verdict missing from stderr: %s", stderr.String())
	}
}

// A violated SLO must exit 1 — the gate contract `make load-gate` relies on.
func TestSLOViolationExitsNonzero(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load run")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mix", "dedupe-heavy", "-duration", "200ms", "-clients", "1",
		"-batch", "2", "-keys", "2", "-scale", "0.02",
		"-slo-p99", "1ns", // unattainable
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d with an unattainable p99 SLO, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "SLO VIOLATION") {
		t.Fatalf("violation not reported: %s", stderr.String())
	}
}

func TestDeadServerCountsErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained load run")
	}
	var stdout, stderr bytes.Buffer
	start := time.Now()
	code := run([]string{
		"-url", "http://127.0.0.1:1", // nothing listens on port 1
		"-mix", "dedupe-free", "-duration", "200ms", "-clients", "1", "-batch", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("dead-server run exit %d, want 0 (errors are data, not crashes)\nstderr: %s", code, stderr.String())
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("dead-server run hung")
	}
	var res mixResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 || res.OK != 0 {
		t.Fatalf("dead server produced %+v, want all errors", res)
	}
}
