// getm-load drives sustained simulation traffic against the getm-serve HTTP
// service and reports client-side throughput and latency — the committed
// evidence (BENCH_serve.json) behind the serve path's throughput claims,
// and the SLO gate `make load-gate` runs on every check.
//
// Usage:
//
//	getm-load [-url http://host:port] [-targets URL,URL,...] [-compare]
//	          [-mix dedupe-heavy|dedupe-free]
//	          [-duration 3s] [-clients 4] [-batch 16] [-keys 8] [-zipf 1.2]
//	          [-scale 0.02] [-protocol getm] [-benchmark ht-h]
//	          [-slo-p99 0] [-slo-shed -1] [-out FILE] [-baseline] [-spans]
//	          [-seed 1]
//
// Two traffic mixes:
//
//   - dedupe-heavy: every request draws its seed from a zipfian distribution
//     over -keys distinct values (warmed up first), so steady-state traffic
//     is repeat requests for completed cells. This is the serving fast path
//     — admission dedupe, cached rendering, write coalescing — and the mix
//     the ≥5x throughput claim is made on.
//   - dedupe-free: every request carries a globally unique seed, so every
//     request simulates. Throughput is simulation-bound by construction;
//     the mix pins down the harness overhead floor, not a speedup.
//
// Without -url, getm-load spawns a getm-serve instance in-process (fresh
// temp store; -baseline selects the per-request-write control arm). With
// -compare it runs each mix twice — against a baseline server and a
// coalesced one — and records the speedup; that JSON is BENCH_serve.json.
//
// -slo-p99 and -slo-shed turn the run into a gate: exit 1 if the measured
// p99 latency exceeds the bound or the shed rate exceeds the fraction.
//
// -spans runs spawned servers with lifecycle spans on, so every timed POST
// carries an X-Getm-Timings header; results then report the server's own
// stage breakdown (queue/sim/persist p99) side by side with the
// client-observed p99, both in the summary line and in the JSON
// (server_*_ms fields). Targets named with -url report server timings
// whenever that server was started with -spans.
//
// -targets takes a comma-separated list of base URLs for cluster-aware load:
// each closed-loop client pins to targets[i mod n], so an N-node fabric
// (coordinator plus workers, or workers addressed directly) sees the load
// spread across its front doors while every client still measures one
// stable connection. Aggregate results span all targets.
//
// -out writes are atomic (temp file + rename in the destination directory),
// so a crashed or failed run never leaves a torn BENCH_serve.json behind —
// the previous file survives intact until the new one is complete.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/serve"
	"getm/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadCfg is one measurement's parameters.
type loadCfg struct {
	mix       string
	duration  time.Duration
	clients   int
	batch     int
	keys      int
	zipfS     float64
	scale     float64
	protocol  string
	benchmark string
	seed      int64
	spans     bool
}

// mixResult is one measurement, all-float64 leaves so cmd/benchdiff can walk
// the committed JSON. The server_* fields are populated from X-Getm-Timings
// response headers when the target server runs with spans enabled: the
// server's own account of each answered run's stage costs, reported side by
// side with the client-observed latency. Timings are per-run, not per-POST —
// a deduped hit reports the stage costs of the execution that produced the
// cell — so on dedupe-heavy mixes the server columns describe the runs being
// served while the client columns describe the serving itself.
type mixResult struct {
	Requests  float64 `json:"requests"`
	Posts     float64 `json:"posts"`
	OK        float64 `json:"ok"`
	Shed      float64 `json:"shed"`
	Errors    float64 `json:"errors"`
	DurationS float64 `json:"duration_s"`
	RPS       float64 `json:"rps"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MeanMS    float64 `json:"mean_ms"`
	ShedRate  float64 `json:"shed_rate"`

	TimingsN           float64 `json:"timings_n"`
	ServerP50MS        float64 `json:"server_p50_ms"`
	ServerP99MS        float64 `json:"server_p99_ms"`
	ServerQueueP99MS   float64 `json:"server_queue_p99_ms"`
	ServerSimP99MS     float64 `json:"server_sim_p99_ms"`
	ServerPersistP99MS float64 `json:"server_persist_p99_ms"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-load", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "", "target server base URL (empty = spawn a server in-process)")
	targets := fs.String("targets", "", "comma-separated target base URLs; clients pin round-robin across them (cluster-aware load)")
	compare := fs.Bool("compare", false, "measure each mix against baseline AND coalesced in-process servers")
	mix := fs.String("mix", "dedupe-heavy", "traffic mix: dedupe-heavy or dedupe-free")
	duration := fs.Duration("duration", 3*time.Second, "measurement length per mix")
	clients := fs.Int("clients", 4, "concurrent closed-loop clients")
	batch := fs.Int("batch", 16, "specs per POST (1 = single-run endpoint)")
	keys := fs.Int("keys", 8, "distinct seeds in the dedupe-heavy key set")
	zipfS := fs.Float64("zipf", 1.2, "zipf skew for dedupe-heavy key choice (s > 1)")
	scale := fs.Float64("scale", 0.02, "workload scale per request")
	protocol := fs.String("protocol", "getm", "protocol under test")
	benchmark := fs.String("benchmark", "ht-h", "benchmark under test")
	sloP99 := fs.Duration("slo-p99", 0, "fail (exit 1) if p99 latency exceeds this (0 = no bound)")
	sloShed := fs.Float64("slo-shed", -1, "fail (exit 1) if shed fraction exceeds this (negative = no bound)")
	out := fs.String("out", "", "write the result JSON here (empty = stdout)")
	baseline := fs.Bool("baseline", false, "spawn the baseline (per-request-write) server instead of the coalesced one")
	spans := fs.Bool("spans", false, "enable lifecycle spans on spawned servers so results carry server-reported stage timings")
	seed := fs.Int64("seed", 1, "load-generator RNG seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := loadCfg{
		mix: *mix, duration: *duration, clients: *clients, batch: *batch,
		keys: *keys, zipfS: *zipfS, scale: *scale,
		protocol: *protocol, benchmark: *benchmark, seed: *seed, spans: *spans,
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}
	var targetList []string
	if *targets != "" {
		if *url != "" {
			fmt.Fprintln(stderr, "error: -targets already names the servers; drop -url")
			return 2
		}
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				targetList = append(targetList, u)
			}
		}
		if len(targetList) == 0 {
			fmt.Fprintln(stderr, "error: -targets lists no URLs")
			return 2
		}
	}

	var doc any
	gateRes := make([]mixResult, 0, 2)
	if *compare {
		if *url != "" || len(targetList) > 0 {
			fmt.Fprintln(stderr, "error: -compare spawns its own servers; drop -url/-targets")
			return 2
		}
		cmpDoc, coalesced, err := runCompare(cfg, stderr)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		doc = cmpDoc
		gateRes = coalesced
	} else {
		tg := targetList
		var shutdown func()
		if len(tg) == 0 && *url != "" {
			tg = []string{*url}
		}
		if len(tg) == 0 {
			target, sd, err := spawnServer(*baseline, *spans, stderr)
			if err != nil {
				fmt.Fprintln(stderr, "error:", err)
				return 1
			}
			tg, shutdown = []string{target}, sd
		}
		res, err := runMix(tg, cfg, stderr)
		if shutdown != nil {
			shutdown()
		}
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		doc = res
		gateRes = append(gateRes, res)
	}

	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	b = append(b, '\n')
	if *out != "" {
		if err := writeFileAtomic(*out, b); err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		fmt.Fprintln(stderr, "wrote", *out)
	} else {
		stdout.Write(b)
	}

	code := 0
	for _, res := range gateRes {
		if *sloP99 > 0 && res.P99MS > float64(*sloP99)/float64(time.Millisecond) {
			fmt.Fprintf(stderr, "SLO VIOLATION: p99 %.2fms > %s\n", res.P99MS, *sloP99)
			code = 1
		}
		if *sloShed >= 0 && res.ShedRate > *sloShed {
			fmt.Fprintf(stderr, "SLO VIOLATION: shed rate %.4f > %.4f\n", res.ShedRate, *sloShed)
			code = 1
		}
	}
	if code == 0 && (*sloP99 > 0 || *sloShed >= 0) {
		fmt.Fprintln(stderr, "SLOs met")
	}
	return code
}

// atomicWriteFailAfter, when positive, aborts writeFileAtomic after that
// many bytes — a test seam standing in for a crash or full disk mid-write.
var atomicWriteFailAfter = 0

// writeFileAtomic replaces path via a temp file and rename in the same
// directory, so a reader (or a rerun after a crash) only ever sees the old
// complete file or the new complete file, never a torn one.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if n := atomicWriteFailAfter; n > 0 && n < len(data) {
		if _, werr := f.Write(data[:n]); werr != nil {
			return fail(werr)
		}
		return fail(fmt.Errorf("write %s: canceled after %d bytes", path, n))
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (c *loadCfg) validate() error {
	switch c.mix {
	case "dedupe-heavy", "dedupe-free":
	default:
		return fmt.Errorf("unknown -mix %q (want dedupe-heavy or dedupe-free)", c.mix)
	}
	if c.clients < 1 {
		return fmt.Errorf("-clients %d must be >= 1", c.clients)
	}
	if c.batch < 1 || c.batch > 256 {
		return fmt.Errorf("-batch %d out of range [1, 256]", c.batch)
	}
	if c.keys < 1 {
		return fmt.Errorf("-keys %d must be >= 1", c.keys)
	}
	if c.zipfS <= 1 {
		return fmt.Errorf("-zipf %g must be > 1", c.zipfS)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration %s must be positive", c.duration)
	}
	return nil
}

// spawnServer starts a getm-serve instance in-process on a loopback port
// with a fresh temp store, returning its base URL and a shutdown func.
func spawnServer(baseline, spans bool, stderr io.Writer) (string, func(), error) {
	dir, err := os.MkdirTemp("", "getm-load-store-*")
	if err != nil {
		return "", nil, err
	}
	s := serve.New(serve.Config{
		Workers:    runtime.GOMAXPROCS(0),
		QueueDepth: 256,
		MaxScale:   1.0,
		Store:      store.Open(dir),
		Baseline:   baseline,
		Spans:      spans,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s}
	go httpSrv.Serve(ln)
	shutdown := func() {
		s.Drain(10 * time.Second)
		httpSrv.Close()
		os.RemoveAll(dir)
	}
	arm := "coalesced"
	if baseline {
		arm = "baseline"
	}
	fmt.Fprintf(stderr, "spawned %s server on %s\n", arm, ln.Addr())
	return "http://" + ln.Addr().String(), shutdown, nil
}

// compareDoc is the shape committed as BENCH_serve.json.
type compareDoc struct {
	Schema int                `json:"schema"`
	Config map[string]float64 `json:"config"`
	Heavy  compareMix         `json:"dedupe_heavy"`
	Free   compareMix         `json:"dedupe_free"`
}

type compareMix struct {
	Baseline   mixResult `json:"baseline"`
	Coalesced  mixResult `json:"coalesced"`
	SpeedupRPS float64   `json:"speedup_rps"`
}

// runCompare measures both mixes against both server arms and returns the
// document plus the coalesced-arm results (the ones SLOs apply to).
func runCompare(cfg loadCfg, stderr io.Writer) (*compareDoc, []mixResult, error) {
	doc := &compareDoc{
		Schema: 1,
		Config: map[string]float64{
			"duration_s": cfg.duration.Seconds(),
			"clients":    float64(cfg.clients),
			"batch":      float64(cfg.batch),
			"keys":       float64(cfg.keys),
			"zipf_s":     cfg.zipfS,
			"scale":      cfg.scale,
		},
	}
	coalesced := make([]mixResult, 0, 2)
	for _, mix := range []string{"dedupe-heavy", "dedupe-free"} {
		mcfg := cfg
		mcfg.mix = mix
		var arms [2]mixResult
		for i, baseline := range []bool{true, false} {
			acfg := mcfg
			if baseline {
				// The baseline serving surface (PR 5 discipline) has no batch
				// endpoint — admission batching is part of the work under
				// measurement — so the control arm drives single POSTs.
				acfg.batch = 1
			}
			url, shutdown, err := spawnServer(baseline, cfg.spans, stderr)
			if err != nil {
				return nil, nil, err
			}
			res, err := runMix([]string{url}, acfg, stderr)
			shutdown()
			if err != nil {
				return nil, nil, fmt.Errorf("%s baseline=%v: %w", mix, baseline, err)
			}
			arms[i] = res
		}
		cm := compareMix{Baseline: arms[0], Coalesced: arms[1]}
		if arms[0].RPS > 0 {
			cm.SpeedupRPS = arms[1].RPS / arms[0].RPS
		}
		if mix == "dedupe-heavy" {
			doc.Heavy = cm
			coalesced = append(coalesced, arms[1])
		} else {
			doc.Free = cm
		}
		fmt.Fprintf(stderr, "%s: baseline %.0f rps, coalesced %.0f rps (%.1fx)\n",
			mix, arms[0].RPS, arms[1].RPS, cm.SpeedupRPS)
	}
	return doc, coalesced, nil
}

// runMix drives one sustained measurement against targets; each closed-loop
// client pins to targets[ci mod n] so a multi-node fabric sees the load
// across its front doors.
func runMix(targets []string, cfg loadCfg, stderr io.Writer) (mixResult, error) {
	transport := &http.Transport{
		MaxIdleConns:        cfg.clients * 2,
		MaxIdleConnsPerHost: cfg.clients * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 2 * time.Minute}
	defer transport.CloseIdleConnections()

	if cfg.mix == "dedupe-heavy" {
		// Warm each target: in a cluster the nodes converge through routing
		// and store sync, but the timed window should start with every front
		// door's caches hot.
		for _, url := range targets {
			if err := warmKeys(client, url, cfg); err != nil {
				return mixResult{}, fmt.Errorf("warmup %s: %w", url, err)
			}
		}
	}

	var uniqueSeed atomic.Uint64
	uniqueSeed.Store(1_000_000) // clear of the warmed dedupe-heavy key range

	type clientStats struct {
		ok, shed, errs int64
		posts          int64
		samples        []float64 // per-POST client-observed latency, ms
		srvTotal       []float64 // per-POST server-reported queue+sim+persist, ms
		srvQueue       []float64
		srvSim         []float64
		srvPersist     []float64
	}
	stats := make([]clientStats, cfg.clients)
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()

	var wg sync.WaitGroup
	for ci := 0; ci < cfg.clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			url := targets[ci%len(targets)]
			st := &stats[ci]
			rng := rand.New(rand.NewSource(cfg.seed + int64(ci)*7919))
			var zipf *rand.Zipf
			if cfg.mix == "dedupe-heavy" {
				zipf = rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.keys-1))
			}
			clientID := fmt.Sprintf("load-%d", ci)
			for time.Now().Before(deadline) {
				specs := make([]map[string]any, cfg.batch)
				for i := range specs {
					var seed uint64
					if zipf != nil {
						seed = 1 + zipf.Uint64()
					} else {
						seed = uniqueSeed.Add(1)
					}
					specs[i] = spec(cfg, seed)
				}
				t0 := time.Now()
				ok, shed, errs, tm := post(client, url, clientID, specs)
				lat := time.Since(t0)
				st.posts++
				st.samples = append(st.samples, float64(lat)/float64(time.Millisecond))
				if tm != nil {
					st.srvTotal = append(st.srvTotal, tm.queueMS+tm.simMS+tm.persistMS)
					st.srvQueue = append(st.srvQueue, tm.queueMS)
					st.srvSim = append(st.srvSim, tm.simMS)
					st.srvPersist = append(st.srvPersist, tm.persistMS)
				}
				st.ok += ok
				st.shed += shed
				st.errs += errs
				if errs > 0 {
					// A dead or erroring server: back off instead of hot-spinning.
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var res mixResult
	var all, srvTotal, srvQueue, srvSim, srvPersist []float64
	for i := range stats {
		res.OK += float64(stats[i].ok)
		res.Shed += float64(stats[i].shed)
		res.Errors += float64(stats[i].errs)
		res.Posts += float64(stats[i].posts)
		all = append(all, stats[i].samples...)
		srvTotal = append(srvTotal, stats[i].srvTotal...)
		srvQueue = append(srvQueue, stats[i].srvQueue...)
		srvSim = append(srvSim, stats[i].srvSim...)
		srvPersist = append(srvPersist, stats[i].srvPersist...)
	}
	res.Requests = res.OK + res.Shed + res.Errors
	res.DurationS = elapsed.Seconds()
	if res.DurationS > 0 {
		res.RPS = res.Requests / res.DurationS
	}
	if res.Requests > 0 {
		res.ShedRate = res.Shed / res.Requests
	}
	sort.Float64s(all)
	res.P50MS = quantile(all, 0.50)
	res.P99MS = quantile(all, 0.99)
	res.MeanMS = mean(all)
	if len(srvTotal) > 0 {
		sort.Float64s(srvTotal)
		sort.Float64s(srvQueue)
		sort.Float64s(srvSim)
		sort.Float64s(srvPersist)
		res.TimingsN = float64(len(srvTotal))
		res.ServerP50MS = quantile(srvTotal, 0.50)
		res.ServerP99MS = quantile(srvTotal, 0.99)
		res.ServerQueueP99MS = quantile(srvQueue, 0.99)
		res.ServerSimP99MS = quantile(srvSim, 0.99)
		res.ServerPersistP99MS = quantile(srvPersist, 0.99)
		fmt.Fprintf(stderr, "%s: p99 client %.2fms vs server %.2fms (queue %.2f, sim %.2f, persist %.2f; %d timed posts)\n",
			cfg.mix, res.P99MS, res.ServerP99MS,
			res.ServerQueueP99MS, res.ServerSimP99MS, res.ServerPersistP99MS, len(srvTotal))
	}
	if res.Errors > 0 {
		fmt.Fprintf(stderr, "warning: %s saw %.0f request errors\n", cfg.mix, res.Errors)
	}
	return res, nil
}

// warmKeys completes every seed in the dedupe-heavy key set once — chunked
// batch POSTs, or single POSTs when the run drives the single-run endpoint
// (the baseline surface has no batch endpoint) — so the timed window
// measures steady-state repeat traffic, not first-time simulations.
func warmKeys(client *http.Client, url string, cfg loadCfg) error {
	chunk := 256
	if cfg.batch == 1 {
		chunk = 1
	}
	for lo := 0; lo < cfg.keys; lo += chunk {
		hi := lo + chunk
		if hi > cfg.keys {
			hi = cfg.keys
		}
		specs := make([]map[string]any, 0, hi-lo)
		for k := lo; k < hi; k++ {
			specs = append(specs, spec(cfg, uint64(1+k)))
		}
		ok, shed, errs, _ := post(client, url, "load-warmup", specs)
		if errs > 0 || shed > 0 {
			return fmt.Errorf("warming %d keys: %d ok, %d shed, %d errors", cfg.keys, ok, shed, errs)
		}
	}
	return nil
}

func spec(cfg loadCfg, seed uint64) map[string]any {
	return map[string]any{
		"protocol":  cfg.protocol,
		"benchmark": cfg.benchmark,
		"scale":     cfg.scale,
		"seed":      seed,
	}
}

// stageTimings is one POST's server-reported stage breakdown, decoded from
// the X-Getm-Timings header (present when the server runs with spans on).
type stageTimings struct {
	queueMS, simMS, persistMS float64
}

// parseTimingsHeader decodes "queue=<µs>;sim=<µs>;persist=<µs>" into
// milliseconds. Returns nil on an empty or malformed header — an absent
// sample, never a zero one.
func parseTimingsHeader(v string) *stageTimings {
	if v == "" {
		return nil
	}
	var tm stageTimings
	for _, part := range strings.Split(v, ";") {
		k, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil
		}
		us, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil
		}
		ms := float64(us) / 1e3
		switch k {
		case "queue":
			tm.queueMS = ms
		case "sim":
			tm.simMS = ms
		case "persist":
			tm.persistMS = ms
		default:
			return nil
		}
	}
	return &tm
}

// post submits specs (batch endpoint for >1, single otherwise) and
// classifies every logical request as ok, shed, or error. Bodies are
// drained, not parsed — shed counts ride on the status code or the
// X-Getm-Shed header, and the server's stage breakdown on X-Getm-Timings.
func post(client *http.Client, url, clientID string, specs []map[string]any) (ok, shed, errs int64, tm *stageTimings) {
	n := int64(len(specs))
	var body []byte
	var path string
	if len(specs) == 1 {
		body, _ = json.Marshal(specs[0])
		path = url + "/v1/runs"
	} else {
		body, _ = json.Marshal(specs)
		path = url + "/v1/runs/batch"
	}
	req, err := http.NewRequest("POST", path, bytes.NewReader(body))
	if err != nil {
		return 0, 0, n, nil
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", clientID)
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, n, nil
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		hdrShed := int64(0)
		if v := resp.Header.Get("X-Getm-Shed"); v != "" {
			if parsed, perr := strconv.ParseInt(v, 10, 64); perr == nil {
				hdrShed = parsed
			}
		}
		tm = parseTimingsHeader(resp.Header.Get("X-Getm-Timings"))
		return n - hdrShed, hdrShed, 0, tm
	case resp.StatusCode == http.StatusTooManyRequests,
		resp.StatusCode == http.StatusServiceUnavailable:
		return 0, n, 0, nil
	default:
		return 0, 0, n, nil
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
