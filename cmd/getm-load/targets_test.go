package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"getm/internal/serve"
)

// TestLoadTargetsRoundRobin drives a multi-target run against two in-process
// servers: every target must see traffic (clients pin round-robin), the
// aggregate JSON must report work from both, and the flag must refuse
// nonsense combinations.
func TestLoadTargetsRoundRobin(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		s := serve.New(serve.Config{Workers: 2, QueueDepth: 64})
		ts := httptest.NewServer(s)
		urls = append(urls, ts.URL)
		t.Cleanup(func() {
			ts.Close()
			s.Drain(10 * time.Second)
		})
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-targets", strings.Join(urls, ","),
		"-mix", "dedupe-heavy", "-duration", "300ms", "-clients", "4",
		"-batch", "2", "-keys", "4", "-scale", "0.02",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("multi-target run exited %d\nstderr: %s", code, stderr.String())
	}
	var res mixResult
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("result JSON: %v\n%s", err, stdout.String())
	}
	if res.OK == 0 {
		t.Fatal("multi-target run completed nothing")
	}
	if res.Errors > 0 {
		t.Fatalf("multi-target run saw %.0f errors", res.Errors)
	}
	// Both front doors served requests: each target's metrics show traffic.
	for i, base := range urls {
		resp, err := httpGet(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(resp, "getm_serve_requests_total") {
			t.Fatalf("target %d exposes no request counter", i)
		}
		if strings.Contains(resp, "getm_serve_requests_total 0\n") {
			t.Errorf("target %d saw no requests; clients did not spread across targets", i)
		}
	}
}

func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	_, err = b.ReadFrom(resp.Body)
	return b.String(), err
}

// TestLoadTargetsBadFlags pins the usage errors around -targets.
func TestLoadTargetsBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"targets+url":     {"-targets", "http://a:1,http://b:2", "-url", "http://c:3"},
		"targets+compare": {"-compare", "-targets", "http://a:1"},
		"empty targets":   {"-targets", " , "},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", name, code, errOut.String())
		}
	}
}

// TestLoadOutAtomicCanceledWrite pins the atomic -out discipline: a write
// that dies partway must leave the previous file byte-identical and no temp
// litter; a successful write replaces it completely.
func TestLoadOutAtomicCanceledWrite(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	old := []byte(`{"previous": "results", "intact": true}` + "\n")
	if err := os.WriteFile(out, old, 0o644); err != nil {
		t.Fatal(err)
	}

	// Canceled mid-write: the old file survives untouched.
	atomicWriteFailAfter = 3
	err := writeFileAtomic(out, []byte(`{"new": "results that never finish writing"}`))
	atomicWriteFailAfter = 0
	if err == nil {
		t.Fatal("canceled write reported success")
	}
	got, rerr := os.ReadFile(out)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !bytes.Equal(got, old) {
		t.Fatalf("canceled write corrupted the old file:\n%s", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("canceled write left temp litter: %v", ents)
	}

	// A successful write replaces the file completely.
	fresh := []byte(`{"new": "complete"}` + "\n")
	if err := writeFileAtomic(out, fresh); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(out)
	if !bytes.Equal(got, fresh) {
		t.Fatalf("successful write produced %s", got)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 1 {
		t.Fatalf("successful write left temp litter: %v", ents)
	}

	// A write into a missing directory fails cleanly (no torn target).
	if err := writeFileAtomic(filepath.Join(dir, "nope", "x.json"), fresh); err == nil {
		t.Fatal("write into a missing directory reported success")
	}
}

// TestLoadOutEndToEnd exercises -out through run(): the file lands complete
// and decodable after a real (tiny) measurement.
func TestLoadOutEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "result.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mix", "dedupe-free", "-duration", "150ms", "-clients", "1",
		"-batch", "1", "-scale", "0.02", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res mixResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("-out JSON: %v\n%s", err, b)
	}
	if stdout.Len() != 0 {
		t.Errorf("with -out, stdout should carry nothing, got %q", stdout.String())
	}
}
