// getm-area prints the Table V silicon area and power comparison for the
// WarpTM, EAPG, and GETM hardware structures.
package main

import (
	"fmt"

	"getm/internal/area"
)

func main() {
	fmt.Print(area.TableV())
}
