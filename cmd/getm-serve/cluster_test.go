package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeClusterEndToEnd stands up two worker processes and a coordinator
// (all in-process via run(), real HTTP between them) and drives a small
// sweep through the coordinator: every cell completes, the coordinator
// simulates nothing, the workers simulate each cell exactly once between
// them, and the coordinator can answer GET /v1/runs/{id} for a cell it
// never executed by store-syncing from the owning worker. One SIGTERM then
// drains all three nodes cleanly.
func TestServeClusterEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node e2e in -short mode")
	}
	dir1, dir2 := t.TempDir(), t.TempDir()
	w1, _, done1 := startServer(t, "-store", dir1, "-role", "worker",
		"-probe-interval", "25ms", "-flush-interval", "5ms")
	w2, _, done2 := startServer(t, "-store", dir2, "-role", "worker",
		"-probe-interval", "25ms", "-flush-interval", "5ms", "-peers", w1)
	coord, _, done3 := startServer(t, "-store", t.TempDir(),
		"-role", "coordinator", "-peers", w1+","+w2, "-probe-interval", "25ms")

	// Give the coordinator's prober a beat to see both workers' headroom so
	// the sweep shards by rendezvous rather than stealing off unprobed peers.
	deadline := time.Now().Add(5 * time.Second)
	for !time.Now().After(deadline) {
		probed := 0
		for _, line := range strings.Split(getText(t, coord+"/metrics"), "\n") {
			if !strings.HasPrefix(line, "getm_serve_peer_headroom{") {
				continue
			}
			if v, err := strconv.Atoi(line[strings.LastIndex(line, " ")+1:]); err == nil && v > 0 {
				probed++
			}
		}
		if probed == 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	var ids []string
	for _, bench := range []string{"ht-h", "ht-m", "ht-l", "atm"} {
		spec := fmt.Sprintf(`{"protocol":"getm","benchmark":%q,"scale":0.02}`, bench)
		resp, err := postSpec(coord, spec)
		if err != nil {
			t.Fatal(err)
		}
		var out runResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Status != "done" {
			t.Fatalf("bench %s: status %d / %q (%s)", bench, resp.StatusCode, out.Status, out.Error)
		}
		ids = append(ids, out.ID)
	}

	simTotal := func(base string) int {
		n, err := strconv.Atoi(metricValue(t, getText(t, base+"/metrics"), "getm_serve_simulated_total"))
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := simTotal(coord); n != 0 {
		t.Errorf("coordinator simulated %d cells; it must only route", n)
	}
	if n := simTotal(w1) + simTotal(w2); n != len(ids) {
		t.Errorf("workers simulated %d cells for %d submissions; each cell must run exactly once", n, len(ids))
	}

	// Wait until every record is durable on a worker's disk: the write-behind
	// coalescer acknowledges "done" before flushing, and the peer store-sync
	// source reads raw files, so a GET inside the flush window would be
	// answered by proxying instead of a fill.
	durable := func() int {
		n := 0
		for _, dir := range []string{dir1, dir2} {
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if !e.IsDir() && !strings.HasPrefix(e.Name(), ".") && strings.HasSuffix(e.Name(), ".json") {
					n++
				}
			}
		}
		return n
	}
	flushDeadline := time.Now().Add(10 * time.Second)
	for durable() < len(ids) {
		if time.Now().After(flushDeadline) {
			t.Fatalf("only %d of %d records flushed to worker stores", durable(), len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Any node answers any id: the coordinator's local store has never seen
	// these cells, so this exercises the peer store fill.
	for _, id := range ids {
		resp, err := http.Get(coord + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var out runResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Status != "done" {
			t.Fatalf("coordinator GET %s: %d / %q", id, resp.StatusCode, out.Status)
		}
	}
	coordMetrics := getText(t, coord+"/metrics")
	if v := metricValue(t, coordMetrics, "getm_serve_cluster_peers"); v != "2" {
		t.Errorf("getm_serve_cluster_peers = %s, want 2", v)
	}
	if v := metricValue(t, coordMetrics, "getm_serve_store_peer_fills_total"); v == "0" {
		t.Error("coordinator answered by-id reads without any peer store fill")
	}

	// One SIGTERM drains every node in this process.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for i, done := range []chan int{done1, done2, done3} {
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("node %d exited %d after drain", i+1, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d did not exit after SIGTERM", i+1)
		}
	}
}

// TestServeClusterBadFlags pins the exit-2 usage errors for cluster
// misconfiguration.
func TestServeClusterBadFlags(t *testing.T) {
	cases := [][]string{
		{"-role", "boss"},
		{"-role", "coordinator"}, // nobody to route to
		{"-role", "coordinator", "-peers", "not-a-url"},
		{"-role", "worker", "-peers", "ftp://h:1"},
	}
	for _, args := range cases {
		var out, errBuf syncBuf
		if code := run(args, &out, &errBuf); code != 2 {
			t.Errorf("run(%v) exited %d, want 2\nstderr:\n%s", args, code, errBuf.String())
		}
	}
}
