// getm-serve exposes the simulator as an HTTP service with bounded
// concurrency, request deduplication, durable results, and graceful drain.
//
// Usage:
//
//	getm-serve [-addr 127.0.0.1:8344] [-workers N] [-queue 64] [-store DIR]
//	           [-max-scale 1.0] [-request-timeout 60s] [-drain-timeout 30s]
//	           [-verbose]
//
// POST /v1/runs accepts a JSON RunSpec (protocol, benchmark, scale, seed,
// conc, cores, cycle_budget, timeout_ms, async) and simulates it on a fixed
// worker pool behind a bounded wait queue; when the queue is full the request
// is refused with 429 and a Retry-After hint instead of buffering without
// bound. Identical concurrent requests collapse onto one simulation, and
// with -store completed results persist to a crash-safe store that answers
// repeat traffic — across restarts too — with a disk read.
//
// GET /v1/runs/{id} reports a run durably (completed ids resolve from the
// store even after a restart). /healthz is liveness, /readyz flips to 503
// when the queue has no headroom or a drain is in progress, and /metrics is
// a Prometheus-style text exposition of the serving counters.
//
// SIGTERM or SIGINT triggers a graceful drain: new work is refused, in-flight
// runs get -drain-timeout to finish (then are canceled), and the process
// exits 0 if nothing was cut short.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"getm/internal/serve"
	"getm/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free one)")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "wait-queue depth before load shedding with 429")
	storeDir := fs.String("store", "", "persist results to (and serve repeats from) this directory")
	maxScale := fs.Float64("max-scale", 1.0, "largest workload scale a request may ask for")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second, "default and cap for each request's wall-clock deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight runs")
	verbose := fs.Bool("verbose", false, "log progress lines to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxScale:       *maxScale,
		RequestTimeout: *requestTimeout,
	}
	if *storeDir != "" {
		st := store.Open(*storeDir)
		if err := st.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
		cfg.Store = st
	}
	if *verbose {
		cfg.Verbose = func(msg string) { fmt.Fprintln(stderr, msg) }
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintf(stderr, "listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "%s received: draining (up to %s)\n", sig, *drainTimeout)
		code := 0
		if derr := s.Drain(*drainTimeout); derr != nil {
			fmt.Fprintln(stderr, "warning:", derr)
			code = 1
		}
		// The pool is stopped; now let in-flight HTTP responses flush and
		// close the listener.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := httpSrv.Shutdown(shutdownCtx); serr != nil {
			fmt.Fprintln(stderr, "warning: http shutdown:", serr)
		}
		<-served
		fmt.Fprintln(stderr, "drained, exiting")
		return code
	case err := <-served:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		return 0
	}
}
