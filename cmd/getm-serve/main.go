// getm-serve exposes the simulator as an HTTP service with bounded
// concurrency, request deduplication, durable results, and graceful drain.
//
// Usage:
//
//	getm-serve [-addr 127.0.0.1:8344] [-workers N] [-queue 64] [-store DIR]
//	           [-max-scale 1.0] [-request-timeout 60s] [-drain-timeout 30s]
//	           [-quota-rps N] [-quota-burst N] [-client-header X-Client-ID]
//	           [-client-weights a=2,b=5] [-per-client-queue N]
//	           [-flush-interval 100ms] [-flush-highwater 64] [-baseline]
//	           [-spans] [-span-ring N] [-pprof] [-slo-p99 250ms]
//	           [-slo-shed 0.01] [-verbose]
//	           [-role worker|coordinator] [-peers URL,URL,...]
//	           [-hedge-delay D] [-probe-interval 250ms]
//
// POST /v1/runs accepts a JSON RunSpec (protocol, benchmark, scale, seed,
// conc, cores, cycle_budget, timeout_ms, async) and simulates it on a fixed
// worker pool behind a bounded weighted-fair wait queue; when the queue is
// full the request is refused with 429 and a Retry-After hint instead of
// buffering without bound. POST /v1/runs/batch takes a JSON array of specs
// in one round trip. Identical concurrent requests collapse onto one
// simulation, and with -store completed results accumulate in a write-behind
// coalescer and persist in batched fsync'd commits to a crash-safe store
// that answers repeat traffic — across restarts too — with a disk read.
//
// -quota-rps imposes a per-client token-bucket admission rate (clients are
// keyed by -client-header, falling back to remote host); -client-weights
// biases the fair dequeue order; -per-client-queue caps one client's share
// of the wait queue. -baseline restores the PR 5 per-request-write serving
// discipline as a benchmarking control arm.
//
// GET /v1/runs/{id} reports a run durably (completed ids resolve from the
// store even after a restart). /healthz is liveness, /readyz flips to 503
// when the queue has no headroom or a drain is in progress, and /metrics is
// a Prometheus-style text exposition of the serving counters, per-stage
// latency summaries, per-client accounting, and SLO burn counters (poll it
// live with getm-top).
//
// -spans turns on request-scoped observability: every request leaves
// fixed-size lifecycle records (receive, quota, queue, dedupe, simulate,
// persist, flush, respond) exported via GET /v1/spans?format=perfetto|csv|
// text — the Perfetto document also embeds sim-level engine traces for
// recently executed runs, so a request span and the engine events it
// triggered share one timeline. Responses gain an X-Getm-Timings header
// (queue/sim/persist µs) and GET /v1/runs/{id}/timings reports the same
// breakdown. -pprof mounts the standard profiling endpoints.
//
// -role and -peers turn single servers into a sweep fabric. A coordinator
// (-role coordinator -peers http://w1:8344,http://w2:8344) executes nothing
// itself: every submission routes to the worker owning its content address
// under rendezvous hashing, steals to the next-ranked worker when the owner
// reports no queue headroom, and hedges a second request after -hedge-delay
// (0 derives the delay from the observed forward p99) with the loser
// canceled. Workers given -peers (their sibling workers) fill store misses
// from each other over GET /v1/store/{key}, so any node answers
// GET /v1/runs/{id} for any completed cell and a worker inheriting a dead
// peer's cells re-simulates only what no surviving store holds.
//
// SIGTERM or SIGINT triggers a graceful drain: new work is refused, in-flight
// runs get -drain-timeout to finish (then are canceled), and the process
// exits 0 if nothing was cut short.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"getm/internal/serve"
	"getm/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// parseWeights parses "-client-weights a=2,b=5" into a weight map.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	w := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("bad -client-weights entry %q (want client=weight)", pair)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad weight %q for client %q (want integer >= 1)", v, k)
		}
		w[k] = n
	}
	return w, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; port 0 picks a free one)")
	workers := fs.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 64, "wait-queue depth before load shedding with 429")
	storeDir := fs.String("store", "", "persist results to (and serve repeats from) this directory")
	maxScale := fs.Float64("max-scale", 1.0, "largest workload scale a request may ask for")
	requestTimeout := fs.Duration("request-timeout", 60*time.Second, "default and cap for each request's wall-clock deadline")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight runs")
	quotaRPS := fs.Float64("quota-rps", 0, "per-client admission rate limit in requests/sec (0 = unlimited)")
	quotaBurst := fs.Int("quota-burst", 0, "per-client token-bucket burst (0 = one second of -quota-rps)")
	clientHeader := fs.String("client-header", "X-Client-ID", "request header naming the client for quotas and fair queueing")
	clientWeights := fs.String("client-weights", "", "fair-dequeue weights as client=weight pairs, e.g. batch=1,interactive=4")
	perClientQueue := fs.Int("per-client-queue", 0, "cap on one client's share of the wait queue (0 = no per-client cap)")
	flushInterval := fs.Duration("flush-interval", 100*time.Millisecond, "write-behind store flush cadence")
	flushHighWater := fs.Int("flush-highwater", 64, "pending results forcing an immediate store flush")
	baseline := fs.Bool("baseline", false, "serve with the per-request-write discipline (benchmark control arm)")
	spans := fs.Bool("spans", false, "record request lifecycle spans (GET /v1/spans, X-Getm-Timings) and sim traces for executed runs")
	spanRing := fs.Int("span-ring", 0, "lifecycle span ring capacity in records (0 = 16384; power of two)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	sloP99 := fs.Duration("slo-p99", 250*time.Millisecond, "p99 run-latency objective feeding the SLO burn counters")
	sloShed := fs.Float64("slo-shed", 0.01, "shed-ratio objective exposed for burn-rate dashboards")
	verbose := fs.Bool("verbose", false, "log progress lines to stderr")
	role := fs.String("role", "", "cluster role: worker or coordinator (empty = standalone)")
	peers := fs.String("peers", "", "comma-separated peer base URLs (coordinator: routing targets; worker: store-sync sources)")
	hedgeDelay := fs.Duration("hedge-delay", 0, "coordinator hedge delay before retrying a slow forward (0 = derive from forward p99)")
	probeInterval := fs.Duration("probe-interval", 0, "peer health/headroom probe cadence (0 = 250ms)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	weights, err := parseWeights(*clientWeights)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}

	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxScale:       *maxScale,
		RequestTimeout: *requestTimeout,
		QuotaRPS:       *quotaRPS,
		QuotaBurst:     *quotaBurst,
		ClientHeader:   *clientHeader,
		ClientWeights:  weights,
		PerClientQueue: *perClientQueue,
		FlushInterval:  *flushInterval,
		FlushHighWater: *flushHighWater,
		Baseline:       *baseline,
		Spans:          *spans,
		SpanRing:       *spanRing,
		Pprof:          *pprofOn,
		SLOP99:         *sloP99,
		SLOShedTarget:  *sloShed,
		Role:           *role,
		HedgeDelay:     *hedgeDelay,
		ProbeInterval:  *probeInterval,
	}
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 2
	}
	if *storeDir != "" {
		st := store.Open(*storeDir)
		if err := st.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
		cfg.Store = st
	}
	if *verbose {
		cfg.Verbose = func(msg string) { fmt.Fprintln(stderr, msg) }
	}

	s := serve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "error:", err)
		return 1
	}
	fmt.Fprintf(stderr, "listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s}
	served := make(chan error, 1)
	go func() { served <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigCh)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stderr, "%s received: draining (up to %s)\n", sig, *drainTimeout)
		code := 0
		if derr := s.Drain(*drainTimeout); derr != nil {
			fmt.Fprintln(stderr, "warning:", derr)
			code = 1
		}
		// The pool is stopped; now let in-flight HTTP responses flush and
		// close the listener.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if serr := httpSrv.Shutdown(shutdownCtx); serr != nil {
			fmt.Fprintln(stderr, "warning: http shutdown:", serr)
		}
		<-served
		fmt.Fprintln(stderr, "drained, exiting")
		return code
	case err := <-served:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "error:", err)
			return 1
		}
		return 0
	}
}
