package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuf is an io.Writer safe to read while the server goroutine writes.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// startServer launches run() in a goroutine on an ephemeral port and waits
// for the listen line; the returned channel yields the exit code.
func startServer(t *testing.T, extra ...string) (base string, stderr *syncBuf, done chan int) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	var out syncBuf
	stderr = &syncBuf{}
	done = make(chan int, 1)
	go func() { done <- run(args, &out, stderr) }()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRE.FindStringSubmatch(stderr.String()); m != nil {
			return "http://" + m[1], stderr, done
		}
		select {
		case code := <-done:
			t.Fatalf("server exited early with code %d\nstderr:\n%s", code, stderr.String())
		default:
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("server never reported its address\nstderr:\n%s", stderr.String())
	return "", nil, nil
}

type runResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Source string `json:"source"`
	Error  string `json:"error"`
}

func postSpec(base, spec string) (*http.Response, error) {
	return http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return ""
}

// TestServeEndToEnd drives the real binary logic end to end: concurrent
// identical submissions share one simulation, a SIGTERM drain lets in-flight
// work finish while refusing late arrivals, and a restarted server answers
// both GET-by-id and repeat POSTs from the durable store without simulating.
func TestServeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real simulations")
	}
	dir := t.TempDir()
	base, stderr, done := startServer(t,
		"-workers", "2", "-queue", "8", "-store", dir, "-max-scale", "0.5", "-drain-timeout", "60s")

	// Phase 1: eight concurrent identical submissions -> one simulation.
	spec := `{"protocol":"getm","benchmark":"ht-h","scale":0.05}`
	const n = 8
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := postSpec(base, spec)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			var r runResponse
			if errs[i] = json.NewDecoder(resp.Body).Decode(&r); errs[i] == nil {
				ids[i] = r.ID
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("identical specs got distinct ids %q vs %q", ids[i], ids[0])
		}
	}
	exp := getText(t, base+"/metrics")
	if got := metricValue(t, exp, "getm_serve_simulated_total"); got != "1" {
		t.Fatalf("simulated_total = %s after %d identical submissions, want 1", got, n)
	}

	// Phase 2: a repeat submission is a cache hit, not a new simulation.
	resp, err := postSpec(base, spec)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat submit: %v / %v", err, resp)
	}
	resp.Body.Close()
	exp = getText(t, base+"/metrics")
	if got := metricValue(t, exp, "getm_serve_simulated_total"); got != "1" {
		t.Fatalf("simulated_total = %s after repeat submission, want 1", got)
	}

	// Phase 3: put a slower run in flight, then SIGTERM. The drain must let
	// it finish (persisting its result) while late arrivals are refused.
	longSpec := `{"protocol":"getm","benchmark":"ht-h","scale":0.4,"async":true}`
	resp, err = postSpec(base, longSpec)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %v / %v", err, resp)
	}
	var longRun runResponse
	if err := json.NewDecoder(resp.Body).Decode(&longRun); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// A request landing during (or after) the drain must be refused — via
	// 503 while the listener is up, or a connection error once it closes.
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(stderr.String(), "draining") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if resp, err := postSpec(base, `{"protocol":"getm","benchmark":"ht-l","scale":0.05}`); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("late submit during drain: status %d, want 503 (or a refused connection)", resp.StatusCode)
		}
		resp.Body.Close()
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("server exited %d after graceful drain\nstderr:\n%s", code, stderr.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("server did not exit after SIGTERM\nstderr:\n%s", stderr.String())
	}

	// Phase 4: restart on the same store. The drained run's id resolves
	// durably, and a repeat POST is a store hit — zero new simulations.
	base2, _, done2 := startServer(t,
		"-workers", "2", "-queue", "8", "-store", dir, "-max-scale", "0.5")
	body := getText(t, base2+"/v1/runs/"+longRun.ID)
	if !strings.Contains(body, `"done"`) || !strings.Contains(body, `"store"`) {
		t.Fatalf("restarted GET %s = %q, want done/store", longRun.ID, body)
	}
	resp, err = postSpec(base2, spec)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted repeat submit: %v / %v", err, resp)
	}
	var again runResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if again.ID != ids[0] {
		t.Fatalf("restarted id %q differs from original %q", again.ID, ids[0])
	}
	exp = getText(t, base2+"/metrics")
	if got := metricValue(t, exp, "getm_serve_simulated_total"); got != "0" {
		t.Fatalf("restarted simulated_total = %s, want 0 (store should answer)", got)
	}
	if got := metricValue(t, exp, "getm_serve_store_hits_total"); got == "0" {
		t.Fatal("restarted store_hits_total = 0, want a store hit")
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done2:
		if code != 0 {
			t.Fatalf("restarted server exited %d", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("restarted server did not exit after SIGTERM")
	}
}

// TestServeBadFlags pins the usage-error exit code.
func TestServeBadFlags(t *testing.T) {
	var out, errBuf syncBuf
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("exit %d for unknown flag, want 2", code)
	}
}
