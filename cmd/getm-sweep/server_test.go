package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"getm/internal/serve"
)

// startSweepServer runs an in-process getm-serve for -server tests.
func startSweepServer(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Drain(10 * time.Second)
	})
	return ts.URL
}

// TestSweepServerModeMatchesLocal pins the server-mode contract: the table a
// -server sweep prints is byte-identical to the local simulation's —
// deterministic simulations return the same metrics whichever process runs
// them.
func TestSweepServerModeMatchesLocal(t *testing.T) {
	base := []string{"-bench", "ht-h", "-scale", "0.05", "-knob", "conc", "-values", "1,2,4"}

	var local, localErr bytes.Buffer
	if code := run(base, &local, &localErr); code != 0 {
		t.Fatalf("local run exited %d\nstderr: %s", code, localErr.String())
	}

	url := startSweepServer(t)
	var remote, remoteErr bytes.Buffer
	args := append(append([]string{}, base...), "-server", url, "-workers", "3")
	if code := run(args, &remote, &remoteErr); code != 0 {
		t.Fatalf("server run exited %d\nstderr: %s", code, remoteErr.String())
	}
	if remote.String() != local.String() {
		t.Errorf("server-mode table differs from local:\n--- local ---\n%s--- server ---\n%s",
			local.String(), remote.String())
	}

	// The cores knob is the other remotely expressible axis.
	var coresOut, coresErr bytes.Buffer
	if code := run([]string{"-bench", "ht-l", "-scale", "0.05", "-knob", "cores",
		"-values", "15", "-server", url}, &coresOut, &coresErr); code != 0 {
		t.Fatalf("cores sweep exited %d\nstderr: %s", code, coresErr.String())
	}
}

// TestSweepServerModePolicyGrid drives -policy-grid through a server.
func TestSweepServerModePolicyGrid(t *testing.T) {
	url := startSweepServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-policy-grid", "-bench", "ht-l", "-scale", "0.05",
		"-server", url, "-workers", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("policy-grid server run exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, preset := range []string{"getm", "warptm", "eapg"} {
		if !strings.Contains(out, preset) {
			t.Errorf("policy-grid table is missing preset row %q:\n%s", preset, out)
		}
	}
}

// TestSweepServerModeUsageErrors pins the flag combinations -server refuses:
// simulator-internal knobs and store/engine flags that belong to the server.
func TestSweepServerModeUsageErrors(t *testing.T) {
	cases := []struct {
		args    []string
		mention string
	}{
		{[]string{"-server", "http://h:1", "-knob", "gran", "-values", "16"}, "conc and cores"},
		{[]string{"-server", "http://h:1", "-knob", "meta", "-values", "4"}, "conc and cores"},
		{[]string{"-server", "http://h:1", "-knob", "stall", "-values", "4"}, "conc and cores"},
		{[]string{"-server", "http://h:1", "-knob", "backoff", "-values", "64"}, "conc and cores"},
		{[]string{"-server", "http://h:1", "-knob", "inflight", "-values", "2"}, "conc and cores"},
		{[]string{"-server", "http://h:1", "-store", "d"}, "-store"},
		{[]string{"-server", "http://h:1", "-resume"}, "-store"},
		{[]string{"-server", "http://h:1", "-resume=false"}, "-store"},
		{[]string{"-server", "http://h:1", "-shards", "4"}, "-shards"},
	}
	for _, c := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(c.args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exited %d, want 2\nstderr: %s", c.args, code, stderr.String())
			continue
		}
		if !strings.Contains(stderr.String(), c.mention) {
			t.Errorf("run(%v) error does not mention %q: %s", c.args, c.mention, stderr.String())
		}
	}
}

// TestSweepServerModeRefusal surfaces server-side refusals as sweep errors,
// not empty table cells.
func TestSweepServerModeRefusal(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1, QueueDepth: 4, MaxScale: 0.01})
	ts := httptest.NewServer(s)
	defer func() {
		ts.Close()
		s.Drain(5 * time.Second)
	}()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "ht-h", "-scale", "0.05", "-values", "1",
		"-server", ts.URL}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("over-scale server sweep exited %d, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "server refused") {
		t.Errorf("error does not surface the server refusal: %s", stderr.String())
	}
}
