// getm-sweep runs a one-dimensional parameter sweep and prints a table (or
// CSV) of the key metrics per setting — the quickest way to explore a design
// knob beyond the paper's figures.
//
// Usage:
//
//	getm-sweep -bench ht-h -proto getm -knob conc -values 1,2,4,8,16
//	getm-sweep -bench atm  -proto getm -knob gran -values 16,32,64,128 -format csv
//	getm-sweep -bench ht-m -proto warptm -knob inflight -values 1,2,4,8
//
// Knobs: conc (tx warps/core), gran (GETM conflict granularity, bytes),
// meta (GETM precise metadata entries), stall (GETM stall-buffer lines),
// backoff (retry backoff cap, cycles), inflight (WarpTM commit pipelining
// depth), cores (SIMT core count).
//
// Sweep points are independent deterministic simulations, so -workers N runs
// them in parallel; the table is assembled in value order either way.
//
// With -store DIR each completed point is persisted crash-safely and (unless
// -resume=false) points already present in the store — from this or an
// earlier, possibly killed, invocation — are reused instead of re-simulated,
// so a resumed sweep runs only the missing cells and prints a byte-identical
// table. -timeout bounds the whole sweep; points cut short are reported as
// errors and never persisted. Tables only ever contain complete runs, and
// stdout carries nothing but the table: diagnostics (store counts, warnings,
// per-point errors) go to stderr.
//
// Two flags open the protocol policy matrix:
//
//	getm-sweep -policy vm=lazy,cd=eager,arb=local -knob conc -values 1,4,16
//	getm-sweep -policy-grid -bench ht-h,atm -scale 0.1
//
// -policy pins the swept protocol to one matrix point (preset name or axis
// list; overrides -proto; invalid points are a usage error). -policy-grid
// replaces the knob sweep entirely: every implementable matrix point (12 of
// the 24 combinations) runs on each listed benchmark (-bench becomes a
// comma-separated list, default "ht-h,atm"), and the table reports cycles,
// commit throughput, and abort rate per (policy, benchmark) cell.
//
// -server URL submits every point to a running getm-serve instead of
// simulating locally — point it at a cluster coordinator and the sweep
// shards across the fabric's workers. Only the knobs a run request can
// express (conc, cores) and -policy-grid work remotely; -store, -resume,
// and -shards are the server's business and are refused with -server.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/gpu"
	"getm/internal/policy"
	"getm/internal/report"
	"getm/internal/serve"
	"getm/internal/stats"
	"getm/internal/store"
	"getm/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "ht-h", "benchmark to sweep")
	proto := fs.String("proto", "getm", "protocol: getm, warptm, warptm-el, eapg, fglock")
	policyFlag := fs.String("policy", "", "protocol-matrix point: a preset name or an axis list like vm=eager,cd=eager,res=timestamp (overrides -proto)")
	policyGrid := fs.Bool("policy-grid", false, "sweep the full policy matrix instead of a knob: every valid point on each -bench workload")
	knob := fs.String("knob", "conc", "parameter to sweep: conc, gran, meta, stall, backoff, inflight, cores")
	values := fs.String("values", "1,2,4,8,16", "comma-separated knob values")
	scale := fs.Float64("scale", 1.0, "workload scale")
	seed := fs.Uint64("seed", 42, "workload seed")
	conc := fs.Int("conc", 8, "tx warps/core when not the swept knob")
	format := fs.String("format", "text", "output format: text, markdown, csv")
	workers := fs.Int("workers", 1, "run sweep points on this many parallel workers (0 = all CPUs)")
	storeDir := fs.String("store", "", "persist results to (and resume them from) this directory")
	resume := fs.Bool("resume", true, "with -store, reuse existing records instead of re-simulating")
	timeout := fs.Duration("timeout", 0, "abort the sweep after this wall-clock duration (0 = none)")
	shards := fs.Int("shards", 0, "run each point on the parallel engine with this many workers (0 = serial; getm/fglock only)")
	server := fs.String("server", "", "submit sweep points to a running getm-serve (or cluster coordinator) at this base URL instead of simulating locally")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if explicitFlag(fs, "resume") && *storeDir == "" {
		fmt.Fprintln(stderr, "error: -resume requires -store (there is no store to resume from)")
		return 2
	}
	if *server != "" {
		if *storeDir != "" || explicitFlag(fs, "resume") {
			fmt.Fprintln(stderr, "error: -store/-resume cannot be combined with -server (persistence and resume belong to the server's store)")
			return 2
		}
		if *shards != 0 {
			fmt.Fprintln(stderr, "error: -shards cannot be combined with -server (the engine mode is the server's choice)")
			return 2
		}
	}
	var pol policy.Policy
	if *policyFlag != "" {
		p, err := policy.Parse(*policyFlag)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		pol = p
		*proto = p.String()
	}
	if *policyGrid {
		if *policyFlag != "" {
			fmt.Fprintln(stderr, "error: -policy-grid sweeps every valid point; it cannot be combined with -policy")
			return 2
		}
		return runPolicyGrid(stdout, stderr, gridOpts{
			benches: *bench, scale: *scale, seed: *seed, conc: *conc,
			format: *format, workers: *workers, storeDir: *storeDir,
			resume: *resume, timeout: *timeout, server: *server,
			explicitBench: explicitFlag(fs, "bench"),
		})
	}

	if *server != "" && *knob != "conc" && *knob != "cores" {
		fmt.Fprintf(stderr, "error: -server sweeps support only the conc and cores knobs (%q is simulator-internal and not expressible in a run request)\n", *knob)
		return 2
	}

	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(stderr, "bad value %q: %v\n", s, err)
			return 1
		}
		vals = append(vals, v)
	}

	tab := report.NewTable("sweep",
		fmt.Sprintf("%s on %s, sweeping %s", *proto, *bench, *knob),
		*knob, "cycles", "tx exec", "tx wait", "commits", "aborts/1K", "xbar MB")

	variant := workloads.TM
	if gpu.Protocol(*proto) == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}

	configs := make([]gpu.Config, len(vals))
	for i, v := range vals {
		cfg := gpu.DefaultConfig(gpu.Protocol(*proto))
		cfg.Core.MaxTxWarps = *conc
		cfg.Shards = *shards
		cfg.Policy = pol
		switch *knob {
		case "conc":
			cfg.Core.MaxTxWarps = v
		case "gran":
			cfg.GETM.GranularityBytes = v
		case "meta":
			cfg.GETM.PreciseEntries = v
		case "stall":
			cfg.GETM.StallLines = v
		case "backoff":
			cfg.Core.BackoffCap = uint64(v)
		case "inflight":
			cfg.WarpTM.MaxInFlight = v
		case "cores":
			cfg.Cores = v
		default:
			fmt.Fprintf(stderr, "unknown knob %q\n", *knob)
			return 1
		}
		configs[i] = cfg
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var st *store.Store
	if *storeDir != "" {
		st = store.Open(*storeDir)
		if err := st.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
	}

	// Each point is an independent deterministic simulation; run them on a
	// bounded worker pool and keep results indexed so the table order (and
	// therefore the output) matches the serial run exactly. With a store,
	// points persisted by an earlier invocation are loaded instead of re-run.
	par := *workers
	if par <= 0 {
		par = runtime.NumCPU()
	}
	metrics := make([]*stats.Metrics, len(vals))
	errs := make([]error, len(vals))
	var simulated, reused atomic.Int64
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range vals {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if *server != "" {
				sp := serverSweepSpec(*proto, *policyFlag, *bench, *scale, *seed, *conc, *knob, vals[i])
				metrics[i], errs[i] = postPoint(ctx, *server, sp)
				return
			}
			var key string
			if st != nil {
				key = store.Key(configs[i], *bench, *scale, *seed)
				if *resume {
					if m, ok := st.Get(key); ok {
						metrics[i] = m
						reused.Add(1)
						return
					}
				}
			}
			k, err := workloads.Build(*bench, variant, workloads.Params{Scale: *scale, Seed: *seed})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := gpu.RunContext(ctx, configs[i], k)
			if err != nil {
				errs[i] = err
				return
			}
			// A partial point can't sit in a table next to complete ones —
			// the comparison would be meaningless. Treat it as the failure
			// it is; the store backstop refuses truncated metrics anyway.
			if res.Truncated || res.Metrics.Truncated {
				errs[i] = fmt.Errorf("truncated at cycle %d (partial metrics discarded)", res.TruncatedAt)
				return
			}
			metrics[i] = res.Metrics
			simulated.Add(1)
			if st != nil {
				desc := fmt.Sprintf("%s/%s/%s=%d", *proto, *bench, *knob, vals[i])
				if perr := st.Put(key, desc, res.Metrics); perr != nil {
					fmt.Fprintln(stderr, "warning: store:", perr)
				}
			}
		}()
	}
	wg.Wait()
	if st != nil {
		fmt.Fprintf(stderr, "%d simulated, %d reused from store\n", simulated.Load(), reused.Load())
	}

	for i, v := range vals {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "error at %s=%d: %v\n", *knob, v, errs[i])
			return 1
		}
		m := metrics[i]
		tab.AddRow(
			report.Int(uint64(v)),
			report.Int(m.TotalCycles),
			report.Int(m.TxExecCycles),
			report.Int(m.TxWaitCycles),
			report.Int(m.Commits),
			report.Num(m.AbortsPer1KCommits(), 0),
			report.Num(float64(m.XbarBytes())/(1<<20), 2),
		)
	}

	fmt.Fprint(stdout, tab.Render(report.Format(*format)))
	if *format == "text" {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, tab.BarChart("cycles", 40))
	}
	return 0
}

// gridOpts carries the sweep flags the policy-grid mode shares with the
// knob mode.
type gridOpts struct {
	benches       string
	scale         float64
	seed          uint64
	conc          int
	format        string
	workers       int
	storeDir      string
	resume        bool
	timeout       time.Duration
	server        string
	explicitBench bool
}

// runPolicyGrid sweeps the full protocol policy matrix: every implementable
// point (policy.Valid — the four presets plus the eight unexplored valid
// combinations) on every listed benchmark, reporting commit throughput and
// abort rate per cell. Cells are independent deterministic simulations and
// run on the same bounded worker pool as knob sweeps; with -store each cell
// persists under its canonicalized policy key, so preset rows share records
// with name-based runs and a resumed grid re-runs only the missing cells.
func runPolicyGrid(stdout, stderr io.Writer, o gridOpts) int {
	benchList := []string{"ht-h", "atm"}
	if o.explicitBench {
		benchList = nil
		for _, b := range strings.Split(o.benches, ",") {
			if b = strings.TrimSpace(b); b != "" {
				benchList = append(benchList, b)
			}
		}
	}
	points := policy.Valid()

	type cell struct {
		pol   policy.Policy
		bench string
	}
	var cells []cell
	for _, p := range points {
		for _, b := range benchList {
			cells = append(cells, cell{p, b})
		}
	}

	ctx := context.Background()
	if o.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.timeout)
		defer cancel()
	}
	var st *store.Store
	if o.storeDir != "" {
		st = store.Open(o.storeDir)
		if err := st.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
	}

	par := o.workers
	if par <= 0 {
		par = runtime.NumCPU()
	}
	metrics := make([]*stats.Metrics, len(cells))
	errs := make([]error, len(cells))
	var simulated, reused atomic.Int64
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range cells {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if o.server != "" {
				sp := serve.RunSpec{
					Policy:    cells[i].pol.String(),
					Benchmark: cells[i].bench,
					Scale:     o.scale,
					Seed:      o.seed,
					Conc:      o.conc,
				}
				metrics[i], errs[i] = postPoint(ctx, o.server, sp)
				return
			}
			cfg := gpu.DefaultConfig(gpu.Protocol(cells[i].pol.String()))
			cfg.Core.MaxTxWarps = o.conc
			cfg.Policy = cells[i].pol
			var key string
			if st != nil {
				key = store.Key(cfg, cells[i].bench, o.scale, o.seed)
				if o.resume {
					if m, ok := st.Get(key); ok {
						metrics[i] = m
						reused.Add(1)
						return
					}
				}
			}
			k, err := workloads.Build(cells[i].bench, workloads.TM, workloads.Params{Scale: o.scale, Seed: o.seed})
			if err != nil {
				errs[i] = err
				return
			}
			res, err := gpu.RunContext(ctx, cfg, k)
			if err != nil {
				errs[i] = err
				return
			}
			if res.Truncated || res.Metrics.Truncated {
				errs[i] = fmt.Errorf("truncated at cycle %d (partial metrics discarded)", res.TruncatedAt)
				return
			}
			metrics[i] = res.Metrics
			simulated.Add(1)
			if st != nil {
				desc := cells[i].pol.String() + "/" + cells[i].bench
				if perr := st.Put(key, desc, res.Metrics); perr != nil {
					fmt.Fprintln(stderr, "warning: store:", perr)
				}
			}
		}()
	}
	wg.Wait()
	if st != nil {
		fmt.Fprintf(stderr, "%d simulated, %d reused from store\n", simulated.Load(), reused.Load())
	}

	tab := report.NewTable("policy-grid",
		fmt.Sprintf("policy matrix (%d points) × {%s}, scale %g",
			len(points), strings.Join(benchList, ","), o.scale),
		"policy", "bench", "cycles", "commits", "aborts/1K", "commits/Kcyc")
	for i, c := range cells {
		if errs[i] != nil {
			fmt.Fprintf(stderr, "error at %s/%s: %v\n", c.pol, c.bench, errs[i])
			return 1
		}
		m := metrics[i]
		throughput := 0.0
		if m.TotalCycles > 0 {
			throughput = float64(m.Commits) * 1000 / float64(m.TotalCycles)
		}
		tab.AddRow(
			report.Str(c.pol.String()),
			report.Str(c.bench),
			report.Int(m.TotalCycles),
			report.Int(m.Commits),
			report.Num(m.AbortsPer1KCommits(), 0),
			report.Num(throughput, 2),
		)
	}
	fmt.Fprint(stdout, tab.Render(report.Format(o.format)))
	return 0
}

// explicitFlag reports whether the user set the named flag on the command
// line (fs.Visit walks only explicitly-set flags).
func explicitFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
