// getm-sweep runs a one-dimensional parameter sweep and prints a table (or
// CSV) of the key metrics per setting — the quickest way to explore a design
// knob beyond the paper's figures.
//
// Usage:
//
//	getm-sweep -bench ht-h -proto getm -knob conc -values 1,2,4,8,16
//	getm-sweep -bench atm  -proto getm -knob gran -values 16,32,64,128 -format csv
//	getm-sweep -bench ht-m -proto warptm -knob inflight -values 1,2,4,8
//
// Knobs: conc (tx warps/core), gran (GETM conflict granularity, bytes),
// meta (GETM precise metadata entries), stall (GETM stall-buffer lines),
// backoff (retry backoff cap, cycles), inflight (WarpTM commit pipelining
// depth), cores (SIMT core count).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"getm/internal/gpu"
	"getm/internal/report"
	"getm/internal/workloads"
)

func main() {
	bench := flag.String("bench", "ht-h", "benchmark to sweep")
	proto := flag.String("proto", "getm", "protocol: getm, warptm, warptm-el, eapg, fglock")
	knob := flag.String("knob", "conc", "parameter to sweep: conc, gran, meta, stall, backoff, inflight, cores")
	values := flag.String("values", "1,2,4,8,16", "comma-separated knob values")
	scale := flag.Float64("scale", 1.0, "workload scale")
	seed := flag.Uint64("seed", 42, "workload seed")
	conc := flag.Int("conc", 8, "tx warps/core when not the swept knob")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	flag.Parse()

	var vals []int
	for _, s := range strings.Split(*values, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad value %q: %v\n", s, err)
			os.Exit(1)
		}
		vals = append(vals, v)
	}

	tab := report.NewTable("sweep",
		fmt.Sprintf("%s on %s, sweeping %s", *proto, *bench, *knob),
		*knob, "cycles", "tx exec", "tx wait", "commits", "aborts/1K", "xbar MB")

	variant := workloads.TM
	if gpu.Protocol(*proto) == gpu.ProtoFGLock {
		variant = workloads.FGLock
	}

	for _, v := range vals {
		cfg := gpu.DefaultConfig(gpu.Protocol(*proto))
		cfg.Core.MaxTxWarps = *conc
		switch *knob {
		case "conc":
			cfg.Core.MaxTxWarps = v
		case "gran":
			cfg.GETM.GranularityBytes = v
		case "meta":
			cfg.GETM.PreciseEntries = v
		case "stall":
			cfg.GETM.StallLines = v
		case "backoff":
			cfg.Core.BackoffCap = uint64(v)
		case "inflight":
			cfg.WarpTM.MaxInFlight = v
		case "cores":
			cfg.Cores = v
		default:
			fmt.Fprintf(os.Stderr, "unknown knob %q\n", *knob)
			os.Exit(1)
		}

		k, err := workloads.Build(*bench, variant, workloads.Params{Scale: *scale, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		res, err := gpu.Run(cfg, k)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		m := res.Metrics
		tab.AddRow(
			report.Int(uint64(v)),
			report.Int(m.TotalCycles),
			report.Int(m.TxExecCycles),
			report.Int(m.TxWaitCycles),
			report.Int(m.Commits),
			report.Num(m.AbortsPer1KCommits(), 0),
			report.Num(float64(m.XbarBytes())/(1<<20), 2),
		)
	}

	fmt.Print(tab.Render(report.Format(*format)))
	if *format == "text" {
		fmt.Println()
		fmt.Print(tab.BarChart("cycles", 40))
	}
}
