package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// An explicit -resume without -store is a misconfiguration, not a silent
// no-op: there is nothing to resume from.
func TestResumeRequiresStore(t *testing.T) {
	for _, arg := range []string{"-resume", "-resume=false"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{arg, "-bench", "ht-h", "-scale", "0.05", "-values", "1"}, &stdout, &stderr)
		if code != 2 {
			t.Errorf("%s without -store exited %d, want 2", arg, code)
		}
		if !strings.Contains(stderr.String(), "-store") {
			t.Errorf("%s error does not mention -store: %s", arg, stderr.String())
		}
	}
}

// The table on stdout is the contract: adding -store (cold or resumed) or a
// generous -timeout must not change a single byte of it.
func TestStdoutByteIdenticalAcrossModes(t *testing.T) {
	base := []string{"-bench", "ht-h", "-scale", "0.05", "-values", "1,2,4"}
	dir := filepath.Join(t.TempDir(), "results")

	var plain, plainErr bytes.Buffer
	if code := run(base, &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d\nstderr: %s", code, plainErr.String())
	}
	if plain.Len() == 0 {
		t.Fatal("plain run produced no table")
	}

	variants := map[string][]string{
		"cold store":    append(append([]string{}, base...), "-store", dir),
		"resumed store": append(append([]string{}, base...), "-store", dir),
		"timeout":       append(append([]string{}, base...), "-timeout", "60s"),
		"parallel":      append(append([]string{}, base...), "-workers", "4"),
	}
	// Order matters for the store pair; run cold first.
	for _, name := range []string{"cold store", "resumed store", "timeout", "parallel"} {
		var stdout, stderr bytes.Buffer
		if code := run(variants[name], &stdout, &stderr); code != 0 {
			t.Fatalf("%s run exited %d\nstderr: %s", name, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Errorf("%s stdout differs from plain run:\n--- plain ---\n%s--- %s ---\n%s",
				name, plain.String(), name, stdout.String())
		}
	}

	// The store diagnostics live on stderr, never stdout.
	var stdout, stderr bytes.Buffer
	if code := run(variants["resumed store"], &stdout, &stderr); code != 0 {
		t.Fatal("store rerun failed")
	}
	if !strings.Contains(stderr.String(), "0 simulated, 3 reused from store") {
		t.Errorf("resumed run stderr missing reuse count:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "reused") {
		t.Errorf("store diagnostics leaked to stdout:\n%s", stdout.String())
	}
}

// A sweep point cut short by -timeout is an error, not a table row: partial
// metrics must never be tabulated next to complete ones.
func TestTimeoutPointIsError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-bench", "ap", "-scale", "1.0", "-values", "1,2", "-timeout", "5ms"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("timed-out sweep exited 0")
	}
	if stdout.Len() != 0 {
		t.Errorf("timed-out sweep printed a table:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "error at conc=") {
		t.Errorf("stderr does not report the failed point:\n%s", stderr.String())
	}
}

// The policy grid is the ISSUE's deliverable: every valid matrix point (12,
// presets first) on each workload, one row per cell, every cell committing
// work. CSV keeps the assertion parse-light.
func TestPolicyGrid(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-policy-grid", "-scale", "0.05", "-format", "csv"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("policy-grid exited %d\nstderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if lines[0] != "policy,bench,cycles,commits,aborts/1K,commits/Kcyc" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	rows := lines[1:]
	if len(rows) != 24 {
		t.Fatalf("%d grid rows, want 24 (12 valid points x 2 workloads)", len(rows))
	}
	points := map[string]int{}
	for _, ln := range rows {
		f := strings.Split(ln, ",")
		if len(f) < 6 {
			t.Fatalf("malformed row %q", ln)
		}
		// The policy column may itself contain commas (canonical axis
		// tuples); commits is always the 4th field from the end.
		commits := f[len(f)-3]
		if commits == "0" {
			t.Errorf("cell %q committed nothing", ln)
		}
		points[strings.Join(f[:len(f)-5], ",")]++
	}
	if len(points) != 12 {
		t.Errorf("%d distinct policy points, want 12 (%v)", len(points), points)
	}
	for p, n := range points {
		if n != 2 {
			t.Errorf("point %s has %d rows, want one per workload", p, n)
		}
	}
}

// -policy pins every knob-sweep cell to one matrix point; combining it with
// -policy-grid is contradictory and must be a usage error, as must an
// invalid point.
func TestPolicyFlagErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"grid plus point": {"-policy-grid", "-policy", "getm"},
		"invalid point":   {"-policy", "vm=eager,cd=lazy", "-bench", "ht-h", "-scale", "0.05", "-values", "1"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("%s exited %d, want 2 (stderr: %s)", name, code, stderr.String())
		}
	}
}
