// Server-mode sweeps: -server URL submits every sweep point to a running
// getm-serve (or a cluster coordinator, which shards the points across its
// workers) instead of simulating in-process. The table is identical either
// way — simulations are deterministic and the server returns full metrics —
// but persistence, dedupe, and resume belong to the server's store, so
// -store/-resume/-shards are usage errors, and only the knobs a RunSpec can
// express (conc, cores) are sweepable remotely.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"getm/internal/serve"
	"getm/internal/stats"
)

// postPoint submits one sweep point to the server and returns its metrics.
// Any outcome other than a completed run with metrics is an error: a sweep
// table only ever contains complete cells.
func postPoint(ctx context.Context, base string, sp serve.RunSpec) (*stats.Metrics, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return nil, fmt.Errorf("encode spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, "POST",
		strings.TrimRight(base, "/")+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var out serve.Response
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("server answered %d with an undecodable body: %.200s", resp.StatusCode, raw)
	}
	if resp.StatusCode != http.StatusOK {
		msg := out.Error
		if msg == "" {
			msg = http.StatusText(resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return nil, fmt.Errorf("server refused (%d, retry after %ss): %s", resp.StatusCode, ra, msg)
		}
		return nil, fmt.Errorf("server refused (%d): %s", resp.StatusCode, msg)
	}
	if out.Status != "done" {
		return nil, fmt.Errorf("run %s finished %q: %s", out.ID, out.Status, out.Error)
	}
	if out.Metrics == nil {
		return nil, fmt.Errorf("run %s completed without metrics", out.ID)
	}
	return out.Metrics, nil
}

// serverSweepSpec builds the RunSpec for one knob-sweep point. The policy
// flag (already validated by the caller) rides along verbatim — the server
// canonicalizes it exactly like the local path does.
func serverSweepSpec(proto, policyFlag, bench string, scale float64, seed uint64, conc int, knob string, v int) serve.RunSpec {
	sp := serve.RunSpec{Benchmark: bench, Scale: scale, Seed: seed, Conc: conc}
	if policyFlag != "" {
		sp.Policy = policyFlag
	} else {
		sp.Protocol = proto
	}
	switch knob {
	case "conc":
		sp.Conc = v
	case "cores":
		sp.Cores = v
	}
	return sp
}
