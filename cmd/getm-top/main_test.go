package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// cannedScrape is a representative /metrics exposition: the families
// getm-top renders, with label sets exactly as internal/serve emits them.
const cannedScrape = `# HELP getm_serve_requests_total run submissions received
# TYPE getm_serve_requests_total counter
getm_serve_requests_total 1000
# TYPE getm_serve_completed_total counter
getm_serve_completed_total 900
# TYPE getm_serve_failed_total counter
getm_serve_failed_total 1
# TYPE getm_serve_rejected_total counter
getm_serve_rejected_total 40
# TYPE getm_serve_quota_rejected_total counter
getm_serve_quota_rejected_total 10
# TYPE getm_serve_simulated_total counter
getm_serve_simulated_total 300
# TYPE getm_serve_deduped_total counter
getm_serve_deduped_total 500
# TYPE getm_serve_store_hits_total counter
getm_serve_store_hits_total 100
# TYPE getm_serve_queue_depth gauge
getm_serve_queue_depth 3
# TYPE getm_serve_queue_capacity gauge
getm_serve_queue_capacity 64
# TYPE getm_serve_workers gauge
getm_serve_workers 4
# TYPE getm_serve_inflight gauge
getm_serve_inflight 2
# TYPE getm_serve_draining gauge
getm_serve_draining 0
# TYPE getm_serve_coalesce_pending gauge
getm_serve_coalesce_pending 5
# TYPE getm_serve_goroutines gauge
getm_serve_goroutines 23
# TYPE getm_serve_heap_alloc_bytes gauge
getm_serve_heap_alloc_bytes 13631488
# TYPE getm_serve_spans_enabled gauge
getm_serve_spans_enabled 1
# TYPE getm_serve_span_records_total counter
getm_serve_span_records_total 4321
# TYPE getm_serve_span_dropped_total counter
getm_serve_span_dropped_total 0
# TYPE getm_serve_slo_latency_target_seconds gauge
getm_serve_slo_latency_target_seconds 0.25
# TYPE getm_serve_slo_shed_target_ratio gauge
getm_serve_slo_shed_target_ratio 0.01
# TYPE getm_serve_slo_slow_runs_total counter
getm_serve_slo_slow_runs_total 2
# TYPE getm_serve_stage_latency_seconds summary
getm_serve_stage_latency_seconds{stage="queue",quantile="0.5"} 0.00012
getm_serve_stage_latency_seconds{stage="queue",quantile="0.9"} 0.00045
getm_serve_stage_latency_seconds{stage="queue",quantile="0.99"} 0.0012
getm_serve_stage_latency_seconds_sum{stage="queue"} 0.06
getm_serve_stage_latency_seconds_count{stage="queue"} 300
getm_serve_stage_latency_seconds{stage="sim",quantile="0.5"} 0.0081
getm_serve_stage_latency_seconds{stage="sim",quantile="0.9"} 0.009
getm_serve_stage_latency_seconds{stage="sim",quantile="0.99"} 0.0099
getm_serve_stage_latency_seconds_sum{stage="sim"} 2.5
getm_serve_stage_latency_seconds_count{stage="sim"} 300
getm_serve_stage_latency_seconds{stage="persist",quantile="0.5"} 1e-05
getm_serve_stage_latency_seconds{stage="persist",quantile="0.9"} 2e-05
getm_serve_stage_latency_seconds{stage="persist",quantile="0.99"} 0.0004
getm_serve_stage_latency_seconds_sum{stage="persist"} 0.005
getm_serve_stage_latency_seconds_count{stage="persist"} 300
# TYPE getm_serve_run_latency_seconds summary
getm_serve_run_latency_seconds{quantile="0.5"} 0.0083
getm_serve_run_latency_seconds{quantile="0.9"} 0.0092
getm_serve_run_latency_seconds{quantile="0.99"} 0.0102
getm_serve_run_latency_seconds_sum 2.6
getm_serve_run_latency_seconds_count 300
# TYPE getm_serve_http_latency_seconds summary
getm_serve_http_latency_seconds{quantile="0.5"} 0.0001
getm_serve_http_latency_seconds{quantile="0.9"} 0.0003
getm_serve_http_latency_seconds{quantile="0.99"} 0.0009
getm_serve_http_latency_seconds_sum 0.2
getm_serve_http_latency_seconds_count 1000
# TYPE getm_serve_coalesce_flush_latency_seconds summary
getm_serve_coalesce_flush_latency_seconds{quantile="0.5"} 0.001
getm_serve_coalesce_flush_latency_seconds{quantile="0.9"} 0.002
getm_serve_coalesce_flush_latency_seconds{quantile="0.99"} 0.003
getm_serve_coalesce_flush_latency_seconds_sum 0.06
getm_serve_coalesce_flush_latency_seconds_count 56
# TYPE getm_serve_client_requests_total counter
getm_serve_client_requests_total{client="load-0"} 600
getm_serve_client_requests_total{client="load-1"} 400
# TYPE getm_serve_client_shed_total counter
getm_serve_client_shed_total{client="load-0"} 30
getm_serve_client_shed_total{client="load-1"} 20
`

// cannedClusterScrape is the per-peer block a coordinator appends to the
// exposition, exactly as internal/serve emits it.
const cannedClusterScrape = `# TYPE getm_serve_cluster_peers gauge
getm_serve_cluster_peers 2
# TYPE getm_serve_hedges_total counter
getm_serve_hedges_total 3
# TYPE getm_serve_store_peer_fills_total counter
getm_serve_store_peer_fills_total 7
# TYPE getm_serve_peer_healthy gauge
getm_serve_peer_healthy{peer="127.0.0.1:9001"} 1
getm_serve_peer_healthy{peer="127.0.0.1:9002"} 0
# TYPE getm_serve_peer_headroom gauge
getm_serve_peer_headroom{peer="127.0.0.1:9001"} 61
getm_serve_peer_headroom{peer="127.0.0.1:9002"} 0
# TYPE getm_serve_peer_forwarded_total counter
getm_serve_peer_forwarded_total{peer="127.0.0.1:9001"} 640
getm_serve_peer_forwarded_total{peer="127.0.0.1:9002"} 360
# TYPE getm_serve_peer_stolen_total counter
getm_serve_peer_stolen_total{peer="127.0.0.1:9001"} 12
getm_serve_peer_stolen_total{peer="127.0.0.1:9002"} 0
# TYPE getm_serve_peer_hedged_total counter
getm_serve_peer_hedged_total{peer="127.0.0.1:9001"} 3
getm_serve_peer_hedged_total{peer="127.0.0.1:9002"} 0
# TYPE getm_serve_peer_failed_total counter
getm_serve_peer_failed_total{peer="127.0.0.1:9001"} 0
getm_serve_peer_failed_total{peer="127.0.0.1:9002"} 5
# TYPE getm_serve_peer_fills_total counter
getm_serve_peer_fills_total{peer="127.0.0.1:9001"} 7
getm_serve_peer_fills_total{peer="127.0.0.1:9002"} 0
`

func mustParse(t *testing.T, text string) scrape {
	t.Helper()
	s, err := parseScrape(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parseScrape: %v", err)
	}
	return s
}

func TestParseScrape(t *testing.T) {
	s := mustParse(t, cannedScrape)
	checks := map[string]float64{
		"getm_serve_requests_total":                                     1000,
		`getm_serve_stage_latency_seconds{stage="sim",quantile="0.99"}`: 0.0099,
		`getm_serve_client_requests_total{client="load-0"}`:             600,
		"getm_serve_run_latency_seconds_count":                          300,
	}
	for k, want := range checks {
		if got := s.v(k); got != want {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

// TestRenderSmoke drives render with two canned frames and checks the
// dashboard surfaces every section: rates, pool state, SLO, stage table,
// and the client table with computed req/s.
func TestRenderSmoke(t *testing.T) {
	prev := mustParse(t, cannedScrape)
	cur := mustParse(t, cannedScrape)
	// Advance the counters by one second of traffic.
	cur["getm_serve_requests_total"] += 120
	cur["getm_serve_completed_total"] += 110
	cur[`getm_serve_client_requests_total{client="load-0"}`] += 80

	out := render(prev, cur, 1.0, "getm-top — test — 00:00:01 (frame 2)", 8)

	for _, want := range []string{
		"120.0 req/s",
		"110.0 done/s",
		"queue 3/64",
		"inflight 2/4 workers",
		"goroutines 23",
		"13.0MiB",
		"spans on",
		"span records 4321",
		"p99 target 250.00ms",
		"slow runs 2",
		"queue", "sim", "persist", "run (e2e)", "http", "flush",
		"9.90ms",  // sim p99
		"10.20ms", // run p99
		"load-0",
		"80.0", // load-0 req/s over dt=1
		"load-1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q\n%s", want, out)
		}
	}
	// Stage counts resolve through the labeled _count series.
	if !strings.Contains(out, "300") {
		t.Errorf("stage count 300 missing from frame:\n%s", out)
	}
}

// TestRenderPeersTable drives render with the cluster block present: one
// row per configured peer, health flags, and a forwarded rate computed from
// consecutive frames. A standalone scrape must not grow a peers table.
func TestRenderPeersTable(t *testing.T) {
	prev := mustParse(t, cannedScrape+cannedClusterScrape)
	cur := mustParse(t, cannedScrape+cannedClusterScrape)
	cur[`getm_serve_peer_forwarded_total{peer="127.0.0.1:9001"}`] += 50

	out := render(prev, cur, 1.0, "hdr", 8)
	for _, want := range []string{
		"peer", "headroom", "forwarded", "stolen", "hedged", "fills",
		"127.0.0.1:9001", "127.0.0.1:9002",
		"up", "DOWN", // per-peer health flags
		"690",  // 9001 forwarded total after the delta
		"50.0", // its fwd/s over dt=1
		"61",   // 9001 headroom
		"12",   // 9001 stolen
	} {
		if !strings.Contains(out, want) {
			t.Errorf("peers table missing %q\n%s", want, out)
		}
	}
	// The busier peer sorts first.
	if strings.Index(out, "127.0.0.1:9001") > strings.Index(out, "127.0.0.1:9002") {
		t.Errorf("peers not sorted by forwarded desc:\n%s", out)
	}

	if solo := render(nil, mustParse(t, cannedScrape), 0, "hdr", 8); strings.Contains(solo, "headroom") {
		t.Errorf("standalone scrape should not render a peers table:\n%s", solo)
	}
}

// TestRenderFirstFrame: with no previous scrape all rates are zero but the
// totals and latency table still render.
func TestRenderFirstFrame(t *testing.T) {
	cur := mustParse(t, cannedScrape)
	out := render(nil, cur, 0, "hdr", 8)
	if !strings.Contains(out, "0.0 req/s") {
		t.Errorf("first frame should show zero rates:\n%s", out)
	}
	if !strings.Contains(out, "1000 req") {
		t.Errorf("first frame should show request total:\n%s", out)
	}
}

// TestRunAgainstCannedServer exercises the full poll loop — fetch, parse,
// render, frame cadence — against an httptest server replaying the canned
// exposition.
func TestRunAgainstCannedServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(cannedScrape))
	}))
	defer srv.Close()

	var out, errw strings.Builder
	code := run([]string{"-url", srv.URL, "-frames", "2", "-interval", "10ms", "-plain"}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exit %d, stderr: %s", code, errw.String())
	}
	got := out.String()
	if strings.Count(got, "getm-top — ") != 2 {
		t.Errorf("expected 2 frames, got:\n%s", got)
	}
	if strings.Contains(got, "\x1b[") {
		t.Errorf("-plain output must not contain ANSI escapes")
	}
	if !strings.Contains(got, "frame 2") {
		t.Errorf("second frame header missing:\n%s", got)
	}
}

func TestRunScrapeErrorFirstFrame(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-url", "http://127.0.0.1:1", "-frames", "1"}, &out, &errw)
	if code != 1 {
		t.Fatalf("unreachable server should exit 1, got %d", code)
	}
	if !strings.Contains(errw.String(), "scrape error") {
		t.Errorf("stderr should mention the scrape error: %s", errw.String())
	}
}
