// getm-top is a live terminal dashboard over a running getm-serve instance.
// It polls GET /metrics on an interval and renders throughput, queue
// pressure, per-stage latency quantiles, SLO burn, and a per-client
// accounting table — the serving counters getm-serve already exposes,
// turned into something a human can watch during a load run.
//
// Usage:
//
//	getm-top [-url http://127.0.0.1:8344] [-interval 1s] [-frames 0]
//	         [-clients 8] [-plain]
//
// Each frame redraws in place with ANSI control codes; -plain appends
// frames instead (for logs, pipes, and tests). -frames N exits after N
// renders (0 = run until interrupted). Rates (req/s, shed/s, span
// records/s) are first-difference over the poll interval, so the first
// frame shows totals only.
//
// getm-top needs nothing beyond /metrics: it works against any getm-serve,
// though the stage-latency rows and span counters only move when the server
// is doing work (and spans only exist when it runs with -spans).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// scrape is one /metrics exposition, keyed by full series name including
// its label set, e.g. `getm_serve_stage_latency_seconds{stage="sim",quantile="0.99"}`.
type scrape map[string]float64

// parseScrape reads a Prometheus text exposition. Comment and blank lines
// are skipped; each sample line is split at the last space into series and
// value. Unparseable values are skipped rather than fatal — a dashboard
// should degrade, not die, on a family it doesn't know.
func parseScrape(r io.Reader) (scrape, error) {
	s := make(scrape)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		s[strings.TrimSpace(line[:i])] = v
	}
	return s, sc.Err()
}

func fetch(client *http.Client, url string) (scrape, error) {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	return parseScrape(resp.Body)
}

func (s scrape) v(key string) float64 { return s[key] }

// rate is the first-difference of a counter between two scrapes, per
// second. Zero when there is no previous frame or the counter reset.
func rate(prev, cur scrape, key string, dt float64) float64 {
	if prev == nil || dt <= 0 {
		return 0
	}
	d := cur.v(key) - prev.v(key)
	if d < 0 {
		return 0
	}
	return d / dt
}

// fmtDur renders a duration in seconds with an adaptive unit.
func fmtDur(sec float64) string {
	switch {
	case sec <= 0:
		return "0"
	case sec < 1e-3:
		return fmt.Sprintf("%.0fµs", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// clientRow is one client's accounting, pulled from the labeled
// per-client counter families.
type clientRow struct {
	name           string
	requests, shed float64
	rps            float64
}

const clientReqPrefix = `getm_serve_client_requests_total{client="`

// clientRows extracts the per-client table from a scrape, sorted by request
// count descending.
func clientRows(prev, cur scrape, dt float64) []clientRow {
	var rows []clientRow
	for k, v := range cur {
		if !strings.HasPrefix(k, clientReqPrefix) || !strings.HasSuffix(k, `"}`) {
			continue
		}
		esc := k[len(clientReqPrefix) : len(k)-2]
		name := esc
		if u, err := strconv.Unquote(`"` + esc + `"`); err == nil {
			name = u
		}
		rows = append(rows, clientRow{
			name:     name,
			requests: v,
			shed:     cur.v(`getm_serve_client_shed_total{client="` + esc + `"}`),
			rps:      rate(prev, cur, k, dt),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].requests != rows[j].requests {
			return rows[i].requests > rows[j].requests
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// policyRow is one protocol-policy point's accounting, pulled from the
// bounded getm_serve_policy_requests_total family. The label is the full
// policy tuple ("vm=…,cd=…,res=…,arb=…") or "fglock".
type policyRow struct {
	name     string
	requests float64
	rps      float64
}

const policyReqPrefix = `getm_serve_policy_requests_total{policy="`

// policyRows extracts the per-policy table from a scrape, sorted by request
// count descending.
func policyRows(prev, cur scrape, dt float64) []policyRow {
	var rows []policyRow
	for k, v := range cur {
		if !strings.HasPrefix(k, policyReqPrefix) || !strings.HasSuffix(k, `"}`) {
			continue
		}
		esc := k[len(policyReqPrefix) : len(k)-2]
		name := esc
		if u, err := strconv.Unquote(`"` + esc + `"`); err == nil {
			name = u
		}
		rows = append(rows, policyRow{name: name, requests: v, rps: rate(prev, cur, k, dt)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].requests != rows[j].requests {
			return rows[i].requests > rows[j].requests
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// peerRow is one cluster peer's routing accounting, pulled from the
// per-peer counter families a coordinator (or store-syncing worker) exposes.
type peerRow struct {
	name                      string
	healthy                   bool
	headroom                  float64
	forwarded, stolen, hedged float64
	failed, fills             float64
	fwdRate                   float64
}

const peerHealthyPrefix = `getm_serve_peer_healthy{peer="`

// peerRows extracts the cluster peers table from a scrape, sorted by
// forwarded count descending. Empty on a standalone server — the peer
// families only exist when the node runs with peers.
func peerRows(prev, cur scrape, dt float64) []peerRow {
	var rows []peerRow
	for k, v := range cur {
		if !strings.HasPrefix(k, peerHealthyPrefix) || !strings.HasSuffix(k, `"}`) {
			continue
		}
		esc := k[len(peerHealthyPrefix) : len(k)-2]
		name := esc
		if u, err := strconv.Unquote(`"` + esc + `"`); err == nil {
			name = u
		}
		fwdKey := `getm_serve_peer_forwarded_total{peer="` + esc + `"}`
		rows = append(rows, peerRow{
			name:      name,
			healthy:   v > 0,
			headroom:  cur.v(`getm_serve_peer_headroom{peer="` + esc + `"}`),
			forwarded: cur.v(fwdKey),
			stolen:    cur.v(`getm_serve_peer_stolen_total{peer="` + esc + `"}`),
			hedged:    cur.v(`getm_serve_peer_hedged_total{peer="` + esc + `"}`),
			failed:    cur.v(`getm_serve_peer_failed_total{peer="` + esc + `"}`),
			fills:     cur.v(`getm_serve_peer_fills_total{peer="` + esc + `"}`),
			fwdRate:   rate(prev, cur, fwdKey, dt),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].forwarded != rows[j].forwarded {
			return rows[i].forwarded > rows[j].forwarded
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// stageRow names one latency summary's series for the stage table.
type stageRow struct {
	label string
	key   string // series name with label set, sans quantile
}

var stageRows = []stageRow{
	{"queue", `getm_serve_stage_latency_seconds{stage="queue",`},
	{"sim", `getm_serve_stage_latency_seconds{stage="sim",`},
	{"persist", `getm_serve_stage_latency_seconds{stage="persist",`},
}

// render produces one dashboard frame from two consecutive scrapes. It is a
// pure function of its inputs so tests can drive it with canned expositions.
func render(prev, cur scrape, dt float64, header string, topClients int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", header)

	reqRate := rate(prev, cur, "getm_serve_requests_total", dt)
	doneRate := rate(prev, cur, "getm_serve_completed_total", dt)
	simRate := rate(prev, cur, "getm_serve_simulated_total", dt)
	dedupeRate := rate(prev, cur, "getm_serve_deduped_total", dt) +
		rate(prev, cur, "getm_serve_store_hits_total", dt)
	shedTotal := cur.v("getm_serve_rejected_total") + cur.v("getm_serve_quota_rejected_total")
	shedRate := rate(prev, cur, "getm_serve_rejected_total", dt) +
		rate(prev, cur, "getm_serve_quota_rejected_total", dt)
	fmt.Fprintf(&b, "rate      %8.1f req/s   %8.1f done/s   %8.1f sim/s   %8.1f dedupe/s   %8.1f shed/s\n",
		reqRate, doneRate, simRate, dedupeRate, shedRate)

	req := cur.v("getm_serve_requests_total")
	shedRatio := 0.0
	if req > 0 {
		shedRatio = shedTotal / req
	}
	fmt.Fprintf(&b, "totals    %8.0f req      %8.0f done     %8.0f failed   %8.0f shed (%.2f%%)\n",
		req, cur.v("getm_serve_completed_total"), cur.v("getm_serve_failed_total"),
		shedTotal, shedRatio*100)

	draining := "no"
	if cur.v("getm_serve_draining") > 0 {
		draining = "YES"
	}
	fmt.Fprintf(&b, "pool      queue %.0f/%.0f   inflight %.0f/%.0f workers   coalesce pending %.0f   draining %s\n",
		cur.v("getm_serve_queue_depth"), cur.v("getm_serve_queue_capacity"),
		cur.v("getm_serve_inflight"), cur.v("getm_serve_workers"),
		cur.v("getm_serve_coalesce_pending"), draining)

	spans := "off"
	spanLine := ""
	if cur.v("getm_serve_spans_enabled") > 0 {
		spans = "on"
		spanLine = fmt.Sprintf("   span records %.0f (+%.0f/s, dropped %.0f)",
			cur.v("getm_serve_span_records_total"),
			rate(prev, cur, "getm_serve_span_records_total", dt),
			cur.v("getm_serve_span_dropped_total"))
	}
	fmt.Fprintf(&b, "runtime   goroutines %.0f   heap %s   spans %s%s\n",
		cur.v("getm_serve_goroutines"), fmtBytes(cur.v("getm_serve_heap_alloc_bytes")),
		spans, spanLine)

	fmt.Fprintf(&b, "SLO       p99 target %s   slow runs %.0f (+%.1f/s)   shed target %.2f%%   shed now %.2f%%\n\n",
		fmtDur(cur.v("getm_serve_slo_latency_target_seconds")),
		cur.v("getm_serve_slo_slow_runs_total"),
		rate(prev, cur, "getm_serve_slo_slow_runs_total", dt),
		cur.v("getm_serve_slo_shed_target_ratio")*100, shedRatio*100)

	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s\n", "stage", "p50", "p90", "p99", "count")
	for _, st := range stageRows {
		countKey := strings.TrimSuffix(strings.Replace(st.key, "_seconds{", "_seconds_count{", 1), ",") + "}"
		fmt.Fprintf(&b, "%-10s %10s %10s %10s %10.0f\n", st.label,
			fmtDur(cur.v(st.key+`quantile="0.5"}`)),
			fmtDur(cur.v(st.key+`quantile="0.9"}`)),
			fmtDur(cur.v(st.key+`quantile="0.99"}`)),
			cur.v(countKey))
	}
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10.0f\n", "run (e2e)",
		fmtDur(cur.v(`getm_serve_run_latency_seconds{quantile="0.5"}`)),
		fmtDur(cur.v(`getm_serve_run_latency_seconds{quantile="0.9"}`)),
		fmtDur(cur.v(`getm_serve_run_latency_seconds{quantile="0.99"}`)),
		cur.v("getm_serve_run_latency_seconds_count"))
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10.0f\n", "http",
		fmtDur(cur.v(`getm_serve_http_latency_seconds{quantile="0.5"}`)),
		fmtDur(cur.v(`getm_serve_http_latency_seconds{quantile="0.9"}`)),
		fmtDur(cur.v(`getm_serve_http_latency_seconds{quantile="0.99"}`)),
		cur.v("getm_serve_http_latency_seconds_count"))
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10.0f\n", "flush",
		fmtDur(cur.v(`getm_serve_coalesce_flush_latency_seconds{quantile="0.5"}`)),
		fmtDur(cur.v(`getm_serve_coalesce_flush_latency_seconds{quantile="0.9"}`)),
		fmtDur(cur.v(`getm_serve_coalesce_flush_latency_seconds{quantile="0.99"}`)),
		cur.v("getm_serve_coalesce_flush_latency_seconds_count"))

	rows := clientRows(prev, cur, dt)
	if len(rows) > 0 {
		fmt.Fprintf(&b, "\n%-20s %10s %10s %10s\n", "client", "requests", "req/s", "shed")
		for i, r := range rows {
			if i >= topClients {
				fmt.Fprintf(&b, "  … %d more\n", len(rows)-i)
				break
			}
			fmt.Fprintf(&b, "%-20s %10.0f %10.1f %10.0f\n", r.name, r.requests, r.rps, r.shed)
		}
	}

	// The per-policy table is bounded by construction (12 matrix points plus
	// fglock plus the overflow row), so it renders in full.
	prows := policyRows(prev, cur, dt)
	if len(prows) > 0 {
		fmt.Fprintf(&b, "\n%-44s %10s %10s\n", "policy", "requests", "req/s")
		for _, r := range prows {
			fmt.Fprintf(&b, "%-44s %10.0f %10.1f\n", r.name, r.requests, r.rps)
		}
	}

	// The peers table is bounded by the configured peer list, so it renders
	// in full; absent entirely on a standalone server.
	if perows := peerRows(prev, cur, dt); len(perows) > 0 {
		fmt.Fprintf(&b, "\n%-24s %8s %9s %10s %8s %8s %8s %8s %8s\n",
			"peer", "healthy", "headroom", "forwarded", "fwd/s", "stolen", "hedged", "failed", "fills")
		for _, r := range perows {
			health := "up"
			if !r.healthy {
				health = "DOWN"
			}
			fmt.Fprintf(&b, "%-24s %8s %9.0f %10.0f %8.1f %8.0f %8.0f %8.0f %8.0f\n",
				r.name, health, r.headroom, r.forwarded, r.fwdRate,
				r.stolen, r.hedged, r.failed, r.fills)
		}
	}
	return b.String()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:8344", "getm-serve base URL")
	interval := fs.Duration("interval", time.Second, "poll interval")
	frames := fs.Int("frames", 0, "frames to render before exiting (0 = run until interrupted)")
	topClients := fs.Int("clients", 8, "client table rows before folding the tail")
	plain := fs.Bool("plain", false, "append frames instead of redrawing in place (no ANSI codes)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *interval <= 0 {
		fmt.Fprintln(stderr, "error: -interval must be positive")
		return 2
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var prev scrape
	var prevAt time.Time
	for frame := 1; *frames == 0 || frame <= *frames; frame++ {
		if frame > 1 {
			time.Sleep(*interval)
		}
		now := time.Now()
		cur, err := fetch(client, *url)
		if err != nil {
			fmt.Fprintln(stderr, "scrape error:", err)
			if prev == nil {
				return 1
			}
			continue
		}
		dt := now.Sub(prevAt).Seconds()
		header := fmt.Sprintf("getm-top — %s — %s (frame %d)",
			*url, now.Format("15:04:05"), frame)
		if !*plain {
			fmt.Fprint(stdout, "\x1b[H\x1b[2J")
		}
		fmt.Fprint(stdout, render(prev, cur, dt, header, *topClients))
		if *plain {
			fmt.Fprintln(stdout)
		}
		prev, prevAt = cur, now
	}
	return 0
}
