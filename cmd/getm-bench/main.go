// getm-bench regenerates the paper's evaluation figures and tables.
//
// Usage:
//
//	getm-bench                 # run every experiment
//	getm-bench fig11 table4    # run specific ones
//	getm-bench -scale 0.25 all # quick pass at reduced workload scale
//	getm-bench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"getm/internal/harness"
	"getm/internal/report"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction scale)")
	seed := flag.Uint64("seed", 42, "workload seed")
	list := flag.Bool("list", false, "list experiments and exit")
	verbose := flag.Bool("v", false, "log each simulation run")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	chart := flag.Bool("chart", false, "append an ASCII bar chart of each table's last column")
	par := flag.Int("par", 1, "precompute the full run grid with this many workers (0 = all CPUs, 1 = lazy sequential)")
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}

	r := harness.NewRunner(*scale)
	r.Seed = *seed
	if *verbose {
		r.Verbose = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *par != 1 {
		// Fill the cache with a worker pool; each simulation is
		// deterministic and independent, so only wall-clock time changes.
		harness.Precompute(r, *par)
	}

	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(1)
		}
		start := time.Now()
		rep := e.Run(r)
		fmt.Print(rep.Render(report.Format(*format)))
		if *chart {
			for _, t := range rep.Tables {
				if len(t.Columns) > 1 {
					fmt.Print(t.BarChart(t.Columns[len(t.Columns)-1], 40))
				}
			}
		}
		if *format == "text" {
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
	}
}
