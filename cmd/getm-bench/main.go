// getm-bench regenerates the paper's evaluation figures and tables.
//
// Usage:
//
//	getm-bench                     # run every experiment
//	getm-bench fig11 table4        # run specific ones
//	getm-bench -scale 0.25 all     # quick pass at reduced workload scale
//	getm-bench -workers 0 all      # parallel simulation on all CPUs
//	getm-bench -list               # list experiment ids
//	getm-bench -cpuprofile cpu.pb  # profile the run (also -memprofile)
//	getm-bench -trace run.json     # also record a traced reference run
//	getm-bench -policy vm=lazy,cd=eager fig11
//	                               # pin every TM cell to one matrix point
//
// With -trace, one designated simulation (ht-h on GETM at the chosen -scale
// and -seed) is run with the machine-wide recorder attached and exported to
// the given file; -trace-format, -trace-filter, and -sample-interval match
// getm-sim. The experiments themselves always run untraced — tracing is a
// separate reference run so the memoized grid stays byte-identical.
//
// With -workers N the full run grid is precomputed on N parallel workers and
// the experiments themselves execute concurrently; every simulation is
// deterministic and deduplicated by the harness, so the report output on
// stdout is byte-identical to a serial run (progress and timing go to
// stderr).
//
// With -store DIR every completed simulation is persisted to a crash-safe
// result store, and (unless -resume=false) cells already present — from this
// or an earlier, possibly killed, invocation — are loaded instead of re-run,
// so an interrupted full-scale campaign resumed against the same directory
// simulates only the missing cells and prints byte-identical reports.
// -timeout bounds the run; on expiry in-flight simulations stop within one
// chunk of cycles, nothing partial is persisted, and the exit status is
// nonzero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"getm/internal/gpu"
	"getm/internal/harness"
	"getm/internal/policy"
	"getm/internal/report"
	"getm/internal/store"
	"getm/internal/trace"
	"getm/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("getm-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 1.0, "workload scale factor (1.0 = full reproduction scale)")
	seed := fs.Uint64("seed", 42, "workload seed")
	list := fs.Bool("list", false, "list experiments and exit")
	verbose := fs.Bool("v", false, "log each simulation run")
	format := fs.String("format", "text", "output format: text, markdown, csv")
	chart := fs.Bool("chart", false, "append an ASCII bar chart of each table's last column")
	workers := fs.Int("workers", 1, "simulation workers: precompute the run grid and execute experiments in parallel (0 = all CPUs, 1 = lazy sequential)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	traceFile := fs.String("trace", "", "record a traced ht-h/GETM reference run to this file")
	traceFormat := fs.String("trace-format", trace.FormatPerfetto, "trace output format: perfetto, csv, text")
	traceFilter := fs.String("trace-filter", "all", "comma-separated event sources to record, or 'all'")
	sampleInterval := fs.Uint64("sample-interval", 1000, "cycles between telemetry samples (0 disables sampling)")
	storeDir := fs.String("store", "", "persist results to (and resume them from) this directory")
	resume := fs.Bool("resume", true, "with -store, reuse existing records instead of re-simulating")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none)")
	shards := fs.Int("shards", 0, "run shardable cells (getm/fglock) on the parallel engine with this many workers (0 = serial)")
	policyFlag := fs.String("policy", "", "pin every TM cell to one protocol-matrix point (preset name or axis list; fglock cells unaffected)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if explicitFlag(fs, "resume") && *storeDir == "" {
		fmt.Fprintln(stderr, "error: -resume requires -store (there is no store to resume from)")
		return 2
	}
	var pol policy.Policy
	if *policyFlag != "" {
		p, err := policy.Parse(*policyFlag)
		if err != nil {
			fmt.Fprintln(stderr, "error:", err)
			return 2
		}
		pol = p
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if *traceFile != "" {
		if err := traceReferenceRun(*traceFile, *traceFormat, *traceFilter, *sampleInterval, *scale, *seed); err != nil {
			fmt.Fprintln(stderr, "trace:", err)
			return 1
		}
		fmt.Fprintf(stderr, "trace written to %s (%s)\n", *traceFile, *traceFormat)
	}

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	}

	exps := make([]harness.Experiment, len(ids))
	for i, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
			return 1
		}
		exps[i] = e
	}

	r := harness.NewRunner(*scale)
	r.Seed = *seed
	r.Shards = *shards
	r.Policy = pol
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		r.Ctx = ctx
	}
	if *storeDir != "" {
		r.Store = store.Open(*storeDir)
		if err := r.Store.Degraded(); err != nil {
			fmt.Fprintln(stderr, "warning: store degraded (results will not persist):", err)
		}
		r.StoreReuse = *resume
	}
	if *verbose {
		var logMu sync.Mutex
		r.Verbose = func(s string) {
			logMu.Lock()
			fmt.Fprintln(stderr, s)
			logMu.Unlock()
		}
	}

	par := *workers
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par != 1 {
		// Fill the cache with a worker pool; each simulation is
		// deterministic and deduplicated, so only wall-clock time changes.
		// The runner's Progress hook drives a throttled progress/ETA line —
		// a full-scale grid runs for minutes, and a silent terminal is
		// indistinguishable from a hung one.
		start := time.Now()
		var progMu sync.Mutex
		var lastLine time.Time
		r.Progress = func(done, total int) {
			progMu.Lock()
			defer progMu.Unlock()
			now := time.Now()
			if done < total && now.Sub(lastLine) < time.Second {
				return
			}
			lastLine = now
			elapsed := time.Since(start)
			eta := time.Duration(0)
			if done > 0 {
				eta = elapsed / time.Duration(done) * time.Duration(total-done)
			}
			fmt.Fprintf(stderr, "precompute %d/%d (%.0f%%) elapsed %s eta %s\n",
				done, total, 100*float64(done)/float64(total),
				elapsed.Round(time.Second), eta.Round(time.Second))
		}
		if err := harness.Precompute(r, par); err != nil {
			fmt.Fprintln(stderr, "precompute:", err)
		}
		r.Progress = nil
		fmt.Fprintf(stderr, "precomputed run grid on %d workers (%.1fs)\n", par, time.Since(start).Seconds())
	}

	// Render every experiment (concurrently when -workers allows: the runner
	// is thread-safe and memoizing), then print in request order so stdout
	// is identical regardless of parallelism.
	outputs := make([]string, len(exps))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			rep := e.Run(r)
			out := rep.Render(report.Format(*format))
			if *chart {
				for _, t := range rep.Tables {
					if len(t.Columns) > 1 {
						out += t.BarChart(t.Columns[len(t.Columns)-1], 40)
					}
				}
			}
			outputs[i] = out
			fmt.Fprintf(stderr, "%-8s (%.1fs)\n", e.ID, time.Since(start).Seconds())
		}()
	}
	wg.Wait()
	for _, out := range outputs {
		fmt.Fprint(stdout, out)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(stderr, "memprofile:", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "memprofile:", err)
			return 1
		}
	}

	if r.Store != nil {
		fmt.Fprintf(stderr, "%d simulated, %d reused from store\n", r.Simulated(), r.StoreHits())
	}
	if err := r.Err(); err != nil {
		fmt.Fprintln(stderr, "simulation failures:")
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// explicitFlag reports whether the user set the named flag on the command
// line (fs.Visit walks only explicitly-set flags).
func explicitFlag(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// traceReferenceRun executes the designated traced simulation (ht-h on GETM)
// and exports the recorder.
func traceReferenceRun(path, format, filter string, interval uint64, scale float64, seed uint64) error {
	mask, err := trace.ParseSources(filter)
	if err != nil {
		return err
	}
	k, err := workloads.Build("ht-h", workloads.TM, workloads.Params{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	cfg := gpu.DefaultConfig(gpu.ProtoGETM)
	cfg.Trace = &trace.Options{Sources: mask, SampleInterval: interval}
	res, err := gpu.Run(cfg, k)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Export(f, res.Trace, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
