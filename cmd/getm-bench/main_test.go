package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// An explicit -resume without -store is a misconfiguration, not a silent
// no-op: there is nothing to resume from.
func TestResumeRequiresStore(t *testing.T) {
	for _, arg := range []string{"-resume", "-resume=false"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{arg, "-list"}, &stdout, &stderr)
		if code != 2 {
			t.Errorf("%s without -store exited %d, want 2", arg, code)
		}
		if !strings.Contains(stderr.String(), "-store") {
			t.Errorf("%s error does not mention -store: %s", arg, stderr.String())
		}
	}
}

// The report on stdout is the contract: adding -store (cold or resumed) or a
// generous -timeout must not change a single byte of it, and the store
// diagnostics stay on stderr.
func TestStdoutByteIdenticalAcrossModes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// Flag parsing stops at the first positional argument, so variant flags
	// go before the experiment id.
	base := []string{"-scale", "0.05"}
	dir := filepath.Join(t.TempDir(), "results")

	var plain, plainErr bytes.Buffer
	if code := run(append(append([]string{}, base...), "fig11"), &plain, &plainErr); code != 0 {
		t.Fatalf("plain run exited %d\nstderr: %s", code, plainErr.String())
	}
	if !strings.Contains(plain.String(), "fig11") {
		t.Fatalf("plain run produced no report:\n%s", plain.String())
	}

	for _, v := range []struct {
		name string
		args []string
	}{
		{"cold store", append(append([]string{}, base...), "-store", dir, "fig11")},
		{"resumed store", append(append([]string{}, base...), "-store", dir, "fig11")},
		{"timeout", append(append([]string{}, base...), "-timeout", "120s", "fig11")},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(v.args, &stdout, &stderr); code != 0 {
			t.Fatalf("%s run exited %d\nstderr: %s", v.name, code, stderr.String())
		}
		if stdout.String() != plain.String() {
			t.Errorf("%s stdout differs from plain run", v.name)
		}
		if strings.Contains(stdout.String(), "reused from store") {
			t.Errorf("%s leaked store diagnostics to stdout", v.name)
		}
	}
}

// -list writes the experiment ids to stdout (it is data, not a diagnostic).
func TestListOnStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, id := range []string{"fig11", "table4"} {
		if !strings.Contains(stdout.String(), id) {
			t.Errorf("-list stdout missing %s:\n%s", id, stdout.String())
		}
	}
	if stderr.Len() != 0 {
		t.Errorf("-list wrote to stderr: %s", stderr.String())
	}
}
