package getm_test

// Tests for the policy-matrix surface of the public API: preset
// enumeration, parsing, and the invalid-combination contract (every
// rejected point fails with errors.Is(err, ErrInvalidPolicy) on both the
// v1 and v2 entry points).

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"getm"
)

// allCombos enumerates the 24 syntactic matrix points through the public
// axis constants.
func allCombos() []getm.Policy {
	var out []getm.Policy
	for _, vm := range []string{getm.VMEager, getm.VMLazy} {
		for _, cd := range []string{getm.CDEager, getm.CDLazy} {
			for _, res := range []string{getm.ResRequesterWins, getm.ResFirstWriterWins, getm.ResTimestampOrder} {
				for _, arb := range []string{getm.ArbLocal, getm.ArbRing} {
					out = append(out, getm.Policy{
						VersionMgmt:    vm,
						ConflictDetect: cd,
						Resolution:     res,
						Arbitration:    arb,
					})
				}
			}
		}
	}
	return out
}

// Policies must expose exactly the 12 implementable points, presets first,
// and partition the 24 combinations cleanly with Validate.
func TestPoliciesEnumeration(t *testing.T) {
	pols := getm.Policies()
	if len(pols) != 12 {
		t.Fatalf("Policies() has %d points, want 12", len(pols))
	}
	wantFirst := []getm.Policy{getm.GETM(), getm.WarpTM(), getm.WarpTMEL(), getm.EAPG()}
	for i, w := range wantFirst {
		if pols[i] != w {
			t.Errorf("Policies()[%d] = %v, want preset %v", i, pols[i], w)
		}
	}
	valid := map[getm.Policy]bool{}
	for _, p := range pols {
		if err := p.Validate(); err != nil {
			t.Errorf("listed policy %v fails Validate: %v", p, err)
		}
		valid[p] = true
	}
	invalid := 0
	for _, p := range allCombos() {
		if valid[p] {
			continue
		}
		invalid++
		if err := p.Validate(); !errors.Is(err, getm.ErrInvalidPolicy) {
			t.Errorf("unlisted combo %v: Validate err %v, want ErrInvalidPolicy", p, err)
		}
	}
	if invalid != 12 {
		t.Errorf("%d combos outside Policies(), want 12", invalid)
	}
}

// ParsePolicy must accept preset names and axis lists, and reject the rest
// with ErrInvalidPolicy.
func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]getm.Policy{
		"getm":      getm.GETM(),
		"warptm":    getm.WarpTM(),
		"warptm-el": getm.WarpTMEL(),
		"eapg":      getm.EAPG(),
		"vm=lazy,cd=eager,res=fww,arb=ring": {
			VersionMgmt:    getm.VMLazy,
			ConflictDetect: getm.CDEager,
			Resolution:     getm.ResFirstWriterWins,
			Arbitration:    getm.ArbRing,
		},
	} {
		got, err := getm.ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "fglock", "vm=eager,cd=lazy", "speed=fast"} {
		if _, err := getm.ParsePolicy(in); !errors.Is(err, getm.ErrInvalidPolicy) {
			t.Errorf("ParsePolicy(%q): err %v, want ErrInvalidPolicy", in, err)
		}
	}
}

// Every invalid combination must be rejected by Run before any simulation,
// with an error matching ErrInvalidPolicy.
func TestRunInvalidPolicy(t *testing.T) {
	for _, p := range allCombos() {
		if p.Validate() == nil {
			continue
		}
		_, err := getm.Run(getm.Options{Policy: p, Benchmark: "atm", Scale: 0.02})
		if !errors.Is(err, getm.ErrInvalidPolicy) {
			t.Errorf("Run with %v: err %v, want ErrInvalidPolicy", p, err)
		}
	}
}

// The v2 experiment runner must reject an invalid policy the same way —
// eagerly, before touching the experiment grid.
func TestRunExperimentInvalidPolicy(t *testing.T) {
	bad := getm.Policy{
		VersionMgmt:    getm.VMEager,
		ConflictDetect: getm.CDLazy,
		Resolution:     getm.ResTimestampOrder,
		Arbitration:    getm.ArbLocal,
	}
	_, err := getm.RunExperimentContext(context.Background(), "fig3", getm.WithPolicy(bad))
	if !errors.Is(err, getm.ErrInvalidPolicy) {
		t.Errorf("RunExperimentContext: err %v, want ErrInvalidPolicy", err)
	}
}

// A preset policy and its protocol name must produce identical metrics
// through the public Run — the user-visible half of the preset-identity
// guarantee (the store-address half is pinned in internal/store).
func TestRunPolicyPresetIdentity(t *testing.T) {
	for _, c := range []struct {
		name   string
		policy getm.Policy
	}{
		{"getm", getm.GETM()},
		{"warptm", getm.WarpTM()},
	} {
		byName, err := getm.Run(getm.Options{Protocol: c.name, Benchmark: "ht-h", Scale: 0.05, Concurrency: 4})
		if err != nil {
			t.Fatal(err)
		}
		byPolicy, err := getm.Run(getm.Options{Policy: c.policy, Benchmark: "ht-h", Scale: 0.05, Concurrency: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(byName, byPolicy) {
			t.Errorf("%s: metrics differ between name and preset selection:\nname:   %+v\npolicy: %+v",
				c.name, byName, byPolicy)
		}
	}
}

// A valid non-preset point must run through the public API.
func TestRunNonPresetPolicy(t *testing.T) {
	p := getm.Policy{
		VersionMgmt:    getm.VMLazy,
		ConflictDetect: getm.CDEager,
		Resolution:     getm.ResFirstWriterWins,
		Arbitration:    getm.ArbRing,
	}
	m, err := getm.Run(getm.Options{Policy: p, Benchmark: "atm", Scale: 0.05, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Commits == 0 {
		t.Error("no commits from non-preset policy run")
	}
}
