// Protocol head-to-head: run every synchronization mechanism on one
// benchmark and compare runtime, abort behaviour, and traffic — a compact
// version of the paper's Figs 10-12. The four TM protocols are selected as
// policy-matrix presets; fglock is the one name-only mechanism (locks are
// not a TM policy).
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"getm"
)

func main() {
	bench := flag.String("bench", "ht-h", "benchmark to compare on")
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	// The presets plus the lock baseline; a zero Policy falls back to the
	// name in Protocol.
	mechanisms := []struct {
		name   string
		policy getm.Policy
		proto  string
	}{
		{"getm", getm.GETM(), ""},
		{"warptm", getm.WarpTM(), ""},
		{"warptm-el", getm.WarpTMEL(), ""},
		{"eapg", getm.EAPG(), ""},
		{"fglock", getm.Policy{}, getm.FGLock},
	}

	type row struct {
		proto  string
		m      getm.Metrics
		topCay string
	}
	var rows []row
	for _, mech := range mechanisms {
		m, err := getm.Run(getm.Options{
			Policy:      mech.policy,
			Protocol:    mech.proto,
			Benchmark:   *bench,
			Concurrency: 8,
			Scale:       *scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Dominant abort cause, for the story behind the numbers.
		type kv struct {
			k string
			v uint64
		}
		var causes []kv
		for k, v := range m.AbortsByCause {
			causes = append(causes, kv{k, v})
		}
		sort.Slice(causes, func(i, j int) bool { return causes[i].v > causes[j].v })
		top := "-"
		if len(causes) > 0 && causes[0].v > 0 {
			top = fmt.Sprintf("%s (%d)", causes[0].k, causes[0].v)
		}
		rows = append(rows, row{mech.name, m, top})
	}

	base := rows[0].m.TotalCycles // first protocol (getm) as reference
	fmt.Printf("benchmark %s at 8 tx warps/core\n\n", *bench)
	fmt.Printf("%-10s %12s %8s %10s %14s %12s  %s\n",
		"protocol", "cycles", "rel", "commits", "aborts/1K", "xbar bytes", "top abort cause")
	for _, r := range rows {
		fmt.Printf("%-10s %12d %8.2f %10d %14.0f %12d  %s\n",
			r.proto, r.m.TotalCycles, float64(r.m.TotalCycles)/float64(base),
			r.m.Commits, r.m.AbortsPer1KCommits(), r.m.InterconnectBytes, r.topCay)
	}
	fmt.Println("\nGETM tolerates far higher abort rates than WarpTM because aborts are")
	fmt.Println("detected at access time and cost no validation round trips; the lock")
	fmt.Println("version pays per-acquisition atomics instead of commit machinery.")
}
