// Quickstart: run the ATM bank-transfer benchmark on GETM and print the
// headline metrics. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"getm"
)

func main() {
	metrics, err := getm.Run(getm.Options{
		Policy:      getm.GETM(),
		Benchmark:   "atm",
		Concurrency: 4,   // transactional warps allowed per SIMT core
		Scale:       0.5, // half-size workload for a fast demo
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("GETM on the ATM bank-transfer benchmark")
	fmt.Printf("  simulated cycles      %d\n", metrics.TotalCycles)
	fmt.Printf("  committed txs         %d\n", metrics.Commits)
	fmt.Printf("  aborted tx attempts   %d (%.0f per 1K commits)\n",
		metrics.Aborts, metrics.AbortsPer1KCommits())
	fmt.Printf("  interconnect traffic  %d bytes\n", metrics.InterconnectBytes)
	fmt.Printf("  metadata access cost  %.2f cycles/request\n", metrics.MetaAccessCycles)

	// The same workload under the hand-tuned fine-grained-lock version.
	locks, err := getm.Run(getm.Options{
		Protocol:  getm.FGLock,
		Benchmark: "atm",
		Scale:     0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfine-grained locks        %d cycles\n", locks.TotalCycles)
	fmt.Printf("GETM relative runtime     %.2fx\n",
		float64(metrics.TotalCycles)/float64(locks.TotalCycles))
}
