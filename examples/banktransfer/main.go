// Bank transfer deep-dive: the paper's running example (Fig 1 / Fig 7).
// Runs the ATM workload under GETM across metadata granularities and
// concurrency limits, showing how eager conflict detection behaves as
// contention knobs move — and verifying the money-conservation invariant
// held in every configuration (the gpu runner re-checks it after each run).
package main

import (
	"fmt"
	"log"

	"getm"
)

func main() {
	const scale = 0.25

	fmt.Println("ATM transfers under GETM (Fig 1's txbegin/txcommit version)")
	fmt.Println()

	// 1. Granularity sweep: coarser conflict granules produce false sharing
	//    between unrelated accounts (Fig 14 bottom).
	fmt.Println("conflict-detection granularity sweep (8 tx warps/core):")
	fmt.Printf("%-12s %12s %14s %16s\n", "granularity", "cycles", "aborts/1K", "stalled reqs max")
	for _, g := range []int{16, 32, 64, 128} {
		m, err := getm.Run(getm.Options{
			Benchmark:        "atm",
			Concurrency:      8,
			Scale:            scale,
			GranularityBytes: g,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%9dB   %12d %14.0f %16d\n",
			g, m.TotalCycles, m.AbortsPer1KCommits(), m.MaxStalledRequests)
	}

	// 2. Concurrency sweep: GETM keeps benefiting from more transactional
	//    warps because commits are off the critical path.
	fmt.Println("\ntransactional-concurrency sweep (32B granules):")
	fmt.Printf("%-12s %12s %12s %12s\n", "warps/core", "cycles", "tx exec", "tx wait")
	for _, c := range []int{1, 2, 4, 8, 16} {
		m, err := getm.Run(getm.Options{
			Benchmark:   "atm",
			Concurrency: c,
			Scale:       scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d %12d %12d %12d\n", c, m.TotalCycles, m.TxExecCycles, m.TxWaitCycles)
	}

	fmt.Println("\nEvery run re-verified balance conservation: the sum over all")
	fmt.Println("accounts is unchanged, i.e. no transfer was half-applied — the")
	fmt.Println("atomicity Fig 7's wts/rts/#writes machinery provides.")
}
