// Hashtable contention study: sweep the three HT contention levels and the
// per-core transactional concurrency limit, reproducing the paper's central
// observation — lazy validation (WarpTM) stops scaling with concurrency
// while eager detection (GETM) keeps improving.
package main

import (
	"fmt"
	"log"

	"getm"
)

func main() {
	const scale = 0.25
	concLevels := []int{1, 2, 4, 8, 16}

	for _, bench := range []string{"ht-h", "ht-m", "ht-l"} {
		fmt.Printf("== %s ==\n", bench)
		fmt.Printf("%-10s", "conc")
		for _, c := range concLevels {
			fmt.Printf(" %9d", c)
		}
		fmt.Println()
		for _, pol := range []getm.Policy{getm.WarpTM(), getm.GETM()} {
			fmt.Printf("%-10s", pol)
			for _, conc := range concLevels {
				m, err := getm.Run(getm.Options{
					Policy:      pol,
					Benchmark:   bench,
					Concurrency: conc,
					Scale:       scale,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %9d", m.TotalCycles)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("WarpTM's best point sits at low concurrency (commit-queue backup);")
	fmt.Println("GETM keeps gaining from added warps because commits are off the")
	fmt.Println("critical path — the effect the paper's Fig 3 isolates.")
}
