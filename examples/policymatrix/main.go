// Policy-matrix axis study: hold WarpTM's lazy version management fixed and
// sweep the other axes one at a time, isolating what each buys. The paper
// compares four complete protocols; the matrix makes the in-between points
// runnable, so the contribution of a single design decision — eager vs lazy
// detection, requester-wins vs first-writer-wins, local vs ring commit
// arbitration — shows up as one row-to-row delta instead of being entangled
// in a whole-protocol swap.
package main

import (
	"flag"
	"fmt"
	"log"

	"getm"
)

func main() {
	bench := flag.String("bench", "ht-h", "benchmark to sweep on")
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	// Start from the WarpTM preset and vary one axis per row. Every point
	// here is in getm.Policies(); an out-of-matrix combination would fail
	// with getm.ErrInvalidPolicy before any simulation ran.
	base := getm.WarpTM()
	points := []struct {
		label string
		pol   getm.Policy
	}{
		{"baseline (warptm)", base},
		{"cd: lazy → eager", with(base, func(p *getm.Policy) { p.ConflictDetect = getm.CDEager })},
		{"res: requester → fww", with(base, func(p *getm.Policy) { p.Resolution = getm.ResFirstWriterWins })},
		{"arb: ring → local", with(base, func(p *getm.Policy) { p.Arbitration = getm.ArbLocal })},
	}

	fmt.Printf("one axis at a time from %v on %s\n\n", base, *bench)
	fmt.Printf("%-22s %-44s %10s %10s %12s\n", "variation", "policy", "cycles", "commits", "aborts/1K")
	for _, pt := range points {
		m, err := getm.Run(getm.Options{
			Policy:      pt.pol,
			Benchmark:   *bench,
			Concurrency: 8,
			Scale:       *scale,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-44s %10d %10d %12.0f\n",
			pt.label, pt.pol, m.TotalCycles, m.Commits, m.AbortsPer1KCommits())
	}
	fmt.Println("\nEach delta against the baseline row is one axis's contribution; the")
	fmt.Println("full 12-point grid is `getm-sweep -policy-grid`.")
}

// with copies a policy and applies one mutation — the sweep's single-axis
// discipline in function form.
func with(p getm.Policy, f func(*getm.Policy)) getm.Policy {
	f(&p)
	return p
}
