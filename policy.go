package getm

import "getm/internal/policy"

// Policy selects one point in the protocol policy matrix: four orthogonal
// axes that, composed, span the paper's four protocols and eight more
// points the paper never measured. The zero value means "unset" and lets
// Options.Protocol's name-based lookup apply.
//
// The four paper protocols are presets: GETM(), WarpTM(), WarpTMEL(), and
// EAPG(). A preset behaves bit-identically to naming the protocol in
// Options.Protocol — same results, same content addresses in a result
// store. Policies() enumerates every implementable point; combinations
// outside that set fail with an error matching ErrInvalidPolicy.
type Policy struct {
	// VersionMgmt is VMEager (access-time write reservations, GETM
	// machinery) or VMLazy (redo-log buffering, WarpTM machinery).
	VersionMgmt string
	// ConflictDetect is CDEager (check every access as it happens) or
	// CDLazy (commit-time value validation).
	ConflictDetect string
	// Resolution is ResRequesterWins, ResFirstWriterWins, or
	// ResTimestampOrder.
	Resolution string
	// Arbitration is ArbLocal (commits decided locally, off the global
	// critical path) or ArbRing (globally serialized commit decisions).
	Arbitration string
}

// Axis values for Policy fields.
const (
	VMEager = "eager"
	VMLazy  = "lazy"

	CDEager = "eager"
	CDLazy  = "lazy"

	ResRequesterWins   = "requester"
	ResFirstWriterWins = "fww"
	ResTimestampOrder  = "timestamp"

	ArbLocal = "local"
	ArbRing  = "ring"
)

// GETM is the paper's contribution as a matrix preset: eager conflict
// detection with access-time write reservations, timestamp-ordered
// resolution, and commits off the critical path.
func GETM() Policy { return fromInternal(policy.GETM()) }

// WarpTM is the lazy-lazy baseline preset: value-based validation in
// global commit order.
func WarpTM() Policy { return fromInternal(policy.WarpTM()) }

// WarpTMEL is the idealized eager-lazy WarpTM variant preset.
func WarpTMEL() Policy { return fromInternal(policy.WarpTMEL()) }

// EAPG is the idealized EarlyAbort/Pause-n-Go baseline preset:
// first-writer-wins via commit-signature broadcasts over WarpTM machinery.
func EAPG() Policy { return fromInternal(policy.EAPG()) }

// Policies enumerates the implementable points of the matrix (12 of the 24
// syntactic combinations), the four presets first. Every returned Policy
// passes Validate; every combination not in the list fails it.
func Policies() []Policy {
	var out []Policy
	for _, ip := range policy.Valid() {
		out = append(out, fromInternal(ip))
	}
	return out
}

// ParsePolicy reads a policy from its textual form: a preset name ("getm",
// "warptm", "warptm-el", "eapg") or a comma-separated axis list such as
// "vm=eager,cd=eager,res=timestamp,arb=local" (any order; omitted axes
// default to the machinery's native choice). Errors match ErrInvalidPolicy.
func ParsePolicy(s string) (Policy, error) {
	ip, err := policy.Parse(s)
	if err != nil {
		return Policy{}, err
	}
	return fromInternal(ip), nil
}

// IsZero reports whether no axis has been set.
func (p Policy) IsZero() bool { return p == Policy{} }

// String renders the preset name when p is one of the four paper protocols
// and the canonical "vm=…,cd=…,res=…,arb=…" tuple otherwise.
func (p Policy) String() string { return p.internal().String() }

// Validate reports nil for implementable points and an error matching
// ErrInvalidPolicy (with the reason) otherwise.
func (p Policy) Validate() error { return p.internal().Validate() }

func (p Policy) internal() policy.Policy {
	return policy.Policy{
		VersionMgmt:    policy.VersionMgmt(p.VersionMgmt),
		ConflictDetect: policy.ConflictDetect(p.ConflictDetect),
		Resolution:     policy.Resolution(p.Resolution),
		Arbitration:    policy.Arbitration(p.Arbitration),
	}
}

// policyPresetName maps a preset point back to its legacy protocol name.
func policyPresetName(p Policy) (string, bool) {
	return policy.PresetName(p.internal())
}

func fromInternal(ip policy.Policy) Policy {
	return Policy{
		VersionMgmt:    string(ip.VersionMgmt),
		ConflictDetect: string(ip.ConflictDetect),
		Resolution:     string(ip.Resolution),
		Arbitration:    string(ip.Arbitration),
	}
}
