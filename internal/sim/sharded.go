package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
)

// ShardedEngine runs N shard domains — each a private serial Engine — under a
// bounded-slack conservative schedule (the recipe from "Parallelizing a
// modern GPU simulator", arXiv 2502.14691, and MGSim, arXiv 1811.02884).
//
// Time advances in windows of `quantum` cycles. Within a window every domain
// executes its local events independently (possibly on separate worker
// goroutines); at the window barrier, cross-domain messages produced during
// the window are merged into their destination queues. Because every
// cross-domain Send carries a delay of at least one quantum, a message
// produced inside window [T, T+Q-1] is due no earlier than cycle T+Q — i.e.
// strictly after the window — so no domain can ever observe an event "from
// the past" and no rollback is needed.
//
// Determinism. The execution order of every domain is a pure function of the
// model, independent of the worker count and of the quantum:
//
//   - Local events order by the domain's own (when, seq), exactly as in the
//     serial Engine — each domain runs single-threaded, so seq assignment is
//     sequential and reproducible.
//   - Cross-domain deliveries at cycle w execute after every local event
//     scheduled for w from earlier cycles and before same-cycle delay-0
//     spawns, ordered among themselves by (send cycle, source domain, send
//     index). The barrier sorts each batch by that key before insertion, and
//     the engine places deliveries in a dedicated high seq band (see
//     mailSeqBase), so where the barrier happens to fall — which depends on
//     the quantum and on nothing else — cannot influence the order.
//
// Windows later in time are merged later, and all their send cycles are
// strictly larger, so the per-batch sort extends to a single global delivery
// order keyed by (when, send cycle, source domain, send index).
//
// Worker goroutines are physical executors only: domain d is always run by
// worker d mod W, domains in ascending order within a worker, and all
// cross-worker communication flows through the start/done channels, whose
// send/receive pairs give the barrier its happens-before edges. Running with
// W=1 (the oracle used by the differential tests) executes the identical
// algorithm inline.
type ShardedEngine struct {
	quantum Cycle
	doms    []*shardDomain

	nWorkers  int
	workersUp bool
	closed    bool
	startCh   []chan Cycle
	doneCh    chan struct{}

	stopped atomic.Bool
	batch   []delivery // barrier merge scratch
}

// shardDomain is one shard: a serial engine plus per-destination outboxes
// filled while the domain's window executes (only ever touched by the worker
// that owns the domain, so no locking).
type shardDomain struct {
	eng *Engine
	out [][]delivery // indexed by destination domain
}

// delivery is one cross-domain message waiting at the barrier.
type delivery struct {
	when      Cycle // due cycle (send cycle + delay)
	sendCycle Cycle
	src       int
	fn        func()
}

// NewSharded creates a sharded engine with the given number of domains and
// synchronization quantum. Every cross-domain Send must have delay >= quantum.
func NewSharded(domains int, quantum Cycle) *ShardedEngine {
	if domains <= 0 {
		panic("sim: sharded engine needs at least one domain")
	}
	if quantum == 0 {
		panic("sim: sharded quantum must be positive")
	}
	se := &ShardedEngine{quantum: quantum, nWorkers: 1}
	for i := 0; i < domains; i++ {
		se.doms = append(se.doms, &shardDomain{
			eng: NewEngine(),
			out: make([][]delivery, domains),
		})
	}
	return se
}

// SetWorkers fixes the number of worker goroutines (clamped to [1, domains]).
// n <= 0 selects min(GOMAXPROCS, domains). Results are identical for every
// worker count; only wall-clock changes. Must be called before the first Run.
func (se *ShardedEngine) SetWorkers(n int) {
	if se.workersUp {
		panic("sim: SetWorkers after workers started")
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(se.doms) {
		n = len(se.doms)
	}
	if n < 1 {
		n = 1
	}
	se.nWorkers = n
}

// Workers reports the configured worker count.
func (se *ShardedEngine) Workers() int { return se.nWorkers }

// Domains reports the number of shard domains.
func (se *ShardedEngine) Domains() int { return len(se.doms) }

// Quantum reports the synchronization quantum.
func (se *ShardedEngine) Quantum() Cycle { return se.quantum }

// Domain returns shard i's engine. Model code owned by a domain schedules
// local events directly on it; it must never touch another domain's engine.
func (se *ShardedEngine) Domain(i int) *Engine { return se.doms[i].eng }

// Send schedules fn on domain dst, delay cycles after domain src's current
// cycle. delay must be at least the quantum — that bound is what lets shards
// run a full window without observing each other. Send may be called either
// from an event executing on src (the common case) or before the first Run
// during model assembly.
func (se *ShardedEngine) Send(src, dst int, delay Cycle, fn func()) {
	if src < 0 || src >= len(se.doms) || dst < 0 || dst >= len(se.doms) {
		panic("sim: sharded Send domain out of range")
	}
	if delay < se.quantum {
		panic(fmt.Sprintf("sim: cross-shard delay %d below quantum %d", delay, se.quantum))
	}
	d := se.doms[src]
	now := d.eng.Now()
	d.out[dst] = append(d.out[dst], delivery{
		when:      now + delay,
		sendCycle: now,
		src:       src,
		fn:        fn,
	})
}

// Now returns the global simulated cycle: the furthest point any domain has
// reached. Deterministic, since every domain's clock is.
func (se *ShardedEngine) Now() Cycle {
	var max Cycle
	for _, d := range se.doms {
		if n := d.eng.Now(); n > max {
			max = n
		}
	}
	return max
}

// Pending reports queued events across all domains, including messages
// waiting at the barrier.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, d := range se.doms {
		n += d.eng.Pending()
		for _, box := range d.out {
			n += len(box)
		}
	}
	return n
}

// Executed returns the total events run across all domains.
func (se *ShardedEngine) Executed() uint64 {
	var n uint64
	for _, d := range se.doms {
		n += d.eng.Executed
	}
	return n
}

// Stop aborts the current Run after the in-flight window completes (windows
// are one quantum — a few cycles — so stop latency is negligible). A
// subsequent Run resumes at the next window with identical results.
func (se *ShardedEngine) Stop() { se.stopped.Store(true) }

// Run executes events until all domains drain, Stop is called, or the clock
// passes limit (0 means no limit), mirroring Engine.Run's contract — including
// never moving time backwards when limit < Now().
func (se *ShardedEngine) Run(limit Cycle) Cycle {
	return se.runWindows(limit, 0, nil)
}

// RunChunked executes like Run(limit) but pauses at every multiple of chunk
// cycles reached with events still pending and calls between(now), as
// Engine.RunChunked does. Chunk boundaries truncate windows, which moves the
// barriers — but the canonical delivery order makes barrier placement
// invisible, so a chunked run remains identical to an unchunked one.
func (se *ShardedEngine) RunChunked(limit, chunk Cycle, between func(now Cycle) bool) Cycle {
	return se.runWindows(limit, chunk, between)
}

// runWindows is the window scheduler shared by Run and RunChunked.
func (se *ShardedEngine) runWindows(limit, chunk Cycle, between func(now Cycle) bool) Cycle {
	se.stopped.Store(false)
	if limit != 0 && limit < se.Now() {
		return se.Now()
	}
	// Flush sends buffered during model assembly (before any window ran).
	se.deliverAll()
	next := se.Now() + chunk
	for !se.stopped.Load() {
		t, ok := se.nextEventTime()
		if !ok {
			break // drained
		}
		if limit != 0 && t > limit {
			// Advance every lagging domain's clock to the limit (their next
			// events stay queued), matching Engine.Run's limit behavior.
			for _, d := range se.doms {
				d.eng.runWindow(limit)
			}
			return limit
		}
		end := t + se.quantum - 1
		if limit != 0 && end > limit {
			end = limit
		}
		if chunk != 0 && end >= next {
			end = next // pause exactly at the chunk boundary
		}
		se.runWindow(end)
		se.deliverAll()
		if limit != 0 && end >= limit {
			return end
		}
		if chunk != 0 && end == next {
			if se.Pending() == 0 {
				break
			}
			if between != nil && !between(end) {
				return end
			}
			next += chunk
		}
	}
	return se.Now()
}

// nextEventTime returns the earliest pending event time across all domains.
func (se *ShardedEngine) nextEventTime() (Cycle, bool) {
	var min Cycle
	found := false
	for _, d := range se.doms {
		if w, ok := d.eng.nextWhen(); ok && (!found || w < min) {
			min, found = w, true
		}
	}
	return min, found
}

// runWindow executes one window [.., end] on every domain, inline for a
// single worker or fanned out across the worker pool.
func (se *ShardedEngine) runWindow(end Cycle) {
	if se.nWorkers <= 1 {
		for _, d := range se.doms {
			d.eng.runWindow(end)
		}
		return
	}
	se.ensureWorkers()
	for _, ch := range se.startCh {
		ch <- end
	}
	for range se.startCh {
		<-se.doneCh
	}
}

// ensureWorkers lazily starts the persistent worker pool.
func (se *ShardedEngine) ensureWorkers() {
	if se.workersUp {
		return
	}
	if se.closed {
		panic("sim: Run on closed ShardedEngine")
	}
	se.workersUp = true
	se.startCh = make([]chan Cycle, se.nWorkers)
	se.doneCh = make(chan struct{}, se.nWorkers)
	for w := 0; w < se.nWorkers; w++ {
		ch := make(chan Cycle)
		se.startCh[w] = ch
		go func(w int, ch chan Cycle) {
			for end := range ch {
				for d := w; d < len(se.doms); d += se.nWorkers {
					se.doms[d].eng.runWindow(end)
				}
				se.doneCh <- struct{}{}
			}
		}(w, ch)
	}
}

// Close shuts down the worker pool. Idempotent; the engine cannot Run again
// afterwards (with one worker Close is a pure formality).
func (se *ShardedEngine) Close() {
	if se.closed {
		return
	}
	se.closed = true
	if se.workersUp {
		for _, ch := range se.startCh {
			close(ch)
		}
		se.workersUp = false
	}
}

// deliverAll merges every outbox into its destination engine in canonical
// order: per destination, the batch sorts by (when, send cycle, source
// domain), with the stable sort preserving each source's append order (its
// per-source send index) for full ties. atDelivery assigns seqs in the high
// mail band in that order, fixing the global (when, seq) position of every
// delivery independently of barrier placement.
func (se *ShardedEngine) deliverAll() {
	for dst, dd := range se.doms {
		batch := se.batch[:0]
		for _, sd := range se.doms {
			box := sd.out[dst]
			if len(box) == 0 {
				continue
			}
			batch = append(batch, box...)
			clear(box)
			sd.out[dst] = box[:0]
		}
		if len(batch) == 0 {
			continue
		}
		sort.SliceStable(batch, func(i, j int) bool {
			a, b := batch[i], batch[j]
			if a.when != b.when {
				return a.when < b.when
			}
			if a.sendCycle != b.sendCycle {
				return a.sendCycle < b.sendCycle
			}
			return a.src < b.src
		})
		for i := range batch {
			dd.eng.atDelivery(batch[i].when, batch[i].fn)
		}
		clear(batch)
		se.batch = batch[:0]
	}
}
