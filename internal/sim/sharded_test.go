package sim

import (
	"container/heap"
	"testing"
)

// --- differential harness -------------------------------------------------
//
// The sharded engine's correctness claim is behavioral: for a fixed model,
// every domain executes the same events at the same cycles in the same order
// regardless of worker count, quantum, chunking, or stop/resume points. The
// harness drives one deterministic random workload against several backends
// and requires per-domain (execution hash, event count, final clock) to be
// identical everywhere. The reference backend below reimplements the
// canonical semantics naively — one global sorted list, no windows, no
// goroutines — so it is an independent oracle, not a re-run of the
// implementation under test.

// shardBackend abstracts scheduling so one model can drive every executor.
type shardBackend interface {
	schedule(dom int, delay Cycle, fn func())
	send(src, dst int, delay Cycle, fn func())
	now(dom int) Cycle
}

// modelSendMin is the minimum cross-domain delay the model uses. It must be
// at least the largest quantum any test runs with, so the same workload is
// valid under every quantum being compared.
const modelSendMin = 8

// shardModel is a deterministic random workload: seeded root events per
// domain, each event folds (id, now) into its domain's order-sensitive hash
// and spawns a few children — mostly local (delay 0..5, exercising the
// same-cycle FIFO), sometimes cross-domain (delay modelSendMin..+7). All
// randomness derives from (seed, event id), never from execution order, so
// every backend generates the identical event tree.
type shardModel struct {
	b       shardBackend
	seed    uint64
	domains int
	cross   bool // enable cross-domain sends
	hash    []uint64
	count   []uint64
	onExec  func() // optional per-event hook (used by stop/resume tests)
}

func newShardModel(b shardBackend, seed uint64, domains int, cross bool) *shardModel {
	return &shardModel{
		b:       b,
		seed:    seed,
		domains: domains,
		cross:   cross,
		hash:    make([]uint64, domains),
		count:   make([]uint64, domains),
	}
}

func (m *shardModel) seedRoots() {
	r := NewRNG(m.seed)
	for dom := 0; dom < m.domains; dom++ {
		roots := 1 + r.Intn(3)
		for i := 0; i < roots; i++ {
			id := Mix64(m.seed ^ uint64(dom)<<32 ^ uint64(i))
			d, depth := dom, 3+r.Intn(2)
			m.b.schedule(d, Cycle(r.Intn(20)), m.eventFn(d, id, depth))
		}
	}
}

func (m *shardModel) eventFn(dom int, id uint64, depth int) func() {
	return func() { m.exec(dom, id, depth) }
}

func (m *shardModel) exec(dom int, id uint64, depth int) {
	now := m.b.now(dom)
	m.hash[dom] = Mix64(m.hash[dom]*0x9E3779B97F4A7C15 ^ Mix64(id) ^ uint64(now))
	m.count[dom]++
	if m.onExec != nil {
		m.onExec()
	}
	if depth <= 0 {
		return
	}
	r := NewRNG(m.seed ^ Mix64(id))
	for i, n := 0, r.Intn(4); i < n; i++ {
		cid := Mix64(id + uint64(i)*0x632BE59BD9B4E019 + 1)
		if m.cross && m.domains > 1 && r.Intn(4) == 0 {
			dst := r.Intn(m.domains)
			m.b.send(dom, dst, modelSendMin+Cycle(r.Intn(8)), m.eventFn(dst, cid, depth-1))
		} else {
			m.b.schedule(dom, Cycle(r.Intn(6)), m.eventFn(dom, cid, depth-1))
		}
	}
}

// fingerprint is the per-domain observable the tests compare.
type fingerprint struct {
	hash  uint64
	count uint64
	now   Cycle
}

func (m *shardModel) fingerprints() []fingerprint {
	fp := make([]fingerprint, m.domains)
	for d := range fp {
		fp[d] = fingerprint{m.hash[d], m.count[d], m.b.now(d)}
	}
	return fp
}

// --- backend: ShardedEngine ----------------------------------------------

type shardedBackend struct{ se *ShardedEngine }

func (sb shardedBackend) schedule(dom int, delay Cycle, fn func()) {
	sb.se.Domain(dom).Schedule(delay, fn)
}
func (sb shardedBackend) send(src, dst int, delay Cycle, fn func()) {
	sb.se.Send(src, dst, delay, fn)
}
func (sb shardedBackend) now(dom int) Cycle { return sb.se.Domain(dom).Now() }

// runSharded executes the model on a ShardedEngine and returns fingerprints.
// drive defaults to run-to-completion.
func runSharded(seed uint64, domains, workers int, quantum Cycle, cross bool,
	drive func(*ShardedEngine, *shardModel)) []fingerprint {
	se := NewSharded(domains, quantum)
	se.SetWorkers(workers)
	defer se.Close()
	m := newShardModel(shardedBackend{se}, seed, domains, cross)
	m.seedRoots()
	if drive == nil {
		se.Run(0)
	} else {
		drive(se, m)
	}
	if se.Pending() != 0 {
		panic("runSharded: events left pending")
	}
	return m.fingerprints()
}

// --- backend: naive reference executor -------------------------------------
//
// refExec implements the canonical sharded semantics directly: one global
// event list ordered by (when, domain, class, keys), where class 0 is local
// events scheduled from an earlier cycle (ordered by a scheduling counter),
// class 1 is cross-domain deliveries (ordered by send cycle, then source
// domain, then per-source send index), and class 2 is same-cycle delay-0
// spawns (the serial engine's imm FIFO, ordered by the counter). Cross-domain
// messages are inserted eagerly at send time — there are no windows or
// barriers here, which is the point: if barrier placement influenced order,
// this executor would disagree with the windowed one.

type refEvent struct {
	when  Cycle
	dom   int
	class uint8
	k1    uint64 // class 0/2: scheduling counter; class 1: send cycle
	k2    uint64 // class 1: source domain
	k3    uint64 // class 1: per-source send index
	fn    func()
}

func refLess(a, b refEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.dom != b.dom {
		return a.dom < b.dom
	}
	if a.class != b.class {
		return a.class < b.class
	}
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	if a.k2 != b.k2 {
		return a.k2 < b.k2
	}
	return a.k3 < b.k3
}

type refHeap []refEvent

func (h refHeap) Len() int            { return len(h) }
func (h refHeap) Less(i, j int) bool  { return refLess(h[i], h[j]) }
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type refExec struct {
	h       refHeap
	domNow  []Cycle
	seq     uint64
	sendIdx []uint64
	execDom int // domain currently executing, -1 outside Run
}

func newRefExec(domains int) *refExec {
	return &refExec{
		domNow:  make([]Cycle, domains),
		sendIdx: make([]uint64, domains),
		execDom: -1,
	}
}

func (r *refExec) schedule(dom int, delay Cycle, fn func()) {
	when := r.domNow[dom] + delay
	class := uint8(0)
	if delay == 0 && r.execDom == dom {
		class = 2 // same-cycle spawn while the domain is executing
	}
	r.seq++
	heap.Push(&r.h, refEvent{when: when, dom: dom, class: class, k1: r.seq, fn: fn})
}

func (r *refExec) send(src, dst int, delay Cycle, fn func()) {
	sc := r.domNow[src]
	r.sendIdx[src]++
	heap.Push(&r.h, refEvent{
		when: sc + delay, dom: dst, class: 1,
		k1: uint64(sc), k2: uint64(src), k3: r.sendIdx[src], fn: fn,
	})
}

func (r *refExec) now(dom int) Cycle { return r.domNow[dom] }

func (r *refExec) run() {
	for len(r.h) > 0 {
		ev := heap.Pop(&r.h).(refEvent)
		r.domNow[ev.dom] = ev.when
		r.execDom = ev.dom
		ev.fn()
		r.execDom = -1
	}
}

func runReference(seed uint64, domains int, cross bool) []fingerprint {
	re := newRefExec(domains)
	m := newShardModel(re, seed, domains, cross)
	m.seedRoots()
	re.run()
	return m.fingerprints()
}

// --- tests -----------------------------------------------------------------

func diffFingerprints(t *testing.T, seed uint64, label string, got, want []fingerprint) {
	t.Helper()
	for d := range want {
		if got[d] != want[d] {
			t.Fatalf("seed %d: %s domain %d = %+v, want %+v", seed, label, d, got[d], want[d])
		}
	}
}

// TestShardedMatchesReference is the load-bearing tentpole property: across
// thousands of random workloads, the windowed parallel executor matches the
// naive global-order reference for every worker count and every quantum.
func TestShardedMatchesReference(t *testing.T) {
	seeds := 400
	if testing.Short() {
		seeds = 60
	}
	for s := 0; s < seeds; s++ {
		seed := uint64(s)*0x9E3779B9 + 1
		domains := 2 + int(seed%5) // 2..6
		want := runReference(seed, domains, true)
		for _, quantum := range []Cycle{1, 3, 5, modelSendMin} {
			got := runSharded(seed, domains, 1, quantum, true, nil)
			diffFingerprints(t, seed, "w1", got, want)
		}
		for _, workers := range []int{2, 4} {
			got := runSharded(seed, domains, workers, 5, true, nil)
			diffFingerprints(t, seed, "parallel", got, want)
		}
	}
}

// TestShardedSingleDomainMatchesEngine pins the degenerate case: one domain,
// purely local traffic, must execute exactly as a plain serial Engine.
func TestShardedSingleDomainMatchesEngine(t *testing.T) {
	for s := 0; s < 50; s++ {
		seed := uint64(s)*31 + 7
		eng := NewEngine()
		m := newShardModel(serialBackend{eng}, seed, 1, false)
		m.seedRoots()
		eng.Run(0)
		want := m.fingerprints()

		got := runSharded(seed, 1, 1, 5, false, nil)
		diffFingerprints(t, seed, "single-domain", got, want)
	}
}

// serialBackend adapts the plain Engine for the single-domain test.
type serialBackend struct{ eng *Engine }

func (sb serialBackend) schedule(_ int, delay Cycle, fn func()) { sb.eng.Schedule(delay, fn) }
func (sb serialBackend) send(_, _ int, delay Cycle, fn func())  { sb.eng.Schedule(delay, fn) }
func (sb serialBackend) now(_ int) Cycle                        { return sb.eng.Now() }

// TestShardedStopAtEveryWindow stops the sharded run after every executed
// event (Stop lands at the enclosing window barrier) and resumes until
// drained; the result must be bit-identical to an uninterrupted run.
func TestShardedStopAtEveryWindow(t *testing.T) {
	for s := 0; s < 40; s++ {
		seed := uint64(s)*0xABCD + 3
		want := runReference(seed, 3, true)
		for _, workers := range []int{1, 4} {
			got := runSharded(seed, 3, workers, 5, true, func(se *ShardedEngine, m *shardModel) {
				m.onExec = se.Stop
				for {
					se.Run(0)
					if se.Pending() == 0 {
						return
					}
				}
			})
			diffFingerprints(t, seed, "stop/resume", got, want)
		}
	}
}

// TestShardedChunkedIdentical: RunChunked with pauses at every boundary (and
// resumes after between returns false) is identical to one Run(0).
func TestShardedChunkedIdentical(t *testing.T) {
	for s := 0; s < 40; s++ {
		seed := uint64(s)*977 + 11
		want := runReference(seed, 4, true)
		for _, chunk := range []Cycle{1, 3, 7} {
			got := runSharded(seed, 4, 2, 5, true, func(se *ShardedEngine, m *shardModel) {
				pauses := 0
				for {
					se.RunChunked(0, chunk, func(Cycle) bool {
						pauses++
						return pauses%2 == 0 // alternate continue / hard-stop
					})
					if se.Pending() == 0 {
						return
					}
				}
			})
			diffFingerprints(t, seed, "chunked", got, want)
		}
	}
}

// TestShardedRunLimitClamp mirrors the serial clock-clamp regression at the
// sharded level: a limit below Now() must not rewind any domain's clock.
func TestShardedRunLimitClamp(t *testing.T) {
	se := NewSharded(2, 5)
	defer se.Close()
	se.Domain(0).Schedule(50, func() {})
	se.Domain(1).Schedule(90, func() {})
	if got := se.Run(60); got != 60 {
		t.Fatalf("Run(60) = %d, want 60", got)
	}
	if got := se.Run(10); got != 60 {
		t.Fatalf("Run(10) after reaching 60 = %d, want 60 (clock must not rewind)", got)
	}
	if got := se.Run(0); got != 90 {
		t.Fatalf("Run(0) = %d, want 90", got)
	}
}

// TestShardedSendBelowQuantumPanics pins the conservative-window precondition.
func TestShardedSendBelowQuantumPanics(t *testing.T) {
	se := NewSharded(2, 5)
	defer se.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Send with delay < quantum did not panic")
		}
	}()
	se.Send(0, 1, 4, func() {})
}

// BenchmarkShardedWindows measures the windowed scheduler's overhead on a
// synthetic multi-domain workload; the -cpu flag scales the worker pool (see
// BENCH_parallel.json).
func BenchmarkShardedWindows(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runSharded(12345, 6, workers, 5, true, nil)
			}
		})
	}
}
