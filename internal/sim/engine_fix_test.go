package sim

import (
	"testing"
)

// --- clock-clamp regression (ISSUE 6 satellite) ----------------------------

// TestEngineRunLimitClampsToNow pins the fix for the clock-rewind bug: Run
// (and RunChunked) with limit < Now() used to assign e.now = limit on the
// early-out branch, moving simulated time backwards across resumed runs.
func TestEngineRunLimitClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(100, func() { fired = true })
	if got := e.Run(50); got != 50 {
		t.Fatalf("Run(50) = %d, want 50", got)
	}
	if got := e.Run(10); got != 50 {
		t.Fatalf("Run(10) after reaching cycle 50 = %d, want 50 (clock must not rewind)", got)
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %d, want 50", e.Now())
	}
	// Scheduling at a cycle the clock already passed must still panic — a
	// rewound clock would silently accept it.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("At(30) after cycle 50 did not panic")
			}
		}()
		e.At(30, func() {})
	}()
	if got := e.Run(0); got != 100 || !fired {
		t.Fatalf("Run(0) = %d fired=%v, want 100 true", got, fired)
	}

	e2 := NewEngine()
	e2.Schedule(100, func() {})
	e2.Run(50)
	if got := e2.RunChunked(10, 4, nil); got != 50 {
		t.Fatalf("RunChunked(10, ...) after cycle 50 = %d, want 50", got)
	}
	if e2.Now() != 50 {
		t.Fatalf("RunChunked rewound clock to %d", e2.Now())
	}
}

// --- stop-at-every-event property (ISSUE 6 satellite) ----------------------

// stopRec is one executed event observation.
type stopRec struct {
	id   int
	when Cycle
}

// buildNested schedules the deterministic nested workload used by the
// stop/resume and fuzz tests: one root per input byte, each event fanning out
// into a same-cycle child and a future child. onExec (if non-nil via the
// returned setter) runs inside every event, after tracing.
func buildNested(e *Engine, data []byte) (trace *[]stopRec, setHook func(func())) {
	tr := &[]stopRec{}
	var hook func()
	id := 0
	var add func(d Cycle, depth int)
	add = func(d Cycle, depth int) {
		me := id
		id++
		e.Schedule(d, func() {
			*tr = append(*tr, stopRec{me, e.Now()})
			if hook != nil {
				hook()
			}
			if depth > 0 {
				add(0, depth-1) // same-cycle FIFO traffic
				add(d%5+1, depth-1)
			}
		})
	}
	for _, b := range data {
		add(Cycle(b%16), int(b%3))
	}
	return tr, func(fn func()) { hook = fn }
}

// TestEngineStopEveryEventIdentical proves the Stop/resume audit claim: a run
// interrupted by Stop after every single event — including mid-drain of the
// same-cycle FIFO — replays imm[immHead:] in seq order and is bit-identical
// to an uninterrupted run.
func TestEngineStopEveryEventIdentical(t *testing.T) {
	workloads := [][]byte{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{2, 2, 2, 2},          // heavy same-cycle fan-out
		{15, 14, 13, 3, 1, 0}, // mixed delays
	}
	for wi, data := range workloads {
		plain := NewEngine()
		want, _ := buildNested(plain, data)
		plain.Run(0)

		interrupted := NewEngine()
		got, setHook := buildNested(interrupted, data)
		setHook(interrupted.Stop)
		steps := 0
		for interrupted.Pending() > 0 {
			interrupted.Run(0)
			steps++
			if steps > len(*want)+8 {
				t.Fatalf("workload %d: no progress after %d resumes", wi, steps)
			}
		}
		if len(*got) != len(*want) {
			t.Fatalf("workload %d: %d events interrupted vs %d uninterrupted", wi, len(*got), len(*want))
		}
		for i := range *want {
			if (*got)[i] != (*want)[i] {
				t.Fatalf("workload %d event %d: interrupted %+v, uninterrupted %+v",
					wi, i, (*got)[i], (*want)[i])
			}
		}
		if interrupted.Now() != plain.Now() || interrupted.Executed != plain.Executed {
			t.Fatalf("workload %d: now/executed diverged: %d/%d vs %d/%d",
				wi, interrupted.Now(), interrupted.Executed, plain.Now(), plain.Executed)
		}
	}
}

// --- fuzzing (ISSUE 6 satellite) -------------------------------------------

// FuzzEngineEquivalence fuzzes random (delay, Stop, RunChunked-chunk, limit)
// schedules: whatever mix of limited runs, chunked runs, hard stops, and
// stop-after-every-event resumes the control bytes select, the execution
// trace must equal a single uninterrupted Run(0).
func FuzzEngineEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{0, 1, 2, 3})
	f.Add([]byte{2, 2, 2, 2, 9, 9}, []byte{3, 0, 0, 1})
	f.Add([]byte{15, 0, 7, 8}, []byte{2, 2, 2})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, data, ctl []byte) {
		if len(data) > 64 {
			data = data[:64] // bound workload size
		}
		oracle := NewEngine()
		want, _ := buildNested(oracle, data)
		oracle.Run(0)

		subject := NewEngine()
		got, setHook := buildNested(subject, data)
		step := 0
		for subject.Pending() > 0 {
			c := byte(0)
			if len(ctl) > 0 {
				c = ctl[step%len(ctl)]
			}
			step++
			if step > 10*len(*want)+100 {
				t.Fatalf("no progress after %d driver steps", step)
			}
			switch c % 4 {
			case 0: // limited run; +1 guarantees progress and avoids the 0 sentinel
				subject.Run(subject.Now() + Cycle(c/4%9) + 1)
			case 1: // stop after every event, then resume
				setHook(subject.Stop)
				subject.Run(0)
				setHook(nil)
			case 2: // chunked with a pause (and stop) at the first boundary
				subject.RunChunked(0, Cycle(c/4%7)+1, func(Cycle) bool { return false })
			case 3: // chunked with a limit
				subject.RunChunked(subject.Now()+Cycle(c/4%13)+1, 3, nil)
			}
		}
		if len(*got) != len(*want) {
			t.Fatalf("%d events fuzzed-drive vs %d oracle", len(*got), len(*want))
		}
		for i := range *want {
			if (*got)[i] != (*want)[i] {
				t.Fatalf("event %d: %+v vs oracle %+v", i, (*got)[i], (*want)[i])
			}
		}
		if subject.Now() != oracle.Now() {
			t.Fatalf("final now %d vs oracle %d", subject.Now(), oracle.Now())
		}
	})
}
