// Package sim provides the deterministic discrete-event simulation engine
// that underpins the GPU timing model.
//
// All components (SIMT cores, crossbars, memory partitions, validation and
// commit units) advance simulated time exclusively by scheduling events on a
// shared Engine. Events at the same cycle run in scheduling order, so a run
// with a fixed seed is fully reproducible.
package sim

// Cycle is a point in simulated time, measured in interconnect-clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among events at the same cycle
	fn   func()
}

// eventLess orders events by (when, seq): time first, FIFO within a cycle.
func eventLess(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator. The zero value is ready to use.
//
// The event queue is split in two for speed — this pop/push pair is the
// innermost loop of every simulation:
//
//   - pq is a hand-rolled binary min-heap over a plain []event. Unlike
//     container/heap it needs no heap.Interface indirection and no
//     interface{} boxing, so Schedule/Run allocate nothing per event beyond
//     slice growth.
//   - imm is a FIFO for events scheduled *for the current cycle while that
//     cycle is executing* (the delay-0 wakeup idiom used throughout the
//     timing model). These bypass the heap entirely: appended in seq order
//     and drained in seq order.
//
// Correct interleaving between the two is guaranteed by a single invariant:
// whenever imm is non-empty, every heap event at the current cycle carries a
// smaller seq than every imm event. This holds because current-cycle events
// are routed to imm exactly when imm is non-empty or a Run is executing, so
// the heap can only gain a current-cycle event while imm is empty — i.e.
// before any of imm's (later, larger-seq) events existed. The run loop
// therefore drains current-cycle heap events first, then imm, which is
// precisely (when, seq) order — bit-identical to a single global heap.
type Engine struct {
	pq      []event // binary min-heap ordered by eventLess
	imm     []event // same-cycle FIFO; imm[immHead:] are pending
	immHead int
	now     Cycle
	seq     uint64
	mailSeq uint64 // cross-shard deliveries; offset by mailSeqBase
	stopped bool
	running bool
	// Executed counts events run; useful for run-away detection in tests.
	Executed uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles (delay 0 means later this cycle, after
// all events already scheduled for the current cycle).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	e.push(event{when: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	e.push(event{when: when, seq: e.seq, fn: fn})
}

// push routes an event to the same-cycle FIFO or the heap. Current-cycle
// events go to the FIFO whenever a run is executing or the FIFO already has
// pending events — see the invariant on Engine.
func (e *Engine) push(ev event) {
	if ev.when == e.now && (e.running || e.immHead < len(e.imm)) {
		e.imm = append(e.imm, ev)
		return
	}
	e.heapPush(ev)
}

// Stop aborts the current Run after the in-flight event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) + len(e.imm) - e.immHead }

// mailSeqBase is the seq band for cross-shard deliveries. Placing deliveries
// above every locally assigned seq makes their position in the (when, seq)
// order a function of canonical data only — (send cycle, source shard, send
// index) — rather than of when the barrier that inserted them happened to
// fall. At an equal cycle the order is therefore always: events scheduled
// from earlier cycles, then deliveries, then same-cycle delay-0 spawns
// (which the FIFO already runs last). This deliberately steps outside the
// imm-invariant documented on Engine: a delivery at the current cycle may
// carry a larger seq than pending FIFO entries, but the run loop drains
// current-cycle heap events before the FIFO regardless, which is exactly the
// order the band encodes.
const mailSeqBase = uint64(1) << 63

// atDelivery schedules a cross-shard delivery at an absolute future cycle.
// The caller (ShardedEngine's barrier) guarantees when > Now() for every
// shard because delivery delays are at least one full quantum.
func (e *Engine) atDelivery(when Cycle, fn func()) {
	if when <= e.now {
		panic("sim: cross-shard delivery not in the future")
	}
	e.mailSeq++
	e.heapPush(event{when: when, seq: mailSeqBase + e.mailSeq, fn: fn})
}

// nextWhen returns the earliest pending event time; ok is false when the
// queue is empty.
func (e *Engine) nextWhen() (when Cycle, ok bool) {
	if e.immHead < len(e.imm) {
		// FIFO entries are always at e.now, never later than the heap top.
		return e.imm[e.immHead].when, true
	}
	if len(e.pq) > 0 {
		return e.pq[0].when, true
	}
	return 0, false
}

// Run executes events until the queue empties, Stop is called, or the
// simulated clock passes limit (0 means no limit). It returns the cycle at
// which it stopped. After Stop, a subsequent Run resumes mid-cycle with
// same-cycle FIFO order preserved.
//
// Contract: the simulated clock never moves backwards. A limit below Now()
// is a no-op that returns Now() unchanged — earlier versions assigned
// e.now = limit unconditionally on the limit branch, so a resumed run with a
// stale limit could rewind time and violate the At() past-check downstream.
func (e *Engine) Run(limit Cycle) Cycle {
	if limit != 0 && limit < e.now {
		return e.now
	}
	return e.run(limit != 0, limit)
}

// runWindow executes events with when <= end (inclusive; end may be 0, unlike
// Run's 0-means-unlimited sentinel). If the next pending event lies beyond
// end, the clock advances to end and the event stays queued. Used by
// ShardedEngine, whose first window can legitimately close at cycle 0.
func (e *Engine) runWindow(end Cycle) Cycle {
	if end < e.now {
		return e.now
	}
	return e.run(true, end)
}

// run is the shared core of Run and runWindow: limited selects whether limit
// is honored (inclusive) or ignored.
func (e *Engine) run(limited bool, limit Cycle) Cycle {
	e.stopped = false
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		// Select the next event source: current-cycle heap events precede
		// the FIFO (smaller seq, per the Engine invariant); otherwise the
		// FIFO holds the oldest pending current-cycle events.
		hasImm := e.immHead < len(e.imm)
		hasHeap := len(e.pq) > 0
		var fromHeap bool
		var when Cycle
		switch {
		case hasImm && hasHeap && e.pq[0].when == e.now:
			fromHeap, when = true, e.now
		case hasImm:
			fromHeap, when = false, e.imm[e.immHead].when
		case hasHeap:
			fromHeap, when = true, e.pq[0].when
		default:
			return e.now
		}
		if limited && when > limit {
			// Leave it queued so a subsequent Run can resume. limit >= e.now
			// is guaranteed by the callers, so this never rewinds the clock.
			e.now = limit
			return e.now
		}
		var ev event
		if fromHeap {
			ev = e.heapPop()
		} else {
			ev = e.imm[e.immHead]
			e.imm[e.immHead] = event{} // release fn for GC
			e.immHead++
			if e.immHead == len(e.imm) {
				e.imm = e.imm[:0]
				e.immHead = 0
			}
		}
		if ev.when < e.now {
			panic("sim: time moved backwards")
		}
		e.now = ev.when
		e.Executed++
		ev.fn()
	}
	return e.now
}

// RunChunked executes like Run(limit), but pauses at every multiple of chunk
// cycles reached with events still pending and calls between(now). Returning
// false from between stops the run at that boundary; the queue is left intact,
// so a later Run or RunChunked resumes exactly where this one stopped.
//
// The chunked eng.Run calls process events in precisely the order one
// Run(limit) call would — pausing schedules nothing and mutates no state — so
// a chunked run is cycle-identical to an unchunked one (see
// TestRunChunkedIdentical). This is the primitive behind both interval
// telemetry sampling and cooperative cancellation in the gpu layer: between
// is the hook where samples are taken and contexts polled, bounding cancel
// latency to one chunk of simulated cycles.
//
// A chunk of 0 degenerates to a single Run(limit) call; between is never
// invoked.
func (e *Engine) RunChunked(limit, chunk Cycle, between func(now Cycle) bool) Cycle {
	if chunk == 0 {
		return e.Run(limit)
	}
	next := e.now + chunk
	var end Cycle
	for {
		target := next
		if limit != 0 && target > limit {
			target = limit
		}
		end = e.Run(target)
		if e.Pending() == 0 {
			return end
		}
		if limit != 0 && end >= limit {
			return end
		}
		if end >= target {
			if between != nil && !between(end) {
				return end
			}
			next += chunk
		}
	}
}

// heapPush inserts an event into the binary min-heap.
func (e *Engine) heapPush(ev event) {
	pq := append(e.pq, ev)
	i := len(pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(pq[i], pq[parent]) {
			break
		}
		pq[i], pq[parent] = pq[parent], pq[i]
		i = parent
	}
	e.pq = pq
}

// heapPop removes and returns the minimum event.
func (e *Engine) heapPop() event {
	pq := e.pq
	top := pq[0]
	n := len(pq) - 1
	pq[0] = pq[n]
	pq[n] = event{} // release fn for GC
	pq = pq[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && eventLess(pq[r], pq[l]) {
			c = r
		}
		if !eventLess(pq[c], pq[i]) {
			break
		}
		pq[i], pq[c] = pq[c], pq[i]
		i = c
	}
	e.pq = pq
	return top
}
