// Package sim provides the deterministic discrete-event simulation engine
// that underpins the GPU timing model.
//
// All components (SIMT cores, crossbars, memory partitions, validation and
// commit units) advance simulated time exclusively by scheduling events on a
// shared Engine. Events at the same cycle run in scheduling order, so a run
// with a fixed seed is fully reproducible.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in interconnect-clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a particular cycle.
type event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among events at the same cycle
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is ready to use.
type Engine struct {
	pq      eventHeap
	now     Cycle
	seq     uint64
	stopped bool
	// Executed counts events run; useful for run-away detection in tests.
	Executed uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Schedule runs fn after delay cycles (delay 0 means later this cycle, after
// all events already scheduled for the current cycle).
func (e *Engine) Schedule(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.pq, event{when: e.now + delay, seq: e.seq, fn: fn})
}

// At runs fn at the given absolute cycle, which must not be in the past.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	heap.Push(&e.pq, event{when: when, seq: e.seq, fn: fn})
}

// Stop aborts the current Run after the in-flight event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Run executes events until the queue empties, Stop is called, or the
// simulated clock passes limit (0 means no limit). It returns the cycle at
// which it stopped.
func (e *Engine) Run(limit Cycle) Cycle {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := heap.Pop(&e.pq).(event)
		if limit != 0 && ev.when > limit {
			// Put it back so a subsequent Run can resume.
			heap.Push(&e.pq, ev)
			e.now = limit
			return e.now
		}
		if ev.when < e.now {
			panic("sim: time moved backwards")
		}
		e.now = ev.when
		e.Executed++
		ev.fn()
	}
	return e.now
}
