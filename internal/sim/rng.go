package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). The simulator cannot use math/rand's global source because
// experiment runs must be reproducible independent of package initialization
// order; each component derives its own RNG from the run seed.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant, since the xorshift state must never be zero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Fork derives an independent stream labelled by id. Streams forked with
// distinct ids from the same parent are decorrelated.
func (r *RNG) Fork(id uint64) *RNG {
	return NewRNG(Mix64(r.state ^ Mix64(id+0x632BE59BD9B4E019)))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Mix64 is the SplitMix64 finalizer; it is also used by the H3-style hash
// families in the metadata tables.
func Mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
