package sim

import (
	"container/heap"
	"testing"
	"testing/quick"
)

// --- oracle: the original container/heap engine, kept as a reference ---
// oracleEngine reimplements the pre-optimization event loop verbatim; the
// property tests below require the fast queue to match it event-for-event.

type oracleHeap []event

func (h oracleHeap) Len() int            { return len(h) }
func (h oracleHeap) Less(i, j int) bool  { return eventLess(h[i], h[j]) }
func (h oracleHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *oracleHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type oracleEngine struct {
	pq      oracleHeap
	now     Cycle
	seq     uint64
	stopped bool
}

func (e *oracleEngine) Now() Cycle { return e.now }

func (e *oracleEngine) Schedule(delay Cycle, fn func()) {
	e.seq++
	heap.Push(&e.pq, event{when: e.now + delay, seq: e.seq, fn: fn})
}

func (e *oracleEngine) Stop() { e.stopped = true }

func (e *oracleEngine) Run(limit Cycle) Cycle {
	e.stopped = false
	for len(e.pq) > 0 && !e.stopped {
		ev := heap.Pop(&e.pq).(event)
		if limit != 0 && ev.when > limit {
			heap.Push(&e.pq, ev)
			e.now = limit
			return e.now
		}
		e.now = ev.when
		ev.fn()
	}
	return e.now
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 3) }) // same cycle, FIFO
	e.Schedule(20, func() { order = append(order, 4) })
	end := e.Run(0)
	if end != 20 {
		t.Fatalf("end cycle = %d, want 20", end)
	}
	want := []int{1, 2, 3, 4}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(3, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run(0)
	if len(hits) != 3 || hits[0] != 1 || hits[1] != 1 || hits[2] != 4 {
		t.Fatalf("hits = %v, want [1 1 4]", hits)
	}
}

func TestEngineRunLimitResumes(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(15, func() { ran++ })
	e.Run(10)
	if ran != 1 || e.Now() != 10 {
		t.Fatalf("after limited run: ran=%d now=%d", ran, e.Now())
	}
	e.Run(0)
	if ran != 2 || e.Now() != 15 {
		t.Fatalf("after resume: ran=%d now=%d", ran, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt)", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At() in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

// Property: events always execute in non-decreasing time order, regardless of
// the insertion order of delays.
func TestEngineMonotonicTimeProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []Cycle
		for _, d := range delays {
			d := Cycle(d)
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineRunLimitOverLimitEventKept verifies the resume contract in
// detail: an over-limit event is left queued (not dropped, not executed), the
// clock parks exactly at the limit, and repeated limited runs advance through
// the schedule without losing or duplicating events.
func TestEngineRunLimitOverLimitEventKept(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	for _, d := range []Cycle{3, 7, 12, 25} {
		d := d
		e.Schedule(d, func() { hits = append(hits, e.Now()) })
	}
	for _, limit := range []Cycle{5, 10, 20, 0} {
		e.Run(limit)
	}
	want := []Cycle{3, 7, 12, 25}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hits = %v, want %v", hits, want)
		}
	}
	if e.Pending() != 0 || e.Now() != 25 {
		t.Fatalf("after final run: pending=%d now=%d", e.Pending(), e.Now())
	}
}

// TestEngineStopMidCycle stops between two same-cycle events and checks that
// the resumed run executes the remainder of the cycle in FIFO order — the
// same-cycle FIFO must survive a Stop.
func TestEngineStopMidCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(5, func() {
		order = append(order, 1)
		// Same-cycle follow-ups land in the FIFO; Stop after the first.
		e.Schedule(0, func() { order = append(order, 2); e.Stop() })
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(9, func() { order = append(order, 4) })
	e.Run(0)
	if len(order) != 2 || e.Pending() != 2 {
		t.Fatalf("after stop: order=%v pending=%d", order, e.Pending())
	}
	if e.Now() != 5 {
		t.Fatalf("stop advanced the clock: now=%d", e.Now())
	}
	// Scheduling more current-cycle work while stopped must queue behind the
	// FIFO remainder, not jump ahead of it.
	e.At(e.Now(), func() { order = append(order, 5) })
	e.Run(0)
	want := []int{1, 2, 3, 5, 4}
	for i, v := range want {
		if len(order) != len(want) || order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestEngineAtCurrentCycleDuringRun schedules via At(Now()) from inside an
// event and checks it runs this cycle, after already-queued same-cycle work.
func TestEngineAtCurrentCycleDuringRun(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2, func() {
		order = append(order, 1)
		e.At(e.Now(), func() { order = append(order, 3) })
	})
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i, v := range want {
		if len(order) != len(want) || order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 2 {
		t.Fatalf("now = %d, want 2", e.Now())
	}
}

// TestEngineMatchesOracle is the load-bearing equivalence property: a
// randomized workload of delays — with nested rescheduling, heavy same-cycle
// fan-out, and limited/resumed runs — must execute in exactly the same order
// at exactly the same cycles on the fast queue as on the original
// container/heap engine.
func TestEngineMatchesOracle(t *testing.T) {
	type rec struct {
		id   int
		when Cycle
	}
	// drive runs the same deterministic scenario against either engine via
	// the shared schedule/run closures.
	drive := func(delays []uint8, schedule func(Cycle, func()), run func(Cycle) Cycle, now func() Cycle) []rec {
		var trace []rec
		id := 0
		var add func(d Cycle, depth int)
		add = func(d Cycle, depth int) {
			me := id
			id++
			schedule(d, func() {
				trace = append(trace, rec{me, now()})
				if depth > 0 {
					// Deterministic nested fan-out: one same-cycle event and
					// one future event per level.
					add(0, depth-1)
					add(d%5+1, depth-1)
				}
			})
		}
		for _, d := range delays {
			add(Cycle(d%16), int(d%3))
		}
		// Run in limited slices, then to completion.
		run(4)
		run(9)
		run(0)
		return trace
	}

	prop := func(delays []uint8) bool {
		fast := NewEngine()
		ft := drive(delays, fast.Schedule, fast.Run, fast.Now)
		oracle := &oracleEngine{}
		ot := drive(delays, oracle.Schedule, oracle.Run, oracle.Now)
		if len(ft) != len(ot) {
			return false
		}
		for i := range ft {
			if ft[i] != ot[i] {
				return false
			}
		}
		return fast.Pending() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("forked streams collided %d/64 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}
