package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(10, func() { order = append(order, 2) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.Schedule(10, func() { order = append(order, 3) }) // same cycle, FIFO
	e.Schedule(20, func() { order = append(order, 4) })
	end := e.Run(0)
	if end != 20 {
		t.Fatalf("end cycle = %d, want 20", end)
	}
	want := []int{1, 2, 3, 4}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits []Cycle
	e.Schedule(1, func() {
		hits = append(hits, e.Now())
		e.Schedule(3, func() { hits = append(hits, e.Now()) })
		e.Schedule(0, func() { hits = append(hits, e.Now()) })
	})
	e.Run(0)
	if len(hits) != 3 || hits[0] != 1 || hits[1] != 1 || hits[2] != 4 {
		t.Fatalf("hits = %v, want [1 1 4]", hits)
	}
}

func TestEngineRunLimitResumes(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5, func() { ran++ })
	e.Schedule(15, func() { ran++ })
	e.Run(10)
	if ran != 1 || e.Now() != 10 {
		t.Fatalf("after limited run: ran=%d now=%d", ran, e.Now())
	}
	e.Run(0)
	if ran != 2 || e.Now() != 15 {
		t.Fatalf("after resume: ran=%d now=%d", ran, e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(1, func() { ran++; e.Stop() })
	e.Schedule(2, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt)", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("At() in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run(0)
}

// Property: events always execute in non-decreasing time order, regardless of
// the insertion order of delays.
func TestEngineMonotonicTimeProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var times []Cycle
		for _, d := range delays {
			d := Cycle(d)
			e.Schedule(d, func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	if NewRNG(42).Uint64() == NewRNG(43).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork(1)
	f2 := parent.Fork(2)
	same := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("forked streams collided %d/64 times", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}
