package sim

import (
	"testing"
	"testing/quick"
)

// chunkWorkload schedules a deterministic self-extending event mix on eng and
// returns the pointer to its execution log: each event appends its id, and
// some events reschedule follow-ups at 0, 1, or larger delays so the
// same-cycle FIFO, the heap, and cross-chunk boundaries all get exercised.
func chunkWorkload(eng *Engine, n int) *[]int {
	log := &[]int{}
	var spawn func(id int, depth int)
	spawn = func(id, depth int) {
		*log = append(*log, id)
		if depth > 0 {
			eng.Schedule(0, func() { spawn(id*10+1, depth-1) })
			eng.Schedule(Cycle(1+id%7), func() { spawn(id*10+2, depth-1) })
		}
	}
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(Cycle(i%13), func() { spawn(i, 3) })
	}
	return log
}

func equalLogs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// A chunked run must execute exactly the event sequence of an unchunked one,
// for any chunk size, with and without a limit.
func TestRunChunkedIdentical(t *testing.T) {
	ref := NewEngine()
	refLog := chunkWorkload(ref, 20)
	refEnd := ref.Run(0)

	for _, chunk := range []Cycle{1, 2, 3, 7, 16, 1000} {
		eng := NewEngine()
		log := chunkWorkload(eng, 20)
		boundaries := 0
		end := eng.RunChunked(0, chunk, func(now Cycle) bool {
			if now%chunk != 0 {
				t.Errorf("chunk %d: between called at non-boundary cycle %d", chunk, now)
			}
			boundaries++
			return true
		})
		if end != refEnd {
			t.Errorf("chunk %d: end cycle %d, want %d", chunk, end, refEnd)
		}
		if !equalLogs(*log, *refLog) {
			t.Errorf("chunk %d: execution order diverged (%d vs %d events)", chunk, len(*log), len(*refLog))
		}
		if chunk < refEnd && boundaries == 0 {
			t.Errorf("chunk %d: between never called over a %d-cycle run", chunk, refEnd)
		}
	}
}

// Property: for arbitrary small workload shapes and chunk sizes, chunked and
// unchunked runs end at the same cycle with the same event order.
func TestRunChunkedIdenticalProperty(t *testing.T) {
	prop := func(n uint8, chunk uint8) bool {
		jobs := int(n%15) + 1
		c := Cycle(chunk%32) + 1
		ref := NewEngine()
		refLog := chunkWorkload(ref, jobs)
		refEnd := ref.Run(0)
		eng := NewEngine()
		log := chunkWorkload(eng, jobs)
		end := eng.RunChunked(0, c, nil)
		return end == refEnd && equalLogs(*log, *refLog)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Returning false from between must stop the run at that exact boundary,
// leaving the queue resumable: a follow-up Run completes identically to a
// never-stopped run.
func TestRunChunkedEarlyStopResumes(t *testing.T) {
	ref := NewEngine()
	refLog := chunkWorkload(ref, 20)
	refEnd := ref.Run(0)

	const chunk = 5
	eng := NewEngine()
	log := chunkWorkload(eng, 20)
	stopAt := 2 // boundaries seen before refusing
	seen := 0
	end := eng.RunChunked(0, chunk, func(now Cycle) bool {
		seen++
		return seen <= stopAt
	})
	wantStop := Cycle((stopAt + 1) * chunk)
	if end != wantStop {
		t.Fatalf("stopped at cycle %d, want boundary %d", end, wantStop)
	}
	if eng.Pending() == 0 {
		t.Fatal("early stop drained the queue")
	}
	// Cancel latency bound: no event past the refusing boundary has run.
	if got := eng.Now(); got > wantStop {
		t.Fatalf("engine advanced to %d past the stop boundary %d", got, wantStop)
	}

	if resumed := eng.Run(0); resumed != refEnd {
		t.Fatalf("resumed run ended at %d, want %d", resumed, refEnd)
	}
	if !equalLogs(*log, *refLog) {
		t.Fatal("stop+resume diverged from the uninterrupted run")
	}
}

// Chunk 0 must degenerate to a plain Run with between never invoked.
func TestRunChunkedZeroChunk(t *testing.T) {
	ref := NewEngine()
	refLog := chunkWorkload(ref, 10)
	refEnd := ref.Run(0)

	eng := NewEngine()
	log := chunkWorkload(eng, 10)
	end := eng.RunChunked(0, 0, func(Cycle) bool {
		t.Error("between called with chunk 0")
		return true
	})
	if end != refEnd || !equalLogs(*log, *refLog) {
		t.Fatal("zero-chunk run diverged from plain Run")
	}
}

// A limit below the natural end must win over chunking: the run stops at the
// limit with the remaining events still queued.
func TestRunChunkedRespectsLimit(t *testing.T) {
	ref := NewEngine()
	chunkWorkload(ref, 20)
	refEnd := ref.Run(0)
	limit := refEnd / 2
	if limit == 0 {
		t.Skip("workload too short")
	}

	eng := NewEngine()
	chunkWorkload(eng, 20)
	end := eng.RunChunked(limit, 3, nil)
	if end != limit {
		t.Fatalf("end = %d, want limit %d", end, limit)
	}
	if eng.Pending() == 0 {
		t.Fatal("limit stop drained the queue")
	}
}
