package sim

import "testing"

// The event push/pop pair is the innermost loop of every simulation, so these
// benches are the repo's primary engine-level perf baseline (recorded in
// BENCH_harness.json). Each bench also runs against the container/heap oracle
// so the fast-queue speedup stays measurable after future changes.

// mixedLoad schedules n self-rescheduling events with deterministic
// pseudorandom delays — the closest microbenchmark analogue of the timing
// model's traffic (a mix of short latencies and delay-0 wakeups).
func mixedLoad(schedule func(Cycle, func()), run func(Cycle) Cycle, n int) {
	rng := NewRNG(1)
	remaining := n
	var tick func()
	tick = func() {
		if remaining == 0 {
			return
		}
		remaining--
		schedule(Cycle(rng.Intn(8)), tick)
	}
	for i := 0; i < 32; i++ {
		schedule(Cycle(rng.Intn(8)), tick)
	}
	run(0)
}

// sameCycleLoad exercises the delay-0 FIFO fast path: bursts of same-cycle
// wakeups chained from a sparse clock.
func sameCycleLoad(schedule func(Cycle, func()), run func(Cycle) Cycle, n int) {
	remaining := n
	var burst func()
	burst = func() {
		for i := 0; i < 16 && remaining > 0; i++ {
			remaining--
			schedule(0, func() {})
		}
		if remaining > 0 {
			remaining--
			schedule(5, burst)
		}
	}
	schedule(1, burst)
	run(0)
}

func BenchmarkEngineMixed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		mixedLoad(e.Schedule, e.Run, 100000)
	}
}

func BenchmarkEngineMixedOracle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &oracleEngine{}
		mixedLoad(e.Schedule, e.Run, 100000)
	}
}

func BenchmarkEngineSameCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		sameCycleLoad(e.Schedule, e.Run, 100000)
	}
}

func BenchmarkEngineSameCycleOracle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := &oracleEngine{}
		sameCycleLoad(e.Schedule, e.Run, 100000)
	}
}
