package mem

// LLC is a set-associative last-level-cache tag array with LRU replacement.
// Data values live in the shared Image; the tag array only determines hit or
// miss timing at the partition. One LLC instance models one partition's bank.
type LLC struct {
	sets      int
	ways      int
	lineBytes int
	tags      []uint64 // sets*ways entries; 0 means invalid (line 0 never cached: offset by +1)
	lru       []uint64 // per entry, lower = older
	clock     uint64   // monotone; 64-bit so it never wraps within a run

	Hits   uint64
	Misses uint64
}

// NewLLC builds a cache of capacityBytes with the given associativity and
// line size. Capacity must divide evenly into sets.
func NewLLC(capacityBytes, ways, lineBytes int) *LLC {
	lines := capacityBytes / lineBytes
	if lines == 0 || ways <= 0 || lines%ways != 0 {
		panic("mem: invalid LLC geometry")
	}
	sets := lines / ways
	return &LLC{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		tags:      make([]uint64, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *LLC) Sets() int { return c.sets }

func (c *LLC) setOf(line uint64) int {
	return int((line ^ (line >> 11)) % uint64(c.sets))
}

// Access looks up the line containing addr, filling on miss. It returns true
// on hit.
func (c *LLC) Access(addr uint64) bool {
	line := addr/uint64(c.lineBytes) + 1 // +1 so tag 0 means invalid
	set := c.setOf(line)
	base := set * c.ways
	c.clock++
	victim, victimLRU := base, c.lru[base]
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			c.lru[i] = c.clock
			c.Hits++
			return true
		}
		if c.lru[i] < victimLRU {
			victim, victimLRU = i, c.lru[i]
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// Contains reports whether the line holding addr is currently cached, without
// updating replacement state.
func (c *LLC) Contains(addr uint64) bool {
	line := addr/uint64(c.lineBytes) + 1
	base := c.setOf(line) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.tags[i] == line {
			return true
		}
	}
	return false
}

// DRAM models an off-chip channel with a fixed access latency plus per-bank
// occupancy (a request to a busy bank waits for the bank to free).
type DRAM struct {
	Banks     int
	AccessLat uint64 // cycles per access once the bank is free
	BankBusy  uint64 // cycles the bank stays occupied per access
	bankFree  []uint64

	Accesses uint64
}

// NewDRAM builds a channel model.
func NewDRAM(banks int, accessLat, bankBusy uint64) *DRAM {
	if banks <= 0 {
		panic("mem: DRAM needs at least one bank")
	}
	return &DRAM{Banks: banks, AccessLat: accessLat, BankBusy: bankBusy, bankFree: make([]uint64, banks)}
}

// Latency returns the completion delay for an access to addr issued at cycle
// now, updating bank occupancy.
func (d *DRAM) Latency(addr, now uint64) uint64 {
	bank := int((addr >> 10) % uint64(d.Banks))
	start := now
	if d.bankFree[bank] > start {
		start = d.bankFree[bank]
	}
	d.bankFree[bank] = start + d.BankBusy
	d.Accesses++
	return start + d.AccessLat - now
}
