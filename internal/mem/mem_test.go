package mem

import (
	"testing"
	"testing/quick"

	"getm/internal/sim"
)

func TestImageReadWrite(t *testing.T) {
	im := NewImage()
	if im.Read(0x100) != 0 {
		t.Fatal("fresh image should read zero")
	}
	im.Write(0x100, 42)
	if im.Read(0x100) != 42 {
		t.Fatal("write not visible")
	}
	// Misaligned reads resolve to the containing word.
	if im.Read(0x104) != 42 {
		t.Fatal("word alignment broken")
	}
	if im.Len() != 1 {
		t.Fatalf("len = %d", im.Len())
	}
}

func TestImageSnapshotIsolation(t *testing.T) {
	im := NewImage()
	im.Write(8, 1)
	snap := im.Snapshot()
	im.Write(8, 2)
	if snap.Read(8) != 1 {
		t.Fatal("snapshot aliases original")
	}
	if im.Equal(snap) {
		t.Fatal("diverged images compare equal")
	}
	snap.Write(8, 2)
	if !im.Equal(snap) {
		t.Fatal("identical images compare unequal")
	}
}

func TestImageEqualTreatsAbsentAsZero(t *testing.T) {
	a, b := NewImage(), NewImage()
	a.Write(16, 0)
	if !a.Equal(b) {
		t.Fatal("explicit zero should equal absent word")
	}
}

func TestAddressMapPartitionRangeAndStability(t *testing.T) {
	am := AddressMap{Partitions: 6, LineBytes: 128}
	counts := make([]int, 6)
	for i := 0; i < 10000; i++ {
		addr := uint64(i) * 8
		p := am.Partition(addr)
		if p < 0 || p >= 6 {
			t.Fatalf("partition %d out of range", p)
		}
		if p != am.Partition(addr) {
			t.Fatal("partition mapping unstable")
		}
		counts[p]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("partition %d never used — interleaving broken", i)
		}
	}
}

// Property: all addresses within one line map to the same partition.
func TestAddressMapLineCoherence(t *testing.T) {
	am := AddressMap{Partitions: 6, LineBytes: 128}
	prop := func(addr uint64, off uint8) bool {
		base := am.Line(addr)
		return am.Partition(base) == am.Partition(base+uint64(off)%128)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLLCHitMiss(t *testing.T) {
	c := NewLLC(1024, 2, 128) // 8 lines, 4 sets x 2 ways
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(64) {
		t.Fatal("same line should hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLLCLRUEviction(t *testing.T) {
	c := NewLLC(256, 2, 128) // 1 set x 2 ways
	c.Access(0 * 128)
	c.Access(1 * 128)
	c.Access(0 * 128) // refresh line 0
	c.Access(2 * 128) // evicts line 1 (LRU)
	if !c.Contains(0) {
		t.Fatal("LRU evicted the recently used line")
	}
	if c.Contains(128) {
		t.Fatal("victim line still present")
	}
	if !c.Contains(256) {
		t.Fatal("filled line absent")
	}
}

// Regression: the LRU clock is 64-bit. With a 32-bit clock, the access after
// 2^32-1 wrapped to a tiny stamp, making the most recently used line look like
// the oldest and evicting it.
func TestLLCLRUClockWrap(t *testing.T) {
	c := NewLLC(256, 2, 128) // 1 set x 2 ways
	c.clock = (1 << 32) - 2
	c.Access(0 * 128) // stamp 2^32-1
	c.Access(1 * 128) // stamp 2^32 (wraps to 0 with a uint32 clock)
	c.Access(2 * 128) // must evict line 0, the genuinely older entry
	if c.Contains(0) {
		t.Fatal("oldest line survived eviction after the clock passed 2^32")
	}
	if !c.Contains(128) {
		t.Fatal("recently used line evicted — LRU clock wrapped")
	}
}

func TestLLCGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad geometry accepted")
		}
	}()
	NewLLC(100, 3, 64)
}

func TestDRAMBankOccupancy(t *testing.T) {
	d := NewDRAM(2, 200, 36)
	// Two accesses to the same bank: second waits out BankBusy.
	l1 := d.Latency(0, 0)
	l2 := d.Latency(0, 0)
	if l1 != 200 || l2 != 236 {
		t.Fatalf("latencies = %d, %d; want 200, 236", l1, l2)
	}
	// Different bank: unaffected.
	if l3 := d.Latency(1<<10, 0); l3 != 200 {
		t.Fatalf("other-bank latency = %d", l3)
	}
}

func newTestPartition(eng *sim.Engine) *Partition {
	cfg := DefaultPartitionConfig()
	cfg.LLCBytes = 8 << 10
	return NewPartition(0, eng, NewImage(), cfg)
}

func TestPartitionReadWrite(t *testing.T) {
	eng := sim.NewEngine()
	p := newTestPartition(eng)
	var got uint64
	var writeDone, readDone sim.Cycle
	eng.Schedule(0, func() {
		p.Write(0x40, 99, func() { writeDone = eng.Now() })
	})
	eng.Run(0)
	eng.Schedule(0, func() {
		p.Read(0x40, func(v uint64) { got, readDone = v, eng.Now() })
	})
	eng.Run(0)
	if got != 99 {
		t.Fatalf("read %d, want 99", got)
	}
	// First access misses (LLC + DRAM); second hits (LLC only).
	if writeDone < sim.Cycle(p.Cfg.LLCLatency)+sim.Cycle(p.Cfg.DRAMLatency) {
		t.Fatalf("miss too fast: %d", writeDone)
	}
	if readDone-writeDone > p.Cfg.LLCLatency+5 {
		t.Fatalf("hit too slow: %d", readDone-writeDone)
	}
}

func TestPartitionServiceSerialization(t *testing.T) {
	eng := sim.NewEngine()
	p := newTestPartition(eng)
	var done []sim.Cycle
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			addr := uint64(i * 8) // same line -> all hit after first
			p.Read(addr, func(uint64) { done = append(done, eng.Now()) })
		}
	})
	eng.Run(0)
	if len(done) != 4 {
		t.Fatalf("completed %d/4", len(done))
	}
	for i := 1; i < len(done); i++ {
		if done[i] < done[i-1]+1 {
			t.Fatalf("service rate violated: %v", done)
		}
	}
}

func TestPartitionAtomicCAS(t *testing.T) {
	eng := sim.NewEngine()
	p := newTestPartition(eng)
	var results []bool
	eng.Schedule(0, func() {
		// Two competing CAS(0 -> id) on the same lock word: exactly one wins.
		p.AtomicCAS(0x80, 0, 1, func(_ uint64, ok bool) { results = append(results, ok) })
		p.AtomicCAS(0x80, 0, 2, func(_ uint64, ok bool) { results = append(results, ok) })
	})
	eng.Run(0)
	if len(results) != 2 || !results[0] || results[1] {
		t.Fatalf("CAS results = %v, want [true false]", results)
	}
	if p.Image.Read(0x80) != 1 {
		t.Fatalf("lock word = %d, want 1", p.Image.Read(0x80))
	}
	if p.AtomicsServed != 2 {
		t.Fatalf("atomics served = %d", p.AtomicsServed)
	}
}

func TestPartitionAtomicExch(t *testing.T) {
	eng := sim.NewEngine()
	p := newTestPartition(eng)
	p.Image.Write(0x80, 7)
	var old uint64
	eng.Schedule(0, func() {
		p.AtomicExch(0x80, 0, func(o uint64) { old = o })
	})
	eng.Run(0)
	if old != 7 || p.Image.Read(0x80) != 0 {
		t.Fatalf("exch: old=%d mem=%d", old, p.Image.Read(0x80))
	}
}

func TestPartitionWriteNowReadNow(t *testing.T) {
	eng := sim.NewEngine()
	p := newTestPartition(eng)
	p.WriteNow(0x100, 5)
	if p.ReadNow(0x100) != 5 {
		t.Fatal("WriteNow/ReadNow broken")
	}
	if !p.LLC.Contains(0x100) {
		t.Fatal("WriteNow should touch LLC tags")
	}
}
