// Package mem models the GPU memory system: the global memory image (actual
// data values, so WarpTM's value-based validation compares real contents),
// the line-interleaved partition address map, a set-associative LLC tag
// array, and a DRAM timing model with per-bank occupancy.
package mem

import (
	"sync"
	"sync/atomic"
)

// WordBytes is the data word size; all workload values are 64-bit words.
const WordBytes = 8

// Image page geometry: 4 KB pages (512 words) in a page-table map, flat
// word arrays inside — steady-state reads and writes are one map probe (or a
// hit in the one-entry page cache) plus array indexing.
const (
	pageWords = 512
	pageShift = 9 // log2(pageWords)
)

type page struct {
	words [pageWords]uint64
	// written marks words ever written (Len/Snapshot track the footprint,
	// not just non-zero contents).
	written [pageWords / 64]uint64
}

// Image holds the architectural memory contents at word granularity.
// It is shared by all partitions (each partition owns a disjoint address
// slice, so no two partitions touch the same word).
//
// By default the image is single-goroutine. SetShared switches it into a
// concurrent mode for the sharded engine, where each memory partition runs in
// its own shard domain: page lookups go through a copy-on-write page table
// published with an atomic pointer, the written-footprint bitmap and word
// count become atomic (words within one page span several partitions'
// lines), and the one-entry page cache is bypassed. Word stores stay plain —
// the partition interleave guarantees no two domains touch the same word,
// and the shard barrier provides the happens-before edge for any later
// cross-domain reader.
type Image struct {
	pages map[uint64]*page
	count int // words ever written
	// One-entry page cache: consecutive accesses cluster heavily by page.
	lastNo   uint64
	lastPage *page

	shared bool
	mu     sync.Mutex // serializes shared-mode page allocation
	cpages atomic.Pointer[map[uint64]*page]
	ccount atomic.Int64
}

// NewImage returns an empty (all-zero) memory image.
func NewImage() *Image { return &Image{pages: make(map[uint64]*page), lastNo: ^uint64(0)} }

// SetShared switches the image into concurrent mode (see the type comment).
// Call once, before handing the image to concurrently running partitions;
// there is no way back, but every accessor keeps working after the run ends.
func (im *Image) SetShared() {
	if im.shared {
		return
	}
	im.shared = true
	im.lastNo, im.lastPage = ^uint64(0), nil
	m := im.pages
	im.cpages.Store(&m)
	im.ccount.Store(int64(im.count))
}

// sync re-adopts the shared-mode state into the plain fields so that
// single-goroutine accessors (Len, Snapshot, Equal) see the final contents.
func (im *Image) sync() {
	if im.shared {
		im.pages = *im.cpages.Load()
		im.count = int(im.ccount.Load())
	}
}

// writeShared is Write in concurrent mode.
func (im *Image) writeShared(addr, val uint64) {
	wordNo := addr / WordBytes
	no := wordNo >> pageShift
	p := (*im.cpages.Load())[no]
	if p == nil {
		p = im.allocShared(no)
	}
	off := wordNo & (pageWords - 1)
	bit := uint64(1) << (off % 64)
	w := &p.written[off/64]
	// CAS loop rather than atomic.OrUint64, which needs a newer language
	// version than the module targets.
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			break
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			im.ccount.Add(1)
			break
		}
	}
	p.words[off] = val
}

// allocShared publishes a new page copy-on-write under the allocation lock.
func (im *Image) allocShared(no uint64) *page {
	im.mu.Lock()
	defer im.mu.Unlock()
	cur := *im.cpages.Load()
	if p := cur[no]; p != nil {
		return p
	}
	next := make(map[uint64]*page, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	p := new(page)
	next[no] = p
	im.cpages.Store(&next)
	return p
}

func (im *Image) pageFor(wordNo uint64) *page {
	no := wordNo >> pageShift
	if no == im.lastNo && im.lastPage != nil {
		return im.lastPage
	}
	p := im.pages[no]
	if p != nil {
		im.lastNo, im.lastPage = no, p
	}
	return p
}

// Read returns the word at the (word-aligned) byte address.
func (im *Image) Read(addr uint64) uint64 {
	wordNo := addr / WordBytes
	var p *page
	if im.shared {
		p = (*im.cpages.Load())[wordNo>>pageShift]
	} else {
		p = im.pageFor(wordNo)
	}
	if p == nil {
		return 0
	}
	return p.words[wordNo&(pageWords-1)]
}

// Write stores val at the (word-aligned) byte address.
func (im *Image) Write(addr, val uint64) {
	if im.shared {
		im.writeShared(addr, val)
		return
	}
	wordNo := addr / WordBytes
	p := im.pageFor(wordNo)
	if p == nil {
		p = new(page)
		no := wordNo >> pageShift
		im.pages[no] = p
		im.lastNo, im.lastPage = no, p
	}
	off := wordNo & (pageWords - 1)
	if p.written[off/64]&(1<<(off%64)) == 0 {
		p.written[off/64] |= 1 << (off % 64)
		im.count++
	}
	p.words[off] = val
}

// Len returns the number of words ever written.
func (im *Image) Len() int {
	im.sync()
	return im.count
}

// Snapshot copies the image (used by the serializability replay checker).
func (im *Image) Snapshot() *Image {
	im.sync()
	c := NewImage()
	c.count = im.count
	for no, p := range im.pages {
		cp := *p
		c.pages[no] = &cp
	}
	return c
}

// Equal reports whether two images hold identical contents (treating absent
// words as zero).
func (im *Image) Equal(other *Image) bool {
	im.sync()
	other.sync()
	for no, p := range im.pages {
		q := other.pages[no]
		for i := range p.words {
			var qv uint64
			if q != nil {
				qv = q.words[i]
			}
			if p.words[i] != qv {
				return false
			}
		}
	}
	for no, q := range other.pages {
		if _, ok := im.pages[no]; ok {
			continue // compared above
		}
		for i := range q.words {
			if q.words[i] != 0 {
				return false
			}
		}
	}
	return true
}

// AddressMap assigns addresses to memory partitions by interleaving LLC
// lines across partitions, as GPUs do.
type AddressMap struct {
	Partitions int
	LineBytes  int
}

// Partition returns the home partition of a byte address.
func (am AddressMap) Partition(addr uint64) int {
	line := addr / uint64(am.LineBytes)
	// Mix the line number so that power-of-two strides spread evenly.
	return int((line ^ (line >> 7) ^ (line >> 15)) % uint64(am.Partitions))
}

// Line returns the address of the LLC line containing addr.
func (am AddressMap) Line(addr uint64) uint64 {
	return addr &^ uint64(am.LineBytes-1)
}
