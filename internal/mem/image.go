// Package mem models the GPU memory system: the global memory image (actual
// data values, so WarpTM's value-based validation compares real contents),
// the line-interleaved partition address map, a set-associative LLC tag
// array, and a DRAM timing model with per-bank occupancy.
package mem

// WordBytes is the data word size; all workload values are 64-bit words.
const WordBytes = 8

// Image holds the architectural memory contents at word granularity.
// It is shared by all partitions (each partition owns a disjoint address
// slice, so no two partitions touch the same word).
type Image struct {
	words map[uint64]uint64
}

// NewImage returns an empty (all-zero) memory image.
func NewImage() *Image { return &Image{words: make(map[uint64]uint64)} }

// Read returns the word at the (word-aligned) byte address.
func (im *Image) Read(addr uint64) uint64 {
	return im.words[addr&^uint64(WordBytes-1)]
}

// Write stores val at the (word-aligned) byte address.
func (im *Image) Write(addr, val uint64) {
	im.words[addr&^uint64(WordBytes-1)] = val
}

// Len returns the number of words ever written.
func (im *Image) Len() int { return len(im.words) }

// Snapshot copies the image (used by the serializability replay checker).
func (im *Image) Snapshot() *Image {
	c := NewImage()
	for k, v := range im.words {
		c.words[k] = v
	}
	return c
}

// Equal reports whether two images hold identical contents (treating absent
// words as zero).
func (im *Image) Equal(other *Image) bool {
	for k, v := range im.words {
		if other.Read(k) != v {
			return false
		}
	}
	for k, v := range other.words {
		if im.Read(k) != v {
			return false
		}
	}
	return true
}

// AddressMap assigns addresses to memory partitions by interleaving LLC
// lines across partitions, as GPUs do.
type AddressMap struct {
	Partitions int
	LineBytes  int
}

// Partition returns the home partition of a byte address.
func (am AddressMap) Partition(addr uint64) int {
	line := addr / uint64(am.LineBytes)
	// Mix the line number so that power-of-two strides spread evenly.
	return int((line ^ (line >> 7) ^ (line >> 15)) % uint64(am.Partitions))
}

// Line returns the address of the LLC line containing addr.
func (am AddressMap) Line(addr uint64) uint64 {
	return addr &^ uint64(am.LineBytes-1)
}
