// Package mem models the GPU memory system: the global memory image (actual
// data values, so WarpTM's value-based validation compares real contents),
// the line-interleaved partition address map, a set-associative LLC tag
// array, and a DRAM timing model with per-bank occupancy.
package mem

// WordBytes is the data word size; all workload values are 64-bit words.
const WordBytes = 8

// Image page geometry: 4 KB pages (512 words) in a page-table map, flat
// word arrays inside — steady-state reads and writes are one map probe (or a
// hit in the one-entry page cache) plus array indexing.
const (
	pageWords = 512
	pageShift = 9 // log2(pageWords)
)

type page struct {
	words [pageWords]uint64
	// written marks words ever written (Len/Snapshot track the footprint,
	// not just non-zero contents).
	written [pageWords / 64]uint64
}

// Image holds the architectural memory contents at word granularity.
// It is shared by all partitions (each partition owns a disjoint address
// slice, so no two partitions touch the same word).
type Image struct {
	pages map[uint64]*page
	count int // words ever written
	// One-entry page cache: consecutive accesses cluster heavily by page.
	lastNo   uint64
	lastPage *page
}

// NewImage returns an empty (all-zero) memory image.
func NewImage() *Image { return &Image{pages: make(map[uint64]*page), lastNo: ^uint64(0)} }

func (im *Image) pageFor(wordNo uint64) *page {
	no := wordNo >> pageShift
	if no == im.lastNo && im.lastPage != nil {
		return im.lastPage
	}
	p := im.pages[no]
	if p != nil {
		im.lastNo, im.lastPage = no, p
	}
	return p
}

// Read returns the word at the (word-aligned) byte address.
func (im *Image) Read(addr uint64) uint64 {
	wordNo := addr / WordBytes
	p := im.pageFor(wordNo)
	if p == nil {
		return 0
	}
	return p.words[wordNo&(pageWords-1)]
}

// Write stores val at the (word-aligned) byte address.
func (im *Image) Write(addr, val uint64) {
	wordNo := addr / WordBytes
	p := im.pageFor(wordNo)
	if p == nil {
		p = new(page)
		no := wordNo >> pageShift
		im.pages[no] = p
		im.lastNo, im.lastPage = no, p
	}
	off := wordNo & (pageWords - 1)
	if p.written[off/64]&(1<<(off%64)) == 0 {
		p.written[off/64] |= 1 << (off % 64)
		im.count++
	}
	p.words[off] = val
}

// Len returns the number of words ever written.
func (im *Image) Len() int { return im.count }

// Snapshot copies the image (used by the serializability replay checker).
func (im *Image) Snapshot() *Image {
	c := NewImage()
	c.count = im.count
	for no, p := range im.pages {
		cp := *p
		c.pages[no] = &cp
	}
	return c
}

// Equal reports whether two images hold identical contents (treating absent
// words as zero).
func (im *Image) Equal(other *Image) bool {
	for no, p := range im.pages {
		q := other.pages[no]
		for i := range p.words {
			var qv uint64
			if q != nil {
				qv = q.words[i]
			}
			if p.words[i] != qv {
				return false
			}
		}
	}
	for no, q := range other.pages {
		if _, ok := im.pages[no]; ok {
			continue // compared above
		}
		for i := range q.words {
			if q.words[i] != 0 {
				return false
			}
		}
	}
	return true
}

// AddressMap assigns addresses to memory partitions by interleaving LLC
// lines across partitions, as GPUs do.
type AddressMap struct {
	Partitions int
	LineBytes  int
}

// Partition returns the home partition of a byte address.
func (am AddressMap) Partition(addr uint64) int {
	line := addr / uint64(am.LineBytes)
	// Mix the line number so that power-of-two strides spread evenly.
	return int((line ^ (line >> 7) ^ (line >> 15)) % uint64(am.Partitions))
}

// Line returns the address of the LLC line containing addr.
func (am AddressMap) Line(addr uint64) uint64 {
	return addr &^ uint64(am.LineBytes-1)
}
