package mem

import (
	"getm/internal/sim"
	"getm/internal/trace"
)

// PartitionConfig sets the timing of one memory partition's data path.
type PartitionConfig struct {
	LLCBytes     int
	LLCWays      int
	LineBytes    int
	LLCLatency   sim.Cycle // pipelined hit latency
	DRAMBanks    int
	DRAMLatency  uint64 // additional latency on LLC miss
	DRAMBankBusy uint64
	// ServiceRate is the number of requests the partition can start per
	// cycle (1 in Table II).
	ServiceRate int
}

// DefaultPartitionConfig mirrors Table II: 128 KB 8-way LLC with 128 B lines;
// DRAM ~200 cycles.
func DefaultPartitionConfig() PartitionConfig {
	return PartitionConfig{
		LLCBytes:     128 << 10,
		LLCWays:      8,
		LineBytes:    128,
		LLCLatency:   60,
		DRAMBanks:    8,
		DRAMLatency:  200,
		DRAMBankBusy: 36,
		ServiceRate:  1,
	}
}

// Partition models one memory partition's data path: a service queue in
// front of the LLC bank, and a DRAM channel behind it. Protocol units
// (validation/commit units) are layered on top by their packages and call
// Access for their LLC data operations.
type Partition struct {
	ID    int
	Cfg   PartitionConfig
	Eng   *sim.Engine
	Image *Image
	LLC   *LLC
	DRAM  *DRAM

	nextService sim.Cycle
	atomicNext  sim.Cycle
	// AtomicsServed counts atomic operations (lock traffic).
	AtomicsServed uint64

	rec *trace.Recorder
}

// SetTrace attaches the machine-wide event recorder (nil disables; the check
// on the access path is a single pointer compare).
func (p *Partition) SetTrace(rec *trace.Recorder) { p.rec = rec }

// NewPartition builds a partition over a shared memory image.
func NewPartition(id int, eng *sim.Engine, img *Image, cfg PartitionConfig) *Partition {
	return &Partition{
		ID:    id,
		Cfg:   cfg,
		Eng:   eng,
		Image: img,
		LLC:   NewLLC(cfg.LLCBytes, cfg.LLCWays, cfg.LineBytes),
		DRAM:  NewDRAM(cfg.DRAMBanks, cfg.DRAMLatency, cfg.DRAMBankBusy),
	}
}

// serviceSlot reserves the next issue slot at the partition's service rate
// and returns its cycle.
func (p *Partition) serviceSlot() sim.Cycle {
	now := p.Eng.Now()
	start := now
	if p.nextService > start {
		start = p.nextService
	}
	p.nextService = start + sim.Cycle(1/maxInt(p.Cfg.ServiceRate, 1))
	return start
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AccessDelay computes the completion delay for a data access to addr
// starting now, accounting for queueing, LLC hit/miss, and DRAM. It advances
// the tag and bank state.
func (p *Partition) AccessDelay(addr uint64) sim.Cycle {
	start := p.serviceSlot()
	done := start + p.Cfg.LLCLatency
	hit := p.LLC.Access(addr)
	if !hit {
		done += sim.Cycle(p.DRAM.Latency(addr, uint64(start)))
	}
	d := done - p.Eng.Now()
	if p.rec != nil {
		h := uint64(0)
		if hit {
			h = 1
		}
		p.rec.Emit(trace.SrcMem, trace.KMemAccess, int32(p.ID), addr, h, 0, uint64(d))
	}
	return d
}

// Read performs a timed read; done receives the value.
func (p *Partition) Read(addr uint64, done func(val uint64)) {
	d := p.AccessDelay(addr)
	p.Eng.Schedule(d, func() { done(p.Image.Read(addr)) })
}

// Write performs a timed write.
func (p *Partition) Write(addr, val uint64, done func()) {
	d := p.AccessDelay(addr)
	p.Eng.Schedule(d, func() {
		p.Image.Write(addr, val)
		if done != nil {
			done()
		}
	})
}

// WriteNow updates the image immediately (used by commit units that already
// charged their own timing) while still touching the LLC tags.
func (p *Partition) WriteNow(addr, val uint64) {
	p.LLC.Access(addr)
	p.Image.Write(addr, val)
}

// ReadNow returns the current value without timing (protocol-internal reads
// whose latency the caller models, e.g. value validation pipelines).
func (p *Partition) ReadNow(addr uint64) uint64 { return p.Image.Read(addr) }

// atomicSlot returns the delay until this atomic's read-modify-write takes
// effect. The partition's atomic unit applies effects strictly in arrival
// order (as the ROP units in real GPUs do), so a later-arriving atomic can
// never observe memory from before an earlier one.
func (p *Partition) atomicSlot(addr uint64) sim.Cycle {
	effect := p.Eng.Now() + p.AccessDelay(addr)
	if p.atomicNext > effect {
		effect = p.atomicNext
	}
	p.atomicNext = effect + 1
	p.AtomicsServed++
	d := effect - p.Eng.Now()
	if p.rec != nil {
		p.rec.Emit(trace.SrcMem, trace.KMemAtomic, int32(p.ID), addr, 0, 0, uint64(d))
	}
	return d
}

// AtomicCAS performs a timed compare-and-swap; done receives the old value
// and whether the swap happened. GPU atomics execute at the partition, so
// contended CAS traffic serializes here.
func (p *Partition) AtomicCAS(addr, compare, swap uint64, done func(old uint64, ok bool)) {
	p.Eng.Schedule(p.atomicSlot(addr), func() {
		old := p.Image.Read(addr)
		ok := old == compare
		if ok {
			p.Image.Write(addr, swap)
		}
		done(old, ok)
	})
}

// AtomicExch performs a timed atomic exchange; done receives the old value.
func (p *Partition) AtomicExch(addr, val uint64, done func(old uint64)) {
	p.Eng.Schedule(p.atomicSlot(addr), func() {
		old := p.Image.Read(addr)
		p.Image.Write(addr, val)
		done(old)
	})
}

// AtomicAdd performs a timed atomic add; done receives the old value.
func (p *Partition) AtomicAdd(addr, delta uint64, done func(old uint64)) {
	p.Eng.Schedule(p.atomicSlot(addr), func() {
		old := p.Image.Read(addr)
		p.Image.Write(addr, old+delta)
		done(old)
	})
}
