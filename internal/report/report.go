// Package report provides structured experiment output: typed tables that
// render as aligned text, Markdown, or CSV, plus simple ASCII bar charts for
// quick visual comparison of normalized results. The harness builds its
// figure/table reproductions as report.Table values so cmd/getm-bench can
// offer machine-readable output alongside the human-readable default.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Cell is one table value.
type Cell struct {
	S string
	F float64
	// IsNum marks F as the value (rendered with Prec decimals).
	IsNum bool
	Prec  int
}

// Str makes a text cell.
func Str(s string) Cell { return Cell{S: s} }

// Num makes a numeric cell with the given precision.
func Num(v float64, prec int) Cell { return Cell{F: v, IsNum: true, Prec: prec} }

// Int makes an integer cell.
func Int(v uint64) Cell { return Cell{F: float64(v), IsNum: true, Prec: 0} }

// String renders the cell. Non-finite values render as "n/a": they encode a
// metric whose denominator was zero (e.g. aborts per commit with no commits),
// which must read as "not applicable", never as a numeric 0.
func (c Cell) String() string {
	if c.IsNum {
		if math.IsInf(c.F, 0) || math.IsNaN(c.F) {
			return "n/a"
		}
		return strconv.FormatFloat(c.F, 'f', c.Prec, 64)
	}
	return c.S
}

// Table is a structured experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]Cell
	// Notes are free-form commentary lines (paper expectations etc.).
	Notes []string
}

// NewTable starts a table.
func NewTable(id, title string, columns ...string) *Table {
	return &Table{ID: id, Title: title, Columns: columns}
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(cells ...Cell) *Table {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table %q has %d columns", len(cells), t.ID, len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
	return t
}

// AddNote appends a commentary line.
func (t *Table) AddNote(format string, args ...interface{}) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// colWidths computes per-column display widths.
func (t *Table) colWidths() []int {
	w := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		w[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := len(c.String()); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

// Text renders an aligned plain-text table.
func (t *Table) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	w := t.colWidths()
	writeRow := func(get func(i int) string) {
		for i := range t.Columns {
			if i > 0 {
				b.WriteString("  ")
			}
			s := get(i)
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w[i], s)
			} else {
				fmt.Fprintf(&b, "%*s", w[i], s)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(func(i int) string { return t.Columns[i] })
	for _, row := range t.Rows {
		row := row
		writeRow(func(i int) string { return row[i].String() })
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

// Markdown renders a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = c.String()
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "> %s\n", n)
		}
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (first line: columns).
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	b.WriteString(strings.Join(cols, ",") + "\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c.String())
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// BarChart renders an ASCII horizontal bar chart of one numeric column,
// labeled by the first column. width is the maximum bar length in runes.
func (t *Table) BarChart(column string, width int) string {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return fmt.Sprintf("(no column %q)\n", column)
	}
	if width <= 0 {
		width = 40
	}
	var max float64
	for _, row := range t.Rows {
		if row[ci].IsNum && row[ci].F > max {
			max = row[ci].F
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.Title, column)
	lw := 0
	for _, row := range t.Rows {
		if n := len(row[0].String()); n > lw {
			lw = n
		}
	}
	for _, row := range t.Rows {
		if !row[ci].IsNum {
			continue
		}
		n := int(row[ci].F / max * float64(width))
		fmt.Fprintf(&b, "%-*s %s %s\n", lw, row[0].String(),
			strings.Repeat("█", n)+strings.Repeat(" ", width-n), row[ci].String())
	}
	return b.String()
}

// Format selects a rendering.
type Format string

// Supported formats.
const (
	FormatText     Format = "text"
	FormatMarkdown Format = "markdown"
	FormatCSV      Format = "csv"
)

// Render renders in the requested format (text on unknown formats).
func (t *Table) Render(f Format) string {
	switch f {
	case FormatMarkdown:
		return t.Markdown()
	case FormatCSV:
		return t.CSV()
	default:
		return t.Text()
	}
}
