package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	return NewTable("fig0", "demo", "bench", "WTM", "GETM").
		AddRow(Str("ht-h"), Num(2.10, 2), Num(1.37, 2)).
		AddRow(Str("atm"), Num(0.77, 2), Num(0.77, 2)).
		AddNote("lower is better")
}

func TestCellRendering(t *testing.T) {
	if Str("x").String() != "x" {
		t.Fatal("Str broken")
	}
	if Num(1.2345, 2).String() != "1.23" {
		t.Fatal("Num broken")
	}
	if Int(42).String() != "42" {
		t.Fatal("Int broken")
	}
}

func TestTextAlignment(t *testing.T) {
	out := sample().Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header banner, columns, 2 rows, note
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "=== fig0: demo") {
		t.Fatalf("banner: %q", lines[0])
	}
	// Numeric columns right-aligned: both data lines end with the value.
	if !strings.HasSuffix(lines[2], "1.37") || !strings.HasSuffix(lines[3], "0.77") {
		t.Fatalf("alignment:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	for _, want := range []string{"| bench | WTM | GETM |", "|---|---|---|", "| ht-h | 2.10 | 1.37 |", "> lower is better"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	out := sample().CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "bench,WTM,GETM" || lines[1] != "ht-h,2.10,1.37" {
		t.Fatalf("csv:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := NewTable("x", "t", "a").AddRow(Str(`va"l,ue`))
	out := tab.CSV()
	if !strings.Contains(out, `"va""l,ue"`) {
		t.Fatalf("escaping broken: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := sample().BarChart("WTM", 20)
	if !strings.Contains(out, "ht-h") || !strings.Contains(out, "█") {
		t.Fatalf("chart:\n%s", out)
	}
	// Max row gets a full-width bar.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ht-h") && strings.Count(line, "█") != 20 {
			t.Fatalf("max bar not full width: %q", line)
		}
	}
	if !strings.Contains(sample().BarChart("nope", 10), "no column") {
		t.Fatal("unknown column not reported")
	}
}

func TestRenderDispatch(t *testing.T) {
	tab := sample()
	if tab.Render(FormatCSV) != tab.CSV() {
		t.Fatal("csv dispatch")
	}
	if tab.Render(FormatMarkdown) != tab.Markdown() {
		t.Fatal("markdown dispatch")
	}
	if tab.Render("bogus") != tab.Text() {
		t.Fatal("default dispatch")
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch accepted")
		}
	}()
	NewTable("x", "t", "a", "b").AddRow(Str("only-one"))
}

// Non-finite cells (zero-denominator ratios like aborts/1K-commits with no
// commits) must render as "n/a" in every format, never as a number.
func TestNonFiniteCellsRenderNA(t *testing.T) {
	inf := Num(math.Inf(1), 0)
	if got := inf.String(); got != "n/a" {
		t.Fatalf("+Inf cell renders %q, want \"n/a\"", got)
	}
	if got := Num(math.Inf(-1), 2).String(); got != "n/a" {
		t.Fatalf("-Inf cell renders %q, want \"n/a\"", got)
	}
	if got := Num(math.NaN(), 1).String(); got != "n/a" {
		t.Fatalf("NaN cell renders %q, want \"n/a\"", got)
	}

	tab := NewTable("t", "na demo", "bench", "aborts/1K").
		AddRow(Str("all-abort"), inf)
	for _, f := range []Format{FormatText, FormatMarkdown, FormatCSV} {
		out := tab.Render(f)
		if !strings.Contains(out, "n/a") {
			t.Errorf("%s output missing n/a:\n%s", f, out)
		}
		if strings.Contains(out, "Inf") {
			t.Errorf("%s output leaks Inf:\n%s", f, out)
		}
	}
}
