package warptm

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/tm"
)

func TestEmptySubcommitRetiresWithoutConfirm(t *testing.T) {
	// A commit touching only partition 0 must not leave partition 1's VU
	// holding an in-flight slot: its empty subcommit retires on arrival.
	h := newWTMHarness(DefaultConfig(), 2)
	w := h.newTx(1)
	// Find an address homed on partition 0.
	addr := uint64(0x100)
	for h.proto.amap.Partition(addr) != 0 {
		addr += 128
	}
	h.access(t, w, true, addr, 1)
	out := h.commit(t, w)
	if out.FailedLanes != 0 {
		t.Fatalf("commit failed: %+v", out)
	}
	for i, vu := range h.vus {
		if vu.InFlight() != 0 {
			t.Fatalf("vu %d holds %d in-flight txs after commit", i, vu.InFlight())
		}
	}
	// The uninvolved VU never validated anything.
	if h.vus[1].Validations != 0 && h.vus[0].Validations != 0 {
		// exactly one of them validated (the involved one)
		t.Fatalf("both VUs validated: %d, %d", h.vus[0].Validations, h.vus[1].Validations)
	}
}

func TestDecisionsRetireInCommitIDOrder(t *testing.T) {
	// Three commits to disjoint addresses: even though their validations
	// could finish out of order, the recorded serialization keys must be
	// assigned in commit-id order and the decided counter must advance
	// monotonically to 3.
	h := newWTMHarness(DefaultConfig(), 3)
	addrs := []uint64{0x100, 0x2000, 0x40000}
	var done int
	for i, a := range addrs {
		w := h.newTx(10 + i)
		h.access(t, w, true, a, uint64(i+1))
		h.eng.Schedule(0, func() {
			h.proto.Commit(w, isa.LaneMask(0).Set(0), 0, func(tm.CommitOutcome) { done++ })
		})
	}
	h.eng.Run(0)
	if done != 3 {
		t.Fatalf("completed %d/3 commits", done)
	}
	if h.proto.decided != 3 {
		t.Fatalf("decided = %d, want 3", h.proto.decided)
	}
	if len(h.proto.waiting) != 0 {
		t.Fatalf("%d decisions stuck waiting", len(h.proto.waiting))
	}
	// Keys strictly increase with commit id.
	var keys []uint64
	for _, tx := range h.proto.Committed {
		if len(tx.Writes) > 0 {
			keys = append(keys, tx.SerialTS)
		}
	}
	if len(keys) != 3 {
		t.Fatalf("recorded %d writer txs", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("serialization keys not increasing: %v", keys)
		}
	}
}

func TestSilentCommitHorizonOrdersAfterPriorDecisions(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 2)
	// Writer commits first (decided=1).
	w1 := h.newTx(1)
	h.access(t, w1, true, 0x100, 7)
	h.commit(t, w1)
	// Read-only tx begins afterwards: its silent key must order after the
	// writer's key.
	w2 := h.newTx(2)
	h.access(t, w2, false, 0x100, 0)
	h.commit(t, w2)
	var writerKey, silentKey uint64
	for _, tx := range h.proto.Committed {
		if len(tx.Writes) > 0 {
			writerKey = tx.SerialTS
		} else {
			silentKey = tx.SerialTS
		}
	}
	if silentKey <= writerKey {
		t.Fatalf("silent key %d not after writer key %d", silentKey, writerKey)
	}
}
