// Package warptm implements the WarpTM baseline (Fung & Aamodt, MICRO 2013,
// building on KiloTM): lazy version management with lazy, value-based
// conflict detection, plus the temporal-conflict-detection (TCD) filter that
// lets read-only transactions commit silently.
//
// Commit protocol (paper §II-B, Fig 2 top): the committing warp's coalesced
// read+write log is sent to validation units at every LLC partition (empty
// messages keep the global commit-id sequence); each VU compares logged read
// values against current LLC contents; the core collects per-partition
// results, sends a commit/abort confirmation, and the commit units write the
// data and acknowledge. The warp resumes only after all acks — two full
// round trips on the critical path.
//
// Validation units pipeline non-overlapping transactions with KiloTM-style
// hazard checking: a transaction may start validating while earlier ones
// await their confirmation, unless its footprint overlaps an outstanding
// write set.
//
// The package also provides the paper's idealized eager-lazy variant
// (WarpTM-EL, §III): identical commit machinery, plus zero-latency
// validation of the read log at every transactional access, so doomed
// transactions abort at access time instead of discovering conflicts after
// the two-round-trip commit sequence.
package warptm

// Config sets WarpTM's structure sizes and costs.
type Config struct {
	// TCDEntries is the per-partition recency-filter capacity for last-write
	// physical timestamps.
	TCDEntries int
	// TCDWays is the filter associativity.
	TCDWays int
	// ValidateEntriesPerCycle is the VU's value-validation rate.
	ValidateEntriesPerCycle int
	// CommitBytesPerCycle is the CU's LLC write bandwidth.
	CommitBytesPerCycle int
	// MaxInFlight bounds validated-but-unconfirmed transactions per VU.
	// KiloTM's recently-validated buffer lets a transaction start validating
	// while non-overlapping predecessors await their confirmation round
	// trip; depth 4 reproduces that behaviour (and the paper's Table IV,
	// where WarpTM sometimes runs best at unlimited concurrency). Depth 1
	// gives the fully serialized commit sequence of the paper's simplified
	// §II-B prose; BenchmarkAblationCommitPipelining sweeps it.
	MaxInFlight int
	// Eager enables the idealized WarpTM-EL variant: instant validation of
	// the read log at every transactional access.
	Eager bool
	// LocalArb drops the global in-order commit retirement (the ring token):
	// a core decides as soon as its own validation replies are in. The VU
	// hazard windows still order conflicting commits, so commit-id order
	// remains a valid serialization. Policy-matrix knob; excluded from JSON
	// so store content addresses are unchanged.
	LocalArb bool `json:"-"`
}

// DefaultConfig mirrors the paper's WarpTM setup.
func DefaultConfig() Config {
	return Config{
		TCDEntries:              1024,
		TCDWays:                 4,
		ValidateEntriesPerCycle: 1,
		CommitBytesPerCycle:     32,
		MaxInFlight:             2,
	}
}
