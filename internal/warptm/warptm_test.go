package warptm

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// fakeTransport mirrors the crossbar's FIFO property with a fixed latency.
type fakeTransport struct {
	eng     *sim.Engine
	latency sim.Cycle
	up      uint64
	down    uint64
}

func (f *fakeTransport) ToPartition(core, partition, bytes int, deliver func()) {
	f.up += uint64(bytes)
	f.eng.Schedule(f.latency, deliver)
}

func (f *fakeTransport) ToCore(partition, core, bytes int, deliver func()) {
	f.down += uint64(bytes)
	f.eng.Schedule(f.latency, deliver)
}

func (f *fakeTransport) BroadcastToCores(partition, bytes int, deliver func(core int)) {
	f.eng.Schedule(f.latency, func() { deliver(0) })
}

type wtmHarness struct {
	eng   *sim.Engine
	img   *mem.Image
	vus   []*VU
	proto *Protocol
	trans *fakeTransport
}

func newWTMHarness(cfg Config, nParts int) *wtmHarness {
	eng := sim.NewEngine()
	img := mem.NewImage()
	amap := mem.AddressMap{Partitions: nParts, LineBytes: 128}
	trans := &fakeTransport{eng: eng, latency: 5}
	h := &wtmHarness{eng: eng, img: img, trans: trans}
	rng := sim.NewRNG(3)
	pcfg := mem.DefaultPartitionConfig()
	pcfg.LLCBytes = 16 << 10
	for i := 0; i < nParts; i++ {
		p := mem.NewPartition(i, eng, img, pcfg)
		h.vus = append(h.vus, NewVU(cfg, eng, p, rng.Fork(uint64(i))))
	}
	h.proto = NewProtocol(cfg, eng, amap, trans, h.vus, img)
	h.proto.Record = true
	return h
}

// access performs a single-lane tx access and records it in the log.
func (h *wtmHarness) access(t *testing.T, w *tm.WarpTx, isWrite bool, addr, val uint64) tm.AccessResult {
	t.Helper()
	var res []tm.AccessResult
	h.eng.Schedule(0, func() {
		h.proto.Access(w, isWrite, []tm.LaneAccess{{Lane: 0, Addr: addr, Value: val}},
			func(r []tm.AccessResult) { res = r })
	})
	h.eng.Run(0)
	if len(res) != 1 {
		t.Fatal("access did not complete")
	}
	if !res[0].Abort {
		if isWrite {
			w.Log.RecordWrite(0, addr, val)
		} else {
			w.Log.RecordRead(0, addr, res[0].Value)
		}
	}
	return res[0]
}

// commit commits lane 0 and returns the outcome.
func (h *wtmHarness) commit(t *testing.T, w *tm.WarpTx) tm.CommitOutcome {
	t.Helper()
	var out *tm.CommitOutcome
	h.eng.Schedule(0, func() {
		h.proto.Commit(w, isa.LaneMask(0).Set(0), 0, func(o tm.CommitOutcome) { out = &o })
	})
	h.eng.Run(0)
	if out == nil {
		t.Fatal("commit did not resume")
	}
	return *out
}

func (h *wtmHarness) newTx(gwid int) *tm.WarpTx {
	w := &tm.WarpTx{GWID: gwid, Core: 0, Log: tm.NewTxLog(), StartCycle: h.eng.Now()}
	h.proto.Begin(w)
	return w
}

func TestWTMReadWriteCommit(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 5)
	w := h.newTx(1)
	r := h.access(t, w, false, 0x100, 0)
	if r.Abort || r.Value != 5 {
		t.Fatalf("load = %+v", r)
	}
	h.access(t, w, true, 0x100, 9)
	if h.img.Read(0x100) != 5 {
		t.Fatal("lazy versioning violated: store visible before commit")
	}
	out := h.commit(t, w)
	if out.FailedLanes != 0 {
		t.Fatalf("commit failed: %+v", out)
	}
	if h.img.Read(0x100) != 9 {
		t.Fatal("commit did not write data")
	}
}

func TestWTMValidationFailureAborts(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 5)
	// Tx A reads 0x100, then tx B writes and commits it; A's validation
	// must fail.
	a := h.newTx(1)
	h.access(t, a, false, 0x100, 0)

	b := h.newTx(2)
	h.access(t, b, true, 0x100, 7)
	if out := h.commit(t, b); out.FailedLanes != 0 {
		t.Fatal("b should commit")
	}

	a2 := h.access(t, a, true, 0x108, 1) // make A a writer so it validates
	if a2.Abort {
		t.Fatal("store should not abort in LL")
	}
	out := h.commit(t, a)
	if !out.FailedLanes.Bit(0) {
		t.Fatal("stale read passed value validation")
	}
	if h.img.Read(0x108) != 0 {
		t.Fatal("failed lane's write leaked")
	}
}

func TestWTMSilentValueValidationABA(t *testing.T) {
	// Value-based validation admits ABA: if memory returns to the logged
	// value, validation passes. This is faithful to KiloTM/WarpTM.
	h := newWTMHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 5)
	a := h.newTx(1)
	h.access(t, a, false, 0x100, 0)

	b := h.newTx(2)
	h.access(t, b, true, 0x100, 7)
	h.commit(t, b)
	c := h.newTx(3)
	h.access(t, c, true, 0x100, 5) // restore original value
	h.commit(t, c)

	h.access(t, a, true, 0x140, 1)
	out := h.commit(t, a)
	if out.FailedLanes != 0 {
		t.Fatal("ABA history failed validation (value-based validation should accept it)")
	}
}

func TestWTMTCDSilentCommit(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 5)
	// Warm up time so StartCycle > 0.
	h.eng.Schedule(100, func() {})
	h.eng.Run(0)
	w := h.newTx(1)
	h.access(t, w, false, 0x100, 0)
	upBefore := h.trans.up
	out := h.commit(t, w)
	if out.FailedLanes != 0 {
		t.Fatal("read-only commit failed")
	}
	if h.proto.SilentCommits != 1 {
		t.Fatalf("silent commits = %d, want 1", h.proto.SilentCommits)
	}
	if h.trans.up != upBefore {
		t.Fatal("silent commit generated validation traffic")
	}
}

func TestWTMTCDUnsafeAfterRecentWrite(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 2)
	// Writer commits 0x100 first.
	b := h.newTx(2)
	h.access(t, b, true, 0x100, 7)
	h.commit(t, b)
	// Reader starts *before* querying: its StartCycle predates... we create
	// it after, so last write < start; instead create reader before commit.
	c := h.newTx(3)
	// A second writer commits while c is running.
	d := h.newTx(4)
	h.access(t, d, true, 0x100, 9)
	h.commit(t, d)
	// Now c reads 0x100: the line was written after c started.
	h.access(t, c, false, 0x100, 0)
	h.commit(t, c)
	if h.proto.SilentCommits != 0 {
		t.Fatal("TCD allowed a silent commit of a recently written line")
	}
}

func TestWTMCommitIDOrderingAcrossPartitions(t *testing.T) {
	// Two txs writing to different partitions must still commit in id order
	// at every VU (empty messages keep the sequence).
	h := newWTMHarness(DefaultConfig(), 3)
	a := h.newTx(1)
	h.access(t, a, true, 0x100, 1)
	b := h.newTx(2)
	h.access(t, b, true, 0x2000, 2)
	var aDone, bDone bool
	h.eng.Schedule(0, func() {
		h.proto.Commit(a, isa.LaneMask(0).Set(0), 0, func(tm.CommitOutcome) { aDone = true })
	})
	h.eng.Schedule(1, func() {
		h.proto.Commit(b, isa.LaneMask(0).Set(0), 0, func(tm.CommitOutcome) { bDone = true })
	})
	h.eng.Run(0)
	if !aDone || !bDone {
		t.Fatal("commits did not complete (id sequence stuck?)")
	}
	for _, vu := range h.vus {
		if vu.InFlight() != 0 {
			t.Fatal("in-flight txs leaked")
		}
	}
}

func TestWTMHazardSerializesOverlap(t *testing.T) {
	// B validates a read of a line A is committing: B must see A's value
	// (hazard forces B's validation after A's apply), so B's logged read of
	// the old value fails.
	h := newWTMHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 1)
	a := h.newTx(1)
	h.access(t, a, false, 0x100, 0)
	h.access(t, a, true, 0x100, 2)
	bTx := h.newTx(2)
	h.access(t, bTx, false, 0x100, 0) // reads 1
	h.access(t, bTx, true, 0x140, 3)
	var aOut, bOut *tm.CommitOutcome
	h.eng.Schedule(0, func() {
		h.proto.Commit(a, isa.LaneMask(0).Set(0), 0, func(o tm.CommitOutcome) { aOut = &o })
	})
	h.eng.Schedule(0, func() {
		h.proto.Commit(bTx, isa.LaneMask(0).Set(0), 0, func(o tm.CommitOutcome) { bOut = &o })
	})
	h.eng.Run(0)
	if aOut == nil || bOut == nil {
		t.Fatal("commits incomplete")
	}
	if aOut.FailedLanes != 0 {
		t.Fatal("a should commit")
	}
	if !bOut.FailedLanes.Bit(0) {
		t.Fatal("b read a value that a overwrote; hazard-ordered validation must fail it")
	}
	if h.img.Read(0x140) != 0 {
		t.Fatal("b's write leaked")
	}
}

func TestWTMELEagerAbortAtAccess(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Eager = true
	h := newWTMHarness(cfg, 2)
	h.img.Write(0x100, 1)
	a := h.newTx(1)
	h.access(t, a, false, 0x100, 0) // logs value 1

	b := h.newTx(2)
	h.access(t, b, true, 0x100, 9)
	h.commit(t, b)

	// A's next access detects the conflict immediately (no commit needed).
	r := h.access(t, a, false, 0x140, 0)
	if !r.Abort || r.Cause != tm.CauseValidation {
		t.Fatalf("EL access = %+v, want early validation abort", r)
	}
	if h.proto.EarlyAborts == 0 {
		t.Fatal("early abort not counted")
	}
}

func TestWTMSerializabilityUnderContention(t *testing.T) {
	h := newWTMHarness(DefaultConfig(), 3)
	accounts := make([]uint64, 6)
	for i := range accounts {
		accounts[i] = uint64(0x1000 + i*8)
		h.img.Write(accounts[i], 100)
	}
	initial := h.img.Snapshot()
	rng := sim.NewRNG(17)
	for round := 0; round < 40; round++ {
		gwid := 1 + rng.Intn(4)
		src := accounts[rng.Intn(len(accounts))]
		dst := accounts[rng.Intn(len(accounts))]
		if src == dst {
			continue
		}
		for attempt := 0; attempt < 25; attempt++ {
			w := h.newTx(gwid)
			sv := h.access(t, w, false, src, 0)
			dv := h.access(t, w, false, dst, 0)
			if sv.Abort || dv.Abort {
				continue
			}
			h.access(t, w, true, src, sv.Value-1)
			h.access(t, w, true, dst, dv.Value+1)
			out := h.commit(t, w)
			if out.FailedLanes == 0 {
				break
			}
		}
	}
	var total uint64
	for _, a := range accounts {
		total += h.img.Read(a)
	}
	if total != 600 {
		t.Fatalf("balance = %d, want 600", total)
	}
	if err := tm.CheckSerializable(initial, h.img, h.proto.Committed); err != nil {
		t.Fatalf("serializability violated: %v", err)
	}
}

func TestTCDNeverUnderestimates(t *testing.T) {
	rng := sim.NewRNG(5)
	tcd := NewTCD(4, 64, rng)
	last := map[uint64]sim.Cycle{}
	for i := 0; i < 2000; i++ {
		line := uint64(rng.Intn(300))
		when := sim.Cycle(i)
		tcd.RecordWrite(line, when)
		last[line] = when
	}
	for line, want := range last {
		if got := tcd.LastWrite(line); got < want {
			t.Fatalf("line %d last write underestimated: %d < %d", line, got, want)
		}
	}
	if tcd.LastWrite(9999) > 1999 {
		t.Fatal("unwritten line reported later than any write")
	}
}
