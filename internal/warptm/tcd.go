package warptm

import "getm/internal/sim"

// TCD is the temporal-conflict-detection filter at one LLC partition: a
// recency bloom filter recording the physical cycle of the last store to
// each line. Hash collisions fold values with max, and lookups take the
// minimum across ways, so the reported time is never earlier than the true
// last write — a read-only transaction silently commits only when it is
// certainly safe.
type TCD struct {
	seeds []uint64
	mask  uint64
	ways  [][]sim.Cycle
}

// NewTCD builds a filter with the given total entries split across ways.
func NewTCD(ways, totalEntries int, rng *sim.RNG) *TCD {
	if ways <= 0 {
		panic("warptm: TCD needs at least one way")
	}
	perWay := 1
	for perWay < totalEntries/ways {
		perWay <<= 1
	}
	t := &TCD{seeds: make([]uint64, ways), mask: uint64(perWay - 1)}
	for i := range t.seeds {
		t.seeds[i] = rng.Uint64() | 1
	}
	t.ways = make([][]sim.Cycle, ways)
	for i := range t.ways {
		t.ways[i] = make([]sim.Cycle, perWay)
	}
	return t
}

// RecordWrite notes a store to line at the given cycle.
func (t *TCD) RecordWrite(line uint64, when sim.Cycle) {
	for w := range t.ways {
		s := sim.Mix64(line*t.seeds[w]) & t.mask
		if when > t.ways[w][s] {
			t.ways[w][s] = when
		}
	}
}

// LastWrite returns the (over)estimated cycle of the last store to line.
func (t *TCD) LastWrite(line uint64) sim.Cycle {
	best := sim.Cycle(^uint64(0))
	for w := range t.ways {
		s := sim.Mix64(line*t.seeds[w]) & t.mask
		if t.ways[w][s] < best {
			best = t.ways[w][s]
		}
	}
	return best
}
