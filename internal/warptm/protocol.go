package warptm

import (
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/trace"
)

// Protocol is WarpTM's SIMT-core-side driver (and, with cfg.Eager, the
// idealized WarpTM-EL variant).
type Protocol struct {
	cfg   Config
	eng   *sim.Engine
	amap  mem.AddressMap
	trans tm.Transport
	vus   []*VU
	img   *mem.Image

	nextCID uint64
	// decided is the next commit id to retire. Commit decisions retire
	// strictly in commit-id order (KiloTM's commit ids ARE the global
	// serialization order): a transaction whose validations have all
	// returned still waits for every earlier id to decide before its writes
	// apply. This makes id order a valid serialization for the replay
	// checker and gives TCD's read-only commits a sound horizon.
	decided uint64
	// waiting holds finished-validation transactions awaiting their in-order
	// decision slot.
	waiting map[uint64]func()
	// tcdUnsafe marks lanes whose reads touched recently written lines and
	// therefore cannot silently commit. Indexed by gwid (grown on Begin).
	tcdUnsafe []isa.LaneMask
	// startHorizon records p.decided when each warp's attempt began; silent
	// read-only commits serialize there (every decision before the horizon
	// is visible to them, none after — later decisions on their read set
	// would have tripped the TCD check). Indexed by gwid.
	startHorizon []uint64

	// Hot-path freelists (single goroutine per machine — no locking): access
	// states, per-word load requests, and commit-log entry backings. Pooled
	// objects carry prebuilt closures so steady-state accesses allocate
	// nothing.
	accPool   *wtmAccess
	wordPool  *wordReq
	entryPool [][]tm.LogEntry
	// Per-commit counting-sort scratch (len = #partitions), consumed
	// synchronously inside Commit.
	readsBy    [][]tm.LogEntry
	writesBy   [][]tm.LogEntry
	readCount  []int
	writeCount []int

	// Committed records transactions for the replay checker.
	Committed []tm.CommittedTx
	Record    bool
	seq       uint64

	SilentCommits uint64
	EarlyAborts   uint64 // EL: access-time validation failures

	rec *trace.Recorder
}

// SetTrace attaches the machine-wide event recorder (nil disables).
func (p *Protocol) SetTrace(rec *trace.Recorder) { p.rec = rec }

var _ tm.Protocol = (*Protocol)(nil)

// NewProtocol wires WarpTM over one VU per partition.
func NewProtocol(cfg Config, eng *sim.Engine, amap mem.AddressMap, trans tm.Transport, vus []*VU, img *mem.Image) *Protocol {
	return &Protocol{
		cfg:        cfg,
		eng:        eng,
		amap:       amap,
		trans:      trans,
		vus:        vus,
		img:        img,
		waiting:    make(map[uint64]func()),
		readsBy:    make([][]tm.LogEntry, len(vus)),
		writesBy:   make([][]tm.LogEntry, len(vus)),
		readCount:  make([]int, len(vus)),
		writeCount: make([]int, len(vus)),
	}
}

// Name implements tm.Protocol.
func (p *Protocol) Name() string {
	if p.cfg.Eager {
		return "warptm-el"
	}
	return "warptm"
}

// EagerIntraWarp: WarpTM resolves intra-warp conflicts at commit time.
// The EL variant detects them at access time like GETM would.
func (p *Protocol) EagerIntraWarp() bool { return p.cfg.Eager }

// Begin implements tm.Protocol.
func (p *Protocol) Begin(w *tm.WarpTx) {
	for w.GWID >= len(p.tcdUnsafe) {
		p.tcdUnsafe = append(p.tcdUnsafe, 0)
		p.startHorizon = append(p.startHorizon, 0)
	}
	p.tcdUnsafe[w.GWID] = 0
	p.startHorizon[w.GWID] = p.decided
}

// revalidate is the EL variant's idealized zero-latency eager check: the
// lane's logged reads are compared against current memory; a mismatch means
// the transaction is doomed and aborts immediately. Scans the shared read
// log directly (allocation-free) rather than materializing LaneEntries.
func (p *Protocol) revalidate(w *tm.WarpTx, lane int) bool {
	for _, e := range w.Log.Reads {
		if e.Lane == lane && p.img.Read(e.Addr) != e.Value {
			return false
		}
	}
	return true
}

// wtmAccess tracks one in-flight warp access: the caller's lanes/done plus
// the result buffer. Pooled; released when the access completes.
type wtmAccess struct {
	p         *Protocol
	w         *tm.WarpTx
	lanes     []tm.LaneAccess
	results   []tm.AccessResult
	remaining int // unique words still outstanding (load path)
	done      func([]tm.AccessResult)
	finishFn  func() // prebuilt: done(results) + release (write path)
	next      *wtmAccess
}

// wordReq is one coalesced load word's round trip: up crossbar, partition
// data read + TCD lookup, down crossbar, then per-lane resolution. All three
// callbacks are built once per pooled object.
type wordReq struct {
	p         *Protocol
	st        *wtmAccess
	addr      uint64
	part      int
	val       uint64
	lastWrite sim.Cycle
	submitFn  func()       // up-crossbar delivery: start the partition read
	readCb    func(uint64) // partition read completion
	replyCb   func()       // down-crossbar delivery: resolve sharing lanes
	next      *wordReq
}

func (p *Protocol) getAccess() *wtmAccess {
	st := p.accPool
	if st == nil {
		st = &wtmAccess{p: p, results: make([]tm.AccessResult, 0, isa.WarpWidth)}
		st.finishFn = func() {
			st.done(st.results)
			st.release()
		}
	} else {
		p.accPool = st.next
	}
	return st
}

func (st *wtmAccess) release() {
	st.w = nil
	st.lanes = nil
	st.done = nil
	st.next = st.p.accPool
	st.p.accPool = st
}

// getEntryBuf pops a pooled commit-log backing of length n.
func (p *Protocol) getEntryBuf(n int) []tm.LogEntry {
	var b []tm.LogEntry
	if k := len(p.entryPool); k > 0 {
		b = p.entryPool[k-1]
		p.entryPool = p.entryPool[:k-1]
	}
	if cap(b) < n {
		return make([]tm.LogEntry, n)
	}
	return b[:n]
}

func (p *Protocol) putEntryBuf(b []tm.LogEntry) {
	p.entryPool = append(p.entryPool, b)
}

func (p *Protocol) getWordReq() *wordReq {
	wr := p.wordPool
	if wr == nil {
		wr = &wordReq{p: p}
		wr.submitFn = func() {
			// Data read through the partition pipeline + TCD lookup.
			wr.p.vus[wr.part].part.Read(wr.addr, wr.readCb)
		}
		wr.readCb = func(val uint64) {
			vu := wr.p.vus[wr.part]
			wr.val = val
			wr.lastWrite = vu.tcd.LastWrite(wr.addr / uint64(mem.WordBytes))
			wr.p.trans.ToCore(wr.part, wr.st.w.Core, tm.ReplyBytes+tm.TSBytes, wr.replyCb)
		}
		wr.replyCb = func() { wr.deliver() }
	} else {
		p.wordPool = wr.next
	}
	return wr
}

// deliver resolves every lane sharing this word, recycles the request, and
// completes the access when the last word lands.
func (wr *wordReq) deliver() {
	st, p := wr.st, wr.p
	unsafe := wr.lastWrite >= st.w.StartCycle
	for i, la := range st.lanes {
		if la.Addr != wr.addr {
			continue
		}
		st.results[i].Value = wr.val
		if unsafe {
			p.tcdUnsafe[st.w.GWID] = p.tcdUnsafe[st.w.GWID].Set(la.Lane)
		}
		if p.cfg.Eager {
			// Idealized eager check includes the value just read (the log
			// entry is recorded by the caller after this returns, so check
			// it directly).
			if !p.revalidate(st.w, la.Lane) {
				p.EarlyAborts++
				st.results[i].Abort = true
				st.results[i].Cause = tm.CauseValidation
			}
		}
	}
	wr.st = nil
	wr.next = p.wordPool
	p.wordPool = wr
	st.remaining--
	if st.remaining == 0 {
		st.done(st.results)
		st.release()
	}
}

// Access implements tm.Protocol. Loads fetch data from the LLC and query the
// TCD; stores are buffered locally in the redo log and complete immediately
// (lazy versioning).
func (p *Protocol) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	if len(lanes) == 0 {
		done(nil)
		return
	}
	st := p.getAccess()
	st.w, st.lanes, st.done = w, lanes, done
	if cap(st.results) < len(lanes) {
		st.results = make([]tm.AccessResult, len(lanes))
	} else {
		st.results = st.results[:len(lanes)]
	}

	if isWrite {
		// Local log write: one cycle, no interconnect traffic.
		for i, la := range lanes {
			st.results[i] = tm.AccessResult{Lane: la.Lane}
			if p.cfg.Eager && !p.revalidate(w, la.Lane) {
				p.EarlyAborts++
				st.results[i].Abort = true
				st.results[i].Cause = tm.CauseValidation
			}
		}
		p.eng.Schedule(1, st.finishFn)
		return
	}

	// Coalesce loads: lanes reading the same word share one request, issued
	// at the word's first touch (deterministic order; linear dup scan over at
	// most WarpWidth lanes). Crossbar delivery is never synchronous, so
	// remaining reaches its final value before any reply lands.
	st.remaining = 0
	for i, la := range lanes {
		st.results[i] = tm.AccessResult{Lane: la.Lane}
		dup := false
		for j := 0; j < i; j++ {
			if lanes[j].Addr == la.Addr {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		st.remaining++
		wr := p.getWordReq()
		wr.st = st
		wr.addr = la.Addr
		wr.part = p.amap.Partition(la.Addr)
		p.trans.ToPartition(w.Core, wr.part, tm.ReqBytes, wr.submitFn)
	}
}

// Commit implements tm.Protocol: the two-round-trip value-based validation
// and commit sequence of Fig 2 (top), with TCD silent commits for read-only
// lanes.
func (p *Protocol) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	unsafe := p.tcdUnsafe[w.GWID]

	// Partition lanes into silent (read-only, TCD-safe) and validating.
	var silent, validating isa.LaneMask
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !commitMask.Bit(lane) {
			continue
		}
		if w.Log.LaneWriteCount(lane) == 0 && !unsafe.Bit(lane) {
			silent = silent.Set(lane)
		} else {
			validating = validating.Set(lane)
		}
	}

	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !silent.Bit(lane) {
				continue
			}
			reads, _ := w.Log.LaneEntries(lane)
			p.seq++
			// Read-only TCD commits serialize at transaction start: strictly
			// after every commit id decided before the attempt began (those
			// have keys 2*(cid+1) <= 2*horizon) and strictly before every
			// later decision (keys >= 2*horizon+2).
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID: w.GWID, Lane: lane,
				SerialTS: 2*p.startHorizon[w.GWID] + 1, Seq: p.seq, Reads: reads,
			})
		}
	}
	p.SilentCommits += uint64(silent.Count())
	if p.rec != nil && silent != 0 {
		p.rec.Emit(trace.SrcWarpTM, trace.KWTMSilent, int32(w.Core),
			uint64(w.GWID), uint64(silent), 0, 0)
	}

	if validating == 0 {
		// Nothing needs the commit units; the warp continues immediately.
		p.eng.Schedule(1, func() { resume(tm.CommitOutcome{}) })
		return
	}

	cid := p.nextCID
	p.nextCID++

	// Build per-partition entry lists for the validating lanes: a stable
	// counting sort into one pooled flat backing (entry order within each
	// partition matches log order, as the old per-partition appends did).
	// The backing is shared by every partition's ValidationMsg and released
	// when the commit resumes — by then each VU has either retired the empty
	// message or applied and dropped its txState.
	nParts := len(p.vus)
	need := 0
	for part := 0; part < nParts; part++ {
		p.readCount[part] = 0
		p.writeCount[part] = 0
	}
	for _, e := range w.Log.Reads {
		if validating.Bit(e.Lane) {
			p.readCount[p.amap.Partition(e.Addr)]++
			need++
		}
	}
	for _, e := range w.Log.Writes {
		if validating.Bit(e.Lane) {
			p.writeCount[p.amap.Partition(e.Addr)]++
			need++
		}
	}
	backing := p.getEntryBuf(need)
	// Carve zero-length exact-capacity sub-slices out of the backing, then
	// append into them: no reallocation, stable order.
	pos := 0
	for part := 0; part < nParts; part++ {
		p.readsBy[part] = backing[pos : pos : pos+p.readCount[part]]
		pos += p.readCount[part]
		p.writesBy[part] = backing[pos : pos : pos+p.writeCount[part]]
		pos += p.writeCount[part]
	}
	for _, e := range w.Log.Reads {
		if validating.Bit(e.Lane) {
			part := p.amap.Partition(e.Addr)
			p.readsBy[part] = append(p.readsBy[part], e)
		}
	}
	for _, e := range w.Log.Writes {
		if validating.Bit(e.Lane) {
			part := p.amap.Partition(e.Addr)
			p.writesBy[part] = append(p.writesBy[part], e)
		}
	}
	innerResume := resume
	resume = func(out tm.CommitOutcome) {
		p.putEntryBuf(backing)
		innerResume(out)
	}
	if p.rec != nil {
		p.rec.Emit(trace.SrcWarpTM, trace.KWTMValidate, int32(w.Core),
			cid, uint64(validating), uint64(need), 0)
	}

	repliesLeft := nParts
	var failed isa.LaneMask
	var involved []int

	// Round trip 1: validation at every partition. Partitions holding none
	// of the footprint receive a header-only message that just keeps the
	// commit-id sequence in lockstep and retires immediately.
	for part := 0; part < nParts; part++ {
		part := part
		msg := &ValidationMsg{
			CID:    cid,
			Core:   w.Core,
			Reads:  p.readsBy[part],
			Writes: p.writesBy[part],
		}
		if len(msg.Reads)+len(msg.Writes) > 0 {
			involved = append(involved, part)
		}
		bytes := tm.HeaderBytes + len(msg.Reads)*tm.ValidateEntryBytes + len(msg.Writes)*tm.CommitEntryBytes
		msg.Reply = func(f isa.LaneMask) {
			p.trans.ToCore(part, w.Core, tm.HeaderBytes+4, func() {
				failed |= f
				repliesLeft--
				if repliesLeft == 0 {
					p.finishCommit(w, cid, validating, failed, involved, resume)
				}
			})
		}
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, bytes, func() { vu.Submit(msg) })
	}
}

// finishCommit runs the second round trip: confirmation to the commit units
// and acknowledgement collection; only then does the warp resume.
//
// The commit's memory effect is applied here, atomically at the decision
// instant (decisions fire in cid order because each VU serializes
// validations): this is the transaction's serialization point. The confirm
// messages and commit units then model the write bandwidth, hazard release
// and acks. Making the data visible one confirmation-latency early is the
// standard simulator simplification; the hazard window keeps overlapping
// validations ordered either way.
func (p *Protocol) finishCommit(w *tm.WarpTx, cid uint64, validating, failed isa.LaneMask, involved []int, resume func(tm.CommitOutcome)) {
	if p.cfg.LocalArb {
		// Local arbitration: decide immediately instead of waiting for the
		// in-order retirement slot. Conflicting commits are still ordered —
		// a validation whose footprint overlaps an unconfirmed write set
		// stalls in the VU hazard window until that commit's confirmation —
		// so commit-id order remains a valid serialization; p.decided becomes
		// a count of decisions (an approximate horizon for silent commits).
		p.decided++
		p.decide(w, cid, validating, failed, involved, resume)
		return
	}
	p.waiting[cid] = func() { p.decide(w, cid, validating, failed, involved, resume) }
	for {
		fn, ok := p.waiting[p.decided]
		if !ok {
			return
		}
		delete(p.waiting, p.decided)
		p.decided++
		fn()
	}
}

// decide retires one commit in id order: the atomic apply, checker record,
// and the confirmation round trip to the involved commit units.
func (p *Protocol) decide(w *tm.WarpTx, cid uint64, validating, failed isa.LaneMask, involved []int, resume func(tm.CommitOutcome)) {
	committing := validating &^ failed
	if p.rec != nil {
		p.rec.Emit(trace.SrcWarpTM, trace.KWTMDecide, int32(w.Core),
			cid, uint64(failed), uint64(committing), 0)
	}

	// Atomic apply: data and TCD last-write times for all partitions.
	now := p.eng.Now()
	for _, e := range w.Log.Writes {
		if !committing.Bit(e.Lane) {
			continue
		}
		part := p.amap.Partition(e.Addr)
		p.vus[part].part.WriteNow(e.Addr, e.Value)
		p.vus[part].tcd.RecordWrite(e.Addr/uint64(mem.WordBytes), now)
	}

	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !committing.Bit(lane) {
				continue
			}
			reads, writes := w.Log.LaneEntries(lane)
			p.seq++
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID: w.GWID, Lane: lane,
				SerialTS: 2 * (cid + 1), Seq: p.seq, Reads: reads, Writes: writes,
			})
		}
	}

	// Round trip 2: confirmation and acks, only for the involved partitions.
	acksLeft := len(involved)
	for _, part := range involved {
		part := part
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, tm.HeaderBytes+4, func() {
			vu.Confirm(cid, committing, func() {
				p.trans.ToCore(part, w.Core, tm.HeaderBytes, func() {
					acksLeft--
					if acksLeft == 0 {
						resume(tm.CommitOutcome{FailedLanes: failed, Cause: tm.CauseValidation})
					}
				})
			})
		})
	}
}
