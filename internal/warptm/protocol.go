package warptm

import (
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// Protocol is WarpTM's SIMT-core-side driver (and, with cfg.Eager, the
// idealized WarpTM-EL variant).
type Protocol struct {
	cfg   Config
	eng   *sim.Engine
	amap  mem.AddressMap
	trans tm.Transport
	vus   []*VU
	img   *mem.Image

	nextCID uint64
	// decided is the next commit id to retire. Commit decisions retire
	// strictly in commit-id order (KiloTM's commit ids ARE the global
	// serialization order): a transaction whose validations have all
	// returned still waits for every earlier id to decide before its writes
	// apply. This makes id order a valid serialization for the replay
	// checker and gives TCD's read-only commits a sound horizon.
	decided uint64
	// waiting holds finished-validation transactions awaiting their in-order
	// decision slot.
	waiting map[uint64]func()
	// tcdUnsafe marks lanes whose reads touched recently written lines and
	// therefore cannot silently commit.
	tcdUnsafe map[int]isa.LaneMask
	// startHorizon records p.decided when each warp's attempt began; silent
	// read-only commits serialize there (every decision before the horizon
	// is visible to them, none after — later decisions on their read set
	// would have tripped the TCD check).
	startHorizon map[int]uint64

	// Committed records transactions for the replay checker.
	Committed []tm.CommittedTx
	Record    bool
	seq       uint64

	SilentCommits uint64
	EarlyAborts   uint64 // EL: access-time validation failures
}

var _ tm.Protocol = (*Protocol)(nil)

// NewProtocol wires WarpTM over one VU per partition.
func NewProtocol(cfg Config, eng *sim.Engine, amap mem.AddressMap, trans tm.Transport, vus []*VU, img *mem.Image) *Protocol {
	return &Protocol{
		cfg:          cfg,
		eng:          eng,
		amap:         amap,
		trans:        trans,
		vus:          vus,
		img:          img,
		tcdUnsafe:    make(map[int]isa.LaneMask),
		startHorizon: make(map[int]uint64),
		waiting:      make(map[uint64]func()),
	}
}

// Name implements tm.Protocol.
func (p *Protocol) Name() string {
	if p.cfg.Eager {
		return "warptm-el"
	}
	return "warptm"
}

// EagerIntraWarp: WarpTM resolves intra-warp conflicts at commit time.
// The EL variant detects them at access time like GETM would.
func (p *Protocol) EagerIntraWarp() bool { return p.cfg.Eager }

// Begin implements tm.Protocol.
func (p *Protocol) Begin(w *tm.WarpTx) {
	p.tcdUnsafe[w.GWID] = 0
	p.startHorizon[w.GWID] = p.decided
}

// revalidate is the EL variant's idealized zero-latency eager check: the
// lane's logged reads are compared against current memory; a mismatch means
// the transaction is doomed and aborts immediately.
func (p *Protocol) revalidate(w *tm.WarpTx, lane int) bool {
	reads, _ := w.Log.LaneEntries(lane)
	for _, e := range reads {
		if p.img.Read(e.Addr) != e.Value {
			return false
		}
	}
	return true
}

// Access implements tm.Protocol. Loads fetch data from the LLC and query the
// TCD; stores are buffered locally in the redo log and complete immediately
// (lazy versioning).
func (p *Protocol) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	results := make([]tm.AccessResult, len(lanes))
	if len(lanes) == 0 {
		done(results)
		return
	}

	if isWrite {
		// Local log write: one cycle, no interconnect traffic.
		for i, la := range lanes {
			results[i] = tm.AccessResult{Lane: la.Lane}
			if p.cfg.Eager && !p.revalidate(w, la.Lane) {
				p.EarlyAborts++
				results[i].Abort = true
				results[i].Cause = tm.CauseValidation
			}
		}
		p.eng.Schedule(1, func() { done(results) })
		return
	}

	remaining := 0
	type share struct{ lanes []int }
	byWord := map[uint64]*share{}
	var order []uint64 // deterministic issue order (first touch)
	for i, la := range lanes {
		results[i] = tm.AccessResult{Lane: la.Lane}
		s, ok := byWord[la.Addr]
		if !ok {
			s = &share{}
			byWord[la.Addr] = s
			order = append(order, la.Addr)
			remaining++
		}
		s.lanes = append(s.lanes, i)
	}

	for _, addr := range order {
		addr, s := addr, byWord[addr]
		part := p.amap.Partition(addr)
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, tm.ReqBytes, func() {
			// Data read through the partition pipeline + TCD lookup.
			vu.part.Read(addr, func(val uint64) {
				lastWrite := vu.tcd.LastWrite(addr / uint64(mem.WordBytes))
				p.trans.ToCore(part, w.Core, tm.ReplyBytes+tm.TSBytes, func() {
					unsafe := lastWrite >= w.StartCycle
					for _, i := range s.lanes {
						results[i].Value = val
						if unsafe {
							p.tcdUnsafe[w.GWID] = p.tcdUnsafe[w.GWID].Set(results[i].Lane)
						}
						if p.cfg.Eager {
							// Idealized eager check includes the value just
							// read (the log entry is recorded by the caller
							// after this returns, so check it directly).
							if !p.revalidate(w, results[i].Lane) {
								p.EarlyAborts++
								results[i].Abort = true
								results[i].Cause = tm.CauseValidation
							}
						}
					}
					remaining--
					if remaining == 0 {
						done(results)
					}
				})
			})
		})
	}
}

// Commit implements tm.Protocol: the two-round-trip value-based validation
// and commit sequence of Fig 2 (top), with TCD silent commits for read-only
// lanes.
func (p *Protocol) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	unsafe := p.tcdUnsafe[w.GWID]

	// Partition lanes into silent (read-only, TCD-safe) and validating.
	var silent, validating isa.LaneMask
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !commitMask.Bit(lane) {
			continue
		}
		_, writes := w.Log.LaneEntries(lane)
		if len(writes) == 0 && !unsafe.Bit(lane) {
			silent = silent.Set(lane)
		} else {
			validating = validating.Set(lane)
		}
	}

	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !silent.Bit(lane) {
				continue
			}
			reads, _ := w.Log.LaneEntries(lane)
			p.seq++
			// Read-only TCD commits serialize at transaction start: strictly
			// after every commit id decided before the attempt began (those
			// have keys 2*(cid+1) <= 2*horizon) and strictly before every
			// later decision (keys >= 2*horizon+2).
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID: w.GWID, Lane: lane,
				SerialTS: 2*p.startHorizon[w.GWID] + 1, Seq: p.seq, Reads: reads,
			})
		}
	}
	p.SilentCommits += uint64(silent.Count())

	if validating == 0 {
		// Nothing needs the commit units; the warp continues immediately.
		p.eng.Schedule(1, func() { resume(tm.CommitOutcome{}) })
		return
	}

	cid := p.nextCID
	p.nextCID++

	// Build per-partition entry lists for the validating lanes.
	readsBy := make(map[int][]tm.LogEntry)
	writesBy := make(map[int][]tm.LogEntry)
	for _, e := range w.Log.Reads {
		if validating.Bit(e.Lane) {
			part := p.amap.Partition(e.Addr)
			readsBy[part] = append(readsBy[part], e)
		}
	}
	for _, e := range w.Log.Writes {
		if validating.Bit(e.Lane) {
			part := p.amap.Partition(e.Addr)
			writesBy[part] = append(writesBy[part], e)
		}
	}

	nParts := len(p.vus)
	repliesLeft := nParts
	var failed isa.LaneMask
	var involved []int

	// Round trip 1: validation at every partition. Partitions holding none
	// of the footprint receive a header-only message that just keeps the
	// commit-id sequence in lockstep and retires immediately.
	for part := 0; part < nParts; part++ {
		part := part
		msg := &ValidationMsg{
			CID:    cid,
			Core:   w.Core,
			Reads:  readsBy[part],
			Writes: writesBy[part],
		}
		if len(msg.Reads)+len(msg.Writes) > 0 {
			involved = append(involved, part)
		}
		bytes := tm.HeaderBytes + len(msg.Reads)*tm.ValidateEntryBytes + len(msg.Writes)*tm.CommitEntryBytes
		msg.Reply = func(f isa.LaneMask) {
			p.trans.ToCore(part, w.Core, tm.HeaderBytes+4, func() {
				failed |= f
				repliesLeft--
				if repliesLeft == 0 {
					p.finishCommit(w, cid, validating, failed, involved, resume)
				}
			})
		}
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, bytes, func() { vu.Submit(msg) })
	}
}

// finishCommit runs the second round trip: confirmation to the commit units
// and acknowledgement collection; only then does the warp resume.
//
// The commit's memory effect is applied here, atomically at the decision
// instant (decisions fire in cid order because each VU serializes
// validations): this is the transaction's serialization point. The confirm
// messages and commit units then model the write bandwidth, hazard release
// and acks. Making the data visible one confirmation-latency early is the
// standard simulator simplification; the hazard window keeps overlapping
// validations ordered either way.
func (p *Protocol) finishCommit(w *tm.WarpTx, cid uint64, validating, failed isa.LaneMask, involved []int, resume func(tm.CommitOutcome)) {
	p.waiting[cid] = func() { p.decide(w, cid, validating, failed, involved, resume) }
	for {
		fn, ok := p.waiting[p.decided]
		if !ok {
			return
		}
		delete(p.waiting, p.decided)
		p.decided++
		fn()
	}
}

// decide retires one commit in id order: the atomic apply, checker record,
// and the confirmation round trip to the involved commit units.
func (p *Protocol) decide(w *tm.WarpTx, cid uint64, validating, failed isa.LaneMask, involved []int, resume func(tm.CommitOutcome)) {
	committing := validating &^ failed

	// Atomic apply: data and TCD last-write times for all partitions.
	now := p.eng.Now()
	for _, e := range w.Log.Writes {
		if !committing.Bit(e.Lane) {
			continue
		}
		part := p.amap.Partition(e.Addr)
		p.vus[part].part.WriteNow(e.Addr, e.Value)
		p.vus[part].tcd.RecordWrite(e.Addr/uint64(mem.WordBytes), now)
	}

	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !committing.Bit(lane) {
				continue
			}
			reads, writes := w.Log.LaneEntries(lane)
			p.seq++
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID: w.GWID, Lane: lane,
				SerialTS: 2 * (cid + 1), Seq: p.seq, Reads: reads, Writes: writes,
			})
		}
	}

	// Round trip 2: confirmation and acks, only for the involved partitions.
	acksLeft := len(involved)
	for _, part := range involved {
		part := part
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, tm.HeaderBytes+4, func() {
			vu.Confirm(cid, committing, func() {
				p.trans.ToCore(part, w.Core, tm.HeaderBytes, func() {
					acksLeft--
					if acksLeft == 0 {
						resume(tm.CommitOutcome{FailedLanes: failed, Cause: tm.CauseValidation})
					}
				})
			})
		})
	}
}
