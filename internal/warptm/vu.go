package warptm

import (
	"fmt"

	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// ValidationMsg is one transaction's slice of read/write log entries sent to
// a partition's validation unit. Every global commit id is sent to every
// partition — empty messages keep the id sequence so the VUs stay in
// lockstep (as in KiloTM).
type ValidationMsg struct {
	CID    uint64
	Core   int
	Reads  []tm.LogEntry
	Writes []tm.LogEntry
	// Reply delivers the lanes whose reads failed value validation here.
	Reply func(failed isa.LaneMask)
}

type txState struct {
	msg       ValidationMsg
	validated bool
	confirm   *pendingConfirm
	writeSet  map[uint64]bool
}

type pendingConfirm struct {
	commitLanes isa.LaneMask
	done        func()
}

// VU is a WarpTM validation/commit unit at one LLC partition. Transactions
// validate in global commit-id order; a transaction whose footprint does not
// overlap any validated-but-unconfirmed write set may start validating while
// its predecessors await confirmation (KiloTM-style hazard pipelining).
type VU struct {
	cfg  Config
	eng  *sim.Engine
	part *mem.Partition
	tcd  *TCD

	nextID   uint64
	pending  map[uint64]*ValidationMsg
	inFlight map[uint64]*txState
	busyTill sim.Cycle

	Validations    uint64
	FailedEntries  uint64
	CommitsApplied uint64
	HazardStalls   uint64
}

// NewVU builds a validation unit over one partition.
func NewVU(cfg Config, eng *sim.Engine, part *mem.Partition, rng *sim.RNG) *VU {
	return &VU{
		cfg:      cfg,
		eng:      eng,
		part:     part,
		tcd:      NewTCD(cfg.TCDWays, cfg.TCDEntries, rng),
		pending:  make(map[uint64]*ValidationMsg),
		inFlight: make(map[uint64]*txState),
	}
}

// TCD exposes the partition's temporal-conflict filter (loads query it).
func (v *VU) TCD() *TCD { return v.tcd }

// Submit delivers a validation message (on up-crossbar arrival).
func (v *VU) Submit(msg *ValidationMsg) {
	if msg.CID < v.nextID {
		panic(fmt.Sprintf("warptm: commit id %d arrived after id advanced to %d", msg.CID, v.nextID))
	}
	v.pending[msg.CID] = msg
	v.tryStart()
}

// hazard reports whether msg's footprint overlaps any unconfirmed write set.
func (v *VU) hazard(msg *ValidationMsg) bool {
	for _, st := range v.inFlight {
		for _, e := range msg.Reads {
			if st.writeSet[e.Addr] {
				return true
			}
		}
		for _, e := range msg.Writes {
			if st.writeSet[e.Addr] {
				return true
			}
		}
	}
	return false
}

// tryStart begins validating transactions at the head of the id sequence.
// Empty subcommits (this partition holds none of the transaction's
// footprint) retire immediately after bumping the sequence, as in KiloTM —
// they must keep the id order but need no validation, confirmation, or
// commit-unit slot.
func (v *VU) tryStart() {
	for {
		msg, ok := v.pending[v.nextID]
		if !ok {
			return
		}
		if len(msg.Reads) == 0 && len(msg.Writes) == 0 {
			delete(v.pending, v.nextID)
			v.nextID++
			reply := msg.Reply
			v.eng.Schedule(1, func() { reply(0) })
			continue
		}
		if len(v.inFlight) >= v.cfg.MaxInFlight {
			return
		}
		if v.hazard(msg) {
			v.HazardStalls++
			return
		}
		delete(v.pending, v.nextID)
		v.nextID++
		st := &txState{msg: *msg, writeSet: map[uint64]bool{}}
		for _, e := range msg.Writes {
			st.writeSet[e.Addr] = true
		}
		v.inFlight[msg.CID] = st
		v.validate(st)
	}
}

// validate charges the value-validation pipeline cost and compares logged
// read values with current LLC contents at completion.
func (v *VU) validate(st *txState) {
	v.Validations++
	start := v.eng.Now()
	if v.busyTill > start {
		start = v.busyTill
	}
	entries := len(st.msg.Reads)
	rate := v.cfg.ValidateEntriesPerCycle
	if rate <= 0 {
		rate = 1
	}
	cycles := sim.Cycle((entries + rate - 1) / rate)
	if cycles == 0 {
		cycles = 1
	}
	// One pipelined LLC access latency for the batch, plus per-entry cycles.
	var llc sim.Cycle
	if entries > 0 {
		llc = v.part.AccessDelay(st.msg.Reads[0].Addr)
	}
	v.busyTill = start + cycles
	v.eng.At(start+cycles+llc, func() {
		var failed isa.LaneMask
		for _, e := range st.msg.Reads {
			v.part.LLC.Access(e.Addr)
			if v.part.ReadNow(e.Addr) != e.Value {
				failed = failed.Set(e.Lane)
				v.FailedEntries++
			}
		}
		st.validated = true
		st.msg.Reply(failed)
		v.maybeApply(st)
	})
}

// Confirm delivers the core's commit/abort decision for cid: lanes in
// commitLanes commit their writes; everything else is dropped. done fires
// after the data is written (the ack).
func (v *VU) Confirm(cid uint64, commitLanes isa.LaneMask, done func()) {
	st, ok := v.inFlight[cid]
	if !ok {
		panic(fmt.Sprintf("warptm: confirm for unknown commit id %d", cid))
	}
	st.confirm = &pendingConfirm{commitLanes: commitLanes, done: done}
	v.maybeApply(st)
}

// maybeApply charges the commit unit's write bandwidth once both the
// validation and the confirmation have arrived, then releases the hazard
// window and acknowledges. (The data itself was applied atomically at the
// core's decision instant — see Protocol.finishCommit.)
func (v *VU) maybeApply(st *txState) {
	if !st.validated || st.confirm == nil {
		return
	}
	// Coalesce committed writes into 32-byte regions for bandwidth cost.
	regions := map[uint64]bool{}
	n := 0
	for _, e := range st.msg.Writes {
		if st.confirm.commitLanes.Bit(e.Lane) {
			regions[e.Addr/32] = true
			n++
		}
	}
	bytes := len(regions) * 32
	cycles := sim.Cycle((bytes + v.cfg.CommitBytesPerCycle - 1) / v.cfg.CommitBytesPerCycle)
	if cycles == 0 {
		cycles = 1
	}
	start := v.eng.Now()
	if v.busyTill > start {
		start = v.busyTill
	}
	v.busyTill = start + cycles
	v.eng.At(start+cycles, func() {
		for _, e := range st.msg.Writes {
			if st.confirm.commitLanes.Bit(e.Lane) {
				v.part.LLC.Access(e.Addr)
			}
		}
		if n > 0 {
			v.CommitsApplied++
		}
		done := st.confirm.done
		delete(v.inFlight, st.msg.CID)
		done()
		v.tryStart()
	})
}

// InFlight returns the number of unconfirmed transactions (tests).
func (v *VU) InFlight() int { return len(v.inFlight) }
