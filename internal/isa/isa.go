// Package isa defines the warp program representation executed by the SIMT
// core model.
//
// A workload kernel is compiled to one program per warp; all 32 lanes of a
// warp execute the same op list in lockstep, with per-lane operands
// (addresses, immediates) and per-op lane masks for divergent regions.
// Transactions are bracketed by TxBegin/TxCommit; the fine-grained-lock
// baselines use the CritSection op, which performs ordered atomicCAS
// acquire/release with SIMT retry semantics (the loop-on-flag idiom the
// paper's Fig 1 shows).
package isa

import "fmt"

// WarpWidth is the number of lanes (threads) per warp.
const WarpWidth = 32

// LaneMask is a bitmask over the lanes of one warp.
type LaneMask uint32

// FullMask has all lanes active.
const FullMask LaneMask = (1 << WarpWidth) - 1

// Bit reports whether lane i is set.
func (m LaneMask) Bit(i int) bool { return m&(1<<uint(i)) != 0 }

// Set returns m with lane i set.
func (m LaneMask) Set(i int) LaneMask { return m | (1 << uint(i)) }

// Clear returns m with lane i cleared.
func (m LaneMask) Clear(i int) LaneMask { return m &^ (1 << uint(i)) }

// Count returns the number of active lanes.
func (m LaneMask) Count() int {
	n := 0
	for v := uint32(m); v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Reg names one of the per-lane scalar registers.
type Reg uint8

// NumRegs is the per-lane register file size.
const NumRegs = 8

// Kind discriminates op types.
type Kind uint8

// Op kinds.
const (
	// Compute stalls the warp for Latency cycles (models ALU work).
	Compute Kind = iota
	// Load reads mem[Addr[lane]] into Dst.
	Load
	// Store writes Src (plus scalar Imm) to mem[Addr[lane]]; if UseImm is
	// set, the per-lane immediate is written instead of a register.
	Store
	// AddImm sets Dst = Src + Imm[lane] (scalar if Imm is nil -> ImmScalar).
	AddImm
	// MovImm sets Dst = Imm[lane].
	MovImm
	// TxBegin opens a transaction for the active lanes.
	TxBegin
	// TxCommit closes the innermost transaction.
	TxCommit
	// CritSection acquires the per-lane lock addresses in sorted order via
	// atomicCAS, executes Body for the lanes holding all their locks, then
	// releases. Failed lanes retry (warp-level loop), as in Fig 1.
	CritSection
	// AtomicAdd performs "Dst <- atomicAdd(mem[Addr[lane]], Imm[lane])" at
	// the word's home partition — the primitive hand-optimized GPU code uses
	// for shared counters instead of a lock/load/store/unlock sequence.
	AtomicAdd
)

var kindNames = [...]string{
	Compute: "compute", Load: "load", Store: "store", AddImm: "addimm",
	MovImm: "movimm", TxBegin: "txbegin", TxCommit: "txcommit",
	CritSection: "critsection", AtomicAdd: "atomicadd",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one warp instruction.
type Op struct {
	Kind Kind

	// Mask restricts the op to a subset of the lanes active in the enclosing
	// region; zero means "all currently active lanes".
	Mask LaneMask

	Dst, Src Reg

	// Latency applies to Compute ops.
	Latency uint32

	// Addr holds per-lane word-aligned byte addresses for Load/Store.
	Addr []uint64

	// Imm holds per-lane immediates for MovImm/AddImm/Store(UseImm);
	// ImmScalar is used when Imm is nil.
	Imm       []int64
	ImmScalar int64
	UseImm    bool

	// Locks holds, per lane, the lock-word addresses the CritSection must
	// hold (acquired in ascending order to avoid deadlock). Body is the
	// masked instruction sequence executed while holding them.
	Locks [][]uint64
	Body  []Op
}

// EffMask returns the op's lane mask intersected with active.
func (o *Op) EffMask(active LaneMask) LaneMask {
	if o.Mask == 0 {
		return active
	}
	return o.Mask & active
}

// IsMem reports whether the op accesses global memory directly.
func (o *Op) IsMem() bool { return o.Kind == Load || o.Kind == Store }

// LaneImm returns the immediate for a lane.
func (o *Op) LaneImm(lane int) int64 {
	if o.Imm == nil {
		return o.ImmScalar
	}
	return o.Imm[lane]
}

// Program is the op list executed by one warp, plus bookkeeping the core
// model needs for transactional retry.
type Program struct {
	Ops []Op
}

// Validate checks structural invariants: balanced TxBegin/TxCommit with no
// nesting, operand slices sized to the warp width, no memory ops outside a
// CritSection body touching lock words, and register indices in range.
func (p *Program) Validate() error {
	inTx := false
	for i := range p.Ops {
		op := &p.Ops[i]
		if err := validateOp(op, inTx); err != nil {
			return fmt.Errorf("op %d (%v): %w", i, op.Kind, err)
		}
		switch op.Kind {
		case TxBegin:
			inTx = true
		case TxCommit:
			inTx = false
		}
	}
	if inTx {
		return fmt.Errorf("unterminated transaction")
	}
	return nil
}

func validateOp(op *Op, inTx bool) error {
	if op.Dst >= NumRegs || op.Src >= NumRegs {
		return fmt.Errorf("register out of range")
	}
	switch op.Kind {
	case AtomicAdd:
		if inTx {
			return fmt.Errorf("atomic inside transaction")
		}
		if len(op.Addr) != WarpWidth {
			return fmt.Errorf("addr operand has %d lanes, want %d", len(op.Addr), WarpWidth)
		}
	case Load, Store:
		if len(op.Addr) != WarpWidth {
			return fmt.Errorf("addr operand has %d lanes, want %d", len(op.Addr), WarpWidth)
		}
		for lane, a := range op.Addr {
			if a%8 != 0 && op.EffMask(FullMask).Bit(lane) {
				return fmt.Errorf("lane %d address %#x not word aligned", lane, a)
			}
		}
	case MovImm, AddImm:
		if op.Imm != nil && len(op.Imm) != WarpWidth {
			return fmt.Errorf("imm operand has %d lanes, want %d", len(op.Imm), WarpWidth)
		}
	case TxBegin:
		if inTx {
			return fmt.Errorf("nested transaction")
		}
	case TxCommit:
		if !inTx {
			return fmt.Errorf("txcommit outside transaction")
		}
	case CritSection:
		if inTx {
			return fmt.Errorf("critical section inside transaction")
		}
		if len(op.Locks) != WarpWidth {
			return fmt.Errorf("locks operand has %d lanes, want %d", len(op.Locks), WarpWidth)
		}
		for _, body := range op.Body {
			if body.Kind == TxBegin || body.Kind == TxCommit || body.Kind == CritSection || body.Kind == AtomicAdd {
				return fmt.Errorf("illegal op %v in critical section body", body.Kind)
			}
			if err := validateOp(&body, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// TxBounds returns, for each TxBegin, the index pair [begin, commit].
func (p *Program) TxBounds() [][2]int {
	var out [][2]int
	begin := -1
	for i := range p.Ops {
		switch p.Ops[i].Kind {
		case TxBegin:
			begin = i
		case TxCommit:
			out = append(out, [2]int{begin, i})
		}
	}
	return out
}
