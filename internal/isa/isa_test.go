package isa

import (
	"testing"
	"testing/quick"
)

func TestLaneMaskOps(t *testing.T) {
	var m LaneMask
	m = m.Set(0).Set(5).Set(31)
	if !m.Bit(0) || !m.Bit(5) || !m.Bit(31) || m.Bit(1) {
		t.Fatalf("mask bits wrong: %032b", m)
	}
	if m.Count() != 3 {
		t.Fatalf("count = %d, want 3", m.Count())
	}
	m = m.Clear(5)
	if m.Bit(5) || m.Count() != 2 {
		t.Fatalf("clear failed: %032b", m)
	}
	if FullMask.Count() != WarpWidth {
		t.Fatalf("full mask count = %d", FullMask.Count())
	}
}

func TestLaneMaskCountProperty(t *testing.T) {
	prop := func(v uint32) bool {
		m := LaneMask(v)
		n := 0
		for i := 0; i < WarpWidth; i++ {
			if m.Bit(i) {
				n++
			}
		}
		return n == m.Count()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEffMask(t *testing.T) {
	op := Op{Kind: Compute}
	if op.EffMask(FullMask) != FullMask {
		t.Fatal("zero op mask should mean all active lanes")
	}
	op.Mask = LaneMask(0b1010)
	if op.EffMask(LaneMask(0b0110)) != LaneMask(0b0010) {
		t.Fatal("EffMask should intersect")
	}
}

func TestBuilderValidProgram(t *testing.T) {
	addr := UniformAddr(0x100)
	p := NewBuilder().
		Compute(10).
		TxBegin().
		Load(1, addr).
		AddImmScalar(2, 1, -5).
		Store(2, addr).
		TxCommit().
		MustBuild()
	if len(p.Ops) != 6 {
		t.Fatalf("ops = %d", len(p.Ops))
	}
	bounds := p.TxBounds()
	if len(bounds) != 1 || bounds[0] != [2]int{1, 5} {
		t.Fatalf("tx bounds = %v", bounds)
	}
}

func TestValidateRejectsNestedTx(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: TxBegin}, {Kind: TxBegin}}}
	if err := p.Validate(); err == nil {
		t.Fatal("nested tx accepted")
	}
}

func TestValidateRejectsUnterminatedTx(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: TxBegin}}}
	if err := p.Validate(); err == nil {
		t.Fatal("unterminated tx accepted")
	}
}

func TestValidateRejectsStrayCommit(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: TxCommit}}}
	if err := p.Validate(); err == nil {
		t.Fatal("stray txcommit accepted")
	}
}

func TestValidateRejectsShortAddrVector(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: Load, Addr: make([]uint64, 3)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("short addr vector accepted")
	}
}

func TestValidateRejectsMisalignedAddr(t *testing.T) {
	addr := UniformAddr(0x100)
	addr[7] = 0x101
	p := &Program{Ops: []Op{{Kind: Load, Addr: addr}}}
	if err := p.Validate(); err == nil {
		t.Fatal("misaligned address accepted")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: MovImm, Dst: NumRegs}}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range register accepted")
	}
}

func TestValidateRejectsTxInCritSection(t *testing.T) {
	locks := make([][]uint64, WarpWidth)
	p := &Program{Ops: []Op{{
		Kind:  CritSection,
		Locks: locks,
		Body:  []Op{{Kind: TxBegin}},
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("tx inside critical section accepted")
	}
}

func TestValidateRejectsCritSectionInTx(t *testing.T) {
	locks := make([][]uint64, WarpWidth)
	p := &Program{Ops: []Op{
		{Kind: TxBegin},
		{Kind: CritSection, Locks: locks},
		{Kind: TxCommit},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("critical section inside tx accepted")
	}
}

func TestLaneImm(t *testing.T) {
	op := Op{ImmScalar: 42}
	if op.LaneImm(3) != 42 {
		t.Fatal("scalar imm fallback broken")
	}
	op.Imm = make([]int64, WarpWidth)
	op.Imm[3] = 7
	if op.LaneImm(3) != 7 {
		t.Fatal("per-lane imm broken")
	}
}

func TestUniformHelpers(t *testing.T) {
	a := UniformAddr(0x40)
	v := UniformImm(-3)
	if len(a) != WarpWidth || len(v) != WarpWidth || a[31] != 0x40 || v[0] != -3 {
		t.Fatal("uniform helpers broken")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Kind(200).String() == "" {
		t.Fatal("Kind.String broken")
	}
}

func TestBuilderCritSection(t *testing.T) {
	locks := make([][]uint64, WarpWidth)
	for i := range locks {
		locks[i] = []uint64{uint64(8 * i)}
	}
	body := NewBuilder().Load(1, UniformAddr(0x800)).Store(1, UniformAddr(0x800)).Ops()
	p := NewBuilder().CritSection(locks, body).MustBuild()
	if p.Ops[0].Kind != CritSection || len(p.Ops[0].Body) != 2 {
		t.Fatalf("crit section not built: %+v", p.Ops[0])
	}
}

func TestValidateRejectsAtomicInTx(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: TxBegin},
		{Kind: AtomicAdd, Addr: make([]uint64, WarpWidth)},
		{Kind: TxCommit},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("atomic inside transaction accepted")
	}
}

func TestValidateRejectsAtomicShortAddr(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: AtomicAdd, Addr: make([]uint64, 5)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("short atomic addr vector accepted")
	}
}

func TestValidateRejectsAtomicInCritSection(t *testing.T) {
	p := &Program{Ops: []Op{{
		Kind:  CritSection,
		Locks: make([][]uint64, WarpWidth),
		Body:  []Op{{Kind: AtomicAdd, Addr: make([]uint64, WarpWidth)}},
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("atomic in critical section accepted")
	}
}

func TestValidateRejectsShortImmVector(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: MovImm, Imm: make([]int64, 3)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("short imm vector accepted")
	}
}

func TestValidateRejectsShortLocksVector(t *testing.T) {
	p := &Program{Ops: []Op{{Kind: CritSection, Locks: make([][]uint64, 3)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("short locks vector accepted")
	}
}

func TestValidateRejectsBadBodyOp(t *testing.T) {
	p := &Program{Ops: []Op{{
		Kind:  CritSection,
		Locks: make([][]uint64, WarpWidth),
		Body:  []Op{{Kind: Load, Addr: make([]uint64, 2)}},
	}}}
	if err := p.Validate(); err == nil {
		t.Fatal("invalid body op accepted")
	}
}

func TestBuilderReportsError(t *testing.T) {
	_, err := NewBuilder().TxBegin().Build()
	if err == nil {
		t.Fatal("Build accepted unterminated tx")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder().TxBegin().MustBuild()
}

func TestMaskedBuilderVariants(t *testing.T) {
	addr := UniformAddr(0x100)
	imm := UniformImm(1)
	mask := LaneMask(0b11)
	locks := make([][]uint64, WarpWidth)
	p := NewBuilder().
		LoadMasked(1, addr, mask).
		StoreMasked(1, addr, mask).
		StoreImmMasked(imm, addr, mask).
		AddImm(2, 1, imm).
		MovImm(3, imm).
		TxBeginMasked(mask).
		TxCommit().
		CritSectionMasked(locks, nil, mask).
		AtomicAddMasked(1, addr, imm, mask).
		MustBuild()
	for _, op := range p.Ops {
		switch op.Kind {
		case Compute, TxCommit, AddImm, MovImm:
		default:
			if op.Mask != mask && op.Kind != AddImm && op.Kind != MovImm && op.Kind != TxCommit {
				t.Fatalf("op %v lost its mask", op.Kind)
			}
		}
	}
}
