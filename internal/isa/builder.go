package isa

// Builder assembles warp programs. Workload generators use it to emit ops
// with per-lane operands without repeating slice bookkeeping.
type Builder struct {
	ops []Op
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return &Builder{} }

// Compute appends an ALU delay of the given cycles.
func (b *Builder) Compute(latency uint32) *Builder {
	b.ops = append(b.ops, Op{Kind: Compute, Latency: latency})
	return b
}

// Load appends "dst <- mem[addr[lane]]".
func (b *Builder) Load(dst Reg, addr []uint64) *Builder {
	b.ops = append(b.ops, Op{Kind: Load, Dst: dst, Addr: addr})
	return b
}

// LoadMasked is Load restricted to mask.
func (b *Builder) LoadMasked(dst Reg, addr []uint64, mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: Load, Dst: dst, Addr: addr, Mask: mask})
	return b
}

// Store appends "mem[addr[lane]] <- src".
func (b *Builder) Store(src Reg, addr []uint64) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, Src: src, Addr: addr})
	return b
}

// StoreMasked is Store restricted to mask.
func (b *Builder) StoreMasked(src Reg, addr []uint64, mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, Src: src, Addr: addr, Mask: mask})
	return b
}

// StoreImm appends "mem[addr[lane]] <- imm[lane]".
func (b *Builder) StoreImm(imm []int64, addr []uint64) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, UseImm: true, Imm: imm, Addr: addr})
	return b
}

// StoreImmMasked is StoreImm restricted to mask.
func (b *Builder) StoreImmMasked(imm []int64, addr []uint64, mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: Store, UseImm: true, Imm: imm, Addr: addr, Mask: mask})
	return b
}

// AddImm appends "dst <- src + imm[lane]".
func (b *Builder) AddImm(dst, src Reg, imm []int64) *Builder {
	b.ops = append(b.ops, Op{Kind: AddImm, Dst: dst, Src: src, Imm: imm})
	return b
}

// AddImmScalar appends "dst <- src + imm" with a warp-uniform immediate.
func (b *Builder) AddImmScalar(dst, src Reg, imm int64) *Builder {
	b.ops = append(b.ops, Op{Kind: AddImm, Dst: dst, Src: src, ImmScalar: imm})
	return b
}

// MovImm appends "dst <- imm[lane]".
func (b *Builder) MovImm(dst Reg, imm []int64) *Builder {
	b.ops = append(b.ops, Op{Kind: MovImm, Dst: dst, Imm: imm})
	return b
}

// TxBegin opens a transaction.
func (b *Builder) TxBegin() *Builder {
	b.ops = append(b.ops, Op{Kind: TxBegin})
	return b
}

// TxBeginMasked opens a transaction for a subset of lanes.
func (b *Builder) TxBeginMasked(mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: TxBegin, Mask: mask})
	return b
}

// TxCommit closes the innermost transaction.
func (b *Builder) TxCommit() *Builder {
	b.ops = append(b.ops, Op{Kind: TxCommit})
	return b
}

// AtomicAdd appends "dst <- atomicAdd(mem[addr[lane]], imm[lane])".
func (b *Builder) AtomicAdd(dst Reg, addr []uint64, imm []int64) *Builder {
	b.ops = append(b.ops, Op{Kind: AtomicAdd, Dst: dst, Addr: addr, Imm: imm})
	return b
}

// AtomicAddMasked is AtomicAdd restricted to mask.
func (b *Builder) AtomicAddMasked(dst Reg, addr []uint64, imm []int64, mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: AtomicAdd, Dst: dst, Addr: addr, Imm: imm, Mask: mask})
	return b
}

// CritSection appends a lock-protected region. locks[lane] lists the lock
// words lane must hold; body is built with a nested builder.
func (b *Builder) CritSection(locks [][]uint64, body []Op) *Builder {
	b.ops = append(b.ops, Op{Kind: CritSection, Locks: locks, Body: body})
	return b
}

// CritSectionMasked is CritSection restricted to mask.
func (b *Builder) CritSectionMasked(locks [][]uint64, body []Op, mask LaneMask) *Builder {
	b.ops = append(b.ops, Op{Kind: CritSection, Locks: locks, Body: body, Mask: mask})
	return b
}

// Ops returns the accumulated op list (for CritSection bodies).
func (b *Builder) Ops() []Op { return b.ops }

// Build finalizes and validates the program.
func (b *Builder) Build() (*Program, error) {
	p := &Program{Ops: b.ops}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build, panicking on invalid programs. Workload generators use
// it since their programs are constructed, not user input.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// UniformAddr replicates one address across all lanes.
func UniformAddr(a uint64) []uint64 {
	out := make([]uint64, WarpWidth)
	for i := range out {
		out[i] = a
	}
	return out
}

// UniformImm replicates one immediate across all lanes.
func UniformImm(v int64) []int64 {
	out := make([]int64, WarpWidth)
	for i := range out {
		out[i] = v
	}
	return out
}
