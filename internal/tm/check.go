package tm

import (
	"fmt"
	"sort"

	"getm/internal/mem"
)

// CommittedTx records one thread-level committed transaction for post-run
// verification.
type CommittedTx struct {
	GWID int
	Lane int
	// SerialTS orders transactions: GETM uses warpts; WarpTM uses the global
	// commit id. Seq breaks ties deterministically (commit arrival order).
	SerialTS uint64
	Seq      uint64
	// Reads holds globally observed reads (own-write forwarded reads are
	// excluded); Writes holds the final value per written word.
	Reads  []LogEntry
	Writes []LogEntry
}

// CheckSerializable replays committed transactions over a snapshot of the
// initial memory image and verifies that every recorded read is consistent
// with the serialization order, and that the replayed final state matches
// the memory image the simulation produced.
//
// Ordering semantics: transactions are grouped by SerialTS. Groups replay in
// ascending order. Within one group the protocol guarantees that every read
// observed pre-group state and that write sets are disjoint (see the GETM
// timestamp rules: an equal-timestamp transaction can neither read nor
// overwrite a line written by another equal-timestamp transaction — it would
// fail the wts check). So the checker validates all of a group's reads
// against the pre-group image, then applies all of its writes; overlapping
// same-group writes are reported as violations. At equal timestamps GETM
// admits write skew between transactions with disjoint write sets (a
// faithful consequence of Fig 6's "warpts >= rts" allowing equality), which
// this criterion — snapshot-consistent groups — accepts by construction.
func CheckSerializable(initial *mem.Image, final *mem.Image, txs []CommittedTx) error {
	img := initial.Snapshot()
	sorted := make([]CommittedTx, len(txs))
	copy(sorted, txs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].SerialTS != sorted[j].SerialTS {
			return sorted[i].SerialTS < sorted[j].SerialTS
		}
		return sorted[i].Seq < sorted[j].Seq
	})

	for g := 0; g < len(sorted); {
		h := g
		for h < len(sorted) && sorted[h].SerialTS == sorted[g].SerialTS {
			h++
		}
		group := sorted[g:h]
		// Validate all reads against the pre-group image.
		for _, tx := range group {
			for _, r := range tx.Reads {
				if got := img.Read(r.Addr); got != r.Value {
					return fmt.Errorf("tx (gwid %d lane %d ts %d): read %#x observed %d, but serial replay has %d",
						tx.GWID, tx.Lane, tx.SerialTS, r.Addr, r.Value, got)
				}
			}
		}
		// Apply writes; same-group write sets must be disjoint.
		writer := map[uint64]int{}
		for i, tx := range group {
			for _, w := range tx.Writes {
				if j, dup := writer[w.Addr]; dup {
					return fmt.Errorf("ts %d: transactions %d and %d both wrote %#x (same-timestamp WAW should be impossible)",
						tx.SerialTS, j, i, w.Addr)
				}
				writer[w.Addr] = i
				img.Write(w.Addr, w.Value)
			}
		}
		g = h
	}

	if final != nil && !img.Equal(final) {
		return fmt.Errorf("replayed final memory differs from simulated memory")
	}
	return nil
}
