package tm

import (
	"testing"
	"testing/quick"

	"getm/internal/isa"
	"getm/internal/mem"
)

func TestTxLogReadRecording(t *testing.T) {
	l := NewTxLog()
	l.RecordRead(3, 0x100, 7)
	l.RecordRead(3, 0x100, 7) // duplicate: recorded once
	l.RecordRead(4, 0x100, 7) // other lane: separate entry
	if len(l.Reads) != 2 {
		t.Fatalf("reads = %d, want 2", len(l.Reads))
	}
	if !l.HasRead(3, 0x100) || l.HasRead(3, 0x108) {
		t.Fatal("HasRead broken")
	}
}

func TestTxLogWriteCoalescing(t *testing.T) {
	l := NewTxLog()
	l.RecordWrite(1, 0x80, 10)
	l.RecordWrite(1, 0x80, 20)
	if len(l.Writes) != 1 || l.Writes[0].Value != 20 || l.Writes[0].Writes != 2 {
		t.Fatalf("writes = %+v", l.Writes)
	}
	if v, ok := l.Forward(1, 0x80); !ok || v != 20 {
		t.Fatal("forwarding should return latest write")
	}
	if _, ok := l.Forward(2, 0x80); ok {
		t.Fatal("forwarding must be lane-private")
	}
}

func TestTxLogConflicts(t *testing.T) {
	l := NewTxLog()
	l.RecordRead(0, 0x40, 1)
	l.RecordWrite(1, 0x40, 2)
	// Read conflicts with lane 1's write.
	if m := l.Conflicts(2, 0x40, false); m != isa.LaneMask(0).Set(1) {
		t.Fatalf("read conflicts = %032b", m)
	}
	// Write conflicts with both reader and writer.
	want := isa.LaneMask(0).Set(0).Set(1)
	if m := l.Conflicts(2, 0x40, true); m != want {
		t.Fatalf("write conflicts = %032b", m)
	}
	// A lane never conflicts with itself.
	if m := l.Conflicts(1, 0x40, true); m.Bit(1) {
		t.Fatal("self conflict")
	}
	// Read-read never conflicts.
	l2 := NewTxLog()
	l2.RecordRead(0, 0x40, 1)
	if m := l2.Conflicts(1, 0x40, false); m != 0 {
		t.Fatal("read-read flagged as conflict")
	}
}

func TestTxLogDropLane(t *testing.T) {
	l := NewTxLog()
	l.RecordRead(0, 0x40, 1)
	l.RecordWrite(0, 0x48, 2)
	l.RecordWrite(1, 0x48, 3)
	l.DropLane(0)
	if len(l.Reads) != 0 || len(l.Writes) != 1 || l.Writes[0].Lane != 1 {
		t.Fatalf("after drop: reads=%v writes=%v", l.Reads, l.Writes)
	}
	if _, ok := l.Forward(0, 0x48); ok {
		t.Fatal("dropped lane still forwards")
	}
	if v, ok := l.Forward(1, 0x48); !ok || v != 3 {
		t.Fatal("surviving lane lost its write after reindex")
	}
	if l.HasRead(0, 0x40) {
		t.Fatal("dropped lane still has reads")
	}
	// Subsequent writes by the surviving lane must keep coalescing correctly.
	l.RecordWrite(1, 0x48, 4)
	if len(l.Writes) != 1 || l.Writes[0].Value != 4 || l.Writes[0].Writes != 2 {
		t.Fatalf("post-drop coalescing broken: %+v", l.Writes)
	}
}

func TestTxLogReset(t *testing.T) {
	l := NewTxLog()
	l.RecordRead(0, 0x40, 1)
	l.RecordWrite(0, 0x40, 2)
	l.Reset()
	if len(l.Reads) != 0 || len(l.Writes) != 0 {
		t.Fatal("reset left entries")
	}
	if _, ok := l.Forward(0, 0x40); ok {
		t.Fatal("reset left forwarding state")
	}
	if l.Conflicts(1, 0x40, true) != 0 {
		t.Fatal("reset left conflict state")
	}
}

func TestTxLogLaneEntries(t *testing.T) {
	l := NewTxLog()
	l.RecordRead(0, 0x40, 1)
	l.RecordRead(1, 0x48, 2)
	l.RecordWrite(0, 0x50, 3)
	r, w := l.LaneEntries(0)
	if len(r) != 1 || len(w) != 1 || r[0].Addr != 0x40 || w[0].Addr != 0x50 {
		t.Fatalf("lane entries: r=%v w=%v", r, w)
	}
}

// Property: Forward returns exactly the last value written by that lane.
func TestTxLogForwardProperty(t *testing.T) {
	prop := func(writes []struct {
		Lane uint8
		Addr uint16
		Val  uint32
	}) bool {
		l := NewTxLog()
		last := map[laneAddr]uint64{}
		for _, w := range writes {
			lane := int(w.Lane % 32)
			addr := uint64(w.Addr) &^ 7
			l.RecordWrite(lane, addr, uint64(w.Val))
			last[laneAddr{lane, addr}] = uint64(w.Val)
		}
		for k, v := range last {
			got, ok := l.Forward(k.lane, k.addr)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSerializableAcceptsSerialRun(t *testing.T) {
	init := mem.NewImage()
	init.Write(0x10, 100)
	final := mem.NewImage()
	final.Write(0x10, 102)
	txs := []CommittedTx{
		{SerialTS: 1, Seq: 0,
			Reads:  []LogEntry{{Addr: 0x10, Value: 100}},
			Writes: []LogEntry{{Addr: 0x10, Value: 101}}},
		{SerialTS: 2, Seq: 1,
			Reads:  []LogEntry{{Addr: 0x10, Value: 101}},
			Writes: []LogEntry{{Addr: 0x10, Value: 102}}},
	}
	if err := CheckSerializable(init, final, txs); err != nil {
		t.Fatalf("valid history rejected: %v", err)
	}
}

func TestCheckSerializableRejectsStaleRead(t *testing.T) {
	init := mem.NewImage()
	init.Write(0x10, 100)
	txs := []CommittedTx{
		{SerialTS: 1, Writes: []LogEntry{{Addr: 0x10, Value: 101}}},
		// Reads the pre-tx1 value despite serializing after tx1.
		{SerialTS: 2, Reads: []LogEntry{{Addr: 0x10, Value: 100}}},
	}
	if err := CheckSerializable(init, nil, txs); err == nil {
		t.Fatal("stale read accepted")
	}
}

func TestCheckSerializableRejectsSameTSWAW(t *testing.T) {
	init := mem.NewImage()
	txs := []CommittedTx{
		{SerialTS: 5, Seq: 0, Writes: []LogEntry{{Addr: 0x10, Value: 1}}},
		{SerialTS: 5, Seq: 1, Writes: []LogEntry{{Addr: 0x10, Value: 2}}},
	}
	if err := CheckSerializable(init, nil, txs); err == nil {
		t.Fatal("same-timestamp WAW accepted")
	}
}

func TestCheckSerializableSameTSGroupSnapshot(t *testing.T) {
	// Two same-ts transactions with crossed reads and disjoint writes (the
	// write-skew corner that GETM's equal-timestamp rule admits) must be
	// accepted: each read observed pre-group state.
	init := mem.NewImage()
	init.Write(0x10, 1)
	init.Write(0x18, 2)
	txs := []CommittedTx{
		{SerialTS: 5, Seq: 0,
			Reads:  []LogEntry{{Addr: 0x18, Value: 2}},
			Writes: []LogEntry{{Addr: 0x10, Value: 11}}},
		{SerialTS: 5, Seq: 1,
			Reads:  []LogEntry{{Addr: 0x10, Value: 1}},
			Writes: []LogEntry{{Addr: 0x18, Value: 12}}},
	}
	if err := CheckSerializable(init, nil, txs); err != nil {
		t.Fatalf("same-ts snapshot group rejected: %v", err)
	}
}

func TestCheckSerializableFinalImageMismatch(t *testing.T) {
	init := mem.NewImage()
	final := mem.NewImage()
	final.Write(0x10, 999)
	txs := []CommittedTx{
		{SerialTS: 1, Writes: []LogEntry{{Addr: 0x10, Value: 1}}},
	}
	if err := CheckSerializable(init, final, txs); err == nil {
		t.Fatal("final image mismatch accepted")
	}
}

func TestAbortCauseString(t *testing.T) {
	if CauseWAR.String() != "war" || CauseStallFull.String() != "stall-full" {
		t.Fatal("cause names wrong")
	}
	if AbortCause(99).String() == "" {
		t.Fatal("unknown cause should still render")
	}
}
