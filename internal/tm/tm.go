// Package tm defines the abstractions shared by all transactional-memory
// protocol implementations: per-warp transaction logs, abort causes, the
// protocol interface the SIMT core drives, message size constants for
// interconnect accounting, and a serializability checker used by the
// integration tests.
package tm

import (
	"fmt"

	"getm/internal/isa"
	"getm/internal/sim"
)

// AbortCause classifies why a thread-level transaction aborted.
type AbortCause uint8

// Abort causes. WAR means the transaction read a line written by a logically
// later transaction; WAWRAW means it tried to write a line read or written by
// a logically later transaction (GETM, Fig 6). Validation covers WarpTM's
// value-based validation failures. IntraWarp is a conflict with another lane
// of the same warp. StallFull means the GETM stall buffer had no space.
// EarlyAbort is EAPG's broadcast-triggered abort.
const (
	CauseNone AbortCause = iota
	CauseWAR
	CauseWAWRAW
	CauseValidation
	CauseIntraWarp
	CauseStallFull
	CauseEarlyAbort
)

var causeNames = [...]string{
	CauseNone: "none", CauseWAR: "war", CauseWAWRAW: "waw-raw",
	CauseValidation: "validation", CauseIntraWarp: "intra-warp",
	CauseStallFull: "stall-full", CauseEarlyAbort: "early-abort",
}

func (c AbortCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Message payload sizes in bytes, used for crossbar traffic accounting.
const (
	AddrBytes   = 4 // 32-bit global addresses (Fermi generation)
	WordBytes   = 8 // data word
	TSBytes     = 8 // logical timestamp
	HeaderBytes = 8 // control header / ack

	// ReqBytes is a transactional access request (header + address + ts).
	ReqBytes = HeaderBytes + AddrBytes + TSBytes
	// ReplyBytes is an access reply carrying data.
	ReplyBytes = HeaderBytes + WordBytes
	// AbortReplyBytes carries the abort-cause timestamp back to the core.
	AbortReplyBytes = HeaderBytes + TSBytes
	// CommitEntryBytes is one write-log entry: address, data, write count.
	CommitEntryBytes = AddrBytes + WordBytes + 1
	// CleanupEntryBytes is one abort-log entry: address, write count.
	CleanupEntryBytes = AddrBytes + 1
	// ValidateEntryBytes is one WarpTM read-log entry: address + observed value.
	ValidateEntryBytes = AddrBytes + WordBytes
	// SignatureBytes is EAPG's idealized 64-bit broadcast signature.
	SignatureBytes = 8
)

// LogEntry records one transactional access by one lane.
type LogEntry struct {
	Lane  int
	Addr  uint64
	Value uint64
	// Writes counts coalesced writes to this address by this lane (GETM
	// sends it in the commit/cleanup log to balance #writes).
	Writes int
}

// TxLog is the per-warp redo log for one transaction attempt. Reads record
// the observed value (for value-based validation and the replay checker);
// writes record the new value. Lookup structures support read-own-write
// forwarding and intra-warp conflict detection.
type TxLog struct {
	Reads  []LogEntry
	Writes []LogEntry

	// byAddr indexes log entries by word address for forwarding/conflicts.
	readersByAddr map[uint64]isa.LaneMask
	writersByAddr map[uint64]isa.LaneMask
	writeVal      map[laneAddr]uint64
	writeIdx      map[laneAddr]int
	readSeen      map[laneAddr]bool
	readVal       map[laneAddr]uint64
}

type laneAddr struct {
	lane int
	addr uint64
}

// NewTxLog returns an empty log.
func NewTxLog() *TxLog {
	return &TxLog{
		readersByAddr: make(map[uint64]isa.LaneMask),
		writersByAddr: make(map[uint64]isa.LaneMask),
		writeVal:      make(map[laneAddr]uint64),
		writeIdx:      make(map[laneAddr]int),
		readSeen:      make(map[laneAddr]bool),
		readVal:       make(map[laneAddr]uint64),
	}
}

// Reset clears the log for a new transaction attempt.
func (l *TxLog) Reset() {
	l.Reads = l.Reads[:0]
	l.Writes = l.Writes[:0]
	clear(l.readersByAddr)
	clear(l.writersByAddr)
	clear(l.writeVal)
	clear(l.writeIdx)
	clear(l.readSeen)
	clear(l.readVal)
}

// RecordRead logs a globally observed read (not a forwarded own-write read).
func (l *TxLog) RecordRead(lane int, addr, value uint64) {
	key := laneAddr{lane, addr}
	if !l.readSeen[key] {
		l.Reads = append(l.Reads, LogEntry{Lane: lane, Addr: addr, Value: value})
		l.readSeen[key] = true
		l.readVal[key] = value
	}
	l.readersByAddr[addr] = l.readersByAddr[addr].Set(lane)
}

// ForwardRead returns the value a lane's earlier read of addr observed, so
// repeated reads hit the redo log instead of the interconnect.
func (l *TxLog) ForwardRead(lane int, addr uint64) (uint64, bool) {
	v, ok := l.readVal[laneAddr{lane, addr}]
	return v, ok
}

// RecordWrite logs a write; repeated writes by the same lane to the same
// address update the value and bump the coalesced write count.
func (l *TxLog) RecordWrite(lane int, addr, value uint64) {
	key := laneAddr{lane, addr}
	if i, ok := l.writeIdx[key]; ok {
		l.Writes[i].Value = value
		l.Writes[i].Writes++
	} else {
		l.writeIdx[key] = len(l.Writes)
		l.Writes = append(l.Writes, LogEntry{Lane: lane, Addr: addr, Value: value, Writes: 1})
	}
	l.writeVal[key] = value
	l.writersByAddr[addr] = l.writersByAddr[addr].Set(lane)
}

// Forward returns the lane's own buffered write to addr, if any
// (read-own-write forwarding from the redo log).
func (l *TxLog) Forward(lane int, addr uint64) (uint64, bool) {
	v, ok := l.writeVal[laneAddr{lane, addr}]
	return v, ok
}

// HasRead reports whether the lane already has a logged read of addr.
func (l *TxLog) HasRead(lane int, addr uint64) bool {
	return l.readSeen[laneAddr{lane, addr}]
}

// Conflicts returns the other lanes whose logged accesses conflict with the
// given access (same word, at least one side writing).
func (l *TxLog) Conflicts(lane int, addr uint64, isWrite bool) isa.LaneMask {
	var m isa.LaneMask
	m |= l.writersByAddr[addr]
	if isWrite {
		m |= l.readersByAddr[addr]
	}
	return m.Clear(lane)
}

// DropLane removes a lane's entries (after an intra-warp or eager abort the
// lane's accesses are replayed from scratch on retry). Write entries are
// retained in the cleanup set by the caller before dropping.
func (l *TxLog) DropLane(lane int) {
	filter := func(entries []LogEntry) []LogEntry {
		out := entries[:0]
		for _, e := range entries {
			if e.Lane != lane {
				out = append(out, e)
			}
		}
		return out
	}
	l.Reads = filter(l.Reads)
	l.Writes = filter(l.Writes)
	for addr, m := range l.readersByAddr {
		l.readersByAddr[addr] = m.Clear(lane)
	}
	for addr, m := range l.writersByAddr {
		l.writersByAddr[addr] = m.Clear(lane)
	}
	for k := range l.writeVal {
		if k.lane == lane {
			delete(l.writeVal, k)
		}
	}
	for k := range l.writeIdx {
		if k.lane == lane {
			delete(l.writeIdx, k)
		}
	}
	for k := range l.readSeen {
		if k.lane == lane {
			delete(l.readSeen, k)
		}
	}
	for k := range l.readVal {
		if k.lane == lane {
			delete(l.readVal, k)
		}
	}
	// Reindex writes.
	for i, e := range l.Writes {
		l.writeIdx[laneAddr{e.Lane, e.Addr}] = i
	}
}

// LaneEntries returns the lane's read and write entries.
func (l *TxLog) LaneEntries(lane int) (reads, writes []LogEntry) {
	for _, e := range l.Reads {
		if e.Lane == lane {
			reads = append(reads, e)
		}
	}
	for _, e := range l.Writes {
		if e.Lane == lane {
			writes = append(writes, e)
		}
	}
	return reads, writes
}

// WarpTx identifies one warp-level transaction attempt to a protocol.
type WarpTx struct {
	// GWID is the global warp id (unique across cores); it is the lock owner
	// id in GETM.
	GWID int
	// Core is the SIMT core index (the down-crossbar port for replies).
	Core int
	// Log is the attempt's redo log.
	Log *TxLog
	// StartCycle is when this attempt began (WarpTM's TCD read-only check).
	StartCycle sim.Cycle
}

// LaneAccess is one lane's slice of a warp memory instruction.
type LaneAccess struct {
	Lane  int
	Addr  uint64
	Value uint64 // store data (ignored for loads)
}

// AccessResult is the protocol's per-lane answer to a transactional access.
type AccessResult struct {
	Lane  int
	Value uint64 // loaded data
	Abort bool
	Cause AbortCause
	// AbortTS is the newest logical timestamp observed at the LLC, used by
	// GETM to advance warpts past the conflict.
	AbortTS uint64
}

// CommitOutcome reports per-lane commit results.
type CommitOutcome struct {
	// FailedLanes holds lanes whose transactions failed commit-time
	// validation (empty for GETM: eager detection guarantees success).
	FailedLanes isa.LaneMask
	Cause       AbortCause
	// AbortTS advances warpts for GETM aborts handled at commit.
	AbortTS uint64
}

// Protocol is the SIMT-core-side interface to a TM implementation. All
// methods are called from engine events; completions are delivered via
// callbacks on later events.
type Protocol interface {
	// Name identifies the protocol ("getm", "warptm", "warptm-el", "eapg").
	Name() string

	// EagerIntraWarp reports whether intra-warp conflicts are checked at
	// access time (GETM) rather than resolved at commit time (WarpTM).
	EagerIntraWarp() bool

	// Begin opens a transaction attempt for the warp.
	Begin(w *WarpTx)

	// Access performs a transactional load (isWrite false) or store for the
	// given lanes. done is invoked once per call, after every lane has an
	// outcome (including lanes that had to wait in a stall buffer).
	Access(w *WarpTx, isWrite bool, lanes []LaneAccess, done func([]AccessResult))

	// Commit finishes the warp's transaction: commits lanes in commitMask
	// and cleans up after lanes in abortMask (their reservations/log
	// entries). resume is invoked when the warp may continue executing —
	// immediately after log transmission for GETM (off the critical path),
	// or after the validation/commit round trips for WarpTM. For lazy
	// protocols the outcome may fail lanes that eager protocols would have
	// aborted earlier.
	Commit(w *WarpTx, commitMask, abortMask isa.LaneMask, resume func(CommitOutcome))
}

// AbortNotice lets a protocol asynchronously abort lanes between accesses
// (EAPG's broadcast early aborts). Cores register a sink per warp.
type AbortNotice struct {
	GWID  int
	Lanes isa.LaneMask
	Cause AbortCause
}

// AsyncAborter is implemented by protocols that can abort transactions
// asynchronously; the core registers a callback to receive notices.
type AsyncAborter interface {
	SetAbortSink(func(AbortNotice))
}
