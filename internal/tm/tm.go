// Package tm defines the abstractions shared by all transactional-memory
// protocol implementations: per-warp transaction logs, abort causes, the
// protocol interface the SIMT core drives, message size constants for
// interconnect accounting, and a serializability checker used by the
// integration tests.
package tm

import (
	"fmt"

	"getm/internal/isa"
	"getm/internal/sim"
)

// AbortCause classifies why a thread-level transaction aborted.
type AbortCause uint8

// Abort causes. WAR means the transaction read a line written by a logically
// later transaction; WAWRAW means it tried to write a line read or written by
// a logically later transaction (GETM, Fig 6). Validation covers WarpTM's
// value-based validation failures. IntraWarp is a conflict with another lane
// of the same warp. StallFull means the GETM stall buffer had no space.
// EarlyAbort is EAPG's broadcast-triggered abort.
const (
	CauseNone AbortCause = iota
	CauseWAR
	CauseWAWRAW
	CauseValidation
	CauseIntraWarp
	CauseStallFull
	CauseEarlyAbort
)

var causeNames = [...]string{
	CauseNone: "none", CauseWAR: "war", CauseWAWRAW: "waw-raw",
	CauseValidation: "validation", CauseIntraWarp: "intra-warp",
	CauseStallFull: "stall-full", CauseEarlyAbort: "early-abort",
}

func (c AbortCause) String() string {
	if int(c) < len(causeNames) {
		return causeNames[c]
	}
	return fmt.Sprintf("cause(%d)", uint8(c))
}

// Message payload sizes in bytes, used for crossbar traffic accounting.
const (
	AddrBytes   = 4 // 32-bit global addresses (Fermi generation)
	WordBytes   = 8 // data word
	TSBytes     = 8 // logical timestamp
	HeaderBytes = 8 // control header / ack

	// ReqBytes is a transactional access request (header + address + ts).
	ReqBytes = HeaderBytes + AddrBytes + TSBytes
	// ReplyBytes is an access reply carrying data.
	ReplyBytes = HeaderBytes + WordBytes
	// AbortReplyBytes carries the abort-cause timestamp back to the core.
	AbortReplyBytes = HeaderBytes + TSBytes
	// CommitEntryBytes is one write-log entry: address, data, write count.
	CommitEntryBytes = AddrBytes + WordBytes + 1
	// CleanupEntryBytes is one abort-log entry: address, write count.
	CleanupEntryBytes = AddrBytes + 1
	// ValidateEntryBytes is one WarpTM read-log entry: address + observed value.
	ValidateEntryBytes = AddrBytes + WordBytes
	// SignatureBytes is EAPG's idealized 64-bit broadcast signature.
	SignatureBytes = 8
)

// LogEntry records one transactional access by one lane.
type LogEntry struct {
	Lane  int
	Addr  uint64
	Value uint64
	// Writes counts coalesced writes to this address by this lane (GETM
	// sends it in the commit/cleanup log to balance #writes).
	Writes int
}

// TxLog is the per-warp redo log for one transaction attempt. Reads record
// the observed value (for value-based validation and the replay checker);
// writes record the new value.
//
// The lookup structures behind read-own-write forwarding and intra-warp
// conflict detection are flat open-addressed tables rather than Go maps, so
// a steady-state access allocates nothing: entries live in the append-only
// Reads/Writes slices, a (lane, addr)-keyed index maps each access to its
// entry, and an addr-keyed table holds the per-word reader/writer lane
// masks. Reset invalidates both tables by bumping a generation counter and
// reuses all capacity across transaction attempts.
type TxLog struct {
	Reads  []LogEntry
	Writes []LogEntry

	idx      []txIdxEntry  // (lane, addr) -> entry indices
	addrTab  []txAddrEntry // addr -> reader/writer masks
	gen      uint32
	idxUsed  int
	addrUsed int

	// laneWrites counts write entries per lane (silent-commit checks read it
	// without walking the log).
	laneWrites [isa.WarpWidth]int32
}

// laneAddr keys a single lane's access to one word (tests model the log's
// forwarding contract with it).
type laneAddr struct {
	lane int
	addr uint64
}

// txIdxEntry is one slot of the (lane, addr) index. A slot is live when its
// gen matches the log's; readIdx/writeIdx of -1 mean the lane has no such
// entry yet.
type txIdxEntry struct {
	gen      uint32
	lane     int32
	addr     uint64
	readIdx  int32
	writeIdx int32
}

// txAddrEntry is one slot of the per-address mask table.
type txAddrEntry struct {
	gen     uint32
	addr    uint64
	readers isa.LaneMask
	writers isa.LaneMask
}

// Table sizing: start big enough for typical transaction footprints (a few
// words per lane) and keep load factor below 3/4 on growth.
const txLogInitialSlots = 64

// NewTxLog returns an empty log. The index tables are allocated lazily on
// first use, so warps that never run transactions (lock kernels) pay nothing.
func NewTxLog() *TxLog {
	return &TxLog{gen: 1}
}

// Reset clears the log for a new transaction attempt, retaining capacity.
func (l *TxLog) Reset() {
	l.Reads = l.Reads[:0]
	l.Writes = l.Writes[:0]
	l.bumpGen()
	l.laneWrites = [isa.WarpWidth]int32{}
}

// bumpGen invalidates every table slot in O(1); on the (astronomically rare)
// uint32 wrap it falls back to clearing the slots so stale generations can
// never read as live.
func (l *TxLog) bumpGen() {
	l.gen++
	l.idxUsed, l.addrUsed = 0, 0
	if l.gen == 0 {
		clear(l.idx)
		clear(l.addrTab)
		l.gen = 1
	}
}

func txHash(lane int, addr uint64) uint64 {
	return sim.Mix64(addr ^ uint64(lane)*0x9E3779B97F4A7C15)
}

// idxFind returns the live (lane, addr) slot, or nil.
func (l *TxLog) idxFind(lane int, addr uint64) *txIdxEntry {
	if len(l.idx) == 0 {
		return nil
	}
	mask := uint64(len(l.idx) - 1)
	for h := txHash(lane, addr) & mask; ; h = (h + 1) & mask {
		e := &l.idx[h]
		if e.gen != l.gen {
			return nil
		}
		if e.addr == addr && e.lane == int32(lane) {
			return e
		}
	}
}

// idxEnsure returns the live slot for (lane, addr), inserting a fresh one
// (readIdx/writeIdx -1) if absent, growing the table as needed.
func (l *TxLog) idxEnsure(lane int, addr uint64) *txIdxEntry {
	if len(l.idx) == 0 {
		l.idx = make([]txIdxEntry, txLogInitialSlots)
	} else if (l.idxUsed+1)*4 > len(l.idx)*3 {
		l.growIdx()
	}
	mask := uint64(len(l.idx) - 1)
	for h := txHash(lane, addr) & mask; ; h = (h + 1) & mask {
		e := &l.idx[h]
		if e.gen != l.gen {
			*e = txIdxEntry{gen: l.gen, lane: int32(lane), addr: addr, readIdx: -1, writeIdx: -1}
			l.idxUsed++
			return e
		}
		if e.addr == addr && e.lane == int32(lane) {
			return e
		}
	}
}

func (l *TxLog) growIdx() {
	old := l.idx
	l.idx = make([]txIdxEntry, 2*len(old))
	mask := uint64(len(l.idx) - 1)
	for i := range old {
		e := &old[i]
		if e.gen != l.gen {
			continue
		}
		h := txHash(int(e.lane), e.addr) & mask
		for l.idx[h].gen == l.gen {
			h = (h + 1) & mask
		}
		l.idx[h] = *e
	}
}

// addrFind returns the live mask slot for addr, or nil.
func (l *TxLog) addrFind(addr uint64) *txAddrEntry {
	if len(l.addrTab) == 0 {
		return nil
	}
	mask := uint64(len(l.addrTab) - 1)
	for h := sim.Mix64(addr) & mask; ; h = (h + 1) & mask {
		e := &l.addrTab[h]
		if e.gen != l.gen {
			return nil
		}
		if e.addr == addr {
			return e
		}
	}
}

// addrEnsure returns the live mask slot for addr, inserting if absent.
func (l *TxLog) addrEnsure(addr uint64) *txAddrEntry {
	if len(l.addrTab) == 0 {
		l.addrTab = make([]txAddrEntry, txLogInitialSlots)
	} else if (l.addrUsed+1)*4 > len(l.addrTab)*3 {
		l.growAddrTab()
	}
	mask := uint64(len(l.addrTab) - 1)
	for h := sim.Mix64(addr) & mask; ; h = (h + 1) & mask {
		e := &l.addrTab[h]
		if e.gen != l.gen {
			*e = txAddrEntry{gen: l.gen, addr: addr}
			l.addrUsed++
			return e
		}
		if e.addr == addr {
			return e
		}
	}
}

func (l *TxLog) growAddrTab() {
	old := l.addrTab
	l.addrTab = make([]txAddrEntry, 2*len(old))
	mask := uint64(len(l.addrTab) - 1)
	for i := range old {
		e := &old[i]
		if e.gen != l.gen {
			continue
		}
		h := sim.Mix64(e.addr) & mask
		for l.addrTab[h].gen == l.gen {
			h = (h + 1) & mask
		}
		l.addrTab[h] = *e
	}
}

// RecordRead logs a globally observed read (not a forwarded own-write read).
func (l *TxLog) RecordRead(lane int, addr, value uint64) {
	e := l.idxEnsure(lane, addr)
	if e.readIdx < 0 {
		e.readIdx = int32(len(l.Reads))
		l.Reads = append(l.Reads, LogEntry{Lane: lane, Addr: addr, Value: value})
	}
	a := l.addrEnsure(addr)
	a.readers = a.readers.Set(lane)
}

// ForwardRead returns the value a lane's earlier read of addr observed, so
// repeated reads hit the redo log instead of the interconnect.
func (l *TxLog) ForwardRead(lane int, addr uint64) (uint64, bool) {
	if e := l.idxFind(lane, addr); e != nil && e.readIdx >= 0 {
		return l.Reads[e.readIdx].Value, true
	}
	return 0, false
}

// RecordWrite logs a write; repeated writes by the same lane to the same
// address update the value and bump the coalesced write count.
func (l *TxLog) RecordWrite(lane int, addr, value uint64) {
	e := l.idxEnsure(lane, addr)
	if e.writeIdx >= 0 {
		w := &l.Writes[e.writeIdx]
		w.Value = value
		w.Writes++
	} else {
		e.writeIdx = int32(len(l.Writes))
		l.Writes = append(l.Writes, LogEntry{Lane: lane, Addr: addr, Value: value, Writes: 1})
		l.laneWrites[lane]++
	}
	a := l.addrEnsure(addr)
	a.writers = a.writers.Set(lane)
}

// Forward returns the lane's own buffered write to addr, if any
// (read-own-write forwarding from the redo log).
func (l *TxLog) Forward(lane int, addr uint64) (uint64, bool) {
	if e := l.idxFind(lane, addr); e != nil && e.writeIdx >= 0 {
		return l.Writes[e.writeIdx].Value, true
	}
	return 0, false
}

// HasRead reports whether the lane already has a logged read of addr.
func (l *TxLog) HasRead(lane int, addr uint64) bool {
	e := l.idxFind(lane, addr)
	return e != nil && e.readIdx >= 0
}

// LaneWriteCount returns the number of distinct words the lane has written
// (WarpTM's silent read-only commit check, without walking the log).
func (l *TxLog) LaneWriteCount(lane int) int { return int(l.laneWrites[lane]) }

// Conflicts returns the other lanes whose logged accesses conflict with the
// given access (same word, at least one side writing).
func (l *TxLog) Conflicts(lane int, addr uint64, isWrite bool) isa.LaneMask {
	a := l.addrFind(addr)
	if a == nil {
		return 0
	}
	m := a.writers
	if isWrite {
		m |= a.readers
	}
	return m.Clear(lane)
}

// DropLane removes a lane's entries (after an intra-warp or eager abort the
// lane's accesses are replayed from scratch on retry). Write entries are
// retained in the cleanup set by the caller before dropping. The index
// tables are rebuilt from the surviving entries.
func (l *TxLog) DropLane(lane int) {
	filter := func(entries []LogEntry) []LogEntry {
		out := entries[:0]
		for _, e := range entries {
			if e.Lane != lane {
				out = append(out, e)
			}
		}
		return out
	}
	l.Reads = filter(l.Reads)
	l.Writes = filter(l.Writes)
	l.rebuildIndex()
}

// rebuildIndex reconstructs both tables and the per-lane write counts from
// the Reads/Writes slices (abort path only; never on the access hot path).
func (l *TxLog) rebuildIndex() {
	l.bumpGen()
	l.laneWrites = [isa.WarpWidth]int32{}
	for i := range l.Reads {
		e := &l.Reads[i]
		ie := l.idxEnsure(e.Lane, e.Addr)
		ie.readIdx = int32(i)
		a := l.addrEnsure(e.Addr)
		a.readers = a.readers.Set(e.Lane)
	}
	for i := range l.Writes {
		e := &l.Writes[i]
		ie := l.idxEnsure(e.Lane, e.Addr)
		ie.writeIdx = int32(i)
		a := l.addrEnsure(e.Addr)
		a.writers = a.writers.Set(e.Lane)
		l.laneWrites[e.Lane]++
	}
}

// LaneEntries returns the lane's read and write entries. It allocates and is
// meant for cold paths (the replay checker's Record mode); hot paths iterate
// Reads/Writes directly or use LaneWriteCount.
func (l *TxLog) LaneEntries(lane int) (reads, writes []LogEntry) {
	for _, e := range l.Reads {
		if e.Lane == lane {
			reads = append(reads, e)
		}
	}
	for _, e := range l.Writes {
		if e.Lane == lane {
			writes = append(writes, e)
		}
	}
	return reads, writes
}

// WarpTx identifies one warp-level transaction attempt to a protocol.
type WarpTx struct {
	// GWID is the global warp id (unique across cores); it is the lock owner
	// id in GETM.
	GWID int
	// Core is the SIMT core index (the down-crossbar port for replies).
	Core int
	// Log is the attempt's redo log.
	Log *TxLog
	// StartCycle is when this attempt began (WarpTM's TCD read-only check).
	StartCycle sim.Cycle
}

// LaneAccess is one lane's slice of a warp memory instruction.
type LaneAccess struct {
	Lane  int
	Addr  uint64
	Value uint64 // store data (ignored for loads)
}

// AccessResult is the protocol's per-lane answer to a transactional access.
type AccessResult struct {
	Lane  int
	Value uint64 // loaded data
	Abort bool
	Cause AbortCause
	// AbortTS is the newest logical timestamp observed at the LLC, used by
	// GETM to advance warpts past the conflict.
	AbortTS uint64
}

// CommitOutcome reports per-lane commit results.
type CommitOutcome struct {
	// FailedLanes holds lanes whose transactions failed commit-time
	// validation (empty for GETM: eager detection guarantees success).
	FailedLanes isa.LaneMask
	Cause       AbortCause
	// AbortTS advances warpts for GETM aborts handled at commit.
	AbortTS uint64
}

// Protocol is the SIMT-core-side interface to a TM implementation. All
// methods are called from engine events; completions are delivered via
// callbacks on later events.
type Protocol interface {
	// Name identifies the protocol ("getm", "warptm", "warptm-el", "eapg").
	Name() string

	// EagerIntraWarp reports whether intra-warp conflicts are checked at
	// access time (GETM) rather than resolved at commit time (WarpTM).
	EagerIntraWarp() bool

	// Begin opens a transaction attempt for the warp.
	Begin(w *WarpTx)

	// Access performs a transactional load (isWrite false) or store for the
	// given lanes. done is invoked once per call, after every lane has an
	// outcome (including lanes that had to wait in a stall buffer).
	Access(w *WarpTx, isWrite bool, lanes []LaneAccess, done func([]AccessResult))

	// Commit finishes the warp's transaction: commits lanes in commitMask
	// and cleans up after lanes in abortMask (their reservations/log
	// entries). resume is invoked when the warp may continue executing —
	// immediately after log transmission for GETM (off the critical path),
	// or after the validation/commit round trips for WarpTM. For lazy
	// protocols the outcome may fail lanes that eager protocols would have
	// aborted earlier.
	Commit(w *WarpTx, commitMask, abortMask isa.LaneMask, resume func(CommitOutcome))
}

// AbortNotice lets a protocol asynchronously abort lanes between accesses
// (EAPG's broadcast early aborts). Cores register a sink per warp.
type AbortNotice struct {
	GWID  int
	Lanes isa.LaneMask
	Cause AbortCause
}

// AsyncAborter is implemented by protocols that can abort transactions
// asynchronously; the core registers a callback to receive notices.
type AsyncAborter interface {
	SetAbortSink(func(AbortNotice))
}
