package tm

import (
	"testing"

	"getm/internal/isa"
)

// Gate: the TxLog record/forward path is allocation-free once the log's
// tables have grown to the transaction footprint. Entries append into reused
// slices and both index tables are invalidated by generation bump on Reset,
// so steady-state attempts touch no allocator.
func TestTxLogHotPathAllocs(t *testing.T) {
	l := NewTxLog()
	var sink uint64
	round := func() {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			a := uint64(0x1000 + lane*8)
			l.RecordRead(lane, a, 1)
			if v, ok := l.ForwardRead(lane, a); ok {
				sink += v
			}
			l.RecordWrite(lane, a+512, 2)
			l.RecordWrite(lane, a+512, 3) // coalesced rewrite
			if v, ok := l.Forward(lane, a+512); ok {
				sink += v
			}
			sink += uint64(l.Conflicts(lane, a, true))
			sink += uint64(l.LaneWriteCount(lane))
		}
		l.Reset()
	}
	round() // grow tables to the footprint
	if allocs := testing.AllocsPerRun(100, round); allocs != 0 {
		t.Errorf("TxLog record/forward path allocates %.1f per attempt, want 0", allocs)
	}
	_ = sink
}
