package tm

// Transport carries protocol messages between SIMT cores and memory
// partitions. The gpu package implements it over the two crossbars; unit
// tests use zero-latency fakes.
type Transport interface {
	// ToPartition sends bytes of payload from a core to a partition,
	// invoking deliver when the tail flit arrives.
	ToPartition(core, partition, bytes int, deliver func())
	// ToCore sends a reply from a partition back to a core.
	ToCore(partition, core, bytes int, deliver func())
	// BroadcastToCores sends the same payload from a partition to every
	// core (EAPG's signature broadcasts).
	BroadcastToCores(partition, bytes int, deliver func(core int))
}
