package gpu

import (
	"fmt"

	"getm/internal/core"
	"getm/internal/eapg"
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/policy"
	"getm/internal/sim"
	"getm/internal/simt"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/trace"
	"getm/internal/warptm"
	"getm/internal/xbar"
)

// machine holds the assembled hardware components of one run.
type machine struct {
	cfg        Config
	eng        *sim.Engine
	img        *mem.Image
	amap       mem.AddressMap
	pair       *xbar.Pair
	partitions []*mem.Partition
	protocol   tm.Protocol

	getm   *core.Protocol
	getmVU []*core.VU
	getmCU []*core.CU
	stall  *core.OccTracker
	wtm    *warptm.Protocol
	eapg   *eapg.Protocol
	memsys simt.MemSystem
}

// newMachine assembles the hardware for one run. rec (nil = tracing off)
// is attached to every component that can emit trace events.
func newMachine(eng *sim.Engine, img *mem.Image, cfg Config, rec *trace.Recorder) *machine {
	m := &machine{
		cfg:  cfg,
		eng:  eng,
		img:  img,
		amap: mem.AddressMap{Partitions: cfg.Partitions, LineBytes: cfg.LineBytes},
		pair: xbar.NewPair(eng, cfg.Cores, cfg.Partitions, cfg.Xbar),
	}
	for i := 0; i < cfg.Partitions; i++ {
		m.partitions = append(m.partitions, mem.NewPartition(i, eng, img, cfg.Partition))
	}
	m.memsys = newSerialMemSystem(m)
	trans := &transport{m: m}
	rng := sim.NewRNG(cfg.Seed ^ 0xC0FFEE)

	// One lifecycle engine serves every TM protocol: the effective matrix
	// point (cfg.Policy, or the preset named by cfg.Protocol) parameterizes
	// policy.Build. fglock is not a TM protocol and keeps its stub.
	if cfg.Protocol == ProtoFGLock && cfg.Policy.IsZero() {
		m.protocol = lockStub{}
	} else {
		pol := cfg.Policy
		if pol.IsZero() {
			var ok bool
			pol, ok = policy.Preset(string(cfg.Protocol))
			if !ok {
				panic(fmt.Sprintf("gpu: unknown protocol %q", cfg.Protocol))
			}
		}
		e, err := policy.Build(pol, policy.Deps{
			Eng:        eng,
			AMap:       m.amap,
			Trans:      trans,
			Partitions: m.partitions,
			Img:        img,
			Cores:      cfg.Cores,
			RNG:        rng,
			Record:     cfg.Record,
			GETM:       cfg.GETM,
			WarpTM:     cfg.WarpTM,
		})
		if err != nil {
			// RunContext validates cfg.Policy before assembly.
			panic(fmt.Sprintf("gpu: %v", err))
		}
		m.protocol = e.Protocol
		m.getm, m.getmVU, m.getmCU, m.stall = e.GETM, e.GETMVU, e.GETMCU, e.Stall
		m.wtm, m.eapg = e.WarpTM, e.EAPG
	}
	if rec != nil {
		m.pair.SetTrace(rec)
		for _, p := range m.partitions {
			p.SetTrace(rec)
		}
		for _, vu := range m.getmVU {
			vu.SetTrace(rec)
		}
		for _, cu := range m.getmCU {
			cu.SetTrace(rec)
		}
		if m.eapg != nil {
			m.eapg.SetTrace(rec) // also wires the inner WarpTM
		} else if m.wtm != nil {
			m.wtm.SetTrace(rec)
		}
	}
	return m
}

// registerProbes wires the machine-level time-series probes the interval
// sampler walks: IPC, in-flight transactions, commit/abort throughput,
// interconnect traffic, and (GETM) stall-buffer occupancy.
func (m *machine) registerProbes(rec *trace.Recorder, cores []*simt.Core) {
	rec.AddRate("ipc", func() uint64 {
		var n uint64
		for _, c := range cores {
			n += c.Stats.Instructions
		}
		return n
	})
	rec.AddGauge("tx-inflight", func() float64 {
		n := 0
		for _, c := range cores {
			n += c.ActiveTx()
		}
		return float64(n)
	})
	rec.AddDelta("commits", func() uint64 {
		var n uint64
		for _, c := range cores {
			n += c.Stats.Commits
		}
		return n
	})
	rec.AddDelta("aborts", func() uint64 {
		var n uint64
		for _, c := range cores {
			n += c.Stats.Aborts
		}
		return n
	})
	rec.AddRate("xbar-bytes", func() uint64 {
		u, d := m.pair.TrafficBytes()
		return u + d
	})
	if m.getm != nil {
		rec.AddGauge("stallbuf-occupancy", func() float64 {
			return float64(m.getm.StallOccupancy())
		})
	}
}

// committed returns the recorded transactions for the replay checker.
func (m *machine) committed() []tm.CommittedTx {
	switch {
	case m.getm != nil:
		return m.getm.Committed
	case m.wtm != nil:
		return m.wtm.Committed
	}
	return nil
}

// checkInvariants verifies post-run protocol state (no leaked reservations,
// empty stall buffers).
func (m *machine) checkInvariants() error {
	if m.getm != nil {
		if n := m.getm.LockedGranules(); n != 0 {
			return fmt.Errorf("%d write reservations leaked", n)
		}
		if n := m.getm.StallOccupancy(); n != 0 {
			return fmt.Errorf("%d requests stuck in stall buffers", n)
		}
	}
	return nil
}

// collect aggregates run metrics.
func (m *machine) collect(cores []*simt.Core, end sim.Cycle) *stats.Metrics {
	out := stats.NewMetrics()
	out.TotalCycles = uint64(end)
	for _, c := range cores {
		out.TxExecCycles += c.Stats.TxExecCycles
		out.TxWaitCycles += c.Stats.TxWaitCycles
		out.Commits += c.Stats.Commits
		out.Aborts += c.Stats.Aborts
		out.AbortsByCause.Merge(c.Stats.AbortsByCause)
		out.Extra.Inc("instructions", c.Stats.Instructions)
		out.Extra.Inc("tx-attempts", c.Stats.TxAttempts)
		out.Extra.Inc("tx-lane-attempts", c.Stats.TxLaneAttempts)
	}
	out.XbarUpBytes, out.XbarDownBytes = m.pair.TrafficBytes()
	for _, p := range m.partitions {
		out.Extra.Inc("llc-hits", p.LLC.Hits)
		out.Extra.Inc("llc-misses", p.LLC.Misses)
		out.Extra.Inc("atomics", p.AtomicsServed)
	}
	if m.getm != nil {
		out.StallBufMaxOccupancy = uint64(m.stall.Max)
		out.Extra.Inc("rollovers", m.getm.Rollovers)
		for _, vu := range m.getmVU {
			out.MetaAccessCycles.Merge(vu.AccessCycles)
			out.Extra.Inc("vu-requests", vu.Requests)
			out.Extra.Inc("vu-queued", vu.Queued)
			out.Extra.Inc("meta-overflows", vu.Overflows)
			out.Extra.Inc("meta-evictions", vu.Meta.Evictions)
			out.Extra.Inc("meta-stashed", vu.Meta.StashedEntries)
			out.Extra.Inc("stall-enqueues", vu.Stall.EnqueueCount)
			out.Extra.Inc("stall-rejects", vu.Stall.RejectedFull)
			out.Extra.Inc("stall-depth-total", vu.Stall.PerAddrTotal)
			out.Extra.Inc("stall-depth-count", vu.Stall.PerAddrCount)
		}
		if c := out.Extra["stall-depth-count"]; c > 0 {
			out.StallBufPerAddr.Count = c
			out.StallBufPerAddr.Sum = float64(out.Extra["stall-depth-total"])
		}
	}
	if m.wtm != nil {
		out.SilentCommits = m.wtm.SilentCommits
		out.Extra.Inc("el-early-aborts", m.wtm.EarlyAborts)
	}
	if m.eapg != nil {
		out.Extra.Inc("eapg-early-aborts", m.eapg.EarlyAborts)
		out.Extra.Inc("eapg-pauses", m.eapg.Pauses)
		out.Extra.Inc("eapg-broadcasts", m.eapg.Broadcasts)
	}
	return out
}

// transport adapts the crossbar pair to tm.Transport.
type transport struct{ m *machine }

func (t *transport) ToPartition(core, partition, bytes int, deliver func()) {
	t.m.pair.Up.Send(core, partition, bytes, deliver)
}

func (t *transport) ToCore(partition, core, bytes int, deliver func()) {
	t.m.pair.Down.Send(partition, core, bytes, deliver)
}

func (t *transport) BroadcastToCores(partition, bytes int, deliver func(core int)) {
	t.m.pair.Down.Broadcast(partition, bytes, deliver)
}

// memSystem adapts the crossbars + partitions to simt.MemSystem with
// per-line coalescing. Access states and per-line requests are pooled with
// prebuilt callbacks. The crossbar and partition-side scheduling are narrow
// function fields so the same implementation serves the serial machine (one
// shared instance, everything on one engine) and the sharded machine (one
// instance per core, with upSend/downSend crossing shard domains and
// partSched landing on the partition's own engine). Pools are only touched
// from the owning core's context — no locking in either mode.
type memSystem struct {
	amap       mem.AddressMap
	img        *mem.Image
	partitions []*mem.Partition
	upSend     func(core, part, bytes int, deliver func())
	downSend   func(part, core, bytes int, deliver func())
	partSched  func(part int, delay sim.Cycle, fn func())
	accPool    *memAccess
	linePool   *lineReq
}

// newSerialMemSystem wires the memSystem over the serial machine.
func newSerialMemSystem(m *machine) *memSystem {
	return &memSystem{
		amap:       m.amap,
		img:        m.img,
		partitions: m.partitions,
		upSend: func(core, part, bytes int, deliver func()) {
			m.pair.Up.Send(core, part, bytes, deliver)
		},
		downSend: func(part, core, bytes int, deliver func()) {
			m.pair.Down.Send(part, core, bytes, deliver)
		},
		partSched: func(_ int, delay sim.Cycle, fn func()) {
			m.eng.Schedule(delay, fn)
		},
	}
}

// memAccess is one coalesced warp access in flight. Line grouping uses flat
// reusable arrays instead of a map. Accesses usually carry at most WarpWidth
// addresses, but lock-release batches can be larger, so the arrays grow.
type memAccess struct {
	ms          *memSystem
	coreID      int
	isWrite     bool
	addrs, vals []uint64 // caller's slices, valid until done
	loadVals    []uint64
	remaining   int
	done        func([]uint64)
	groupOf     []int32 // addr index -> line-group index
	lines       []uint64
	counts      []int32
	next        *memAccess
}

// lineReq is one coalesced line's round trip: up crossbar, partition access
// delay, data movement, down crossbar.
type lineReq struct {
	ms        *memSystem
	acc       *memAccess
	line      uint64
	part      int
	gi        int
	downBytes int
	upFn      func() // up-crossbar delivery: start the partition access
	accessFn  func() // after the access delay: move data, reply
	downFn    func() // down-crossbar delivery: finish
	next      *lineReq
}

func (ms *memSystem) getAccess() *memAccess {
	acc := ms.accPool
	if acc == nil {
		acc = &memAccess{ms: ms, loadVals: make([]uint64, 0, isa.WarpWidth)}
	} else {
		ms.accPool = acc.next
	}
	return acc
}

func (ms *memSystem) getLineReq() *lineReq {
	lr := ms.linePool
	if lr == nil {
		lr = &lineReq{ms: ms}
		lr.upFn = func() {
			ms := lr.ms
			delay := ms.partitions[lr.part].AccessDelay(lr.line)
			ms.partSched(lr.part, delay, lr.accessFn)
		}
		lr.accessFn = func() {
			acc, ms := lr.acc, lr.ms
			for i := range acc.addrs {
				if acc.groupOf[i] != int32(lr.gi) {
					continue
				}
				if acc.isWrite {
					ms.img.Write(acc.addrs[i], acc.vals[i])
				} else {
					acc.loadVals[i] = ms.img.Read(acc.addrs[i])
				}
			}
			ms.downSend(lr.part, acc.coreID, lr.downBytes, lr.downFn)
		}
		lr.downFn = func() {
			acc, ms := lr.acc, lr.ms
			lr.acc = nil
			lr.next = ms.linePool
			ms.linePool = lr
			acc.remaining--
			if acc.remaining == 0 {
				acc.done(acc.loadVals)
				acc.addrs, acc.vals, acc.done = nil, nil, nil
				acc.next = ms.accPool
				ms.accPool = acc
			}
		}
	} else {
		ms.linePool = lr.next
	}
	return lr
}

func (ms *memSystem) Access(coreID int, isWrite bool, addrs, vals []uint64, done func([]uint64)) {
	acc := ms.getAccess()
	acc.coreID, acc.isWrite = coreID, isWrite
	acc.addrs, acc.vals, acc.done = addrs, vals, done
	if cap(acc.loadVals) < len(addrs) {
		acc.loadVals = make([]uint64, len(addrs))
	} else {
		acc.loadVals = acc.loadVals[:len(addrs)]
		for i := range acc.loadVals {
			acc.loadVals[i] = 0
		}
	}

	// Group by line, first touch first (deterministic issue order); linear
	// scan over the distinct lines seen so far.
	acc.groupOf = acc.groupOf[:0]
	acc.lines = acc.lines[:0]
	acc.counts = acc.counts[:0]
	for _, a := range addrs {
		line := ms.amap.Line(a)
		gi := -1
		for g := range acc.lines {
			if acc.lines[g] == line {
				gi = g
				break
			}
		}
		if gi < 0 {
			gi = len(acc.lines)
			acc.lines = append(acc.lines, line)
			acc.counts = append(acc.counts, 0)
		}
		acc.groupOf = append(acc.groupOf, int32(gi))
		acc.counts[gi]++
	}
	nGroups := len(acc.lines)
	acc.remaining = nGroups

	for gi := 0; gi < nGroups; gi++ {
		lr := ms.getLineReq()
		lr.acc = acc
		lr.line = acc.lines[gi]
		lr.part = ms.amap.Partition(acc.lines[gi])
		lr.gi = gi
		upBytes := tm.HeaderBytes + tm.AddrBytes
		lr.downBytes = tm.HeaderBytes
		if isWrite {
			upBytes += int(acc.counts[gi]) * tm.WordBytes
		} else {
			lr.downBytes += int(acc.counts[gi]) * tm.WordBytes
		}
		ms.upSend(coreID, lr.part, upBytes, lr.upFn)
	}
}

func (ms *memSystem) AtomicCAS(coreID int, addr, compare, swap uint64, done func(old uint64, ok bool)) {
	partID := ms.amap.Partition(addr)
	part := ms.partitions[partID]
	ms.upSend(coreID, partID, tm.HeaderBytes+tm.AddrBytes+2*tm.WordBytes, func() {
		part.AtomicCAS(addr, compare, swap, func(old uint64, ok bool) {
			ms.downSend(partID, coreID, tm.HeaderBytes+tm.WordBytes, func() {
				done(old, ok)
			})
		})
	})
}

func (ms *memSystem) AtomicExch(coreID int, addr, val uint64, done func(old uint64)) {
	partID := ms.amap.Partition(addr)
	part := ms.partitions[partID]
	ms.upSend(coreID, partID, tm.HeaderBytes+tm.AddrBytes+tm.WordBytes, func() {
		part.AtomicExch(addr, val, func(old uint64) {
			ms.downSend(partID, coreID, tm.HeaderBytes+tm.WordBytes, func() {
				done(old)
			})
		})
	})
}

func (ms *memSystem) AtomicAdd(coreID int, addr, delta uint64, done func(old uint64)) {
	partID := ms.amap.Partition(addr)
	part := ms.partitions[partID]
	ms.upSend(coreID, partID, tm.HeaderBytes+tm.AddrBytes+tm.WordBytes, func() {
		part.AtomicAdd(addr, delta, func(old uint64) {
			ms.downSend(partID, coreID, tm.HeaderBytes+tm.WordBytes, func() {
				done(old)
			})
		})
	})
}

// lockStub is the protocol placeholder for pure-lock runs; lock kernels
// contain no transactional ops.
type lockStub struct{}

func (lockStub) Name() string         { return "fglock" }
func (lockStub) EagerIntraWarp() bool { return false }
func (lockStub) Begin(*tm.WarpTx)     { panic("fglock: transactional op in lock kernel") }
func (lockStub) Access(*tm.WarpTx, bool, []tm.LaneAccess, func([]tm.AccessResult)) {
	panic("fglock: transactional op in lock kernel")
}
func (lockStub) Commit(*tm.WarpTx, isa.LaneMask, isa.LaneMask, func(tm.CommitOutcome)) {
	panic("fglock: transactional op in lock kernel")
}
