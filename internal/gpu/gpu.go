// Package gpu assembles the full simulated machine — SIMT cores, crossbars,
// memory partitions, and a transactional-memory protocol — and runs a
// workload kernel on it, producing the metrics the experiment harness
// consumes.
package gpu

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"getm/internal/core"
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/policy"
	"getm/internal/sim"
	"getm/internal/simt"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/trace"
	"getm/internal/warptm"
	"getm/internal/xbar"
)

// Protocol selects the synchronization mechanism for a run.
type Protocol string

// Supported protocols.
const (
	// ProtoGETM is the paper's contribution: eager conflict detection with
	// lazy versioning.
	ProtoGETM Protocol = "getm"
	// ProtoWarpTM is the lazy-lazy baseline with value-based validation.
	ProtoWarpTM Protocol = "warptm"
	// ProtoWarpTMEL is the idealized eager-lazy WarpTM variant (§III).
	ProtoWarpTMEL Protocol = "warptm-el"
	// ProtoEAPG is the idealized EarlyAbort/Pause-n-Go baseline.
	ProtoEAPG Protocol = "eapg"
	// ProtoFGLock runs the hand-tuned fine-grained lock version.
	ProtoFGLock Protocol = "fglock"
)

// Config describes one machine configuration.
type Config struct {
	Protocol Protocol
	// Policy, when non-zero, selects the protocol-matrix point directly and
	// takes precedence over Protocol's name-based preset lookup (the four
	// presets reproduce the legacy protocols bit-for-bit; see
	// internal/policy). Excluded from JSON so existing store content
	// addresses are unchanged — store.Key canonicalizes the policy into the
	// Protocol name instead.
	Policy     policy.Policy `json:"-"`
	Cores      int
	Partitions int
	Core       simt.Config
	Xbar       xbar.Config
	Partition  mem.PartitionConfig
	GETM       core.Config
	WarpTM     warptm.Config
	LineBytes  int
	Seed       uint64
	// Record enables committed-transaction recording for the
	// serializability checker (integration tests).
	Record bool
	// MaxCycles aborts a run that exceeds this simulated length (0 = none).
	// Exceeding it is an error — it is the runaway/deadlock backstop.
	MaxCycles sim.Cycle
	// CycleBudget stops a run after this many simulated cycles (0 = none).
	// Unlike MaxCycles, hitting the budget is not an error: the run returns
	// partial metrics with Result.Truncated set. Use it to bound the cost of
	// exploratory runs.
	CycleBudget sim.Cycle
	// CancelChunk bounds cancellation latency: when RunContext is given a
	// cancellable context and no telemetry sampling is active, the engine
	// runs in chunks of this many cycles and polls the context at each
	// boundary (0 = DefaultCancelChunk). Chunked stepping is cycle-identical
	// to a single run (sim.Engine.RunChunked), so the setting never changes
	// results — only how promptly a cancel takes effect.
	CancelChunk sim.Cycle
	// Trace, when non-nil, enables the machine-wide event recorder and
	// interval sampler (internal/trace); the recorder is returned in
	// Result.Trace. A nil Trace costs one pointer compare per would-be
	// emission — nothing is allocated.
	Trace *trace.Options
	// Shards > 0 runs the machine on the domain-partitioned parallel engine
	// with up to Shards worker goroutines. Sharded results are deterministic
	// and identical for every Shards >= 1, but form a distinct semantics
	// class from Shards == 0 (see machine_sharded.go and DESIGN.md §10).
	// Configurations the sharded machine cannot host — protocols other than
	// getm/fglock, Record, Trace — silently fall back to the serial engine.
	Shards int
}

// DefaultConfig mirrors Table II's 15-core GTX480-like setup.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:   p,
		Cores:      15,
		Partitions: 6,
		Core:       simt.DefaultConfig(),
		Xbar:       xbar.DefaultConfig(0, 0),
		Partition:  mem.DefaultPartitionConfig(),
		GETM:       core.DefaultConfig(),
		WarpTM:     warptm.DefaultConfig(),
		LineBytes:  128,
		Seed:       1,
		MaxCycles:  200_000_000,
	}
}

// ScaledConfig returns the 56-core, 8-partition, 4MB-LLC configuration used
// by the paper's scalability study (Fig 17). Following §VI-A, WarpTM's
// recency (TCD) filter and GETM's precise metadata table are doubled.
func ScaledConfig(p Protocol) Config {
	cfg := DefaultConfig(p)
	cfg.Cores = 56
	cfg.Partitions = 8
	cfg.Partition.LLCBytes = (4 << 20) / 8 // 4MB total across 8 partitions
	cfg.WarpTM.TCDEntries *= 2
	cfg.GETM.PreciseEntries *= 2
	return cfg
}

// Kernel is a runnable workload: one program per warp's worth of threads,
// memory initialization, and a post-run semantic verifier.
type Kernel struct {
	Name     string
	Programs []*isa.Program
	Init     func(img *mem.Image)
	Verify   func(img *mem.Image) error
}

// Result carries a run's outputs.
type Result struct {
	Metrics *stats.Metrics
	// Committed and InitialImage are populated when cfg.Record is set.
	Committed    []tm.CommittedTx
	InitialImage *mem.Image
	FinalImage   *mem.Image
	// Trace holds the event recorder when cfg.Trace was set (export it with
	// trace.Export).
	Trace *trace.Recorder
	// Truncated marks a run cut short — by context cancellation or by
	// Config.CycleBudget — at cycle TruncatedAt. Metrics are the partial
	// tallies up to that point; kernel verification, deadlock detection, and
	// protocol invariant checks are skipped (the machine was mid-flight).
	// Truncated results must never be cached as if complete.
	Truncated   bool
	TruncatedAt sim.Cycle
}

// ErrCanceled is returned (wrapped) by RunContext when the context is
// cancelled or its deadline expires before the kernel completes. The
// context's own cause is joined in, so errors.Is also matches
// context.Canceled / context.DeadlineExceeded as appropriate.
var ErrCanceled = errors.New("run canceled")

// DefaultCancelChunk is the engine-chunk size used to poll a cancellable
// context when Config.CancelChunk is 0: cancellation takes effect within
// this many simulated cycles.
const DefaultCancelChunk sim.Cycle = 1 << 16

// Run executes the kernel on the configured machine.
func Run(cfg Config, k *Kernel) (*Result, error) {
	return RunContext(context.Background(), cfg, k)
}

// RunContext executes the kernel, honouring ctx: a cancel or deadline stops
// the engine at the next chunk boundary (at most Config.CancelChunk cycles
// later, or the sampling interval when telemetry is active) and returns the
// partial metrics tagged Truncated alongside an error wrapping ErrCanceled.
// Chunked stepping is cycle-identical to an unchunked run, so passing a
// cancellable context that never fires changes nothing about the result.
func RunContext(ctx context.Context, cfg Config, k *Kernel) (*Result, error) {
	if len(k.Programs) == 0 {
		return nil, fmt.Errorf("gpu: kernel %q has no programs", k.Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("gpu: kernel %q: %w", k.Name, errors.Join(ErrCanceled, err))
	}
	if !cfg.Policy.IsZero() {
		if err := cfg.Policy.Validate(); err != nil {
			return nil, fmt.Errorf("gpu: kernel %q: %w", k.Name, err)
		}
		// Keep the name-based paths (sharding class, diagnostics) coherent
		// with the effective matrix point.
		if name, ok := policy.PresetName(cfg.Policy); ok {
			cfg.Protocol = Protocol(name)
		} else {
			cfg.Protocol = Protocol("policy:" + cfg.Policy.Canonical())
		}
	}
	if cfg.Shards > 0 && Shardable(cfg) {
		return runShardedContext(ctx, cfg, k)
	}
	eng := sim.NewEngine()
	img := mem.NewImage()
	if k.Init != nil {
		k.Init(img)
	}
	var initial *mem.Image
	if cfg.Record {
		initial = img.Snapshot()
	}

	var rec *trace.Recorder
	if cfg.Trace != nil {
		rec = trace.NewRecorder(eng, *cfg.Trace)
	}
	m := newMachine(eng, img, cfg, rec)

	// Round-robin program dispatch: each warp slot pulls the next pending
	// program when it retires one.
	nextProg := 0
	dispatch := func(coreID, slot int) *isa.Program {
		if nextProg >= len(k.Programs) {
			return nil
		}
		p := k.Programs[nextProg]
		nextProg++
		return p
	}

	rng := sim.NewRNG(cfg.Seed)
	cores := make([]*simt.Core, cfg.Cores)
	for i := range cores {
		cores[i] = simt.NewCore(i, eng, cfg.Core, m.protocol, m.memsys, rng.Fork(uint64(1000+i)), dispatch)
		if rec != nil {
			cores[i].SetTrace(rec)
		}
	}
	if aa, ok := m.protocol.(tm.AsyncAborter); ok {
		aa.SetAbortSink(func(n tm.AbortNotice) {
			c := n.GWID / cfg.Core.WarpsPerCore
			if c >= 0 && c < len(cores) {
				cores[c].AsyncAbort(n)
			}
		})
	}

	if rec != nil {
		m.registerProbes(rec, cores)
	}

	for _, c := range cores {
		c.Start()
	}
	// The budget is a softer MaxCycles: it lowers the run limit, and hitting
	// it yields a truncated result instead of an error.
	limit := cfg.MaxCycles
	budgeted := cfg.CycleBudget != 0 && (limit == 0 || cfg.CycleBudget < limit)
	if budgeted {
		limit = cfg.CycleBudget
	}

	// Chunk the engine loop when anything needs to observe the run in
	// flight: the telemetry sampler (chunk = sampling interval) or a
	// cancellable context (chunk = CancelChunk). Chunked stepping processes
	// events in exactly the order a single Run would (sim.Engine.RunChunked),
	// so chunking never changes metrics — only cancel latency and sample
	// cadence.
	sampleEvery := sim.Cycle(0)
	if rec != nil {
		sampleEvery = sim.Cycle(rec.SampleEvery())
	}
	cancellable := ctx.Done() != nil
	chunk := sampleEvery
	if chunk == 0 && cancellable {
		chunk = cfg.CancelChunk
		if chunk == 0 {
			chunk = DefaultCancelChunk
		}
	}
	var end sim.Cycle
	canceled := false
	if chunk == 0 {
		end = eng.Run(limit)
	} else {
		end = eng.RunChunked(limit, chunk, func(now sim.Cycle) bool {
			if sampleEvery > 0 {
				rec.TakeSample(uint64(now))
			}
			if cancellable && ctx.Err() != nil {
				canceled = true
				return false
			}
			return true
		})
		if sampleEvery > 0 {
			// Final partial interval (TakeSample skips duplicate boundaries).
			rec.TakeSample(uint64(end))
		}
	}

	if canceled {
		pm := m.collect(cores, end)
		pm.Truncated = true
		res := &Result{Metrics: pm, Trace: rec, Truncated: true, TruncatedAt: end}
		return res, fmt.Errorf("gpu: kernel %q canceled at cycle %d: %w",
			k.Name, end, errors.Join(ErrCanceled, context.Cause(ctx)))
	}
	if budgeted && end >= limit && eng.Pending() > 0 {
		pm := m.collect(cores, end)
		pm.Truncated = true
		return &Result{Metrics: pm, Trace: rec, Truncated: true, TruncatedAt: end}, nil
	}
	if cfg.MaxCycles != 0 && end >= cfg.MaxCycles {
		return nil, fmt.Errorf("gpu: kernel %q exceeded %d cycles", k.Name, cfg.MaxCycles)
	}
	var stuck []string
	for _, c := range cores {
		if !c.AllDone() {
			stuck = append(stuck, c.StuckWarps()...)
		}
	}
	if len(stuck) > 0 {
		return nil, fmt.Errorf("gpu: kernel %q deadlocked:\n%s", k.Name, strings.Join(stuck, "\n"))
	}
	if err := m.checkInvariants(); err != nil {
		return nil, fmt.Errorf("gpu: kernel %q: %w", k.Name, err)
	}
	if k.Verify != nil {
		if err := k.Verify(img); err != nil {
			return nil, fmt.Errorf("gpu: kernel %q verification failed: %w", k.Name, err)
		}
	}

	res := &Result{Metrics: m.collect(cores, end), Trace: rec}
	if cfg.Record {
		res.Committed = m.committed()
		res.InitialImage = initial
		res.FinalImage = img
	}
	return res, nil
}
