// Package gpu assembles the full simulated machine — SIMT cores, crossbars,
// memory partitions, and a transactional-memory protocol — and runs a
// workload kernel on it, producing the metrics the experiment harness
// consumes.
package gpu

import (
	"fmt"
	"strings"

	"getm/internal/core"
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/simt"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/warptm"
	"getm/internal/xbar"
)

// Protocol selects the synchronization mechanism for a run.
type Protocol string

// Supported protocols.
const (
	// ProtoGETM is the paper's contribution: eager conflict detection with
	// lazy versioning.
	ProtoGETM Protocol = "getm"
	// ProtoWarpTM is the lazy-lazy baseline with value-based validation.
	ProtoWarpTM Protocol = "warptm"
	// ProtoWarpTMEL is the idealized eager-lazy WarpTM variant (§III).
	ProtoWarpTMEL Protocol = "warptm-el"
	// ProtoEAPG is the idealized EarlyAbort/Pause-n-Go baseline.
	ProtoEAPG Protocol = "eapg"
	// ProtoFGLock runs the hand-tuned fine-grained lock version.
	ProtoFGLock Protocol = "fglock"
)

// Config describes one machine configuration.
type Config struct {
	Protocol   Protocol
	Cores      int
	Partitions int
	Core       simt.Config
	Xbar       xbar.Config
	Partition  mem.PartitionConfig
	GETM       core.Config
	WarpTM     warptm.Config
	LineBytes  int
	Seed       uint64
	// Record enables committed-transaction recording for the
	// serializability checker (integration tests).
	Record bool
	// MaxCycles aborts a run that exceeds this simulated length (0 = none).
	MaxCycles sim.Cycle
}

// DefaultConfig mirrors Table II's 15-core GTX480-like setup.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:   p,
		Cores:      15,
		Partitions: 6,
		Core:       simt.DefaultConfig(),
		Xbar:       xbar.DefaultConfig(0, 0),
		Partition:  mem.DefaultPartitionConfig(),
		GETM:       core.DefaultConfig(),
		WarpTM:     warptm.DefaultConfig(),
		LineBytes:  128,
		Seed:       1,
		MaxCycles:  200_000_000,
	}
}

// ScaledConfig returns the 56-core, 8-partition, 4MB-LLC configuration used
// by the paper's scalability study (Fig 17). Following §VI-A, WarpTM's
// recency (TCD) filter and GETM's precise metadata table are doubled.
func ScaledConfig(p Protocol) Config {
	cfg := DefaultConfig(p)
	cfg.Cores = 56
	cfg.Partitions = 8
	cfg.Partition.LLCBytes = (4 << 20) / 8 // 4MB total across 8 partitions
	cfg.WarpTM.TCDEntries *= 2
	cfg.GETM.PreciseEntries *= 2
	return cfg
}

// Kernel is a runnable workload: one program per warp's worth of threads,
// memory initialization, and a post-run semantic verifier.
type Kernel struct {
	Name     string
	Programs []*isa.Program
	Init     func(img *mem.Image)
	Verify   func(img *mem.Image) error
}

// Result carries a run's outputs.
type Result struct {
	Metrics *stats.Metrics
	// Committed and InitialImage are populated when cfg.Record is set.
	Committed    []tm.CommittedTx
	InitialImage *mem.Image
	FinalImage   *mem.Image
}

// Run executes the kernel on the configured machine.
func Run(cfg Config, k *Kernel) (*Result, error) {
	if len(k.Programs) == 0 {
		return nil, fmt.Errorf("gpu: kernel %q has no programs", k.Name)
	}
	eng := sim.NewEngine()
	img := mem.NewImage()
	if k.Init != nil {
		k.Init(img)
	}
	var initial *mem.Image
	if cfg.Record {
		initial = img.Snapshot()
	}

	m := newMachine(eng, img, cfg)

	// Round-robin program dispatch: each warp slot pulls the next pending
	// program when it retires one.
	nextProg := 0
	dispatch := func(coreID, slot int) *isa.Program {
		if nextProg >= len(k.Programs) {
			return nil
		}
		p := k.Programs[nextProg]
		nextProg++
		return p
	}

	rng := sim.NewRNG(cfg.Seed)
	cores := make([]*simt.Core, cfg.Cores)
	for i := range cores {
		cores[i] = simt.NewCore(i, eng, cfg.Core, m.protocol, m.memsys, rng.Fork(uint64(1000+i)), dispatch)
	}
	if aa, ok := m.protocol.(tm.AsyncAborter); ok {
		aa.SetAbortSink(func(n tm.AbortNotice) {
			c := n.GWID / cfg.Core.WarpsPerCore
			if c >= 0 && c < len(cores) {
				cores[c].AsyncAbort(n)
			}
		})
	}

	for _, c := range cores {
		c.Start()
	}
	end := eng.Run(cfg.MaxCycles)
	if cfg.MaxCycles != 0 && end >= cfg.MaxCycles {
		return nil, fmt.Errorf("gpu: kernel %q exceeded %d cycles", k.Name, cfg.MaxCycles)
	}
	var stuck []string
	for _, c := range cores {
		if !c.AllDone() {
			stuck = append(stuck, c.StuckWarps()...)
		}
	}
	if len(stuck) > 0 {
		return nil, fmt.Errorf("gpu: kernel %q deadlocked:\n%s", k.Name, strings.Join(stuck, "\n"))
	}
	if err := m.checkInvariants(); err != nil {
		return nil, fmt.Errorf("gpu: kernel %q: %w", k.Name, err)
	}
	if k.Verify != nil {
		if err := k.Verify(img); err != nil {
			return nil, fmt.Errorf("gpu: kernel %q verification failed: %w", k.Name, err)
		}
	}

	res := &Result{Metrics: m.collect(cores, end)}
	if cfg.Record {
		res.Committed = m.committed()
		res.InitialImage = initial
		res.FinalImage = img
	}
	return res, nil
}
