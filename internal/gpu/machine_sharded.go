package gpu

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"getm/internal/core"
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/policy"
	"getm/internal/sim"
	"getm/internal/simt"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/xbar"
)

// Sharded execution (ISSUE 6 tentpole). The machine is partitioned along its
// natural latency boundary — the 5-cycle crossbars — into one shard domain
// per SIMT core and one per memory partition. Each domain runs its events on
// a private sim.Engine under the ShardedEngine's bounded-slack window
// scheduler; the only cross-domain traffic is crossbar messages (and the
// rollover coordinator's ring messages), all of which carry at least one
// quantum of latency.
//
// Results are deterministic and identical for every -shards value >= 1
// (worker count is physical, not semantic), but they are a distinct
// semantics class from the serial engine: the serial machine couples domains
// through same-cycle global scheduling order in three places no parallel
// execution can reproduce — destination-port crossbar reservations made at
// send time in global send order, dynamic retire-order program dispatch, and
// the synchronous rollover drain. The sharded machine replaces those with
// arrival-order port reservations, static per-core dispatch queues, and a
// message-driven rollover coordinator. DESIGN.md §10 has the full argument.
//
// Only GETM and fglock are shardable: WarpTM's global commit-id allocation
// and in-order retirement, and EAPG's broadcasts, are core-coupling by
// design (see shardable).

// Shardable reports whether cfg can run on the sharded machine; configs that
// cannot silently fall back to the serial engine regardless of Shards.
// Callers that key results by configuration (the store) use it to decide
// which semantics class a run with Shards > 0 actually executed.
func Shardable(cfg Config) bool {
	if !cfg.Policy.IsZero() && cfg.Policy != policy.GETM() {
		// Only the exact GETM preset keeps the sharded machine's semantics:
		// the ring-arbitrated and first-writer-wins matrix points route
		// commit acks through the serial transport, so they run serially.
		return false
	}
	return (cfg.Protocol == ProtoGETM || cfg.Protocol == ProtoFGLock) &&
		!cfg.Record && cfg.Trace == nil && cfg.Xbar.Latency > 0
}

// shardedMachine mirrors machine for the domain-partitioned assembly.
type shardedMachine struct {
	cfg        Config
	se         *sim.ShardedEngine
	img        *mem.Image
	amap       mem.AddressMap
	pair       *xbar.ShardedPair
	partitions []*mem.Partition

	// GETM state: one protocol instance per core (each confined to its
	// domain), shared VU/CU slices (each confined to its partition's domain).
	protos []*core.Protocol
	vus    []*core.VU
	cus    []*core.CU
	stalls []*core.OccTracker // per partition (a shared tracker would race)

	memsys []*memSystem // per core
	coord  *rolloverCoord
}

func (m *shardedMachine) coreDom(c int) int { return c }
func (m *shardedMachine) partDom(p int) int { return m.cfg.Cores + p }

// newShardedMachine assembles the domain-partitioned machine. img must
// already be in shared mode.
func newShardedMachine(se *sim.ShardedEngine, img *mem.Image, cfg Config) *shardedMachine {
	m := &shardedMachine{
		cfg:  cfg,
		se:   se,
		img:  img,
		amap: mem.AddressMap{Partitions: cfg.Partitions, LineBytes: cfg.LineBytes},
	}
	coreDoms := make([]int, cfg.Cores)
	partDoms := make([]int, cfg.Partitions)
	for i := range coreDoms {
		coreDoms[i] = m.coreDom(i)
	}
	for p := range partDoms {
		partDoms[p] = m.partDom(p)
	}
	m.pair = xbar.NewShardedPair(se, cfg.Cores, cfg.Partitions, cfg.Xbar, coreDoms, partDoms)
	for p := 0; p < cfg.Partitions; p++ {
		m.partitions = append(m.partitions, mem.NewPartition(p, se.Domain(m.partDom(p)), img, cfg.Partition))
	}
	for c := 0; c < cfg.Cores; c++ {
		m.memsys = append(m.memsys, &memSystem{
			amap:       m.amap,
			img:        img,
			partitions: m.partitions,
			upSend: func(core, part, bytes int, deliver func()) {
				m.pair.Up.Send(core, part, bytes, deliver)
			},
			downSend: func(part, core, bytes int, deliver func()) {
				m.pair.Down.Send(part, core, bytes, deliver)
			},
			partSched: func(part int, delay sim.Cycle, fn func()) {
				se.Domain(m.partDom(part)).Schedule(delay, fn)
			},
		})
	}

	switch cfg.Protocol {
	case ProtoGETM:
		rng := sim.NewRNG(cfg.Seed ^ 0xC0FFEE)
		for p, part := range m.partitions {
			vu := core.NewVU(cfg.GETM, se.Domain(m.partDom(p)), part,
				cfg.GETM.PreciseEntries/cfg.Partitions, cfg.GETM.ApproxEntries/cfg.Partitions,
				rng.Fork(uint64(p)))
			tracker := &core.OccTracker{}
			vu.Stall.SetTracker(tracker)
			m.stalls = append(m.stalls, tracker)
			m.vus = append(m.vus, vu)
			m.cus = append(m.cus, core.NewCU(cfg.GETM, se.Domain(m.partDom(p)), part, vu))
		}
		trans := &shardedTransport{m: m}
		for c := 0; c < cfg.Cores; c++ {
			p := core.NewProtocol(cfg.GETM, se.Domain(m.coreDom(c)), m.amap, trans, m.vus, m.cus)
			// Commit-log acks hop back from the commit unit's domain to this
			// core's over the down crossbar's latency.
			p.AckHop = func(part, core int, fn func()) {
				se.Send(m.partDom(part), m.coreDom(core), cfg.Xbar.Latency, fn)
			}
			m.protos = append(m.protos, p)
		}
		m.coord = newRolloverCoord(m)
	case ProtoFGLock:
		// lockStub is stateless; nothing to build.
	default:
		panic(fmt.Sprintf("gpu: protocol %q is not shardable", cfg.Protocol))
	}
	return m
}

// protocolFor returns core c's tm.Protocol.
func (m *shardedMachine) protocolFor(c int) tm.Protocol {
	if m.cfg.Protocol == ProtoFGLock {
		return lockStub{}
	}
	return m.protos[c]
}

// checkInvariants mirrors machine.checkInvariants (post-run, single thread).
func (m *shardedMachine) checkInvariants() error {
	if len(m.protos) > 0 {
		locked := 0
		stalled := 0
		for _, vu := range m.vus {
			locked += vu.Meta.LockedEntries()
			stalled += vu.Stall.Occupancy()
		}
		if locked != 0 {
			return fmt.Errorf("%d write reservations leaked", locked)
		}
		if stalled != 0 {
			return fmt.Errorf("%d requests stuck in stall buffers", stalled)
		}
	}
	return nil
}

// collect mirrors machine.collect for the sharded assembly. One deliberate
// metric deviation: StallBufMaxOccupancy is the sum of per-partition maxima
// rather than the maximum concurrent total — a GPU-wide concurrent total is
// exactly the kind of same-cycle global observation sharding removes.
func (m *shardedMachine) collect(cores []*simt.Core, end sim.Cycle) *stats.Metrics {
	out := stats.NewMetrics()
	out.TotalCycles = uint64(end)
	for _, c := range cores {
		out.TxExecCycles += c.Stats.TxExecCycles
		out.TxWaitCycles += c.Stats.TxWaitCycles
		out.Commits += c.Stats.Commits
		out.Aborts += c.Stats.Aborts
		out.AbortsByCause.Merge(c.Stats.AbortsByCause)
		out.Extra.Inc("instructions", c.Stats.Instructions)
		out.Extra.Inc("tx-attempts", c.Stats.TxAttempts)
		out.Extra.Inc("tx-lane-attempts", c.Stats.TxLaneAttempts)
	}
	out.XbarUpBytes, out.XbarDownBytes = m.pair.TrafficBytes()
	for _, p := range m.partitions {
		out.Extra.Inc("llc-hits", p.LLC.Hits)
		out.Extra.Inc("llc-misses", p.LLC.Misses)
		out.Extra.Inc("atomics", p.AtomicsServed)
	}
	if len(m.protos) > 0 {
		var stallMax uint64
		for _, tr := range m.stalls {
			stallMax += uint64(tr.Max)
		}
		out.StallBufMaxOccupancy = stallMax
		out.Extra.Inc("rollovers", m.coord.rounds)
		for _, vu := range m.vus {
			out.MetaAccessCycles.Merge(vu.AccessCycles)
			out.Extra.Inc("vu-requests", vu.Requests)
			out.Extra.Inc("vu-queued", vu.Queued)
			out.Extra.Inc("meta-overflows", vu.Overflows)
			out.Extra.Inc("meta-evictions", vu.Meta.Evictions)
			out.Extra.Inc("meta-stashed", vu.Meta.StashedEntries)
			out.Extra.Inc("stall-enqueues", vu.Stall.EnqueueCount)
			out.Extra.Inc("stall-rejects", vu.Stall.RejectedFull)
			out.Extra.Inc("stall-depth-total", vu.Stall.PerAddrTotal)
			out.Extra.Inc("stall-depth-count", vu.Stall.PerAddrCount)
		}
		if c := out.Extra["stall-depth-count"]; c > 0 {
			out.StallBufPerAddr.Count = c
			out.StallBufPerAddr.Sum = float64(out.Extra["stall-depth-total"])
		}
	}
	return out
}

// shardedTransport adapts the sharded crossbar pair to tm.Transport.
type shardedTransport struct{ m *shardedMachine }

func (t *shardedTransport) ToPartition(core, partition, bytes int, deliver func()) {
	t.m.pair.Up.Send(core, partition, bytes, deliver)
}

func (t *shardedTransport) ToCore(partition, core, bytes int, deliver func()) {
	t.m.pair.Down.Send(partition, core, bytes, deliver)
}

func (t *shardedTransport) BroadcastToCores(partition, bytes int, deliver func(core int)) {
	t.m.pair.Down.Broadcast(partition, bytes, deliver)
}

// shardedDispatch deals programs to per-core queues up front: the first
// Cores×WarpsPerCore programs fill exactly as the serial machine's initial
// Start pass (core-major, slot order), and the remainder is dealt round-robin
// one program per core. The serial machine instead refills dynamically in
// retire order — a global ordering only a serial engine can observe — so this
// is one of the sharded semantics-class differences.
func shardedDispatch(cfg Config, programs []*isa.Program) func(coreID, slot int) *isa.Program {
	queues := make([][]*isa.Program, cfg.Cores)
	i := 0
	for c := 0; c < cfg.Cores && i < len(programs); c++ {
		for s := 0; s < cfg.Core.WarpsPerCore && i < len(programs); s++ {
			queues[c] = append(queues[c], programs[i])
			i++
		}
	}
	for c := 0; i < len(programs); i, c = i+1, (c+1)%cfg.Cores {
		queues[c] = append(queues[c], programs[i])
	}
	return func(coreID, slot int) *isa.Program {
		q := queues[coreID]
		if len(q) == 0 {
			return nil
		}
		queues[coreID] = q[1:]
		return q[0]
	}
}

// --- rollover coordinator ---------------------------------------------------

// shardRingHop mirrors core.ringHopLatency for the coordinator's message
// delays (the VU ring hop cost, cycles).
const shardRingHop sim.Cycle = 10

// rolloverCoord replaces the serial machine's synchronous rollover state
// machine with ring-delay messages between shard domains: a VU high-water
// trigger travels to the coordinator (which lives in partition 0's domain),
// the coordinator closes every core's admission gate and waits for per-core
// idle reports, then commands the metadata flush on every partition and the
// clock reset/resume on every core.
type rolloverCoord struct {
	m *shardedMachine
	// Coordinator-domain state (partition 0's domain).
	active   bool
	idleLeft int
	rounds   uint64
	// triggered[p] is owned by partition p's domain and suppresses duplicate
	// trigger messages until the flush clears it.
	triggered []bool
}

func newRolloverCoord(m *shardedMachine) *rolloverCoord {
	rc := &rolloverCoord{m: m, triggered: make([]bool, m.cfg.Partitions)}
	coordDom := m.partDom(0)
	ringDelay := sim.Cycle(2*m.cfg.Partitions) * shardRingHop
	for p, vu := range m.vus {
		p := p
		vu.SetHighWaterHook(func() {
			if rc.triggered[p] {
				return
			}
			rc.triggered[p] = true
			rc.m.se.Send(rc.m.partDom(p), coordDom, ringDelay, rc.begin)
		})
	}
	return rc
}

// begin runs in the coordinator's domain: close every core's gate and wait
// for idle reports.
func (rc *rolloverCoord) begin() {
	if rc.active {
		return
	}
	rc.active = true
	rc.idleLeft = rc.m.cfg.Cores
	coordDom := rc.m.partDom(0)
	for c := 0; c < rc.m.cfg.Cores; c++ {
		c := c
		rc.m.se.Send(coordDom, rc.m.coreDom(c), shardRingHop, func() {
			rc.m.protos[c].BeginDrainRemote(func() {
				rc.m.se.Send(rc.m.coreDom(c), coordDom, shardRingHop, rc.coreIdle)
			})
		})
	}
}

// coreIdle runs in the coordinator's domain once per drained core.
func (rc *rolloverCoord) coreIdle() {
	rc.idleLeft--
	if rc.idleLeft > 0 {
		return
	}
	coordDom := rc.m.partDom(0)
	for p := range rc.m.vus {
		p := p
		rc.m.se.Send(coordDom, rc.m.partDom(p), shardRingHop, func() {
			vu := rc.m.vus[p]
			if vu.Stall.Occupancy() != 0 {
				panic("gpu: rollover flush with occupied stall buffer")
			}
			vu.Meta.Flush()
			rc.triggered[p] = false
		})
	}
	for c := 0; c < rc.m.cfg.Cores; c++ {
		c := c
		rc.m.se.Send(coordDom, rc.m.coreDom(c), shardRingHop, func() {
			rc.m.protos[c].ResumeFromDrain()
		})
	}
	rc.rounds++
	// Reopen the coordinator only after the flush/resume wave has landed, so
	// a re-trigger cannot interleave with an in-flight round.
	rc.m.se.Send(coordDom, coordDom, 2*shardRingHop, func() { rc.active = false })
}

// runShardedContext is RunContext's body for the sharded machine. It mirrors
// the serial flow minus the features shardable() excludes (tracing,
// committed-transaction recording).
func runShardedContext(ctx context.Context, cfg Config, k *Kernel) (*Result, error) {
	se := sim.NewSharded(cfg.Cores+cfg.Partitions, cfg.Xbar.Latency)
	defer se.Close()
	se.SetWorkers(cfg.Shards)

	img := mem.NewImage()
	if k.Init != nil {
		k.Init(img)
	}
	img.SetShared()

	m := newShardedMachine(se, img, cfg)
	dispatch := shardedDispatch(cfg, k.Programs)
	rng := sim.NewRNG(cfg.Seed)
	cores := make([]*simt.Core, cfg.Cores)
	for i := range cores {
		cores[i] = simt.NewCore(i, se.Domain(m.coreDom(i)), cfg.Core, m.protocolFor(i),
			m.memsys[i], rng.Fork(uint64(1000+i)), dispatch)
	}
	for _, c := range cores {
		c.Start()
	}

	limit := cfg.MaxCycles
	budgeted := cfg.CycleBudget != 0 && (limit == 0 || cfg.CycleBudget < limit)
	if budgeted {
		limit = cfg.CycleBudget
	}
	var chunk sim.Cycle
	cancellable := ctx.Done() != nil
	if cancellable {
		chunk = cfg.CancelChunk
		if chunk == 0 {
			chunk = DefaultCancelChunk
		}
	}
	var end sim.Cycle
	canceled := false
	if chunk == 0 {
		end = se.Run(limit)
	} else {
		end = se.RunChunked(limit, chunk, func(now sim.Cycle) bool {
			if ctx.Err() != nil {
				canceled = true
				return false
			}
			return true
		})
	}

	if canceled {
		pm := m.collect(cores, end)
		pm.Truncated = true
		res := &Result{Metrics: pm, Truncated: true, TruncatedAt: end}
		return res, fmt.Errorf("gpu: kernel %q canceled at cycle %d: %w",
			k.Name, end, errors.Join(ErrCanceled, context.Cause(ctx)))
	}
	if budgeted && end >= limit && se.Pending() > 0 {
		pm := m.collect(cores, end)
		pm.Truncated = true
		return &Result{Metrics: pm, Truncated: true, TruncatedAt: end}, nil
	}
	if cfg.MaxCycles != 0 && end >= cfg.MaxCycles {
		return nil, fmt.Errorf("gpu: kernel %q exceeded %d cycles", k.Name, cfg.MaxCycles)
	}
	var stuck []string
	for _, c := range cores {
		if !c.AllDone() {
			stuck = append(stuck, c.StuckWarps()...)
		}
	}
	if len(stuck) > 0 {
		return nil, fmt.Errorf("gpu: kernel %q deadlocked:\n%s", k.Name, strings.Join(stuck, "\n"))
	}
	if err := m.checkInvariants(); err != nil {
		return nil, fmt.Errorf("gpu: kernel %q: %w", k.Name, err)
	}
	if k.Verify != nil {
		if err := k.Verify(img); err != nil {
			return nil, fmt.Errorf("gpu: kernel %q verification failed: %w", k.Name, err)
		}
	}
	return &Result{Metrics: m.collect(cores, end)}, nil
}
