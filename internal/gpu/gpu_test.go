package gpu_test

import (
	"testing"

	. "getm/internal/gpu"
	"getm/internal/tm"
	"getm/internal/workloads"
)

// smallConfig shrinks the machine for fast integration tests.
func smallConfig(p Protocol) Config {
	cfg := DefaultConfig(p)
	cfg.Cores = 4
	cfg.Partitions = 2
	cfg.Core.WarpsPerCore = 8
	cfg.Record = true
	return cfg
}

func smallParams() workloads.Params {
	p := workloads.DefaultParams()
	p.Scale = 0.05
	return p
}

func runSmall(t *testing.T, proto Protocol, bench string) *Result {
	t.Helper()
	variant := workloads.TM
	if proto == ProtoFGLock {
		variant = workloads.FGLock
	}
	k, err := workloads.Build(bench, variant, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(smallConfig(proto), k)
	if err != nil {
		t.Fatalf("%s on %s: %v", bench, proto, err)
	}
	return res
}

func TestAllProtocolsAllBenchmarks(t *testing.T) {
	for _, bench := range workloads.Names() {
		for _, proto := range []Protocol{ProtoGETM, ProtoWarpTM, ProtoWarpTMEL, ProtoEAPG, ProtoFGLock} {
			bench, proto := bench, proto
			t.Run(bench+"/"+string(proto), func(t *testing.T) {
				res := runSmall(t, proto, bench)
				if res.Metrics.TotalCycles == 0 {
					t.Fatal("no cycles simulated")
				}
				if proto != ProtoFGLock && res.Metrics.Commits == 0 {
					t.Fatal("no transactions committed")
				}
			})
		}
	}
}

func TestSerializabilityEndToEnd(t *testing.T) {
	// The replay checker must accept every TM protocol's history on a
	// contended workload.
	for _, proto := range []Protocol{ProtoGETM, ProtoWarpTM, ProtoWarpTMEL} {
		proto := proto
		for _, bench := range []string{"ht-h", "atm", "ap"} {
			bench := bench
			t.Run(bench+"/"+string(proto), func(t *testing.T) {
				res := runSmall(t, proto, bench)
				if len(res.Committed) == 0 {
					t.Fatal("no committed transactions recorded")
				}
				if err := tm.CheckSerializable(res.InitialImage, nil, res.Committed); err != nil {
					t.Fatalf("serializability violated: %v", err)
				}
			})
		}
	}
}

func TestConcurrencyThrottle(t *testing.T) {
	cfg := smallConfig(ProtoWarpTM)
	cfg.Core.MaxTxWarps = 1
	k, err := workloads.Build("ht-h", workloads.TM, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TxWaitCycles == 0 {
		t.Fatal("throttled run should accumulate tx wait cycles")
	}
}

func TestGETMStallBufferMetrics(t *testing.T) {
	res := runSmall(t, ProtoGETM, "ht-h")
	if res.Metrics.Extra["vu-requests"] == 0 {
		t.Fatal("no VU requests recorded")
	}
	if res.Metrics.MetaAccessCycles.Total() == 0 {
		t.Fatal("no metadata access samples")
	}
}

func TestDeterminism(t *testing.T) {
	a := runSmall(t, ProtoGETM, "atm")
	b := runSmall(t, ProtoGETM, "atm")
	if a.Metrics.TotalCycles != b.Metrics.TotalCycles ||
		a.Metrics.Commits != b.Metrics.Commits ||
		a.Metrics.Aborts != b.Metrics.Aborts {
		t.Fatalf("non-deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.Metrics.TotalCycles, a.Metrics.Commits, a.Metrics.Aborts,
			b.Metrics.TotalCycles, b.Metrics.Commits, b.Metrics.Aborts)
	}
}

func TestEAPGCountsBroadcastEffects(t *testing.T) {
	res := runSmall(t, ProtoEAPG, "ht-h")
	if res.Metrics.Extra["eapg-broadcasts"] == 0 {
		t.Fatal("no signature broadcasts recorded")
	}
}

func TestScaledConfigRuns(t *testing.T) {
	cfg := ScaledConfig(ProtoGETM)
	cfg.Core.WarpsPerCore = 4
	k, err := workloads.Build("atm", workloads.TM, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, k); err != nil {
		t.Fatal(err)
	}
}
