package gpu_test

import (
	"context"
	"errors"
	"testing"
	"time"

	. "getm/internal/gpu"
	"getm/internal/sim"
	"getm/internal/workloads"
)

// pollCountCtx is a deterministic cancellable context: Err reports Canceled
// from its n-th poll onward. Done returns a non-nil (never-closed) channel so
// RunContext treats it as cancellable; the run loop polls Err at chunk
// boundaries, which is what makes this exact.
type pollCountCtx struct {
	context.Context
	polls   int
	cancelN int
}

func (c *pollCountCtx) Done() <-chan struct{} { return make(chan struct{}) }

func (c *pollCountCtx) Err() error {
	c.polls++
	if c.polls >= c.cancelN {
		return context.Canceled
	}
	return nil
}

func buildSmall(t *testing.T, bench string) *Kernel {
	t.Helper()
	k, err := workloads.Build(bench, workloads.TM, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// A context cancelled before the run starts fails fast with ErrCanceled.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, smallConfig(ProtoGETM), buildSmall(t, "ht-h"))
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to also match context.Canceled", err)
	}
}

// Cancellation must take effect within one chunk of simulated cycles: with a
// context that reports cancellation at its k-th boundary poll, the run stops
// at exactly cycle k*chunk and returns partial metrics tagged Truncated.
func TestCancelLatencyOneChunk(t *testing.T) {
	full := runSmall(t, ProtoGETM, "ht-h").Metrics

	const chunk = 2000
	const cancelAtPoll = 3
	cfg := smallConfig(ProtoGETM)
	cfg.Record = false
	cfg.CancelChunk = chunk
	ctx := &pollCountCtx{Context: context.Background(), cancelN: cancelAtPoll}
	res, err := RunContext(ctx, cfg, buildSmall(t, "ht-h"))

	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Truncated {
		t.Fatalf("result not tagged truncated: %+v", res)
	}
	// RunContext consumes one poll with its fail-fast pre-check, so the
	// cancel is first observed at boundary poll cancelAtPoll-1, i.e. cycle
	// (cancelAtPoll-1)*chunk — and the run must stop exactly there.
	want := sim.Cycle((cancelAtPoll - 1) * chunk)
	if res.TruncatedAt != want {
		t.Fatalf("truncated at cycle %d, want boundary %d (within one %d-cycle chunk of the cancel)",
			res.TruncatedAt, want, chunk)
	}
	m := res.Metrics
	if m.TotalCycles != uint64(want) {
		t.Fatalf("partial TotalCycles = %d, want %d", m.TotalCycles, want)
	}
	if uint64(want) >= full.TotalCycles {
		t.Fatalf("test kernel too short (%d cycles) to cancel at %d", full.TotalCycles, want)
	}
	if m.Commits >= full.Commits {
		t.Fatalf("partial commits %d not below full run's %d", m.Commits, full.Commits)
	}
}

// A cancellable context that never fires must not perturb the simulation:
// chunked and unchunked runs are cycle-identical.
func TestChunkedRunCycleIdentical(t *testing.T) {
	k1 := buildSmall(t, "atm")
	plain, err := Run(smallConfig(ProtoGETM), k1)
	if err != nil {
		t.Fatal(err)
	}

	for _, chunk := range []sim.Cycle{0, 777, 4096} {
		cfg := smallConfig(ProtoGETM)
		cfg.CancelChunk = chunk
		ctx, cancel := context.WithCancel(context.Background())
		chunked, err := RunContext(ctx, cfg, buildSmall(t, "atm"))
		cancel()
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if chunked.Truncated {
			t.Fatalf("chunk %d: spuriously truncated", chunk)
		}
		if chunked.Metrics.TotalCycles != plain.Metrics.TotalCycles ||
			chunked.Metrics.Commits != plain.Metrics.Commits ||
			chunked.Metrics.Aborts != plain.Metrics.Aborts {
			t.Fatalf("chunk %d: metrics diverged: %d/%d/%d vs %d/%d/%d", chunk,
				chunked.Metrics.TotalCycles, chunked.Metrics.Commits, chunked.Metrics.Aborts,
				plain.Metrics.TotalCycles, plain.Metrics.Commits, plain.Metrics.Aborts)
		}
	}
}

// A real deadline also cancels (non-deterministic timing, so only the error
// shape and truncation flag are asserted).
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	_, err := RunContext(ctx, smallConfig(ProtoGETM), buildSmall(t, "ht-h"))
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled and context.DeadlineExceeded", err)
	}
}

// CycleBudget stops the run at the budget with partial metrics and no error.
func TestCycleBudgetTruncates(t *testing.T) {
	full := runSmall(t, ProtoGETM, "ht-h").Metrics

	cfg := smallConfig(ProtoGETM)
	cfg.Record = false
	cfg.CycleBudget = sim.Cycle(full.TotalCycles / 2)
	res, err := Run(cfg, buildSmall(t, "ht-h"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("budgeted run not tagged truncated")
	}
	if res.TruncatedAt != cfg.CycleBudget || res.Metrics.TotalCycles != uint64(cfg.CycleBudget) {
		t.Fatalf("truncated at %d (metrics %d), want budget %d",
			res.TruncatedAt, res.Metrics.TotalCycles, cfg.CycleBudget)
	}

	// A budget the run never reaches changes nothing.
	cfg.CycleBudget = sim.Cycle(full.TotalCycles * 2)
	res, err = Run(cfg, buildSmall(t, "ht-h"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatal("unreached budget truncated the run")
	}
	if res.Metrics.TotalCycles != full.TotalCycles {
		t.Fatalf("unreached budget changed the run: %d vs %d cycles",
			res.Metrics.TotalCycles, full.TotalCycles)
	}
}
