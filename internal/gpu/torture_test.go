package gpu_test

import (
	"fmt"
	"testing"

	. "getm/internal/gpu"
	"getm/internal/tm"
	"getm/internal/workloads"
)

// tortureCfg returns a small contended stress configuration.
func tortureCfg(threads, cells, stride int) workloads.TortureConfig {
	tc := workloads.DefaultTortureConfig()
	tc.Threads = threads
	tc.Cells = cells
	tc.CellStrideWords = stride
	return tc
}

// TestTortureSerializability fuzzes every TM protocol with randomized
// transactional workloads across several seeds and sharing layouts; each run
// is checked for (a) the conservation invariant, (b) leaked reservations,
// and (c) replay serializability of the committed-transaction history.
func TestTortureSerializability(t *testing.T) {
	layouts := []struct {
		name   string
		cells  int
		stride int
	}{
		{"hot-packed", 24, 1},   // few cells, shared granules: worst case
		{"hot-isolated", 24, 4}, // few cells, private granules
		{"wide", 256, 2},        // low contention
	}
	for _, proto := range []Protocol{ProtoGETM, ProtoWarpTM, ProtoWarpTMEL, ProtoEAPG} {
		for _, lay := range layouts {
			for seed := uint64(1); seed <= 3; seed++ {
				proto, lay, seed := proto, lay, seed
				t.Run(fmt.Sprintf("%s/%s/seed%d", proto, lay.name, seed), func(t *testing.T) {
					t.Parallel()
					k := workloads.BuildTorture(
						workloads.Params{Scale: 1, Seed: seed},
						tortureCfg(256, lay.cells, lay.stride))
					cfg := smallConfig(proto)
					res, err := Run(cfg, k)
					if err != nil {
						t.Fatal(err)
					}
					if res.Metrics.Commits == 0 {
						t.Fatal("no commits")
					}
					if err := tm.CheckSerializable(res.InitialImage, nil, res.Committed); err != nil {
						t.Fatalf("serializability violated: %v", err)
					}
				})
			}
		}
	}
}

// TestTortureSilentCommits checks that the read-only transactions in the
// torture mix actually exercise WarpTM's TCD silent-commit path.
func TestTortureSilentCommits(t *testing.T) {
	k := workloads.BuildTorture(workloads.Params{Scale: 1, Seed: 7}, tortureCfg(512, 128, 2))
	res, err := Run(smallConfig(ProtoWarpTM), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SilentCommits == 0 {
		t.Fatal("no TCD silent commits despite read-only transactions")
	}
}

// TestTortureGETMQueueing checks the stall buffer engages under the packed
// hot layout.
func TestTortureGETMQueueing(t *testing.T) {
	k := workloads.BuildTorture(workloads.Params{Scale: 1, Seed: 9}, tortureCfg(512, 16, 1))
	res, err := Run(smallConfig(ProtoGETM), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Extra["vu-queued"] == 0 {
		t.Fatal("hot packed layout produced no stall-buffer queueing")
	}
}

// TestGETMRolloverEndToEnd forces timestamp rollovers with a narrow
// timestamp width on a contended workload and verifies the machine drains,
// the invariant holds, and at least one rollover occurred.
func TestGETMRolloverEndToEnd(t *testing.T) {
	k := workloads.BuildTorture(workloads.Params{Scale: 1, Seed: 11}, tortureCfg(512, 12, 1))
	cfg := smallConfig(ProtoGETM)
	cfg.GETM.TSBits = 7 // rollover threshold 112
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Extra["rollovers"] == 0 {
		t.Skip("contention too low to force a rollover at this scale")
	}
	if err := tm.CheckSerializable(res.InitialImage, nil, res.Committed); err != nil {
		t.Fatalf("serializability across rollover violated: %v", err)
	}
}
