package gpu_test

import (
	"reflect"
	"testing"

	. "getm/internal/gpu"
	"getm/internal/workloads"
)

// shardedConfig is smallConfig without the features the sharded machine
// cannot host (Record).
func shardedConfig(p Protocol, shards int) Config {
	cfg := smallConfig(p)
	cfg.Record = false
	cfg.Shards = shards
	return cfg
}

func runSharded(t *testing.T, cfg Config, bench string) *Result {
	t.Helper()
	variant := workloads.TM
	if cfg.Protocol == ProtoFGLock {
		variant = workloads.FGLock
	}
	k, err := workloads.Build(bench, variant, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, k)
	if err != nil {
		t.Fatalf("%s on %s (shards=%d): %v", bench, cfg.Protocol, cfg.Shards, err)
	}
	return res
}

// TestShardedIdenticalAcrossWorkers is the gpu-level half of the par-gate:
// for every shardable protocol the parallel machine must produce metrics
// byte-identical across worker counts — worker count is physical, never
// semantic. (Run under -race by `make par-gate`.)
func TestShardedIdenticalAcrossWorkers(t *testing.T) {
	for _, proto := range []Protocol{ProtoGETM, ProtoFGLock} {
		for _, bench := range []string{"ht-h", "atm", "ap"} {
			proto, bench := proto, bench
			t.Run(bench+"/"+string(proto), func(t *testing.T) {
				ref := runSharded(t, shardedConfig(proto, 1), bench)
				if ref.Metrics.TotalCycles == 0 {
					t.Fatal("no cycles simulated")
				}
				if proto != ProtoFGLock && ref.Metrics.Commits == 0 {
					t.Fatal("no transactions committed")
				}
				for _, w := range []int{2, 4, 16} {
					got := runSharded(t, shardedConfig(proto, w), bench)
					if !reflect.DeepEqual(ref.Metrics, got.Metrics) {
						t.Fatalf("shards=1 vs shards=%d metrics diverge:\n%+v\nvs\n%+v",
							w, ref.Metrics, got.Metrics)
					}
				}
			})
		}
	}
}

// TestShardedRepeatDeterminism: the same sharded run twice must be identical
// (no scheduling nondeterminism leaks into results).
func TestShardedRepeatDeterminism(t *testing.T) {
	a := runSharded(t, shardedConfig(ProtoGETM, 3), "atm")
	b := runSharded(t, shardedConfig(ProtoGETM, 3), "atm")
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("sharded run not reproducible:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
}

// TestShardedFallbackMatchesSerial: a config the sharded machine cannot host
// (Record) must silently run on the serial engine, byte-identical to
// Shards=0.
func TestShardedFallbackMatchesSerial(t *testing.T) {
	serial := smallConfig(ProtoGETM) // Record=true → not shardable
	withShards := serial
	withShards.Shards = 4
	a := runSharded(t, serial, "atm")
	b := runSharded(t, withShards, "atm")
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatalf("fallback diverged from serial:\n%+v\nvs\n%+v", a.Metrics, b.Metrics)
	}
}

// TestShardedBudgetTruncates exercises runShardedContext's budget path.
func TestShardedBudgetTruncates(t *testing.T) {
	cfg := shardedConfig(ProtoGETM, 2)
	cfg.CycleBudget = 500
	res := runSharded(t, cfg, "ht-h")
	if !res.Truncated {
		t.Fatal("expected truncated result under tiny cycle budget")
	}
	if res.TruncatedAt == 0 || res.TruncatedAt > 500 {
		t.Fatalf("TruncatedAt = %d, want in (0, 500]", res.TruncatedAt)
	}
}

// TestRolloverResumesQueuedWarps pins the rollover re-admission bugfix: with
// narrow timestamps a contended run triggers rollover while MaxTxWarps keeps
// warps queued behind the admission gate. Before the fix, a core whose
// runnable warps all queued during the drain deadlocked — the queue was only
// retried on endTx, and the drain had consumed every transaction that could
// end. The run completing (no deadlock error) plus a nonzero rollover count
// is the regression check, on both engines.
func TestRolloverResumesQueuedWarps(t *testing.T) {
	for _, shards := range []int{0, 2} {
		shards := shards
		t.Run(map[int]string{0: "serial", 2: "sharded"}[shards], func(t *testing.T) {
			k := workloads.BuildTorture(workloads.Params{Scale: 1, Seed: 11}, tortureCfg(512, 12, 1))
			cfg := shardedConfig(ProtoGETM, shards)
			cfg.GETM.TSBits = 5 // threshold 28: a few dozen aborts trigger rollover
			// One warp per core: every warp parks behind the closed admission
			// gate during the drain, so the machine livelocks unless the
			// resume explicitly wakes the queues.
			cfg.Core.WarpsPerCore = 1
			cfg.MaxCycles = 2_000_000
			res, err := Run(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			if res.Metrics.Extra["rollovers"] == 0 {
				t.Fatal("workload did not trigger a rollover; test is vacuous")
			}
			if res.Metrics.Commits == 0 {
				t.Fatal("no commits after rollover")
			}
		})
	}
}

// BenchmarkRunEngines times one full GETM run per engine flavor. On a
// multi-core host sharded wall-clock improves toward serial/min(workers,
// domains); on a single-core host sharded-Nw ~= sharded-1w by construction.
// Recorded numbers live in BENCH_parallel.json (make bench-parallel).
func BenchmarkRunEngines(b *testing.B) {
	params := smallParams()
	params.Scale = 0.3
	for _, bc := range []struct {
		name   string
		shards int
	}{{"serial", 0}, {"sharded-1w", 1}, {"sharded-2w", 2}, {"sharded-4w", 4}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				k, err := workloads.Build("ht-h", workloads.TM, params)
				if err != nil {
					b.Fatal(err)
				}
				cfg := shardedConfig(ProtoGETM, bc.shards)
				b.StartTimer()
				if _, err := Run(cfg, k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
