// Package eapg implements the idealized EarlyAbort/Pause-n-Go baseline
// (Chen & Peng, HPCA 2016) the paper compares against: WarpTM's lazy
// value-based commit machinery, plus global broadcasts of committing
// transactions' write signatures that (a) abort doomed running transactions
// early and (b) pause accesses that would conflict with an in-flight commit
// until it completes.
//
// Following the paper's footnote 3, the broadcasts are idealized as 64-bit
// messages, the LLC-side refcount updates are free, and the early conflict
// check is instant.
package eapg

import (
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/trace"
	"getm/internal/warptm"
)

// Signature is a 64-bit bloom filter over word addresses.
type Signature uint64

// AddWord folds a word address into the signature.
func (s Signature) AddWord(addr uint64) Signature {
	return s | 1<<(sim.Mix64(addr/uint64(mem.WordBytes))%64)
}

// MayContain reports whether addr may be in the signature (false positives
// possible, false negatives not).
func (s Signature) MayContain(addr uint64) bool {
	return s&(1<<(sim.Mix64(addr/uint64(mem.WordBytes))%64)) != 0
}

type activeSig struct {
	owner int
	sig   Signature
	// words is the precise write set: the broadcast message is idealized to
	// 64 bits (footnote 3), but the conflict checks use the cores'
	// conflict-address tables, which track precise addresses.
	words   map[uint64]bool
	waiters []func()
	// refs counts the holders of this pooled object: the commit itself plus
	// one per outstanding broadcast delivery (a congested crossbar can, in
	// principle, deliver a broadcast after the commit has resumed).
	refs int
	next *activeSig
}

// Protocol wraps WarpTM with early-abort and pause-n-go.
type Protocol struct {
	inner *warptm.Protocol
	eng   *sim.Engine
	trans tm.Transport
	cores int

	active     map[int]*tm.WarpTx // running (pre-commit) transactions
	committing map[int]*activeSig // gwid -> in-flight commit signature
	// commitOrder mirrors committing, kept sorted by owner gwid so the
	// pause-target choice among several matches is deterministic without a
	// per-access sort.
	commitOrder []*activeSig
	sigPool     *activeSig
	abortSink   func(tm.AbortNotice)

	EarlyAborts uint64
	Pauses      uint64
	Broadcasts  uint64

	rec *trace.Recorder
}

// SetTrace attaches the machine-wide event recorder to this wrapper and the
// inner WarpTM machinery (nil disables).
func (p *Protocol) SetTrace(rec *trace.Recorder) {
	p.rec = rec
	p.inner.SetTrace(rec)
}

var (
	_ tm.Protocol     = (*Protocol)(nil)
	_ tm.AsyncAborter = (*Protocol)(nil)
)

// New wraps a WarpTM protocol instance. The paper's EAPG baseline wraps
// plain lazy WarpTM; the policy matrix also composes it over the eager-check
// variant (cfg.Eager), in which case intra-warp conflicts resolve eagerly too.
func New(inner *warptm.Protocol, eng *sim.Engine, trans tm.Transport, cores int) *Protocol {
	return &Protocol{
		inner:      inner,
		eng:        eng,
		trans:      trans,
		cores:      cores,
		active:     make(map[int]*tm.WarpTx),
		committing: make(map[int]*activeSig),
	}
}

// Name implements tm.Protocol.
func (p *Protocol) Name() string { return "eapg" }

// EagerIntraWarp matches the wrapped machinery: commit-time intra-warp
// resolution for plain WarpTM, access-time for the eager-check variant.
func (p *Protocol) EagerIntraWarp() bool { return p.inner.EagerIntraWarp() }

// SetAbortSink implements tm.AsyncAborter.
func (p *Protocol) SetAbortSink(fn func(tm.AbortNotice)) { p.abortSink = fn }

// Inner exposes the wrapped WarpTM protocol (stats).
func (p *Protocol) Inner() *warptm.Protocol { return p.inner }

// Begin implements tm.Protocol.
func (p *Protocol) Begin(w *tm.WarpTx) {
	p.active[w.GWID] = w
	p.inner.Begin(w)
}

// getSig pops a pooled signature record (maps and slices keep capacity).
func (p *Protocol) getSig(owner int) *activeSig {
	as := p.sigPool
	if as == nil {
		as = &activeSig{words: make(map[uint64]bool)}
	} else {
		p.sigPool = as.next
	}
	as.owner = owner
	as.sig = 0
	return as
}

// dropSig releases one reference; the last holder recycles the record.
func (p *Protocol) dropSig(as *activeSig) {
	as.refs--
	if as.refs > 0 {
		return
	}
	clear(as.words)
	as.waiters = as.waiters[:0]
	as.next = p.sigPool
	p.sigPool = as
}

// pauseTarget returns a committing signature that the access would conflict
// with, if any (pause-n-go). commitOrder is sorted by owner, so the choice
// among several matches is deterministic.
func (p *Protocol) pauseTarget(gwid int, lanes []tm.LaneAccess) *activeSig {
	for _, as := range p.commitOrder {
		if as.owner == gwid {
			continue
		}
		for _, la := range lanes {
			if as.words[la.Addr] {
				return as
			}
		}
	}
	return nil
}

// Access implements tm.Protocol: conflicting accesses pause until the
// in-flight commit finishes, then proceed through WarpTM's access path.
func (p *Protocol) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	if as := p.pauseTarget(w.GWID, lanes); as != nil {
		p.Pauses++
		if p.rec != nil {
			p.rec.Emit(trace.SrcEAPG, trace.KEAPGPause, int32(w.Core),
				uint64(w.GWID), uint64(as.owner), 0, 0)
		}
		as.waiters = append(as.waiters, func() { p.Access(w, isWrite, lanes, done) })
		return
	}
	p.inner.Access(w, isWrite, lanes, done)
}

// Commit implements tm.Protocol: broadcast the write signature (idealized as
// one 64-bit message per core), early-abort doomed transactions, then run
// WarpTM's two-round-trip commit.
func (p *Protocol) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	delete(p.active, w.GWID)

	as := p.getSig(w.GWID)
	for _, e := range w.Log.Writes {
		if commitMask.Bit(e.Lane) {
			as.sig = as.sig.AddWord(e.Addr)
			as.words[e.Addr] = true
		}
	}

	if len(as.words) == 0 {
		as.refs = 1
		p.dropSig(as)
	} else {
		as.refs = 1 + p.cores // the commit plus one per broadcast delivery
		p.committing[w.GWID] = as
		// Insert keeping commitOrder sorted by owner.
		i := len(p.commitOrder)
		p.commitOrder = append(p.commitOrder, nil)
		for i > 0 && p.commitOrder[i-1].owner > as.owner {
			p.commitOrder[i] = p.commitOrder[i-1]
			i--
		}
		p.commitOrder[i] = as
		p.Broadcasts++
		if p.rec != nil {
			p.rec.Emit(trace.SrcEAPG, trace.KEAPGBroadcast, int32(w.Core),
				uint64(w.GWID), uint64(as.sig), uint64(len(as.words)), 0)
		}
		// The LLC-side broadcast to every core (64-bit flits).
		p.trans.BroadcastToCores(0, tm.SignatureBytes, func(core int) {
			p.earlyAbortDoomed(core, as.owner, as.words)
			p.dropSig(as)
		})
	}

	p.inner.Commit(w, commitMask, abortMask, func(out tm.CommitOutcome) {
		if as, ok := p.committing[w.GWID]; ok {
			delete(p.committing, w.GWID)
			for i, x := range p.commitOrder {
				if x == as {
					p.commitOrder = append(p.commitOrder[:i], p.commitOrder[i+1:]...)
					break
				}
			}
			for _, retry := range as.waiters {
				p.eng.Schedule(1, retry)
			}
			p.dropSig(as)
		}
		resume(out)
	})
}

// earlyAbortDoomed aborts running transactions on core whose read sets
// intersect the committing write set: their commit-time validation would
// fail anyway, so aborting now saves the round trips.
func (p *Protocol) earlyAbortDoomed(core, committer int, words map[uint64]bool) {
	if p.abortSink == nil {
		return
	}
	for gwid, w := range p.active {
		if gwid == committer || w.Core != core {
			continue
		}
		var doomed isa.LaneMask
		for _, e := range w.Log.Reads {
			if words[e.Addr] {
				doomed = doomed.Set(e.Lane)
			}
		}
		if doomed != 0 {
			p.EarlyAborts += uint64(doomed.Count())
			if p.rec != nil {
				p.rec.Emit(trace.SrcEAPG, trace.KEAPGEarlyAbort, int32(core),
					uint64(gwid), uint64(doomed), uint64(committer), 0)
			}
			p.abortSink(tm.AbortNotice{GWID: gwid, Lanes: doomed, Cause: tm.CauseEarlyAbort})
		}
	}
}
