package eapg

import (
	"testing"
	"testing/quick"

	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/tmtest"
	"getm/internal/warptm"
)

type harness struct {
	eng     *sim.Engine
	img     *mem.Image
	proto   *Protocol
	notices []tm.AbortNotice
}

func newHarness(nParts int) *harness {
	eng := sim.NewEngine()
	img := mem.NewImage()
	amap := mem.AddressMap{Partitions: nParts, LineBytes: 128}
	trans := tmtest.NewTransport(eng, 5, 2)
	cfg := warptm.DefaultConfig()
	rng := sim.NewRNG(31)
	var vus []*warptm.VU
	pcfg := mem.DefaultPartitionConfig()
	pcfg.LLCBytes = 16 << 10
	for i := 0; i < nParts; i++ {
		p := mem.NewPartition(i, eng, img, pcfg)
		vus = append(vus, warptm.NewVU(cfg, eng, p, rng.Fork(uint64(i))))
	}
	inner := warptm.NewProtocol(cfg, eng, amap, trans, vus, img)
	h := &harness{eng: eng, img: img}
	h.proto = New(inner, eng, trans, 2)
	h.proto.SetAbortSink(func(n tm.AbortNotice) { h.notices = append(h.notices, n) })
	return h
}

func (h *harness) newTx(gwid, core int) *tm.WarpTx {
	w := &tm.WarpTx{GWID: gwid, Core: core, Log: tm.NewTxLog(), StartCycle: h.eng.Now()}
	h.proto.Begin(w)
	return w
}

func (h *harness) access(t *testing.T, w *tm.WarpTx, isWrite bool, addr, val uint64) tm.AccessResult {
	t.Helper()
	var res []tm.AccessResult
	h.eng.Schedule(0, func() {
		h.proto.Access(w, isWrite, []tm.LaneAccess{{Lane: 0, Addr: addr, Value: val}},
			func(r []tm.AccessResult) { res = r })
	})
	h.eng.Run(0)
	if len(res) != 1 {
		t.Fatal("access did not complete (paused forever?)")
	}
	if !res[0].Abort {
		if isWrite {
			w.Log.RecordWrite(0, addr, val)
		} else {
			w.Log.RecordRead(0, addr, res[0].Value)
		}
	}
	return res[0]
}

func (h *harness) commit(t *testing.T, w *tm.WarpTx) tm.CommitOutcome {
	t.Helper()
	var out *tm.CommitOutcome
	h.eng.Schedule(0, func() {
		h.proto.Commit(w, isa.LaneMask(0).Set(0), 0, func(o tm.CommitOutcome) { out = &o })
	})
	h.eng.Run(0)
	if out == nil {
		t.Fatal("commit did not resume")
	}
	return *out
}

func TestSignatureProperty(t *testing.T) {
	prop := func(addrs []uint32) bool {
		var s Signature
		for _, a := range addrs {
			s = s.AddWord(uint64(a) &^ 7)
		}
		for _, a := range addrs {
			if !s.MayContain(uint64(a) &^ 7) {
				return false // no false negatives allowed
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyAbortDoomedReader(t *testing.T) {
	h := newHarness(2)
	h.img.Write(0x100, 1)
	// Reader on core 1 logs a read of 0x100.
	r := h.newTx(1, 1)
	h.access(t, r, false, 0x100, 0)
	// Writer on core 0 commits a write to 0x100: broadcast must doom the
	// reader.
	wtx := h.newTx(2, 0)
	h.access(t, wtx, true, 0x100, 9)
	h.commit(t, wtx)
	if len(h.notices) == 0 {
		t.Fatal("no early-abort notice delivered")
	}
	n := h.notices[0]
	if n.GWID != 1 || !n.Lanes.Bit(0) || n.Cause != tm.CauseEarlyAbort {
		t.Fatalf("notice = %+v", n)
	}
	if h.proto.EarlyAborts == 0 || h.proto.Broadcasts != 1 {
		t.Fatalf("counters: early=%d bcast=%d", h.proto.EarlyAborts, h.proto.Broadcasts)
	}
}

func TestNoEarlyAbortForDisjointReader(t *testing.T) {
	h := newHarness(2)
	r := h.newTx(1, 1)
	h.access(t, r, false, 0x5000, 0)
	wtx := h.newTx(2, 0)
	h.access(t, wtx, true, 0x100, 9)
	h.commit(t, wtx)
	// (A bloom false positive is possible but the two words used here do
	// not collide with the Mix64 hash.)
	if len(h.notices) != 0 {
		t.Fatalf("disjoint reader aborted: %+v", h.notices)
	}
}

func TestPauseNGoDefersConflictingAccess(t *testing.T) {
	h := newHarness(2)
	h.img.Write(0x100, 1)
	// Writer commits 0x100 but we inspect mid-flight state: start the
	// commit, then issue a conflicting access before it completes.
	wtx := h.newTx(2, 0)
	h.access(t, wtx, true, 0x100, 9)

	reader := h.newTx(3, 1)
	var commitDone, accessDone bool
	var readerRes []tm.AccessResult
	h.eng.Schedule(0, func() {
		h.proto.Commit(wtx, isa.LaneMask(0).Set(0), 0, func(tm.CommitOutcome) { commitDone = true })
	})
	// Conflicting access one cycle later, while the commit is in flight.
	h.eng.Schedule(1, func() {
		h.proto.Access(reader, false, []tm.LaneAccess{{Lane: 0, Addr: 0x100}},
			func(r []tm.AccessResult) { readerRes = r; accessDone = true })
	})
	h.eng.Run(0)
	if !commitDone || !accessDone {
		t.Fatal("commit or paused access never completed")
	}
	if h.proto.Pauses == 0 {
		t.Fatal("conflicting access was not paused")
	}
	// The paused access retried after the commit: it must see the new value.
	if readerRes[0].Abort || readerRes[0].Value != 9 {
		t.Fatalf("paused access result = %+v, want committed value 9", readerRes[0])
	}
}

func TestCommitStillWorksThroughWrapper(t *testing.T) {
	h := newHarness(2)
	w := h.newTx(1, 0)
	h.access(t, w, false, 0x200, 0)
	h.access(t, w, true, 0x200, 5)
	out := h.commit(t, w)
	if out.FailedLanes != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if h.img.Read(0x200) != 5 {
		t.Fatal("write not applied")
	}
}
