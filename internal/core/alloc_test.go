package core

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/tm"
)

// Gate: a steady-state GETM transaction step — read access, write access,
// log record, commit, log transmit, commit-unit apply — runs without touching
// the allocator. Every hot-path object (access state, per-lane VU requests,
// VU pipeline ops, commit logs/batches, CU jobs) is pooled with prebuilt
// callbacks, so the first transaction warms the pools and the rest are free.
func TestGETMStepAllocs(t *testing.T) {
	cfg := DefaultConfig()
	h := newProtoHarness(cfg, 2)
	h.proto.Record = false

	w := &tm.WarpTx{GWID: 0, Core: 0, Log: tm.NewTxLog()}
	h.proto.Begin(w)
	readLanes := []tm.LaneAccess{{Lane: 0, Addr: 0x100}, {Lane: 1, Addr: 0x180}}
	writeLanes := []tm.LaneAccess{{Lane: 0, Addr: 0x200, Value: 7}}

	completed := 0
	onAccess := func(rs []tm.AccessResult) {
		for _, r := range rs {
			if r.Abort {
				t.Fatalf("unexpected abort: %+v", r)
			}
		}
		completed++
	}
	issueRead := func() { h.proto.Access(w, false, readLanes, onAccess) }
	issueWrite := func() { h.proto.Access(w, true, writeLanes, onAccess) }
	resume := func(tm.CommitOutcome) {}
	commitMask := isa.LaneMask(0).Set(0).Set(1)
	doCommit := func() { h.proto.Commit(w, commitMask, 0, resume) }

	step := func() {
		h.eng.Schedule(0, issueRead)
		h.eng.Run(0)
		h.eng.Schedule(0, issueWrite)
		h.eng.Run(0)
		w.Log.RecordWrite(0, 0x200, 7)
		h.eng.Schedule(0, doCommit)
		h.eng.Run(0)
		w.Log.Reset()
		// A committed write leaves the granule's wts one past this attempt's
		// warpts; advance the warp's clock (as a conflict abort would) so
		// every round re-runs the success path of the Fig 6 flowchart.
		h.proto.warpts[w.GWID]++
	}
	step() // warm the pools (and the LLC/metadata/page for these addresses)
	if completed != 2 {
		t.Fatalf("warm-up completed %d accesses, want 2", completed)
	}
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Errorf("GETM access+commit step allocates %.1f per transaction, want 0", allocs)
	}
}
