// Package core implements GETM, the paper's contribution: a GPU hardware
// transactional memory with eager conflict detection and lazy versioning.
//
// GETM tracks, per metadata granule, a write timestamp (wts), a read
// timestamp (rts), a write-reservation count (#writes) and the reserving
// warp (owner). Each transactional access is checked at the home partition's
// validation unit as it happens (Fig 6), so a transaction reaching txcommit
// is guaranteed to succeed and the commit is off the critical path: the core
// transmits the write log and the warp continues immediately.
//
// The package provides the validation-unit metadata tables (4-way cuckoo
// hash + stash + overflow, plus an approximate recency bloom filter, Fig 8),
// the stall buffer (Fig 9), the commit unit with 32-byte coalescing, the
// core-side protocol driver (warpts management, log transmission), and the
// logical-timestamp rollover protocol.
package core

import "getm/internal/sim"

// Config holds GETM's structure sizes and timing (Table II, "Transactional
// memory support").
type Config struct {
	// GranularityBytes is the conflict-detection granule (32 B default;
	// Fig 14 sweeps 16–128).
	GranularityBytes int
	// PreciseEntries is the GPU-wide precise metadata capacity (4K default;
	// Fig 14 sweeps 2K/4K/8K). Each partition gets an equal share.
	PreciseEntries int
	// CuckooWays is the number of hash ways (4).
	CuckooWays int
	// StashEntries is the fully associative stash size per partition (4).
	StashEntries int
	// MaxKicks bounds a cuckoo insertion's displacement chain.
	MaxKicks int
	// ApproxEntries is the GPU-wide approximate-table capacity (1K).
	ApproxEntries int
	// ApproxWays is the number of bloom ways (4).
	ApproxWays int
	// StallLines and StallEntriesPerLine size each partition's stall buffer
	// (4 lines × 4 entries).
	StallLines          int
	StallEntriesPerLine int
	// CommitBytesPerCycle is the commit unit's LLC write bandwidth (32).
	CommitBytesPerCycle int
	// TSBits is the logical timestamp width; rollover triggers near
	// 2^TSBits. 64 disables rollover in practice.
	TSBits uint
	// OverflowPenalty is the extra access latency (cycles) when the precise
	// table spills to the in-memory overflow list.
	OverflowPenalty sim.Cycle
	// BackoffBase and BackoffCap configure the probabilistically increasing
	// retry backoff for aborted transactions (cycles).
	BackoffBase uint64
	BackoffCap  uint64

	// FirstWriterWins switches the resolution policy of the Fig 6 flowchart:
	// instead of queueing a younger requester in the stall buffer while the
	// granule is write-reserved (paper GETM, timestamp order), the holder of
	// the reservation wins outright and the requester aborts. Policy-matrix
	// knob; excluded from JSON so store content addresses are unchanged.
	FirstWriterWins bool `json:"-"`
	// RingArb makes commit a ring-arbitrated round trip: the warp resumes
	// only after every partition's commit unit has acknowledged its slice of
	// the write log, instead of GETM's off-critical-path fire-and-forget
	// commit. Policy-matrix knob; excluded from JSON (see FirstWriterWins).
	RingArb bool `json:"-"`
}

// DefaultConfig returns the paper's Table II settings.
func DefaultConfig() Config {
	return Config{
		GranularityBytes:    32,
		PreciseEntries:      4096,
		CuckooWays:          4,
		StashEntries:        4,
		MaxKicks:            8,
		ApproxEntries:       1024,
		ApproxWays:          4,
		StallLines:          4,
		StallEntriesPerLine: 4,
		CommitBytesPerCycle: 32,
		TSBits:              64,
		OverflowPenalty:     20,
		BackoffBase:         64,
		BackoffCap:          4096,
	}
}

// GranuleOf maps a byte address to its metadata granule id.
func (c Config) GranuleOf(addr uint64) uint64 {
	return addr / uint64(c.GranularityBytes)
}

// RolloverThreshold is the timestamp value at which a validation unit
// initiates the rollover protocol.
func (c Config) RolloverThreshold() uint64 {
	if c.TSBits >= 64 {
		return ^uint64(0)
	}
	limit := uint64(1) << c.TSBits
	return limit - limit/8 // start the protocol with 12.5% headroom left
}
