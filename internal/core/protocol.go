package core

import (
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// Protocol is GETM's SIMT-core-side driver. It owns the per-warp logical
// timestamps (warpts), turns warp memory instructions into validation-unit
// requests, transmits commit/cleanup logs off the critical path, and records
// committed transactions for the serializability checker.
type Protocol struct {
	cfg   Config
	eng   *sim.Engine
	amap  mem.AddressMap
	trans tm.Transport
	vus   []*VU
	cus   []*CU

	warpts      map[int]uint64
	pendAbortTS map[int]uint64
	activeTx    int
	pendingLogs int
	draining    bool
	epoch       uint64
	seq         uint64

	// Committed accumulates thread-level transaction records for the
	// serializability replay checker (nil disables recording).
	Committed []tm.CommittedTx
	Record    bool

	// Rollovers counts completed rollover rounds.
	Rollovers uint64
	rollover  *rolloverState
}

var _ tm.Protocol = (*Protocol)(nil)

// NewProtocol wires a GETM protocol instance over the given validation and
// commit units (one per partition).
func NewProtocol(cfg Config, eng *sim.Engine, amap mem.AddressMap, trans tm.Transport, vus []*VU, cus []*CU) *Protocol {
	p := &Protocol{
		cfg:         cfg,
		eng:         eng,
		amap:        amap,
		trans:       trans,
		vus:         vus,
		cus:         cus,
		warpts:      make(map[int]uint64),
		pendAbortTS: make(map[int]uint64),
	}
	for _, vu := range vus {
		vu.SetHighWaterHook(p.triggerRollover)
	}
	return p
}

// Name implements tm.Protocol.
func (p *Protocol) Name() string { return "getm" }

// EagerIntraWarp reports that GETM checks same-warp conflicts at access time.
func (p *Protocol) EagerIntraWarp() bool { return true }

// CanBegin gates new transactions during a rollover drain.
func (p *Protocol) CanBegin() bool { return !p.draining }

// Begin implements tm.Protocol.
func (p *Protocol) Begin(w *tm.WarpTx) {
	p.activeTx++
	if _, ok := p.warpts[w.GWID]; !ok {
		p.warpts[w.GWID] = 0
	}
}

// WarptsOf exposes a warp's current logical time (tests, stats).
func (p *Protocol) WarptsOf(gwid int) uint64 { return p.warpts[gwid] }

// Access implements tm.Protocol: every lane's access is sent to its home
// partition's validation unit for eager conflict detection.
func (p *Protocol) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	results := make([]tm.AccessResult, len(lanes))
	remaining := len(lanes)
	if remaining == 0 {
		done(results)
		return
	}
	ts := p.warpts[w.GWID]

	// Coalesce loads: lanes reading the same word share one request.
	type share struct{ first, count int }
	loadShare := map[uint64]*share{}

	finishLane := func(i int, r tm.AccessResult) {
		results[i] = r
		remaining--
		if remaining == 0 {
			done(results)
		}
	}

	for i, la := range lanes {
		i, la := i, la
		if !isWrite {
			if s, ok := loadShare[la.Addr]; ok {
				s.count++
				results[i].Lane = la.Lane
				continue // resolved when the shared request replies
			}
			loadShare[la.Addr] = &share{first: i, count: 1}
		}
		part := p.amap.Partition(la.Addr)
		req := &Request{
			GWID:    w.GWID,
			Warpts:  ts,
			Addr:    la.Addr,
			IsWrite: isWrite,
			Reply: func(rep Reply) {
				// Reply travels back over the down crossbar.
				bytes := tm.ReplyBytes
				if rep.Status == StatusAbort {
					bytes = tm.AbortReplyBytes
				}
				p.trans.ToCore(part, w.Core, bytes, func() {
					res := tm.AccessResult{
						Lane:    la.Lane,
						Value:   rep.Value,
						Abort:   rep.Status == StatusAbort,
						Cause:   rep.Cause,
						AbortTS: rep.AbortTS,
					}
					if res.Abort {
						if rep.AbortTS > p.pendAbortTS[w.GWID] {
							p.pendAbortTS[w.GWID] = rep.AbortTS
						}
					}
					if !isWrite {
						// Resolve all lanes sharing this word.
						s := loadShare[la.Addr]
						for j := 0; j < len(lanes) && s.count > 0; j++ {
							if lanes[j].Addr == la.Addr {
								r := res
								r.Lane = lanes[j].Lane
								finishLane(j, r)
								s.count--
							}
						}
						return
					}
					finishLane(i, res)
				})
			},
		}
		vu := p.vus[part]
		p.trans.ToPartition(w.Core, part, tm.ReqBytes, func() { vu.Submit(req) })
	}
}

// Commit implements tm.Protocol. The core serializes the warp's write log
// (one entry per cycle), transmits per-partition commit/cleanup messages,
// and resumes the warp immediately: eager detection guarantees the commit
// succeeds, so nothing waits for acknowledgements.
func (p *Protocol) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	entriesByPart := make(map[int][]CommitEntry)
	total := 0
	for _, e := range w.Log.Writes {
		inCommit := commitMask.Bit(e.Lane)
		if !inCommit && !abortMask.Bit(e.Lane) {
			continue
		}
		part := p.amap.Partition(e.Addr)
		entriesByPart[part] = append(entriesByPart[part], CommitEntry{
			Addr:   e.Addr,
			Data:   e.Value,
			Writes: e.Writes,
			Commit: inCommit,
		})
		total++
	}

	ts := p.warpts[w.GWID]
	// Record committed lanes for the replay checker before the log resets.
	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !commitMask.Bit(lane) {
				continue
			}
			reads, writes := w.Log.LaneEntries(lane)
			p.seq++
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID:     w.GWID,
				Lane:     lane,
				SerialTS: (p.epoch << 48) | ts,
				Seq:      p.seq,
				Reads:    reads,
				Writes:   writes,
			})
		}
	}

	// Advance warpts past every conflict observed by aborted lanes.
	if abortMask != 0 {
		next := ts
		if pend := p.pendAbortTS[w.GWID]; pend > next {
			next = pend
		}
		p.warpts[w.GWID] = next + 1
	}
	delete(p.pendAbortTS, w.GWID)

	// Serialize the write log at one entry per cycle, then transmit. The
	// warp resumes right after serialization — commits are off the critical
	// path (no validation, no acks).
	p.eng.Schedule(sim.Cycle(total), func() {
		// Deterministic partition order (map iteration would randomize
		// crossbar contention and thus timing between identical runs).
		for part := 0; part < len(p.cus); part++ {
			entries := entriesByPart[part]
			if len(entries) == 0 {
				continue
			}
			part, entries := part, entries
			bytes := tm.HeaderBytes
			for _, e := range entries {
				if e.Commit {
					bytes += tm.CommitEntryBytes
				} else {
					bytes += tm.CleanupEntryBytes
				}
			}
			cu := p.cus[part]
			p.pendingLogs++
			p.trans.ToPartition(w.Core, part, bytes, func() {
				cu.Submit(entries, func() {
					p.pendingLogs--
					p.maybeFinishDrain()
				})
			})
		}
		p.activeTx--
		p.maybeFinishDrain()
		resume(tm.CommitOutcome{})
	})
}

// LockedGranules sums live write reservations across all partitions; it must
// be zero after a run (invariant check used by integration tests).
func (p *Protocol) LockedGranules() int {
	n := 0
	for _, vu := range p.vus {
		n += vu.Meta.LockedEntries()
	}
	return n
}

// StallOccupancy returns the current total stall-buffer occupancy.
func (p *Protocol) StallOccupancy() int {
	n := 0
	for _, vu := range p.vus {
		n += vu.Stall.Occupancy()
	}
	return n
}
