package core

import (
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// Protocol is GETM's SIMT-core-side driver. It owns the per-warp logical
// timestamps (warpts), turns warp memory instructions into validation-unit
// requests, transmits commit/cleanup logs off the critical path, and records
// committed transactions for the serializability checker.
type Protocol struct {
	cfg   Config
	eng   *sim.Engine
	amap  mem.AddressMap
	trans tm.Transport
	vus   []*VU
	cus   []*CU

	// Per-warp logical clocks, indexed by gwid (grown on Begin; a missing
	// entry reads as 0, matching the old map semantics).
	warpts      []uint64
	pendAbortTS []uint64
	activeTx    int
	pendingLogs int
	draining    bool
	epoch       uint64
	seq         uint64

	// Freelists for the per-access and per-commit hot-path objects. The
	// pooled objects carry prebuilt closures, so a steady-state access
	// allocates nothing. Single goroutine per machine — no locking.
	statePool *accessState
	reqPool   *accessReq
	logPool   *commitLog
	batchPool *commitBatch
	// partLog groups one commit's entries by partition; consumed
	// synchronously within Commit.
	partLog []*commitLog

	// Committed accumulates thread-level transaction records for the
	// serializability replay checker (nil disables recording).
	Committed []tm.CommittedTx
	Record    bool

	// Rollovers counts completed rollover rounds.
	Rollovers uint64
	rollover  *rolloverState

	// AckHop, when set, transports a commit-log acknowledgement from the
	// commit unit's context back to the protocol's own (the sharded machine
	// sets it to a cross-domain hop; nil invokes the ack inline, preserving
	// the serial machine's behavior bit-for-bit).
	AckHop func(part, core int, fn func())
	// drainIdle is armed by BeginDrainRemote: it fires once when no
	// transactions or commit logs are in flight.
	drainIdle func()
	// canBeginHooks are notified whenever a closed CanBegin gate reopens, so
	// cores can re-admit warps queued behind it (see OnCanBegin).
	canBeginHooks []func()
}

var _ tm.Protocol = (*Protocol)(nil)

// NewProtocol wires a GETM protocol instance over the given validation and
// commit units (one per partition).
func NewProtocol(cfg Config, eng *sim.Engine, amap mem.AddressMap, trans tm.Transport, vus []*VU, cus []*CU) *Protocol {
	p := &Protocol{
		cfg:     cfg,
		eng:     eng,
		amap:    amap,
		trans:   trans,
		vus:     vus,
		cus:     cus,
		partLog: make([]*commitLog, len(cus)),
	}
	for _, vu := range vus {
		vu.SetHighWaterHook(p.triggerRollover)
	}
	return p
}

// Name implements tm.Protocol.
func (p *Protocol) Name() string { return "getm" }

// EagerIntraWarp reports that GETM checks same-warp conflicts at access time.
func (p *Protocol) EagerIntraWarp() bool { return true }

// CanBegin gates new transactions during a rollover drain.
func (p *Protocol) CanBegin() bool { return !p.draining }

// OnCanBegin registers a callback invoked whenever the CanBegin gate reopens
// after a drain. Without it, a warp queued behind the gate on a core with no
// other transaction in flight was never re-admitted — cores only retry the
// queue on endTx, and after a drain there is no endTx left to come — leaving
// the kernel deadlocked (see TestRolloverResumesQueuedWarps).
func (p *Protocol) OnCanBegin(fn func()) { p.canBeginHooks = append(p.canBeginHooks, fn) }

func (p *Protocol) notifyCanBegin() {
	for _, fn := range p.canBeginHooks {
		fn()
	}
}

// BeginDrainRemote closes the admission gate and arranges for idle to fire
// (once) when no transactions or commit logs are in flight on this instance.
// It is the sharded rollover coordinator's entry point; the serial machine
// uses the ring-driven triggerRollover path instead.
func (p *Protocol) BeginDrainRemote(idle func()) {
	p.draining = true
	p.drainIdle = idle
	p.maybeNotifyIdle()
}

func (p *Protocol) maybeNotifyIdle() {
	if p.drainIdle == nil || p.activeTx > 0 || p.pendingLogs > 0 {
		return
	}
	fn := p.drainIdle
	p.drainIdle = nil
	fn()
}

// ResumeFromDrain completes a coordinator-driven rollover on this instance:
// reset the warp clocks, advance the epoch, reopen admission, and wake any
// warps queued behind the gate.
func (p *Protocol) ResumeFromDrain() {
	for gwid := range p.warpts {
		p.warpts[gwid] = 0
	}
	p.epoch++
	p.Rollovers++
	p.draining = false
	p.notifyCanBegin()
}

// Begin implements tm.Protocol.
func (p *Protocol) Begin(w *tm.WarpTx) {
	p.activeTx++
	for w.GWID >= len(p.warpts) {
		p.warpts = append(p.warpts, 0)
		p.pendAbortTS = append(p.pendAbortTS, 0)
	}
}

// WarptsOf exposes a warp's current logical time (tests, stats).
func (p *Protocol) WarptsOf(gwid int) uint64 {
	if gwid >= len(p.warpts) {
		return 0
	}
	return p.warpts[gwid]
}

// accessState tracks one in-flight warp access: the caller's lanes/done plus
// the result buffer. Pooled; released when the last lane resolves.
type accessState struct {
	p         *Protocol
	w         *tm.WarpTx
	isWrite   bool
	lanes     []tm.LaneAccess
	results   []tm.AccessResult
	remaining int
	done      func([]tm.AccessResult)
	next      *accessState
}

// accessReq is one lane's VU request plus its reply plumbing. The three
// closures (submit, the VU Reply, and the down-crossbar delivery) are built
// once per pooled object and rebound via fields.
type accessReq struct {
	p         *Protocol
	st        *accessState
	idx       int // index into st.lanes / st.results
	lane      int
	part      int
	req       Request
	rep       Reply
	submit    func()
	deliverFn func()
	next      *accessReq
}

func (p *Protocol) getState() *accessState {
	st := p.statePool
	if st == nil {
		st = &accessState{p: p, results: make([]tm.AccessResult, 0, isa.WarpWidth)}
	} else {
		p.statePool = st.next
	}
	return st
}

func (st *accessState) release() {
	st.w = nil
	st.lanes = nil
	st.done = nil
	st.next = st.p.statePool
	st.p.statePool = st
}

func (p *Protocol) getAccessReq() *accessReq {
	ar := p.reqPool
	if ar == nil {
		ar = &accessReq{p: p}
		ar.submit = func() { ar.p.vus[ar.part].Submit(&ar.req) }
		ar.deliverFn = func() { ar.deliver() }
		ar.req.Reply = func(rep Reply) {
			// Reply travels back over the down crossbar.
			ar.rep = rep
			bytes := tm.ReplyBytes
			if rep.Status == StatusAbort {
				bytes = tm.AbortReplyBytes
			}
			ar.p.trans.ToCore(ar.part, ar.st.w.Core, bytes, ar.deliverFn)
		}
	} else {
		p.reqPool = ar.next
	}
	return ar
}

// deliver applies one VU reply at the core: record abort timestamps, resolve
// the issuing lane (and, for loads, every lane sharing the word), recycle the
// request, and complete the access when the last lane lands.
func (ar *accessReq) deliver() {
	st, p := ar.st, ar.p
	rep := ar.rep
	res := tm.AccessResult{
		Lane:    ar.lane,
		Value:   rep.Value,
		Abort:   rep.Status == StatusAbort,
		Cause:   rep.Cause,
		AbortTS: rep.AbortTS,
	}
	if res.Abort && rep.AbortTS > p.pendAbortTS[st.w.GWID] {
		p.pendAbortTS[st.w.GWID] = rep.AbortTS
	}
	if st.isWrite {
		st.results[ar.idx] = res
		st.remaining--
	} else {
		// Resolve all lanes sharing this word.
		addr := ar.req.Addr
		for j, la := range st.lanes {
			if la.Addr == addr {
				r := res
				r.Lane = la.Lane
				st.results[j] = r
				st.remaining--
			}
		}
	}
	ar.st = nil
	ar.next = p.reqPool
	p.reqPool = ar
	if st.remaining == 0 {
		st.done(st.results)
		st.release()
	}
}

// Access implements tm.Protocol: every lane's access is sent to its home
// partition's validation unit for eager conflict detection.
func (p *Protocol) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	if len(lanes) == 0 {
		done(nil)
		return
	}
	st := p.getState()
	st.w, st.isWrite, st.lanes, st.done = w, isWrite, lanes, done
	st.remaining = len(lanes)
	if cap(st.results) < len(lanes) {
		st.results = make([]tm.AccessResult, len(lanes))
	} else {
		st.results = st.results[:len(lanes)]
	}
	ts := p.warpts[w.GWID]

	for i, la := range lanes {
		if !isWrite {
			// Coalesce loads: lanes reading the same word share one request —
			// the first occurrence issues it, and its reply resolves all of
			// them (linear scan: at most WarpWidth lanes).
			dup := false
			for j := 0; j < i; j++ {
				if lanes[j].Addr == la.Addr {
					dup = true
					break
				}
			}
			if dup {
				st.results[i].Lane = la.Lane // fully overwritten by the shared reply
				continue
			}
		}
		ar := p.getAccessReq()
		ar.st = st
		ar.idx = i
		ar.lane = la.Lane
		ar.part = p.amap.Partition(la.Addr)
		ar.req.GWID = w.GWID
		ar.req.Warpts = ts
		ar.req.Addr = la.Addr
		ar.req.IsWrite = isWrite
		p.trans.ToPartition(w.Core, ar.part, tm.ReqBytes, ar.submit)
	}
}

// commitLog is one partition's slice of a warp's commit/cleanup message.
// Pooled; submit/done are prebuilt and the object recycles itself once the
// commit unit has processed the message.
type commitLog struct {
	p         *Protocol
	part      int
	core      int
	entries   []CommitEntry
	batchNext *commitLog   // chains the partitions of one commit
	batch     *commitBatch // ring arbitration: batch awaiting this log's ack
	submit    func()
	ack       func() // commit-unit callback; hops home via AckHop when set
	done      func()
	next      *commitLog // freelist
}

func (p *Protocol) getCommitLog(part, core int) *commitLog {
	cl := p.logPool
	if cl == nil {
		cl = &commitLog{p: p}
		cl.submit = func() { cl.p.cus[cl.part].Submit(cl.entries, cl.ack) }
		cl.ack = func() {
			if q := cl.p; q.AckHop != nil {
				q.AckHop(cl.part, cl.core, cl.done)
				return
			}
			cl.done()
		}
		cl.done = func() {
			q := cl.p
			q.pendingLogs--
			// Capture the ring-arbitration fields before recycling: the pool
			// may hand this object to another commit from inside a callback.
			b, part, core := cl.batch, cl.part, cl.core
			cl.batch = nil
			cl.entries = cl.entries[:0]
			cl.next = q.logPool
			q.logPool = cl
			q.maybeFinishDrain()
			q.maybeNotifyIdle()
			if b != nil {
				// Ring arbitration: the ack travels back to the core; the
				// warp resumes only when every partition has acknowledged.
				q.trans.ToCore(part, core, tm.HeaderBytes, b.ackFn)
			}
		}
	} else {
		p.logPool = cl.next
	}
	cl.part, cl.core = part, core
	return cl
}

// commitBatch is one commit's deferred transmit step (after write-log
// serialization). Pooled with a prebuilt callback like the access objects.
type commitBatch struct {
	p        *Protocol
	head     *commitLog
	resume   func(tm.CommitOutcome)
	acksLeft int // ring arbitration: partition acks outstanding
	runFn    func()
	ackFn    func()
	next     *commitBatch
}

func (p *Protocol) getBatch(head *commitLog, resume func(tm.CommitOutcome)) *commitBatch {
	b := p.batchPool
	if b == nil {
		b = &commitBatch{p: p}
		b.runFn = func() {
			q := b.p
			n := 0
			for cl := b.head; cl != nil; {
				next := cl.batchNext
				cl.batchNext = nil
				bytes := tm.HeaderBytes
				for _, e := range cl.entries {
					if e.Commit {
						bytes += tm.CommitEntryBytes
					} else {
						bytes += tm.CleanupEntryBytes
					}
				}
				if q.cfg.RingArb {
					cl.batch = b
				}
				q.pendingLogs++
				q.trans.ToPartition(cl.core, cl.part, bytes, cl.submit)
				cl = next
				n++
			}
			if q.cfg.RingArb && n > 0 {
				// Ring arbitration: hold the warp (and the batch) until every
				// partition's commit unit has acknowledged; ackFn finishes.
				b.acksLeft = n
				b.head = nil
				return
			}
			// Recycle before resume: the warp may begin its next transaction
			// (and commit again) from inside the callback.
			fin := b.resume
			b.head, b.resume = nil, nil
			b.next = q.batchPool
			q.batchPool = b
			q.activeTx--
			q.maybeFinishDrain()
			q.maybeNotifyIdle()
			fin(tm.CommitOutcome{})
		}
		b.ackFn = func() {
			b.acksLeft--
			if b.acksLeft > 0 {
				return
			}
			q := b.p
			fin := b.resume
			b.resume = nil
			b.next = q.batchPool
			q.batchPool = b
			q.activeTx--
			q.maybeFinishDrain()
			q.maybeNotifyIdle()
			fin(tm.CommitOutcome{})
		}
	} else {
		p.batchPool = b.next
	}
	b.head, b.resume = head, resume
	return b
}

// Commit implements tm.Protocol. The core serializes the warp's write log
// (one entry per cycle), transmits per-partition commit/cleanup messages,
// and resumes the warp immediately: eager detection guarantees the commit
// succeeds, so nothing waits for acknowledgements. (Under cfg.RingArb the
// resume instead waits for every partition's ack — ring arbitration puts
// the commit back on the critical path.)
func (p *Protocol) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	total := 0
	for _, e := range w.Log.Writes {
		inCommit := commitMask.Bit(e.Lane)
		if !inCommit && !abortMask.Bit(e.Lane) {
			continue
		}
		part := p.amap.Partition(e.Addr)
		cl := p.partLog[part]
		if cl == nil {
			cl = p.getCommitLog(part, w.Core)
			p.partLog[part] = cl
		}
		cl.entries = append(cl.entries, CommitEntry{
			Addr:   e.Addr,
			Data:   e.Value,
			Writes: e.Writes,
			Commit: inCommit,
		})
		total++
	}
	// Chain this commit's logs in ascending partition order (map iteration
	// would randomize crossbar contention and thus timing between identical
	// runs) and clear the grouping scratch for the next commit.
	var head, tail *commitLog
	for part := range p.partLog {
		if cl := p.partLog[part]; cl != nil {
			if tail == nil {
				head = cl
			} else {
				tail.batchNext = cl
			}
			tail = cl
			p.partLog[part] = nil
		}
	}

	ts := p.warpts[w.GWID]
	// Record committed lanes for the replay checker before the log resets.
	if p.Record {
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !commitMask.Bit(lane) {
				continue
			}
			reads, writes := w.Log.LaneEntries(lane)
			p.seq++
			p.Committed = append(p.Committed, tm.CommittedTx{
				GWID:     w.GWID,
				Lane:     lane,
				SerialTS: (p.epoch << 48) | ts,
				Seq:      p.seq,
				Reads:    reads,
				Writes:   writes,
			})
		}
	}

	// Advance warpts past every conflict observed by aborted lanes.
	if abortMask != 0 {
		next := ts
		if pend := p.pendAbortTS[w.GWID]; pend > next {
			next = pend
		}
		p.warpts[w.GWID] = next + 1
	}
	p.pendAbortTS[w.GWID] = 0

	// Serialize the write log at one entry per cycle, then transmit. The
	// warp resumes right after serialization — commits are off the critical
	// path (no validation, no acks).
	p.eng.Schedule(sim.Cycle(total), p.getBatch(head, resume).runFn)
}

// LockedGranules sums live write reservations across all partitions; it must
// be zero after a run (invariant check used by integration tests).
func (p *Protocol) LockedGranules() int {
	n := 0
	for _, vu := range p.vus {
		n += vu.Meta.LockedEntries()
	}
	return n
}

// StallOccupancy returns the current total stall-buffer occupancy.
func (p *Protocol) StallOccupancy() int {
	n := 0
	for _, vu := range p.vus {
		n += vu.Stall.Occupancy()
	}
	return n
}
