package core

import "getm/internal/tm"

// Tracer receives protocol events from a validation unit. It exists for
// observability tooling (cmd/getm-trace reproduces the paper's Fig 7
// walkthrough with it) and for tests that assert on protocol behaviour; a
// nil tracer costs nothing on the hot path.
type Tracer interface {
	// OnRequest fires when the VU starts processing an access.
	OnRequest(partition int, req *Request)
	// OnOutcome fires with the decision for an access: "success",
	// "abort", or "queue".
	OnOutcome(partition int, req *Request, outcome string, cause tm.AbortCause, entry Entry)
	// OnRelease fires when a commit/cleanup entry releases a reservation.
	OnRelease(partition int, granule uint64, remaining int, committed bool)
}

// SetTracer attaches a tracer to the VU (nil detaches).
func (v *VU) SetTracer(t Tracer) { v.tracer = t }

func (v *VU) traceRequest(req *Request) {
	if v.tracer != nil {
		v.tracer.OnRequest(v.part.ID, req)
	}
}

func (v *VU) traceOutcome(req *Request, outcome string, cause tm.AbortCause, e *Entry) {
	if v.tracer != nil {
		v.tracer.OnOutcome(v.part.ID, req, outcome, cause, *e)
	}
}

func (v *VU) traceRelease(granule uint64, remaining int, committed bool) {
	if v.tracer != nil {
		v.tracer.OnRelease(v.part.ID, granule, remaining, committed)
	}
}
