package core

// StallBuffer queues transactional accesses that passed the timestamp check
// but found their granule write-reserved by an older transaction (Fig 9).
// It tracks a small number of address lines, each holding several requests
// from different warps contending for the same granule. When a commit or
// cleanup releases the granule (#writes reaches 0), the oldest queued
// request (minimum warpts) re-enters the validation unit.
type StallBuffer struct {
	lines          int
	entriesPerLine int
	byGranule      map[uint64][]*StalledReq

	// MaxOccupancy tracks the peak number of queued requests (Fig 15);
	// OccupancySamples accumulates per-address queue depths (Fig 16).
	MaxOccupancy int
	totalQueued  int
	PerAddrCount uint64
	PerAddrTotal uint64
	EnqueueCount uint64
	RejectedFull uint64
	tracker      *OccTracker
}

// StalledReq is an opaque queued request; the VU supplies the retry closure.
type StalledReq struct {
	Granule uint64
	Warpts  uint64
	Retry   func()
}

// OccTracker aggregates concurrent occupancy across several stall buffers
// (the paper's Fig 15 reports the maximum total across the whole GPU).
type OccTracker struct {
	cur int
	Max int
}

func (o *OccTracker) inc() {
	o.cur++
	if o.cur > o.Max {
		o.Max = o.cur
	}
}

func (o *OccTracker) dec() { o.cur-- }

// NewStallBuffer builds a buffer with the given geometry.
func NewStallBuffer(lines, entriesPerLine int) *StallBuffer {
	return &StallBuffer{
		lines:          lines,
		entriesPerLine: entriesPerLine,
		byGranule:      make(map[uint64][]*StalledReq),
	}
}

// SetTracker attaches a GPU-wide occupancy tracker.
func (b *StallBuffer) SetTracker(t *OccTracker) { b.tracker = t }

// Enqueue queues a request, returning false if the buffer is full (the
// transaction must abort instead, per §V-B2).
func (b *StallBuffer) Enqueue(r *StalledReq) bool {
	q, lineExists := b.byGranule[r.Granule]
	if !lineExists && len(b.byGranule) >= b.lines {
		b.RejectedFull++
		return false
	}
	if len(q) >= b.entriesPerLine {
		b.RejectedFull++
		return false
	}
	b.byGranule[r.Granule] = append(q, r)
	b.totalQueued++
	if b.tracker != nil {
		b.tracker.inc()
	}
	b.EnqueueCount++
	b.PerAddrCount++
	b.PerAddrTotal += uint64(len(b.byGranule[r.Granule]))
	if b.totalQueued > b.MaxOccupancy {
		b.MaxOccupancy = b.totalQueued
	}
	return true
}

// Release pops the oldest (minimum warpts) request waiting on granule, if
// any. The caller re-enters it into the validation unit.
func (b *StallBuffer) Release(granule uint64) *StalledReq {
	q := b.byGranule[granule]
	if len(q) == 0 {
		return nil
	}
	oldest := 0
	for i := 1; i < len(q); i++ {
		if q[i].Warpts < q[oldest].Warpts {
			oldest = i
		}
	}
	r := q[oldest]
	q = append(q[:oldest], q[oldest+1:]...)
	if len(q) == 0 {
		delete(b.byGranule, granule)
	} else {
		b.byGranule[granule] = q
	}
	b.totalQueued--
	if b.tracker != nil {
		b.tracker.dec()
	}
	return r
}

// DrainAll removes and returns every queued request (rollover flush).
func (b *StallBuffer) DrainAll() []*StalledReq {
	var all []*StalledReq
	for g, q := range b.byGranule {
		all = append(all, q...)
		delete(b.byGranule, g)
	}
	if b.tracker != nil {
		for i := 0; i < b.totalQueued; i++ {
			b.tracker.dec()
		}
	}
	b.totalQueued = 0
	return all
}

// Occupancy returns the number of queued requests.
func (b *StallBuffer) Occupancy() int { return b.totalQueued }

// Waiting returns the number of requests queued on granule.
func (b *StallBuffer) Waiting(granule uint64) int { return len(b.byGranule[granule]) }

// MeanPerAddr returns the average queue depth observed at enqueue time
// (Fig 16's "stalled requests / addr").
func (b *StallBuffer) MeanPerAddr() float64 {
	if b.PerAddrCount == 0 {
		return 0
	}
	return float64(b.PerAddrTotal) / float64(b.PerAddrCount)
}
