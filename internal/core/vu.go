package core

import (
	"fmt"

	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/stats"
	"getm/internal/tm"
)

// Status is a validation unit's decision for one access.
type Status uint8

// VU decisions.
const (
	StatusSuccess Status = iota
	StatusAbort
)

// Request is one transactional access arriving at a validation unit.
type Request struct {
	GWID    int
	Warpts  uint64
	Addr    uint64 // word-aligned data address
	IsWrite bool
	// Reply receives the decision. Queued requests reply only after they
	// are released and re-validated.
	Reply func(Reply)
}

// Reply is the VU's answer.
type Reply struct {
	Status  Status
	Value   uint64 // load data on success
	Cause   tm.AbortCause
	AbortTS uint64 // newest timestamp observed; the core advances warpts past it
}

// VU is a GETM validation unit, colocated with one LLC partition (Fig 5).
// It owns the partition's metadata table and stall buffer and carries out
// the Fig 6 flowchart for every transactional access at a service rate of
// one request per cycle.
type VU struct {
	cfg   Config
	eng   *sim.Engine
	part  *mem.Partition
	Meta  *MetaTable
	Stall *StallBuffer

	nextService sim.Cycle

	// AccessCycles records per-request metadata latency (Fig 13).
	AccessCycles stats.Hist
	Requests     uint64
	Queued       uint64
	AbortsWAR    uint64
	AbortsWAWRAW uint64
	AbortsFull   uint64
	Overflows    uint64

	// onTimestampHighWater is invoked when a timestamp crosses the rollover
	// threshold (wired by the rollover coordinator).
	onTimestampHighWater func()
	rolloverArmed        bool
	tracer               Tracer
}

// NewVU builds a validation unit for one partition. preciseEntries and
// approxEntries are this partition's share of the GPU-wide budgets.
func NewVU(cfg Config, eng *sim.Engine, part *mem.Partition, preciseEntries, approxEntries int, rng *sim.RNG) *VU {
	return &VU{
		cfg:           cfg,
		eng:           eng,
		part:          part,
		Meta:          NewMetaTable(cfg, preciseEntries, approxEntries, rng),
		Stall:         NewStallBuffer(cfg.StallLines, cfg.StallEntriesPerLine),
		AccessCycles:  stats.Hist{Buckets: make([]uint64, 64)},
		rolloverArmed: cfg.TSBits < 64,
	}
}

// SetHighWaterHook registers the rollover trigger callback.
func (v *VU) SetHighWaterHook(fn func()) { v.onTimestampHighWater = fn }

// Submit delivers a request to the VU (called when the up-crossbar message
// arrives). Service is serialized at one request per cycle.
func (v *VU) Submit(req *Request) {
	start := v.eng.Now()
	if v.nextService > start {
		start = v.nextService
	}
	v.nextService = start + 1
	v.eng.At(start, func() { v.process(req, false) })
}

// process runs the Fig 6 flowchart for req. retried marks stall-buffer
// re-entries (they have already been counted as queued).
func (v *VU) process(req *Request, retried bool) {
	v.Requests++
	v.traceRequest(req)
	granule := v.cfg.GranuleOf(req.Addr)
	e, metaCycles, overflowed := v.Meta.Lookup(granule)
	if overflowed {
		v.Overflows++
	}
	v.AccessCycles.Add(int(metaCycles))
	// The metadata access occupies the VU for its extra cycles.
	if metaCycles > 1 {
		v.nextService += metaCycles - 1
	}
	decide := func(fn func()) { v.eng.Schedule(metaCycles, fn) }

	if req.IsWrite {
		v.processStore(req, e, decide)
	} else {
		v.processLoad(req, e, decide)
	}
	// If the request finished (any outcome) leaving the granule unlocked,
	// wake the next waiter: a retried load that succeeds takes no lock, so
	// without this the remaining queued requests would never be released.
	if e.Writes == 0 {
		v.wakeNext(granule)
	}
}

// wakeNext retries the oldest request stalled on granule, if any.
func (v *VU) wakeNext(granule uint64) {
	if r := v.Stall.Release(granule); r != nil {
		v.eng.Schedule(1, r.Retry)
	}
}

// processLoad: owner check ①, timestamp check ③, lock check ⑤ (Fig 6 left).
func (v *VU) processLoad(req *Request, e *Entry, decide func(func())) {
	switch {
	case e.Writes > 0 && e.Owner == req.GWID:
		// ② Owner bypass: the line is locked by this transaction.
		if req.Warpts > e.RTS {
			e.RTS = req.Warpts
		}
		v.bumpTS(e.RTS)
		v.traceOutcome(req, "success", tm.CauseNone, e)
		v.replyLoad(req, decide)
	case req.Warpts >= e.WTS:
		if e.Writes > 0 {
			// ⑦ Queue (RAW): locked by a logically older transaction.
			v.queue(req, e, decide)
			return
		}
		// ⑥ Success: update rts.
		if req.Warpts > e.RTS {
			e.RTS = req.Warpts
		}
		v.bumpTS(e.RTS)
		v.traceOutcome(req, "success", tm.CauseNone, e)
		v.replyLoad(req, decide)
	default:
		// ④ Abort (WAR): written by a logically later transaction.
		v.AbortsWAR++
		v.traceOutcome(req, "abort", tm.CauseWAR, e)
		ts := e.WTS
		decide(func() {
			req.Reply(Reply{Status: StatusAbort, Cause: tm.CauseWAR, AbortTS: ts})
		})
	}
}

// processStore: owner check ①, timestamp check ③, lock check ⑤ (Fig 6 right).
func (v *VU) processStore(req *Request, e *Entry, decide func(func())) {
	switch {
	case e.Writes > 0 && e.Owner == req.GWID:
		// ② Owner bypass: wts was set by the previous write; just count.
		e.Writes++
		v.traceOutcome(req, "success", tm.CauseNone, e)
		decide(func() { req.Reply(Reply{Status: StatusSuccess}) })
	case req.Warpts >= e.WTS && req.Warpts >= e.RTS:
		if e.Writes > 0 {
			// ⑦ Queue (WAW): reserved by a logically older transaction.
			v.queue(req, e, decide)
			return
		}
		// ⑥ Success: reserve the granule.
		e.WTS = req.Warpts + 1
		e.Owner = req.GWID
		e.Writes = 1
		v.bumpTS(e.WTS)
		v.traceOutcome(req, "success", tm.CauseNone, e)
		decide(func() { req.Reply(Reply{Status: StatusSuccess}) })
	default:
		// ④ Abort (WAW or RAW): written or observed by a later transaction.
		v.AbortsWAWRAW++
		v.traceOutcome(req, "abort", tm.CauseWAWRAW, e)
		ts := maxU64(e.WTS, e.RTS)
		decide(func() {
			req.Reply(Reply{Status: StatusAbort, Cause: tm.CauseWAWRAW, AbortTS: ts})
		})
	}
}

// queue places a request in the stall buffer (aborting it if full). The
// request must be logically younger than the reservation owner — the
// invariant that makes the wait-for graph acyclic (see DESIGN.md).
func (v *VU) queue(req *Request, e *Entry, decide func(func())) {
	if req.Warpts+1 < e.WTS {
		panic(fmt.Sprintf("core: queued request (ts %d) not younger than reservation (wts %d)", req.Warpts, e.WTS))
	}
	granule := v.cfg.GranuleOf(req.Addr)
	ok := v.Stall.Enqueue(&StalledReq{
		Granule: granule,
		Warpts:  req.Warpts,
		Retry:   func() { v.process(req, true) },
	})
	if !ok {
		v.AbortsFull++
		v.traceOutcome(req, "abort", tm.CauseStallFull, e)
		ts := maxU64(e.WTS, e.RTS)
		decide(func() {
			req.Reply(Reply{Status: StatusAbort, Cause: tm.CauseStallFull, AbortTS: ts})
		})
		return
	}
	v.traceOutcome(req, "queue", tm.CauseNone, e)
	v.Queued++
}

// replyLoad returns the data word for a load that passed the checks. The
// value is captured at the decision instant — the check and the data access
// are one pipelined operation in the validation unit, so a commit-unit write
// arriving during the access latency must not be observable by a load that
// was already ordered before it (its rts was taken at the check). The
// partition's access latency is still charged before the reply leaves.
func (v *VU) replyLoad(req *Request, decide func(func())) {
	val := v.part.ReadNow(req.Addr)
	delay := v.part.AccessDelay(req.Addr)
	decide(func() {
		v.eng.Schedule(delay, func() {
			req.Reply(Reply{Status: StatusSuccess, Value: val})
		})
	})
}

// ReleaseGranule decrements the write reservation after a commit/cleanup
// entry is processed; when it reaches zero, the oldest stalled request for
// the granule is retried. committed distinguishes commit data writes from
// abort cleanups (tracing only).
func (v *VU) ReleaseGranule(granule uint64, n int, committed bool) {
	remaining := v.Meta.Release(granule, n)
	v.traceRelease(granule, remaining, committed)
	if remaining == 0 {
		if r := v.Stall.Release(granule); r != nil {
			// Re-entry consumes a fresh VU slot.
			v.eng.Schedule(1, r.Retry)
		}
	}
}

// bumpTS checks the rollover high-water mark.
func (v *VU) bumpTS(ts uint64) {
	if v.rolloverArmed && ts >= v.cfg.RolloverThreshold() && v.onTimestampHighWater != nil {
		v.onTimestampHighWater()
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// CommitEntry is one element of a commit/cleanup log.
type CommitEntry struct {
	Addr   uint64 // word address
	Data   uint64
	Writes int
	// Commit is true for committing lanes (write the data) and false for
	// aborted lanes (cleanup only).
	Commit bool
}

// CU is a GETM commit unit: it receives write logs from SIMT cores,
// coalesces entries into 32-byte regions, writes data to the LLC at the
// configured bandwidth, and releases write reservations. There are no acks —
// GETM commits are off the critical path.
type CU struct {
	cfg  Config
	eng  *sim.Engine
	part *mem.Partition
	vu   *VU

	nextFree sim.Cycle

	CommitsProcessed uint64
	EntriesWritten   uint64
	BytesWritten     uint64
}

// NewCU builds the commit unit colocated with vu.
func NewCU(cfg Config, eng *sim.Engine, part *mem.Partition, vu *VU) *CU {
	return &CU{cfg: cfg, eng: eng, part: part, vu: vu}
}

// Submit hands a commit/cleanup log to the CU (on up-crossbar delivery).
// Entries from one message are processed as a unit: data writes coalesced
// to 32-byte regions and drained at CommitBytesPerCycle. done (optional)
// fires after the message's releases have taken effect — the rollover drain
// uses it to know no cleanup is still in flight.
//
// The CU shares the metadata table and LLC port with its VU, so processing
// a commit occupies the VU's service timeline: an access delivered after a
// commit message cannot be checked before the commit's releases and data
// writes have taken effect. (Without this ordering point, a warp's next
// transaction could owner-bypass-read a granule whose previous commit is
// still draining through the commit unit and observe pre-commit data.)
func (c *CU) Submit(entries []CommitEntry, done func()) {
	start := c.eng.Now()
	if c.nextFree > start {
		start = c.nextFree
	}
	if c.vu.nextService > start {
		start = c.vu.nextService
	}
	// Coalesce committed writes into 32-byte regions for bandwidth cost.
	regions := map[uint64]bool{}
	for _, e := range entries {
		if e.Commit {
			regions[e.Addr/32] = true
		}
	}
	bytes := uint64(len(regions) * 32)
	cycles := sim.Cycle((bytes + uint64(c.cfg.CommitBytesPerCycle) - 1) / uint64(c.cfg.CommitBytesPerCycle))
	if cycles == 0 {
		cycles = 1
	}
	c.nextFree = start + cycles
	c.vu.nextService = start + cycles
	c.BytesWritten += bytes
	c.CommitsProcessed++

	c.eng.At(start+cycles, func() {
		for _, e := range entries {
			if e.Commit {
				c.part.WriteNow(e.Addr, e.Data)
				c.EntriesWritten++
			}
			c.vu.ReleaseGranule(c.cfg.GranuleOf(e.Addr), e.Writes, e.Commit)
		}
		if done != nil {
			done()
		}
	})
}
