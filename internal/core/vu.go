package core

import (
	"fmt"

	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/trace"
)

// Status is a validation unit's decision for one access.
type Status uint8

// VU decisions.
const (
	StatusSuccess Status = iota
	StatusAbort
)

// Request is one transactional access arriving at a validation unit.
type Request struct {
	GWID    int
	Warpts  uint64
	Addr    uint64 // word-aligned data address
	IsWrite bool
	// Reply receives the decision. Queued requests reply only after they
	// are released and re-validated.
	Reply func(Reply)
}

// Reply is the VU's answer.
type Reply struct {
	Status  Status
	Value   uint64 // load data on success
	Cause   tm.AbortCause
	AbortTS uint64 // newest timestamp observed; the core advances warpts past it
}

// VU is a GETM validation unit, colocated with one LLC partition (Fig 5).
// It owns the partition's metadata table and stall buffer and carries out
// the Fig 6 flowchart for every transactional access at a service rate of
// one request per cycle.
type VU struct {
	cfg   Config
	eng   *sim.Engine
	part  *mem.Partition
	Meta  *MetaTable
	Stall *StallBuffer

	nextService sim.Cycle

	// AccessCycles records per-request metadata latency (Fig 13).
	AccessCycles stats.Hist
	Requests     uint64
	Queued       uint64
	AbortsWAR    uint64
	AbortsWAWRAW uint64
	AbortsFull   uint64
	Overflows    uint64

	// onTimestampHighWater is invoked when a timestamp crosses the rollover
	// threshold (wired by the rollover coordinator).
	onTimestampHighWater func()
	rolloverArmed        bool
	rec                  *trace.Recorder

	// opPool recycles vuOp objects (single goroutine per machine, no locking).
	opPool *vuOp
}

// vuOp carries one request through the VU pipeline. Pooled: the process,
// retry, and reply callbacks are built once per object, so a steady-state
// access schedules engine events without allocating.
type vuOp struct {
	v   *VU
	req *Request
	rep Reply
	// extra is the LLC access delay charged after the decision (loads).
	extra sim.Cycle
	// stalled is this op's stall-buffer node; its Retry re-enters process.
	stalled   StalledReq
	processFn func()
	replyFn   func()
	next      *vuOp
}

func (v *VU) getOp(req *Request) *vuOp {
	op := v.opPool
	if op == nil {
		op = &vuOp{v: v}
		op.processFn = func() { op.v.process(op, false) }
		op.stalled.Retry = func() { op.v.process(op, true) }
		op.replyFn = func() {
			if d := op.extra; d > 0 {
				// Load data access latency: charged after the decision.
				op.extra = 0
				op.v.eng.Schedule(d, op.replyFn)
				return
			}
			// Recycle before Reply: the callback may submit a fresh request.
			req, rep := op.req, op.rep
			op.req = nil
			op.next = op.v.opPool
			op.v.opPool = op
			req.Reply(rep)
		}
	} else {
		v.opPool = op.next
	}
	op.req = req
	return op
}

// NewVU builds a validation unit for one partition. preciseEntries and
// approxEntries are this partition's share of the GPU-wide budgets.
func NewVU(cfg Config, eng *sim.Engine, part *mem.Partition, preciseEntries, approxEntries int, rng *sim.RNG) *VU {
	return &VU{
		cfg:           cfg,
		eng:           eng,
		part:          part,
		Meta:          NewMetaTable(cfg, preciseEntries, approxEntries, rng),
		Stall:         NewStallBuffer(cfg.StallLines, cfg.StallEntriesPerLine),
		AccessCycles:  stats.Hist{Buckets: make([]uint64, 64)},
		rolloverArmed: cfg.TSBits < 64,
	}
}

// SetHighWaterHook registers the rollover trigger callback.
func (v *VU) SetHighWaterHook(fn func()) { v.onTimestampHighWater = fn }

// SetTrace attaches the machine-wide event recorder (nil disables; every
// trace helper below starts with a single pointer compare, so the disabled
// hot path stays allocation-free — see TestGETMStepAllocs).
func (v *VU) SetTrace(rec *trace.Recorder) { v.rec = rec }

func (v *VU) traceRequest(req *Request) {
	if v.rec == nil {
		return
	}
	isW := uint64(0)
	if req.IsWrite {
		isW = 1
	}
	v.rec.Emit(trace.SrcCore, trace.KVURequest, int32(v.part.ID),
		req.Addr, req.Warpts, uint64(req.GWID), isW)
}

// traceOutcome records a Fig 6 decision with the granule metadata after it;
// outcome is one of trace.VUSuccess/VUAbort/VUQueue.
func (v *VU) traceOutcome(req *Request, outcome uint8, cause tm.AbortCause, e *Entry) {
	if v.rec == nil {
		return
	}
	v.rec.Emit(trace.SrcCore, trace.KVUOutcome, int32(v.part.ID),
		req.Addr, e.WTS, e.RTS, trace.PackVUOutcome(outcome, uint8(cause), e.Writes, e.Owner))
}

func (v *VU) traceRelease(granule uint64, remaining int, committed bool) {
	if v.rec == nil {
		return
	}
	c := uint64(0)
	if committed {
		c = 1
	}
	v.rec.Emit(trace.SrcCore, trace.KVURelease, int32(v.part.ID),
		granule, uint64(remaining), c, 0)
}

func (v *VU) traceStall(kind trace.Kind, granule, warpts uint64) {
	if v.rec == nil {
		return
	}
	v.rec.Emit(trace.SrcCore, kind, int32(v.part.ID),
		granule, warpts, uint64(v.Stall.Occupancy()), 0)
}

// Submit delivers a request to the VU (called when the up-crossbar message
// arrives). Service is serialized at one request per cycle.
func (v *VU) Submit(req *Request) {
	start := v.eng.Now()
	if v.nextService > start {
		start = v.nextService
	}
	v.nextService = start + 1
	v.eng.At(start, v.getOp(req).processFn)
}

// process runs the Fig 6 flowchart for op's request. retried marks
// stall-buffer re-entries (they have already been counted as queued).
func (v *VU) process(op *vuOp, retried bool) {
	req := op.req
	v.Requests++
	v.traceRequest(req)
	granule := v.cfg.GranuleOf(req.Addr)
	e, metaCycles, overflowed := v.Meta.Lookup(granule)
	if overflowed {
		v.Overflows++
	}
	v.AccessCycles.Add(int(metaCycles))
	// The metadata access occupies the VU for its extra cycles.
	if metaCycles > 1 {
		v.nextService += metaCycles - 1
	}

	if req.IsWrite {
		v.processStore(op, e, metaCycles)
	} else {
		v.processLoad(op, e, metaCycles)
	}
	// If the request finished (any outcome) leaving the granule unlocked,
	// wake the next waiter: a retried load that succeeds takes no lock, so
	// without this the remaining queued requests would never be released.
	if e.Writes == 0 {
		v.wakeNext(granule)
	}
}

// wakeNext retries the oldest request stalled on granule, if any.
func (v *VU) wakeNext(granule uint64) {
	if r := v.Stall.Release(granule); r != nil {
		v.traceStall(trace.KStallWake, granule, r.Warpts)
		v.eng.Schedule(1, r.Retry)
	}
}

// processLoad: owner check ①, timestamp check ③, lock check ⑤ (Fig 6 left).
func (v *VU) processLoad(op *vuOp, e *Entry, metaCycles sim.Cycle) {
	req := op.req
	switch {
	case e.Writes > 0 && e.Owner == req.GWID:
		// ② Owner bypass: the line is locked by this transaction.
		if req.Warpts > e.RTS {
			e.RTS = req.Warpts
		}
		v.bumpTS(e.RTS)
		v.traceOutcome(req, trace.VUSuccess, tm.CauseNone, e)
		v.replyLoad(op, metaCycles)
	case req.Warpts >= e.WTS:
		if e.Writes > 0 {
			if v.cfg.FirstWriterWins {
				// First-writer-wins resolution: the reservation holder wins;
				// the requester aborts instead of waiting in the stall buffer.
				v.AbortsWAR++
				v.traceOutcome(req, trace.VUAbort, tm.CauseWAR, e)
				op.rep = Reply{Status: StatusAbort, Cause: tm.CauseWAR, AbortTS: e.WTS}
				v.eng.Schedule(metaCycles, op.replyFn)
				return
			}
			// ⑦ Queue (RAW): locked by a logically older transaction.
			v.queue(op, e, metaCycles)
			return
		}
		// ⑥ Success: update rts.
		if req.Warpts > e.RTS {
			e.RTS = req.Warpts
		}
		v.bumpTS(e.RTS)
		v.traceOutcome(req, trace.VUSuccess, tm.CauseNone, e)
		v.replyLoad(op, metaCycles)
	default:
		// ④ Abort (WAR): written by a logically later transaction.
		v.AbortsWAR++
		v.traceOutcome(req, trace.VUAbort, tm.CauseWAR, e)
		op.rep = Reply{Status: StatusAbort, Cause: tm.CauseWAR, AbortTS: e.WTS}
		v.eng.Schedule(metaCycles, op.replyFn)
	}
}

// processStore: owner check ①, timestamp check ③, lock check ⑤ (Fig 6 right).
func (v *VU) processStore(op *vuOp, e *Entry, metaCycles sim.Cycle) {
	req := op.req
	switch {
	case e.Writes > 0 && e.Owner == req.GWID:
		// ② Owner bypass: wts was set by the previous write; just count.
		e.Writes++
		v.traceOutcome(req, trace.VUSuccess, tm.CauseNone, e)
		op.rep = Reply{Status: StatusSuccess}
		v.eng.Schedule(metaCycles, op.replyFn)
	case req.Warpts >= e.WTS && req.Warpts >= e.RTS:
		if e.Writes > 0 {
			if v.cfg.FirstWriterWins {
				// First-writer-wins resolution: abort rather than queue.
				v.AbortsWAWRAW++
				v.traceOutcome(req, trace.VUAbort, tm.CauseWAWRAW, e)
				op.rep = Reply{Status: StatusAbort, Cause: tm.CauseWAWRAW, AbortTS: maxU64(e.WTS, e.RTS)}
				v.eng.Schedule(metaCycles, op.replyFn)
				return
			}
			// ⑦ Queue (WAW): reserved by a logically older transaction.
			v.queue(op, e, metaCycles)
			return
		}
		// ⑥ Success: reserve the granule.
		e.WTS = req.Warpts + 1
		e.Owner = req.GWID
		e.Writes = 1
		v.bumpTS(e.WTS)
		v.traceOutcome(req, trace.VUSuccess, tm.CauseNone, e)
		op.rep = Reply{Status: StatusSuccess}
		v.eng.Schedule(metaCycles, op.replyFn)
	default:
		// ④ Abort (WAW or RAW): written or observed by a later transaction.
		v.AbortsWAWRAW++
		v.traceOutcome(req, trace.VUAbort, tm.CauseWAWRAW, e)
		op.rep = Reply{Status: StatusAbort, Cause: tm.CauseWAWRAW, AbortTS: maxU64(e.WTS, e.RTS)}
		v.eng.Schedule(metaCycles, op.replyFn)
	}
}

// queue places a request in the stall buffer (aborting it if full). The
// request must be logically younger than the reservation owner — the
// invariant that makes the wait-for graph acyclic (see DESIGN.md).
func (v *VU) queue(op *vuOp, e *Entry, metaCycles sim.Cycle) {
	req := op.req
	if req.Warpts+1 < e.WTS {
		panic(fmt.Sprintf("core: queued request (ts %d) not younger than reservation (wts %d)", req.Warpts, e.WTS))
	}
	op.stalled.Granule = v.cfg.GranuleOf(req.Addr)
	op.stalled.Warpts = req.Warpts
	if !v.Stall.Enqueue(&op.stalled) {
		v.AbortsFull++
		v.traceOutcome(req, trace.VUAbort, tm.CauseStallFull, e)
		v.traceStall(trace.KStallReject, op.stalled.Granule, req.Warpts)
		op.rep = Reply{Status: StatusAbort, Cause: tm.CauseStallFull, AbortTS: maxU64(e.WTS, e.RTS)}
		v.eng.Schedule(metaCycles, op.replyFn)
		return
	}
	v.traceOutcome(req, trace.VUQueue, tm.CauseNone, e)
	v.traceStall(trace.KStallEnq, op.stalled.Granule, req.Warpts)
	v.Queued++
}

// replyLoad returns the data word for a load that passed the checks. The
// value is captured at the decision instant — the check and the data access
// are one pipelined operation in the validation unit, so a commit-unit write
// arriving during the access latency must not be observable by a load that
// was already ordered before it (its rts was taken at the check). The
// partition's access latency is still charged before the reply leaves.
func (v *VU) replyLoad(op *vuOp, metaCycles sim.Cycle) {
	op.rep = Reply{Status: StatusSuccess, Value: v.part.ReadNow(op.req.Addr)}
	op.extra = v.part.AccessDelay(op.req.Addr)
	v.eng.Schedule(metaCycles, op.replyFn)
}

// ReleaseGranule decrements the write reservation after a commit/cleanup
// entry is processed; when it reaches zero, the oldest stalled request for
// the granule is retried. committed distinguishes commit data writes from
// abort cleanups (tracing only).
func (v *VU) ReleaseGranule(granule uint64, n int, committed bool) {
	remaining := v.Meta.Release(granule, n)
	v.traceRelease(granule, remaining, committed)
	if remaining == 0 {
		if r := v.Stall.Release(granule); r != nil {
			v.traceStall(trace.KStallWake, granule, r.Warpts)
			// Re-entry consumes a fresh VU slot.
			v.eng.Schedule(1, r.Retry)
		}
	}
}

// bumpTS checks the rollover high-water mark.
func (v *VU) bumpTS(ts uint64) {
	if v.rolloverArmed && ts >= v.cfg.RolloverThreshold() && v.onTimestampHighWater != nil {
		v.onTimestampHighWater()
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// CommitEntry is one element of a commit/cleanup log.
type CommitEntry struct {
	Addr   uint64 // word address
	Data   uint64
	Writes int
	// Commit is true for committing lanes (write the data) and false for
	// aborted lanes (cleanup only).
	Commit bool
}

// CU is a GETM commit unit: it receives write logs from SIMT cores,
// coalesces entries into 32-byte regions, writes data to the LLC at the
// configured bandwidth, and releases write reservations. There are no acks —
// GETM commits are off the critical path.
type CU struct {
	cfg  Config
	eng  *sim.Engine
	part *mem.Partition
	vu   *VU

	nextFree sim.Cycle

	CommitsProcessed uint64
	EntriesWritten   uint64
	BytesWritten     uint64

	// regions is per-Submit coalescing scratch (only its size is read, so map
	// iteration order cannot influence timing); jobPool recycles the deferred
	// apply step with its prebuilt callback.
	regions map[uint64]bool
	jobPool *cuJob

	rec *trace.Recorder
}

// SetTrace attaches the machine-wide event recorder (nil disables).
func (c *CU) SetTrace(rec *trace.Recorder) { c.rec = rec }

// NewCU builds the commit unit colocated with vu.
func NewCU(cfg Config, eng *sim.Engine, part *mem.Partition, vu *VU) *CU {
	return &CU{cfg: cfg, eng: eng, part: part, vu: vu, regions: make(map[uint64]bool)}
}

// cuJob is one commit/cleanup message's deferred apply step.
type cuJob struct {
	c       *CU
	entries []CommitEntry
	done    func()
	runFn   func()
	next    *cuJob
}

func (c *CU) getJob(entries []CommitEntry, done func()) *cuJob {
	j := c.jobPool
	if j == nil {
		j = &cuJob{c: c}
		j.runFn = func() {
			cu := j.c
			for _, e := range j.entries {
				if e.Commit {
					cu.part.WriteNow(e.Addr, e.Data)
					cu.EntriesWritten++
				}
				cu.vu.ReleaseGranule(cu.cfg.GranuleOf(e.Addr), e.Writes, e.Commit)
			}
			// Recycle before done: the callback may submit another log.
			fin := j.done
			j.entries, j.done = nil, nil
			j.next = cu.jobPool
			cu.jobPool = j
			if fin != nil {
				fin()
			}
		}
	} else {
		c.jobPool = j.next
	}
	j.entries, j.done = entries, done
	return j
}

// Submit hands a commit/cleanup log to the CU (on up-crossbar delivery).
// Entries from one message are processed as a unit: data writes coalesced
// to 32-byte regions and drained at CommitBytesPerCycle. done (optional)
// fires after the message's releases have taken effect — the rollover drain
// uses it to know no cleanup is still in flight.
//
// The CU shares the metadata table and LLC port with its VU, so processing
// a commit occupies the VU's service timeline: an access delivered after a
// commit message cannot be checked before the commit's releases and data
// writes have taken effect. (Without this ordering point, a warp's next
// transaction could owner-bypass-read a granule whose previous commit is
// still draining through the commit unit and observe pre-commit data.)
func (c *CU) Submit(entries []CommitEntry, done func()) {
	start := c.eng.Now()
	if c.nextFree > start {
		start = c.nextFree
	}
	if c.vu.nextService > start {
		start = c.vu.nextService
	}
	// Coalesce committed writes into 32-byte regions for bandwidth cost.
	clear(c.regions)
	for _, e := range entries {
		if e.Commit {
			c.regions[e.Addr/32] = true
		}
	}
	bytes := uint64(len(c.regions) * 32)
	cycles := sim.Cycle((bytes + uint64(c.cfg.CommitBytesPerCycle) - 1) / uint64(c.cfg.CommitBytesPerCycle))
	if cycles == 0 {
		cycles = 1
	}
	c.nextFree = start + cycles
	c.vu.nextService = start + cycles
	c.BytesWritten += bytes
	c.CommitsProcessed++
	if c.rec != nil {
		c.rec.Emit(trace.SrcCore, trace.KCommitMsg, int32(c.part.ID),
			uint64(len(entries)), bytes, 0, uint64(cycles))
	}

	c.eng.At(start+cycles, c.getJob(entries, done).runFn)
}
