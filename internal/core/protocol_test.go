package core

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

// fakeTransport delivers messages with a small fixed latency, preserving
// point-to-point FIFO order (the property the real crossbar provides).
type fakeTransport struct {
	eng     *sim.Engine
	latency sim.Cycle
	up      uint64
	down    uint64
}

func (f *fakeTransport) ToPartition(core, partition, bytes int, deliver func()) {
	f.up += uint64(bytes)
	f.eng.Schedule(f.latency, deliver)
}

func (f *fakeTransport) ToCore(partition, core, bytes int, deliver func()) {
	f.down += uint64(bytes)
	f.eng.Schedule(f.latency, deliver)
}

func (f *fakeTransport) BroadcastToCores(partition, bytes int, deliver func(core int)) {
	f.eng.Schedule(f.latency, func() { deliver(0) })
}

type protoHarness struct {
	eng   *sim.Engine
	img   *mem.Image
	parts []*mem.Partition
	vus   []*VU
	cus   []*CU
	proto *Protocol
	trans *fakeTransport
}

func newProtoHarness(cfg Config, nParts int) *protoHarness {
	eng := sim.NewEngine()
	img := mem.NewImage()
	amap := mem.AddressMap{Partitions: nParts, LineBytes: 128}
	trans := &fakeTransport{eng: eng, latency: 5}
	h := &protoHarness{eng: eng, img: img, trans: trans}
	rng := sim.NewRNG(99)
	pcfg := mem.DefaultPartitionConfig()
	pcfg.LLCBytes = 16 << 10
	for i := 0; i < nParts; i++ {
		p := mem.NewPartition(i, eng, img, pcfg)
		vu := NewVU(cfg, eng, p, cfg.PreciseEntries/nParts, cfg.ApproxEntries/nParts, rng.Fork(uint64(i)))
		h.parts = append(h.parts, p)
		h.vus = append(h.vus, vu)
		h.cus = append(h.cus, NewCU(cfg, eng, p, vu))
	}
	h.proto = NewProtocol(cfg, eng, amap, trans, h.vus, h.cus)
	h.proto.Record = true
	return h
}

// runTx executes a complete single-lane transaction: reads then writes, then
// commit. Returns false if any access aborted (commit then cleans up).
func (h *protoHarness) runTx(t *testing.T, gwid int, reads []uint64, writes map[uint64]uint64) bool {
	t.Helper()
	w := &tm.WarpTx{GWID: gwid, Core: 0, Log: tm.NewTxLog()}
	h.proto.Begin(w)
	aborted := false

	doAccess := func(isWrite bool, addr, val uint64) {
		var results []tm.AccessResult
		la := []tm.LaneAccess{{Lane: 0, Addr: addr, Value: val}}
		h.eng.Schedule(0, func() {
			h.proto.Access(w, isWrite, la, func(r []tm.AccessResult) { results = r })
		})
		h.eng.Run(0)
		if len(results) != 1 {
			t.Fatalf("access to %#x did not complete", addr)
		}
		if results[0].Abort {
			aborted = true
		} else if isWrite {
			w.Log.RecordWrite(0, addr, val)
		} else {
			w.Log.RecordRead(0, addr, results[0].Value)
		}
	}

	for _, a := range reads {
		if aborted {
			break
		}
		doAccess(false, a, 0)
	}
	if !aborted {
		for a, v := range writes {
			doAccess(true, a, v)
			if aborted {
				break
			}
		}
	}

	commitMask, abortMask := isa.LaneMask(0), isa.LaneMask(0)
	if aborted {
		abortMask = abortMask.Set(0)
	} else {
		commitMask = commitMask.Set(0)
	}
	resumed := false
	h.eng.Schedule(0, func() {
		h.proto.Commit(w, commitMask, abortMask, func(tm.CommitOutcome) { resumed = true })
	})
	h.eng.Run(0)
	if !resumed {
		t.Fatal("commit did not resume the warp")
	}
	return !aborted
}

func TestProtocolCommitWritesData(t *testing.T) {
	h := newProtoHarness(DefaultConfig(), 2)
	h.img.Write(0x100, 10)
	ok := h.runTx(t, 1, []uint64{0x100}, map[uint64]uint64{0x100: 42})
	if !ok {
		t.Fatal("uncontended tx aborted")
	}
	if got := h.img.Read(0x100); got != 42 {
		t.Fatalf("memory = %d, want 42", got)
	}
	if h.proto.LockedGranules() != 0 {
		t.Fatal("reservations leaked")
	}
	if len(h.proto.Committed) != 1 {
		t.Fatalf("recorded %d committed txs", len(h.proto.Committed))
	}
}

func TestProtocolAbortAdvancesWarpts(t *testing.T) {
	h := newProtoHarness(DefaultConfig(), 2)
	// Warp 1 at ts 0 writes 0x100 and commits (wts = 1).
	if !h.runTx(t, 1, nil, map[uint64]uint64{0x100: 1}) {
		t.Fatal("setup tx aborted")
	}
	// Warp 2 at ts 0 reads 0x100: WAR abort (wts 1 > ts 0); warpts must
	// advance past the observed wts.
	if h.runTx(t, 2, []uint64{0x100}, nil) {
		t.Fatal("conflicting read should abort")
	}
	if ts := h.proto.WarptsOf(2); ts != 2 {
		t.Fatalf("warpts = %d, want 2 (observed wts 1, +1)", ts)
	}
	// Retry at the advanced timestamp succeeds.
	if !h.runTx(t, 2, []uint64{0x100}, nil) {
		t.Fatal("retry at advanced warpts aborted")
	}
}

func TestProtocolAbortCleanupReleasesLocks(t *testing.T) {
	h := newProtoHarness(DefaultConfig(), 2)
	// Warp 9 writes 0x240 and commits, making its granule logically newer
	// (wts 1). Warp 1, still at ts 0, will lock 0x200 (a different 32B
	// granule) and then WAR-abort reading 0x240.
	if !h.runTx(t, 9, nil, map[uint64]uint64{0x240: 5}) {
		t.Fatal("setup aborted")
	}
	w := &tm.WarpTx{GWID: 1, Core: 0, Log: tm.NewTxLog()}
	h.proto.Begin(w)
	var res []tm.AccessResult
	h.eng.Schedule(0, func() {
		h.proto.Access(w, true, []tm.LaneAccess{{Lane: 0, Addr: 0x200, Value: 7}}, func(r []tm.AccessResult) { res = r })
	})
	h.eng.Run(0)
	if res[0].Abort {
		t.Fatal("first write unexpectedly aborted")
	}
	w.Log.RecordWrite(0, 0x200, 7)
	h.eng.Schedule(0, func() {
		h.proto.Access(w, false, []tm.LaneAccess{{Lane: 0, Addr: 0x240}}, func(r []tm.AccessResult) { res = r })
	})
	h.eng.Run(0)
	if !res[0].Abort {
		t.Fatal("read of newer granule should abort")
	}
	if h.proto.LockedGranules() == 0 {
		t.Fatal("lock should still be held until the warp's cleanup")
	}
	// Cleanup at the commit point releases the reservation without writing.
	h.eng.Schedule(0, func() {
		h.proto.Commit(w, 0, isa.LaneMask(0).Set(0), func(tm.CommitOutcome) {})
	})
	h.eng.Run(0)
	if h.proto.LockedGranules() != 0 {
		t.Fatal("cleanup did not release the reservation")
	}
	if h.img.Read(0x200) != 0 {
		t.Fatal("aborted write leaked to memory")
	}
}

func TestProtocolSerializability(t *testing.T) {
	h := newProtoHarness(DefaultConfig(), 3)
	initial := h.img.Snapshot()
	// A bank-transfer-like pattern over 8 accounts from 6 warps, with
	// retries until everything commits.
	accounts := make([]uint64, 8)
	for i := range accounts {
		accounts[i] = uint64(0x1000 + i*8)
		h.img.Write(accounts[i], 100)
	}
	initial = h.img.Snapshot()
	rng := sim.NewRNG(5)
	for round := 0; round < 30; round++ {
		gwid := 1 + rng.Intn(6)
		src := accounts[rng.Intn(len(accounts))]
		dst := accounts[rng.Intn(len(accounts))]
		if src == dst {
			continue
		}
		// Retry until committed, like the SIMT core would.
		for attempt := 0; attempt < 20; attempt++ {
			w := &tm.WarpTx{GWID: gwid, Core: 0, Log: tm.NewTxLog()}
			h.proto.Begin(w)
			ok := true
			var sv, dv uint64
			read := func(addr uint64) (uint64, bool) {
				var res []tm.AccessResult
				h.eng.Schedule(0, func() {
					h.proto.Access(w, false, []tm.LaneAccess{{Lane: 0, Addr: addr}}, func(r []tm.AccessResult) { res = r })
				})
				h.eng.Run(0)
				if res[0].Abort {
					return 0, false
				}
				w.Log.RecordRead(0, addr, res[0].Value)
				return res[0].Value, true
			}
			write := func(addr, val uint64) bool {
				var res []tm.AccessResult
				h.eng.Schedule(0, func() {
					h.proto.Access(w, true, []tm.LaneAccess{{Lane: 0, Addr: addr, Value: val}}, func(r []tm.AccessResult) { res = r })
				})
				h.eng.Run(0)
				if res[0].Abort {
					return false
				}
				w.Log.RecordWrite(0, addr, val)
				return true
			}
			if sv, ok = read(src); ok {
				if dv, ok = read(dst); ok {
					if ok = write(src, sv-1); ok {
						ok = write(dst, dv+1)
					}
				}
			}
			cm, am := isa.LaneMask(0), isa.LaneMask(0)
			if ok {
				cm = cm.Set(0)
			} else {
				am = am.Set(0)
			}
			h.eng.Schedule(0, func() { h.proto.Commit(w, cm, am, func(tm.CommitOutcome) {}) })
			h.eng.Run(0)
			if ok {
				break
			}
		}
	}
	h.eng.Run(0)
	if h.proto.LockedGranules() != 0 {
		t.Fatal("locks leaked")
	}
	// Conservation: total balance unchanged.
	var total uint64
	for _, a := range accounts {
		total += h.img.Read(a)
	}
	if total != 800 {
		t.Fatalf("balance total = %d, want 800", total)
	}
	if err := tm.CheckSerializable(initial, h.img, h.proto.Committed); err != nil {
		t.Fatalf("serializability violated: %v", err)
	}
}

func TestProtocolRollover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSBits = 8 // threshold = 224
	h := newProtoHarness(cfg, 2)
	// Drive warpts up by ping-ponging conflicting writes between two warps
	// (each abort advances the loser's warpts past the observed wts).
	for i := 0; i < 1000; i++ {
		gwid := 1 + i%2
		h.runTx(t, gwid, nil, map[uint64]uint64{0x100: uint64(i)})
		if h.proto.Rollovers > 0 {
			break
		}
	}
	h.eng.Run(0)
	if h.proto.Rollovers == 0 {
		t.Fatal("no rollover despite 8-bit timestamps")
	}
	if ts := h.proto.WarptsOf(1); ts >= cfg.RolloverThreshold() {
		t.Fatalf("warpts %d not reset by rollover", ts)
	}
	// The system still works after rollover.
	if !h.runTx(t, 5, []uint64{0x100}, map[uint64]uint64{0x100: 7}) {
		t.Fatal("post-rollover tx failed")
	}
	if err := tm.CheckSerializable(mem.NewImage(), nil, h.proto.Committed); err != nil {
		t.Fatalf("epoch-keyed serializability violated: %v", err)
	}
}

func TestProtocolLoadCoalescing(t *testing.T) {
	h := newProtoHarness(DefaultConfig(), 2)
	h.img.Write(0x300, 55)
	w := &tm.WarpTx{GWID: 1, Core: 0, Log: tm.NewTxLog()}
	h.proto.Begin(w)
	lanes := []tm.LaneAccess{
		{Lane: 0, Addr: 0x300},
		{Lane: 1, Addr: 0x300},
		{Lane: 2, Addr: 0x300},
	}
	upBefore := h.trans.up
	var res []tm.AccessResult
	h.eng.Schedule(0, func() {
		h.proto.Access(w, false, lanes, func(r []tm.AccessResult) { res = r })
	})
	h.eng.Run(0)
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	for _, r := range res {
		if r.Abort || r.Value != 55 {
			t.Fatalf("lane result = %+v", r)
		}
	}
	// One coalesced request: exactly one request's worth of up traffic.
	if h.trans.up-upBefore != uint64(tm.ReqBytes) {
		t.Fatalf("up traffic = %d, want %d (coalesced)", h.trans.up-upBefore, tm.ReqBytes)
	}
	h.eng.Schedule(0, func() {
		h.proto.Commit(w, isa.LaneMask(0b111), 0, func(tm.CommitOutcome) {})
	})
	h.eng.Run(0)
}
