package core
