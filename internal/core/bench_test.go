package core

import (
	"testing"

	"getm/internal/mem"
	"getm/internal/sim"
)

// Micro-benchmarks for GETM's hardware structures (simulation-host
// throughput, not simulated cycles): these bound how fast the simulator can
// process validation traffic.

func BenchmarkMetaTableLookupHit(b *testing.B) {
	tab := NewMetaTable(DefaultConfig(), 1024, 256, sim.NewRNG(1))
	for g := uint64(0); g < 512; g++ {
		tab.Lookup(g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint64(i) % 512)
	}
}

func BenchmarkMetaTableInsertChurn(b *testing.B) {
	tab := NewMetaTable(DefaultConfig(), 256, 128, sim.NewRNG(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, _, _ := tab.Lookup(uint64(i) % 4096)
		if e.WTS < uint64(i) {
			e.WTS = uint64(i)
		}
	}
}

func BenchmarkApproxTable(b *testing.B) {
	a := NewApproxTable(4, 256, sim.NewRNG(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Insert(uint64(i)%1024, uint64(i), uint64(i))
		a.Lookup(uint64(i) % 2048)
	}
}

func BenchmarkStallBuffer(b *testing.B) {
	sb := NewStallBuffer(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := uint64(i % 8)
		if !sb.Enqueue(&StalledReq{Granule: g, Warpts: uint64(i)}) {
			sb.Release(g)
		}
	}
}

func BenchmarkVURequestThroughput(b *testing.B) {
	eng := sim.NewEngine()
	pcfg := mem.DefaultPartitionConfig()
	part := mem.NewPartition(0, eng, mem.NewImage(), pcfg)
	vu := NewVU(DefaultConfig(), eng, part, 1024, 256, sim.NewRNG(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		i := i
		eng.Schedule(0, func() {
			vu.Submit(&Request{
				GWID:    i % 64,
				Warpts:  uint64(i / 64),
				Addr:    uint64((i % 4096) * 8),
				IsWrite: i%3 == 0,
				Reply:   func(Reply) {},
			})
		})
		if i%256 == 0 {
			eng.Run(0)
		}
	}
	eng.Run(0)
}
