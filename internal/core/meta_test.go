package core

import (
	"testing"
	"testing/quick"

	"getm/internal/sim"
)

func testTable(t *testing.T, entries int) *MetaTable {
	t.Helper()
	cfg := DefaultConfig()
	return NewMetaTable(cfg, entries, 256, sim.NewRNG(7))
}

func TestMetaLookupCreatesFromApprox(t *testing.T) {
	tab := testTable(t, 64)
	tab.Approx().Insert(42, 100, 50)
	e, cycles, ov := tab.Lookup(42)
	if e.WTS != 100 || e.RTS != 50 || e.Writes != 0 {
		t.Fatalf("created entry = %+v", e)
	}
	if cycles < 1 || ov {
		t.Fatalf("cycles=%d overflow=%v", cycles, ov)
	}
	// Second lookup hits the same entry.
	e2, c2, _ := tab.Lookup(42)
	if e2 != e || c2 != 1 {
		t.Fatal("repeat lookup should hit precisely in 1 cycle")
	}
}

func TestMetaLookupFreshGranuleZeroTimestamps(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(7)
	if e.WTS != 0 || e.RTS != 0 {
		t.Fatalf("fresh granule has non-zero timestamps: %+v", e)
	}
}

func TestMetaMutationPersists(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(9)
	e.WTS, e.RTS, e.Writes, e.Owner = 5, 4, 2, 11
	e2, _, _ := tab.Lookup(9)
	if e2.WTS != 5 || e2.RTS != 4 || e2.Writes != 2 || e2.Owner != 11 {
		t.Fatalf("mutation lost: %+v", e2)
	}
}

func TestMetaRelease(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(3)
	e.Writes = 3
	if rem := tab.Release(3, 2); rem != 1 {
		t.Fatalf("remaining = %d, want 1", rem)
	}
	if rem := tab.Release(3, 1); rem != 0 {
		t.Fatalf("remaining = %d, want 0", rem)
	}
	if tab.LockedEntries() != 0 {
		t.Fatal("locked entries should be 0")
	}
}

func TestMetaReleaseUnderflowPanics(t *testing.T) {
	tab := testTable(t, 64)
	tab.Lookup(3)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	tab.Release(3, 1)
}

func TestMetaEvictionGoesToApprox(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 2
	tab := NewMetaTable(cfg, 16, 64, sim.NewRNG(3))
	// Fill way past capacity with unlocked entries carrying timestamps.
	for g := uint64(0); g < 200; g++ {
		e, _, _ := tab.Lookup(g)
		e.WTS = g + 1
	}
	if tab.Evictions == 0 {
		t.Fatal("expected evictions to the approximate table")
	}
	// Evicted granules must still report a wts >= what they had
	// (overestimates allowed, underestimates never).
	for g := uint64(0); g < 200; g++ {
		e, _, _ := tab.Lookup(g)
		if e.WTS < g+1 {
			t.Fatalf("granule %d wts underestimated: %d < %d", g, e.WTS, g+1)
		}
	}
}

func TestMetaLockedEntriesSurviveOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 2
	cfg.MaxKicks = 4
	tab := NewMetaTable(cfg, 8, 64, sim.NewRNG(5))
	// Lock far more granules than the precise table holds: they must all
	// remain precisely tracked (stash + overflow).
	const n = 64
	for g := uint64(0); g < n; g++ {
		e, _, _ := tab.Lookup(g)
		e.Writes = 1
		e.Owner = int(g)
	}
	if tab.LockedEntries() != n {
		t.Fatalf("locked = %d, want %d", tab.LockedEntries(), n)
	}
	if tab.OverflowInserts == 0 {
		t.Fatal("expected overflow spills with 8-entry table and 64 locks")
	}
	for g := uint64(0); g < n; g++ {
		e, _, _ := tab.Lookup(g)
		if e.Writes != 1 || e.Owner != int(g) {
			t.Fatalf("locked granule %d lost: %+v", g, e)
		}
	}
}

// The spill order when every precise slot is locked: displacement chains land
// in the stash until it is full, and only then in the overflow list — at which
// point the lookup reports overflowed and pays the overflow penalty.
func TestMetaStashFullSpillsToOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 2
	cfg.MaxKicks = 2
	tab := NewMetaTable(cfg, 8, 64, sim.NewRNG(9))
	for g := uint64(0); g < 64; g++ {
		e, cycles, ov := tab.Lookup(g)
		e.Writes = 1 // lock: nothing can evict to the approximate table
		if !ov {
			continue
		}
		// First spill past the stash: it must already be full.
		if tab.StashedEntries != uint64(cfg.StashEntries) {
			t.Fatalf("overflowed with %d/%d stash entries used", tab.StashedEntries, cfg.StashEntries)
		}
		if cycles < 1+cfg.OverflowPenalty {
			t.Fatalf("overflow insert cost %d cycles, want >= %d", cycles, 1+cfg.OverflowPenalty)
		}
		// Re-looking-up the spilled granule hits the overflow list precisely.
		e2, c2, ov2 := tab.Lookup(g)
		if e2 != e || !ov2 || c2 != 1 {
			t.Fatalf("overflow re-lookup: e2==e=%v ov=%v cycles=%d", e2 == e, ov2, c2)
		}
		return
	}
	t.Fatal("no lookup overflowed with an 8-entry table, 2-entry stash, and 64 locked granules")
}

// Flush after overflow spills must clear the overflow list too (a fresh
// lookup sees zero timestamps and no overflow).
func TestMetaFlushClearsOverflow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 2
	cfg.MaxKicks = 2
	tab := NewMetaTable(cfg, 8, 64, sim.NewRNG(9))
	locked := make([]uint64, 0, 64)
	for g := uint64(0); g < 64; g++ {
		e, _, _ := tab.Lookup(g)
		e.WTS = g + 1
		e.Writes = 1
		locked = append(locked, g)
	}
	if tab.OverflowInserts == 0 {
		t.Fatal("setup never reached the overflow list")
	}
	for _, g := range locked {
		tab.Release(g, 1)
	}
	tab.Flush()
	for g := uint64(0); g < 64; g++ {
		e, _, ov := tab.Lookup(g)
		if e.WTS != 0 || ov {
			t.Fatalf("granule %d after flush: wts=%d overflow=%v", g, e.WTS, ov)
		}
	}
}

func TestMetaFlushPanicsWithLocks(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(1)
	e.Writes = 1
	defer func() {
		if recover() == nil {
			t.Fatal("flush with locks did not panic")
		}
	}()
	tab.Flush()
}

func TestMetaFlushClears(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(1)
	e.WTS = 99
	tab.Flush()
	e2, _, _ := tab.Lookup(1)
	if e2.WTS != 0 {
		t.Fatalf("flush left wts = %d", e2.WTS)
	}
	if tab.MaxTimestamp() != 0 {
		t.Fatal("flush left timestamps")
	}
}

func TestMetaMaxTimestamp(t *testing.T) {
	tab := testTable(t, 64)
	e, _, _ := tab.Lookup(1)
	e.WTS = 123
	e2, _, _ := tab.Lookup(2)
	e2.RTS = 456
	if tab.MaxTimestamp() != 456 {
		t.Fatalf("max ts = %d", tab.MaxTimestamp())
	}
}

// Property: timestamps surviving a round trip through eviction are never
// underestimated (the paper's key approximation-safety requirement).
func TestMetaNoUnderestimateProperty(t *testing.T) {
	prop := func(seed uint64, granules []uint16) bool {
		cfg := DefaultConfig()
		cfg.StashEntries = 2
		tab := NewMetaTable(cfg, 8, 32, sim.NewRNG(seed))
		want := map[uint64]uint64{}
		for i, g16 := range granules {
			g := uint64(g16 % 512)
			e, _, _ := tab.Lookup(g)
			ts := uint64(i + 1)
			if ts > e.WTS {
				e.WTS = ts
			}
			if e.WTS > want[g] {
				want[g] = e.WTS
			}
		}
		for g, w := range want {
			e, _, _ := tab.Lookup(g)
			if e.WTS < w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxTableMinOfMaxes(t *testing.T) {
	a := NewApproxTable(4, 64, sim.NewRNG(11))
	a.Insert(1, 10, 20)
	wts, rts := a.Lookup(1)
	if wts != 10 || rts != 20 {
		t.Fatalf("lookup = (%d,%d)", wts, rts)
	}
	// A colliding insert can only raise estimates for granule 1.
	a.Insert(2, 100, 200)
	wts2, rts2 := a.Lookup(1)
	if wts2 < 10 || rts2 < 20 {
		t.Fatal("estimates decreased")
	}
	// Fresh granule: estimates bounded by the max inserted anywhere.
	wts3, _ := a.Lookup(999)
	if wts3 > 100 {
		t.Fatalf("fresh granule estimate %d exceeds any insert", wts3)
	}
}

func TestApproxTableFlush(t *testing.T) {
	a := NewApproxTable(4, 64, sim.NewRNG(1))
	a.Insert(5, 7, 8)
	a.Flush()
	if w, r := a.Lookup(5); w != 0 || r != 0 {
		t.Fatal("flush left values")
	}
	if a.MaxTimestamp() != 0 {
		t.Fatal("flush left max ts")
	}
}

// Property: the approximate table never underestimates an inserted granule's
// timestamps (hash collisions may only raise them).
func TestApproxNoUnderestimateProperty(t *testing.T) {
	prop := func(seed uint64, inserts []struct {
		G uint16
		W uint32
		R uint32
	}) bool {
		a := NewApproxTable(4, 32, sim.NewRNG(seed))
		maxW := map[uint64]uint64{}
		maxR := map[uint64]uint64{}
		for _, in := range inserts {
			g := uint64(in.G)
			a.Insert(g, uint64(in.W), uint64(in.R))
			if uint64(in.W) > maxW[g] {
				maxW[g] = uint64(in.W)
			}
			if uint64(in.R) > maxR[g] {
				maxR[g] = uint64(in.R)
			}
		}
		for g := range maxW {
			w, r := a.Lookup(g)
			if w < maxW[g] || r < maxR[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaAccessCyclesReasonable(t *testing.T) {
	// Fig 13's claim: even at very high load factors the mean access cost
	// stays near 1 cycle because unlocked entries evict to the approximate
	// table.
	cfg := DefaultConfig()
	tab := NewMetaTable(cfg, 64, 64, sim.NewRNG(13))
	var total sim.Cycle
	var n int
	for g := uint64(0); g < 10000; g++ {
		_, c, _ := tab.Lookup(g % 1024)
		total += c
		n++
	}
	mean := float64(total) / float64(n)
	if mean > 2.5 {
		t.Fatalf("mean access cycles = %.2f, want near 1", mean)
	}
}
