package core

import (
	"testing"
	"testing/quick"

	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/trace"
)

// Golden-model property test: the validation unit's decisions must match a
// direct transliteration of the paper's Fig 6 flowchart under arbitrary
// request sequences against a single granule.

// refEntry mirrors the tracked metadata.
type refEntry struct {
	wts, rts uint64
	writes   int
	owner    int
}

// refOutcome is the spec's decision.
type refOutcome struct {
	result  string // "success", "abort", "queue"
	cause   tm.AbortCause
	abortTS uint64
}

// refDecide is the Fig 6 flowchart, written independently of the VU code.
func refDecide(e *refEntry, gwid int, warpts uint64, isWrite bool) refOutcome {
	owner := e.writes > 0 && e.owner == gwid
	if isWrite {
		switch {
		case owner:
			e.writes++
			return refOutcome{result: "success"}
		case warpts >= e.wts && warpts >= e.rts:
			if e.writes > 0 {
				return refOutcome{result: "queue"}
			}
			e.wts = warpts + 1
			e.owner = gwid
			e.writes = 1
			return refOutcome{result: "success"}
		default:
			ts := e.wts
			if e.rts > ts {
				ts = e.rts
			}
			return refOutcome{result: "abort", cause: tm.CauseWAWRAW, abortTS: ts}
		}
	}
	switch {
	case owner:
		if warpts > e.rts {
			e.rts = warpts
		}
		return refOutcome{result: "success"}
	case warpts >= e.wts:
		if e.writes > 0 {
			return refOutcome{result: "queue"}
		}
		if warpts > e.rts {
			e.rts = warpts
		}
		return refOutcome{result: "success"}
	default:
		return refOutcome{result: "abort", cause: tm.CauseWAR, abortTS: e.wts}
	}
}

// vuDecisions reads the VU's Fig 6 decisions back out of the machine-wide
// trace: each KVUOutcome event carries the outcome code and the granule
// metadata after the decision, packed into its payload words.
func vuDecisions(rec *trace.Recorder) (outcomes []string, entries []Entry) {
	for _, e := range rec.Events(trace.SrcCore) {
		if e.Kind != trace.KVUOutcome {
			continue
		}
		outcome, _, writes, owner := trace.UnpackVUOutcome(e.D)
		outcomes = append(outcomes, trace.VUOutcomeString(outcome))
		entries = append(entries, Entry{WTS: e.B, RTS: e.C, Writes: writes, Owner: owner})
	}
	return outcomes, entries
}

// step is one generated protocol action.
type step struct {
	GWID    uint8
	Warpts  uint16
	IsWrite bool
	Release bool // instead of an access, release one reservation count
}

func TestVUMatchesFlowchartSpec(t *testing.T) {
	const addr = uint64(0x100)
	prop := func(steps []step) bool {
		eng := sim.NewEngine()
		pcfg := mem.DefaultPartitionConfig()
		pcfg.LLCBytes = 8 << 10
		part := mem.NewPartition(0, eng, mem.NewImage(), pcfg)
		cfg := DefaultConfig()
		// Disable queueing-side effects that the spec doesn't model: a
		// 0-line stall buffer turns queue outcomes into immediate aborts at
		// the VU, but the traced outcome for the *decision* is still
		// "abort" with stall-full — so instead keep a large buffer and
		// never release while queued entries exist (see below).
		vu := NewVU(cfg, eng, part, 64, 32, sim.NewRNG(5))
		rec := trace.NewRecorder(eng, trace.Options{Sources: trace.MaskOf(trace.SrcCore), RingSize: 4096})
		vu.SetTrace(rec)

		ref := &refEntry{}
		var want []refOutcome
		queued := 0

		for _, st := range steps {
			if st.Release {
				if ref.writes == 0 || queued > 0 {
					// Releasing with queued requests wakes them in an order
					// the flat spec doesn't model; skip those schedules.
					continue
				}
				eng.Schedule(0, func() {
					vu.ReleaseGranule(cfg.GranuleOf(addr), 1, true)
				})
				eng.Run(0)
				ref.writes--
				continue
			}
			gwid := int(st.GWID % 8)
			ts := uint64(st.Warpts % 64)
			out := refDecide(ref, gwid, ts, st.IsWrite)
			if out.result == "queue" {
				if queued >= cfg.StallEntriesPerLine {
					// The stall buffer line is full: the VU aborts instead.
					out = refOutcome{result: "abort", cause: tm.CauseStallFull}
				} else {
					queued++
				}
			}
			want = append(want, out)
			eng.Schedule(0, func() {
				vu.Submit(&Request{GWID: gwid, Warpts: ts, Addr: addr, IsWrite: st.IsWrite,
					Reply: func(Reply) {}})
			})
			eng.Run(0)
		}

		outcomes, entries := vuDecisions(rec)
		if len(outcomes) != len(want) {
			return false
		}
		for i := range want {
			if outcomes[i] != want[i].result {
				t.Logf("step %d: vu=%s spec=%s", i, outcomes[i], want[i].result)
				return false
			}
			// On success/abort the spec's metadata must match the VU's.
			e := entries[i]
			if want[i].result != "queue" {
				if e.WTS != ref.wts && i == len(want)-1 {
					t.Logf("step %d: wts vu=%d spec=%d", i, e.WTS, ref.wts)
					return false
				}
			}
		}
		// Final metadata state must agree exactly (queued requests mutate
		// nothing until released).
		fin, _, _ := vu.Meta.Lookup(cfg.GranuleOf(addr))
		if fin.WTS != ref.wts || fin.RTS != ref.rts || fin.Writes != ref.writes {
			t.Logf("final: vu={wts %d rts %d w %d} spec={wts %d rts %d w %d} queued=%d",
				fin.WTS, fin.RTS, fin.Writes, ref.wts, ref.rts, ref.writes, queued)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
