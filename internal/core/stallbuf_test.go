package core

import (
	"testing"
	"testing/quick"
)

func TestStallBufferEnqueueRelease(t *testing.T) {
	b := NewStallBuffer(4, 4)
	for i, ts := range []uint64{30, 10, 20} {
		ok := b.Enqueue(&StalledReq{Granule: 1, Warpts: ts, Retry: func() {}})
		if !ok {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if b.Occupancy() != 3 || b.Waiting(1) != 3 {
		t.Fatalf("occupancy=%d waiting=%d", b.Occupancy(), b.Waiting(1))
	}
	// Release order: minimum warpts first.
	want := []uint64{10, 20, 30}
	for _, w := range want {
		r := b.Release(1)
		if r == nil || r.Warpts != w {
			t.Fatalf("release order wrong: got %+v, want ts %d", r, w)
		}
	}
	if b.Release(1) != nil {
		t.Fatal("empty release should return nil")
	}
}

func TestStallBufferLineLimit(t *testing.T) {
	b := NewStallBuffer(2, 4)
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 1})
	b.Enqueue(&StalledReq{Granule: 2, Warpts: 1})
	// Third distinct granule: no free line.
	if b.Enqueue(&StalledReq{Granule: 3, Warpts: 1}) {
		t.Fatal("third line accepted with 2-line buffer")
	}
	if b.RejectedFull != 1 {
		t.Fatalf("rejects = %d", b.RejectedFull)
	}
	// But an existing line still has room.
	if !b.Enqueue(&StalledReq{Granule: 1, Warpts: 2}) {
		t.Fatal("existing line rejected despite space")
	}
}

func TestStallBufferEntryLimit(t *testing.T) {
	b := NewStallBuffer(4, 2)
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 1})
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 2})
	if b.Enqueue(&StalledReq{Granule: 1, Warpts: 3}) {
		t.Fatal("third entry accepted on full line")
	}
}

func TestStallBufferLineFreedAfterDrain(t *testing.T) {
	b := NewStallBuffer(1, 1)
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 1})
	b.Release(1)
	if !b.Enqueue(&StalledReq{Granule: 2, Warpts: 1}) {
		t.Fatal("line not recycled after drain")
	}
}

func TestStallBufferStats(t *testing.T) {
	b := NewStallBuffer(4, 4)
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 1})
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 2})
	b.Enqueue(&StalledReq{Granule: 2, Warpts: 1})
	if b.MaxOccupancy != 3 {
		t.Fatalf("max occupancy = %d", b.MaxOccupancy)
	}
	// Depth samples at enqueue: 1, 2, 1 -> mean 4/3.
	if m := b.MeanPerAddr(); m < 1.3 || m > 1.35 {
		t.Fatalf("mean per addr = %v", m)
	}
}

func TestStallBufferDrainAll(t *testing.T) {
	b := NewStallBuffer(4, 4)
	b.Enqueue(&StalledReq{Granule: 1, Warpts: 1})
	b.Enqueue(&StalledReq{Granule: 2, Warpts: 2})
	all := b.DrainAll()
	if len(all) != 2 || b.Occupancy() != 0 {
		t.Fatalf("drain returned %d, occupancy %d", len(all), b.Occupancy())
	}
}

// Property: Release always returns the queued request with minimum warpts,
// and occupancy counts stay consistent under arbitrary operation sequences.
func TestStallBufferMinOrderProperty(t *testing.T) {
	prop := func(ops []struct {
		Granule uint8
		Warpts  uint16
		Rel     bool
	}) bool {
		b := NewStallBuffer(8, 8)
		model := map[uint64][]uint64{}
		size := 0
		for _, op := range ops {
			g := uint64(op.Granule % 4)
			if op.Rel {
				r := b.Release(g)
				q := model[g]
				if len(q) == 0 {
					if r != nil {
						return false
					}
					continue
				}
				minI := 0
				for i := range q {
					if q[i] < q[minI] {
						minI = i
					}
				}
				if r == nil || r.Warpts != q[minI] {
					return false
				}
				model[g] = append(q[:minI], q[minI+1:]...)
				size--
			} else {
				ok := b.Enqueue(&StalledReq{Granule: g, Warpts: uint64(op.Warpts)})
				full := len(model[g]) >= 8
				if ok == full {
					return false
				}
				if ok {
					model[g] = append(model[g], uint64(op.Warpts))
					size++
				}
			}
			if b.Occupancy() != size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
