package core

import (
	"testing"

	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
)

type vuHarness struct {
	eng  *sim.Engine
	part *mem.Partition
	vu   *VU
	cu   *CU
}

func newVUHarness() *vuHarness {
	eng := sim.NewEngine()
	pcfg := mem.DefaultPartitionConfig()
	pcfg.LLCBytes = 16 << 10
	part := mem.NewPartition(0, eng, mem.NewImage(), pcfg)
	cfg := DefaultConfig()
	vu := NewVU(cfg, eng, part, 256, 64, sim.NewRNG(21))
	cu := NewCU(cfg, eng, part, vu)
	return &vuHarness{eng: eng, part: part, vu: vu, cu: cu}
}

// run submits a request and runs the engine until it replies.
func (h *vuHarness) run(t *testing.T, gwid int, warpts uint64, addr uint64, isWrite bool) Reply {
	t.Helper()
	var rep *Reply
	h.eng.Schedule(0, func() {
		h.vu.Submit(&Request{GWID: gwid, Warpts: warpts, Addr: addr, IsWrite: isWrite,
			Reply: func(r Reply) { rep = &r }})
	})
	h.eng.Run(0)
	if rep == nil {
		t.Fatal("request did not complete (queued without release?)")
	}
	return *rep
}

// submitAsync submits without draining the engine.
func (h *vuHarness) submitAsync(gwid int, warpts uint64, addr uint64, isWrite bool, reply func(Reply)) {
	h.eng.Schedule(0, func() {
		h.vu.Submit(&Request{GWID: gwid, Warpts: warpts, Addr: addr, IsWrite: isWrite, Reply: reply})
	})
}

func TestVULoadSuccessUpdatesRTS(t *testing.T) {
	h := newVUHarness()
	h.part.Image.Write(0x100, 77)
	rep := h.run(t, 1, 20, 0x100, false)
	if rep.Status != StatusSuccess || rep.Value != 77 {
		t.Fatalf("reply = %+v", rep)
	}
	e, _, _ := h.vu.Meta.Lookup(h.vu.cfg.GranuleOf(0x100))
	if e.RTS != 20 {
		t.Fatalf("rts = %d, want 20", e.RTS)
	}
}

func TestVUStoreReservesGranule(t *testing.T) {
	h := newVUHarness()
	rep := h.run(t, 3, 10, 0x200, true)
	if rep.Status != StatusSuccess {
		t.Fatalf("reply = %+v", rep)
	}
	e, _, _ := h.vu.Meta.Lookup(h.vu.cfg.GranuleOf(0x200))
	if e.WTS != 11 || e.Owner != 3 || e.Writes != 1 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestVUStoreOwnerBypassIncrements(t *testing.T) {
	h := newVUHarness()
	h.run(t, 3, 10, 0x200, true)
	rep := h.run(t, 3, 10, 0x208, true) // same 32B granule, same warp
	if rep.Status != StatusSuccess {
		t.Fatalf("owner bypass failed: %+v", rep)
	}
	e, _, _ := h.vu.Meta.Lookup(h.vu.cfg.GranuleOf(0x200))
	if e.Writes != 2 || e.WTS != 11 {
		t.Fatalf("entry = %+v (wts must not change on bypass)", e)
	}
}

func TestVULoadWARAbort(t *testing.T) {
	h := newVUHarness()
	h.run(t, 1, 20, 0x100, true) // wts becomes 21
	// Commit warp 1 so the granule is unlocked but logically newer.
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{{Addr: 0x100, Data: 5, Writes: 1, Commit: true}}, nil)
	})
	h.eng.Run(0)
	rep := h.run(t, 2, 10, 0x100, false) // warpts 10 < wts 21
	if rep.Status != StatusAbort || rep.Cause != tm.CauseWAR {
		t.Fatalf("reply = %+v, want WAR abort", rep)
	}
	if rep.AbortTS != 21 {
		t.Fatalf("abort ts = %d, want 21 (the observed wts)", rep.AbortTS)
	}
}

func TestVUStoreAbortOnNewerRead(t *testing.T) {
	h := newVUHarness()
	h.run(t, 1, 30, 0x100, false) // rts = 30
	rep := h.run(t, 2, 10, 0x100, true)
	if rep.Status != StatusAbort || rep.Cause != tm.CauseWAWRAW {
		t.Fatalf("reply = %+v, want WAW/RAW abort", rep)
	}
	if rep.AbortTS != 30 {
		t.Fatalf("abort ts = %d, want 30 (max of wts, rts)", rep.AbortTS)
	}
}

func TestVUStoreAllowsEqualRTS(t *testing.T) {
	// Fig 7: a transaction may write a line whose rts equals its own warpts
	// (its own earlier read set it).
	h := newVUHarness()
	h.run(t, 1, 20, 0x100, false)
	rep := h.run(t, 1, 20, 0x100, true)
	if rep.Status != StatusSuccess {
		t.Fatalf("write after own read rejected: %+v", rep)
	}
}

func TestVUQueueRAWThenRelease(t *testing.T) {
	h := newVUHarness()
	h.part.Image.Write(0x100, 7)
	h.run(t, 1, 10, 0x100, true) // warp 1 reserves (wts 11)
	var rep *Reply
	h.submitAsync(2, 15, 0x100, false, func(r Reply) { rep = &r })
	h.eng.Run(0)
	if rep != nil {
		t.Fatalf("younger load should have queued, got %+v", rep)
	}
	if h.vu.Stall.Occupancy() != 1 {
		t.Fatal("request not in stall buffer")
	}
	// Commit warp 1 with new data; queued load must retry and see it.
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{{Addr: 0x100, Data: 99, Writes: 1, Commit: true}}, nil)
	})
	h.eng.Run(0)
	if rep == nil || rep.Status != StatusSuccess || rep.Value != 99 {
		t.Fatalf("retried load = %+v, want success with committed value 99", rep)
	}
}

func TestVUQueueWAWThenReleaseAcquires(t *testing.T) {
	h := newVUHarness()
	h.run(t, 1, 10, 0x100, true)
	var rep *Reply
	h.submitAsync(2, 15, 0x100, true, func(r Reply) { rep = &r })
	h.eng.Run(0)
	if rep != nil {
		t.Fatal("younger store should queue")
	}
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{{Addr: 0x100, Data: 1, Writes: 1, Commit: true}}, nil)
	})
	h.eng.Run(0)
	if rep == nil || rep.Status != StatusSuccess {
		t.Fatalf("retried store = %+v", rep)
	}
	e, _, _ := h.vu.Meta.Lookup(h.vu.cfg.GranuleOf(0x100))
	if e.Owner != 2 || e.Writes != 1 || e.WTS != 16 {
		t.Fatalf("entry after handoff = %+v", e)
	}
}

func TestVUEqualTimestampContenderAborts(t *testing.T) {
	// A same-warpts contender fails the version check (wts = ts+1 > ts) and
	// aborts rather than queueing — the strict-youth queue invariant.
	h := newVUHarness()
	h.run(t, 1, 10, 0x100, true)
	rep := h.run(t, 2, 10, 0x100, false)
	if rep.Status != StatusAbort {
		t.Fatalf("equal-ts load should abort, got %+v", rep)
	}
}

func TestVUAbortedOwnerCleanupUnlocks(t *testing.T) {
	h := newVUHarness()
	h.part.Image.Write(0x100, 7)
	h.run(t, 1, 10, 0x100, true)
	// Cleanup (abort): no data write, reservation released.
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{{Addr: 0x100, Writes: 1, Commit: false}}, nil)
	})
	h.eng.Run(0)
	if h.part.Image.Read(0x100) != 7 {
		t.Fatal("aborted cleanup wrote data")
	}
	// Granule unlocked, but wts remains 11 (timestamps are not reverted).
	rep := h.run(t, 2, 15, 0x100, false)
	if rep.Status != StatusSuccess {
		t.Fatalf("post-cleanup load = %+v", rep)
	}
	e, _, _ := h.vu.Meta.Lookup(h.vu.cfg.GranuleOf(0x100))
	if e.WTS != 11 {
		t.Fatalf("wts reverted to %d", e.WTS)
	}
}

func TestVUStallBufferFullAborts(t *testing.T) {
	h := newVUHarness()
	cfg := DefaultConfig()
	cfg.StallLines, cfg.StallEntriesPerLine = 1, 1
	h.vu.Stall = NewStallBuffer(1, 1)
	h.run(t, 1, 10, 0x100, true)
	var r1, r2 *Reply
	h.submitAsync(2, 15, 0x100, false, func(r Reply) { r1 = &r })
	h.submitAsync(3, 16, 0x100, false, func(r Reply) { r2 = &r })
	h.eng.Run(0)
	if r1 != nil {
		t.Fatal("first contender should queue")
	}
	if r2 == nil || r2.Status != StatusAbort || r2.Cause != tm.CauseStallFull {
		t.Fatalf("second contender = %+v, want stall-full abort", r2)
	}
}

func TestVUMultipleWaitersAllReleased(t *testing.T) {
	// Two queued loads; the owner commits once. The retried first load takes
	// no lock, so the second must be woken in turn (wakeNext chain).
	h := newVUHarness()
	h.run(t, 1, 10, 0x100, true)
	var r1, r2 *Reply
	h.submitAsync(2, 15, 0x100, false, func(r Reply) { r1 = &r })
	h.submitAsync(3, 16, 0x100, false, func(r Reply) { r2 = &r })
	h.eng.Run(0)
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{{Addr: 0x100, Data: 4, Writes: 1, Commit: true}}, nil)
	})
	h.eng.Run(0)
	if r1 == nil || r2 == nil || r1.Status != StatusSuccess || r2.Status != StatusSuccess {
		t.Fatalf("waiters not all released: r1=%+v r2=%+v", r1, r2)
	}
}

func TestVUGranularityFalseSharing(t *testing.T) {
	// Two warps writing different words of the same 32B granule conflict;
	// with 16B granularity they would not.
	h := newVUHarness()
	h.run(t, 1, 10, 0x100, true)
	var rep *Reply
	h.submitAsync(2, 15, 0x118, true, func(r Reply) { rep = &r }) // same 32B granule
	h.eng.Run(0)
	if rep != nil {
		t.Fatal("false-sharing store should have queued behind the reservation")
	}
}

func TestVUAccessCycleStats(t *testing.T) {
	h := newVUHarness()
	for i := 0; i < 50; i++ {
		h.run(t, 1, uint64(100+i), uint64(0x1000+i*64), false)
	}
	if h.vu.AccessCycles.Total() != 50 {
		t.Fatalf("recorded %d accesses", h.vu.AccessCycles.Total())
	}
	if m := h.vu.AccessCycles.Mean(); m < 1 || m > 2 {
		t.Fatalf("mean access cycles = %v", m)
	}
}

func TestCUCoalescingBandwidth(t *testing.T) {
	h := newVUHarness()
	// Reserve 4 words spanning two 32B regions (0x100 and 0x120).
	addrs := []uint64{0x100, 0x108, 0x120, 0x128}
	for _, a := range addrs {
		h.run(t, 1, 10, a, true)
	}
	start := h.eng.Now()
	var doneAt sim.Cycle
	h.eng.Schedule(0, func() {
		h.cu.Submit([]CommitEntry{
			{Addr: 0x100, Data: 1, Writes: 1, Commit: true},
			{Addr: 0x108, Data: 2, Writes: 1, Commit: true},
			{Addr: 0x120, Data: 3, Writes: 1, Commit: true},
			{Addr: 0x128, Data: 4, Writes: 1, Commit: true},
		}, func() { doneAt = h.eng.Now() })
	})
	h.eng.Run(0)
	// Two coalesced 32B regions = 64 bytes at 32 B/cycle = 2 cycles.
	if doneAt-start != 2 {
		t.Fatalf("commit took %d cycles, want 2", doneAt-start)
	}
	if h.cu.BytesWritten != 64 {
		t.Fatalf("bytes written = %d", h.cu.BytesWritten)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if got := h.part.Image.Read(addrs[i]); got != want {
			t.Fatalf("word %d = %d, want %d", i, got, want)
		}
	}
	if h.vu.Meta.LockedEntries() != 0 {
		t.Fatal("reservations not fully released")
	}
}

func TestVUServiceRateSerializes(t *testing.T) {
	h := newVUHarness()
	var done int
	h.eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			addr := uint64(0x1000 + i*64)
			h.vu.Submit(&Request{GWID: 1, Warpts: 5, Addr: addr, IsWrite: true,
				Reply: func(Reply) { done++ }})
		}
	})
	end := h.eng.Run(0)
	if done != 10 {
		t.Fatalf("completed %d/10", done)
	}
	if end < 9 { // at 1 request/cycle the last starts at cycle 9
		t.Fatalf("ended at %d, service rate not enforced", end)
	}
}
