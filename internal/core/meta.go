package core

import (
	"fmt"

	"getm/internal/sim"
)

// Entry is one granule's precise metadata (Table I).
type Entry struct {
	Granule uint64
	// WTS is one more than the logical time of the last write.
	WTS uint64
	// RTS is the logical time of the last read.
	RTS uint64
	// Writes is the outstanding write-reservation count; the granule is
	// locked while it is non-zero.
	Writes int
	// Owner is the reserving transaction's global warp id (valid while
	// Writes > 0).
	Owner int

	valid bool
}

// hashFamily generates the H3-style hash functions used by both the cuckoo
// table and the approximate bloom filter.
type hashFamily struct {
	seeds []uint64
	mask  uint64
}

func newHashFamily(ways, slotsPerWay int, rng *sim.RNG) hashFamily {
	if slotsPerWay&(slotsPerWay-1) != 0 {
		panic("core: slots per way must be a power of two")
	}
	seeds := make([]uint64, ways)
	for i := range seeds {
		seeds[i] = rng.Uint64() | 1
	}
	return hashFamily{seeds: seeds, mask: uint64(slotsPerWay - 1)}
}

func (h hashFamily) slot(way int, granule uint64) int {
	return int(sim.Mix64(granule*h.seeds[way]) & h.mask)
}

// MetaTable is one partition's metadata storage structure (Fig 8): a
// CuckooWays-way cuckoo hash table with a small fully associative stash and
// an unbounded in-memory overflow list for precise metadata, backed by an
// approximate recency bloom filter for evicted (inactive) granules.
//
// Lookup cost is 1 cycle (all ways and the stash probe in parallel);
// insertions that displace entries cost one extra cycle per swap. The cost
// of each access is reported so the harness can reproduce Fig 13.
type MetaTable struct {
	cfg         Config
	slotsPerWay int
	hashes      hashFamily
	ways        [][]Entry
	stash       []Entry
	overflow    map[uint64]*Entry
	approx      *ApproxTable
	rng         *sim.RNG

	// Lookups/Inserts/Evictions/StashedEntries/OverflowInserts count
	// microarchitectural events for the stats in Figs 13-14.
	Lookups         uint64
	Evictions       uint64
	StashedEntries  uint64
	OverflowInserts uint64
}

// NewMetaTable builds a per-partition table holding entries slots in the
// cuckoo ways plus the configured stash, with approxEntries approximate
// slots.
func NewMetaTable(cfg Config, entries, approxEntries int, rng *sim.RNG) *MetaTable {
	ways := cfg.CuckooWays
	if ways <= 0 {
		panic("core: need at least one cuckoo way")
	}
	perWay := nextPow2(maxInt(entries/ways, 1))
	t := &MetaTable{
		cfg:         cfg,
		slotsPerWay: perWay,
		hashes:      newHashFamily(ways, perWay, rng.Fork(1)),
		ways:        make([][]Entry, ways),
		overflow:    make(map[uint64]*Entry),
		approx:      NewApproxTable(cfg.ApproxWays, approxEntries, rng.Fork(2)),
		rng:         rng.Fork(3),
	}
	for i := range t.ways {
		t.ways[i] = make([]Entry, perWay)
	}
	return t
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Approx exposes the backing approximate table (for tests and stats).
func (t *MetaTable) Approx() *ApproxTable { return t.approx }

// find returns the precise entry for granule, if present, and reports whether
// it lives on the in-memory overflow list (so callers don't re-probe the map).
func (t *MetaTable) find(granule uint64) (e *Entry, inOverflow bool) {
	for w := range t.ways {
		e := &t.ways[w][t.hashes.slot(w, granule)]
		if e.valid && e.Granule == granule {
			return e, false
		}
	}
	for i := range t.stash {
		if t.stash[i].valid && t.stash[i].Granule == granule {
			return &t.stash[i], false
		}
	}
	if e, ok := t.overflow[granule]; ok {
		return e, true
	}
	return nil, false
}

// Lookup returns the precise entry for granule, creating it from the
// approximate metadata on a miss (the paper "reinserts" missing granules so
// in-flight accesses always have precise tracking). The returned cycle count
// is the access latency contribution of the metadata structure (>= 1), and
// overflowed reports whether the access had to touch the in-memory overflow
// list.
func (t *MetaTable) Lookup(granule uint64) (e *Entry, cycles sim.Cycle, overflowed bool) {
	t.Lookups++
	if e, inOverflow := t.find(granule); e != nil {
		return e, 1, inOverflow
	}
	wts, rts := t.approx.Lookup(granule)
	fresh := Entry{Granule: granule, WTS: wts, RTS: rts, valid: true}
	ptr, extra, overflowed := t.insert(fresh)
	return ptr, 1 + extra, overflowed
}

// insert places e in the cuckoo structure, displacing entries as needed.
// Unlocked (#writes == 0) victims are evicted into the approximate table; a
// displacement chain that exceeds MaxKicks lands in the stash, and if the
// stash is full, in the overflow list.
func (t *MetaTable) insert(e Entry) (ptr *Entry, extra sim.Cycle, overflowed bool) {
	cur := e
	for kick := 0; ; kick++ {
		// Any empty candidate slot?
		for w := range t.ways {
			slot := &t.ways[w][t.hashes.slot(w, cur.Granule)]
			if !slot.valid {
				*slot = cur
				return t.resolve(e.Granule, slot, &cur), extra, false
			}
		}
		// Any unlocked candidate? Evict it to the approximate table. The
		// entry being inserted is exempt: evicting it mid-chain would lose
		// precise tracking for the very access we are serving.
		for w := range t.ways {
			slot := &t.ways[w][t.hashes.slot(w, cur.Granule)]
			if slot.Writes == 0 && slot.Granule != e.Granule {
				t.approx.Insert(slot.Granule, slot.WTS, slot.RTS)
				t.Evictions++
				*slot = cur
				extra++
				return t.resolve(e.Granule, slot, &cur), extra, false
			}
		}
		if kick >= t.cfg.MaxKicks {
			break
		}
		// All candidates locked: displace a random one to its own alternate
		// location (classic cuckoo random walk).
		w := t.rng.Intn(len(t.ways))
		slot := &t.ways[w][t.hashes.slot(w, cur.Granule)]
		cur, *slot = *slot, cur
		extra++
	}
	// Chain too long: the last displaced entry goes to the stash.
	for i := range t.stash {
		if !t.stash[i].valid {
			t.stash[i] = cur
			t.StashedEntries++
			return t.resolve(e.Granule, &t.stash[i], &cur), extra, false
		}
	}
	if len(t.stash) < t.cfg.StashEntries {
		t.stash = append(t.stash, cur)
		t.StashedEntries++
		return t.resolve(e.Granule, &t.stash[len(t.stash)-1], &cur), extra, false
	}
	// Stash full too: spill to the unbounded overflow space in main memory.
	ov := cur
	t.overflow[cur.Granule] = &ov
	t.OverflowInserts++
	extra += t.cfg.OverflowPenalty
	return t.resolve(e.Granule, &ov, &cur), extra, true
}

// resolve returns the pointer to the entry for granule after an insertion
// that may have displaced it: if the just-written slot holds the granule we
// asked for, use it; otherwise the displacement chain moved it elsewhere.
func (t *MetaTable) resolve(granule uint64, placed *Entry, _ *Entry) *Entry {
	if placed.valid && placed.Granule == granule {
		return placed
	}
	e, _ := t.find(granule)
	if e == nil {
		panic(fmt.Sprintf("core: granule %#x lost during cuckoo insertion", granule))
	}
	return e
}

// Release decrements the write reservation on granule by n (commit/cleanup
// processing) and reports the remaining count.
func (t *MetaTable) Release(granule uint64, n int) int {
	e, _ := t.find(granule)
	if e == nil {
		panic(fmt.Sprintf("core: release of untracked granule %#x", granule))
	}
	e.Writes -= n
	if e.Writes < 0 {
		panic(fmt.Sprintf("core: #writes underflow on granule %#x", granule))
	}
	return e.Writes
}

// LockedEntries returns the number of precise entries with live write
// reservations (used by invariant checks: must be zero after a run).
func (t *MetaTable) LockedEntries() int {
	n := 0
	for w := range t.ways {
		for i := range t.ways[w] {
			if t.ways[w][i].valid && t.ways[w][i].Writes > 0 {
				n++
			}
		}
	}
	for i := range t.stash {
		if t.stash[i].valid && t.stash[i].Writes > 0 {
			n++
		}
	}
	for _, e := range t.overflow {
		if e.Writes > 0 {
			n++
		}
	}
	return n
}

// MaxTimestamp returns the largest wts/rts tracked (rollover trigger).
func (t *MetaTable) MaxTimestamp() uint64 {
	var m uint64
	consider := func(e *Entry) {
		if !e.valid {
			return
		}
		if e.WTS > m {
			m = e.WTS
		}
		if e.RTS > m {
			m = e.RTS
		}
	}
	for w := range t.ways {
		for i := range t.ways[w] {
			consider(&t.ways[w][i])
		}
	}
	for i := range t.stash {
		consider(&t.stash[i])
	}
	for _, e := range t.overflow {
		consider(e)
	}
	if a := t.approx.MaxTimestamp(); a > m {
		m = a
	}
	return m
}

// Flush clears all metadata (rollover). It panics if any granule is still
// locked — the rollover protocol drains transactions first.
func (t *MetaTable) Flush() {
	if t.LockedEntries() != 0 {
		panic("core: flushing metadata with live write reservations")
	}
	for w := range t.ways {
		for i := range t.ways[w] {
			t.ways[w][i] = Entry{}
		}
	}
	for i := range t.stash {
		t.stash[i] = Entry{}
	}
	t.overflow = make(map[uint64]*Entry)
	t.approx.Flush()
}

// ApproxTable is the recency bloom filter for inactive granules: ApproxWays
// ways indexed by independent hashes; each entry stores the maximum wts and
// rts of all granules that mapped to it. Lookups return the minimum across
// ways, so collisions only ever overestimate — which may abort extra
// transactions but never breaks consistency.
type ApproxTable struct {
	hashes hashFamily
	wts    [][]uint64
	rts    [][]uint64

	Inserts uint64
}

// NewApproxTable builds a filter with the given total entry budget.
func NewApproxTable(ways, totalEntries int, rng *sim.RNG) *ApproxTable {
	if ways <= 0 {
		panic("core: need at least one approx way")
	}
	perWay := nextPow2(maxInt(totalEntries/ways, 1))
	a := &ApproxTable{
		hashes: newHashFamily(ways, perWay, rng),
		wts:    make([][]uint64, ways),
		rts:    make([][]uint64, ways),
	}
	for i := 0; i < ways; i++ {
		a.wts[i] = make([]uint64, perWay)
		a.rts[i] = make([]uint64, perWay)
	}
	return a
}

// Insert folds a granule's timestamps into the filter (max per way).
func (a *ApproxTable) Insert(granule, wts, rts uint64) {
	a.Inserts++
	for w := range a.wts {
		s := a.hashes.slot(w, granule)
		if wts > a.wts[w][s] {
			a.wts[w][s] = wts
		}
		if rts > a.rts[w][s] {
			a.rts[w][s] = rts
		}
	}
}

// Lookup returns the (over)estimated timestamps for granule: the minimum
// stored wts and rts across ways.
func (a *ApproxTable) Lookup(granule uint64) (wts, rts uint64) {
	wts, rts = ^uint64(0), ^uint64(0)
	for w := range a.wts {
		s := a.hashes.slot(w, granule)
		if a.wts[w][s] < wts {
			wts = a.wts[w][s]
		}
		if a.rts[w][s] < rts {
			rts = a.rts[w][s]
		}
	}
	return wts, rts
}

// MaxTimestamp returns the largest timestamp stored.
func (a *ApproxTable) MaxTimestamp() uint64 {
	var m uint64
	for w := range a.wts {
		for i := range a.wts[w] {
			if a.wts[w][i] > m {
				m = a.wts[w][i]
			}
			if a.rts[w][i] > m {
				m = a.rts[w][i]
			}
		}
	}
	return m
}

// Flush zeroes the filter (rollover).
func (a *ApproxTable) Flush() {
	for w := range a.wts {
		for i := range a.wts[w] {
			a.wts[w][i] = 0
			a.rts[w][i] = 0
		}
	}
}
