package core

// Logical-timestamp rollover (§V-B1). Logical clocks advance only on aborts,
// so rollover is rare (the paper measures one increment per 1,265–15,836
// cycles; 32-bit timestamps roll over less than once per 1.5 hours). When a
// validation unit sees a timestamp cross the high-water mark it starts the
// rollover protocol:
//
//  1. a message circulates on the single-wire ring connecting the validation
//     units, stalling each one; a second circuit commands the rollover;
//  2. the SIMT cores stop starting new transactions and drain the ones in
//     flight (this implementation drains instead of aborting: the paper only
//     requires that no requests be in flight when the tables flush);
//  3. every metadata table, approximate filter and stall buffer is flushed,
//     all warpts reset to zero, and execution resumes.
//
// Correctness after the flush: committed data is already durable in the LLC
// and flushed metadata reads as wts = rts = 0, so every post-rollover
// transaction (warpts 0) passes the timestamp checks — exactly the state of
// a fresh machine. Serializability across the boundary is preserved because
// nothing is in flight; the replay checker accounts for it by folding a
// rollover epoch into the serialization key.

import "getm/internal/sim"

// ringHopLatency is the per-hop delay of the VU ring (cycles).
const ringHopLatency sim.Cycle = 10

type rolloverState struct {
	phase int // 1 = ring stall circuit, 2 = draining, 3 = flushing
}

// triggerRollover starts the protocol (idempotent while one is running).
func (p *Protocol) triggerRollover() {
	if p.rollover != nil {
		return
	}
	p.rollover = &rolloverState{phase: 1}
	// Two full circuits of the VU ring: stall, then command rollover.
	ringDelay := sim.Cycle(2*len(p.vus)) * ringHopLatency
	p.eng.Schedule(ringDelay, func() {
		p.rollover.phase = 2
		p.draining = true
		p.maybeFinishDrain()
	})
}

// maybeFinishDrain completes the rollover once no transactions or commit
// logs are in flight. It is called whenever activeTx or pendingLogs drops.
func (p *Protocol) maybeFinishDrain() {
	if p.rollover == nil || p.rollover.phase != 2 {
		return
	}
	if p.activeTx > 0 || p.pendingLogs > 0 {
		return
	}
	p.rollover.phase = 3
	// Cores ack over the interconnect; charge one ring circuit for the
	// resume command as well.
	p.eng.Schedule(sim.Cycle(len(p.vus))*ringHopLatency, func() {
		for _, vu := range p.vus {
			if vu.Stall.Occupancy() != 0 {
				panic("core: rollover flush with occupied stall buffer")
			}
			vu.Meta.Flush()
		}
		for gwid := range p.warpts {
			p.warpts[gwid] = 0
		}
		p.epoch++
		p.Rollovers++
		p.draining = false
		p.rollover = nil
		// Wake warps queued behind the CanBegin gate. Cores only retry their
		// queue on endTx, and the drain just consumed every transaction that
		// could end — without this notification a core whose warps all queued
		// during the drain would never start another transaction.
		p.notifyCanBegin()
	})
}
