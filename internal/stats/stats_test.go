package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumBasics(t *testing.T) {
	var a Accum
	for _, v := range []float64{3, 1, 2} {
		a.Add(v)
	}
	if a.Count != 3 || a.Min != 1 || a.Max != 3 || a.Mean() != 2 {
		t.Fatalf("accum = %+v", a)
	}
}

func TestAccumEmptyMean(t *testing.T) {
	var a Accum
	if a.Mean() != 0 {
		t.Fatal("empty accum mean should be 0")
	}
}

func TestAccumMerge(t *testing.T) {
	var a, b Accum
	a.Add(1)
	a.Add(5)
	b.Add(3)
	a.Merge(b)
	if a.Count != 3 || a.Min != 1 || a.Max != 5 || a.Sum != 9 {
		t.Fatalf("merged = %+v", a)
	}
	var empty Accum
	empty.Merge(a)
	if empty != a {
		t.Fatal("merge into empty should copy")
	}
	before := a
	a.Merge(Accum{})
	if a != before {
		t.Fatal("merging empty should be a no-op")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestAccumMergeProperty(t *testing.T) {
	prop := func(xs, ys []float64) bool {
		// Restrict to finite, modest magnitudes: accumulated values in this
		// codebase are cycle counts and occupancy, so enormous floats (where
		// summation order changes the result) are out of scope.
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					out = append(out, math.Mod(v, 1e9))
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Accum
		for _, v := range xs {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			all.Add(v)
		}
		a.Merge(b)
		return a.Count == all.Count && a.Min == all.Min && a.Max == all.Max &&
			math.Abs(a.Sum-all.Sum) < 1e-9*(1+math.Abs(all.Sum))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHist(t *testing.T) {
	h := NewHist(4)
	h.Add(0)
	h.Add(1)
	h.Add(1)
	h.Add(99) // clamped into last bucket
	h.Add(-5) // clamped into first bucket
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Buckets[0] != 2 || h.Buckets[1] != 2 || h.Buckets[3] != 1 {
		t.Fatalf("buckets = %v", h.Buckets)
	}
	want := (0.0*2 + 1*2 + 3*1) / 5
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
}

// TestHistQuantileEdges pins Quantile's contract at the boundaries: empty
// histogram, a single occupied bucket, q=0, q=1, and out-of-range q (which
// used to hit Go's implementation-defined negative-float→uint conversion).
func TestHistQuantileEdges(t *testing.T) {
	empty := NewHist(8)
	for _, q := range []float64{0, 0.5, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	single := NewHist(8)
	single.Add(3)
	single.Add(3)
	for _, q := range []float64{0, 0.001, 0.5, 1, 2.5} {
		if got := single.Quantile(q); got != 3 {
			t.Fatalf("single-bucket Quantile(%v) = %v, want 3", q, got)
		}
	}

	h := NewHist(8)
	for v, n := range map[int]int{1: 2, 4: 5, 6: 3} {
		for i := 0; i < n; i++ {
			h.Add(v)
		}
	}
	// q=0 degenerates to the smallest recorded value; q=1 is the largest.
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := h.Quantile(1); got != 6 {
		t.Fatalf("Quantile(1) = %v, want 6", got)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Fatalf("Quantile(0.5) = %v, want 4", got)
	}
	// Out-of-range and NaN q must not panic or return garbage.
	if got := h.Quantile(-3); got != 1 {
		t.Fatalf("Quantile(-3) = %v, want 1 (clamped to q=0)", got)
	}
	if got := h.Quantile(math.NaN()); got != 1 {
		t.Fatalf("Quantile(NaN) = %v, want 1 (clamped to q=0)", got)
	}
}

func TestCounters(t *testing.T) {
	c := Counters{}
	c.Inc("a", 2)
	c.Inc("a", 3)
	d := Counters{"a": 1, "b": 7}
	c.Merge(d)
	if c["a"] != 6 || c["b"] != 7 {
		t.Fatalf("counters = %v", c)
	}
	if s := c.String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestGMean(t *testing.T) {
	got := GMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("gmean = %v, want 2", got)
	}
	if GMean(nil) != 0 || GMean([]float64{0, -1}) != 0 {
		t.Fatal("gmean of empty/non-positive should be 0")
	}
}

func TestMetricsDerived(t *testing.T) {
	m := NewMetrics()
	m.TxExecCycles, m.TxWaitCycles = 10, 5
	m.Commits, m.Aborts = 2000, 500
	m.XbarUpBytes, m.XbarDownBytes = 100, 50
	if m.TxCycles() != 15 || m.XbarBytes() != 150 {
		t.Fatalf("derived metrics wrong: %+v", m)
	}
	if m.AbortsPer1KCommits() != 250 {
		t.Fatalf("aborts/1k = %v", m.AbortsPer1KCommits())
	}
	// Aborts with zero commits is an infinite rate, not a perfect zero (the
	// old behavior rendered an all-abort cell as flawless).
	m.Commits = 0
	if got := m.AbortsPer1KCommits(); !math.IsInf(got, 1) {
		t.Fatalf("aborts/1k with zero commits and nonzero aborts = %v, want +Inf", got)
	}
}
