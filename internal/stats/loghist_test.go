package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and bucket
	// boundaries must be monotone.
	prev := uint64(0)
	for b := 0; b < logHistBuckets; b++ {
		lo := logHistLower(b)
		if b > 0 && lo <= prev && !(b == 1 && lo == 1) {
			if lo <= prev {
				t.Fatalf("bucket %d lower %d not > previous %d", b, lo, prev)
			}
		}
		if got := logHistIndex(lo); got != b {
			t.Fatalf("logHistIndex(lower(%d)=%d) = %d", b, lo, got)
		}
		prev = lo
	}
	// Exact range is exact.
	for v := uint64(0); v < logHistExact; v++ {
		if got := logHistIndex(v); got != int(v) {
			t.Fatalf("logHistIndex(%d) = %d, want exact", v, got)
		}
	}
	// Extremes don't go out of range.
	if got := logHistIndex(math.MaxUint64); got >= logHistBuckets {
		t.Fatalf("logHistIndex(max) = %d out of %d buckets", got, logHistBuckets)
	}
}

func TestLogHistQuantileBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h LogHist
	var vals []float64
	for i := 0; i < 20_000; i++ {
		// Log-uniform over ~6 orders of magnitude, like latencies in µs.
		v := int64(math.Exp(rng.Float64() * 14))
		h.Add(v)
		vals = append(vals, float64(v))
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)-1))]
		got := h.Quantile(q)
		if exact == 0 {
			continue
		}
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("q=%g: got %.1f want ~%.1f (rel err %.3f > 0.05)", q, got, exact, rel)
		}
	}
}

func TestLogHistExactStats(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Total() != 0 {
		t.Fatal("zero-value LogHist must report zeros")
	}
	for _, v := range []int64{3, 5, 7, 1000, -4} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d, want 1000", h.Max())
	}
	if want := (3 + 5 + 7 + 1000 + 0) / 5.0; h.Mean() != want {
		t.Fatalf("Mean = %g, want %g", h.Mean(), want)
	}
	// Small values are exact.
	if got := h.Quantile(0.2); got != 0 {
		t.Fatalf("Quantile(0.2) = %g, want 0 (the clamped -4)", got)
	}
	if got := h.Quantile(0.6); got != 5 {
		t.Fatalf("Quantile(0.6) = %g, want 5", got)
	}
}

func TestLogHistMerge(t *testing.T) {
	var a, b, whole LogHist
	for i := int64(1); i <= 1000; i++ {
		whole.Add(i * 17)
		if i%2 == 0 {
			a.Add(i * 17)
		} else {
			b.Add(i * 17)
		}
	}
	a.Merge(&b)
	a.Merge(nil)
	if a.Total() != whole.Total() || a.Mean() != whole.Mean() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: total %d/%d mean %g/%g max %d/%d",
			a.Total(), whole.Total(), a.Mean(), whole.Mean(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%g: merged %g != whole %g", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}
