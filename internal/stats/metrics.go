package stats

import "math"

// Metrics is the per-run measurement snapshot consumed by the experiment
// harness. All cycle quantities are in interconnect-clock cycles.
type Metrics struct {
	// TotalCycles is the wall-clock length of the run.
	TotalCycles uint64

	// TxExecCycles is the total time warps spent executing transactional
	// code, including retried attempts, summed across all warps.
	TxExecCycles uint64
	// TxWaitCycles is the total time warps spent waiting to start or finish
	// transactions: blocked on the concurrency throttle, waiting for the
	// commit/validation round trips, waiting for diverged same-warp threads,
	// and backoff after aborts.
	TxWaitCycles uint64

	// Commits and Aborts count thread-level transactions.
	Commits uint64
	Aborts  uint64
	// AbortsByCause breaks Aborts down (war, waw-raw, intra-warp, stall-full,
	// early-abort, validation).
	AbortsByCause Counters

	// XbarUpBytes/XbarDownBytes count interconnect payload traffic.
	XbarUpBytes   uint64
	XbarDownBytes uint64

	// SilentCommits counts read-only transactions committed via the TCD
	// filter (WarpTM) without validation round trips.
	SilentCommits uint64

	// MetaAccessCycles is the distribution of metadata-table access latency
	// per request at GETM validation units (Fig 13).
	MetaAccessCycles Hist

	// StallBufMaxOccupancy is the maximum number of queued addresses across
	// all stall buffers at any instant (Fig 15); StallBufPerAddr averages the
	// number of requests queued per address (Fig 16).
	StallBufMaxOccupancy uint64
	StallBufPerAddr      Accum

	// Extra holds protocol-specific counters (overflow insertions, rollovers,
	// pauses, TCD hits, cuckoo evictions, ...).
	Extra Counters

	// Truncated marks a partial snapshot from a run cut short (context
	// cancellation or cycle budget): tallies cover only the run's first
	// TotalCycles cycles and end-of-run verification was skipped. The flag
	// is sticky under Merge (any truncated input taints the aggregate), and
	// consumers that require complete runs — the on-disk store, the
	// accounting invariants — refuse truncated metrics outright.
	Truncated bool
}

// NewMetrics returns an initialized Metrics.
func NewMetrics() *Metrics {
	return &Metrics{
		AbortsByCause:    Counters{},
		Extra:            Counters{},
		MetaAccessCycles: Hist{Buckets: make([]uint64, 64)},
	}
}

// Merge folds other into m: counters add, histograms merge bucket-wise,
// maxima take the larger value, and Truncated ORs (a merge containing any
// partial input is itself partial). Merging is associative and commutative
// (up to float rounding in the Accum sums), so per-shard metrics can be
// combined in any order — see TestMetricsMergeAssociative.
func (m *Metrics) Merge(other *Metrics) {
	if other == nil {
		return
	}
	m.TotalCycles += other.TotalCycles
	m.TxExecCycles += other.TxExecCycles
	m.TxWaitCycles += other.TxWaitCycles
	m.Commits += other.Commits
	m.Aborts += other.Aborts
	m.XbarUpBytes += other.XbarUpBytes
	m.XbarDownBytes += other.XbarDownBytes
	m.SilentCommits += other.SilentCommits
	if m.AbortsByCause == nil {
		m.AbortsByCause = Counters{}
	}
	m.AbortsByCause.Merge(other.AbortsByCause)
	if m.Extra == nil {
		m.Extra = Counters{}
	}
	m.Extra.Merge(other.Extra)
	m.MetaAccessCycles.Merge(other.MetaAccessCycles)
	if other.StallBufMaxOccupancy > m.StallBufMaxOccupancy {
		m.StallBufMaxOccupancy = other.StallBufMaxOccupancy
	}
	m.StallBufPerAddr.Merge(other.StallBufPerAddr)
	m.Truncated = m.Truncated || other.Truncated
}

// TxCycles returns exec + wait, the paper's "total tx cycles".
func (m *Metrics) TxCycles() uint64 { return m.TxExecCycles + m.TxWaitCycles }

// XbarBytes returns total crossbar traffic in both directions.
func (m *Metrics) XbarBytes() uint64 { return m.XbarUpBytes + m.XbarDownBytes }

// AbortsPer1KCommits returns the paper's Table IV abort metric. A run that
// aborted without ever committing has an infinite rate, reported as +Inf
// (rendered "n/a" by report tables) — previously it read as 0, making an
// all-abort cell indistinguishable from a perfect one.
func (m *Metrics) AbortsPer1KCommits() float64 {
	if m.Commits == 0 {
		if m.Aborts > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return float64(m.Aborts) * 1000 / float64(m.Commits)
}
