package stats

import (
	"math"
	"testing"
)

// A merge containing any truncated input must itself read as truncated, and
// merging only complete inputs must not set the flag.
func TestMergeTruncatedSticky(t *testing.T) {
	complete := NewMetrics()
	complete.Commits = 10
	partial := NewMetrics()
	partial.Commits = 3
	partial.Truncated = true

	m := NewMetrics()
	m.Merge(complete)
	if m.Truncated {
		t.Fatal("merge of complete inputs reads as truncated")
	}
	m.Merge(partial)
	if !m.Truncated {
		t.Fatal("truncated input merged silently into a complete aggregate")
	}
	m.Merge(complete)
	if !m.Truncated {
		t.Fatal("Truncated flag dropped by a later complete merge")
	}
}

// An all-abort cell must report an infinite rate, not a perfect zero; a cell
// with no transactions at all (fglock) stays 0.
func TestAbortsPer1KCommitsNoCommits(t *testing.T) {
	m := NewMetrics()
	m.Aborts = 7
	if got := m.AbortsPer1KCommits(); !math.IsInf(got, 1) {
		t.Fatalf("Commits=0 Aborts=7: got %v, want +Inf", got)
	}
	m.Aborts = 0
	if got := m.AbortsPer1KCommits(); got != 0 {
		t.Fatalf("Commits=0 Aborts=0: got %v, want 0", got)
	}
	m.Commits, m.Aborts = 1000, 5
	if got := m.AbortsPer1KCommits(); got != 5 {
		t.Fatalf("Commits=1000 Aborts=5: got %v, want 5", got)
	}
}

func TestHistQuantile(t *testing.T) {
	var h Hist
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty hist quantile = %v, want 0", got)
	}
	// 100 samples: values 0..99 clamp into 64 buckets (64..99 land in 63).
	for v := 0; v < 100; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 49 {
		t.Errorf("p50 = %v, want 49", got)
	}
	if got := h.Quantile(0.99); got != 63 {
		t.Errorf("p99 = %v, want 63 (clamped)", got)
	}
	if got := h.Quantile(0.01); got != 0 {
		t.Errorf("p1 = %v, want 0", got)
	}

	h2 := NewHist(16)
	for i := 0; i < 9; i++ {
		h2.Add(2)
	}
	h2.Add(10)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("p50 = %v, want 2", got)
	}
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
}
