package stats

import (
	"sync"
	"testing"
)

// TestShardedHistMatchesSingleHist: the merged view is exactly the histogram
// a single Hist would have produced from the same Add stream.
func TestShardedHistMatchesSingleHist(t *testing.T) {
	const buckets = 64
	sh := NewShardedHist(8, buckets)
	var ref Hist
	ref.Buckets = make([]uint64, buckets)
	for i := 0; i < 10_000; i++ {
		v := (i * 7) % 80 // includes values clamping into the last bucket
		sh.Add(v)
		ref.Add(v)
	}
	got := sh.Merged()
	if got.Total() != ref.Total() {
		t.Fatalf("total %d, want %d", got.Total(), ref.Total())
	}
	for b := range ref.Buckets {
		if got.Buckets[b] != ref.Buckets[b] {
			t.Fatalf("bucket %d: %d, want %d", b, got.Buckets[b], ref.Buckets[b])
		}
	}
	if got.Mean() != ref.Mean() || got.Quantile(0.99) != ref.Quantile(0.99) {
		t.Fatalf("quantiles diverge: mean %v vs %v, p99 %v vs %v",
			got.Mean(), ref.Mean(), got.Quantile(0.99), ref.Quantile(0.99))
	}
}

// TestShardedHistConcurrentExact: hammered from many goroutines (run under
// -race in `make race`), no Add is lost and the merge is exact.
func TestShardedHistConcurrentExact(t *testing.T) {
	const goroutines, perG = 16, 5000
	sh := NewShardedHist(8, 128)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sh.Add((g*perG + i) % 128)
			}
		}(g)
	}
	wg.Wait()
	got := sh.Merged()
	if got.Total() != goroutines*perG {
		t.Fatalf("merged total %d, want %d (adds lost)", got.Total(), goroutines*perG)
	}
	// Each value 0..127 appears exactly goroutines*perG/128 times.
	want := uint64(goroutines * perG / 128)
	for b, n := range got.Buckets {
		if n != want {
			t.Fatalf("bucket %d count %d, want %d", b, n, want)
		}
	}
}

func TestShardedHistShardClamp(t *testing.T) {
	sh := NewShardedHist(0, 8) // clamps to 1 shard
	sh.Add(3)
	m := sh.Merged()
	if got := m.Total(); got != 1 {
		t.Fatalf("total %d, want 1", got)
	}
}
