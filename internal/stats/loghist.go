package stats

import (
	"math"
	"math/bits"
)

// LogHist is a log-bucketed histogram for values with a wide dynamic range —
// stage latencies in microseconds span five orders of magnitude between an
// admission fast-path join and a full simulation, which a value-indexed Hist
// cannot cover without either losing the left edge or allocating gigabuckets.
//
// Layout: values below 2^(sub+1) get one exact bucket each; every octave
// [2^e, 2^(e+1)) above that is split into 2^sub sub-buckets, bounding the
// relative quantile error at 2^-sub (~1.6% with the default sub = 6). The
// struct is fixed-size and self-contained (no pointers), so a zero value is
// ready to use and embedding it costs one allocation never.
type LogHist struct {
	counts [logHistBuckets]uint64
	total  uint64
	sum    float64
	max    uint64
}

// logHistSub is the sub-bucket resolution: 2^logHistSub sub-buckets per
// octave.
const logHistSub = 6

const (
	logHistExact   = 1 << (logHistSub + 1) // values < this are exact
	logHistPerOct  = 1 << logHistSub
	logHistBuckets = logHistExact + (64-logHistSub-1)*logHistPerOct
)

// logHistIndex maps a value to its bucket.
func logHistIndex(v uint64) int {
	if v < logHistExact {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= logHistSub+1
	sub := (v - 1<<exp) >> (exp - logHistSub)
	return logHistExact + (exp-logHistSub-1)*logHistPerOct + int(sub)
}

// logHistLower returns the smallest value mapping to bucket b.
func logHistLower(b int) uint64 {
	if b < logHistExact {
		return uint64(b)
	}
	rel := b - logHistExact
	exp := logHistSub + 1 + rel/logHistPerOct
	sub := uint64(rel % logHistPerOct)
	return 1<<exp + sub<<(exp-logHistSub)
}

// Add records one sample. Negative values clamp to zero.
func (h *LogHist) Add(v int64) {
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.counts[logHistIndex(u)]++
	h.total++
	h.sum += float64(u)
	if u > h.max {
		h.max = u
	}
}

// Total returns the number of recorded samples.
func (h *LogHist) Total() uint64 { return h.total }

// Mean returns the exact average of recorded samples (0 if none) — the sum
// is tracked alongside the buckets, so Mean carries no bucketing error.
func (h *LogHist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the exact largest recorded sample (0 if none).
func (h *LogHist) Max() uint64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q <= 1): the midpoint
// of the bucket holding the q-th sample, within 2^-logHistSub of the true
// value. With no samples it returns 0.
func (h *LogHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	need := uint64(math.Ceil(q * float64(h.total)))
	if need == 0 {
		need = 1
	}
	var seen uint64
	for b, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= need {
			lo := logHistLower(b)
			if b < logHistExact {
				return float64(lo)
			}
			hi := logHistLower(b + 1)
			return float64(lo+hi) / 2
		}
	}
	return float64(h.max)
}

// Merge folds other into h.
func (h *LogHist) Merge(other *LogHist) {
	if other == nil || other.total == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}
