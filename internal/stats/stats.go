// Package stats collects simulation measurements: scalar counters,
// min/max/mean accumulators, and small histograms. A Metrics snapshot is the
// unit of exchange between the GPU model and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Accum accumulates a stream of samples and reports count/sum/min/max/mean.
type Accum struct {
	Count uint64
	Sum   float64
	Min   float64
	Max   float64
}

// Add records one sample.
func (a *Accum) Add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += v
}

// Mean returns the average of recorded samples (0 if none).
func (a *Accum) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Merge folds other into a.
func (a *Accum) Merge(other Accum) {
	if other.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = other
		return
	}
	a.Count += other.Count
	a.Sum += other.Sum
	if other.Min < a.Min {
		a.Min = other.Min
	}
	if other.Max > a.Max {
		a.Max = other.Max
	}
}

// Hist is a histogram over small non-negative integer values (e.g. cuckoo
// probe cycles, stall-buffer occupancy). Values beyond the last bucket are
// clamped into it.
type Hist struct {
	Buckets []uint64
}

// DefaultHistBuckets is the bucket count a zero-value Hist grows to on its
// first Add.
const DefaultHistBuckets = 64

// NewHist creates a histogram with n buckets for values 0..n-1.
func NewHist(n int) *Hist { return &Hist{Buckets: make([]uint64, n)} }

// Add records a value. A zero-value Hist allocates DefaultHistBuckets
// buckets on first use (previously this indexed Buckets[-1] and panicked).
func (h *Hist) Add(v int) {
	if len(h.Buckets) == 0 {
		h.Buckets = make([]uint64, DefaultHistBuckets)
	}
	if v < 0 {
		v = 0
	}
	if v >= len(h.Buckets) {
		v = len(h.Buckets) - 1
	}
	h.Buckets[v]++
}

// Merge folds other into h, clamping buckets beyond h's range into its last
// bucket. An empty h adopts other's bucket count.
func (h *Hist) Merge(other Hist) {
	if len(other.Buckets) == 0 {
		return
	}
	if len(h.Buckets) == 0 {
		h.Buckets = make([]uint64, len(other.Buckets))
	}
	last := len(h.Buckets) - 1
	for b, n := range other.Buckets {
		if b > last {
			b = last
		}
		h.Buckets[b] += n
	}
}

// Total returns the number of recorded samples.
func (h *Hist) Total() uint64 {
	var t uint64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Quantile returns the smallest recorded value v such that at least q of
// the samples are <= v (0 < q <= 1). With no samples it returns 0. Because
// buckets are value-indexed, the answer is exact up to the clamp into the
// last bucket — e.g. Quantile(0.5) is the median, Quantile(0.99) the p99.
func (h *Hist) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	if q < 0 || math.IsNaN(q) {
		// Converting a negative float to uint64 is implementation-defined in
		// Go; clamp so q <= 0 degenerates to the smallest recorded value.
		q = 0
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var seen uint64
	for v, c := range h.Buckets {
		seen += c
		if seen >= need {
			return float64(v)
		}
	}
	return float64(len(h.Buckets) - 1)
}

// Mean returns the average recorded value.
func (h *Hist) Mean() float64 {
	var n, sum uint64
	for v, c := range h.Buckets {
		n += c
		sum += uint64(v) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// ShardedHist coalesces a high-rate stream of Add calls across independent
// locked shards so no single mutex serializes concurrent writers; Merged
// folds the shards into one exact Hist snapshot at read time. This is the
// accumulate-then-merge discipline the serving layer uses for request
// latency: writers pay one shard lock (picked round-robin, so load spreads
// evenly whatever the caller mix), and the rare reader pays the merge.
type ShardedHist struct {
	next    atomic.Uint64
	buckets int
	shards  []histShard
}

type histShard struct {
	mu sync.Mutex
	h  Hist
	// Pad shards apart so two writers on adjacent shards do not share a
	// cache line through the mutexes.
	_ [40]byte
}

// NewShardedHist creates a histogram with the given shard count (clamped to
// at least 1) of buckets buckets each.
func NewShardedHist(shards, buckets int) *ShardedHist {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedHist{buckets: buckets, shards: make([]histShard, shards)}
	for i := range s.shards {
		s.shards[i].h = Hist{Buckets: make([]uint64, buckets)}
	}
	return s
}

// Add records one value into the next shard in round-robin order. Safe for
// any number of concurrent callers.
func (s *ShardedHist) Add(v int) {
	sh := &s.shards[s.next.Add(1)%uint64(len(s.shards))]
	sh.mu.Lock()
	sh.h.Add(v)
	sh.mu.Unlock()
}

// Merged returns the exact union of every shard: the histogram all Adds
// would have produced through a single Hist. Concurrent Adds land either
// side of the snapshot, never partially.
func (s *ShardedHist) Merged() Hist {
	out := Hist{Buckets: make([]uint64, s.buckets)}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out.Merge(sh.h)
		sh.mu.Unlock()
	}
	return out
}

// Counters is a named scalar counter set.
type Counters map[string]uint64

// Inc adds delta to the named counter.
func (c Counters) Inc(name string, delta uint64) { c[name] += delta }

// Merge folds other into c.
func (c Counters) Merge(other Counters) {
	for k, v := range other {
		c[k] += v
	}
}

// String renders counters sorted by name, for debugging.
func (c Counters) String() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-32s %12d\n", k, c[k])
	}
	return b.String()
}

// GMean returns the geometric mean of vs, ignoring non-positive entries.
func GMean(vs []float64) float64 {
	var logSum float64
	n := 0
	for _, v := range vs {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
