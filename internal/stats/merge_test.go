package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

// genMetrics builds a random Metrics with small-integer-valued fields.
// Integer-valued float64 sums stay exact under addition, so associativity
// can be checked with DeepEqual instead of an epsilon.
func genMetrics(r *rand.Rand) *Metrics {
	m := NewMetrics()
	m.TotalCycles = uint64(r.Intn(1000))
	m.TxExecCycles = uint64(r.Intn(1000))
	m.TxWaitCycles = uint64(r.Intn(1000))
	m.Commits = uint64(r.Intn(100))
	m.Aborts = uint64(r.Intn(100))
	m.XbarUpBytes = uint64(r.Intn(1 << 16))
	m.XbarDownBytes = uint64(r.Intn(1 << 16))
	m.SilentCommits = uint64(r.Intn(50))
	for _, cause := range []string{"war", "waw-raw", "intra-warp"} {
		if r.Intn(2) == 1 {
			m.AbortsByCause.Inc(cause, uint64(r.Intn(20)))
		}
	}
	for _, k := range []string{"instructions", "vu-requests", "rollovers"} {
		if r.Intn(2) == 1 {
			m.Extra.Inc(k, uint64(r.Intn(500)))
		}
	}
	for i := 0; i < r.Intn(10); i++ {
		m.MetaAccessCycles.Add(r.Intn(80)) // some clamp into the last bucket
	}
	m.StallBufMaxOccupancy = uint64(r.Intn(30))
	for i := 0; i < r.Intn(5); i++ {
		m.StallBufPerAddr.Add(float64(r.Intn(10)))
	}
	m.Truncated = r.Intn(4) == 0
	return m
}

func mergeAll(ms ...*Metrics) *Metrics {
	out := NewMetrics()
	for _, m := range ms {
		out.Merge(m)
	}
	return out
}

func TestMetricsMergeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a, b, c := genMetrics(r), genMetrics(r), genMetrics(r)

		// (a ⊕ b) ⊕ c
		left := mergeAll(a, b)
		left.Merge(c)
		// a ⊕ (b ⊕ c)
		bc := mergeAll(b, c)
		right := mergeAll(a)
		right.Merge(bc)

		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative:\nleft  %+v\nright %+v", trial, left, right)
		}

		// Commutative too: a ⊕ b == b ⊕ a.
		ab, ba := mergeAll(a, b), mergeAll(b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative:\na⊕b %+v\nb⊕a %+v", trial, ab, ba)
		}
	}
}

func TestHistZeroValueAdd(t *testing.T) {
	var h Hist
	h.Add(5)     // previously panicked: Buckets[-1]
	h.Add(-3)    // clamps to 0
	h.Add(10000) // clamps to the last bucket
	if len(h.Buckets) != DefaultHistBuckets {
		t.Fatalf("lazy alloc gave %d buckets, want %d", len(h.Buckets), DefaultHistBuckets)
	}
	if h.Buckets[5] != 1 || h.Buckets[0] != 1 || h.Buckets[DefaultHistBuckets-1] != 1 {
		t.Errorf("buckets misplaced: %v", h.Buckets)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
}

func TestHistMergeClamp(t *testing.T) {
	small := Hist{Buckets: make([]uint64, 4)}
	big := Hist{Buckets: make([]uint64, 8)}
	big.Buckets[1] = 2
	big.Buckets[6] = 5 // beyond small's range: clamps into its last bucket
	big.Buckets[7] = 1
	small.Merge(big)
	if small.Buckets[1] != 2 || small.Buckets[3] != 6 {
		t.Errorf("clamped merge = %v, want [0 2 0 6]", small.Buckets)
	}
	var empty Hist
	empty.Merge(big)
	if len(empty.Buckets) != 8 || empty.Total() != big.Total() {
		t.Errorf("empty.Merge(big) = %v", empty.Buckets)
	}
}
