package trace

// Interval sampling: the machine registers probes (closures over live
// component state) and the run loop calls TakeSample at every sample
// boundary. Sampling only *reads* state — it never schedules engine events —
// so a sampled run is cycle-identical to an unsampled one; gpu.Run drives
// the boundaries by running the engine in chunks.

// probeKind selects how a probe's readings become series values.
type probeKind uint8

const (
	// gaugeProbe records the instantaneous value at each sample.
	gaugeProbe probeKind = iota
	// rateProbe records the counter delta divided by the elapsed cycles
	// (e.g. IPC, bytes/cycle).
	rateProbe
	// deltaProbe records the raw counter delta per interval
	// (e.g. aborts/interval).
	deltaProbe
)

// probe is one registered time series.
type probe struct {
	name  string
	kind  probeKind
	gauge func() float64
	count func() uint64
	last  uint64
}

// AddGauge registers an instantaneous-value series (e.g. in-flight
// transactions, stall-buffer occupancy).
func (r *Recorder) AddGauge(name string, fn func() float64) {
	r.probes = append(r.probes, probe{name: name, kind: gaugeProbe, gauge: fn})
}

// AddRate registers a monotonic-counter series reported as delta per cycle
// (e.g. IPC from an instruction counter).
func (r *Recorder) AddRate(name string, fn func() uint64) {
	r.probes = append(r.probes, probe{name: name, kind: rateProbe, count: fn})
}

// AddDelta registers a monotonic-counter series reported as delta per
// interval (e.g. aborts per interval).
func (r *Recorder) AddDelta(name string, fn func() uint64) {
	r.probes = append(r.probes, probe{name: name, kind: deltaProbe, count: fn})
}

// SampleEvery returns the configured sampling interval in cycles (0 when
// interval sampling is disabled).
func (r *Recorder) SampleEvery() uint64 { return r.sampleEvery }

// TakeSample reads every probe at the given cycle and appends one row to the
// time series. Duplicate boundary cycles (e.g. the final sample landing on
// the last interval edge) are ignored.
func (r *Recorder) TakeSample(cycle uint64) {
	if len(r.probes) == 0 {
		return
	}
	var elapsed uint64
	if n := len(r.sampleCyc); n > 0 {
		if cycle <= r.sampleCyc[n-1] {
			return
		}
		elapsed = cycle - r.sampleCyc[n-1]
	} else {
		elapsed = cycle
	}
	row := make([]float64, len(r.probes))
	for i := range r.probes {
		p := &r.probes[i]
		switch p.kind {
		case gaugeProbe:
			row[i] = p.gauge()
		case rateProbe:
			cur := p.count()
			if elapsed > 0 {
				row[i] = float64(cur-p.last) / float64(elapsed)
			}
			p.last = cur
		case deltaProbe:
			cur := p.count()
			row[i] = float64(cur - p.last)
			p.last = cur
		}
	}
	r.sampleCyc = append(r.sampleCyc, cycle)
	r.sampleRows = append(r.sampleRows, row)
}

// SeriesNames returns the registered probe names in registration (= CSV
// column) order.
func (r *Recorder) SeriesNames() []string {
	names := make([]string, len(r.probes))
	for i := range r.probes {
		names[i] = r.probes[i].name
	}
	return names
}

// Samples returns the collected time series: one cycle per sample and one
// row of per-probe values (in SeriesNames order) per sample. The returned
// slices are the recorder's own storage; callers must not mutate them.
func (r *Recorder) Samples() (cycles []uint64, rows [][]float64) {
	return r.sampleCyc, r.sampleRows
}
