// Package trace is the machine-wide observability subsystem: structured
// event tracing and interval sampling for every simulation layer (SIMT
// cores, crossbars, memory partitions, GETM validation/commit units, the
// WarpTM/EAPG commit machinery, and transaction lifecycles).
//
// Design constraints, in priority order:
//
//  1. Zero overhead when disabled. Components hold a nil-checkable
//     *Recorder; the disabled path is a single pointer compare and the
//     enabled path never allocates (events are fixed-size records written
//     into preallocated per-source ring buffers). The existing
//     testing.AllocsPerRun gates in internal/tm and internal/core cover the
//     disabled path; this package's own gate covers the enabled path.
//  2. Determinism. Recording reads simulation state but never schedules
//     events or perturbs timing, so a traced run is cycle-identical to an
//     untraced one.
//  3. Bounded memory. Each source's ring overwrites its oldest records;
//     Dropped reports how many were lost.
//
// Exporters (export.go) render the same records three ways: Chrome
// trace-event JSON loadable in Perfetto, CSV time series for the interval
// samples, and a human-readable merged log.
package trace

import (
	"fmt"
	"strings"

	"getm/internal/sim"
)

// Source identifies the simulation layer an event came from. Sources are
// dense small integers: each has its own ring buffer, and the filter mask is
// a bitmask over them.
type Source uint8

// Event sources, one per instrumented layer.
const (
	// SrcSIMT: warp instruction issue, divergence, reconvergence.
	SrcSIMT Source = iota
	// SrcXbar: crossbar port transfers and queueing.
	SrcXbar
	// SrcMem: LLC hits/misses and DRAM service at the partitions.
	SrcMem
	// SrcCore: GETM validation-unit decisions, stall-buffer transitions,
	// and commit-unit messages.
	SrcCore
	// SrcWarpTM: WarpTM validation/decision rounds and silent commits.
	SrcWarpTM
	// SrcEAPG: EAPG signature broadcasts, pauses, and early aborts.
	SrcEAPG
	// SrcTx: transaction lifecycle (begin/abort/retry/commit), emitted by
	// the SIMT cores on behalf of the whole machine.
	SrcTx
	// NumSources bounds the Source enum.
	NumSources
)

var sourceNames = [NumSources]string{"simt", "xbar", "mem", "core", "warptm", "eapg", "tx"}

// String returns the source's filter name.
func (s Source) String() string {
	if int(s) < len(sourceNames) {
		return sourceNames[s]
	}
	return fmt.Sprintf("src%d", uint8(s))
}

// Mask selects a set of sources (bit i = Source i).
type Mask uint32

// MaskAll enables every source.
const MaskAll Mask = 1<<NumSources - 1

// MaskOf builds a mask from individual sources.
func MaskOf(srcs ...Source) Mask {
	var m Mask
	for _, s := range srcs {
		m |= 1 << s
	}
	return m
}

// ParseSources parses a -trace-filter value: "all" or a comma-separated list
// of source names (e.g. "simt,xbar,core").
func ParseSources(s string) (Mask, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return MaskAll, nil
	}
	var m Mask
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for i, sn := range sourceNames {
			if name == sn {
				m |= 1 << Source(i)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("trace: unknown source %q (known: %s, or \"all\")",
				name, strings.Join(sourceNames[:], ","))
		}
	}
	return m, nil
}

// Event is one fixed-size trace record. The payload words A..D are
// kind-specific (see the kind table in kinds.go for per-kind argument names
// and which word, if any, carries a duration).
type Event struct {
	// Cycle is the emission time in simulated cycles.
	Cycle uint64
	// Seq is a recorder-global emission counter; (Cycle, Seq) totally orders
	// events across sources.
	Seq uint64
	// A, B, C, D are the kind-specific payload words.
	A, B, C, D uint64
	// Kind identifies the event type.
	Kind Kind
	// Source is the emitting layer.
	Source Source
	// Unit is the emitting hardware unit within the source (core ID,
	// partition ID, crossbar source port, ...).
	Unit int32
}

// Options configures a Recorder.
type Options struct {
	// Sources filters which layers record (0 means all).
	Sources Mask
	// RingSize is the per-source event capacity (rounded up to a power of
	// two; 0 means DefaultRingSize). When a ring fills, the oldest events
	// are overwritten.
	RingSize int
	// SampleInterval takes one probe sample every this many cycles
	// (0 disables interval sampling).
	SampleInterval uint64
}

// DefaultRingSize is the per-source event capacity when Options.RingSize is 0.
const DefaultRingSize = 1 << 15

// ring is one source's event buffer: a power-of-two circular array plus the
// count of events ever written to it.
type ring struct {
	buf []Event
	n   uint64
}

// Recorder is the machine-wide event sink. One recorder serves a whole
// simulated machine; components keep a possibly-nil pointer to it and guard
// every Emit with a nil check, which is the entire disabled-path cost.
type Recorder struct {
	eng   *sim.Engine
	mask  Mask
	seq   uint64
	rings [NumSources]ring

	sampleEvery uint64
	probes      []probe
	sampleCyc   []uint64
	sampleRows  [][]float64
}

// NewRecorder builds a recorder over the engine whose clock stamps events.
func NewRecorder(eng *sim.Engine, opts Options) *Recorder {
	mask := opts.Sources
	if mask == 0 {
		mask = MaskAll
	}
	size := opts.RingSize
	if size <= 0 {
		size = DefaultRingSize
	}
	// Round up to a power of two so the ring index is a bitmask.
	cap := 1
	for cap < size {
		cap <<= 1
	}
	r := &Recorder{eng: eng, mask: mask, sampleEvery: opts.SampleInterval}
	for s := Source(0); s < NumSources; s++ {
		if mask&(1<<s) != 0 {
			r.rings[s].buf = make([]Event, cap)
		}
	}
	return r
}

// Enabled reports whether src records into this recorder.
func (r *Recorder) Enabled(src Source) bool { return r.mask&(1<<src) != 0 }

// Emit records one event. It never allocates: a filtered source is one mask
// test, and an enabled one writes a fixed-size slot in a preallocated ring
// (overwriting the oldest event when full).
func (r *Recorder) Emit(src Source, kind Kind, unit int32, a, b, c, d uint64) {
	if r.mask&(1<<src) == 0 {
		return
	}
	rg := &r.rings[src]
	r.seq++
	e := &rg.buf[rg.n&uint64(len(rg.buf)-1)]
	e.Cycle = uint64(r.eng.Now())
	e.Seq = r.seq
	e.A, e.B, e.C, e.D = a, b, c, d
	e.Kind = kind
	e.Source = src
	e.Unit = unit
	rg.n++
}

// Total returns how many events src has emitted, including overwritten ones.
func (r *Recorder) Total(src Source) uint64 { return r.rings[src].n }

// Dropped returns how many of src's events were overwritten.
func (r *Recorder) Dropped(src Source) uint64 {
	rg := &r.rings[src]
	if rg.n <= uint64(len(rg.buf)) {
		return 0
	}
	return rg.n - uint64(len(rg.buf))
}

// Events returns a copy of src's retained events, oldest first.
func (r *Recorder) Events(src Source) []Event {
	rg := &r.rings[src]
	if rg.buf == nil || rg.n == 0 {
		return nil
	}
	size := uint64(len(rg.buf))
	count := rg.n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	start := rg.n - count
	for i := start; i < rg.n; i++ {
		out = append(out, rg.buf[i&(size-1)])
	}
	return out
}

// merged returns every retained event across all sources in (Cycle, Seq)
// order — the exact global emission order.
func (r *Recorder) merged() []Event {
	var all []Event
	for s := Source(0); s < NumSources; s++ {
		all = append(all, r.Events(s)...)
	}
	sortEvents(all)
	return all
}
