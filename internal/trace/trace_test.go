package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"getm/internal/sim"
)

func TestRingOverwrite(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{Sources: MaskOf(SrcCore), RingSize: 4})
	for i := uint64(0); i < 10; i++ {
		r.Emit(SrcCore, KVURequest, 0, i, 0, 0, 0)
	}
	if got := r.Total(SrcCore); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := r.Dropped(SrcCore); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.Events(SrcCore)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.A != want {
			t.Errorf("event %d: A = %d, want %d (oldest-first order)", i, e.A, want)
		}
	}
	// A filtered source records nothing and reads back empty.
	r.Emit(SrcXbar, KXbarUp, 0, 1, 2, 3, 4)
	if r.Total(SrcXbar) != 0 || r.Events(SrcXbar) != nil {
		t.Errorf("filtered source recorded events")
	}
}

func TestSeqTotalOrder(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{RingSize: 64})
	r.Emit(SrcSIMT, KIssue, 0, 1, 0, 0, 0)
	r.Emit(SrcXbar, KXbarUp, 0, 2, 0, 0, 0)
	r.Emit(SrcSIMT, KIssue, 0, 3, 0, 0, 0)
	m := r.merged()
	if len(m) != 3 {
		t.Fatalf("merged %d events, want 3", len(m))
	}
	for i, e := range m {
		if e.A != uint64(i+1) {
			t.Errorf("merged[%d].A = %d, want %d (global emission order)", i, e.A, i+1)
		}
	}
}

// The enabled emit path must not allocate: events land in preallocated
// rings. This is the enabled-path half of the zero-overhead invariant; the
// disabled half (nil recorder pointer) is the second measurement.
func TestEmitDisabledZeroAlloc(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{RingSize: 1 << 10})
	if allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(SrcCore, KVUOutcome, 3, 0x100, 21, 20, 7)
	}); allocs != 0 {
		t.Errorf("enabled Emit allocates %.1f per event, want 0", allocs)
	}

	var nilRec *Recorder
	sink := 0
	if allocs := testing.AllocsPerRun(1000, func() {
		// The component idiom: a single pointer compare when disabled.
		if nilRec != nil {
			nilRec.Emit(SrcCore, KVUOutcome, 3, 0x100, 21, 20, 7)
		} else {
			sink++
		}
	}); allocs != 0 {
		t.Errorf("disabled path allocates %.1f per access, want 0", allocs)
	}
}

func TestParseSources(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mask
	}{
		{"all", MaskAll},
		{"", MaskAll},
		{"simt", MaskOf(SrcSIMT)},
		{"simt,xbar,core", MaskOf(SrcSIMT, SrcXbar, SrcCore)},
		{" mem , tx ", MaskOf(SrcMem, SrcTx)},
	} {
		got, err := ParseSources(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSources(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseSources("bogus"); err == nil {
		t.Errorf("ParseSources(bogus) accepted an unknown source")
	}
}

func TestVUOutcomePackRoundTrip(t *testing.T) {
	outcome, cause, writes, owner := UnpackVUOutcome(PackVUOutcome(VUQueue, 3, 17, 12345))
	if outcome != VUQueue || cause != 3 || writes != 17 || owner != 12345 {
		t.Errorf("round trip = (%d %d %d %d), want (2 3 17 12345)", outcome, cause, writes, owner)
	}
	// Writes clamps at 16 bits instead of corrupting neighbors.
	_, _, w, o := UnpackVUOutcome(PackVUOutcome(VUSuccess, 0, 1<<20, 7))
	if w != 0xFFFF || o != 7 {
		t.Errorf("overflowing writes: got writes=%d owner=%d, want 65535 7", w, o)
	}
}

func TestSampler(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{SampleInterval: 100})
	gauge := 5.0
	var instr, aborts uint64
	r.AddGauge("g", func() float64 { return gauge })
	r.AddRate("ipc", func() uint64 { return instr })
	r.AddDelta("aborts", func() uint64 { return aborts })

	instr, aborts = 200, 3
	r.TakeSample(100)
	gauge, instr, aborts = 7, 250, 10
	r.TakeSample(200)
	r.TakeSample(200) // duplicate boundary: ignored

	cycles, rows := r.Samples()
	if len(cycles) != 2 || cycles[0] != 100 || cycles[1] != 200 {
		t.Fatalf("cycles = %v, want [100 200]", cycles)
	}
	if rows[0][0] != 5 || rows[0][1] != 2 || rows[0][2] != 3 {
		t.Errorf("row 0 = %v, want [5 2 3]", rows[0])
	}
	if rows[1][0] != 7 || rows[1][1] != 0.5 || rows[1][2] != 7 {
		t.Errorf("row 1 = %v, want [7 0.5 7]", rows[1])
	}
	if names := r.SeriesNames(); len(names) != 3 || names[1] != "ipc" {
		t.Errorf("SeriesNames = %v", names)
	}
}

func TestWritePerfettoValidJSON(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{RingSize: 64, SampleInterval: 50})
	r.AddGauge("inflight", func() float64 { return 2 })
	r.Emit(SrcSIMT, KIssue, 1, 7, 3, 0, 0)
	r.Emit(SrcXbar, KXbarUp, 0, 2, 32, 0, 6)
	r.Emit(SrcCore, KVUOutcome, 0, 0x100, 21, 20, PackVUOutcome(VUSuccess, 0, 1, 1))
	r.TakeSample(50)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, r); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	var names, counters []string
	for _, e := range parsed.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			names = append(names, e.Args["name"].(string))
		}
		if e.Ph == "C" {
			counters = append(counters, e.Name)
		}
	}
	for _, want := range []string{"simt", "xbar", "core", "samples"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing process %q (have %v)", want, names)
		}
	}
	if len(counters) != 1 || counters[0] != "inflight" {
		t.Errorf("counter events = %v, want [inflight]", counters)
	}
}

func TestWriteCSVAndText(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng, Options{RingSize: 16, SampleInterval: 10})
	var n uint64
	r.AddDelta("commits", func() uint64 { return n })
	n = 4
	r.TakeSample(10)
	n = 9
	r.TakeSample(20)
	r.Emit(SrcMem, KMemAccess, 2, 0x80, 1, 0, 60)

	var csv bytes.Buffer
	if err := WriteCSV(&csv, r); err != nil {
		t.Fatal(err)
	}
	want := "cycle,commits\n10,4\n20,5\n"
	if csv.String() != want {
		t.Errorf("CSV = %q, want %q", csv.String(), want)
	}

	var txt bytes.Buffer
	if err := WriteText(&txt, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "mem-access") || !strings.Contains(txt.String(), "addr=128") {
		t.Errorf("text log missing event detail:\n%s", txt.String())
	}

	if err := Export(&bytes.Buffer{}, r, "nope"); err == nil {
		t.Errorf("Export accepted unknown format")
	}
}
