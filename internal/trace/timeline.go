package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Timeline assembles one Chrome trace-event document from heterogeneous
// producers: simulation recorders (cycle-stamped, one process per source) and
// external span emitters such as the serve layer's request lifecycle records
// (wall-clock µs). Perfetto renders every producer as its own process on a
// shared timeline, which is what lets a serve-request span and the sim events
// it triggered be inspected in one view.
//
// Timestamps are raw uint64 microsecond ticks; each producer picks its own
// epoch (simulated cycle 0, or wall-clock µs since process start) and its own
// pid range. WritePerfetto is now a thin wrapper over AddRecorder + Write, so
// every exporter path renders through the same machinery.
type Timeline struct {
	events []pfEvent
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Process names the process with the given pid.
func (t *Timeline) Process(pid int, name string) {
	t.events = append(t.events, pfEvent{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name},
	})
}

// Thread names one thread (pid, tid).
func (t *Timeline) Thread(pid, tid int, name string) {
	t.events = append(t.events, pfEvent{
		Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// Span appends a complete-event span [ts, ts+dur). A zero dur renders as 1
// tick so the span stays visible.
func (t *Timeline) Span(pid, tid int, name string, ts, dur uint64, args map[string]any) {
	if dur == 0 {
		dur = 1
	}
	t.events = append(t.events, pfEvent{
		Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args,
	})
}

// Instant appends a thread-scoped instant event.
func (t *Timeline) Instant(pid, tid int, name string, ts uint64, args map[string]any) {
	t.events = append(t.events, pfEvent{
		Name: name, Ph: "i", S: "t", Ts: ts, Pid: pid, Tid: tid, Args: args,
	})
}

// Counter appends one sample of a counter track.
func (t *Timeline) Counter(pid int, name string, ts uint64, value float64) {
	t.events = append(t.events, pfEvent{
		Name: name, Ph: "C", Ts: ts, Pid: pid,
		Args: map[string]any{"value": value},
	})
}

// AddRecorder renders a simulation recorder's retained events into the
// timeline: one process per source at pidBase+Source, one thread per hardware
// unit, spans for duration-carrying kinds, instants for the rest, and one
// counter track per interval-sample series at pidBase+samplePid. label, if
// non-empty, prefixes the process names so several recorders stay
// distinguishable in one document.
func (t *Timeline) AddRecorder(pidBase int, r *Recorder, label string) {
	for s := Source(0); s < NumSources; s++ {
		evs := r.Events(s)
		if len(evs) == 0 {
			continue
		}
		name := s.String()
		if label != "" {
			name = label + " " + name
		}
		t.Process(pidBase+int(s), name)
		namedTids := map[int32]bool{}
		for _, e := range evs {
			if !namedTids[e.Unit] {
				namedTids[e.Unit] = true
				t.Thread(pidBase+int(s), int(e.Unit), fmt.Sprintf("%s %d", unitLabels[s], e.Unit))
			}
			pf := toPf(e)
			pf.Pid += pidBase
			t.events = append(t.events, pf)
		}
	}

	cycles, rows := r.Samples()
	if len(cycles) > 0 {
		name := "samples"
		if label != "" {
			name = label + " samples"
		}
		t.Process(pidBase+samplePid, name)
		names := r.SeriesNames()
		for i, cyc := range cycles {
			for j, series := range names {
				t.Counter(pidBase+samplePid, series, cyc, rows[i][j])
			}
		}
	}
}

// Write renders the document as Chrome trace-event JSON.
func (t *Timeline) Write(w io.Writer) error {
	out := pfTrace{TraceEvents: t.events, DisplayTimeUnit: "ms"}
	if out.TraceEvents == nil {
		out.TraceEvents = []pfEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
