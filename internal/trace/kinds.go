package trace

import "fmt"

// Kind identifies an event type. Every kind belongs to exactly one Source;
// the kindTable below names its payload words for the exporters.
type Kind uint16

// Event kinds. The payload-word meanings are in kindTable.
const (
	// SIMT core events.
	KIssue Kind = iota
	KDiverge
	KReconverge
	// Transaction lifecycle events (SrcTx).
	KTxBegin
	KTxAbort
	KTxRetry
	KTxCommit
	// Crossbar events.
	KXbarUp
	KXbarDown
	// Memory partition events.
	KMemAccess
	KMemAtomic
	// GETM validation/commit unit events.
	KVURequest
	KVUOutcome
	KVURelease
	KStallEnq
	KStallReject
	KStallWake
	KCommitMsg
	// WarpTM events.
	KWTMValidate
	KWTMDecide
	KWTMSilent
	// EAPG events.
	KEAPGBroadcast
	KEAPGPause
	KEAPGEarlyAbort

	numKinds
)

// kindInfo describes one kind for the exporters: a display name, the names
// of the used payload words (empty = unused), and which payload word — if
// any — holds a duration in cycles (turning the event into a Perfetto
// complete-event span instead of an instant).
type kindInfo struct {
	name string
	args [4]string
	dur  int // payload index (0..3) carrying a duration; -1 for instants
}

var kindTable = [numKinds]kindInfo{
	KIssue:      {name: "issue", args: [4]string{"gwid", "pc", "op"}, dur: -1},
	KDiverge:    {name: "diverge", args: [4]string{"gwid", "live"}, dur: -1},
	KReconverge: {name: "reconverge", args: [4]string{"gwid", "mask"}, dur: -1},

	KTxBegin:  {name: "tx-begin", args: [4]string{"gwid", "mask", "attempt"}, dur: -1},
	KTxAbort:  {name: "tx-abort", args: [4]string{"gwid", "lane", "cause"}, dur: -1},
	KTxRetry:  {name: "tx-retry", args: [4]string{"gwid", "mask", "backoff"}, dur: -1},
	KTxCommit: {name: "tx-commit", args: [4]string{"gwid", "committed", "failed"}, dur: -1},

	KXbarUp:   {name: "xbar-up", args: [4]string{"dst", "bytes", "qwait"}, dur: 3},
	KXbarDown: {name: "xbar-down", args: [4]string{"dst", "bytes", "qwait"}, dur: 3},

	KMemAccess: {name: "mem-access", args: [4]string{"addr", "hit"}, dur: 3},
	KMemAtomic: {name: "mem-atomic", args: [4]string{"addr"}, dur: 3},

	KVURequest:   {name: "vu-request", args: [4]string{"addr", "warpts", "gwid", "write"}, dur: -1},
	KVUOutcome:   {name: "vu-outcome", args: [4]string{"addr", "wts", "rts", "packed"}, dur: -1},
	KVURelease:   {name: "vu-release", args: [4]string{"granule", "remaining", "committed"}, dur: -1},
	KStallEnq:    {name: "stall-enqueue", args: [4]string{"granule", "warpts", "occupancy"}, dur: -1},
	KStallReject: {name: "stall-reject", args: [4]string{"granule", "warpts", "occupancy"}, dur: -1},
	KStallWake:   {name: "stall-wake", args: [4]string{"granule", "warpts", "occupancy"}, dur: -1},
	KCommitMsg:   {name: "commit-msg", args: [4]string{"entries", "bytes"}, dur: 3},

	KWTMValidate: {name: "wtm-validate", args: [4]string{"cid", "lanes", "entries"}, dur: -1},
	KWTMDecide:   {name: "wtm-decide", args: [4]string{"cid", "failed", "committed"}, dur: -1},
	KWTMSilent:   {name: "wtm-silent", args: [4]string{"gwid", "lanes"}, dur: -1},

	KEAPGBroadcast:  {name: "eapg-broadcast", args: [4]string{"owner", "sig", "words"}, dur: -1},
	KEAPGPause:      {name: "eapg-pause", args: [4]string{"gwid", "owner"}, dur: -1},
	KEAPGEarlyAbort: {name: "eapg-early-abort", args: [4]string{"gwid", "lanes", "committer"}, dur: -1},
}

// String returns the kind's display name.
func (k Kind) String() string {
	if int(k) < len(kindTable) {
		return kindTable[k].name
	}
	return fmt.Sprintf("kind%d", uint16(k))
}

// unitLabels names the Unit field per source ("vu 3", "port 1", ...), used
// for Perfetto thread names and the text log.
var unitLabels = [NumSources]string{
	SrcSIMT:   "core",
	SrcXbar:   "port",
	SrcMem:    "partition",
	SrcCore:   "vu",
	SrcWarpTM: "core",
	SrcEAPG:   "core",
	SrcTx:     "core",
}

// VU outcome codes packed into KVUOutcome's D word.
const (
	VUSuccess uint8 = 0
	VUAbort   uint8 = 1
	VUQueue   uint8 = 2
)

// vuOutcomeNames maps the packed codes to the Fig 6 decision names.
var vuOutcomeNames = [3]string{"success", "abort", "queue"}

// VUOutcomeString names a packed outcome code ("success", "abort", "queue").
func VUOutcomeString(outcome uint8) string {
	if int(outcome) < len(vuOutcomeNames) {
		return vuOutcomeNames[outcome]
	}
	return fmt.Sprintf("outcome%d", outcome)
}

// PackVUOutcome packs a KVUOutcome decision into one payload word:
// owner (32 bits) | writes (16 bits, clamped) | cause (8 bits) | outcome
// (8 bits). Owner and writes are the granule's metadata after the decision.
func PackVUOutcome(outcome, cause uint8, writes, owner int) uint64 {
	w := uint64(writes)
	if w > 0xFFFF {
		w = 0xFFFF
	}
	return uint64(uint32(owner))<<32 | w<<16 | uint64(cause)<<8 | uint64(outcome)
}

// UnpackVUOutcome reverses PackVUOutcome.
func UnpackVUOutcome(d uint64) (outcome, cause uint8, writes, owner int) {
	return uint8(d), uint8(d >> 8), int(d >> 16 & 0xFFFF), int(uint32(d >> 32))
}
