package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Formats accepted by Export.
const (
	FormatPerfetto = "perfetto"
	FormatCSV      = "csv"
	FormatText     = "text"
)

// Export renders the recorder's contents in the named format.
func Export(w io.Writer, r *Recorder, format string) error {
	switch format {
	case FormatPerfetto:
		return WritePerfetto(w, r)
	case FormatCSV:
		return WriteCSV(w, r)
	case FormatText:
		return WriteText(w, r)
	}
	return fmt.Errorf("trace: unknown format %q (want %s, %s, or %s)",
		format, FormatPerfetto, FormatCSV, FormatText)
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Cycle != evs[j].Cycle {
			return evs[i].Cycle < evs[j].Cycle
		}
		return evs[i].Seq < evs[j].Seq
	})
}

// pfEvent is one Chrome trace-event record (the JSON object format Perfetto
// and chrome://tracing load). Timestamps are microseconds; we map one
// simulated cycle to one microsecond.
type pfEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type pfTrace struct {
	TraceEvents     []pfEvent `json:"traceEvents"`
	DisplayTimeUnit string    `json:"displayTimeUnit"`
}

// samplePid is the synthetic Perfetto process carrying the interval-sample
// counter tracks (distinct from the per-source pids 0..NumSources-1).
const samplePid = 100

// WritePerfetto renders the trace as Chrome trace-event JSON: one process
// per source, one thread per hardware unit (core/VU/port/partition), spans
// for duration-carrying kinds, instants for the rest, and one counter track
// per interval-sample series. It is AddRecorder on a fresh Timeline; callers
// combining several producers (e.g. serve lifecycle spans plus the sim
// recorders they triggered) build the Timeline themselves.
func WritePerfetto(w io.Writer, r *Recorder) error {
	tl := NewTimeline()
	tl.AddRecorder(0, r, "")
	return tl.Write(w)
}

// toPf converts one event record using its kind-table metadata.
func toPf(e Event) pfEvent {
	info := kindTable[e.Kind]
	pf := pfEvent{
		Name: info.name,
		Ph:   "i",
		S:    "t", // thread-scoped instant
		Ts:   e.Cycle,
		Pid:  int(e.Source),
		Tid:  int(e.Unit),
	}
	payload := [4]uint64{e.A, e.B, e.C, e.D}
	args := map[string]any{}
	for i, name := range info.args {
		if name != "" {
			args[name] = payload[i]
		}
	}
	if info.dur >= 0 {
		pf.Ph = "X"
		pf.S = ""
		pf.Dur = payload[info.dur]
		if pf.Dur == 0 {
			pf.Dur = 1
		}
	}
	if len(args) > 0 {
		pf.Args = args
	}
	return pf
}

// WriteCSV renders the interval samples as a CSV time series: a "cycle"
// column followed by one column per registered probe.
func WriteCSV(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	names := r.SeriesNames()
	fmt.Fprintf(bw, "cycle,%s\n", strings.Join(names, ","))
	cycles, rows := r.Samples()
	for i, cyc := range cycles {
		bw.WriteString(strconv.FormatUint(cyc, 10))
		for _, v := range rows[i] {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteText renders a human-readable merged log: every retained event across
// all sources in global emission order, with named payload words, followed
// by the interval samples.
func WriteText(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.merged() {
		info := kindTable[e.Kind]
		fmt.Fprintf(bw, "%10d  %-6s %s[%d]  %-16s", e.Cycle, e.Source, unitLabels[e.Source], e.Unit, info.name)
		payload := [4]uint64{e.A, e.B, e.C, e.D}
		for i, name := range info.args {
			if name != "" {
				fmt.Fprintf(bw, " %s=%d", name, payload[i])
			}
		}
		if info.dur >= 0 {
			fmt.Fprintf(bw, " dur=%d", payload[info.dur])
		}
		bw.WriteByte('\n')
	}
	for s := Source(0); s < NumSources; s++ {
		if d := r.Dropped(s); d > 0 {
			fmt.Fprintf(bw, "# %s: %d events overwritten (ring too small; raise RingSize)\n", s, d)
		}
	}
	cycles, rows := r.Samples()
	if len(cycles) > 0 {
		fmt.Fprintf(bw, "# samples: cycle %s\n", strings.Join(r.SeriesNames(), " "))
		for i, cyc := range cycles {
			fmt.Fprintf(bw, "# %10d", cyc)
			for _, v := range rows[i] {
				fmt.Fprintf(bw, " %g", v)
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
