package simt

import (
	"fmt"

	"getm/internal/isa"
	"getm/internal/sim"
	"getm/internal/stats"
	"getm/internal/tm"
	"getm/internal/trace"
)

// csRetryDelay paces critical-section retry rounds (loop overhead of the
// spin idiom in Fig 1).
const csRetryDelay sim.Cycle = 10

// Stats aggregates one core's execution counters.
type Stats struct {
	Commits       uint64
	Aborts        uint64
	AbortsByCause stats.Counters
	TxExecCycles  uint64
	TxWaitCycles  uint64
	Instructions  uint64
	TxAttempts    uint64
	// TxLaneAttempts counts lane×attempt pairs: every lane that enters an
	// attempt eventually commits or aborts exactly once, so
	// Commits+Aborts == TxLaneAttempts (the accounting invariant).
	TxLaneAttempts uint64
}

// Core models one SIMT core: warp contexts, the issue stage (one warp
// instruction per cycle, greedy-then-oldest selection), and the
// transactional execution machinery.
type Core struct {
	ID       int
	cfg      Config
	eng      *sim.Engine
	protocol tm.Protocol
	memsys   MemSystem
	rng      *sim.RNG
	dispatch func(core, slot int) *isa.Program

	warps []*Warp

	txActive int
	txQueue  []*Warp

	issuePending bool
	nextIssue    sim.Cycle
	lastWarp     int

	// storePool is a freelist of fire-and-forget store buffers (single
	// goroutine per machine, so no locking).
	storePool *storeBuf

	rec *trace.Recorder

	Stats Stats
}

// SetTrace attaches the machine-wide event recorder (nil disables; every
// emit below is behind a single pointer compare — see TestGETMStepAllocs).
func (c *Core) SetTrace(rec *trace.Recorder) { c.rec = rec }

// ActiveTx returns the number of warps currently inside a transaction
// (sampled by the telemetry probes).
func (c *Core) ActiveTx() int { return c.txActive }

// NewCore builds a core. dispatch supplies warp programs; it is called again
// whenever a warp finishes one (returning nil retires the warp).
func NewCore(id int, eng *sim.Engine, cfg Config, protocol tm.Protocol, memsys MemSystem, rng *sim.RNG, dispatch func(core, slot int) *isa.Program) *Core {
	c := &Core{
		ID:       id,
		cfg:      cfg,
		eng:      eng,
		protocol: protocol,
		memsys:   memsys,
		rng:      rng,
		dispatch: dispatch,
	}
	c.Stats.AbortsByCause = stats.Counters{}
	// Warp contexts are built lazily in Start: a warp's register file alone
	// is WarpWidth×NumRegs words, and at small workload scales most of a
	// core's slots never receive a program, so eager construction would
	// dominate the whole suite's allocations.
	c.warps = make([]*Warp, cfg.WarpsPerCore)
	// If the protocol's CanBegin gate can reopen (GETM after a rollover
	// drain), ask to be notified so warps queued behind it are re-admitted
	// even when no endTx is left to retry the queue.
	if g, ok := protocol.(interface{ OnCanBegin(func()) }); ok {
		g.OnCanBegin(c.admitQueued)
	}
	return c
}

// admitQueued starts queued warps while the admission gate allows it; called
// when a protocol gate reopens (endTx has its own inline copy of this loop).
func (c *Core) admitQueued() {
	admitted := false
	for len(c.txQueue) > 0 && c.canBegin() {
		next := c.txQueue[0]
		c.txQueue = c.txQueue[1:]
		c.Stats.TxWaitCycles += uint64(c.eng.Now() - next.waitStart)
		c.startTx(next)
		admitted = true
	}
	if admitted {
		c.scheduleIssue()
	}
}

// newWarpFor constructs the warp context for a slot with its two prebound
// completion closures (allocated once per warp, here).
func (c *Core) newWarpFor(slot int) *Warp {
	w := newWarp(slot, c.ID*c.cfg.WarpsPerCore+slot)
	w.accDone = func(results []tm.AccessResult) { c.txAccessDone(w, results) }
	w.loadDone = func(loadVals []uint64) {
		for i, lane := range w.loadLanes {
			w.regs[lane][w.loadDst] = loadVals[i]
		}
		c.wake(w)
	}
	c.warps[slot] = w
	return w
}

// Start assigns initial programs and begins issuing. Slots whose first
// dispatch returns nil stay nil in c.warps (a nil warp is a retired warp);
// dispatch is still consulted once per slot, in slot order, so program
// distribution matches an eager build exactly.
func (c *Core) Start() {
	for slot := 0; slot < c.cfg.WarpsPerCore; slot++ {
		if p := c.dispatch(c.ID, slot); p != nil {
			c.newWarpFor(slot).assign(p)
		}
	}
	c.scheduleIssue()
}

// AllDone reports whether every warp has retired.
func (c *Core) AllDone() bool {
	for _, w := range c.warps {
		if w != nil && w.state != wDone {
			return false
		}
	}
	return true
}

// StuckWarps describes non-retired warps (deadlock diagnostics).
func (c *Core) StuckWarps() []string {
	var out []string
	for _, w := range c.warps {
		if w != nil && w.state != wDone {
			out = append(out, fmt.Sprintf("core %d warp %d state %d pc %d inTx %v live %032b",
				c.ID, w.slot, w.state, w.top().pc, w.inTx, w.live()))
		}
	}
	return out
}

// AsyncAbort applies an asynchronous abort notice (EAPG broadcasts) to the
// matching warp's live lanes. Lanes already in the commit sequence are left
// to value validation.
func (c *Core) AsyncAbort(n tm.AbortNotice) {
	slot := n.GWID - c.ID*c.cfg.WarpsPerCore
	if slot < 0 || slot >= len(c.warps) {
		return
	}
	w := c.warps[slot]
	if w == nil || !w.inTx || w.committing {
		return
	}
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if n.Lanes.Bit(lane) && w.live().Bit(lane) {
			c.abortLane(w, lane, n.Cause)
		}
	}
	// If the whole warp is now dead and it sits between instructions, skip
	// straight to the commit point for cleanup/retry.
	if w.live() == 0 && w.state == wReady && len(w.frames) == 1 {
		w.top().pc = w.commitPC
	}
}

// --- scheduling ---

func (c *Core) wake(w *Warp) {
	if w.state == wBlocked {
		w.state = wReady
	}
	c.scheduleIssue()
}

func (c *Core) anyReady() bool {
	for _, w := range c.warps {
		if w != nil && w.state == wReady {
			return true
		}
	}
	return false
}

func (c *Core) scheduleIssue() {
	if c.issuePending || !c.anyReady() {
		return
	}
	c.issuePending = true
	delay := sim.Cycle(0)
	if now := c.eng.Now(); c.nextIssue > now {
		delay = c.nextIssue - now
	}
	c.eng.Schedule(delay, c.issue)
}

// pickWarp implements greedy-then-oldest: keep issuing from the same warp
// until it stalls, then fall back to the oldest (lowest slot) ready warp.
func (c *Core) pickWarp() *Warp {
	if w := c.warps[c.lastWarp]; w != nil && w.state == wReady {
		return w
	}
	for _, w := range c.warps {
		if w != nil && w.state == wReady {
			c.lastWarp = w.slot
			return w
		}
	}
	return nil
}

func (c *Core) issue() {
	c.issuePending = false
	w := c.pickWarp()
	if w == nil {
		return
	}
	c.nextIssue = c.eng.Now() + 1
	if op := w.curOp(); op != nil {
		c.Stats.Instructions++
		if c.rec != nil {
			c.rec.Emit(trace.SrcSIMT, trace.KIssue, int32(c.ID),
				uint64(w.gwid), uint64(w.top().pc), uint64(op.Kind), 0)
		}
	}
	c.execStep(w)
	c.scheduleIssue()
}

// --- op execution ---

func (c *Core) execStep(w *Warp) {
	op := w.curOp()
	if op == nil {
		c.frameDone(w)
		return
	}
	switch op.Kind {
	case isa.Compute:
		w.top().pc++
		w.state = wBlocked
		c.eng.Schedule(sim.Cycle(op.Latency), func() { c.wake(w) })
	case isa.MovImm:
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if w.effMask(op).Bit(lane) {
				w.regs[lane][op.Dst] = uint64(op.LaneImm(lane))
			}
		}
		w.top().pc++
	case isa.AddImm:
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if w.effMask(op).Bit(lane) {
				w.regs[lane][op.Dst] = w.regs[lane][op.Src] + uint64(op.LaneImm(lane))
			}
		}
		w.top().pc++
	case isa.Load, isa.Store:
		if w.inTx && len(w.frames) == 1 {
			c.execTxAccess(w, op, op.Kind == isa.Store)
		} else {
			c.execMemAccess(w, op, op.Kind == isa.Store)
		}
	case isa.TxBegin:
		c.execTxBegin(w, op)
	case isa.TxCommit:
		c.execTxCommit(w)
	case isa.CritSection:
		c.execCritSection(w, op)
	case isa.AtomicAdd:
		c.execAtomicAdd(w, op)
	default:
		panic(fmt.Sprintf("simt: unknown op kind %v", op.Kind))
	}
}

// execAtomicAdd issues per-lane atomic adds; the warp blocks until all lanes
// receive their old values (atomics return a result, unlike plain stores).
func (c *Core) execAtomicAdd(w *Warp, op *isa.Op) {
	mask := w.effMask(op)
	w.top().pc++
	if mask == 0 {
		return
	}
	outstanding := 0
	w.state = wBlocked
	dst := op.Dst
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !mask.Bit(lane) {
			continue
		}
		lane := lane
		outstanding++
		c.memsys.AtomicAdd(c.ID, op.Addr[lane], uint64(op.LaneImm(lane)), func(old uint64) {
			w.regs[lane][dst] = old
			outstanding--
			if outstanding == 0 {
				c.wake(w)
			}
		})
	}
}

// frameDone pops a finished frame (critical-section body) or retires /
// redispatches the warp at main-program end.
func (c *Core) frameDone(w *Warp) {
	if len(w.frames) > 1 {
		f := w.top()
		w.frames = w.frames[:len(w.frames)-1]
		w.state = wBlocked
		f.onDone(w)
		return
	}
	if w.pendingStores > 0 {
		// Drain fire-and-forget stores before retiring the program.
		w.state = wBlocked
		w.fence(func() { c.wake(w) })
		return
	}
	if p := c.dispatch(c.ID, w.slot); p != nil {
		w.assign(p)
		c.scheduleIssue()
		return
	}
	w.state = wDone
}

// execMemAccess handles non-transactional coalesced loads/stores. Stores
// are fire-and-forget (the warp continues immediately, as GPU global stores
// do); loads block the warp, and a load of a word with an outstanding store
// first drains the store queue (scoreboard).
func (c *Core) execMemAccess(w *Warp, op *isa.Op, isWrite bool) {
	mask := w.effMask(op)
	if mask == 0 {
		w.top().pc++
		return
	}

	if isWrite {
		// Stores outlive this instruction (the warp keeps running), so their
		// operand buffers come from the core's pool, recycled on completion.
		sb := c.getStoreBuf(w)
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if !mask.Bit(lane) {
				continue
			}
			sb.addrs = append(sb.addrs, op.Addr[lane])
			sb.vals = append(sb.vals, w.storeValue(op, lane))
		}
		for _, a := range sb.addrs {
			w.storeWords[a]++
		}
		w.pendingStores++
		w.top().pc++
		sb.scoreboard = w.storeWords // capture: assign() swaps in a fresh map
		c.memsys.Access(c.ID, true, sb.addrs, sb.vals, sb.done)
		return // warp stays ready
	}

	lanes, addrs := w.loadLanes[:0], w.loadAddrs[:0]
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !mask.Bit(lane) {
			continue
		}
		lanes = append(lanes, lane)
		addrs = append(addrs, op.Addr[lane])
	}
	w.loadLanes, w.loadAddrs = lanes, addrs

	if w.storeConflict(addrs) {
		// Read-after-write through memory: drain outstanding stores, then
		// re-issue this load (pc has not advanced).
		w.state = wBlocked
		w.fence(func() { c.wake(w) })
		return
	}
	w.top().pc++
	w.state = wBlocked
	w.loadDst = op.Dst
	c.memsys.Access(c.ID, false, addrs, nil, w.loadDone)
}

// storeBuf carries one fire-and-forget store's operands until the memory
// system completes it; done is prebound once per pooled buffer.
type storeBuf struct {
	c          *Core
	w          *Warp
	addrs      []uint64
	vals       []uint64
	scoreboard map[uint64]int
	done       func([]uint64)
	next       *storeBuf
}

// getStoreBuf pops a pooled store buffer (or builds one, amortized away).
func (c *Core) getStoreBuf(w *Warp) *storeBuf {
	sb := c.storePool
	if sb == nil {
		sb = &storeBuf{
			c:     c,
			addrs: make([]uint64, 0, isa.WarpWidth),
			vals:  make([]uint64, 0, isa.WarpWidth),
		}
		sb.done = func([]uint64) { sb.storeDone() }
	} else {
		c.storePool = sb.next
	}
	sb.w = w
	return sb
}

// storeDone retires one store: scoreboard decrements, fence draining, and
// buffer recycling.
func (sb *storeBuf) storeDone() {
	for _, a := range sb.addrs {
		if sb.scoreboard[a] > 0 {
			sb.scoreboard[a]--
		}
	}
	w, c := sb.w, sb.c
	sb.addrs = sb.addrs[:0]
	sb.vals = sb.vals[:0]
	sb.scoreboard = nil
	sb.w = nil
	sb.next = c.storePool
	c.storePool = sb
	w.pendingStores--
	c.drainFences(w)
}

// drainFences fires fence callbacks once the warp's store queue is empty.
func (c *Core) drainFences(w *Warp) {
	if w.pendingStores != 0 || len(w.fenceFns) == 0 {
		return
	}
	fns := w.fenceFns
	w.fenceFns = nil
	for _, f := range fns {
		f()
	}
}

// execTxBegin starts a transaction, subject to the per-core concurrency
// throttle and any protocol gate (GETM's rollover drain).
func (c *Core) execTxBegin(w *Warp, op *isa.Op) {
	mask := op.EffMask(w.top().mask)
	if mask == 0 {
		w.top().pc++
		return
	}
	w.pendingTxMask = mask
	if !c.canBegin() {
		w.state = wBlocked
		w.waitStart = c.eng.Now()
		c.txQueue = append(c.txQueue, w)
		return
	}
	c.startTx(w)
}

func (c *Core) canBegin() bool {
	if c.cfg.MaxTxWarps > 0 && c.txActive >= c.cfg.MaxTxWarps {
		return false
	}
	if g, ok := c.protocol.(interface{ CanBegin() bool }); ok && !g.CanBegin() {
		return false
	}
	return true
}

func (c *Core) startTx(w *Warp) {
	c.txActive++
	f := w.top()
	w.inTx = true
	w.committing = false
	w.txBeginPC = f.pc
	w.commitPC = findCommit(f.ops, f.pc)
	w.txMask = w.pendingTxMask
	w.deadMask = 0
	w.attempts = 0
	c.beginAttempt(w)
	f.pc++
	w.state = wReady
}

func findCommit(ops []isa.Op, from int) int {
	for i := from; i < len(ops); i++ {
		if ops[i].Kind == isa.TxCommit {
			return i
		}
	}
	panic("simt: transaction without commit")
}

func (c *Core) beginAttempt(w *Warp) {
	c.Stats.TxAttempts++
	c.Stats.TxLaneAttempts += uint64(w.txMask.Count())
	if c.rec != nil {
		c.rec.Emit(trace.SrcTx, trace.KTxBegin, int32(c.ID),
			uint64(w.gwid), uint64(w.txMask), uint64(w.attempts), 0)
	}
	w.txLog.Reset()
	w.warpTx = &tm.WarpTx{GWID: w.gwid, Core: c.ID, Log: w.txLog, StartCycle: c.eng.Now()}
	c.protocol.Begin(w.warpTx)
	w.attemptStart = c.eng.Now()
}

func (c *Core) abortLane(w *Warp, lane int, cause tm.AbortCause) {
	if w.deadMask.Bit(lane) {
		return
	}
	w.deadMask = w.deadMask.Set(lane)
	c.Stats.Aborts++
	c.Stats.AbortsByCause.Inc(cause.String(), 1)
	if c.rec != nil {
		c.rec.Emit(trace.SrcTx, trace.KTxAbort, int32(c.ID),
			uint64(w.gwid), uint64(lane), uint64(cause), 0)
		c.rec.Emit(trace.SrcSIMT, trace.KDiverge, int32(c.ID),
			uint64(w.gwid), uint64(w.live()), 0, 0)
	}
}

// execTxAccess drives a transactional warp memory instruction: redo-log
// forwarding, (for eager protocols) access-time intra-warp conflict checks,
// then the protocol's global access path.
func (c *Core) execTxAccess(w *Warp, op *isa.Op, isWrite bool) {
	mask := op.EffMask(w.live())
	f := w.top()
	if mask == 0 {
		// Every lane this op concerns is dead; skip forward. If the whole
		// warp is dead, jump to the commit point for cleanup.
		if w.live() == 0 {
			f.pc = w.commitPC
		} else {
			f.pc++
		}
		return
	}

	eager := c.protocol.EagerIntraWarp()
	send := w.sendBuf[:0]
	// Same-instruction writer tracking: at most WarpWidth distinct addresses,
	// so a linear-scanned stack array beats a map.
	var opAddrs [isa.WarpWidth]uint64
	var opMasks [isa.WarpWidth]isa.LaneMask
	nOp := 0
	writersOf := func(addr uint64) *isa.LaneMask {
		for i := 0; i < nOp; i++ {
			if opAddrs[i] == addr {
				return &opMasks[i]
			}
		}
		opAddrs[nOp] = addr
		opMasks[nOp] = 0
		nOp++
		return &opMasks[nOp-1]
	}
	dst := op.Dst

	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !mask.Bit(lane) {
			continue
		}
		addr := op.Addr[lane]
		if isWrite {
			val := w.storeValue(op, lane)
			wm := writersOf(addr)
			if eager {
				conf := (w.txLog.Conflicts(lane, addr, true) | *wm) & w.live()
				if conf != 0 {
					c.abortLane(w, lane, tm.CauseIntraWarp)
					continue
				}
			}
			*wm = wm.Set(lane)
			w.sendIdx[lane] = int8(len(send))
			send = append(send, tm.LaneAccess{Lane: lane, Addr: addr, Value: val})
		} else {
			if v, ok := w.txLog.Forward(lane, addr); ok {
				w.regs[lane][dst] = v
				continue
			}
			if v, ok := w.txLog.ForwardRead(lane, addr); ok {
				w.regs[lane][dst] = v
				continue
			}
			if eager {
				conf := w.txLog.Conflicts(lane, addr, false) & w.live()
				if conf != 0 {
					c.abortLane(w, lane, tm.CauseIntraWarp)
					continue
				}
			}
			w.sendIdx[lane] = int8(len(send))
			send = append(send, tm.LaneAccess{Lane: lane, Addr: addr})
		}
	}
	w.sendBuf = send

	if len(send) == 0 {
		if w.live() == 0 {
			f.pc = w.commitPC
		} else {
			f.pc++
		}
		return
	}

	f.pc++
	w.state = wBlocked
	w.accIsWrite = isWrite
	w.accDst = dst
	w.accAttempt = w.warpTx
	c.protocol.Access(w.warpTx, isWrite, send, w.accDone)
}

// txAccessDone is the (per-warp prebound) completion callback for a
// transactional access: it applies per-lane results to the redo log and
// registers, then wakes the warp.
func (c *Core) txAccessDone(w *Warp, results []tm.AccessResult) {
	if w.warpTx != w.accAttempt {
		return // stale completion after the attempt ended
	}
	for _, r := range results {
		la := w.sendBuf[w.sendIdx[r.Lane]]
		if r.Abort {
			c.abortLane(w, r.Lane, r.Cause)
			continue
		}
		if !w.live().Bit(r.Lane) {
			continue // asynchronously aborted while in flight
		}
		if w.accIsWrite {
			w.txLog.RecordWrite(r.Lane, la.Addr, la.Value)
		} else {
			w.txLog.RecordRead(r.Lane, la.Addr, r.Value)
			w.regs[r.Lane][w.accDst] = r.Value
		}
	}
	if w.live() == 0 {
		w.top().pc = w.commitPC
	}
	c.wake(w)
}

// resolveIntraWarp finds, at commit time, a maximal prefix-greedy set of
// non-conflicting lanes; the rest abort (WarpTM's two-phase resolution).
func resolveIntraWarp(log *tm.TxLog, live isa.LaneMask) (losers isa.LaneMask) {
	var survivors isa.LaneMask
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !live.Bit(lane) {
			continue
		}
		// Scan the shared logs directly (allocation-free) instead of
		// materializing LaneEntries; the entry order within a lane matches.
		conflict := false
		for _, e := range log.Writes {
			if e.Lane == lane && log.Conflicts(lane, e.Addr, true)&survivors != 0 {
				conflict = true
				break
			}
		}
		if !conflict {
			for _, e := range log.Reads {
				if e.Lane == lane && log.Conflicts(lane, e.Addr, false)&survivors != 0 {
					conflict = true
					break
				}
			}
		}
		if conflict {
			losers = losers.Set(lane)
		} else {
			survivors = survivors.Set(lane)
		}
	}
	return losers
}

// execTxCommit finishes the warp's transaction: commit-time intra-warp
// resolution for lazy protocols, the protocol commit, and retry of aborted
// lanes with probabilistically increasing backoff.
func (c *Core) execTxCommit(w *Warp) {
	f := w.top()
	live := w.live()

	extra := sim.Cycle(0)
	if !c.protocol.EagerIntraWarp() && live.Count() > 1 {
		losers := resolveIntraWarp(w.txLog, live)
		for lane := 0; lane < isa.WarpWidth; lane++ {
			if losers.Bit(lane) {
				c.abortLane(w, lane, tm.CauseIntraWarp)
			}
		}
		extra = sim.Cycle(c.cfg.IntraWarpCyclesPerEntry * (len(w.txLog.Reads) + len(w.txLog.Writes)))
		live = w.live()
	}

	commitMask, abortMask := live, w.deadMask
	w.state = wBlocked
	w.committing = true
	attempt := w.warpTx
	c.eng.Schedule(extra, func() {
		commitStart := c.eng.Now()
		if commitStart > w.attemptStart {
			c.Stats.TxExecCycles += uint64(commitStart - w.attemptStart)
		}
		c.protocol.Commit(attempt, commitMask, abortMask, func(out tm.CommitOutcome) {
			c.Stats.TxWaitCycles += uint64(c.eng.Now() - commitStart)
			failed := out.FailedLanes & commitMask
			for lane := 0; lane < isa.WarpWidth; lane++ {
				if failed.Bit(lane) {
					c.Stats.Aborts++
					c.Stats.AbortsByCause.Inc(out.Cause.String(), 1)
					if c.rec != nil {
						c.rec.Emit(trace.SrcTx, trace.KTxAbort, int32(c.ID),
							uint64(w.gwid), uint64(lane), uint64(out.Cause), 0)
					}
				}
			}
			committed := commitMask &^ failed
			c.Stats.Commits += uint64(committed.Count())
			if c.rec != nil {
				c.rec.Emit(trace.SrcTx, trace.KTxCommit, int32(c.ID),
					uint64(w.gwid), uint64(committed), uint64(failed), 0)
			}

			retry := abortMask | failed
			if retry != 0 {
				w.attempts++
				backoff := c.backoff(w.attempts)
				c.Stats.TxWaitCycles += uint64(backoff)
				if c.rec != nil {
					c.rec.Emit(trace.SrcTx, trace.KTxRetry, int32(c.ID),
						uint64(w.gwid), uint64(retry), uint64(backoff), 0)
				}
				c.eng.Schedule(backoff, func() {
					w.txMask = retry
					w.deadMask = 0
					w.committing = false
					c.beginAttempt(w)
					if c.rec != nil {
						c.rec.Emit(trace.SrcSIMT, trace.KReconverge, int32(c.ID),
							uint64(w.gwid), uint64(retry), 0, 0)
					}
					f.pc = w.txBeginPC + 1
					c.wake(w)
				})
				return
			}
			c.endTx(w)
			f.pc = w.commitPC + 1
			c.wake(w)
		})
	})
}

// backoff returns a random delay in [0, min(base<<attempts, cap)).
func (c *Core) backoff(attempts int) sim.Cycle {
	limit := c.cfg.BackoffBase
	for i := 1; i < attempts && limit < c.cfg.BackoffCap; i++ {
		limit <<= 1
	}
	if limit > c.cfg.BackoffCap {
		limit = c.cfg.BackoffCap
	}
	if limit == 0 {
		return 0
	}
	return sim.Cycle(c.rng.Uint64n(limit))
}

// endTx releases the warp's transactional slot and admits a queued warp.
func (c *Core) endTx(w *Warp) {
	w.inTx = false
	w.committing = false
	c.txActive--
	for len(c.txQueue) > 0 && c.canBegin() {
		next := c.txQueue[0]
		c.txQueue = c.txQueue[1:]
		c.Stats.TxWaitCycles += uint64(c.eng.Now() - next.waitStart)
		c.startTx(next)
	}
	c.scheduleIssue()
}
