package simt

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/sim"
)

// gatedProto is fakeProto plus a CanBegin gate the test controls, standing in
// for GETM's rollover drain.
type gatedProto struct {
	*fakeProto
	open  bool
	hooks []func()
}

func (g *gatedProto) CanBegin() bool       { return g.open }
func (g *gatedProto) OnCanBegin(fn func()) { g.hooks = append(g.hooks, fn) }
func (g *gatedProto) reopen() {
	g.open = true
	for _, fn := range g.hooks {
		fn()
	}
}

// TestReopenedGateAdmitsParkedWarps pins the rollover re-admission bugfix.
// When every warp of a core parks behind a closed CanBegin gate, nothing is
// left running to call endTx — the only place the queue used to be retried —
// so reopening the gate must actively wake the queue via the OnCanBegin hook
// NewCore registers. Before the fix the engine drained with the core stuck
// (the deadlock TestRolloverResumesQueuedWarps exercises end-to-end).
func TestReopenedGateAdmitsParkedWarps(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x5000 + 8*i)
	}
	var progs []*isa.Program
	for w := 0; w < 4; w++ {
		progs = append(progs, isa.NewBuilder().
			TxBegin().
			Load(1, addrs).
			Store(1, addrs).
			TxCommit().
			MustBuild())
	}

	eng := sim.NewEngine()
	fm := newFakeMem(eng)
	gp := &gatedProto{fakeProto: &fakeProto{eng: eng, mem: fm, eager: true, abortOn: map[uint64]int{}}}
	cfg := DefaultConfig()
	cfg.WarpsPerCore = 4
	i := 0
	dispatch := func(core, slot int) *isa.Program {
		if i >= len(progs) {
			return nil
		}
		p := progs[i]
		i++
		return p
	}
	c := NewCore(0, eng, cfg, gp, fm, sim.NewRNG(1), dispatch)

	// Gate closed: every warp reaches TxBegin, parks, and the event queue
	// drains with the core stuck — the deadlock state.
	c.Start()
	eng.Run(0)
	if c.AllDone() {
		t.Fatal("warps finished through a closed gate")
	}
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending; warps did not park", eng.Pending())
	}

	// Reopening must wake the parked warps with no other activity in flight.
	gp.reopen()
	eng.Run(0)
	if !c.AllDone() {
		t.Fatalf("parked warps never admitted after gate reopened: %v", c.StuckWarps())
	}
	if c.Stats.Commits == 0 {
		t.Fatal("no commits after re-admission")
	}
}
