package simt

import (
	"getm/internal/isa"
	"getm/internal/sim"
	"getm/internal/tm"
)

type warpState uint8

const (
	// wIdle: no program assigned yet (or finished, awaiting dispatch).
	wIdle warpState = iota
	// wReady: can issue an instruction this cycle.
	wReady
	// wBlocked: waiting on memory, a tx slot, a commit, backoff, or a
	// critical-section phase.
	wBlocked
	// wDone: no more work will be dispatched.
	wDone
)

// frame is one level of the execution stack: the main program, or a
// critical-section body with a holder mask.
type frame struct {
	ops    []isa.Op
	pc     int
	mask   isa.LaneMask
	onDone func(w *Warp)
}

// Warp is one hardware warp's execution state, including the transactional
// SIMT-stack extension: txMask tracks the lanes of the current attempt and
// deadMask the lanes that aborted and wait (as the Retry stack entry) to be
// re-executed when the warp reaches the commit point.
type Warp struct {
	slot int // core-local index
	gwid int

	frames []frame
	state  warpState

	regs [isa.WarpWidth][isa.NumRegs]uint64

	// Transaction state.
	inTx          bool
	committing    bool
	txBeginPC     int
	commitPC      int
	txMask        isa.LaneMask
	pendingTxMask isa.LaneMask
	deadMask      isa.LaneMask
	txLog         *tm.TxLog
	warpTx        *tm.WarpTx
	attempts      int

	// Timing accounting.
	attemptStart sim.Cycle
	waitStart    sim.Cycle

	// cs is the in-progress critical-section state machine, if any.
	cs *csState

	// Non-blocking store tracking: GPUs fire-and-forget global stores, so
	// the warp continues after issuing one. storeWords scoreboards the
	// written words (a later load of one must wait), and fence callbacks run
	// once every outstanding store has reached memory (used before releasing
	// locks and at program end).
	pendingStores int
	storeWords    map[uint64]int
	fenceFns      []func()

	// Per-warp access scratch, reused across instructions. Safe because a
	// warp has at most one transactional access or blocking load in flight
	// and stays blocked until its completion callback runs (fire-and-forget
	// stores use pooled core buffers instead). Never shared across warps or
	// goroutines (DESIGN.md §6).
	sendBuf   []tm.LaneAccess     // lanes going to the protocol this instruction
	sendIdx   [isa.WarpWidth]int8 // lane -> index into sendBuf
	loadLanes []int               // blocking-load scratch
	loadAddrs []uint64

	// In-flight access state consumed by the prebound completion callbacks
	// (accDone for transactional accesses, loadDone for blocking loads); the
	// closures themselves are allocated once per warp in NewCore.
	accIsWrite bool
	accDst     isa.Reg
	accAttempt *tm.WarpTx
	accDone    func([]tm.AccessResult)
	loadDst    isa.Reg
	loadDone   func([]uint64)
}

func newWarp(slot, gwid int) *Warp {
	return &Warp{
		slot: slot, gwid: gwid, txLog: tm.NewTxLog(),
		storeWords: make(map[uint64]int),
		sendBuf:    make([]tm.LaneAccess, 0, isa.WarpWidth),
		loadLanes:  make([]int, 0, isa.WarpWidth),
		loadAddrs:  make([]uint64, 0, isa.WarpWidth),
	}
}

// fence runs f once all outstanding stores have completed.
func (w *Warp) fence(f func()) {
	if w.pendingStores == 0 {
		f()
		return
	}
	w.fenceFns = append(w.fenceFns, f)
}

// storeConflict reports whether any address has an outstanding store.
func (w *Warp) storeConflict(addrs []uint64) bool {
	if len(w.storeWords) == 0 {
		return false
	}
	for _, a := range addrs {
		if w.storeWords[a] > 0 {
			return true
		}
	}
	return false
}

// top returns the current frame.
func (w *Warp) top() *frame { return &w.frames[len(w.frames)-1] }

// curOp returns the op at the current pc, or nil at frame end.
func (w *Warp) curOp() *isa.Op {
	f := w.top()
	if f.pc >= len(f.ops) {
		return nil
	}
	return &f.ops[f.pc]
}

// live returns the lanes of the current attempt still executing.
func (w *Warp) live() isa.LaneMask { return w.txMask &^ w.deadMask }

// effMask resolves an op's lane set in the current context.
func (w *Warp) effMask(op *isa.Op) isa.LaneMask {
	base := w.top().mask
	if w.inTx && len(w.frames) == 1 {
		base &= w.live()
	}
	return op.EffMask(base)
}

// assign loads a new program into the warp. The caller guarantees the store
// queue is drained (frameDone fences before redispatch).
func (w *Warp) assign(p *isa.Program) {
	w.frames = w.frames[:0]
	w.frames = append(w.frames, frame{ops: p.Ops, mask: isa.FullMask})
	w.state = wReady
	w.inTx = false
	w.deadMask = 0
	w.txMask = 0
	w.cs = nil
	clear(w.storeWords) // safe: frameDone drains stores before redispatch
	for l := range w.regs {
		for r := range w.regs[l] {
			w.regs[l][r] = 0
		}
	}
}

// storeValue resolves the data a lane's store writes.
func (w *Warp) storeValue(op *isa.Op, lane int) uint64 {
	if op.UseImm {
		return uint64(op.LaneImm(lane))
	}
	return w.regs[lane][op.Src]
}

// csState drives the warp-level critical-section loop: acquire the per-lane
// lock lists in ascending order via CAS, run the body for the lanes that
// hold all their locks, release, and repeat for the remainder (the Fig 1
// loop-on-flag idiom).
type csState struct {
	op        *isa.Op
	remaining isa.LaneMask
	// held[lane] counts locks currently held during an acquire round.
	held [isa.WarpWidth]int
}
