// Package simt models the GPU's SIMT cores: warp state, the modified SIMT
// stack that tracks aborted transactional lanes for retry (Fung et al.),
// greedy-then-oldest warp scheduling, the transactional-warp concurrency
// throttle, intra-warp conflict detection, redo-log bookkeeping, exponential
// backoff, and warp-level critical-section execution for the fine-grained
// lock baselines.
//
// A core executes one warp instruction per cycle. Memory instructions
// coalesce lanes and block the issuing warp until all lanes complete; the
// scheduler hides the latency with other warps — exactly the mechanism whose
// limits under lazy commit serialization the paper studies.
package simt

// Config holds per-core parameters (Table II).
type Config struct {
	// WarpsPerCore is the hardware warp count (48).
	WarpsPerCore int
	// MaxTxWarps throttles concurrent transactional warps per core
	// (0 = unlimited, the paper's "NL").
	MaxTxWarps int
	// IntraWarpCyclesPerEntry prices commit-time two-phase intra-warp
	// conflict resolution (lazy protocols).
	IntraWarpCyclesPerEntry int
	// SerializeCyclesPerEntry prices the tx-log unit's commit-time log walk.
	SerializeCyclesPerEntry int
	// BackoffBase and BackoffCap bound the probabilistically increasing
	// retry backoff (cycles).
	BackoffBase uint64
	BackoffCap  uint64
	// LocalOpCycles is the latency of register and redo-log local
	// operations.
	LocalOpCycles uint64
}

// DefaultConfig returns the paper's core setup.
func DefaultConfig() Config {
	return Config{
		WarpsPerCore:            48,
		MaxTxWarps:              0,
		IntraWarpCyclesPerEntry: 2,
		SerializeCyclesPerEntry: 1,
		BackoffBase:             64,
		BackoffCap:              8192,
		LocalOpCycles:           1,
	}
}

// MemSystem is the core's path to the memory partitions for
// non-transactional traffic: coalesced global accesses and the atomics the
// lock baseline uses. The gpu package implements it over the crossbars.
type MemSystem interface {
	// Access performs a coalesced warp access: requests are issued per
	// distinct LLC line. For loads, done receives one value per element of
	// addrs; for stores, vals supplies the data and done receives nil.
	Access(core int, isWrite bool, addrs, vals []uint64, done func(loadVals []uint64))
	// AtomicCAS executes compare-and-swap at addr's home partition.
	AtomicCAS(core int, addr, compare, swap uint64, done func(old uint64, ok bool))
	// AtomicExch executes an atomic exchange at addr's home partition.
	AtomicExch(core int, addr, val uint64, done func(old uint64))
	// AtomicAdd executes an atomic add at addr's home partition.
	AtomicAdd(core int, addr, delta uint64, done func(old uint64))
}
