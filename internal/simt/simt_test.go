package simt

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/sim"
	"getm/internal/tm"
)

// fakeMem is an instant, engine-scheduled memory (1-cycle latency).
type fakeMem struct {
	eng   *sim.Engine
	words map[uint64]uint64
	// atomicsServed counts CAS/Exch operations.
	atomicsServed int
}

func newFakeMem(eng *sim.Engine) *fakeMem {
	return &fakeMem{eng: eng, words: map[uint64]uint64{}}
}

func (f *fakeMem) Access(core int, isWrite bool, addrs, vals []uint64, done func([]uint64)) {
	f.eng.Schedule(1, func() {
		out := make([]uint64, len(addrs))
		for i, a := range addrs {
			if isWrite {
				f.words[a] = vals[i]
			} else {
				out[i] = f.words[a]
			}
		}
		done(out)
	})
}

func (f *fakeMem) AtomicCAS(core int, addr, cmp, swap uint64, done func(uint64, bool)) {
	f.atomicsServed++
	f.eng.Schedule(1, func() {
		old := f.words[addr]
		ok := old == cmp
		if ok {
			f.words[addr] = swap
		}
		done(old, ok)
	})
}

func (f *fakeMem) AtomicExch(core int, addr, val uint64, done func(uint64)) {
	f.atomicsServed++
	f.eng.Schedule(1, func() {
		old := f.words[addr]
		f.words[addr] = val
		done(old)
	})
}

func (f *fakeMem) AtomicAdd(core int, addr, delta uint64, done func(uint64)) {
	f.atomicsServed++
	f.eng.Schedule(1, func() {
		old := f.words[addr]
		f.words[addr] = old + delta
		done(old)
	})
}

// fakeProto is a scriptable protocol: abortOn[addr] makes accesses to that
// address abort once; commits apply writes to the fake memory instantly.
type fakeProto struct {
	eng     *sim.Engine
	mem     *fakeMem
	eager   bool
	abortOn map[uint64]int // addr -> remaining aborts
	begins  int
	commits int
}

func (f *fakeProto) Name() string         { return "fake" }
func (f *fakeProto) EagerIntraWarp() bool { return f.eager }
func (f *fakeProto) Begin(*tm.WarpTx)     { f.begins++ }

func (f *fakeProto) Access(w *tm.WarpTx, isWrite bool, lanes []tm.LaneAccess, done func([]tm.AccessResult)) {
	f.eng.Schedule(1, func() {
		out := make([]tm.AccessResult, len(lanes))
		for i, la := range lanes {
			out[i] = tm.AccessResult{Lane: la.Lane, Value: f.mem.words[la.Addr]}
			if n, ok := f.abortOn[la.Addr]; ok && n > 0 {
				f.abortOn[la.Addr] = n - 1
				out[i].Abort = true
				out[i].Cause = tm.CauseWAR
			}
		}
		done(out)
	})
}

func (f *fakeProto) Commit(w *tm.WarpTx, commitMask, abortMask isa.LaneMask, resume func(tm.CommitOutcome)) {
	f.eng.Schedule(1, func() {
		for _, e := range w.Log.Writes {
			if commitMask.Bit(e.Lane) {
				f.mem.words[e.Addr] = e.Value
			}
		}
		f.commits++
		resume(tm.CommitOutcome{})
	})
}

type coreHarness struct {
	eng   *sim.Engine
	mem   *fakeMem
	proto *fakeProto
	core  *Core
}

func newCoreHarness(progs []*isa.Program, cfgEdit func(*Config)) *coreHarness {
	eng := sim.NewEngine()
	fm := newFakeMem(eng)
	fp := &fakeProto{eng: eng, mem: fm, eager: true, abortOn: map[uint64]int{}}
	cfg := DefaultConfig()
	cfg.WarpsPerCore = 4
	cfg.BackoffBase = 4
	cfg.BackoffCap = 16
	if cfgEdit != nil {
		cfgEdit(&cfg)
	}
	i := 0
	dispatch := func(core, slot int) *isa.Program {
		if i >= len(progs) {
			return nil
		}
		p := progs[i]
		i++
		return p
	}
	h := &coreHarness{eng: eng, mem: fm, proto: fp}
	h.core = NewCore(0, eng, cfg, fp, fm, sim.NewRNG(1), dispatch)
	return h
}

func (h *coreHarness) run(t *testing.T) {
	t.Helper()
	h.core.Start()
	h.eng.Run(5_000_000)
	if !h.core.AllDone() {
		t.Fatalf("core did not finish: %v", h.core.StuckWarps())
	}
}

func TestRegisterAndComputeOps(t *testing.T) {
	addr := isa.UniformAddr(0x100)
	p := isa.NewBuilder().
		MovImm(1, isa.UniformImm(5)).
		AddImmScalar(2, 1, 3).
		Compute(10).
		Store(2, addr).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0x100] != 8 {
		t.Fatalf("mem = %d, want 8", h.mem.words[0x100])
	}
}

func TestNonTxLoadStoreRoundTrip(t *testing.T) {
	a1, a2 := isa.UniformAddr(0x200), isa.UniformAddr(0x300)
	p := isa.NewBuilder().
		Load(1, a1).
		AddImmScalar(1, 1, 1).
		Store(1, a2).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.mem.words[0x200] = 41
	h.run(t)
	if h.mem.words[0x300] != 42 {
		t.Fatalf("mem = %d", h.mem.words[0x300])
	}
}

func TestPerLaneOperands(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	imms := make([]int64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x1000 + 8*i)
		imms[i] = int64(i)
	}
	p := isa.NewBuilder().StoreImm(imms, addrs).MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	for i := range addrs {
		if h.mem.words[addrs[i]] != uint64(i) {
			t.Fatalf("lane %d wrote %d", i, h.mem.words[addrs[i]])
		}
	}
}

func TestTxCommitAppliesWrites(t *testing.T) {
	addr := isa.UniformAddr(0x400)
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addr).
		AddImmScalar(1, 1, 1).
		Store(1, addr).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	// 32 lanes all read 0 and wrote 1 (same addr -> intra-warp conflicts
	// make lanes retry; final value must reflect 32 serialized increments).
	if h.mem.words[0x400] != 32 {
		t.Fatalf("mem = %d, want 32 (intra-warp serialization)", h.mem.words[0x400])
	}
	if h.core.Stats.Commits != 32 {
		t.Fatalf("commits = %d", h.core.Stats.Commits)
	}
	if h.core.Stats.AbortsByCause["intra-warp"] == 0 {
		t.Fatal("expected intra-warp aborts")
	}
}

func TestTxAbortRetries(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x2000 + 8*i)
	}
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addrs).
		AddImmScalar(1, 1, 7).
		Store(1, addrs).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.proto.abortOn[0x2000] = 2 // lane 0 aborts twice, then succeeds
	h.run(t)
	if h.core.Stats.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2", h.core.Stats.Aborts)
	}
	if h.core.Stats.Commits != 32 {
		t.Fatalf("commits = %d, want 32", h.core.Stats.Commits)
	}
	if h.mem.words[0x2000] != 7 {
		t.Fatalf("lane 0 value = %d", h.mem.words[0x2000])
	}
	// Three protocol attempts for the warp: initial + 2 retries.
	if h.proto.begins != 3 {
		t.Fatalf("begins = %d, want 3", h.proto.begins)
	}
	if h.core.Stats.TxWaitCycles == 0 {
		t.Fatal("retries should accrue backoff wait cycles")
	}
}

func TestConcurrencyThrottleQueues(t *testing.T) {
	addr := func(base int) []uint64 {
		a := make([]uint64, isa.WarpWidth)
		for i := range a {
			a[i] = uint64(base + 8*i)
		}
		return a
	}
	mk := func(base int) *isa.Program {
		return isa.NewBuilder().
			TxBegin().
			Load(1, addr(base)).
			Store(1, addr(base)).
			TxCommit().
			MustBuild()
	}
	progs := []*isa.Program{mk(0x1000), mk(0x3000), mk(0x5000)}
	h := newCoreHarness(progs, func(c *Config) { c.MaxTxWarps = 1 })
	h.run(t)
	if h.core.Stats.Commits != 96 {
		t.Fatalf("commits = %d", h.core.Stats.Commits)
	}
	if h.core.Stats.TxWaitCycles == 0 {
		t.Fatal("throttle should force tx slot waiting")
	}
}

func TestCritSectionMutualExclusion(t *testing.T) {
	// All 32 lanes increment one shared counter under the same lock: the
	// result must be exactly 32.
	shared := isa.UniformAddr(0x800)
	locks := make([][]uint64, isa.WarpWidth)
	for i := range locks {
		locks[i] = []uint64{0x900}
	}
	body := isa.NewBuilder().
		Load(1, shared).
		AddImmScalar(1, 1, 1).
		Store(1, shared).
		Ops()
	p := isa.NewBuilder().CritSection(locks, body).MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0x800] != 32 {
		t.Fatalf("counter = %d, want 32", h.mem.words[0x800])
	}
	if h.mem.words[0x900] != 0 {
		t.Fatal("lock not released")
	}
}

func TestCritSectionTwoLockOrdering(t *testing.T) {
	// Lanes transfer between pairs of cells with two locks each; totals are
	// conserved and no deadlock occurs despite overlapping pairs.
	src := make([]uint64, isa.WarpWidth)
	dst := make([]uint64, isa.WarpWidth)
	locksrc := make([]uint64, isa.WarpWidth)
	lockdst := make([]uint64, isa.WarpWidth)
	locks := make([][]uint64, isa.WarpWidth)
	for i := 0; i < isa.WarpWidth; i++ {
		a := i % 8
		b := (i + 1) % 8
		src[i] = uint64(0xA00 + 8*a)
		dst[i] = uint64(0xA00 + 8*b)
		locksrc[i] = uint64(0xB00 + 8*a)
		lockdst[i] = uint64(0xB00 + 8*b)
		if locksrc[i] < lockdst[i] {
			locks[i] = []uint64{locksrc[i], lockdst[i]}
		} else {
			locks[i] = []uint64{lockdst[i], locksrc[i]}
		}
	}
	body := isa.NewBuilder().
		Load(1, src).
		AddImmScalar(1, 1, -1).
		Store(1, src).
		Load(2, dst).
		AddImmScalar(2, 2, 1).
		Store(2, dst).
		Ops()
	p := isa.NewBuilder().CritSection(locks, body).MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	for c := 0; c < 8; c++ {
		h.mem.words[uint64(0xA00+8*c)] = 100
	}
	h.run(t)
	var total uint64
	for c := 0; c < 8; c++ {
		total += h.mem.words[uint64(0xA00+8*c)]
	}
	if total != 800 {
		t.Fatalf("total = %d, want 800", total)
	}
}

func TestDispatcherFeedsMultiplePrograms(t *testing.T) {
	var progs []*isa.Program
	for i := 0; i < 10; i++ {
		base := 0x4000 + i*0x200
		addrs := make([]uint64, isa.WarpWidth)
		for l := range addrs {
			addrs[l] = uint64(base + 8*l)
		}
		progs = append(progs, isa.NewBuilder().StoreImm(isa.UniformImm(int64(i+1)), addrs).MustBuild())
	}
	h := newCoreHarness(progs, func(c *Config) { c.WarpsPerCore = 2 })
	h.run(t)
	for i := 0; i < 10; i++ {
		if h.mem.words[uint64(0x4000+i*0x200)] != uint64(i+1) {
			t.Fatalf("program %d not executed", i)
		}
	}
}

func TestLazyIntraWarpResolutionAtCommit(t *testing.T) {
	// With a lazy protocol, same-address lanes conflict only at the commit
	// point; winners commit, losers retry.
	addr := isa.UniformAddr(0xC00)
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addr).
		AddImmScalar(1, 1, 1).
		Store(1, addr).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.proto.eager = false
	h.run(t)
	if h.mem.words[0xC00] != 32 {
		t.Fatalf("counter = %d, want 32", h.mem.words[0xC00])
	}
	if h.core.Stats.AbortsByCause["intra-warp"] == 0 {
		t.Fatal("lazy resolution should record intra-warp aborts")
	}
}

func TestMaskedOpsSkipInactiveLanes(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0xD00 + 8*i)
	}
	var mask isa.LaneMask
	for i := 0; i < 8; i++ {
		mask = mask.Set(i)
	}
	p := isa.NewBuilder().
		StoreImmMasked(isa.UniformImm(9), addrs, mask).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	for i := 0; i < isa.WarpWidth; i++ {
		want := uint64(0)
		if i < 8 {
			want = 9
		}
		if h.mem.words[addrs[i]] != want {
			t.Fatalf("lane %d = %d, want %d", i, h.mem.words[addrs[i]], want)
		}
	}
}

func TestGTOPrefersSameWarp(t *testing.T) {
	// Two warps of pure compute: the core should finish both; instruction
	// count equals total ops issued.
	p1 := isa.NewBuilder().Compute(1).Compute(1).Compute(1).MustBuild()
	p2 := isa.NewBuilder().Compute(1).Compute(1).Compute(1).MustBuild()
	h := newCoreHarness([]*isa.Program{p1, p2}, nil)
	h.run(t)
	if h.core.Stats.Instructions != 6 {
		t.Fatalf("instructions = %d, want 6", h.core.Stats.Instructions)
	}
}

func TestAtomicAddOp(t *testing.T) {
	// All 32 lanes atomically add 1 to the same counter; each must observe a
	// distinct old value and the final count must be 32.
	p := isa.NewBuilder().
		AtomicAdd(1, isa.UniformAddr(0xF00), isa.UniformImm(1)).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0xF00] != 32 {
		t.Fatalf("counter = %d, want 32", h.mem.words[0xF00])
	}
	if h.mem.atomicsServed != 32 {
		t.Fatalf("atomics served = %d", h.mem.atomicsServed)
	}
}

func TestAtomicAddMasked(t *testing.T) {
	var mask isa.LaneMask
	for i := 0; i < 5; i++ {
		mask = mask.Set(i)
	}
	p := isa.NewBuilder().
		AtomicAddMasked(1, isa.UniformAddr(0xF40), isa.UniformImm(2), mask).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0xF40] != 10 {
		t.Fatalf("counter = %d, want 10", h.mem.words[0xF40])
	}
}

func TestReadForwardingAvoidsProtocolAccess(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0xE00 + 8*i)
	}
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addrs).
		Load(2, addrs). // second read: forwarded from the log
		Store(2, addrs).
		Load(3, addrs). // read own write: forwarded
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	// Only two protocol round trips should have happened per lane group
	// (first load + store); forwarded reads are local.
	if h.core.Stats.Commits != 32 {
		t.Fatalf("commits = %d", h.core.Stats.Commits)
	}
}
