package simt

import (
	"sort"

	"getm/internal/isa"
)

// Critical-section execution for the fine-grained-lock baselines.
//
// A CritSection op carries, per lane, the list of lock words the lane must
// hold while running the body. The warp loops (as the Fig 1 idiom does in
// lockstep SIMT code): every not-yet-done lane attempts to CAS-acquire its
// locks in ascending address order; lanes that acquire everything execute
// the body together under a lane mask; locks are then released with plain
// stores, and the remaining lanes retry.

// execCritSection starts the state machine.
func (c *Core) execCritSection(w *Warp, op *isa.Op) {
	mask := w.effMask(op)
	w.top().pc++
	if mask == 0 {
		return
	}
	w.cs = &csState{op: op, remaining: mask}
	w.state = wBlocked
	c.csRound(w)
}

// sortedLocks returns the lane's lock list in ascending order (deadlock-free
// acquisition order).
func sortedLocks(locks []uint64) []uint64 {
	if sort.SliceIsSorted(locks, func(i, j int) bool { return locks[i] < locks[j] }) {
		return locks
	}
	s := append([]uint64(nil), locks...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// csRound runs one acquire-execute-release iteration for the remaining lanes.
func (c *Core) csRound(w *Warp) {
	c.csAcquireLevel(w, w.cs.remaining, 0, 0)
}

// csAcquireLevel CASes the level-th lock of every contender; winners advance
// to the next level, losers release what they hold and wait for the next
// round. Lanes whose lock lists are exhausted become holders.
func (c *Core) csAcquireLevel(w *Warp, contenders isa.LaneMask, level int, holders isa.LaneMask) {
	cs := w.cs
	var needs []int
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !contenders.Bit(lane) {
			continue
		}
		if len(cs.op.Locks[lane]) <= level {
			holders = holders.Set(lane)
		} else {
			needs = append(needs, lane)
		}
	}
	if len(needs) == 0 {
		c.csBody(w, holders)
		return
	}

	outstanding := len(needs)
	var winners, losers isa.LaneMask
	for _, lane := range needs {
		lane := lane
		addr := sortedLocks(cs.op.Locks[lane])[level]
		c.memsys.AtomicCAS(c.ID, addr, 0, uint64(w.gwid)+1, func(_ uint64, ok bool) {
			if ok {
				cs.held[lane]++
				winners = winners.Set(lane)
			} else {
				losers = losers.Set(lane)
			}
			outstanding--
			if outstanding == 0 {
				c.csReleaseLocks(w, losers, func() {
					c.csAcquireLevel(w, winners, level+1, holders)
				})
			}
		})
	}
}

// csReleaseLocks releases every lock held by the given lanes (plain stores,
// as in the Fig 1 code) and resets their counts.
func (c *Core) csReleaseLocks(w *Warp, lanes isa.LaneMask, done func()) {
	cs := w.cs
	var addrs, vals []uint64
	for lane := 0; lane < isa.WarpWidth; lane++ {
		if !lanes.Bit(lane) {
			continue
		}
		locks := sortedLocks(cs.op.Locks[lane])
		for i := 0; i < cs.held[lane]; i++ {
			addrs = append(addrs, locks[i])
			vals = append(vals, 0)
		}
		cs.held[lane] = 0
	}
	if len(addrs) == 0 {
		done()
		return
	}
	c.memsys.Access(c.ID, true, addrs, vals, func([]uint64) { done() })
}

// csBody runs the critical-section body for the lanes holding their locks.
func (c *Core) csBody(w *Warp, holders isa.LaneMask) {
	cs := w.cs
	if holders == 0 {
		// Everyone lost an acquisition race; spin and retry.
		c.eng.Schedule(csRetryDelay, func() { c.csRound(w) })
		return
	}
	w.frames = append(w.frames, frame{
		ops:  cs.op.Body,
		mask: holders,
		onDone: func(w *Warp) {
			// Memory fence: the body's fire-and-forget stores must be
			// globally visible before the locks are released (the
			// __threadfence a real GPU lock implementation issues here).
			w.fence(func() {
				c.csReleaseLocks(w, holders, func() {
					cs.remaining &^= holders
					if cs.remaining != 0 {
						c.eng.Schedule(csRetryDelay, func() { c.csRound(w) })
						return
					}
					w.cs = nil
					c.wake(w)
				})
			})
		},
	})
	w.state = wReady
	c.scheduleIssue()
}
