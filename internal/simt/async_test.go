package simt

import (
	"testing"

	"getm/internal/isa"
	"getm/internal/tm"
)

func TestAsyncAbortMarksLanesForRetry(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x3000 + 8*i)
	}
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addrs).
		Compute(50). // window during which the async abort arrives
		Store(1, addrs).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	// Deliver an async abort for lanes 0-3 while the warp computes.
	h.core.Start()
	h.eng.Schedule(30, func() {
		h.core.AsyncAbort(tm.AbortNotice{
			GWID:  0,
			Lanes: isa.LaneMask(0b1111),
			Cause: tm.CauseEarlyAbort,
		})
	})
	h.eng.Run(5_000_000)
	if !h.core.AllDone() {
		t.Fatalf("stuck: %v", h.core.StuckWarps())
	}
	if h.core.Stats.AbortsByCause["early-abort"] != 4 {
		t.Fatalf("early aborts = %d, want 4", h.core.Stats.AbortsByCause["early-abort"])
	}
	// All 32 lanes must still commit (aborted ones after retry).
	if h.core.Stats.Commits != 32 {
		t.Fatalf("commits = %d, want 32", h.core.Stats.Commits)
	}
}

func TestAsyncAbortWholeWarpJumpsToCommit(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x4000 + 8*i)
	}
	p := isa.NewBuilder().
		TxBegin().
		Load(1, addrs).
		Compute(100).
		Store(1, addrs).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.core.Start()
	h.eng.Schedule(30, func() {
		h.core.AsyncAbort(tm.AbortNotice{GWID: 0, Lanes: isa.FullMask, Cause: tm.CauseEarlyAbort})
	})
	h.eng.Run(5_000_000)
	if !h.core.AllDone() {
		t.Fatalf("stuck: %v", h.core.StuckWarps())
	}
	if h.core.Stats.Commits != 32 {
		t.Fatalf("commits = %d", h.core.Stats.Commits)
	}
	if h.core.Stats.Aborts < 32 {
		t.Fatalf("aborts = %d, want >= 32 (whole warp early-aborted once)", h.core.Stats.Aborts)
	}
}

func TestAsyncAbortIgnoredDuringCommit(t *testing.T) {
	addrs := make([]uint64, isa.WarpWidth)
	for i := range addrs {
		addrs[i] = uint64(0x5000 + 8*i)
	}
	p := isa.NewBuilder().
		TxBegin().
		Store(1, addrs).
		TxCommit().
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.core.Start()
	// Run to completion, then deliver a stale notice: must be a no-op.
	h.eng.Run(5_000_000)
	h.core.AsyncAbort(tm.AbortNotice{GWID: 0, Lanes: isa.FullMask, Cause: tm.CauseEarlyAbort})
	if h.core.Stats.AbortsByCause["early-abort"] != 0 {
		t.Fatal("stale notice aborted lanes")
	}
	// Out-of-range gwid must be ignored too.
	h.core.AsyncAbort(tm.AbortNotice{GWID: 999, Lanes: isa.FullMask})
}

func TestNonBlockingStoreOverlapsCompute(t *testing.T) {
	// A store followed by compute: with fire-and-forget stores the total
	// time is max(store, compute)-ish, not the sum. We just verify the
	// store landed and no fence was needed.
	addr := isa.UniformAddr(0x6000)
	p := isa.NewBuilder().
		StoreImm(isa.UniformImm(5), addr).
		Compute(100).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0x6000] != 5 {
		t.Fatal("store lost")
	}
}

func TestLoadAfterStoreScoreboard(t *testing.T) {
	// RAW through memory: the load of a word with an outstanding store must
	// return the stored value, never the stale one.
	addr := isa.UniformAddr(0x7000)
	p := isa.NewBuilder().
		StoreImm(isa.UniformImm(7), addr).
		Load(1, addr).
		Store(1, isa.UniformAddr(0x7100)).
		MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0x7100] != 7 {
		t.Fatalf("load bypassed outstanding store: got %d", h.mem.words[0x7100])
	}
}

func TestCritSectionFencesBodyStores(t *testing.T) {
	// Body: store to data; after release, another lane's CS body reads the
	// data — the fence guarantees it sees the committed value. With all 32
	// lanes using one lock and read-modify-write, the counter is exact.
	shared := isa.UniformAddr(0x8000)
	locks := make([][]uint64, isa.WarpWidth)
	for i := range locks {
		locks[i] = []uint64{0x8100}
	}
	body := isa.NewBuilder().
		Load(1, shared).
		AddImmScalar(1, 1, 1).
		Store(1, shared). // fire-and-forget; fence must drain before unlock
		Ops()
	p := isa.NewBuilder().CritSection(locks, body).MustBuild()
	h := newCoreHarness([]*isa.Program{p}, nil)
	h.run(t)
	if h.mem.words[0x8000] != 32 {
		t.Fatalf("counter = %d, want 32 (body store escaped the lock)", h.mem.words[0x8000])
	}
}
