package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildATM models the bank-transfer benchmark (Fig 1): each thread moves one
// unit between two accounts. Most pairs are drawn from a large account pool
// (the paper uses 1M accounts); a small fraction touch a hot subset, which
// reproduces ATM's moderate abort rate.

// ATM operand slots.
const (
	atmSrc = iota
	atmDst
	atmSrcLock
	atmDstLock
	atmAddrSlots
)

func buildATM(name string, v Variant, p Params) *gpu.Kernel {
	threads := padWarps(p.scaled(7680))
	accounts := p.scaled(131072)
	const hotAccounts = 256
	const initialBalance = 100

	r := newRegion()
	acctBase := r.array(accounts)
	lockBase := r.array(accounts)

	rng := rngFor(p, 2)
	lanes := make([]laneOperands, threads)
	for t := 0; t < threads; t++ {
		pick := func() int {
			if rng.Float64() < 0.03 {
				return rng.Intn(hotAccounts)
			}
			return rng.Intn(accounts)
		}
		src := pick()
		dst := pick()
		for dst == src {
			dst = pick()
		}
		addrs := make([]uint64, atmAddrSlots)
		addrs[atmSrc] = acctBase + uint64(src)*mem.WordBytes
		addrs[atmDst] = acctBase + uint64(dst)*mem.WordBytes
		addrs[atmSrcLock] = lockBase + uint64(src)*mem.WordBytes
		addrs[atmDstLock] = lockBase + uint64(dst)*mem.WordBytes
		lanes[t] = laneOperands{addrs: addrs}
	}

	var progs []*isa.Program
	for w := 0; w < threads/isa.WarpWidth; w++ {
		ls := lanes[w*isa.WarpWidth : (w+1)*isa.WarpWidth]
		transfer := func(nb *isa.Builder) *isa.Builder {
			return nb.
				Load(1, perLane(ls, atmSrc)).
				AddImmScalar(2, 1, -1).
				Store(2, perLane(ls, atmSrc)).
				Load(3, perLane(ls, atmDst)).
				AddImmScalar(4, 3, 1).
				Store(4, perLane(ls, atmDst))
		}
		b := isa.NewBuilder().Compute(20)
		if v == TM {
			b.TxBegin()
			transfer(b)
			b.TxCommit()
		} else {
			locks := make([][]uint64, isa.WarpWidth)
			for i := range ls {
				locks[i] = sortedPair(ls[i].addrs[atmSrcLock], ls[i].addrs[atmDstLock])
			}
			b.CritSection(locks, transfer(isa.NewBuilder()).Ops())
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Init: func(img *mem.Image) {
			for a := 0; a < accounts; a++ {
				img.Write(acctBase+uint64(a)*mem.WordBytes, initialBalance)
			}
		},
		Verify: func(img *mem.Image) error {
			var total uint64
			for a := 0; a < accounts; a++ {
				total += img.Read(acctBase + uint64(a)*mem.WordBytes)
			}
			want := uint64(accounts) * initialBalance
			if total != want {
				return fmt.Errorf("balance sum = %d, want %d (atomicity violated)", total, want)
			}
			return nil
		},
	}
}
