package workloads

import (
	"strings"
	"testing"

	"getm/internal/isa"
	"getm/internal/mem"
)

func TestAllBenchmarksBuildBothVariants(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	for _, name := range Names() {
		for _, v := range []Variant{TM, FGLock} {
			k, err := Build(name, v, p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(k.Programs) == 0 {
				t.Fatalf("%s: no programs", name)
			}
			for i, prog := range k.Programs {
				if err := prog.Validate(); err != nil {
					t.Fatalf("%s program %d invalid: %v", name, i, err)
				}
			}
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Build("nope", TM, DefaultParams()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestTMVariantHasTransactions(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	for _, name := range Names() {
		k, _ := Build(name, TM, p)
		found := false
		for _, prog := range k.Programs {
			if len(prog.TxBounds()) > 0 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s TM variant has no transactions", name)
		}
	}
}

func TestLockVariantHasNoTransactions(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	for _, name := range Names() {
		k, _ := Build(name, FGLock, p)
		for _, prog := range k.Programs {
			for _, op := range prog.Ops {
				if op.Kind == isa.TxBegin || op.Kind == isa.TxCommit {
					t.Fatalf("%s lock variant contains %v", name, op.Kind)
				}
			}
		}
	}
}

func TestLockListsSorted(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	for _, name := range Names() {
		k, _ := Build(name, FGLock, p)
		for _, prog := range k.Programs {
			for _, op := range prog.Ops {
				if op.Kind != isa.CritSection {
					continue
				}
				for lane, locks := range op.Locks {
					for i := 1; i < len(locks); i++ {
						if locks[i] < locks[i-1] {
							t.Fatalf("%s lane %d locks not ascending: %v", name, lane, locks)
						}
					}
				}
			}
		}
	}
}

// TestVerifiersAcceptSerialExecution runs every program with a serial
// reference executor (one lane at a time) and checks the verifier accepts
// the result — proving the verifiers encode what a correct (serializable)
// concurrent execution must produce.
func TestVerifiersAcceptSerialExecution(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	for _, name := range Names() {
		k, _ := Build(name, TM, p)
		img := mem.NewImage()
		if k.Init != nil {
			k.Init(img)
		}
		regs := make([][isa.NumRegs]uint64, isa.WarpWidth)
		var exec func(ops []isa.Op, mask isa.LaneMask)
		exec = func(ops []isa.Op, mask isa.LaneMask) {
			for _, op := range ops {
				m := op.EffMask(mask)
				for lane := 0; lane < isa.WarpWidth; lane++ {
					if !m.Bit(lane) {
						continue
					}
					switch op.Kind {
					case isa.Load:
						regs[lane][op.Dst] = img.Read(op.Addr[lane])
					case isa.Store:
						if op.UseImm {
							img.Write(op.Addr[lane], uint64(op.LaneImm(lane)))
						} else {
							img.Write(op.Addr[lane], regs[lane][op.Src])
						}
					case isa.MovImm:
						regs[lane][op.Dst] = uint64(op.LaneImm(lane))
					case isa.AddImm:
						regs[lane][op.Dst] = regs[lane][op.Src] + uint64(op.LaneImm(lane))
					case isa.CritSection:
						exec(op.Body, isa.LaneMask(1)<<uint(lane))
					}
				}
			}
		}
		for _, prog := range k.Programs {
			// Serial per-lane execution: lane order within warp, warp order
			// across programs — a trivially valid serialization.
			for lane := 0; lane < isa.WarpWidth; lane++ {
				laneMask := isa.LaneMask(1) << uint(lane)
				exec(prog.Ops, laneMask)
			}
		}
		if err := k.Verify(img); err != nil {
			t.Fatalf("%s verifier rejected serial execution: %v", name, err)
		}
	}
}

func TestVerifiersCatchCorruption(t *testing.T) {
	p := DefaultParams()
	p.Scale = 0.05
	// ATM: break conservation.
	k, _ := Build("atm", TM, p)
	img := mem.NewImage()
	k.Init(img)
	img.Write(0x10000+128, 1) // clobber a balance
	if err := k.Verify(img); err == nil {
		t.Fatal("atm verifier accepted corrupted balances")
	}
	// HT: empty table with zero inserts reachable.
	k2, _ := Build("ht-h", TM, p)
	img2 := mem.NewImage()
	if err := k2.Verify(img2); err == nil || !strings.Contains(err.Error(), "reachable") {
		t.Fatalf("ht verifier accepted empty table: %v", err)
	}
}

func TestScaleAffectsSize(t *testing.T) {
	small, _ := Build("ht-h", TM, Params{Scale: 0.1, Seed: 1})
	large, _ := Build("ht-h", TM, Params{Scale: 1, Seed: 1})
	if len(small.Programs) >= len(large.Programs) {
		t.Fatal("scale did not change program count")
	}
}

func TestStridePermute(t *testing.T) {
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	out := stridePermute(xs)
	seen := make([]bool, 100)
	for _, v := range out {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	// Adjacent outputs should not be adjacent inputs.
	adjacent := 0
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1]+1 {
			adjacent++
		}
	}
	if adjacent > 5 {
		t.Fatalf("%d adjacent pairs survived permutation", adjacent)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Build("atm", TM, DefaultParams())
	b, _ := Build("atm", TM, DefaultParams())
	if len(a.Programs) != len(b.Programs) {
		t.Fatal("program counts differ")
	}
	for i := range a.Programs {
		if len(a.Programs[i].Ops) != len(b.Programs[i].Ops) {
			t.Fatalf("program %d op counts differ", i)
		}
		for j := range a.Programs[i].Ops {
			oa, ob := a.Programs[i].Ops[j], b.Programs[i].Ops[j]
			if oa.Kind != ob.Kind {
				t.Fatalf("op kind mismatch at %d/%d", i, j)
			}
			for l := 0; l < len(oa.Addr); l++ {
				if oa.Addr[l] != ob.Addr[l] {
					t.Fatalf("operand mismatch at %d/%d lane %d", i, j, l)
				}
			}
		}
	}
}
