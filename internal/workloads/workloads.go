// Package workloads generates the TM benchmarks of the paper's Table III —
// hash-table population at three contention levels (HT-H/M/L), bank
// transfers (ATM), cloth physics (CL and the tx-optimized CLto), Barnes-Hut
// octree build (BH), CudaCuts image segmentation (CC), and Apriori data
// mining (AP) — as synthetic kernels with the same access patterns,
// contention structure, and transactional/non-transactional mix.
//
// Each benchmark builds in two variants: transactions (txbegin/txcommit
// regions) and hand-tuned fine-grained locks (CritSection ops acquiring the
// same data's lock words in ascending order). Every kernel carries a
// semantic verifier (chain integrity, balance conservation, counter sums)
// that the gpu runner checks after execution — an end-to-end atomicity test.
//
// Sizes are scaled down from the paper (whose grids run millions of cycles
// in GPGPU-Sim) by a factor that preserves the insert:table-size and
// thread:data ratios that determine contention; Params.Scale adjusts them
// further.
package workloads

import (
	"fmt"
	"sort"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
	"getm/internal/sim"
)

// Variant selects the synchronization flavor of a kernel.
type Variant int

// Kernel variants.
const (
	// TM builds the transactional version.
	TM Variant = iota
	// FGLock builds the fine-grained-lock version.
	FGLock
)

// Params tune workload generation.
type Params struct {
	// Scale multiplies thread and data counts (1.0 = this package's
	// defaults; see the package comment).
	Scale float64
	// Seed drives operand generation.
	Seed uint64
}

// DefaultParams returns Scale 1 with a fixed seed.
func DefaultParams() Params { return Params{Scale: 1, Seed: 42} }

func (p Params) scaled(n int) int {
	if p.Scale <= 0 {
		return n
	}
	v := int(float64(n) * p.Scale)
	if v < isa.WarpWidth {
		v = isa.WarpWidth
	}
	return v
}

// Names lists the benchmarks in the paper's order.
func Names() []string {
	return []string{"ht-h", "ht-m", "ht-l", "atm", "cl", "clto", "bh", "cc", "ap"}
}

// Build constructs the named benchmark.
func Build(name string, v Variant, p Params) (*gpu.Kernel, error) {
	switch name {
	case "ht-h":
		return buildHashTable(name, v, p, 1), nil
	case "ht-m":
		return buildHashTable(name, v, p, 10), nil
	case "ht-l":
		return buildHashTable(name, v, p, 100), nil
	case "atm":
		return buildATM(name, v, p), nil
	case "cl":
		return buildCloth(name, v, p, false), nil
	case "clto":
		return buildCloth(name, v, p, true), nil
	case "bh":
		return buildBarnesHut(name, v, p), nil
	case "cc":
		return buildCudaCuts(name, v, p), nil
	case "ap":
		return buildApriori(name, v, p), nil
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// MustBuild panics on unknown names (harness-internal use).
func MustBuild(name string, v Variant, p Params) *gpu.Kernel {
	k, err := Build(name, v, p)
	if err != nil {
		panic(err)
	}
	return k
}

// --- generation helpers ---

// region is a bump allocator carving disjoint address regions.
type region struct{ next uint64 }

func newRegion() *region { return &region{next: 0x10000} }

// array reserves n words aligned to an LLC line and returns the base.
func (r *region) array(n int) uint64 {
	const line = 128
	r.next = (r.next + line - 1) &^ uint64(line-1)
	base := r.next
	r.next += uint64(n) * mem.WordBytes
	return base
}

// laneOperands is one thread's operand stream; all threads of a kernel share
// the same op skeleton. Operands live in indexed slots (each workload defines
// its own slot constants, resolved at program-build time), so gathering a
// warp's operands is slice indexing rather than per-lookup map hashing.
type laneOperands struct {
	addrs []uint64 // indexed by workload-specific address slots
	imms  []int64  // indexed by workload-specific immediate slots
	depth int      // BH: path depth
}

// padWarps rounds a thread count up to whole warps.
func padWarps(threads int) int {
	w := (threads + isa.WarpWidth - 1) / isa.WarpWidth
	return w * isa.WarpWidth
}

// perLane gathers an address operand slot across a warp's lanes.
func perLane(lanes []laneOperands, slot int) []uint64 {
	out := make([]uint64, isa.WarpWidth)
	for i := range lanes {
		out[i] = lanes[i].addrs[slot]
	}
	return out
}

// perLaneImm gathers an immediate operand slot across lanes.
func perLaneImm(lanes []laneOperands, slot int) []int64 {
	out := make([]int64, isa.WarpWidth)
	for i := range lanes {
		out[i] = lanes[i].imms[slot]
	}
	return out
}

// sortedPair returns (lo, hi) of two lock addresses.
func sortedPair(a, b uint64) []uint64 {
	s := []uint64{a, b}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// rngFor builds the workload RNG.
func rngFor(p Params, salt uint64) *sim.RNG {
	return sim.NewRNG(p.Seed).Fork(salt)
}

// stridePermute reorders xs by a fixed stride coprime to its length, so that
// originally adjacent elements land in different warps (the interleaving a
// hand-tuned GPU kernel would apply to spread conflicting work).
func stridePermute[T any](xs []T) []T {
	n := len(xs)
	if n < 2 {
		return xs
	}
	stride := 97
	for gcd(stride, n) != 1 {
		stride++
	}
	out := make([]T, 0, n)
	idx := 0
	for i := 0; i < n; i++ {
		out = append(out, xs[idx])
		idx = (idx + stride) % n
	}
	return out
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
