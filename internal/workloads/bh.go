package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildBarnesHut models octree construction (the paper's 30K-body BH): each
// thread walks a root-to-leaf path of internal nodes (reads — heavily shared
// near the root) and inserts its body at the leaf by bumping the leaf's
// occupancy counter (read-modify-write). Leaf collisions produce the
// benchmark's conflicts; path depth varies per body, exercising divergent
// lane masks.

// BH operand slots: level k's node sits at bhLevel0+k.
const (
	bhLeaf = iota
	bhLeafLock
	bhLevel0
)

func buildBarnesHut(name string, v Variant, p Params) *gpu.Kernel {
	bodies := padWarps(p.scaled(7680))
	const maxDepth = 5 // internal levels 0..maxDepth-1, then the leaf

	// Level k has min(4^k, 1024) internal nodes; leaves form a larger pool.
	levelSize := make([]int, maxDepth)
	for k := range levelSize {
		s := 1
		for i := 0; i < k; i++ {
			s *= 4
		}
		if s > 1024 {
			s = 1024
		}
		levelSize[k] = s
	}
	leaves := bodies / 4

	// Octree nodes are multi-word structures (children pointers, center of
	// mass, bounds); one node spans at least a 32-byte conflict granule, so
	// leaves are laid out at a 4-word stride.
	const nodeStride = 4
	r := newRegion()
	levelBase := make([]uint64, maxDepth)
	for k, s := range levelSize {
		levelBase[k] = r.array(s * nodeStride)
	}
	leafBase := r.array(leaves * nodeStride)
	leafLockBase := r.array(leaves)

	rng := rngFor(p, 4)
	lanes := make([]laneOperands, bodies)
	for t := 0; t < bodies; t++ {
		depth := 2 + rng.Intn(maxDepth-1) // 2..maxDepth internal levels read
		leaf := rng.Intn(leaves)
		addrs := make([]uint64, bhLevel0+maxDepth)
		addrs[bhLeaf] = leafBase + uint64(leaf*nodeStride)*mem.WordBytes
		addrs[bhLeafLock] = leafLockBase + uint64(leaf)*mem.WordBytes
		for k := 0; k < maxDepth; k++ {
			idx := 0
			if k < depth {
				idx = int(rng.Uint64() % uint64(levelSize[k]))
			}
			addrs[bhLevel0+k] = levelBase[k] + uint64(idx*nodeStride)*mem.WordBytes
		}
		lanes[t] = laneOperands{addrs: addrs, depth: depth}
	}

	var progs []*isa.Program
	for w := 0; w < bodies/isa.WarpWidth; w++ {
		ls := lanes[w*isa.WarpWidth : (w+1)*isa.WarpWidth]
		levelMask := func(k int) isa.LaneMask {
			var m isa.LaneMask
			for i := range ls {
				if k < ls[i].depth {
					m = m.Set(i)
				}
			}
			return m
		}
		walk := func(nb *isa.Builder) *isa.Builder {
			for k := 0; k < maxDepth; k++ {
				if m := levelMask(k); m != 0 {
					nb.LoadMasked(1, perLane(ls, bhLevel0+k), m)
				}
			}
			return nb
		}
		bump := func(nb *isa.Builder) *isa.Builder {
			return nb.
				Load(2, perLane(ls, bhLeaf)).
				AddImmScalar(2, 2, 1).
				Store(2, perLane(ls, bhLeaf))
		}
		b := isa.NewBuilder().Compute(35)
		if v == TM {
			// The whole insert (path reads + leaf bump) is one transaction.
			b.TxBegin()
			walk(b)
			bump(b)
			b.TxCommit()
		} else {
			// The lock version reads the path unprotected and locks only the
			// leaf, as the hand-tuned CUDA code does.
			walk(b)
			locks := make([][]uint64, isa.WarpWidth)
			for i := range ls {
				locks[i] = []uint64{ls[i].addrs[bhLeafLock]}
			}
			b.CritSection(locks, bump(isa.NewBuilder()).Ops())
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Verify: func(img *mem.Image) error {
			var total uint64
			for l := 0; l < leaves; l++ {
				total += img.Read(leafBase + uint64(l*nodeStride)*mem.WordBytes)
			}
			if total != uint64(bodies) {
				return fmt.Errorf("leaf occupancy sum = %d, want %d bodies", total, bodies)
			}
			return nil
		},
	}
}
