package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildHashTable models the HT benchmarks: every thread inserts one node at
// the head of a hashed bucket chain. bucketFactor scales the table size
// relative to the insert count — 1 reproduces HT-H (the paper's ~8K inserts
// into an 8K-entry table), 10 HT-M, 100 HT-L. Contention comes from bucket
// collisions plus conflict-granularity false sharing (4 buckets per 32-byte
// granule), exactly the effect the paper's Fig 14 granularity sweep studies.
//
// Node layout: node i occupies two words at nodeBase+16*i — [next, payload].
// A bucket word holds the head node address (0 = empty).

// HT operand slots.
const (
	htBucket = iota
	htNext
	htPayload
	htLock
	htAddrSlots
)

const (
	htImmNode = iota
	htImmKey
	htImmSlots
)

func buildHashTable(name string, v Variant, p Params, bucketFactor float64) *gpu.Kernel {
	inserts := padWarps(p.scaled(7680))
	buckets := int(float64(inserts) * bucketFactor)
	if buckets < 8 {
		buckets = 8
	}

	r := newRegion()
	bucketBase := r.array(buckets)
	nodeBase := r.array(2 * inserts)
	lockBase := r.array(buckets)

	rng := rngFor(p, 1)
	lanes := make([]laneOperands, inserts)
	for t := 0; t < inserts; t++ {
		key := rng.Uint64()
		b := int(key % uint64(buckets))
		addrs := make([]uint64, htAddrSlots)
		addrs[htBucket] = bucketBase + uint64(b)*mem.WordBytes
		addrs[htNext] = nodeBase + uint64(2*t)*mem.WordBytes
		addrs[htPayload] = nodeBase + uint64(2*t+1)*mem.WordBytes
		addrs[htLock] = lockBase + uint64(b)*mem.WordBytes
		imms := make([]int64, htImmSlots)
		imms[htImmNode] = int64(nodeBase + uint64(2*t)*mem.WordBytes)
		imms[htImmKey] = int64(key & 0x7FFFFFFF)
		lanes[t] = laneOperands{addrs: addrs, imms: imms}
	}

	var progs []*isa.Program
	for w := 0; w < inserts/isa.WarpWidth; w++ {
		ls := lanes[w*isa.WarpWidth : (w+1)*isa.WarpWidth]
		b := isa.NewBuilder().
			Compute(30). // hash computation
			StoreImm(perLaneImm(ls, htImmKey), perLane(ls, htPayload))
		insert := func(nb *isa.Builder) *isa.Builder {
			return nb.
				Load(1, perLane(ls, htBucket)).
				Store(1, perLane(ls, htNext)).
				StoreImm(perLaneImm(ls, htImmNode), perLane(ls, htBucket))
		}
		if v == TM {
			b.TxBegin()
			insert(b)
			b.TxCommit()
		} else {
			locks := make([][]uint64, isa.WarpWidth)
			for i := range ls {
				locks[i] = []uint64{ls[i].addrs[htLock]}
			}
			b.CritSection(locks, insert(isa.NewBuilder()).Ops())
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Verify: func(img *mem.Image) error {
			visited := map[uint64]bool{}
			total := 0
			for b := 0; b < buckets; b++ {
				cur := img.Read(bucketBase + uint64(b)*mem.WordBytes)
				for cur != 0 {
					if visited[cur] {
						return fmt.Errorf("node %#x linked twice (lost/duplicated insert)", cur)
					}
					visited[cur] = true
					total++
					if total > inserts {
						return fmt.Errorf("chain walk exceeded %d inserts (cycle?)", inserts)
					}
					cur = img.Read(cur) // next pointer at offset 0
				}
			}
			if total != inserts {
				return fmt.Errorf("reachable nodes = %d, want %d (lost inserts)", total, inserts)
			}
			return nil
		},
	}
}
