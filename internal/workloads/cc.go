package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildCudaCuts models the image-segmentation benchmark (push-relabel graph
// cuts on a 200×150 image): one thread per pixel performs push operations
// that move excess flow to grid neighbors. Transactions are short
// read-modify-write pairs over adjacent pixels, and — as the paper notes for
// CC — they account for a small fraction of the runtime, which is dominated
// by the non-transactional relabel sweeps (modeled as compute + private
// memory traffic).

// CC operand slots.
const (
	ccSelf = iota
	ccRight
	ccDown
	ccSelfLock
	ccRightLock
	ccDownLock
	ccPriv0
	ccPriv1
	ccAddrSlots
)

func buildCudaCuts(name string, v Variant, p Params) *gpu.Kernel {
	w, h := 96, 64
	if p.Scale != 1 {
		w = padDim(int(float64(w) * p.Scale))
		h = 64
	}
	pixels := padWarps(w * h)

	// Pixel state in push-relabel is a multi-word struct (excess, height,
	// four edge capacities), so pixels sit at a 4-word stride: neighboring
	// pixels do not share a 32-byte conflict granule, as in the real layout.
	const pixStride = 4
	r := newRegion()
	excessBase := r.array(pixels * pixStride)
	lockBase := r.array(pixels)
	privBase := r.array(4 * pixels)

	lanes := make([]laneOperands, pixels)
	for t := 0; t < pixels; t++ {
		x, y := t%w, t/w
		right := y*w + (x+1)%w
		down := ((y+1)%h)*w + x
		if down >= pixels {
			down = t
		}
		if right >= pixels {
			right = t
		}
		addrs := make([]uint64, ccAddrSlots)
		addrs[ccSelf] = excessBase + uint64(t*pixStride)*mem.WordBytes
		addrs[ccRight] = excessBase + uint64(right*pixStride)*mem.WordBytes
		addrs[ccDown] = excessBase + uint64(down*pixStride)*mem.WordBytes
		addrs[ccSelfLock] = lockBase + uint64(t)*mem.WordBytes
		addrs[ccRightLock] = lockBase + uint64(right)*mem.WordBytes
		addrs[ccDownLock] = lockBase + uint64(down)*mem.WordBytes
		addrs[ccPriv0] = privBase + uint64(4*t)*mem.WordBytes
		addrs[ccPriv1] = privBase + uint64(4*t+1)*mem.WordBytes
		lanes[t] = laneOperands{addrs: addrs}
	}

	// Push-relabel only pushes from *active* pixels (excess > 0 with an
	// admissible edge); at any instant that set is sparse. Each direction's
	// push runs for ~30% of the lanes, selected pseudo-randomly.
	rng := rngFor(p, 6)
	activeMask := func(ls []laneOperands) isa.LaneMask {
		var m isa.LaneMask
		for i := range ls {
			if rng.Float64() < 0.30 {
				m = m.Set(i)
			}
		}
		return m
	}

	var progs []*isa.Program
	for wi := 0; wi < pixels/isa.WarpWidth; wi++ {
		ls := lanes[wi*isa.WarpWidth : (wi+1)*isa.WarpWidth]
		push := func(nb *isa.Builder, to int) *isa.Builder {
			return nb.
				Load(1, perLane(ls, ccSelf)).
				AddImmScalar(1, 1, -1).
				Store(1, perLane(ls, ccSelf)).
				Load(2, perLane(ls, to)).
				AddImmScalar(2, 2, 1).
				Store(2, perLane(ls, to))
		}
		b := isa.NewBuilder().
			// Non-transactional relabel sweep: compute + private traffic.
			Compute(150).
			Load(3, perLane(ls, ccPriv0)).
			AddImmScalar(3, 3, 1).
			Store(3, perLane(ls, ccPriv0)).
			Compute(100).
			Store(3, perLane(ls, ccPriv1))
		for _, dir := range []struct{ to, lock int }{{ccRight, ccRightLock}, {ccDown, ccDownLock}} {
			m := activeMask(ls)
			if m == 0 {
				continue
			}
			if v == TM {
				b.TxBeginMasked(m)
				push(b, dir.to)
				b.TxCommit()
			} else {
				locks := make([][]uint64, isa.WarpWidth)
				for i := range ls {
					locks[i] = sortedPair(ls[i].addrs[ccSelfLock], ls[i].addrs[dir.lock])
				}
				b.CritSectionMasked(locks, push(isa.NewBuilder(), dir.to).Ops(), m)
			}
			b.Compute(80)
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Init: func(img *mem.Image) {
			for t := 0; t < pixels; t++ {
				img.Write(excessBase+uint64(t*pixStride)*mem.WordBytes, 16)
			}
		},
		Verify: func(img *mem.Image) error {
			var total uint64
			for t := 0; t < pixels; t++ {
				total += img.Read(excessBase + uint64(t*pixStride)*mem.WordBytes)
			}
			want := uint64(pixels) * 16
			if total != want {
				return fmt.Errorf("excess sum = %d, want %d", total, want)
			}
			return nil
		},
	}
}

// padDim rounds a grid dimension up to a multiple of 32.
func padDim(n int) int {
	if n < 32 {
		return 32
	}
	return ((n + 31) / 32) * 32
}
