package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// TortureConfig shapes the randomized stress workload.
type TortureConfig struct {
	// Threads is the total thread count (rounded up to warps).
	Threads int
	// Cells is the shared data pool size.
	Cells int
	// CellStrideWords controls granule sharing: 1 packs cells tightly
	// (maximum false sharing at any conflict granularity), 4 isolates them.
	CellStrideWords int
	// TxPerThread is the number of transactions per thread.
	TxPerThread int
	// ReadOnlyPct is the percentage of transactions that only read
	// (exercises WarpTM's TCD silent-commit path).
	ReadOnlyPct int
	// MaxCellsPerTx bounds a transaction's footprint (1..4).
	MaxCellsPerTx int
}

// DefaultTortureConfig returns a contended mixed workload.
func DefaultTortureConfig() TortureConfig {
	return TortureConfig{
		Threads:         1024,
		Cells:           96,
		CellStrideWords: 2,
		TxPerThread:     3,
		ReadOnlyPct:     25,
		MaxCellsPerTx:   3,
	}
}

const tortureInitial = 1 << 20 // large enough that -1 deltas never underflow

// BuildTorture generates a randomized transactional stress kernel whose
// invariant is conservation: every read-write transaction applies deltas
// summing to zero across its footprint, so the pool's total is unchanged by
// any serializable execution. It is the fuzzing complement to the paper
// benchmarks: footprints, sharing, and read/write mixes are randomized per
// seed, and the gpu runner's serializability checker validates every run.
func BuildTorture(p Params, tc TortureConfig) *gpu.Kernel {
	threads := padWarps(tc.Threads)
	if tc.MaxCellsPerTx < 1 {
		tc.MaxCellsPerTx = 1
	}
	if tc.MaxCellsPerTx > 4 {
		tc.MaxCellsPerTx = 4
	}

	r := newRegion()
	cellBase := r.array(tc.Cells * tc.CellStrideWords)
	cellAddr := func(c int) uint64 {
		return cellBase + uint64(c*tc.CellStrideWords)*mem.WordBytes
	}

	rng := rngFor(p, 7)
	var progs []*isa.Program
	for w := 0; w < threads/isa.WarpWidth; w++ {
		b := isa.NewBuilder()
		for t := 0; t < tc.TxPerThread; t++ {
			// Per-lane footprints for this transaction slot.
			type laneTx struct {
				cells    []int
				readOnly bool
			}
			lanes := make([]laneTx, isa.WarpWidth)
			maxCells := 0
			for l := range lanes {
				n := 1 + rng.Intn(tc.MaxCellsPerTx)
				seen := map[int]bool{}
				for len(lanes[l].cells) < n {
					c := rng.Intn(tc.Cells)
					if !seen[c] {
						seen[c] = true
						lanes[l].cells = append(lanes[l].cells, c)
					}
				}
				lanes[l].readOnly = rng.Intn(100) < tc.ReadOnlyPct
				if n > maxCells {
					maxCells = n
				}
			}

			b.Compute(uint32(10 + rng.Intn(40)))
			b.TxBegin()
			// Read phase: load cell k into register k for lanes with >= k+1
			// cells.
			for k := 0; k < maxCells; k++ {
				addrs := make([]uint64, isa.WarpWidth)
				var mask isa.LaneMask
				for l := range lanes {
					if k < len(lanes[l].cells) {
						mask = mask.Set(l)
						addrs[l] = cellAddr(lanes[l].cells[k])
					}
				}
				b.LoadMasked(isa.Reg(k), addrs, mask)
			}
			// Write phase: deltas +1 on cell 0, -1 on the last cell, for
			// lanes with >= 2 cells that are not read-only. (With one cell,
			// write back the read value unchanged — still a write lock.)
			for k := 0; k < maxCells; k++ {
				addrs := make([]uint64, isa.WarpWidth)
				imms := make([]int64, isa.WarpWidth)
				var mask isa.LaneMask
				for l := range lanes {
					if lanes[l].readOnly || k >= len(lanes[l].cells) {
						continue
					}
					mask = mask.Set(l)
					addrs[l] = cellAddr(lanes[l].cells[k])
					switch {
					case k == 0 && len(lanes[l].cells) > 1:
						imms[l] = 1
					case k == len(lanes[l].cells)-1 && len(lanes[l].cells) > 1:
						imms[l] = -1
					default:
						imms[l] = 0
					}
				}
				if mask == 0 {
					continue
				}
				b.AddImm(isa.Reg(4+k%3), isa.Reg(k), imms)
				b.StoreMasked(isa.Reg(4+k%3), addrs, mask)
			}
			b.TxCommit()
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     "torture",
		Programs: progs,
		Init: func(img *mem.Image) {
			for c := 0; c < tc.Cells; c++ {
				img.Write(cellAddr(c), tortureInitial)
			}
		},
		Verify: func(img *mem.Image) error {
			var total uint64
			for c := 0; c < tc.Cells; c++ {
				total += img.Read(cellAddr(c))
			}
			want := uint64(tc.Cells) * tortureInitial
			if total != want {
				return fmt.Errorf("cell sum = %d, want %d (conservation violated)", total, want)
			}
			return nil
		},
	}
}
