package workloads

import (
	"fmt"
	"math"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildCloth models the cloth-physics benchmark: one thread per spring
// constraint of an n×n grid mesh (the paper's 60K-edge cloth), each
// adjusting the two endpoint vertices. Neighboring edges share vertices, so
// contention is local but pervasive. CL keeps the constraint solve inside
// the transaction (long transactions); CLto is the paper's tx-optimized
// version with the arithmetic hoisted out.

// CL operand slots.
const (
	clV1 = iota
	clV2
	clV1Lock
	clV2Lock
	clAddrSlots
)

func buildCloth(name string, v Variant, p Params, optimized bool) *gpu.Kernel {
	n := 80
	if p.Scale != 1 {
		n = int(80 * math.Sqrt(p.Scale))
		if n < 8 {
			n = 8
		}
	}
	type edge struct{ a, b int }
	var edges []edge
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			v0 := y*n + x
			if x+1 < n {
				edges = append(edges, edge{v0, v0 + 1})
			}
			if y+1 < n {
				edges = append(edges, edge{v0, v0 + n})
			}
		}
	}
	// The hand-tuned code interleaves constraint order so that the threads
	// of one warp touch (mostly) disjoint vertices — equivalent to the edge
	// coloring cloth solvers use. Apply the same stride permutation to both
	// variants.
	edges = stridePermute(edges)
	threads := padWarps(len(edges))
	vertices := n * n

	// Cloth vertices are multi-word structures (position, previous position,
	// mass); a 4-word stride keeps distinct vertices in distinct 32-byte
	// conflict granules, as in the real layout.
	const vertStride = 4
	r := newRegion()
	vertBase := r.array(vertices * vertStride)
	lockBase := r.array(vertices)

	rng := rngFor(p, 3)
	lanes := make([]laneOperands, threads)
	for t := 0; t < threads; t++ {
		e := edges[t%len(edges)]
		if t >= len(edges) {
			// Pad lanes re-run a random edge (keeps conservation intact).
			e = edges[rng.Intn(len(edges))]
		}
		addrs := make([]uint64, clAddrSlots)
		addrs[clV1] = vertBase + uint64(e.a*vertStride)*mem.WordBytes
		addrs[clV2] = vertBase + uint64(e.b*vertStride)*mem.WordBytes
		addrs[clV1Lock] = lockBase + uint64(e.a)*mem.WordBytes
		addrs[clV2Lock] = lockBase + uint64(e.b)*mem.WordBytes
		lanes[t] = laneOperands{addrs: addrs}
	}

	var progs []*isa.Program
	for w := 0; w < threads/isa.WarpWidth; w++ {
		ls := lanes[w*isa.WarpWidth : (w+1)*isa.WarpWidth]
		update := func(nb *isa.Builder, computeInside bool) *isa.Builder {
			nb.Load(1, perLane(ls, clV1)).
				Load(2, perLane(ls, clV2))
			if computeInside {
				nb.Compute(40) // constraint solve inside the transaction
			}
			return nb.
				AddImmScalar(1, 1, 1).
				Store(1, perLane(ls, clV1)).
				AddImmScalar(2, 2, -1).
				Store(2, perLane(ls, clV2))
		}
		b := isa.NewBuilder().Compute(25)
		if optimized {
			b.Compute(40) // CLto hoists the solve out of the transaction
		}
		switch v {
		case TM:
			b.TxBegin()
			update(b, !optimized)
			b.TxCommit()
		case FGLock:
			// The hand-optimized lock version accumulates per vertex under
			// one lock each (pairwise atomicity is not needed for force
			// accumulation), instead of holding both locks across the solve.
			if !optimized {
				b.Compute(40) // solve before touching either vertex
			}
			locks1 := make([][]uint64, isa.WarpWidth)
			locks2 := make([][]uint64, isa.WarpWidth)
			for i := range ls {
				locks1[i] = []uint64{ls[i].addrs[clV1Lock]}
				locks2[i] = []uint64{ls[i].addrs[clV2Lock]}
			}
			body1 := isa.NewBuilder().
				Load(1, perLane(ls, clV1)).
				AddImmScalar(1, 1, 1).
				Store(1, perLane(ls, clV1)).
				Ops()
			body2 := isa.NewBuilder().
				Load(2, perLane(ls, clV2)).
				AddImmScalar(2, 2, -1).
				Store(2, perLane(ls, clV2)).
				Ops()
			b.CritSection(locks1, body1).CritSection(locks2, body2)
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Init: func(img *mem.Image) {
			for i := 0; i < vertices; i++ {
				img.Write(vertBase+uint64(i*vertStride)*mem.WordBytes, 1000)
			}
		},
		// Verify below checks position-sum conservation.
		Verify: func(img *mem.Image) error {
			var total uint64
			for i := 0; i < vertices; i++ {
				total += img.Read(vertBase + uint64(i*vertStride)*mem.WordBytes)
			}
			want := uint64(vertices) * 1000
			if total != want {
				return fmt.Errorf("vertex sum = %d, want %d", total, want)
			}
			return nil
		},
	}
}
