package workloads

import (
	"fmt"

	"getm/internal/gpu"
	"getm/internal/isa"
	"getm/internal/mem"
)

// buildApriori models the data-mining benchmark (RMS-TM's Apriori over 4000
// records): threads scan private record data (non-transactional, the bulk of
// the runtime) and transactionally bump shared candidate-itemset support
// counters. The counter pool is tiny, so — as the paper observes for AP —
// contention concentrates on a few memory locations and abort rates are
// high, but transactions are a small fraction of total time.

// AP operand slots: priv, then (counter, lock) pairs per transaction.
const apPriv = 0

func apCounterSlot(i int) int     { return 1 + 2*i }
func apCounterLockSlot(i int) int { return 2 + 2*i }

func buildApriori(name string, v Variant, p Params) *gpu.Kernel {
	threads := padWarps(p.scaled(3840))
	const counters = 64
	const txPerThread = 3

	// Candidate-itemset records are multi-word structures; counters sit at a
	// 4-word stride so distinct counters occupy distinct conflict granules.
	const ctrStride = 4
	r := newRegion()
	counterBase := r.array(counters * ctrStride)
	lockBase := r.array(counters)
	privBase := r.array(4 * threads)

	rng := rngFor(p, 5)
	lanes := make([]laneOperands, threads)
	for t := 0; t < threads; t++ {
		addrs := make([]uint64, 1+2*txPerThread)
		addrs[apPriv] = privBase + uint64(4*t)*mem.WordBytes
		for i := 0; i < txPerThread; i++ {
			// Zipf-ish skew: half the bumps hit the first 8 counters.
			c := rng.Intn(counters)
			if rng.Float64() < 0.5 {
				c = rng.Intn(8)
			}
			addrs[apCounterSlot(i)] = counterBase + uint64(c*ctrStride)*mem.WordBytes
			addrs[apCounterLockSlot(i)] = lockBase + uint64(c)*mem.WordBytes
		}
		lanes[t] = laneOperands{addrs: addrs}
	}

	var progs []*isa.Program
	for w := 0; w < threads/isa.WarpWidth; w++ {
		ls := lanes[w*isa.WarpWidth : (w+1)*isa.WarpWidth]
		b := isa.NewBuilder()
		for i := 0; i < txPerThread; i++ {
			// Record scan: compute-heavy with private memory traffic. The
			// scans dominate AP's runtime; the counter bumps are a sliver.
			b.Compute(700).
				Load(3, perLane(ls, apPriv)).
				AddImmScalar(3, 3, 1).
				Store(3, perLane(ls, apPriv)).
				Compute(500).
				Load(4, perLane(ls, apPriv)).
				Compute(300)
			bump := func(nb *isa.Builder) *isa.Builder {
				return nb.
					Load(1, perLane(ls, apCounterSlot(i))).
					AddImmScalar(1, 1, 1).
					Store(1, perLane(ls, apCounterSlot(i)))
			}
			if v == TM {
				b.TxBegin()
				bump(b)
				b.TxCommit()
			} else {
				locks := make([][]uint64, isa.WarpWidth)
				for j := range ls {
					locks[j] = []uint64{ls[j].addrs[apCounterLockSlot(i)]}
				}
				b.CritSection(locks, bump(isa.NewBuilder()).Ops())
			}
		}
		progs = append(progs, b.MustBuild())
	}

	return &gpu.Kernel{
		Name:     name,
		Programs: progs,
		Verify: func(img *mem.Image) error {
			var total uint64
			for c := 0; c < counters; c++ {
				total += img.Read(counterBase + uint64(c*ctrStride)*mem.WordBytes)
			}
			want := uint64(threads) * txPerThread
			if total != want {
				return fmt.Errorf("support-counter sum = %d, want %d", total, want)
			}
			return nil
		},
	}
}
