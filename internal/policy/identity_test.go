// Preset-identity tests: the policy engine must reproduce the legacy
// protocol dispatch bit for bit. These live in an external test package so
// they can drive the full gpu machine (gpu imports policy; the reverse
// import is test-only and cycle-free).
package policy_test

import (
	"fmt"
	"reflect"
	"testing"

	"getm/internal/gpu"
	"getm/internal/policy"
	"getm/internal/workloads"
)

func runOne(t *testing.T, cfg gpu.Config, bench string, scale float64, seed uint64) *gpu.Result {
	t.Helper()
	k, err := workloads.Build(bench, workloads.TM, workloads.Params{Scale: scale, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Golden behavioral fingerprints captured from the legacy protocol-name
// dispatch before the policy engine replaced it (DefaultConfig, scale 0.05,
// seed 42). Every preset must still land on these exact numbers whether it
// is selected by name or by matrix point — a drift here means the engine is
// not the protocol the paper measured.
func TestPresetFingerprints(t *testing.T) {
	fingerprints := []struct {
		proto  string
		bench  string
		cycles uint64
		commit uint64
		aborts uint64
		xbar   uint64 // up + down bytes
	}{
		{"getm", "ht-h", 5850, 384, 653, 128280},
		{"getm", "atm", 3934, 384, 194, 88428},
		{"warptm", "ht-h", 3486, 384, 184, 56662},
		{"warptm", "atm", 2962, 384, 46, 64686},
		{"warptm-el", "ht-h", 3518, 384, 184, 56622},
		{"warptm-el", "atm", 2863, 384, 46, 64498},
		{"eapg", "ht-h", 3467, 384, 163, 56278},
		{"eapg", "atm", 2884, 384, 41, 65666},
	}
	for _, fp := range fingerprints {
		fp := fp
		t.Run(fp.proto+"/"+fp.bench, func(t *testing.T) {
			t.Parallel()
			preset, ok := policy.Preset(fp.proto)
			if !ok {
				t.Fatalf("no preset for %q", fp.proto)
			}

			// Select by matrix point; the Protocol string stays for display.
			cfg := gpu.DefaultConfig(gpu.Protocol(fp.proto))
			cfg.Policy = preset
			res := runOne(t, cfg, fp.bench, 0.05, 42)
			m := res.Metrics
			if m.TotalCycles != fp.cycles || m.Commits != fp.commit ||
				m.Aborts != fp.aborts || m.XbarUpBytes+m.XbarDownBytes != fp.xbar {
				t.Errorf("policy-selected run drifted from legacy fingerprint:\n"+
					"got  cycles=%d commits=%d aborts=%d xbar=%d\n"+
					"want cycles=%d commits=%d aborts=%d xbar=%d",
					m.TotalCycles, m.Commits, m.Aborts, m.XbarUpBytes+m.XbarDownBytes,
					fp.cycles, fp.commit, fp.aborts, fp.xbar)
			}

			// And by name, which must match the fingerprint the same way.
			byName := runOne(t, gpu.DefaultConfig(gpu.Protocol(fp.proto)), fp.bench, 0.05, 42)
			if !reflect.DeepEqual(byName.Metrics, m) {
				t.Error("name-selected and policy-selected metrics differ")
			}
		})
	}
}

// Differential property test: across ≥200 (preset, seed) cases the
// policy-selected machine must produce metrics deep-equal to the
// name-selected one. Seeds sweep the workload RNG, so this exercises the
// engine across many distinct conflict interleavings, not one golden run.
func TestPresetDifferentialSeeds(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 12
	}
	for _, proto := range []string{"getm", "warptm", "warptm-el", "eapg"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			t.Parallel()
			preset, _ := policy.Preset(proto)
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				bench := "atm"
				if seed%2 == 0 {
					bench = "ht-h"
				}
				legacy := runOne(t, gpu.DefaultConfig(gpu.Protocol(proto)), bench, 0.02, seed)
				cfg := gpu.DefaultConfig(gpu.Protocol(proto))
				cfg.Policy = preset
				pol := runOne(t, cfg, bench, 0.02, seed)
				if !reflect.DeepEqual(legacy.Metrics, pol.Metrics) {
					t.Fatalf("seed %d bench %s: policy-selected metrics diverge from name-selected\nlegacy: %s\npolicy: %s",
						seed, bench, fmt.Sprintf("%+v", legacy.Metrics), fmt.Sprintf("%+v", pol.Metrics))
				}
			}
		})
	}
}

// Every valid non-preset point must actually assemble and run to completion
// (all transactions commit exactly once) — the matrix's in-between points
// are runnable machines, not just accepted configurations.
func TestNonPresetPointsRun(t *testing.T) {
	for _, p := range policy.Valid() {
		if _, isPreset := policy.PresetName(p); isPreset {
			continue
		}
		p := p
		t.Run(p.Canonical(), func(t *testing.T) {
			t.Parallel()
			cfg := gpu.DefaultConfig(gpu.Protocol(p.String()))
			cfg.Policy = p
			res := runOne(t, cfg, "atm", 0.02, 7)
			if res.Metrics.Commits == 0 {
				t.Error("no commits")
			}
		})
	}
}

// An invalid point must be rejected by the machine, not silently mapped to
// the nearest protocol.
func TestInvalidPointRejected(t *testing.T) {
	cfg := gpu.DefaultConfig(gpu.ProtoGETM)
	cfg.Policy = policy.Policy{
		VersionMgmt:    policy.VMEager,
		ConflictDetect: policy.CDLazy,
		Resolution:     policy.ResTimestampOrder,
		Arbitration:    policy.ArbLocal,
	}
	k, err := workloads.Build("atm", workloads.TM, workloads.Params{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gpu.Run(cfg, k); err == nil {
		t.Fatal("invalid policy point ran")
	}
}
