package policy

import (
	"errors"
	"strings"
	"testing"
)

// The matrix has exactly 24 syntactic points, of which exactly 12 are
// implementable; Valid must list the presets first and agree with Validate
// point by point.
func TestMatrixEnumeration(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("All() has %d points, want 24", len(all))
	}
	valid := Valid()
	if len(valid) != 12 {
		t.Fatalf("Valid() has %d points, want 12", len(valid))
	}

	wantFirst := []Policy{GETM(), WarpTM(), WarpTMEL(), EAPG()}
	for i, w := range wantFirst {
		if valid[i] != w {
			t.Errorf("Valid()[%d] = %v, want preset %v", i, valid[i], w)
		}
	}

	seen := map[Policy]bool{}
	for _, p := range valid {
		if seen[p] {
			t.Errorf("Valid() repeats %v", p)
		}
		seen[p] = true
		if err := p.Validate(); err != nil {
			t.Errorf("Valid() point %v fails Validate: %v", p, err)
		}
	}

	// Every point of All is either in Valid or fails Validate — no third
	// category, and the counts must tie out.
	invalid := 0
	for _, p := range all {
		err := p.Validate()
		if seen[p] != (err == nil) {
			t.Errorf("point %v: Valid-membership %v but Validate err %v", p, seen[p], err)
		}
		if err != nil {
			invalid++
		}
	}
	if invalid != 12 {
		t.Errorf("%d invalid points, want 12", invalid)
	}
}

// The three composition rules, spelled out: each invalid combination must
// fail with an error wrapping ErrInvalid and naming the offending axis pair.
func TestValidateInvalidTable(t *testing.T) {
	cases := []struct {
		p    Policy
		want string // substring the error must carry
	}{
		// vm=eager + cd=lazy: 6 points (3 res × 2 arb).
		{Policy{VMEager, CDLazy, ResRequesterWins, ArbLocal}, "vm=eager requires cd=eager"},
		{Policy{VMEager, CDLazy, ResRequesterWins, ArbRing}, "vm=eager requires cd=eager"},
		{Policy{VMEager, CDLazy, ResFirstWriterWins, ArbLocal}, "vm=eager requires cd=eager"},
		{Policy{VMEager, CDLazy, ResFirstWriterWins, ArbRing}, "vm=eager requires cd=eager"},
		{Policy{VMEager, CDLazy, ResTimestampOrder, ArbLocal}, "vm=eager requires cd=eager"},
		{Policy{VMEager, CDLazy, ResTimestampOrder, ArbRing}, "vm=eager requires cd=eager"},
		// vm=eager + res=requester (with cd=eager): 2 points.
		{Policy{VMEager, CDEager, ResRequesterWins, ArbLocal}, "res=requester"},
		{Policy{VMEager, CDEager, ResRequesterWins, ArbRing}, "res=requester"},
		// vm=lazy + res=timestamp: 4 points (2 cd × 2 arb).
		{Policy{VMLazy, CDEager, ResTimestampOrder, ArbLocal}, "res=timestamp"},
		{Policy{VMLazy, CDEager, ResTimestampOrder, ArbRing}, "res=timestamp"},
		{Policy{VMLazy, CDLazy, ResTimestampOrder, ArbLocal}, "res=timestamp"},
		{Policy{VMLazy, CDLazy, ResTimestampOrder, ArbRing}, "res=timestamp"},
	}
	if len(cases) != 12 {
		t.Fatalf("table has %d cases, want all 12 invalid points", len(cases))
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("%v validated, want error", c.p)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%v error %v does not wrap ErrInvalid", c.p, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v error %q missing %q", c.p, err, c.want)
		}
	}

	// Malformed axis values are invalid too, before any composition rule.
	for _, p := range []Policy{
		{},
		{"eager", "eager", "timestamp", "token"},
		{"eager", "eager", "oldest", "local"},
		{"eagre", "eager", "timestamp", "local"},
	} {
		if err := p.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%v: err %v, want ErrInvalid", p, err)
		}
	}
}

// Parse accepts preset names, canonical tuples, axis lists in any order,
// and partial lists with machinery-native defaults — and rejects the rest.
func TestParse(t *testing.T) {
	ok := []struct {
		in   string
		want Policy
	}{
		{"getm", GETM()},
		{"warptm", WarpTM()},
		{"warptm-el", WarpTMEL()},
		{"eapg", EAPG()},
		{"vm=eager,cd=eager,res=timestamp,arb=local", GETM()},
		{"arb=ring, res=requester, cd=lazy, vm=lazy", WarpTM()}, // any order, spaces ok
		{"vm=eager", GETM()},  // defaults fill the rest
		{"vm=lazy", WarpTM()}, // lazy defaults are WarpTM's
		{"vm=lazy,cd=eager", WarpTMEL()},
		{"vm=lazy,res=fww", EAPG()},
		{"res=fww", Policy{VMEager, CDEager, ResFirstWriterWins, ArbLocal}},
		{"", Policy{}}, // sentinel: expect error, checked below
	}
	for _, c := range ok[:len(ok)-1] {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}

	for _, in := range []string{
		"",
		"mesi",                   // unknown preset
		"vm=eager,cd=lazy",       // invalid composition
		"vm=lazy,res=timestamp",  // invalid composition
		"vm=eager,res=requester", // invalid composition
		"speed=fast",             // unknown axis
		"vm",                     // not axis=value
		"vm=eager,cd",            // trailing bare token
	} {
		if _, err := Parse(in); !errors.Is(err, ErrInvalid) {
			t.Errorf("Parse(%q): err %v, want ErrInvalid", in, err)
		}
	}

	// Every valid point round-trips through its canonical form.
	for _, p := range Valid() {
		got, err := Parse(p.Canonical())
		if err != nil || got != p {
			t.Errorf("Parse(Canonical(%v)) = %v, %v", p, got, err)
		}
	}
}

// Preset naming must round-trip, and String must prefer the name.
func TestPresetNames(t *testing.T) {
	names := map[string]Policy{
		"getm":      GETM(),
		"warptm":    WarpTM(),
		"warptm-el": WarpTMEL(),
		"eapg":      EAPG(),
	}
	for name, p := range names {
		got, ok := Preset(name)
		if !ok || got != p {
			t.Errorf("Preset(%q) = %v, %v", name, got, ok)
		}
		gotName, ok := PresetName(p)
		if !ok || gotName != name {
			t.Errorf("PresetName(%v) = %q, %v", p, gotName, ok)
		}
		if p.String() != name {
			t.Errorf("String(%v) = %q, want preset name %q", p, p.String(), name)
		}
	}
	if _, ok := Preset("fglock"); ok {
		t.Error("fglock resolved as a policy preset (locks are not a TM policy)")
	}
	np := Policy{VMLazy, CDEager, ResFirstWriterWins, ArbLocal}
	if _, ok := PresetName(np); ok {
		t.Errorf("non-preset %v claims a preset name", np)
	}
	if got := np.String(); got != np.Canonical() {
		t.Errorf("non-preset String = %q, want canonical %q", got, np.Canonical())
	}
}
