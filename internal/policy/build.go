package policy

import (
	"fmt"

	"getm/internal/core"
	"getm/internal/eapg"
	"getm/internal/mem"
	"getm/internal/sim"
	"getm/internal/tm"
	"getm/internal/warptm"
)

// Deps are the machine components the lifecycle engine is assembled over;
// the gpu machine supplies them (policy deliberately does not import gpu).
type Deps struct {
	Eng        *sim.Engine
	AMap       mem.AddressMap
	Trans      tm.Transport
	Partitions []*mem.Partition
	Img        *mem.Image
	Cores      int
	// RNG is the machine's component-seeding stream; Build forks it exactly
	// as the legacy dispatch did, so preset points stay bit-identical.
	RNG *sim.RNG
	// Record enables the serializability replay checker's commit log.
	Record bool

	GETM   core.Config
	WarpTM warptm.Config
}

// Engine is one assembled transaction-lifecycle engine: the tm.Protocol the
// cores drive, plus the concrete machinery behind it (for stats collection,
// invariant checks, tracing, and the sharded machine's hooks). Exactly one
// of the two machinery groups is populated, per the policy's version
// management axis.
type Engine struct {
	Protocol tm.Protocol

	// Eager version management (GETM machinery).
	GETM   *core.Protocol
	GETMVU []*core.VU
	GETMCU []*core.CU
	Stall  *core.OccTracker

	// Lazy version management (WarpTM machinery, optionally wrapped by the
	// EAPG broadcast layer for first-writer-wins resolution).
	WarpTM *warptm.Protocol
	EAPG   *eapg.Protocol
}

// Build assembles the lifecycle engine for one matrix point. Every policy
// axis maps onto one knob of the underlying machinery:
//
//   - vm selects the machinery itself: eager = GETM validation/commit units,
//     lazy = WarpTM value validation with redo logs;
//   - cd is implied for eager vm; for lazy vm, cd=eager enables the
//     access-time revalidation of the read log (WarpTM-EL);
//   - res=fww sets core.Config.FirstWriterWins under eager vm and wraps the
//     protocol in the EAPG early-abort broadcast layer under lazy vm;
//   - arb=ring sets core.Config.RingArb (ack-gated commit) under eager vm
//     and is the native in-order retirement under lazy vm, where arb=local
//     sets warptm.Config.LocalArb instead.
//
// Invalid points return an ErrInvalid-wrapping error.
func Build(p Policy, d Deps) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch p.VersionMgmt {
	case VMEager:
		return buildEager(p, d), nil
	case VMLazy:
		return buildLazy(p, d), nil
	}
	return nil, fmt.Errorf("%w: vm=%q", ErrInvalid, p.VersionMgmt)
}

// buildEager assembles the GETM machinery; the GETM preset reproduces the
// legacy dispatch exactly (same construction order, same RNG forks).
func buildEager(p Policy, d Deps) *Engine {
	cfg := d.GETM
	cfg.FirstWriterWins = p.Resolution == ResFirstWriterWins
	cfg.RingArb = p.Arbitration == ArbRing

	e := &Engine{Stall: &core.OccTracker{}}
	nParts := len(d.Partitions)
	for i, part := range d.Partitions {
		vu := core.NewVU(cfg, d.Eng, part,
			cfg.PreciseEntries/nParts, cfg.ApproxEntries/nParts,
			d.RNG.Fork(uint64(i)))
		vu.Stall.SetTracker(e.Stall)
		e.GETMVU = append(e.GETMVU, vu)
		e.GETMCU = append(e.GETMCU, core.NewCU(cfg, d.Eng, part, vu))
	}
	e.GETM = core.NewProtocol(cfg, d.Eng, d.AMap, d.Trans, e.GETMVU, e.GETMCU)
	e.GETM.Record = d.Record
	e.Protocol = e.GETM
	return e
}

// buildLazy assembles the WarpTM machinery (same RNG fork offsets as the
// legacy dispatch), wrapping it in the EAPG layer for first-writer-wins.
func buildLazy(p Policy, d Deps) *Engine {
	cfg := d.WarpTM
	cfg.Eager = p.ConflictDetect == CDEager
	cfg.LocalArb = p.Arbitration == ArbLocal

	e := &Engine{}
	var vus []*warptm.VU
	for i, part := range d.Partitions {
		vus = append(vus, warptm.NewVU(cfg, d.Eng, part, d.RNG.Fork(uint64(100+i))))
	}
	e.WarpTM = warptm.NewProtocol(cfg, d.Eng, d.AMap, d.Trans, vus, d.Img)
	e.WarpTM.Record = d.Record
	e.Protocol = e.WarpTM
	if p.Resolution == ResFirstWriterWins {
		e.EAPG = eapg.New(e.WarpTM, d.Eng, d.Trans, d.Cores)
		e.Protocol = e.EAPG
	}
	return e
}
