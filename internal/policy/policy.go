// Package policy defines the composable protocol policy matrix: four
// orthogonal axes — version management, conflict detection, conflict
// resolution, and commit arbitration — whose points parameterize a single
// transaction-lifecycle engine (Build). The four paper protocols are named
// presets in the matrix:
//
//	getm      = {vm:eager, cd:eager, res:timestamp, arb:local}
//	warptm    = {vm:lazy,  cd:lazy,  res:requester, arb:ring}
//	warptm-el = {vm:lazy,  cd:eager, res:requester, arb:ring}
//	eapg      = {vm:lazy,  cd:lazy,  res:fww,       arb:ring}
//
// Not every combination is implementable: eager version management acquires
// write reservations at access time, so its conflicts must be detected
// eagerly (cd=lazy is invalid) and the reservation holder cannot lose to a
// requester (res=requester is invalid); lazy version management has no
// logical timestamps to order by (res=timestamp is invalid). That leaves 12
// valid points out of 24 (Valid enumerates them); everything else reports
// ErrInvalid.
package policy

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvalid is the sentinel wrapped by every invalid-policy error (the
// public API re-exports it as getm.ErrInvalidPolicy).
var ErrInvalid = errors.New("invalid policy")

// VersionMgmt selects where speculative writes live until commit.
type VersionMgmt string

// ConflictDetect selects when conflicts are discovered.
type ConflictDetect string

// Resolution selects who survives a detected conflict.
type Resolution string

// Arbitration selects how commits are ordered globally.
type Arbitration string

// Axis values.
const (
	// VMEager acquires per-granule write reservations at access time (GETM
	// machinery): a transaction reaching commit is guaranteed to succeed.
	VMEager VersionMgmt = "eager"
	// VMLazy buffers writes in a redo log and applies them at commit
	// (KiloTM/WarpTM machinery).
	VMLazy VersionMgmt = "lazy"

	// CDEager checks every transactional access as it happens.
	CDEager ConflictDetect = "eager"
	// CDLazy defers detection to commit-time value validation.
	CDLazy ConflictDetect = "lazy"

	// ResRequesterWins lets the committing requester win: its writes
	// invalidate conflicting readers, which fail their own validation later.
	ResRequesterWins Resolution = "requester"
	// ResFirstWriterWins lets the first writer win outright: under eager VM
	// a requester hitting a reservation aborts instead of queueing; under
	// lazy VM committing write sets are broadcast so doomed transactions
	// abort early (EAPG).
	ResFirstWriterWins Resolution = "fww"
	// ResTimestampOrder resolves by logical age: younger conflicting
	// requesters abort or queue behind older reservations (paper GETM).
	ResTimestampOrder Resolution = "timestamp"

	// ArbLocal decides commits locally, off the global critical path.
	ArbLocal Arbitration = "local"
	// ArbRing serializes commit decisions globally: eager VM waits for every
	// partition's commit ack; lazy VM retires commits in global id order.
	ArbRing Arbitration = "ring"
)

// Policy is one point in the protocol matrix. The zero value is "unset" and
// means the legacy protocol-name dispatch applies.
type Policy struct {
	VersionMgmt    VersionMgmt    `json:"vm"`
	ConflictDetect ConflictDetect `json:"cd"`
	Resolution     Resolution     `json:"res"`
	Arbitration    Arbitration    `json:"arb"`
}

// IsZero reports whether no axis has been set.
func (p Policy) IsZero() bool { return p == Policy{} }

// Canonical renders the policy in the fixed axis order accepted by Parse.
func (p Policy) Canonical() string {
	return fmt.Sprintf("vm=%s,cd=%s,res=%s,arb=%s",
		p.VersionMgmt, p.ConflictDetect, p.Resolution, p.Arbitration)
}

// String implements fmt.Stringer: the preset name when the point is one of
// the four paper protocols, the canonical tuple otherwise.
func (p Policy) String() string {
	if name, ok := PresetName(p); ok {
		return name
	}
	return p.Canonical()
}

// Presets, in the repo's conventional protocol order.
func GETM() Policy {
	return Policy{VMEager, CDEager, ResTimestampOrder, ArbLocal}
}
func WarpTM() Policy {
	return Policy{VMLazy, CDLazy, ResRequesterWins, ArbRing}
}
func WarpTMEL() Policy {
	return Policy{VMLazy, CDEager, ResRequesterWins, ArbRing}
}
func EAPG() Policy {
	return Policy{VMLazy, CDLazy, ResFirstWriterWins, ArbRing}
}

// presetOrder pairs each preset with its legacy protocol name.
var presetOrder = []struct {
	Name   string
	Policy Policy
}{
	{"getm", GETM()},
	{"warptm", WarpTM()},
	{"warptm-el", WarpTMEL()},
	{"eapg", EAPG()},
}

// Preset resolves a legacy protocol name to its matrix point.
func Preset(name string) (Policy, bool) {
	for _, pr := range presetOrder {
		if pr.Name == name {
			return pr.Policy, true
		}
	}
	return Policy{}, false
}

// PresetName is the reverse lookup: the legacy protocol name of a preset
// point, if p is one.
func PresetName(p Policy) (string, bool) {
	for _, pr := range presetOrder {
		if pr.Policy == p {
			return pr.Name, true
		}
	}
	return "", false
}

// Validate reports nil for the 12 implementable points and an
// ErrInvalid-wrapping error (with the reason) for everything else.
func (p Policy) Validate() error {
	switch p.VersionMgmt {
	case VMEager, VMLazy:
	default:
		return fmt.Errorf("%w: vm=%q (want eager or lazy)", ErrInvalid, p.VersionMgmt)
	}
	switch p.ConflictDetect {
	case CDEager, CDLazy:
	default:
		return fmt.Errorf("%w: cd=%q (want eager or lazy)", ErrInvalid, p.ConflictDetect)
	}
	switch p.Resolution {
	case ResRequesterWins, ResFirstWriterWins, ResTimestampOrder:
	default:
		return fmt.Errorf("%w: res=%q (want requester, fww, or timestamp)", ErrInvalid, p.Resolution)
	}
	switch p.Arbitration {
	case ArbLocal, ArbRing:
	default:
		return fmt.Errorf("%w: arb=%q (want local or ring)", ErrInvalid, p.Arbitration)
	}
	if p.VersionMgmt == VMEager {
		if p.ConflictDetect == CDLazy {
			return fmt.Errorf("%w: vm=eager requires cd=eager (write reservations are acquired by the eager metadata checks; there is nothing to validate lazily)", ErrInvalid)
		}
		if p.Resolution == ResRequesterWins {
			return fmt.Errorf("%w: vm=eager cannot use res=requester (the reservation holder cannot be aborted by a requester; use res=timestamp or res=fww)", ErrInvalid)
		}
	} else if p.Resolution == ResTimestampOrder {
		return fmt.Errorf("%w: vm=lazy cannot use res=timestamp (value-based validation has no logical timestamps; use res=requester or res=fww)", ErrInvalid)
	}
	return nil
}

// Valid enumerates the implementable points in deterministic order: the
// four presets first, then the remaining points grouped by version
// management.
func Valid() []Policy {
	var out []Policy
	seen := map[Policy]bool{}
	for _, pr := range presetOrder {
		out = append(out, pr.Policy)
		seen[pr.Policy] = true
	}
	for _, vm := range []VersionMgmt{VMEager, VMLazy} {
		for _, cd := range []ConflictDetect{CDEager, CDLazy} {
			for _, res := range []Resolution{ResRequesterWins, ResFirstWriterWins, ResTimestampOrder} {
				for _, arb := range []Arbitration{ArbLocal, ArbRing} {
					p := Policy{vm, cd, res, arb}
					if seen[p] || p.Validate() != nil {
						continue
					}
					out = append(out, p)
					seen[p] = true
				}
			}
		}
	}
	return out
}

// All enumerates every syntactically well-formed point, valid or not
// (invalid-combination table tests).
func All() []Policy {
	var out []Policy
	for _, vm := range []VersionMgmt{VMEager, VMLazy} {
		for _, cd := range []ConflictDetect{CDEager, CDLazy} {
			for _, res := range []Resolution{ResRequesterWins, ResFirstWriterWins, ResTimestampOrder} {
				for _, arb := range []Arbitration{ArbLocal, ArbRing} {
					out = append(out, Policy{vm, cd, res, arb})
				}
			}
		}
	}
	return out
}

// Parse reads a policy from its CLI/serve syntax: either a preset name
// ("getm", "warptm", "warptm-el", "eapg") or a comma-separated axis list
// ("vm=eager,cd=eager,res=timestamp,arb=local", any order). Omitted axes
// default to the machinery's native choice for the given vm (and vm itself
// defaults to eager, the paper's protocol). The result is validated.
func Parse(s string) (Policy, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Policy{}, fmt.Errorf("%w: empty policy", ErrInvalid)
	}
	if p, ok := Preset(s); ok {
		return p, nil
	}
	var p Policy
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Policy{}, fmt.Errorf("%w: %q is neither a preset name nor an axis=value pair", ErrInvalid, kv)
		}
		switch k {
		case "vm":
			p.VersionMgmt = VersionMgmt(v)
		case "cd":
			p.ConflictDetect = ConflictDetect(v)
		case "res":
			p.Resolution = Resolution(v)
		case "arb":
			p.Arbitration = Arbitration(v)
		default:
			return Policy{}, fmt.Errorf("%w: unknown axis %q (want vm, cd, res, or arb)", ErrInvalid, k)
		}
	}
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// withDefaults fills unset axes with the native choice for the (possibly
// defaulted) version-management machinery.
func (p Policy) withDefaults() Policy {
	if p.VersionMgmt == "" {
		p.VersionMgmt = VMEager
	}
	if p.ConflictDetect == "" {
		if p.VersionMgmt == VMEager {
			p.ConflictDetect = CDEager
		} else {
			p.ConflictDetect = CDLazy
		}
	}
	if p.Resolution == "" {
		if p.VersionMgmt == VMEager {
			p.Resolution = ResTimestampOrder
		} else {
			p.Resolution = ResRequesterWins
		}
	}
	if p.Arbitration == "" {
		if p.VersionMgmt == VMEager {
			p.Arbitration = ArbLocal
		} else {
			p.Arbitration = ArbRing
		}
	}
	return p
}
