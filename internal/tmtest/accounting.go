package tmtest

import (
	"fmt"

	"getm/internal/stats"
)

// CheckAccounting verifies the lane-level transaction bookkeeping of a run:
//
//   - every abort has exactly one cause: sum(AbortsByCause) == Aborts;
//   - every lane that enters an attempt leaves it exactly once, as a commit
//     or an abort: Commits + Aborts == Extra["tx-lane-attempts"].
//
// These hold for every protocol (an fglock run has all three sides zero):
// a lane joins an attempt via the warp's txMask, and per attempt it either
// reaches the commit point live (counted in Commits or as a commit-failure
// abort) or dies en route into the dead mask (counted by abortLane, which
// deduplicates per lane per attempt).
func CheckAccounting(m *stats.Metrics) error {
	if m.Truncated {
		// A run cut short mid-flight legitimately has lanes inside attempts,
		// so the invariants below do not hold; failing them would read as a
		// (spurious) protocol bug. Refuse loudly instead.
		return fmt.Errorf("accounting: metrics are truncated (partial run); invariants only hold for complete runs")
	}
	var byCause uint64
	for _, n := range m.AbortsByCause {
		byCause += n
	}
	if byCause != m.Aborts {
		return fmt.Errorf("accounting: sum(AbortsByCause) = %d, Aborts = %d (breakdown %v)",
			byCause, m.Aborts, m.AbortsByCause)
	}
	attempts := m.Extra["tx-lane-attempts"]
	if m.Commits+m.Aborts != attempts {
		return fmt.Errorf("accounting: Commits(%d) + Aborts(%d) = %d, tx-lane-attempts = %d",
			m.Commits, m.Aborts, m.Commits+m.Aborts, attempts)
	}
	return nil
}
