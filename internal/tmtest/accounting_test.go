package tmtest_test

import (
	"fmt"
	"strings"
	"testing"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/tmtest"
	"getm/internal/workloads"
)

// The accounting invariants must hold for every protocol on contended and
// uncontended workloads alike: aborts partition exactly by cause, and lane
// attempts partition exactly into commits and aborts.
func TestAccountingInvariants(t *testing.T) {
	protos := []gpu.Protocol{gpu.ProtoGETM, gpu.ProtoWarpTM, gpu.ProtoWarpTMEL, gpu.ProtoEAPG}
	benches := []string{"ht-h", "atm"}
	for _, proto := range protos {
		for _, bench := range benches {
			t.Run(fmt.Sprintf("%s/%s", proto, bench), func(t *testing.T) {
				k, err := workloads.Build(bench, workloads.TM, workloads.Params{Scale: 0.05, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				res, err := gpu.Run(gpu.DefaultConfig(proto), k)
				if err != nil {
					t.Fatal(err)
				}
				if res.Metrics.Commits == 0 {
					t.Fatalf("no commits — workload not exercising transactions")
				}
				if err := tmtest.CheckAccounting(res.Metrics); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// fglock runs carry no transactions; the invariant degenerates to 0 == 0.
func TestAccountingInvariantsFGLock(t *testing.T) {
	k, err := workloads.Build("atm", workloads.FGLock, workloads.Params{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(gpu.DefaultConfig(gpu.ProtoFGLock), k)
	if err != nil {
		t.Fatal(err)
	}
	if err := tmtest.CheckAccounting(res.Metrics); err != nil {
		t.Error(err)
	}
}

// Truncated metrics must be refused outright: a run cut short mid-flight has
// lanes inside attempts, so the invariants would fail spuriously.
func TestCheckAccountingRefusesTruncated(t *testing.T) {
	m := stats.NewMetrics()
	m.Truncated = true
	err := tmtest.CheckAccounting(m)
	if err == nil {
		t.Fatal("CheckAccounting accepted truncated metrics")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error does not explain the refusal: %v", err)
	}
	// The same tallies untruncated pass (all-zero is a valid fglock run).
	m.Truncated = false
	if err := tmtest.CheckAccounting(m); err != nil {
		t.Fatalf("complete all-zero metrics refused: %v", err)
	}
}
