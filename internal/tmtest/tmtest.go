// Package tmtest provides shared test doubles for protocol unit tests.
package tmtest

import "getm/internal/sim"

// Transport is a tm.Transport double with a fixed per-message latency. It
// preserves the point-to-point FIFO property the real crossbar provides and
// counts traffic per direction.
type Transport struct {
	Eng     *sim.Engine
	Latency sim.Cycle
	Cores   int

	Up        uint64
	Down      uint64
	Delivered uint64
}

// NewTransport builds a transport over eng.
func NewTransport(eng *sim.Engine, latency sim.Cycle, cores int) *Transport {
	return &Transport{Eng: eng, Latency: latency, Cores: cores}
}

// ToPartition implements tm.Transport.
func (f *Transport) ToPartition(core, partition, bytes int, deliver func()) {
	f.Up += uint64(bytes)
	f.Eng.Schedule(f.Latency, func() { f.Delivered++; deliver() })
}

// ToCore implements tm.Transport.
func (f *Transport) ToCore(partition, core, bytes int, deliver func()) {
	f.Down += uint64(bytes)
	f.Eng.Schedule(f.Latency, func() { f.Delivered++; deliver() })
}

// BroadcastToCores implements tm.Transport.
func (f *Transport) BroadcastToCores(partition, bytes int, deliver func(core int)) {
	n := f.Cores
	if n <= 0 {
		n = 1
	}
	for c := 0; c < n; c++ {
		c := c
		f.Down += uint64(bytes)
		f.Eng.Schedule(f.Latency, func() { deliver(c) })
	}
}
