package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPutBatchRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)

	recs := make([]Record, 0, 8)
	for i := 0; i < 8; i++ {
		recs = append(recs, Record{
			Key:     fmt.Sprintf("batchkey-%d", i),
			Desc:    fmt.Sprintf("cell %d", i),
			Metrics: sampleMetrics(uint64(i)),
		})
	}
	if err := s.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		got, ok := s.Get(rec.Key)
		if !ok {
			t.Fatalf("record %d missing after PutBatch", i)
		}
		if !reflect.DeepEqual(got, rec.Metrics) {
			t.Fatalf("record %d round trip not exact:\nput %+v\ngot %+v", i, rec.Metrics, got)
		}
	}
}

func TestPutBatchMatchesPutBytes(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, b := Open(dirA), Open(dirB)
	m := sampleMetrics(7)

	if err := a.Put("samekey", "desc", m); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBatch([]Record{{Key: "samekey", Desc: "desc", Metrics: m}}); err != nil {
		t.Fatal(err)
	}
	ba, err := os.ReadFile(filepath.Join(dirA, "samekey.json"))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(filepath.Join(dirB, "samekey.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatal("PutBatch produced different on-disk bytes than Put for the same record")
	}
}

func TestPutBatchSkipsNilRefusesTruncatedKeepsRest(t *testing.T) {
	s := Open(t.TempDir())
	trunc := sampleMetrics(1)
	trunc.Truncated = true
	err := s.PutBatch([]Record{
		{Key: "good1", Desc: "a", Metrics: sampleMetrics(2)},
		{Key: "nilrec", Desc: "b", Metrics: nil},
		{Key: "truncrec", Desc: "c", Metrics: trunc},
		{Key: "good2", Desc: "d", Metrics: sampleMetrics(3)},
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated record accepted (err=%v)", err)
	}
	for _, key := range []string{"good1", "good2"} {
		if _, ok := s.Get(key); !ok {
			t.Fatalf("good record %s dropped because a sibling failed", key)
		}
	}
	for _, key := range []string{"nilrec", "truncrec"} {
		if _, ok := s.Get(key); ok {
			t.Fatalf("record %s persisted when it must not be", key)
		}
	}
}

func TestPutBatchEmptyAndDegraded(t *testing.T) {
	s := Open(t.TempDir())
	if err := s.PutBatch(nil); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	// A degraded store swallows writes exactly like Put does.
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	deg := Open(filepath.Join(dir, "sub"))
	if deg.Degraded() == nil {
		t.Skip("running as a user unaffected by directory permissions")
	}
	if err := deg.PutBatch([]Record{{Key: "k", Desc: "d", Metrics: sampleMetrics(1)}}); err != nil {
		t.Fatalf("degraded PutBatch errored instead of no-op: %v", err)
	}
}

func TestPutBatchLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	recs := []Record{
		{Key: "t1", Desc: "a", Metrics: sampleMetrics(1)},
		{Key: "t2", Desc: "b", Metrics: sampleMetrics(2)},
	}
	if err := s.PutBatch(recs); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".put-") {
			t.Fatalf("stray temp file %s after a successful batch", e.Name())
		}
	}
}
