// Package store persists simulation results on disk so that no process ever
// re-pays for a run a previous process already completed. Cycle-level
// simulation is the expensive resource — full experiment grids take orders of
// magnitude longer than the analysis that consumes them — so the store is the
// durable second tier behind harness.Runner's in-memory cache and the engine
// of the CLIs' -store/-resume flags.
//
// Design:
//
//   - Content-addressed: a record is keyed by Key, a SHA-256 over the
//     canonical JSON of the gpu.Config (non-semantic fields zeroed), the
//     workload parameters (benchmark, scale, seed), and SchemaVersion.
//     Changing any input that could change the result — or the record schema
//     itself — changes the key, so stale records are never returned; they are
//     simply unreachable and the run recomputes.
//   - Crash-safe: writes go to a temp file in the store directory, are
//     fsynced, and then atomically renamed into place. A crash mid-write
//     leaves at worst an ignored temp file; readers only ever see complete
//     records. Atomic rename also makes concurrent writers safe: two
//     processes racing on one key both write valid, identical (simulations
//     are deterministic) records, and either rename winning is correct.
//   - Self-verifying: each record carries a SHA-256 checksum of its payload
//     in a header line. A bit-flipped, truncated, or otherwise mangled record
//     fails verification and reads as a miss, so the cell silently re-runs.
//   - Degradable: an unwritable directory does not fail the run. Open returns
//     a degraded store whose Get always misses and whose Put is a no-op;
//     Degraded reports why so callers can warn once and continue in-memory.
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"getm/internal/gpu"
	"getm/internal/policy"
	"getm/internal/stats"
)

// SchemaVersion is baked into every key; bump it whenever the meaning of a
// stored result changes (metrics fields, simulator semantics, key inputs) so
// every old record is invalidated at once.
const SchemaVersion = 1

// header is the first line of every record file: magic, schema, and the hex
// SHA-256 of the payload bytes that follow.
const magic = "getmstore"

// Record is one persisted simulation result.
type Record struct {
	// Key is the content address (also the file's base name).
	Key string `json:"key"`
	// Desc is a human-readable cell label (e.g. "getm|ht-h|c8|n0|m0|g0"),
	// carried for store diffing and logs; it does not affect the key.
	Desc string `json:"desc"`
	// Metrics is the run's measurement snapshot.
	Metrics *stats.Metrics `json:"metrics"`
}

// FillFunc fetches the raw record file for a key from somewhere other than
// the local directory (in practice: a cluster peer's /v1/store endpoint). It
// returns the complete record bytes — header line plus payload — and whether
// the fetch found anything. The bytes are verified exactly like a local file
// before they are trusted, so a lying or corrupt source degrades to a miss.
type FillFunc func(key string) ([]byte, bool)

// Store is an on-disk result store rooted at one directory. The zero value
// is not usable; call Open. All methods are safe for concurrent use from any
// number of goroutines and processes sharing the directory.
type Store struct {
	dir  string
	err  error // non-nil: degraded, all operations are no-ops
	fill atomic.Pointer[FillFunc]
}

// Open roots a store at dir, creating it if needed. Open never fails: if the
// directory cannot be created or written, the returned store is degraded —
// Get always misses and Put does nothing — and Degraded reports the cause so
// the caller can warn and continue with in-memory caching only.
func Open(dir string) *Store {
	s := &Store{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.err = err
		return s
	}
	// Probe writability now, not at the first Put deep inside a run.
	f, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		s.err = err
		return s
	}
	f.Close()
	os.Remove(f.Name())
	return s
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Degraded returns the reason the store is operating as a no-op (unwritable
// directory), or nil if it is fully functional.
func (s *Store) Degraded() error { return s.err }

// Key returns the canonical content address for one simulation: the hex
// SHA-256 of SchemaVersion, the gpu.Config, and the workload parameters.
// Fields that cannot change the (completed) result — Trace, Record,
// CycleBudget — are zeroed first, so e.g. a traced run and an untraced run
// share a record (they are cycle-identical by construction). Shards is
// collapsed to the semantics class that actually executed (0 serial, 1
// sharded): every Shards >= 1 worker count produces identical results, but
// serial and sharded runs are distinct classes and never share a record.
//
// A non-zero cfg.Policy is canonicalized into the Protocol name before
// hashing (the field itself is excluded from JSON): a preset point collapses
// to its legacy protocol name, so e.g. the GETM preset and the "getm" string
// share every existing content address and stored sweeps stay warm; any
// other matrix point keys as "policy:" + its canonical axis tuple.
func Key(cfg gpu.Config, bench string, scale float64, seed uint64) string {
	if cfg.Shards > 0 && gpu.Shardable(cfg) {
		cfg.Shards = 1
	} else {
		cfg.Shards = 0
	}
	if !cfg.Policy.IsZero() {
		if name, ok := policy.PresetName(cfg.Policy); ok {
			cfg.Protocol = gpu.Protocol(name)
		} else {
			cfg.Protocol = gpu.Protocol("policy:" + cfg.Policy.Canonical())
		}
		cfg.Policy = policy.Policy{}
	}
	cfg.Trace = nil
	cfg.Record = false
	cfg.CycleBudget = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		// All Config fields are plain data; this cannot happen. Degrade to a
		// key that never collides with a real one rather than panicking.
		return "unkeyable"
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s/v%d\n", magic, SchemaVersion)
	h.Write(b)
	fmt.Fprintf(h, "\n%s|%g|%d", bench, scale, seed)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+".json")
}

// Put persists one result under key. Degraded stores and nil metrics are
// no-ops. The write is atomic (temp file + fsync + rename), so concurrent
// readers and writers — in this or any other process — never observe a
// partial record.
func (s *Store) Put(key, desc string, m *stats.Metrics) error {
	if s.err != nil || m == nil {
		return nil
	}
	if m.Truncated {
		// A truncated snapshot persisted as a complete record would be served
		// forever after as the cell's true result. Callers already skip
		// truncated runs; this is the backstop that makes the invariant local.
		return fmt.Errorf("store: refusing to persist truncated metrics for %s", key)
	}
	payload, err := json.Marshal(Record{Key: key, Desc: desc, Metrics: m})
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", key, err)
	}
	sum := sha256.Sum256(payload)
	f, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "%s %d %s\n", magic, SchemaVersion, hex.EncodeToString(sum[:]))
	w.Write(payload)
	if err := w.Flush(); err == nil {
		err = f.Sync()
	} else {
		f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	return nil
}

// PutBatch persists a set of records as one batched commit: every record's
// temp file is written first, then all are fsynced together, then all are
// renamed into place, and finally the directory itself is synced so the
// renames are durable. Each individual record keeps the Put crash-safety
// contract (a reader only ever sees a complete, checksummed file); the batch
// merely clusters the expensive syncs so a write-behind caller pays for them
// once per flush instead of once per result. Records with nil metrics are
// skipped; truncated metrics are refused like Put refuses them. Failures are
// per-record and joined — one bad record does not abort the rest.
func (s *Store) PutBatch(recs []Record) error {
	if s.err != nil || len(recs) == 0 {
		return nil
	}
	type staged struct {
		f   *os.File
		tmp string
		key string
	}
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	stagedRecs := make([]staged, 0, len(recs))

	// Phase 1: write every temp file (buffered, no sync yet).
	for _, rec := range recs {
		if rec.Metrics == nil {
			continue
		}
		if rec.Metrics.Truncated {
			fail("store: refusing to persist truncated metrics for %s", rec.Key)
			continue
		}
		payload, err := json.Marshal(rec)
		if err != nil {
			fail("store: encode %s: %w", rec.Key, err)
			continue
		}
		sum := sha256.Sum256(payload)
		f, err := os.CreateTemp(s.dir, ".put-*")
		if err != nil {
			fail("store: %w", err)
			continue
		}
		w := bufio.NewWriter(f)
		fmt.Fprintf(w, "%s %d %s\n", magic, SchemaVersion, hex.EncodeToString(sum[:]))
		w.Write(payload)
		if err := w.Flush(); err != nil {
			f.Close()
			os.Remove(f.Name())
			fail("store: write %s: %w", rec.Key, err)
			continue
		}
		stagedRecs = append(stagedRecs, staged{f: f, tmp: f.Name(), key: rec.Key})
	}

	// Phase 2+3: sync all staged files back to back, then rename them into
	// place. Issuing the syncs together lets the kernel coalesce the flushes.
	committed := 0
	for _, st := range stagedRecs {
		err := st.f.Sync()
		if cerr := st.f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(st.tmp, s.path(st.key))
		}
		if err != nil {
			os.Remove(st.tmp)
			fail("store: commit %s: %w", st.key, err)
			continue
		}
		committed++
	}

	// Phase 4: one directory sync makes every rename in the batch durable.
	if committed > 0 {
		if d, err := os.Open(s.dir); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return errors.Join(errs...)
}

// SetFill installs a read-through fill source consulted when Get misses
// locally. Filled bytes are verified like any record file and, on success,
// written through to the local directory so the next read is local. A nil
// fill (the default) restores plain local-only reads. Safe to call
// concurrently with readers, though the usual pattern is to install the fill
// once at startup.
func (s *Store) SetFill(fill FillFunc) {
	if fill == nil {
		s.fill.Store(nil)
		return
	}
	s.fill.Store(&fill)
}

// Get returns the stored metrics for key, or ok=false on any miss: no
// record, degraded store, or a record that fails checksum/schema/shape
// verification (corruption reads as a miss so the cell re-runs). When a fill
// source is installed (SetFill), a local miss consults it before giving up;
// a verified filled record is written through to the local directory.
func (s *Store) Get(key string) (*stats.Metrics, bool) {
	rec, err := s.load(key)
	if err == nil {
		return rec.Metrics, true
	}
	fp := s.fill.Load()
	if fp == nil || s.err != nil || !validKey(key) {
		return nil, false
	}
	raw, ok := (*fp)(key)
	if !ok {
		return nil, false
	}
	rec, err = decode(key, raw)
	if err != nil {
		return nil, false
	}
	// Write-through: commit the verified bytes locally with the same
	// temp+fsync+rename discipline as Put, so the fill is paid once per node.
	// A write failure is not a read failure — the record is already verified.
	s.putRaw(key, raw)
	return rec.Metrics, true
}

// ReadRaw returns the complete, verified raw record file for key — header
// line plus payload — from the local directory only. It never consults the
// fill source (it is the serving side of a fill, and must not recurse into
// peer fetches). Malformed keys and unverifiable records read as misses.
func (s *Store) ReadRaw(key string) ([]byte, bool) {
	if s.err != nil || !validKey(key) {
		return nil, false
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	if _, err := decode(key, data); err != nil {
		return nil, false
	}
	return data, true
}

// putRaw atomically commits pre-encoded record bytes (already verified by
// decode) under key, with the same temp-file + fsync + rename discipline as
// Put.
func (s *Store) putRaw(key string, data []byte) error {
	if s.err != nil {
		return nil
	}
	f, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", key, err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: commit %s: %w", key, err)
	}
	return nil
}

// validKey reports whether key looks like a content address (lowercase hex,
// no path metacharacters). It is the store-side backstop against a caller
// passing request-derived strings into filesystem paths; serving layers
// validate more strictly at the edge.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// load reads and verifies one record file.
func (s *Store) load(key string) (Record, error) {
	if s.err != nil {
		return Record{}, s.err
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return Record{}, err
	}
	return decode(key, data)
}

// decode verifies a raw record file: header shape, schema version, payload
// checksum, JSON validity, and key agreement.
func decode(key string, data []byte) (Record, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return Record{}, fmt.Errorf("store: %s: truncated header", key)
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != magic {
		return Record{}, fmt.Errorf("store: %s: bad header", key)
	}
	if fields[1] != fmt.Sprint(SchemaVersion) {
		return Record{}, fmt.Errorf("store: %s: schema %s, want %d", key, fields[1], SchemaVersion)
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return Record{}, fmt.Errorf("store: %s: checksum mismatch (corrupt or truncated record)", key)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("store: %s: %w", key, err)
	}
	if rec.Key != key {
		return Record{}, fmt.Errorf("store: %s: record claims key %s", key, rec.Key)
	}
	if rec.Metrics == nil {
		return Record{}, fmt.Errorf("store: %s: record has no metrics", key)
	}
	return rec, nil
}

// Keys lists the keys of every well-formed-looking record file (by name; the
// records themselves are verified on Get), sorted.
func (s *Store) Keys() ([]string, error) {
	if s.err != nil {
		return nil, s.err
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

// LoadDir opens dir read-only and returns every verifiable record in it,
// sorted by Desc then Key — the cell-by-cell view cmd/benchdiff diffs.
// Corrupt records are skipped, not fatal.
func LoadDir(dir string) ([]Record, error) {
	if _, err := os.Stat(dir); err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	keys, err := s.Keys()
	if err != nil {
		return nil, err
	}
	var recs []Record
	for _, k := range keys {
		rec, err := s.load(k)
		if err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Desc != recs[j].Desc {
			return recs[i].Desc < recs[j].Desc
		}
		return recs[i].Key < recs[j].Key
	})
	return recs, nil
}
