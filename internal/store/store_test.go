package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"getm/internal/gpu"
	"getm/internal/stats"
	"getm/internal/trace"
)

// sampleMetrics builds a metrics snapshot exercising every field shape:
// scalar counters, counter maps, histograms, and float accumulators with
// values that would expose lossy encoding.
func sampleMetrics(salt uint64) *stats.Metrics {
	m := stats.NewMetrics()
	m.TotalCycles = 123456789 + salt
	m.TxExecCycles = 1111 + salt
	m.TxWaitCycles = 2222
	m.Commits = 3333
	m.Aborts = 444
	m.AbortsByCause.Inc("war", 100)
	m.AbortsByCause.Inc("waw-raw", 200)
	m.AbortsByCause.Inc("stall-full", 144)
	m.XbarUpBytes = 5 << 20
	m.XbarDownBytes = 7 << 20
	m.SilentCommits = 55
	for i := 0; i < 40; i++ {
		m.MetaAccessCycles.Add(i % 9)
	}
	m.StallBufMaxOccupancy = 17
	m.StallBufPerAddr.Add(0.1)
	m.StallBufPerAddr.Add(0.2) // sum 0.30000000000000004: exactness probe
	m.StallBufPerAddr.Add(float64(salt) / 3)
	m.Extra.Inc("llc-hits", 987654321)
	m.Extra.Inc("rollovers", 1)
	return m
}

func TestStoreRoundTripExact(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	if err := s.Degraded(); err != nil {
		t.Fatal(err)
	}
	want := sampleMetrics(7)
	key := Key(gpu.DefaultConfig(gpu.ProtoGETM), "ht-h", 1.0, 42)
	if err := s.Put(key, "getm|ht-h", want); err != nil {
		t.Fatal(err)
	}

	// Read through a fresh handle, as a resumed process would.
	got, ok := Open(dir).Get(key)
	if !ok {
		t.Fatal("stored record not found")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip not exact:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestStoreMissingKey(t *testing.T) {
	s := Open(t.TempDir())
	if _, ok := s.Get("0000"); ok {
		t.Fatal("empty store returned a record")
	}
}

// Any corruption — a flipped payload byte, a flipped checksum, truncation,
// or outright garbage — must read as a miss, never as wrong data.
func TestStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	key := Key(gpu.DefaultConfig(gpu.ProtoGETM), "atm", 0.5, 1)
	if err := s.Put(key, "cell", sampleMetrics(1)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key+".json")
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mutate := map[string]func([]byte) []byte{
		"payload-bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-10] ^= 0x40
			return c
		},
		"header-sum-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len("getmstore 1 ")+3] ^= 0x01
			return c
		},
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":     func(b []byte) []byte { return nil },
		"garbage":   func(b []byte) []byte { return []byte("not a record at all") },
		"wrong-schema": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len("getmstore ")] = '9'
			return c
		},
	}
	for name, fn := range mutate {
		if err := os.WriteFile(path, fn(orig), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("%s: corrupt record accepted", name)
		}
	}

	// Restoring the original bytes restores the hit.
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Error("pristine record no longer readable")
	}
}

// Two handles on one directory (standing in for two processes) must not
// corrupt it under concurrent mixed put/get load: every record stays
// readable and correct throughout and afterwards.
func TestStoreConcurrentSharing(t *testing.T) {
	dir := t.TempDir()
	a, b := Open(dir), Open(dir)
	const keys = 8
	const rounds = 50

	keyOf := func(i int) string {
		return Key(gpu.DefaultConfig(gpu.ProtoGETM), fmt.Sprintf("bench-%d", i), 1, 42)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 4*rounds*keys)
	for _, s := range []*Store{a, b} {
		for w := 0; w < 2; w++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := 0; i < keys; i++ {
						k := keyOf(i)
						// Deterministic per-key payload: both writers agree,
						// as deterministic simulations do.
						if err := s.Put(k, fmt.Sprintf("cell-%d", i), sampleMetrics(uint64(i))); err != nil {
							errs <- err
							return
						}
						if m, ok := s.Get(k); ok {
							if m.TotalCycles != 123456789+uint64(i) {
								errs <- fmt.Errorf("key %d: read wrong payload (cycles %d)", i, m.TotalCycles)
								return
							}
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := Open(dir).Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != keys {
		t.Fatalf("store holds %d records, want %d (leftover temp files or losses)", len(got), keys)
	}
	for i := 0; i < keys; i++ {
		m, ok := a.Get(keyOf(i))
		if !ok {
			t.Fatalf("key %d unreadable after concurrent load", i)
		}
		if !reflect.DeepEqual(m, sampleMetrics(uint64(i))) {
			t.Fatalf("key %d: payload corrupted", i)
		}
	}
}

// An unopenable directory degrades to a warning-carrying no-op store rather
// than failing the run.
func TestStoreDegradedUnwritable(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A path under a regular file can never become a directory.
	s := Open(filepath.Join(file, "sub"))
	if s.Degraded() == nil {
		t.Fatal("store under a file reported healthy")
	}
	if err := s.Put("k", "d", sampleMetrics(0)); err != nil {
		t.Fatalf("degraded Put should be a silent no-op, got %v", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("degraded Get returned a record")
	}
	if _, err := s.Keys(); err == nil {
		t.Fatal("degraded Keys should report the cause")
	}
}

// The key must change with every semantic input and schema version, and must
// ignore the observation-only fields (Trace, Record, CycleBudget).
func TestKeySensitivity(t *testing.T) {
	base := gpu.DefaultConfig(gpu.ProtoGETM)
	k0 := Key(base, "ht-h", 1.0, 42)

	distinct := map[string]string{}
	add := func(name, key string) {
		if key == k0 {
			t.Errorf("%s: key unchanged", name)
		}
		if prev, dup := distinct[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		distinct[key] = name
	}

	c := base
	c.Cores = 56
	add("cores", Key(c, "ht-h", 1.0, 42))
	c = base
	c.GETM.GranularityBytes = 64
	add("granularity", Key(c, "ht-h", 1.0, 42))
	c = base
	c.Core.MaxTxWarps = 4
	add("conc", Key(c, "ht-h", 1.0, 42))
	c = base
	c.Protocol = gpu.ProtoWarpTM
	add("protocol", Key(c, "ht-h", 1.0, 42))
	c = base
	c.MaxCycles = 1
	add("max-cycles", Key(c, "ht-h", 1.0, 42))
	add("bench", Key(base, "atm", 1.0, 42))
	add("scale", Key(base, "ht-h", 0.5, 42))
	add("seed", Key(base, "ht-h", 1.0, 43))

	// Observation-only fields share the completed run's record.
	c = base
	c.Record = true
	c.CycleBudget = 999
	c.Trace = &trace.Options{SampleInterval: 100}
	if Key(c, "ht-h", 1.0, 42) != k0 {
		t.Error("Trace/Record/CycleBudget changed the key; traced runs are cycle-identical and must share records")
	}

	// Stable across calls.
	if Key(base, "ht-h", 1.0, 42) != k0 {
		t.Error("key not deterministic")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir)
	for i := 0; i < 3; i++ {
		key := Key(gpu.DefaultConfig(gpu.ProtoGETM), fmt.Sprintf("b%d", i), 1, 42)
		if err := s.Put(key, fmt.Sprintf("desc-%d", i), sampleMetrics(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// A corrupt file is skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("LoadDir returned %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Desc != fmt.Sprintf("desc-%d", i) {
			t.Fatalf("records not sorted by desc: %v", recs)
		}
	}
	if _, err := LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("LoadDir on a missing directory should fail")
	}
}

// Truncated metrics must never enter the store, even if a caller forgets the
// guard: a partial snapshot persisted as a complete record would be served
// as the cell's true result forever after.
func TestPutRefusesTruncated(t *testing.T) {
	s := Open(t.TempDir())
	m := stats.NewMetrics()
	m.TotalCycles = 123
	m.Truncated = true
	if err := s.Put("deadbeef", "partial", m); err == nil {
		t.Fatal("Put accepted truncated metrics")
	}
	if keys, _ := s.Keys(); len(keys) != 0 {
		t.Fatalf("truncated record reached disk: %v", keys)
	}
	m.Truncated = false
	if err := s.Put("deadbeef", "complete", m); err != nil {
		t.Fatalf("Put refused complete metrics: %v", err)
	}
	if got, ok := s.Get("deadbeef"); !ok || got.TotalCycles != 123 {
		t.Fatalf("round-trip failed: %v %v", got, ok)
	}
}
