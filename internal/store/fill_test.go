package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"getm/internal/gpu"
)

// TestStoreFillWriteThrough: a Get that misses locally consults the fill
// source, verifies the bytes, returns the metrics, and commits the record
// locally so the next Get is a pure local hit.
func TestStoreFillWriteThrough(t *testing.T) {
	remote := Open(t.TempDir())
	want := sampleMetrics(3)
	key := Key(gpu.DefaultConfig(gpu.ProtoGETM), "ht-h", 1.0, 9)
	if err := remote.Put(key, "getm|ht-h", want); err != nil {
		t.Fatal(err)
	}
	raw, ok := remote.ReadRaw(key)
	if !ok {
		t.Fatal("ReadRaw missed a record Put just committed")
	}

	local := Open(t.TempDir())
	fills := 0
	local.SetFill(func(k string) ([]byte, bool) {
		fills++
		if k != key {
			t.Fatalf("fill asked for %q, want %q", k, key)
		}
		return raw, true
	})

	got, ok := local.Get(key)
	if !ok {
		t.Fatal("filled Get missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filled metrics differ:\ngot  %+v\nwant %+v", got, want)
	}
	if fills != 1 {
		t.Fatalf("fill consulted %d times, want 1", fills)
	}

	// Write-through: the record is now local — a second Get must not touch
	// the fill, and the on-disk bytes must match the remote's exactly.
	if _, ok := local.Get(key); !ok {
		t.Fatal("second Get missed after write-through")
	}
	if fills != 1 {
		t.Fatalf("fill consulted %d times after write-through, want 1", fills)
	}
	localRaw, ok := local.ReadRaw(key)
	if !ok {
		t.Fatal("write-through left no verifiable local record")
	}
	if string(localRaw) != string(raw) {
		t.Fatal("write-through bytes differ from the fill source's")
	}
}

// TestStoreFillRejectsCorrupt: a fill source returning mangled bytes must
// read as a miss and must not pollute the local directory.
func TestStoreFillRejectsCorrupt(t *testing.T) {
	remote := Open(t.TempDir())
	key := Key(gpu.DefaultConfig(gpu.ProtoGETM), "ht-l", 1.0, 9)
	if err := remote.Put(key, "getm|ht-l", sampleMetrics(1)); err != nil {
		t.Fatal(err)
	}
	raw, _ := remote.ReadRaw(key)

	local := Open(t.TempDir())
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-3] ^= 0x40
	local.SetFill(func(string) ([]byte, bool) { return corrupt, true })
	if _, ok := local.Get(key); ok {
		t.Fatal("corrupt fill bytes returned as a hit")
	}
	ents, err := os.ReadDir(local.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".json" {
			t.Fatalf("corrupt fill wrote %s through to disk", e.Name())
		}
	}

	// A fill that reports a miss is just a miss.
	local.SetFill(func(string) ([]byte, bool) { return nil, false })
	if _, ok := local.Get(key); ok {
		t.Fatal("fill miss returned as a hit")
	}

	// Clearing the fill restores local-only reads.
	local.SetFill(nil)
	if _, ok := local.Get(key); ok {
		t.Fatal("cleared fill still serving records")
	}
}

// TestStoreReadRawLocalOnly: ReadRaw never consults the fill source and
// rejects malformed keys outright (it is the serving side of a peer fetch,
// where the key arrives from the network).
func TestStoreReadRawLocalOnly(t *testing.T) {
	s := Open(t.TempDir())
	s.SetFill(func(string) ([]byte, bool) {
		t.Fatal("ReadRaw consulted the fill source")
		return nil, false
	})
	key := Key(gpu.DefaultConfig(gpu.ProtoGETM), "atm", 1.0, 9)
	if _, ok := s.ReadRaw(key); ok {
		t.Fatal("ReadRaw hit on an empty store")
	}
	for _, bad := range []string{"", "../../etc/passwd", "ABCDEF", "0123zz", string(make([]byte, 4096))} {
		if _, ok := s.ReadRaw(bad); ok {
			t.Fatalf("ReadRaw accepted malformed key %q", bad)
		}
	}
}
