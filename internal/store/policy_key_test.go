package store

import (
	"testing"

	"getm/internal/gpu"
	"getm/internal/policy"
)

// Golden content addresses captured before the policy matrix existed. These
// are the API-stability contract for result stores on disk: selecting a
// preset by matrix point must hash to the same record a protocol-name run
// wrote years of campaigns under. A change here silently orphans every
// existing store directory.
func TestKeyStabilityAcrossPolicyRedesign(t *testing.T) {
	golden := []struct {
		proto      string
		defaultKey string // Key(DefaultConfig, "atm", 1, 42)
		scaledKey  string // Key(ScaledConfig, "ht-h", 0.5, 7)
	}{
		{"getm",
			"6b168f7f1ce79495f210b6799b01dc5b29a145912115481bb08f7af8830cb0ac",
			"bfc2928067db9572873eddc614496942957673e927cdfa432a5c0d3ae4e66ff6"},
		{"warptm",
			"48390a2f364f005ef4f880081496120644d7b28f7f5d10f7a15f7b85830979ee",
			"6d7aa328859ebde1ab8b4541da57abdbd23d7396c56643503e263947fba0d953"},
		{"warptm-el",
			"2011ce248e04390a425d53280820c6a8beef1794778fdb9571ca67a319abd0a8",
			"a5c02d5d5e6357b628fa8d7a9d88650b580cd6b5243714378de0f08f52cf94db"},
		{"eapg",
			"5060b5b9f427d294df2d2460465cb536e4558fa96e48e2128f5330ec8acbac3b",
			"632394f2b35e88b0f13103338d40e270bdd0c96334aebbe44fd6d71747a1d8ba"},
		{"fglock",
			"390ef078c30da6ead996e56883c16a1ae3d437b314a43b50ecc8c412e628db52",
			"669bd5ac757fdd83f08410ac63f651a903d8601b0cafaab47227b7cfeeba6717"},
	}
	for _, g := range golden {
		if got := Key(gpu.DefaultConfig(gpu.Protocol(g.proto)), "atm", 1, 42); got != g.defaultKey {
			t.Errorf("%s default key drifted:\ngot  %s\nwant %s", g.proto, got, g.defaultKey)
		}
		if got := Key(gpu.ScaledConfig(gpu.Protocol(g.proto)), "ht-h", 0.5, 7); got != g.scaledKey {
			t.Errorf("%s scaled key drifted:\ngot  %s\nwant %s", g.proto, got, g.scaledKey)
		}

		// Selecting the same protocol as a matrix preset must be
		// key-invisible: same content address, so old records are reused.
		if preset, ok := policy.Preset(g.proto); ok {
			cfg := gpu.DefaultConfig(gpu.Protocol(g.proto))
			cfg.Policy = preset
			if got := Key(cfg, "atm", 1, 42); got != g.defaultKey {
				t.Errorf("%s preset-policy key diverged from name key:\ngot  %s\nwant %s",
					g.proto, got, g.defaultKey)
			}
			// The Protocol display string may be anything when a preset
			// policy is set — the key must canonicalize it away.
			cfg.Protocol = gpu.Protocol(preset.Canonical())
			if got := Key(cfg, "atm", 1, 42); got != g.defaultKey {
				t.Errorf("%s preset key depends on display Protocol string:\ngot %s", g.proto, got)
			}
		}
	}
}

// Non-preset matrix points must get their own distinct, deterministic
// addresses — never colliding with a preset's records or each other.
func TestKeyNonPresetPolicies(t *testing.T) {
	presetKeys := map[string]bool{}
	for _, proto := range []string{"getm", "warptm", "warptm-el", "eapg", "fglock"} {
		presetKeys[Key(gpu.DefaultConfig(gpu.Protocol(proto)), "atm", 1, 42)] = true
	}

	seen := map[string]string{}
	for _, p := range policy.Valid() {
		if _, isPreset := policy.PresetName(p); isPreset {
			continue
		}
		cfg := gpu.DefaultConfig(gpu.Protocol(p.String()))
		cfg.Policy = p
		k1 := Key(cfg, "atm", 1, 42)
		if presetKeys[k1] {
			t.Errorf("non-preset %v collides with a preset key", p)
		}
		if prev, dup := seen[k1]; dup {
			t.Errorf("points %v and %s share key %s", p, prev, k1)
		}
		seen[k1] = p.Canonical()
		// Deterministic, and independent of the display Protocol string.
		cfg.Protocol = "anything"
		if k2 := Key(cfg, "atm", 1, 42); k2 != k1 {
			t.Errorf("%v key depends on display Protocol string", p)
		}
	}
	if len(seen) != 8 {
		t.Errorf("%d non-preset points keyed, want 8", len(seen))
	}
}
