package area

import (
	"math"
	"strings"
	"testing"
)

// within checks got against the paper's published value with a tolerance.
func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/want > tolFrac {
		t.Errorf("%s = %.4f, paper says %.4f (off by %.0f%%)",
			name, got, want, 100*math.Abs(got-want)/want)
	}
}

func TestTableVTotalsMatchPaper(t *testing.T) {
	m := defaultMachine()
	wtm := WarpTMInventory(m)
	ea := EAPGInventory(m)
	g := GETMInventory(m)
	within(t, "WarpTM area", wtm.Area(), 2.68, 0.05)
	within(t, "WarpTM power", wtm.Power(), 390.05, 0.05)
	within(t, "EAPG area", ea.Area(), 3.574, 0.05)
	within(t, "EAPG power", ea.Power(), 618.95, 0.05)
	within(t, "GETM area", g.Area(), 0.736, 0.05)
	within(t, "GETM power", g.Power(), 176.98, 0.05)
}

func TestHeadlineRatios(t *testing.T) {
	m := defaultMachine()
	areaRatio := WarpTMInventory(m).Area() / GETMInventory(m).Area()
	powerRatio := WarpTMInventory(m).Power() / GETMInventory(m).Power()
	within(t, "area ratio", areaRatio, 3.6, 0.08)
	within(t, "power ratio", powerRatio, 2.2, 0.08)
	eaArea := EAPGInventory(m).Area() / GETMInventory(m).Area()
	eaPower := EAPGInventory(m).Power() / GETMInventory(m).Power()
	within(t, "EAPG area ratio", eaArea, 4.9, 0.08)
	within(t, "EAPG power ratio", eaPower, 3.6, 0.08)
}

func TestPerStructureValues(t *testing.T) {
	m := defaultMachine()
	wants := map[string][2]float64{ // name -> {area, power}
		"CU: LWHR tables":        {0.108, 21.84},
		"CU: LWHR filters":       {0.03, 12.00},
		"CU: entry arrays":       {0.402, 100.62},
		"CU: read-write buffers": {1.734, 132.48},
		"TCD: first-read tables": {0.375, 113.25},
		"TCD: last-write buffer": {0.031, 9.86},
		"CU: write buffers":      {0.522, 85.56},
		"VU: precise tables":     {0.181, 69.59},
		"VU: approximate tables": {0.018, 8.51},
		"warpts tables":          {0.015, 10.65},
		"stall buffers":          {0.0004, 2.67},
	}
	check := func(inv Inventory) {
		for _, s := range inv.Structures {
			if w, ok := wants[s.Name]; ok {
				within(t, s.Name+" area", s.Area(), w[0], 0.10)
				within(t, s.Name+" power", s.Power(), w[1], 0.10)
			}
		}
	}
	check(WarpTMInventory(m))
	check(GETMInventory(m))
}

func TestInventoryScalesWithConfig(t *testing.T) {
	m := defaultMachine()
	m.GETM.PreciseEntries *= 2
	g2 := GETMInventory(m)
	m.GETM.PreciseEntries /= 2
	g1 := GETMInventory(m)
	if g2.Area() <= g1.Area() {
		t.Fatal("doubling the precise table should grow GETM's area")
	}
	m.Cores = 56
	m.Partitions = 8
	wtm56 := WarpTMInventory(m)
	m.Cores, m.Partitions = 15, 6
	wtm15 := WarpTMInventory(m)
	if wtm56.Area() <= wtm15.Area() {
		t.Fatal("56-core config should grow WarpTM's area")
	}
}

func TestTableVRenders(t *testing.T) {
	out := TableV()
	for _, want := range []string{"total WarpTM", "total EAPG", "total GETM", "lower area"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}
