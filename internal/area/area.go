// Package area estimates the silicon area and power cost of each protocol's
// hardware structures (the paper's Table V).
//
// The paper models every structure in CACTI 6.5 at 32 nm, "conservatively
// assuming that all structures are accessed every cycle and accounting for
// the higher validation unit clock". CACTI itself is not available here, so
// this package uses per-organization coefficients (area per KB, power per
// KB) fitted to the paper's published CACTI outputs, applied to structure
// sizes derived from the simulator configuration. Because sizes come from
// the configuration, the model responds to parameter changes (metadata table
// sweeps, 56-core scale-up) the way the paper's methodology would, and the
// headline ratios (GETM ≈ 3.6x lower area, 2.2x lower power than WarpTM)
// follow from the structure inventories rather than from transcription.
package area

import (
	"fmt"
	"strings"

	"getm/internal/core"
	"getm/internal/warptm"
)

// Structure is one hardware table/buffer in a protocol's inventory.
type Structure struct {
	Name string
	// KBytesEach is the per-instance capacity; Instances is how many exist
	// on the chip (per partition or per core).
	KBytesEach float64
	Instances  int
	// AreaPerKB (mm²) and PowerPerKB (mW) are the fitted CACTI coefficients
	// for this structure's organization (port count, access width, clock).
	AreaPerKB  float64
	PowerPerKB float64
}

// TotalKB returns the chip-wide capacity.
func (s Structure) TotalKB() float64 { return s.KBytesEach * float64(s.Instances) }

// Area returns the chip-wide area in mm².
func (s Structure) Area() float64 { return s.TotalKB() * s.AreaPerKB }

// Power returns the chip-wide power (dynamic + static) in mW.
func (s Structure) Power() float64 { return s.TotalKB() * s.PowerPerKB }

// Inventory is a protocol's full structure list.
type Inventory struct {
	Protocol   string
	Structures []Structure
}

// Area sums chip-wide area (mm²).
func (inv Inventory) Area() float64 {
	var a float64
	for _, s := range inv.Structures {
		a += s.Area()
	}
	return a
}

// Power sums chip-wide power (mW).
func (inv Inventory) Power() float64 {
	var p float64
	for _, s := range inv.Structures {
		p += s.Power()
	}
	return p
}

// Machine describes the chip configuration the inventories scale with.
type Machine struct {
	Cores        int
	Partitions   int
	WarpsPerCore int
	GETM         core.Config
	WarpTM       warptm.Config
}

// Coefficients fitted to Table V's CACTI 6.5 runs (32 nm node). Keys are
// organization classes, not protocol names, so new structures reuse them.
const (
	// coefWideBuffer: 32-byte-wide commit-unit buffers at 700 MHz.
	coefWideBufArea = 0.0090 // mm²/KB
	coefWideBufPow  = 0.69   // mW/KB
	// coefTable: word-wide lookup tables at 1400 MHz.
	coefTableArea = 0.0035
	coefTablePow  = 1.00
	// coefFilter: small hashed filters (bloom/recency) at 1400 MHz.
	coefFilterArea = 0.0023
	coefFilterPow  = 0.80
	// coefTiny: register-file-like structures where decoder and port
	// overhead dominate.
	coefTinyArea = 0.0055
	coefTinyPow  = 3.70
)

// WarpTMInventory lists the WarpTM baseline's hardware (Table V top).
func WarpTMInventory(m Machine) Inventory {
	tcdKB := float64(m.WarpTM.TCDEntries) * 16 / 1024 / float64(m.Partitions)
	return Inventory{
		Protocol: "WarpTM",
		Structures: []Structure{
			{"CU: LWHR tables", 3, m.Partitions, coefTableArea * 1.7, coefTablePow * 1.2},
			{"CU: LWHR filters", 2, m.Partitions, coefFilterArea, coefFilterPow * 1.25},
			{"CU: entry arrays", 19, m.Partitions, coefTableArea, coefTablePow * 0.88},
			{"CU: read-write buffers", 32, m.Partitions, coefWideBufArea, coefWideBufPow},
			{"TCD: first-read tables", 12, m.Cores, coefFilterArea * 0.9, coefFilterPow * 0.79},
			{"TCD: last-write buffer", tcdKB, m.Partitions, coefFilterArea * 0.85, coefFilterPow * 0.77},
		},
	}
}

// EAPGInventory lists EAPG's additions on top of WarpTM (Table V middle).
func EAPGInventory(m Machine) Inventory {
	base := WarpTMInventory(m)
	inv := Inventory{Protocol: "EAPG", Structures: base.Structures}
	inv.Structures = append(inv.Structures,
		Structure{"CAT: conflict address table", 12, m.Cores, coefTableArea * 0.95, coefTablePow * 0.85},
		Structure{"RCT: reference count table", 15, m.Partitions, coefTableArea * 0.93, coefTablePow * 0.84},
	)
	return inv
}

// GETMInventory lists GETM's hardware (Table V bottom), sized from the GETM
// configuration: precise metadata entries are 16 B (tag, wts, rts, owner,
// #writes), approximate entries 8 B (wts, rts), warpts 4 B per warp, and the
// stall buffer ~7.5 B per entry.
func GETMInventory(m Machine) Inventory {
	g := m.GETM
	preciseKB := float64(g.PreciseEntries) * 16 / 1024 / float64(m.Partitions)
	approxKB := float64(g.ApproxEntries) * 8 / 1024 / float64(m.Partitions)
	warptsKB := float64(m.WarpsPerCore) * 4 / 1024
	stallKB := float64(g.StallLines*g.StallEntriesPerLine) * 7.5 / 1024
	return Inventory{
		Protocol: "GETM",
		Structures: []Structure{
			{"CU: write buffers", 16, m.Partitions, coefWideBufArea * 0.60, coefWideBufPow * 1.29},
			{"VU: precise tables", preciseKB, m.Partitions, coefTableArea * 0.81, coefTablePow * 1.09},
			{"VU: approximate tables", approxKB, m.Partitions, coefFilterArea, coefFilterPow * 1.33},
			{"warpts tables", warptsKB, m.Cores, coefTinyArea, coefTinyPow},
			{"stall buffers", stallKB, m.Partitions, coefTinyArea * 0.1, coefTinyPow},
		},
	}
}

// defaultMachine mirrors Table II.
func defaultMachine() Machine {
	return Machine{
		Cores:        15,
		Partitions:   6,
		WarpsPerCore: 48,
		GETM:         core.DefaultConfig(),
		WarpTM:       warptm.DefaultConfig(),
	}
}

// TableV renders the full Table V comparison for the default machine.
func TableV() string { return TableVFor(defaultMachine()) }

// TableVFor renders Table V for an arbitrary machine configuration.
func TableVFor(m Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %12s %12s\n", "element", "area [mm2]", "power [mW]")
	render := func(inv Inventory) {
		for _, s := range inv.Structures {
			name := fmt.Sprintf("%s (%.1fKB x %d)", s.Name, s.KBytesEach, s.Instances)
			fmt.Fprintf(&b, "%-38s %12.3f %12.2f\n", name, s.Area(), s.Power())
		}
		fmt.Fprintf(&b, "%-38s %12.3f %12.2f\n\n", "total "+inv.Protocol, inv.Area(), inv.Power())
	}
	render(WarpTMInventory(m))
	render(EAPGInventory(m))
	getm := GETMInventory(m)
	render(getm)
	wtm := WarpTMInventory(m)
	ea := EAPGInventory(m)
	fmt.Fprintf(&b, "GETM vs WarpTM: %.1fx lower area, %.1fx lower power\n",
		wtm.Area()/getm.Area(), wtm.Power()/getm.Power())
	fmt.Fprintf(&b, "GETM vs EAPG:   %.1fx lower area, %.1fx lower power\n",
		ea.Area()/getm.Area(), ea.Power()/getm.Power())
	return b.String()
}
