package xbar

import "getm/internal/sim"

// ShardedCrossbar is the crossbar split across shard domains for the
// parallel engine: every source port lives in the domain that owns the
// sending component, every destination port in the receiving component's
// domain, and the 5-cycle traversal latency is exactly the cross-domain
// hand-off (it equals the shard quantum, so the conservative window bound
// holds by construction).
//
// Port serialization is split to match: the source port reserves its slot
// locally at send time (srcFree is only ever touched by the owning domain),
// while the destination port serializes arrivals when the head flit reaches
// it, in canonical delivery order. The serial Crossbar instead reserves the
// destination port at *send* time in global send order — an ordering no
// parallel execution can reconstruct without a global clock — so sharded
// runs are deterministic but not cycle-identical to serial ones (DESIGN.md
// §10 discusses the deviation).
//
// Traffic counters are per source port (again single-writer) and summed when
// read, so accounting is race-free without atomics.
type ShardedCrossbar struct {
	cfg    Config
	se     *sim.ShardedEngine
	srcDom []int // source port -> shard domain
	dstDom []int // destination port -> shard domain

	srcFree []sim.Cycle // owned by the source port's domain
	dstFree []sim.Cycle // owned by the destination port's domain

	srcBytes []uint64
	srcMsgs  []uint64
}

// NewSharded builds one crossbar direction over the sharded engine. srcDom
// and dstDom map each port to the shard domain owning it; the crossbar
// latency must be at least the engine quantum (the constructor enforces it).
func NewSharded(se *sim.ShardedEngine, cfg Config, srcDom, dstDom []int) *ShardedCrossbar {
	if cfg.SrcPorts <= 0 || cfg.DstPorts <= 0 {
		panic("xbar: need at least one port each way")
	}
	if cfg.FlitBytes <= 0 {
		panic("xbar: FlitBytes must be positive")
	}
	if len(srcDom) != cfg.SrcPorts || len(dstDom) != cfg.DstPorts {
		panic("xbar: domain map size mismatch")
	}
	if cfg.Latency < se.Quantum() {
		panic("xbar: latency below shard quantum")
	}
	return &ShardedCrossbar{
		cfg:      cfg,
		se:       se,
		srcDom:   srcDom,
		dstDom:   dstDom,
		srcFree:  make([]sim.Cycle, cfg.SrcPorts),
		dstFree:  make([]sim.Cycle, cfg.DstPorts),
		srcBytes: make([]uint64, cfg.SrcPorts),
		srcMsgs:  make([]uint64, cfg.SrcPorts),
	}
}

// Occupancy returns the port-cycles a message of size bytes occupies.
func (x *ShardedCrossbar) Occupancy(size int) sim.Cycle {
	if size <= 0 {
		return 1
	}
	return sim.Cycle((size + x.cfg.FlitBytes - 1) / x.cfg.FlitBytes)
}

// Send transmits size payload bytes from src to dst and runs deliver (in the
// destination port's domain) when the tail flit arrives. It must be called
// from the source port's domain.
func (x *ShardedCrossbar) Send(src, dst, size int, deliver func()) {
	if src < 0 || src >= x.cfg.SrcPorts || dst < 0 || dst >= x.cfg.DstPorts {
		panic("xbar: port out of range")
	}
	now := x.se.Domain(x.srcDom[src]).Now()
	occ := x.Occupancy(size)

	depart := now
	if x.srcFree[src] > depart {
		depart = x.srcFree[src]
	}
	x.srcFree[src] = depart + occ
	x.srcBytes[src] += uint64(size)
	x.srcMsgs[src]++

	// Head flit reaches the destination port Latency cycles after departure;
	// the destination domain then serializes the arrival against its port.
	x.se.Send(x.srcDom[src], x.dstDom[dst], depart-now+x.cfg.Latency, func() {
		dEng := x.se.Domain(x.dstDom[dst])
		arriveStart := dEng.Now()
		if x.dstFree[dst] > arriveStart {
			arriveStart = x.dstFree[dst]
		}
		x.dstFree[dst] = arriveStart + occ
		dEng.Schedule(arriveStart+occ-dEng.Now(), deliver)
	})
}

// Broadcast sends the same payload from src to every destination port;
// deliver runs once per destination with its port id.
func (x *ShardedCrossbar) Broadcast(src, size int, deliver func(dst int)) {
	for d := 0; d < x.cfg.DstPorts; d++ {
		dst := d
		x.Send(src, dst, size, func() { deliver(dst) })
	}
}

// Traffic returns total payload bytes and message count (post-run or
// single-threaded use only: the per-source counters are summed unlocked).
func (x *ShardedCrossbar) Traffic() (bytes, msgs uint64) {
	for i := range x.srcBytes {
		bytes += x.srcBytes[i]
		msgs += x.srcMsgs[i]
	}
	return bytes, msgs
}

// ShardedPair bundles the up and down directions, mirroring Pair.
type ShardedPair struct {
	Up   *ShardedCrossbar
	Down *ShardedCrossbar
}

// NewShardedPair builds both directions. coreDom maps each core to its shard
// domain; partDom maps each partition likewise.
func NewShardedPair(se *sim.ShardedEngine, cores, partitions int, cfg Config, coreDom, partDom []int) *ShardedPair {
	up := cfg
	up.SrcPorts, up.DstPorts = cores, partitions
	down := cfg
	down.SrcPorts, down.DstPorts = partitions, cores
	return &ShardedPair{
		Up:   NewSharded(se, up, coreDom, partDom),
		Down: NewSharded(se, down, partDom, coreDom),
	}
}

// TrafficBytes returns (up, down) payload totals.
func (p *ShardedPair) TrafficBytes() (uint64, uint64) {
	u, _ := p.Up.Traffic()
	d, _ := p.Down.Traffic()
	return u, d
}
