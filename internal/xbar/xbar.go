// Package xbar models the GPU's core ↔ memory-partition interconnect: two
// independent crossbars (one "up" toward the partitions, one "down" toward
// the cores), as in the paper's Table II (2 xbars, 5-cycle latency).
//
// Each crossbar serializes flits at its input and output ports: a message of
// n bytes occupies a port for ceil(n/flitBytes) cycles. Combined with the
// fixed traversal latency, delivery order between any (source, destination)
// pair matches send order — the point-to-point FIFO property that GETM's
// cleanup-before-retry sequence relies on (see DESIGN.md §4.2).
package xbar

import (
	"getm/internal/sim"
	"getm/internal/trace"
)

// Config describes one crossbar.
type Config struct {
	// Ports is the number of input ports (sources) and output ports
	// (destinations); the crossbar is full duplex between them.
	SrcPorts, DstPorts int
	// Latency is the fixed traversal time in cycles.
	Latency sim.Cycle
	// FlitBytes is the number of payload bytes transferred per cycle per
	// port (link width).
	FlitBytes int
}

// DefaultConfig mirrors Table II: 5-cycle latency; 288 GB/s at 1.4 GHz over 6
// partition ports is ~32 B/cycle per port.
func DefaultConfig(srcPorts, dstPorts int) Config {
	return Config{SrcPorts: srcPorts, DstPorts: dstPorts, Latency: 5, FlitBytes: 32}
}

// Crossbar is a single-direction interconnect.
type Crossbar struct {
	cfg     Config
	eng     *sim.Engine
	srcFree []sim.Cycle
	dstFree []sim.Cycle

	// Bytes accumulates total payload traffic (Fig 12).
	Bytes uint64
	// Messages counts deliveries.
	Messages uint64

	rec       *trace.Recorder
	traceKind trace.Kind
}

// SetTrace attaches the machine-wide event recorder (nil disables; the check
// on the send path is a single pointer compare). kind distinguishes the up
// and down directions in the trace.
func (x *Crossbar) SetTrace(rec *trace.Recorder, kind trace.Kind) {
	x.rec = rec
	x.traceKind = kind
}

// New creates a crossbar on the given engine.
func New(eng *sim.Engine, cfg Config) *Crossbar {
	if cfg.SrcPorts <= 0 || cfg.DstPorts <= 0 {
		panic("xbar: need at least one port each way")
	}
	if cfg.FlitBytes <= 0 {
		panic("xbar: FlitBytes must be positive")
	}
	return &Crossbar{
		cfg:     cfg,
		eng:     eng,
		srcFree: make([]sim.Cycle, cfg.SrcPorts),
		dstFree: make([]sim.Cycle, cfg.DstPorts),
	}
}

// Occupancy returns the port-cycles a message of size bytes occupies.
func (x *Crossbar) Occupancy(size int) sim.Cycle {
	if size <= 0 {
		return 1 // header-only flit
	}
	return sim.Cycle((size + x.cfg.FlitBytes - 1) / x.cfg.FlitBytes)
}

// Send transmits size payload bytes from src to dst and runs deliver when the
// tail flit arrives. It returns the delivery cycle.
func (x *Crossbar) Send(src, dst, size int, deliver func()) sim.Cycle {
	if src < 0 || src >= x.cfg.SrcPorts || dst < 0 || dst >= x.cfg.DstPorts {
		panic("xbar: port out of range")
	}
	now := x.eng.Now()
	occ := x.Occupancy(size)

	depart := now
	if x.srcFree[src] > depart {
		depart = x.srcFree[src]
	}
	x.srcFree[src] = depart + occ

	arriveStart := depart + x.cfg.Latency
	if x.dstFree[dst] > arriveStart {
		arriveStart = x.dstFree[dst]
	}
	x.dstFree[dst] = arriveStart + occ
	done := arriveStart + occ

	x.Bytes += uint64(size)
	x.Messages++
	if x.rec != nil {
		// qwait = source-port queueing before departure; dur = total transit.
		x.rec.Emit(trace.SrcXbar, x.traceKind, int32(src),
			uint64(dst), uint64(size), uint64(depart-now), uint64(done-now))
	}
	x.eng.At(done, deliver)
	return done
}

// Broadcast sends the same payload from src to every destination port (used
// by the idealized EAPG signature broadcasts); deliver is invoked once per
// destination with its port id. Traffic is accounted per copy.
func (x *Crossbar) Broadcast(src, size int, deliver func(dst int)) {
	for d := 0; d < x.cfg.DstPorts; d++ {
		dst := d
		x.Send(src, dst, size, func() { deliver(dst) })
	}
}

// Pair bundles the up (cores→partitions) and down (partitions→cores)
// crossbars with traffic accounting helpers.
type Pair struct {
	Up   *Crossbar
	Down *Crossbar
}

// NewPair builds both directions with the same flit width and latency.
func NewPair(eng *sim.Engine, cores, partitions int, cfg Config) *Pair {
	up := cfg
	up.SrcPorts, up.DstPorts = cores, partitions
	down := cfg
	down.SrcPorts, down.DstPorts = partitions, cores
	return &Pair{Up: New(eng, up), Down: New(eng, down)}
}

// TrafficBytes returns (up, down) payload totals.
func (p *Pair) TrafficBytes() (uint64, uint64) { return p.Up.Bytes, p.Down.Bytes }

// SetTrace attaches the recorder to both directions.
func (p *Pair) SetTrace(rec *trace.Recorder) {
	p.Up.SetTrace(rec, trace.KXbarUp)
	p.Down.SetTrace(rec, trace.KXbarDown)
}
