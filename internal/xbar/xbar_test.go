package xbar

import (
	"testing"
	"testing/quick"

	"getm/internal/sim"
)

func TestOccupancy(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 1, DstPorts: 1, Latency: 5, FlitBytes: 32})
	cases := map[int]sim.Cycle{0: 1, 1: 1, 32: 1, 33: 2, 64: 2, 65: 3}
	for size, want := range cases {
		if got := x.Occupancy(size); got != want {
			t.Errorf("occupancy(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestSendLatency(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 2, DstPorts: 2, Latency: 5, FlitBytes: 32})
	var arrived sim.Cycle
	eng.Schedule(0, func() {
		x.Send(0, 1, 16, func() { arrived = eng.Now() })
	})
	eng.Run(0)
	// depart 0, arriveStart 5, +1 flit cycle = 6
	if arrived != 6 {
		t.Fatalf("arrival = %d, want 6", arrived)
	}
	if x.Bytes != 16 || x.Messages != 1 {
		t.Fatalf("traffic accounting: bytes=%d msgs=%d", x.Bytes, x.Messages)
	}
}

func TestSourceSerialization(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 1, DstPorts: 2, Latency: 5, FlitBytes: 32})
	var t1, t2 sim.Cycle
	eng.Schedule(0, func() {
		// Two 64-byte (2-flit) messages from the same source to different
		// destinations: the second must wait for the first's flits.
		x.Send(0, 0, 64, func() { t1 = eng.Now() })
		x.Send(0, 1, 64, func() { t2 = eng.Now() })
	})
	eng.Run(0)
	if t1 != 7 { // depart 0, arrive 5..7
		t.Fatalf("t1 = %d, want 7", t1)
	}
	if t2 != 9 { // depart 2, arrive 7..9
		t.Fatalf("t2 = %d, want 9", t2)
	}
}

func TestDestinationSerialization(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 2, DstPorts: 1, Latency: 5, FlitBytes: 32})
	var t1, t2 sim.Cycle
	eng.Schedule(0, func() {
		x.Send(0, 0, 64, func() { t1 = eng.Now() })
		x.Send(1, 0, 64, func() { t2 = eng.Now() })
	})
	eng.Run(0)
	if t1 != 7 || t2 != 9 {
		t.Fatalf("t1=%d t2=%d, want 7 and 9 (dst port busy)", t1, t2)
	}
}

// Property: messages between the same (src,dst) pair are delivered in send
// order — the FIFO guarantee GETM's cleanup-before-retry depends on.
func TestPointToPointFIFOProperty(t *testing.T) {
	prop := func(sizes []uint8, gaps []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(gaps) < len(sizes) {
			return true
		}
		eng := sim.NewEngine()
		x := New(eng, Config{SrcPorts: 3, DstPorts: 3, Latency: 5, FlitBytes: 32})
		var order []int
		when := sim.Cycle(0)
		for i, s := range sizes {
			i, s := i, int(s)
			when += sim.Cycle(gaps[i] % 7)
			eng.At(when, func() {
				x.Send(1, 2, s, func() { order = append(order, i) })
			})
		}
		eng.Run(0)
		if len(order) != len(sizes) {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 1, DstPorts: 4, Latency: 5, FlitBytes: 32})
	got := map[int]bool{}
	eng.Schedule(0, func() {
		x.Broadcast(0, 8, func(dst int) { got[dst] = true })
	})
	eng.Run(0)
	if len(got) != 4 {
		t.Fatalf("broadcast reached %d/4 destinations", len(got))
	}
	if x.Bytes != 32 {
		t.Fatalf("broadcast traffic = %d, want 32 (accounted per copy)", x.Bytes)
	}
}

func TestNewPair(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPair(eng, 15, 6, DefaultConfig(0, 0))
	var upArrived, downArrived bool
	eng.Schedule(0, func() {
		p.Up.Send(14, 5, 8, func() { upArrived = true })
		p.Down.Send(5, 14, 8, func() { downArrived = true })
	})
	eng.Run(0)
	if !upArrived || !downArrived {
		t.Fatal("pair directions not wired")
	}
	up, down := p.TrafficBytes()
	if up != 8 || down != 8 {
		t.Fatalf("traffic = (%d,%d)", up, down)
	}
}

func TestPortRangePanics(t *testing.T) {
	eng := sim.NewEngine()
	x := New(eng, Config{SrcPorts: 1, DstPorts: 1, Latency: 1, FlitBytes: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range port did not panic")
		}
	}()
	x.Send(0, 3, 8, func() {})
}
