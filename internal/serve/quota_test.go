package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuotaDisabledWhenRateZero(t *testing.T) {
	if q := newQuotas(0, 10); q != nil {
		t.Fatal("rps 0 must disable quotas (nil)")
	}
	var q *quotas
	if q.size() != 0 {
		t.Fatal("nil quotas size must be 0")
	}
}

func TestQuotaBurstThenRefill(t *testing.T) {
	q := newQuotas(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("a", now); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := q.allow("a", now)
	if ok {
		t.Fatal("request over burst admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retry hint %v, want (0, 100ms] for 10 rps", retry)
	}
	// 100ms accrues exactly one token at 10 rps.
	if ok, _ := q.allow("a", now.Add(100*time.Millisecond)); !ok {
		t.Fatal("refilled token refused")
	}
	if ok, _ := q.allow("a", now.Add(100*time.Millisecond)); ok {
		t.Fatal("second request admitted on one refilled token")
	}
}

func TestQuotaClientsIndependent(t *testing.T) {
	q := newQuotas(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := q.allow("a", now); !ok {
		t.Fatal("a's first request refused")
	}
	if ok, _ := q.allow("a", now); ok {
		t.Fatal("a's second request admitted over quota")
	}
	if ok, _ := q.allow("b", now); !ok {
		t.Fatal("b shed by a's consumption — buckets must be per-client")
	}
}

func TestQuotaDefaultBurst(t *testing.T) {
	q := newQuotas(2.5, 0)
	if q.burst != 3 {
		t.Fatalf("default burst %v, want ceil(rps)=3", q.burst)
	}
	q = newQuotas(0.1, 0)
	if q.burst != 1 {
		t.Fatalf("default burst %v, want at least 1", q.burst)
	}
}

// TestQuotaConcurrentExactness hammers one bucket from many goroutines (run
// under -race in serve-gate): with a near-zero refill rate and burst 10,
// exactly 10 requests may be admitted no matter the interleaving.
func TestQuotaConcurrentExactness(t *testing.T) {
	q := newQuotas(1e-9, 10)
	start := time.Unix(1000, 0)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// Slightly skewed clocks across goroutines: refill math must
				// never double-count out-of-order now values.
				now := start.Add(time.Duration(g*50+i) * time.Microsecond)
				if ok, _ := q.allow("hot", now); ok {
					admitted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := admitted.Load(); n != 10 {
		t.Fatalf("admitted %d requests from a burst-10 bucket, want exactly 10", n)
	}
}

// TestQuotaConcurrentManyClients races bucket creation and eviction.
func TestQuotaConcurrentManyClients(t *testing.T) {
	q := newQuotas(100, 5)
	start := time.Unix(1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.allow(fmt.Sprintf("client-%d", i%37), start.Add(time.Duration(i)*time.Millisecond))
			}
		}(g)
	}
	wg.Wait()
	if n := q.size(); n == 0 || n > 37 {
		t.Fatalf("tracked %d clients, want (0, 37]", n)
	}
}

func TestQuotaEvictionBoundsTable(t *testing.T) {
	q := newQuotas(1, 1)
	now := time.Unix(1000, 0)
	for i := 0; i < quotaMaxClients+100; i++ {
		q.allow(fmt.Sprintf("c%d", i), now)
		now = now.Add(time.Microsecond)
	}
	if n := q.size(); n > quotaMaxClients {
		t.Fatalf("table grew to %d clients, cap is %d", n, quotaMaxClients)
	}
}

func TestRetryAfterSecsNeverZero(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1}, // sub-second must clamp UP to 1, never round to 0
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2}, // partial seconds round up
		{90 * time.Second, 90},
		{2 * time.Hour, 600}, // absurd hints clamp to 10 minutes
		{-5 * time.Second, 1},
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.d); got != c.want {
			t.Errorf("retryAfterSecs(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
