package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/stats"
	"getm/internal/store"
)

// coalescer is the write-behind persistence tier between the runners and
// the on-disk store: completed results accumulate in an in-memory delta map
// and hit the disk as one batched, fsync'd commit per flush — triggered by
// the flush interval, the high-water mark, or the final flush inside a
// graceful drain. Self-canceling work collapses in the map: N puts of one
// key in a flush window cost one disk write (the absorbed counter records
// the other N-1), and a burst of distinct results costs one clustered batch
// of syncs instead of one synchronous fsync per simulation on the serving
// path.
//
// Durability contract: an acknowledged result is on disk after the next
// flush, and Server.Drain always runs a final flush — so a SIGTERM'd server
// never loses an acknowledged run (the restart test pins this). A hard kill
// can lose at most the last flush window; the store's content addressing
// makes that loss benign — the cell just re-simulates.
type coalescer struct {
	st        *store.Store
	interval  time.Duration
	highWater int
	verbose   func(string)

	mu      sync.Mutex
	pending map[string]store.Record

	kick     chan struct{} // high-water signal, capacity 1
	quit     chan struct{}
	quitOnce sync.Once
	wg       sync.WaitGroup

	flushes  atomic.Int64 // batched commits issued
	flushed  atomic.Int64 // records written across all commits
	absorbed atomic.Int64 // puts merged into a pending record (write saved)

	// onFlush, if set, observes each non-empty commit (duration, record
	// count) — the server wires it to the flush-latency histogram and the
	// lifecycle span timeline. Set before the first put; called from the
	// flushing goroutine.
	onFlush func(d time.Duration, records int)
}

func newCoalescer(st *store.Store, interval time.Duration, highWater int, verbose func(string)) *coalescer {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if highWater <= 0 {
		highWater = 64
	}
	c := &coalescer{
		st:        st,
		interval:  interval,
		highWater: highWater,
		verbose:   verbose,
		pending:   make(map[string]store.Record),
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
	}
	c.wg.Add(1)
	go c.loop()
	return c
}

// put accumulates one completed result; it is the Runner.Persist hook, so
// it must never block on disk. Truncated metrics are refused exactly as
// store.Put refuses them — the backstop stays local to every write path.
func (c *coalescer) put(key, desc string, m *stats.Metrics) error {
	if m == nil {
		return nil
	}
	if m.Truncated {
		return fmt.Errorf("store: refusing to persist truncated metrics for %s", key)
	}
	c.mu.Lock()
	if _, dup := c.pending[key]; dup {
		c.absorbed.Add(1)
	}
	c.pending[key] = store.Record{Key: key, Desc: desc, Metrics: m}
	n := len(c.pending)
	c.mu.Unlock()
	if n >= c.highWater {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

func (c *coalescer) loop() {
	defer c.wg.Done()
	t := time.NewTicker(c.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.flush()
		case <-c.kick:
			c.flush()
		case <-c.quit:
			return
		}
	}
}

// flush swaps the pending map out and commits it as one batch. Safe to call
// from any goroutine; concurrent flushes each take whatever deltas exist
// when they swap.
func (c *coalescer) flush() error {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.mu.Unlock()
		return nil
	}
	batch := c.pending
	c.pending = make(map[string]store.Record, len(batch))
	c.mu.Unlock()

	recs := make([]store.Record, 0, len(batch))
	for _, rec := range batch {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	t0 := time.Now()
	err := c.st.PutBatch(recs)
	c.flushes.Add(1)
	c.flushed.Add(int64(len(recs)))
	if c.onFlush != nil {
		c.onFlush(time.Since(t0), len(recs))
	}
	if err != nil && c.verbose != nil {
		c.verbose("store flush: " + err.Error())
	}
	return err
}

// pendingCount returns the records awaiting the next flush.
func (c *coalescer) pendingCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// close stops the flush loop and runs the final flush — the graceful-drain
// step that makes every acknowledged result durable before exit.
func (c *coalescer) close() error {
	c.quitOnce.Do(func() { close(c.quit) })
	c.wg.Wait()
	return c.flush()
}
