package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainFlood hammers the server with distinct sync submissions from several
// goroutines while the caller drains it, and asserts the drain/accept
// contract: every response is either a terminal 200 (the run completed), a
// shed 429, or a draining 503 — never an acceptance that evaporates. It
// returns once the flood goroutines exit.
func drainFlood(t *testing.T, url string, stop chan struct{}) *sync.WaitGroup {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				spec := fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, g*100000+i+1)
				resp, err := http.Post(url+"/v1/runs", "application/json", strings.NewReader(spec))
				if err != nil {
					// The test server itself went away (test teardown).
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var out Response
					if err := json.Unmarshal(body, &out); err != nil {
						t.Errorf("accepted run returned undecodable body %q: %v", body, err)
						return
					}
					if out.Status != "done" {
						t.Errorf("accepted sync run answered non-terminal status %q", out.Status)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					// Shed or refused-during-drain: the documented outcomes.
				default:
					t.Errorf("unexpected status %d during drain race: %s", resp.StatusCode, body)
				}
			}
		}(g)
	}
	return &wg
}

// TestDrainAcceptRaceSingleNode floods a single node with submissions racing
// a drain. The regression class under test: a request admitted concurrently
// with Drain must still run to completion (Drain waits on taskWG), and a
// request arriving after the draining flag flips must get a clean 503 — an
// accepted-then-dropped run would strand its submitter forever.
func TestDrainAcceptRaceSingleNode(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})
	close(release) // every run completes instantly
	s := New(Config{Workers: 2, QueueDepth: 16})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	stop := make(chan struct{})
	wg := drainFlood(t, ts.URL, stop)
	time.Sleep(20 * time.Millisecond) // let the flood establish
	if err := s.Drain(10 * time.Second); err != nil {
		t.Errorf("drain under flood: %v", err)
	}
	close(stop)
	wg.Wait()

	// Nothing the pool ever accepted may be left hanging: every jobState
	// reached its terminal close.
	s.pool.jobsFast.Range(func(_, v any) bool {
		js := v.(*jobState)
		select {
		case <-js.done:
		default:
			t.Errorf("run %s was accepted but never finished", js.id)
		}
		return true
	})
	if execs.Load() == 0 {
		t.Fatal("flood never reached the execute hook; the race was not exercised")
	}
}
