package serve

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"getm/internal/trace"
)

// spanStage enumerates the request-lifecycle stages the serve layer records.
// Together they tile a request's wall-clock life: receive → quota verdict →
// fair-queue enqueue/dequeue (the wait) → dedupe join or miss → simulate
// start/finish → persist → coalescer flush → response write.
type spanStage uint8

const (
	stageReceive   spanStage = iota // request arrived (submit or one batch item)
	stageQuota                      // shed by the per-client token bucket
	stageEnqueue                    // took a fair-queue slot
	stageDequeue                    // worker picked it up; A = queue wait µs
	stageJoin                       // dedupe hit: joined a live/completed job
	stageMiss                       // dedupe miss: fresh admission
	stageSimStart                   // execute began on a worker
	stageSimFinish                  // execute returned; A = µs, B = total cycles
	stagePersist                    // persist hook ran; A = µs
	stageFlush                      // coalescer batch committed; A = µs, B = records
	stageRespond                    // response written; A = end-to-end µs
	numSpanStages
)

var spanStageNames = [numSpanStages]string{
	"receive", "quota_shed", "enqueue", "dequeue", "join", "miss",
	"sim_start", "sim_finish", "persist", "flush", "respond",
}

func (st spanStage) String() string {
	if int(st) < len(spanStageNames) {
		return spanStageNames[st]
	}
	return "unknown"
}

// spanRecord is one fixed-size binary lifecycle record — the serve-layer
// sibling of trace.Event. Strings never live in the record: client and run
// ids are interned to small indices in bounded side tables, so a record is
// 40 bytes flat and emitting one allocates nothing.
type spanRecord struct {
	US     int64  // µs since the recorder's epoch (wall clock)
	Seq    uint64 // global emission order
	A, B   uint64 // per-stage payload (see spanStage)
	Stage  spanStage
	Client uint32 // interned client key (0 = unknown/overflow)
	Run    uint32 // interned run id (0 = none)
}

// spanInternCap bounds each intern table; ids beyond the cap collapse onto
// index 0 so a client-id cardinality attack cannot grow server memory.
const spanInternCap = 1024

// spanRecorder retains lifecycle records in a power-of-two ring, oldest
// overwritten first — the trace.Recorder discipline applied to the serve
// layer. Disabled cost is one pointer compare at every emit site (the
// Server.spans field is nil); enabled cost is one short critical section and
// zero allocations for known client/run ids.
type spanRecorder struct {
	epoch time.Time

	mu      sync.Mutex
	buf     []spanRecord
	n       uint64 // records ever written
	seq     uint64
	clients *internTable
	runs    *internTable
}

// internTable maps strings to dense uint32 indices, bounded at spanInternCap.
// Index 0 is the overflow/unknown sentinel.
type internTable struct {
	idx map[string]uint32
	rev []string
}

func newInternTable() *internTable {
	return &internTable{idx: make(map[string]uint32), rev: []string{""}}
}

// get interns s, returning 0 once the table is full. Caller holds the
// recorder lock.
func (t *internTable) get(s string) uint32 {
	if s == "" {
		return 0
	}
	if i, ok := t.idx[s]; ok {
		return i
	}
	if len(t.rev) >= spanInternCap {
		return 0
	}
	i := uint32(len(t.rev))
	t.idx[s] = i
	t.rev = append(t.rev, s)
	return i
}

func (t *internTable) name(i uint32) string {
	if int(i) < len(t.rev) {
		return t.rev[i]
	}
	return ""
}

// defaultSpanRing is the lifecycle ring capacity when Config.SpanRing is 0:
// at two records per request (receive + respond) plus the stage records of
// executed runs, 16k records cover several thousand in-flight request lives.
const defaultSpanRing = 1 << 14

func newSpanRecorder(ringSize int) *spanRecorder {
	if ringSize <= 0 {
		ringSize = defaultSpanRing
	}
	size := 1
	for size < ringSize {
		size <<= 1
	}
	return &spanRecorder{
		epoch:   time.Now(),
		buf:     make([]spanRecord, size),
		clients: newInternTable(),
		runs:    newInternTable(),
	}
}

// emit appends one record. The hot-path contract mirrors trace.Recorder.Emit:
// no allocation for interned ids, one bounded critical section, records
// written in place into the preallocated ring.
func (r *spanRecorder) emit(stage spanStage, client, run string, a, b uint64) {
	us := time.Since(r.epoch).Microseconds()
	r.mu.Lock()
	rec := &r.buf[r.n&uint64(len(r.buf)-1)]
	rec.US = us
	rec.Seq = r.seq
	rec.A, rec.B = a, b
	rec.Stage = stage
	rec.Client = r.clients.get(client)
	rec.Run = r.runs.get(run)
	r.n++
	r.seq++
	r.mu.Unlock()
}

// snapshot copies the retained records (oldest first) plus the intern tables.
func (r *spanRecorder) snapshot() (recs []spanRecord, clients, runs []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	count := r.n
	if count > size {
		count = size
	}
	recs = make([]spanRecord, 0, count)
	for i := r.n - count; i < r.n; i++ {
		recs = append(recs, r.buf[i&(size-1)])
	}
	clients = append([]string(nil), r.clients.rev...)
	runs = append([]string(nil), r.runs.rev...)
	return recs, clients, runs
}

// total and dropped mirror the trace.Recorder accounting: records ever
// emitted, and how many the ring has overwritten.
func (r *spanRecorder) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func (r *spanRecorder) dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n > uint64(len(r.buf)) {
		return r.n - uint64(len(r.buf))
	}
	return 0
}

// span is the emit guard every serve-path site calls: with spans disabled it
// is one pointer compare, exactly the nil-Recorder discipline of the sim
// trace layer.
func (s *Server) span(stage spanStage, client, run string, a, b uint64) {
	if sr := s.spans; sr != nil {
		sr.emit(stage, client, run, a, b)
	}
}

// servePid is the Perfetto process id carrying serve lifecycle tracks
// (distinct from the sim recorder pid ranges added at simTracePidBase).
const (
	servePid        = 200
	simTracePidBase = 1000
	simTracePidStep = 200
)

// spanDur reports the payload-carried duration of duration-bearing stages
// (µs), or -1 for instant stages.
func spanDur(rec spanRecord) int64 {
	switch rec.Stage {
	case stageDequeue, stageSimFinish, stagePersist, stageFlush, stageRespond:
		return int64(rec.A)
	}
	return -1
}

// writeSpansPerfetto renders the lifecycle records — and the retained sim
// recorders for run ids the server actually executed — into one Chrome
// trace-event document. One serve process with one thread per client; each
// sim recorder lands in its own pid range, its process names prefixed by the
// (shortened) run id, so a request span and the engine events it triggered
// sit on a single timeline.
func (s *Server) writeSpansPerfetto(w io.Writer) error {
	recs, clients, runs := s.spans.snapshot()
	tl := trace.NewTimeline()
	tl.Process(servePid, "serve")
	named := make([]bool, len(clients))
	for _, rec := range recs {
		tid := int(rec.Client)
		if int(rec.Client) < len(named) && !named[rec.Client] {
			named[rec.Client] = true
			name := clients[rec.Client]
			if name == "" {
				name = "(unattributed)"
			}
			tl.Thread(servePid, tid, "client "+name)
		}
		args := map[string]any{"seq": rec.Seq}
		if rec.Run != 0 && int(rec.Run) < len(runs) {
			args["run"] = runs[rec.Run]
		}
		switch {
		case rec.Stage == stageSimFinish:
			args["cycles"] = rec.B
		case rec.Stage == stageFlush:
			args["records"] = rec.B
		}
		ts := uint64(rec.US)
		if d := spanDur(rec); d >= 0 {
			// Duration-bearing records are emitted at completion; the span
			// starts dur earlier.
			dur := uint64(d)
			start := ts
			if dur <= ts {
				start = ts - dur
			} else {
				start, dur = 0, ts
			}
			tl.Span(servePid, tid, rec.Stage.String(), start, dur, args)
		} else {
			tl.Instant(servePid, tid, rec.Stage.String(), ts, args)
		}
	}
	for i, tr := range s.simTraces() {
		label := tr.id
		if len(label) > 12 {
			label = label[:12]
		}
		tl.AddRecorder(simTracePidBase+i*simTracePidStep, tr.rec, "run "+label)
	}
	return tl.Write(w)
}

// writeSpansCSV renders the lifecycle records as a flat CSV table.
func (s *Server) writeSpansCSV(w io.Writer) error {
	recs, clients, runs := s.spans.snapshot()
	bw := bufio.NewWriter(w)
	bw.WriteString("us,seq,stage,client,run,a,b\n")
	for _, rec := range recs {
		client, run := "", ""
		if int(rec.Client) < len(clients) {
			client = clients[rec.Client]
		}
		if int(rec.Run) < len(runs) {
			run = runs[rec.Run]
		}
		fmt.Fprintf(bw, "%d,%d,%s,%s,%s,%d,%d\n",
			rec.US, rec.Seq, rec.Stage, client, run, rec.A, rec.B)
	}
	return bw.Flush()
}

// writeSpansText renders a human-readable log, one record per line.
func (s *Server) writeSpansText(w io.Writer) error {
	recs, clients, runs := s.spans.snapshot()
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		client, run := "-", "-"
		if int(rec.Client) < len(clients) && clients[rec.Client] != "" {
			client = clients[rec.Client]
		}
		if int(rec.Run) < len(runs) && runs[rec.Run] != "" {
			run = runs[rec.Run]
		}
		fmt.Fprintf(bw, "%10d  %-10s client=%s run=%s", rec.US, rec.Stage, client, run)
		if d := spanDur(rec); d >= 0 {
			fmt.Fprintf(bw, " dur_us=%d", d)
		}
		if rec.Stage == stageSimFinish {
			fmt.Fprintf(bw, " cycles=%d", rec.B)
		}
		if rec.Stage == stageFlush {
			fmt.Fprintf(bw, " records=%d", rec.B)
		}
		bw.WriteByte('\n')
	}
	if d := s.spans.dropped(); d > 0 {
		fmt.Fprintf(bw, "# %s lifecycle records overwritten (ring too small; raise -span-ring)\n",
			strconv.FormatUint(d, 10))
	}
	return bw.Flush()
}

// simTrace pairs a retained sim recorder with its run id.
type simTrace struct {
	id  string
	rec *trace.Recorder
}

// simTraceCap bounds how many executed runs keep their sim recorder alive: a
// recorder retains per-source rings, so the retention set is a small LRU,
// not a per-run archive.
const simTraceCap = 8

// traceKeeper is the bounded LRU behind harness.Runner.TraceSink.
type traceKeeper struct {
	mu    sync.Mutex
	order []string
	byID  map[string]*trace.Recorder
}

func newTraceKeeper() *traceKeeper {
	return &traceKeeper{byID: make(map[string]*trace.Recorder)}
}

func (k *traceKeeper) put(id string, rec *trace.Recorder) {
	if rec == nil {
		return
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.byID[id]; !ok {
		k.order = append(k.order, id)
		if len(k.order) > simTraceCap {
			evict := k.order[0]
			k.order = k.order[1:]
			delete(k.byID, evict)
		}
	}
	k.byID[id] = rec
}

func (k *traceKeeper) get(id string) (*trace.Recorder, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	rec, ok := k.byID[id]
	return rec, ok
}

func (k *traceKeeper) all() []simTrace {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]simTrace, 0, len(k.order))
	for _, id := range k.order {
		out = append(out, simTrace{id: id, rec: k.byID[id]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// simTraces returns the retained sim recorders (empty without span capture).
func (s *Server) simTraces() []simTrace {
	if s.traces == nil {
		return nil
	}
	return s.traces.all()
}
