package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Invalid policies must be rejected at validation time with a 400 — before
// any queueing or simulation — mirroring the API's ErrInvalidPolicy and the
// CLI's exit 2.
func TestSubmitPolicyValidation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, MaxScale: 0.5})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	for name, body := range map[string]string{
		"unknown preset":                `{"policy":"mesi","benchmark":"ht-h","scale":0.1}`,
		"eager vm lazy cd":              `{"policy":"vm=eager,cd=lazy","benchmark":"ht-h","scale":0.1}`,
		"eager vm requester":            `{"policy":"vm=eager,res=requester","benchmark":"ht-h","scale":0.1}`,
		"lazy vm timestamp":             `{"policy":"vm=lazy,res=timestamp","benchmark":"ht-h","scale":0.1}`,
		"unknown axis":                  `{"policy":"speed=fast","benchmark":"ht-h","scale":0.1}`,
		"bad axis value":                `{"policy":"vm=eagre","benchmark":"ht-h","scale":0.1}`,
		"policy is not a protocol name": `{"protocol":"vm=eager","benchmark":"ht-h","scale":0.1}`,
	} {
		resp := postRun(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// Every spelling of a preset — protocol name, policy preset name, canonical
// axis tuple — must collapse to one job: same run id, one execution, shared
// cache entry. A valid non-preset point is its own distinct job.
func TestSubmitPolicyPresetCollapse(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	submit := func(body string) string {
		t.Helper()
		resp := postRun(t, ts.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: status %d, want 202", body, resp.StatusCode)
		}
		return decodeRun(t, resp).ID
	}

	spellings := []string{
		`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"async":true}`,
		`{"policy":"getm","benchmark":"ht-h","scale":0.1,"async":true}`,
		`{"policy":"vm=eager,cd=eager,res=timestamp,arb=local","benchmark":"ht-h","scale":0.1,"async":true}`,
	}
	base := submit(spellings[0])
	for _, sp := range spellings[1:] {
		if id := submit(sp); id != base {
			t.Errorf("spelling %s got run id %s, want %s (preset spellings must share a job)", sp, id, base)
		}
	}

	nonPreset := submit(`{"policy":"vm=lazy,cd=eager,res=fww,arb=ring","benchmark":"ht-h","scale":0.1,"async":true}`)
	if nonPreset == base {
		t.Error("non-preset point shares the preset's run id")
	}

	close(release)
	s.Drain(2 * time.Second)
	if got := execs.Load(); got != 2 {
		t.Errorf("%d executions, want 2 (three preset spellings dedupe to one, plus the non-preset point)", got)
	}
}

// The /metrics policy family must label requests with the full canonical
// tuple (bounded cardinality: the matrix has 12 points plus fglock).
func TestPolicyMetricsLabel(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	var execs atomic.Int64
	release := make(chan struct{})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, body := range []string{
		`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"async":true}`,
		`{"policy":"getm","benchmark":"ht-h","scale":0.1,"async":true}`,
		`{"policy":"vm=lazy,cd=eager,res=fww,arb=ring","benchmark":"atm","scale":0.1,"async":true}`,
		`{"protocol":"fglock","benchmark":"ht-h","scale":0.1,"async":true}`,
	} {
		resp := postRun(t, ts.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	close(release)
	s.Drain(2 * time.Second)

	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		// Both getm spellings land on one canonical-tuple label with count 2.
		`getm_serve_policy_requests_total{policy="vm=eager,cd=eager,res=timestamp,arb=local"} 2`,
		`getm_serve_policy_requests_total{policy="vm=lazy,cd=eager,res=fww,arb=ring"} 1`,
		`getm_serve_policy_requests_total{policy="fglock"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, grepLines(metrics, "policy"))
		}
	}
}

// grepLines filters a multi-line body for a substring (test-failure output).
func grepLines(body, sub string) string {
	var out []string
	for _, ln := range strings.Split(body, "\n") {
		if strings.Contains(ln, sub) {
			out = append(out, ln)
		}
	}
	return fmt.Sprintf("%d matching lines:\n%s", len(out), strings.Join(out, "\n"))
}
