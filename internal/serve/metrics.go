package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/stats"
)

// latencyBuckets sizes the request-latency histogram: one bucket per
// millisecond, clamped at ~16s. Simulations at serving scale complete well
// inside the range; anything clamped still lands in the right tail.
const latencyBuckets = 1 << 14

// metricsSet is the server's observable state, exposed as a Prometheus-style
// text exposition on /metrics. Counters are monotonic; the latency histogram
// feeds the p50/p99 gauges via stats.Hist.Quantile.
type metricsSet struct {
	requests        atomic.Int64 // POST /v1/runs received
	rejected        atomic.Int64 // shed: 429 or 503-draining
	deduped         atomic.Int64 // joined an identical live/completed job
	completed       atomic.Int64 // runs finished without error
	failed          atomic.Int64 // runs finished with error
	truncated       atomic.Int64 // runs returning partial (truncated) metrics
	storeStatusHits atomic.Int64 // GET /v1/runs/{id} answered from the store

	mu  sync.Mutex
	lat *stats.Hist // milliseconds
}

func newMetricsSet() *metricsSet {
	return &metricsSet{lat: stats.NewHist(latencyBuckets)}
}

// observe records one finished run.
func (m *metricsSet) observe(d time.Duration, res *stats.Metrics, err error) {
	if err != nil {
		m.failed.Add(1)
	} else {
		m.completed.Add(1)
	}
	if res != nil && res.Truncated {
		m.truncated.Add(1)
	}
	m.mu.Lock()
	m.lat.Add(int(d.Milliseconds()))
	m.mu.Unlock()
}

func (m *metricsSet) meanLatencyMS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lat.Mean()
}

// write renders the exposition. Gauges come from the pool (queue depth,
// busy workers, runner aggregates); everything else from the counters.
func (m *metricsSet) write(w io.Writer, p *pool) {
	m.mu.Lock()
	p50 := m.lat.Quantile(0.50)
	p99 := m.lat.Quantile(0.99)
	mean := m.lat.Mean()
	samples := m.lat.Total()
	m.mu.Unlock()

	draining := 0
	if p.draining.Load() {
		draining = 1
	}

	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("getm_serve_queue_depth", "requests waiting for a worker", len(p.queue))
	g("getm_serve_queue_capacity", "wait-queue slots before load shedding", cap(p.queue))
	g("getm_serve_workers", "worker pool size", p.s.cfg.Workers)
	g("getm_serve_inflight", "workers executing a run right now", p.running.Load())
	g("getm_serve_draining", "1 while a graceful drain is in progress", draining)
	c("getm_serve_requests_total", "POST /v1/runs submissions received", m.requests.Load())
	c("getm_serve_rejected_total", "submissions shed (queue full or draining)", m.rejected.Load())
	c("getm_serve_deduped_total", "submissions joined onto an identical job", m.deduped.Load())
	c("getm_serve_completed_total", "runs finished without error", m.completed.Load())
	c("getm_serve_failed_total", "runs finished with an error", m.failed.Load())
	c("getm_serve_truncated_total", "runs returning partial (truncated) metrics", m.truncated.Load())
	c("getm_serve_simulated_total", "simulations actually executed (cache and store hits excluded)", int64(p.simulated()))
	c("getm_serve_store_hits_total", "results served from the on-disk store", int64(p.storeHits()))
	c("getm_serve_store_status_hits_total", "GET /v1/runs answered durably from the store", m.storeStatusHits.Load())
	g("getm_serve_latency_ms_p50", "median run latency (ms)", p50)
	g("getm_serve_latency_ms_p99", "p99 run latency (ms)", p99)
	g("getm_serve_latency_ms_mean", "mean run latency (ms)", mean)
	g("getm_serve_latency_samples", "finished runs in the latency histogram", samples)
}
