package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/stats"
)

// latencyBuckets sizes the run-latency histogram: one bucket per
// millisecond, clamped at ~16s. Simulations at serving scale complete well
// inside the range; anything clamped still lands in the right tail.
const latencyBuckets = 1 << 14

// httpLatencyBuckets and httpLatencyUnit size the HTTP-request histogram:
// 10µs resolution (the admission fast path completes in tens of µs) up to
// ~327ms; slower requests clamp into the right tail.
const (
	httpLatencyBuckets = 1 << 15
	httpLatencyUnit    = 10 * time.Microsecond
	httpLatencyShards  = 8
)

// clientCardinality bounds the per-client counter table; clients beyond the
// bound aggregate under the "_other" label so an id-cardinality attack
// cannot grow the exposition (or server memory) without bound.
const clientCardinality = 64

// clientOverflow is the label absorbing clients beyond clientCardinality.
const clientOverflow = "_other"

// policyCardinality bounds the per-policy counter table. The valid label set
// is small by construction — the 12 implementable matrix points plus fglock —
// but the table keeps the same defensive overflow discipline as the client
// table so no future label source can grow the exposition without bound.
const policyCardinality = 16

// clientStat is one client's request accounting.
type clientStat struct {
	requests int64
	shed     int64
}

// metricsSet is the server's observable state, exposed as a Prometheus-style
// text exposition on /metrics. Names follow the Prometheus conventions the
// lint test enforces: counters end in _total, durations are base-unit
// seconds, sizes are bytes, and every family carries HELP and TYPE. Latency
// distributions are exposed as summaries (quantile-labeled series plus _sum
// and _count), computed at scrape time from in-process histograms: the
// end-to-end run and HTTP histograms from PR 5/7, and the per-stage
// (queue/sim/persist) and coalescer-flush histograms introduced with the
// observability layer — all fixed-size, so the serving hot path records a
// sample without allocating. The HTTP histogram is sharded
// (stats.ShardedHist) so the hot path never serializes on one latency mutex;
// /metrics merges the shards into the exact single-histogram view at scrape
// time.
type metricsSet struct {
	requests        atomic.Int64 // run submissions received (batch items count individually)
	batches         atomic.Int64 // POST /v1/runs/batch calls received
	rejected        atomic.Int64 // shed: 429 or 503-draining
	quotaRejected   atomic.Int64 // shed specifically by per-client quota
	deduped         atomic.Int64 // joined an identical live/completed job
	completed       atomic.Int64 // runs finished without error
	failed          atomic.Int64 // runs finished with error
	truncated       atomic.Int64 // runs returning partial (truncated) metrics
	storeStatusHits atomic.Int64 // GET /v1/runs/{id} answered from the store
	sloSlow         atomic.Int64 // runs slower than the p99 objective
	hedges          atomic.Int64 // hedge requests launched (coordinator)
	storeFills      atomic.Int64 // store records filled from cluster peers

	// sloP99 is the latency objective the burn counter compares against.
	sloP99 time.Duration

	mu       sync.Mutex
	lat      *stats.Hist   // run latency, milliseconds
	queueLat stats.LogHist // fair-queue wait, µs
	simLat   stats.LogHist // execute (simulate or cache/store load), µs
	persLat  stats.LogHist // persist hook, µs
	flushLat stats.LogHist // coalescer batched commit, µs

	httpLat *stats.ShardedHist // HTTP request latency, 10µs units

	clientMu sync.Mutex
	clients  map[string]*clientStat

	policyMu sync.Mutex
	policies map[string]int64 // valid submissions per full policy tuple
}

func newMetricsSet() *metricsSet {
	return &metricsSet{
		lat:      stats.NewHist(latencyBuckets),
		httpLat:  stats.NewShardedHist(httpLatencyShards, httpLatencyBuckets),
		clients:  make(map[string]*clientStat),
		policies: make(map[string]int64),
	}
}

// observe records one finished run.
func (m *metricsSet) observe(d time.Duration, res *stats.Metrics, err error) {
	if err != nil {
		m.failed.Add(1)
	} else {
		m.completed.Add(1)
	}
	if res != nil && res.Truncated {
		m.truncated.Add(1)
	}
	if m.sloP99 > 0 && d > m.sloP99 {
		m.sloSlow.Add(1)
	}
	m.mu.Lock()
	m.lat.Add(int(d.Milliseconds()))
	m.mu.Unlock()
}

// observeStages records one finished run's per-stage breakdown. The
// histograms are fixed-size log-bucketed structs, so the call allocates
// nothing.
func (m *metricsSet) observeStages(queue, sim, persist time.Duration) {
	m.mu.Lock()
	m.queueLat.Add(queue.Microseconds())
	m.simLat.Add(sim.Microseconds())
	m.persLat.Add(persist.Microseconds())
	m.mu.Unlock()
}

// observeFlush records one coalescer commit.
func (m *metricsSet) observeFlush(d time.Duration) {
	m.mu.Lock()
	m.flushLat.Add(d.Microseconds())
	m.mu.Unlock()
}

// observeHTTP records one served HTTP request (submit or batch), including
// any time spent waiting on a synchronous run.
func (m *metricsSet) observeHTTP(d time.Duration) {
	m.httpLat.Add(int(d / httpLatencyUnit))
}

// clientStatFor resolves (creating if the table has room) a client's row;
// overflow collapses onto the "_other" row. Existing clients cost a map
// lookup under a short lock — no allocation.
func (m *metricsSet) clientStatFor(client string) *clientStat {
	cs, ok := m.clients[client]
	if !ok {
		if len(m.clients) >= clientCardinality {
			client = clientOverflow
			if cs, ok = m.clients[client]; ok {
				return cs
			}
		}
		cs = &clientStat{}
		m.clients[client] = cs
	}
	return cs
}

// clientRequest counts n received submissions for the client.
func (m *metricsSet) clientRequest(client string, n int64) {
	m.clientMu.Lock()
	m.clientStatFor(client).requests += n
	m.clientMu.Unlock()
}

// policyRequest counts n valid submissions for the policy tuple label.
func (m *metricsSet) policyRequest(label string, n int64) {
	m.policyMu.Lock()
	if _, ok := m.policies[label]; !ok && len(m.policies) >= policyCardinality {
		label = clientOverflow
	}
	m.policies[label] += n
	m.policyMu.Unlock()
}

// clientShed counts n shed submissions for the client.
func (m *metricsSet) clientShed(client string, n int64) {
	m.clientMu.Lock()
	m.clientStatFor(client).shed += n
	m.clientMu.Unlock()
}

func (m *metricsSet) meanLatencyMS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lat.Mean()
}

// labelEscape escapes a Prometheus label value.
func labelEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// summaryQuantiles are the quantile labels every latency summary exposes.
var summaryQuantiles = []float64{0.5, 0.9, 0.99}

// summaryStat is one pre-scaled summary series: quantile values, sum, and
// count, all in the exposition's base unit (seconds).
type summaryStat struct {
	label string // extra label pair, e.g. `stage="queue"` (may be empty)
	q     [3]float64
	sum   float64
	count uint64
}

// logHistSummary converts a µs LogHist into a seconds summaryStat.
func logHistSummary(label string, h *stats.LogHist) summaryStat {
	s := summaryStat{label: label, count: h.Total()}
	for i, q := range summaryQuantiles {
		s.q[i] = h.Quantile(q) / 1e6
	}
	s.sum = h.Mean() * float64(h.Total()) / 1e6
	return s
}

// write renders the exposition. Gauges come from the pool (queue depth,
// busy workers, runner aggregates), the coalescer, the quota table, and the
// Go runtime; summaries from the scrape-time histogram reads; everything
// else from the counters.
func (m *metricsSet) write(w io.Writer, s *Server) {
	p := s.pool
	m.mu.Lock()
	run := summaryStat{count: uint64(m.lat.Total())}
	for i, q := range summaryQuantiles {
		run.q[i] = m.lat.Quantile(q) / 1e3
	}
	run.sum = m.lat.Mean() * float64(m.lat.Total()) / 1e3
	queue := logHistSummary(`stage="queue"`, &m.queueLat)
	simS := logHistSummary(`stage="sim"`, &m.simLat)
	pers := logHistSummary(`stage="persist"`, &m.persLat)
	flush := logHistSummary("", &m.flushLat)
	m.mu.Unlock()

	hh := m.httpLat.Merged()
	unitSec := float64(httpLatencyUnit) / float64(time.Second)
	httpS := summaryStat{count: uint64(hh.Total())}
	for i, q := range summaryQuantiles {
		httpS.q[i] = hh.Quantile(q) * unitSec
	}
	httpS.sum = hh.Mean() * float64(hh.Total()) * unitSec

	draining := 0
	if p.draining.Load() {
		draining = 1
	}

	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	summary := func(name, help string, stats ...summaryStat) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		for _, st := range stats {
			sep := ""
			if st.label != "" {
				sep = ","
			}
			for i, q := range summaryQuantiles {
				fmt.Fprintf(w, "%s{%s%squantile=\"%v\"} %v\n", name, st.label, sep, q, st.q[i])
			}
			brace := ""
			if st.label != "" {
				brace = "{" + st.label + "}"
			}
			fmt.Fprintf(w, "%s_sum%s %v\n", name, brace, st.sum)
			fmt.Fprintf(w, "%s_count%s %d\n", name, brace, st.count)
		}
	}

	g("getm_serve_queue_depth", "requests waiting for a worker", p.fq.len())
	g("getm_serve_queue_capacity", "wait-queue slots before load shedding", p.fq.capacity)
	g("getm_serve_workers", "worker pool size", p.s.cfg.Workers)
	g("getm_serve_inflight", "workers executing a run right now", p.running.Load())
	g("getm_serve_draining", "1 while a graceful drain is in progress", draining)
	g("getm_serve_fair_clients", "clients with queued work in the fair queue", p.fq.clientCount())
	g("getm_serve_quota_clients", "client token buckets currently tracked", s.quotas.size())
	g("getm_serve_goroutines", "goroutines in the serving process", runtime.NumGoroutine())
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	g("getm_serve_heap_alloc_bytes", "bytes of allocated heap objects (runtime.MemStats.HeapAlloc)", ms.HeapAlloc)
	c("getm_serve_requests_total", "run submissions received (batch items count individually)", m.requests.Load())
	c("getm_serve_batches_total", "POST /v1/runs/batch calls received", m.batches.Load())
	c("getm_serve_rejected_total", "submissions shed (quota, queue full, or draining)", m.rejected.Load())
	c("getm_serve_quota_rejected_total", "submissions shed by per-client quota", m.quotaRejected.Load())
	c("getm_serve_deduped_total", "submissions joined onto an identical job", m.deduped.Load())
	c("getm_serve_completed_total", "runs finished without error", m.completed.Load())
	c("getm_serve_failed_total", "runs finished with an error", m.failed.Load())
	c("getm_serve_truncated_total", "runs returning partial (truncated) metrics", m.truncated.Load())
	c("getm_serve_simulated_total", "simulations actually executed (cache and store hits excluded)", int64(p.simulated()))
	c("getm_serve_store_hits_total", "results served from the on-disk store", int64(p.storeHits()))
	c("getm_serve_store_status_hits_total", "GET /v1/runs answered durably from the store", m.storeStatusHits.Load())
	if coal := s.coal; coal != nil {
		g("getm_serve_coalesce_pending", "completed results awaiting the next batched store flush", coal.pendingCount())
		c("getm_serve_coalesce_flushes_total", "batched store commits issued", coal.flushes.Load())
		c("getm_serve_coalesce_flushed_total", "records written across all batched commits", coal.flushed.Load())
		c("getm_serve_coalesce_absorbed_total", "store writes absorbed by in-memory coalescing", coal.absorbed.Load())
		summary("getm_serve_coalesce_flush_latency_seconds", "batched store commit latency", flush)
	}
	summary("getm_serve_run_latency_seconds", "end-to-end run latency (dequeue to completion)", run)
	summary("getm_serve_http_latency_seconds", "HTTP request latency (submit and batch, including sync waits)", httpS)
	summary("getm_serve_stage_latency_seconds", "per-stage run latency: fair-queue wait, execute, persist hook", queue, simS, pers)

	// Per-client accounting, bounded at clientCardinality rows plus the
	// overflow bucket; rows render in sorted order so scrapes are stable.
	m.clientMu.Lock()
	names := make([]string, 0, len(m.clients))
	for name := range m.clients {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]clientStat, len(names))
	for i, name := range names {
		rows[i] = *m.clients[name]
	}
	m.clientMu.Unlock()
	fmt.Fprintf(w, "# HELP getm_serve_client_requests_total run submissions received per client\n# TYPE getm_serve_client_requests_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "getm_serve_client_requests_total{client=\"%s\"} %d\n", labelEscape(name), rows[i].requests)
	}
	fmt.Fprintf(w, "# HELP getm_serve_client_shed_total submissions shed per client (quota, queue, or draining)\n# TYPE getm_serve_client_shed_total counter\n")
	for i, name := range names {
		fmt.Fprintf(w, "getm_serve_client_shed_total{client=\"%s\"} %d\n", labelEscape(name), rows[i].shed)
	}

	// Per-policy accounting: every valid submission counted under its full
	// matrix tuple (or "fglock"), bounded at policyCardinality rows.
	m.policyMu.Lock()
	pnames := make([]string, 0, len(m.policies))
	for name := range m.policies {
		pnames = append(pnames, name)
	}
	sort.Strings(pnames)
	pcounts := make([]int64, len(pnames))
	for i, name := range pnames {
		pcounts[i] = m.policies[name]
	}
	m.policyMu.Unlock()
	fmt.Fprintf(w, "# HELP getm_serve_policy_requests_total valid run submissions received per protocol policy point\n# TYPE getm_serve_policy_requests_total counter\n")
	for i, name := range pnames {
		fmt.Fprintf(w, "getm_serve_policy_requests_total{policy=\"%s\"} %d\n", labelEscape(name), pcounts[i])
	}

	// SLO surface: targets as gauges, burn as counters — a dashboard derives
	// burn rate from (slow or shed) deltas over the request delta without
	// hard-coding objectives.
	g("getm_serve_slo_latency_target_seconds", "p99 run-latency objective the burn counter compares against", m.sloP99.Seconds())
	g("getm_serve_slo_shed_target_ratio", "shed-ratio objective (shed/requests) for burn-rate dashboards", s.cfg.SLOShedTarget)
	c("getm_serve_slo_slow_runs_total", "runs slower than the p99 latency objective", m.sloSlow.Load())

	// Cluster surface: one row per configured peer, labels bounded by the
	// peer list itself (set at startup, never grown by traffic).
	if cl := s.cluster; cl != nil {
		g("getm_serve_cluster_peers", "configured cluster peers", len(cl.peers))
		c("getm_serve_hedges_total", "hedged forwards launched after the p99-derived delay", m.hedges.Load())
		c("getm_serve_store_peer_fills_total", "store records filled from cluster peers on local misses", m.storeFills.Load())
		peerGauge := func(name, help string, v func(*peer) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, p := range cl.peers {
				fmt.Fprintf(w, "%s{peer=\"%s\"} %d\n", name, labelEscape(p.name), v(p))
			}
		}
		peerCounter := func(name, help string, v func(*peer) int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, p := range cl.peers {
				fmt.Fprintf(w, "%s{peer=\"%s\"} %d\n", name, labelEscape(p.name), v(p))
			}
		}
		peerGauge("getm_serve_peer_healthy", "1 while the peer answers health probes and is not draining",
			func(p *peer) int64 {
				if p.healthy.Load() {
					return 1
				}
				return 0
			})
		peerGauge("getm_serve_peer_headroom", "queue slots the peer last reported free",
			func(p *peer) int64 { return p.headroom.Load() })
		peerCounter("getm_serve_peer_forwarded_total", "submissions routed to the peer",
			func(p *peer) int64 { return p.forwarded.Load() })
		peerCounter("getm_serve_peer_stolen_total", "submissions the peer absorbed because the rendezvous owner was saturated",
			func(p *peer) int64 { return p.stolen.Load() })
		peerCounter("getm_serve_peer_hedged_total", "hedge requests sent to the peer",
			func(p *peer) int64 { return p.hedged.Load() })
		peerCounter("getm_serve_peer_failed_total", "transport failures talking to the peer",
			func(p *peer) int64 { return p.failed.Load() })
		peerCounter("getm_serve_peer_fills_total", "store records fetched from the peer",
			func(p *peer) int64 { return p.fills.Load() })
	}

	spansEnabled := 0
	if s.spans != nil {
		spansEnabled = 1
	}
	g("getm_serve_spans_enabled", "1 while the request-lifecycle span recorder is on", spansEnabled)
	if s.spans != nil {
		c("getm_serve_span_records_total", "lifecycle span records emitted", int64(s.spans.total()))
		c("getm_serve_span_dropped_total", "lifecycle span records overwritten by the ring", int64(s.spans.dropped()))
	}
}
