package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/stats"
)

// latencyBuckets sizes the run-latency histogram: one bucket per
// millisecond, clamped at ~16s. Simulations at serving scale complete well
// inside the range; anything clamped still lands in the right tail.
const latencyBuckets = 1 << 14

// httpLatencyBuckets and httpLatencyUnit size the HTTP-request histogram:
// 10µs resolution (the admission fast path completes in tens of µs) up to
// ~327ms; slower requests clamp into the right tail.
const (
	httpLatencyBuckets = 1 << 15
	httpLatencyUnit    = 10 * time.Microsecond
	httpLatencyShards  = 8
)

// metricsSet is the server's observable state, exposed as a Prometheus-style
// text exposition on /metrics. Counters are monotonic; the latency
// histograms feed the quantile gauges via stats.Hist.Quantile. The HTTP
// histogram is sharded (stats.ShardedHist) so the serving hot path never
// serializes on one latency mutex; /metrics merges the shards into the exact
// single-histogram view at scrape time, so exposition stays exact.
type metricsSet struct {
	requests        atomic.Int64 // run submissions received (batch items count individually)
	batches         atomic.Int64 // POST /v1/runs/batch calls received
	rejected        atomic.Int64 // shed: 429 or 503-draining
	quotaRejected   atomic.Int64 // shed specifically by per-client quota
	deduped         atomic.Int64 // joined an identical live/completed job
	completed       atomic.Int64 // runs finished without error
	failed          atomic.Int64 // runs finished with error
	truncated       atomic.Int64 // runs returning partial (truncated) metrics
	storeStatusHits atomic.Int64 // GET /v1/runs/{id} answered from the store

	mu  sync.Mutex
	lat *stats.Hist // run latency, milliseconds

	httpLat *stats.ShardedHist // HTTP request latency, 10µs units
}

func newMetricsSet() *metricsSet {
	return &metricsSet{
		lat:     stats.NewHist(latencyBuckets),
		httpLat: stats.NewShardedHist(httpLatencyShards, httpLatencyBuckets),
	}
}

// observe records one finished run.
func (m *metricsSet) observe(d time.Duration, res *stats.Metrics, err error) {
	if err != nil {
		m.failed.Add(1)
	} else {
		m.completed.Add(1)
	}
	if res != nil && res.Truncated {
		m.truncated.Add(1)
	}
	m.mu.Lock()
	m.lat.Add(int(d.Milliseconds()))
	m.mu.Unlock()
}

// observeHTTP records one served HTTP request (submit or batch), including
// any time spent waiting on a synchronous run.
func (m *metricsSet) observeHTTP(d time.Duration) {
	m.httpLat.Add(int(d / httpLatencyUnit))
}

func (m *metricsSet) meanLatencyMS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lat.Mean()
}

// write renders the exposition. Gauges come from the pool (queue depth,
// busy workers, runner aggregates), the coalescer, and the quota table;
// everything else from the counters.
func (m *metricsSet) write(w io.Writer, s *Server) {
	p := s.pool
	m.mu.Lock()
	p50 := m.lat.Quantile(0.50)
	p99 := m.lat.Quantile(0.99)
	mean := m.lat.Mean()
	samples := m.lat.Total()
	m.mu.Unlock()

	hh := m.httpLat.Merged()
	unitMS := float64(httpLatencyUnit) / float64(time.Millisecond)

	draining := 0
	if p.draining.Load() {
		draining = 1
	}

	g := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("getm_serve_queue_depth", "requests waiting for a worker", p.fq.len())
	g("getm_serve_queue_capacity", "wait-queue slots before load shedding", p.fq.capacity)
	g("getm_serve_workers", "worker pool size", p.s.cfg.Workers)
	g("getm_serve_inflight", "workers executing a run right now", p.running.Load())
	g("getm_serve_draining", "1 while a graceful drain is in progress", draining)
	g("getm_serve_fair_clients", "clients with queued work in the fair queue", p.fq.clientCount())
	g("getm_serve_quota_clients", "client token buckets currently tracked", s.quotas.size())
	c("getm_serve_requests_total", "run submissions received (batch items count individually)", m.requests.Load())
	c("getm_serve_batches_total", "POST /v1/runs/batch calls received", m.batches.Load())
	c("getm_serve_rejected_total", "submissions shed (quota, queue full, or draining)", m.rejected.Load())
	c("getm_serve_quota_rejected_total", "submissions shed by per-client quota", m.quotaRejected.Load())
	c("getm_serve_deduped_total", "submissions joined onto an identical job", m.deduped.Load())
	c("getm_serve_completed_total", "runs finished without error", m.completed.Load())
	c("getm_serve_failed_total", "runs finished with an error", m.failed.Load())
	c("getm_serve_truncated_total", "runs returning partial (truncated) metrics", m.truncated.Load())
	c("getm_serve_simulated_total", "simulations actually executed (cache and store hits excluded)", int64(p.simulated()))
	c("getm_serve_store_hits_total", "results served from the on-disk store", int64(p.storeHits()))
	c("getm_serve_store_status_hits_total", "GET /v1/runs answered durably from the store", m.storeStatusHits.Load())
	if coal := s.coal; coal != nil {
		g("getm_serve_coalesce_pending", "completed results awaiting the next batched store flush", coal.pendingCount())
		c("getm_serve_coalesce_flushes_total", "batched store commits issued", coal.flushes.Load())
		c("getm_serve_coalesce_flushed_total", "records written across all batched commits", coal.flushed.Load())
		c("getm_serve_coalesce_absorbed_total", "store writes absorbed by in-memory coalescing", coal.absorbed.Load())
	}
	g("getm_serve_latency_ms_p50", "median run latency (ms)", p50)
	g("getm_serve_latency_ms_p99", "p99 run latency (ms)", p99)
	g("getm_serve_latency_ms_mean", "mean run latency (ms)", mean)
	g("getm_serve_latency_samples", "finished runs in the latency histogram", samples)
	g("getm_serve_http_latency_ms_p50", "median HTTP request latency (ms)", hh.Quantile(0.50)*unitMS)
	g("getm_serve_http_latency_ms_p99", "p99 HTTP request latency (ms)", hh.Quantile(0.99)*unitMS)
	g("getm_serve_http_latency_ms_mean", "mean HTTP request latency (ms)", hh.Mean()*unitMS)
	g("getm_serve_http_latency_samples", "served HTTP requests in the latency histogram", hh.Total())
}
