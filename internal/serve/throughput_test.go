package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"getm/internal/stats"
	"getm/internal/store"
)

// instantStub completes immediately with fixed metrics, counting executions.
func instantStub(execs *atomic.Int64) func(context.Context, *jobState) (*stats.Metrics, string, error) {
	return func(ctx context.Context, js *jobState) (*stats.Metrics, string, error) {
		execs.Add(1)
		m := stats.NewMetrics()
		m.TotalCycles = 4242
		m.Commits = 7
		return m, "run", nil
	}
}

func postBatch(t *testing.T, url, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/runs/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// The batch endpoint admits N specs in one round trip, collapses repeats
// onto one execution, and returns one response per spec in order.
func TestBatchSubmitCollapsesAndOrders(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	// 6 entries, 2 distinct specs, one invalid in the middle.
	batch := `[
		{"protocol":"getm","benchmark":"ht-h","scale":0.1},
		{"protocol":"getm","benchmark":"ht-h","scale":0.1},
		{"protocol":"nope","benchmark":"ht-h"},
		{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":9},
		{"protocol":"getm","benchmark":"ht-h","scale":0.1},
		{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":9}
	]`
	resp := postBatch(t, ts.URL, batch, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d, want 200", resp.StatusCode)
	}
	defer resp.Body.Close()
	var out []Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("batch response not a JSON array: %v", err)
	}
	if len(out) != 6 {
		t.Fatalf("batch returned %d entries for 6 specs", len(out))
	}
	if out[2].Status != "invalid" || !strings.Contains(out[2].Error, "protocol") {
		t.Fatalf("invalid spec entry = %+v", out[2])
	}
	for _, i := range []int{0, 1, 3, 4, 5} {
		if out[i].Status != "done" || out[i].Metrics == nil || out[i].Metrics.TotalCycles != 4242 {
			t.Fatalf("entry %d = %+v, want done with metrics", i, out[i])
		}
	}
	if out[0].ID != out[1].ID || out[0].ID != out[4].ID || out[3].ID != out[5].ID || out[0].ID == out[3].ID {
		t.Fatalf("batch ids wrong: %s %s %s %s", out[0].ID, out[1].ID, out[3].ID, out[5].ID)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions for 2 distinct specs, want 2", got)
	}
	if shed := resp.Header.Get("X-Getm-Shed"); shed != "0" {
		t.Fatalf("X-Getm-Shed = %q, want 0", shed)
	}
}

func TestBatchRejectsEmptyAndOversized(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	if resp := postBatch(t, ts.URL, `[]`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	big := `[` + strings.Repeat(`{"protocol":"getm","benchmark":"ht-h"},`, maxBatch) +
		`{"protocol":"getm","benchmark":"ht-h"}]`
	if resp := postBatch(t, ts.URL, big, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// Per-client quota sheds over-rate submissions with 429 + Retry-After ≥ 1
// while an independent client keeps being admitted.
func TestQuotaShedsOverHTTP(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 16, QuotaRPS: 0.001, QuotaBurst: 2})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	send := func(client string, seed int) *http.Response {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/runs", strings.NewReader(
			fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, seed)))
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	for i := 1; i <= 2; i++ {
		resp := send("greedy", i)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("within-burst request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := send("greedy", 3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("over-quota Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	other := send("patient", 4)
	if other.StatusCode != http.StatusOK {
		t.Fatalf("independent client shed by greedy's quota: status %d", other.StatusCode)
	}
	other.Body.Close()

	code, body := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "getm_serve_quota_rejected_total 1") {
		t.Fatalf("quota rejection not counted:\n%s", body)
	}
}

// Repeat traffic for a completed run takes the lock-free fast path: same id,
// same body, zero extra executions, deduped counter moving.
func TestFastPathJoinsCompletedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	spec := `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`
	first := decodeRun(t, postRun(t, ts.URL, spec))
	if first.Status != "done" {
		t.Fatalf("first run = %+v", first)
	}
	for i := 0; i < 5; i++ {
		again := decodeRun(t, postRun(t, ts.URL, spec))
		if again.ID != first.ID || again.Status != "done" || again.Metrics == nil ||
			again.Metrics.TotalCycles != first.Metrics.TotalCycles {
			t.Fatalf("repeat %d = %+v, want the completed job's result", i, again)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions after repeats, want 1", got)
	}
	if got := s.met.deduped.Load(); got < 5 {
		t.Fatalf("deduped counter %d, want >= 5", got)
	}
}

// Baseline mode must behave identically at the API level (it is the
// benchmark control arm): same dedupe answers, same store persistence, just
// without the fast path and coalescer.
func TestBaselineModeStillCorrect(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, QueueDepth: 4, Store: store.Open(dir), Baseline: true})
	if s.coal != nil {
		t.Fatal("baseline server built a coalescer")
	}
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	spec := `{"protocol":"getm","benchmark":"ht-h","scale":0.1}`
	first := decodeRun(t, postRun(t, ts.URL, spec))
	again := decodeRun(t, postRun(t, ts.URL, spec))
	if first.Status != "done" || again.ID != first.ID || again.Status != "done" {
		t.Fatalf("baseline responses: first=%+v again=%+v", first, again)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("baseline executed %d times for identical specs, want 1", got)
	}
	// The baseline surface predates admission batching: no batch endpoint.
	if resp := postBatch(t, ts.URL, `[`+spec+`]`, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("baseline batch endpoint status %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// Satellite: the coalescer participates in graceful drain. A server with an
// hour-long flush interval acknowledges a run; nothing is on disk until
// Drain, whose final flush persists it; a restarted server resolves the id
// from the store. No acknowledged run is lost to a SIGTERM.
func TestDrainFlushesCoalescerNoAcknowledgedRunLost(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers: 1, QueueDepth: 4, Store: store.Open(dir),
		FlushInterval:  time.Hour, // interval never fires: only Drain's final flush persists
		FlushHighWater: 1 << 30,
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Real execute path (tiny workload) so the runner's Persist hook —
	// wired to the coalescer — actually fires.
	resp := postRun(t, ts.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.02}`)
	ack := decodeRun(t, resp)
	if ack.Status != "done" || ack.ID == "" {
		t.Fatalf("run not acknowledged: %+v", ack)
	}

	if _, ok := store.Open(dir).Get(baseID(ack.ID)); ok {
		t.Fatal("result on disk before any flush — coalescing is not deferring writes")
	}
	if n := s.coal.pendingCount(); n != 1 {
		t.Fatalf("%d pending records after one acknowledged run, want 1", n)
	}

	if err := s.Drain(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, ok := store.Open(dir).Get(baseID(ack.ID)); !ok {
		t.Fatal("acknowledged run lost across drain — final flush missing")
	}

	// Restart: a fresh server resolves the id durably from the store.
	s2 := New(Config{Workers: 1, QueueDepth: 4, Store: store.Open(dir)})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	defer s2.Drain(time.Second)
	code, body := getBody(t, ts2.URL+"/v1/runs/"+ack.ID)
	if code != http.StatusOK || !strings.Contains(body, `"store"`) {
		t.Fatalf("restarted server could not resolve acknowledged id: %d %q", code, body)
	}
}

// promSample is one parsed exposition series (name includes its label set).
type promSample struct {
	name   string // full series name, labels included
	family string // metric family owning the HELP/TYPE comments
	value  float64
	typ    string // from the preceding # TYPE line
}

// promFamily resolves a sample's metric family: the bare name with any label
// set stripped, and — for summary families — the _sum/_count suffixes folded
// back onto the base family, exactly as the exposition format defines them.
func promFamily(name string, types map[string]string) string {
	base := name
	if i := strings.IndexByte(base, '{'); i >= 0 {
		base = base[:i]
	}
	if _, ok := types[base]; ok {
		return base
	}
	for _, suf := range []string{"_sum", "_count"} {
		if fam, found := strings.CutSuffix(base, suf); found {
			if types[fam] == "summary" {
				return fam
			}
		}
	}
	return base
}

// parseProm strictly parses the Prometheus text exposition format used by
// /metrics: every non-comment line must be `name[{labels}] value` with a
// float value, every family must carry # HELP and # TYPE comments (counter,
// gauge, or summary), and series names (labels included) must be unique.
func parseProm(t *testing.T, body string) map[string]promSample {
	t.Helper()
	out := make(map[string]promSample)
	types := make(map[string]string)
	helps := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
			helps[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line[len("# TYPE "):])
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "summary") {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d: sample %q is not `name value`", ln+1, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: value %q not a float: %v", ln+1, fields[1], err)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("line %d: malformed label set in %q", ln+1, name)
		}
		if _, dup := out[name]; dup {
			t.Fatalf("line %d: duplicate series %s", ln+1, name)
		}
		family := promFamily(name, types)
		if !helps[family] {
			t.Fatalf("line %d: %s has no # HELP", ln+1, name)
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("line %d: %s has no # TYPE", ln+1, name)
		}
		out[name] = promSample{name: name, family: family, value: v, typ: typ}
	}
	return out
}

// Satellite: the full exposition parses strictly, counters carry counter
// types, and every counter is monotone non-decreasing across scrapes under
// live traffic.
func TestMetricsStrictFormatAndMonotoneCounters(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8, QuotaRPS: 1000})
	var execs atomic.Int64
	s.execute = instantStub(&execs)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	scrape := func() map[string]promSample {
		code, body := getBody(t, ts.URL+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("/metrics = %d", code)
		}
		return parseProm(t, body)
	}

	prev := scrape()
	for _, name := range []string{
		"getm_serve_requests_total", "getm_serve_batches_total",
		"getm_serve_quota_rejected_total", "getm_serve_deduped_total",
		"getm_serve_http_latency_seconds_count", "getm_serve_fair_clients",
		"getm_serve_quota_clients", "getm_serve_goroutines",
		"getm_serve_heap_alloc_bytes", "getm_serve_slo_slow_runs_total",
		`getm_serve_stage_latency_seconds{stage="queue",quantile="0.5"}`,
	} {
		if _, ok := prev[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}

	for round := 0; round < 3; round++ {
		// Mixed traffic between scrapes: singles, repeats, a batch.
		for i := 0; i < 3; i++ {
			resp := postRun(t, ts.URL, fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, round*3+i+1))
			resp.Body.Close()
		}
		resp := postBatch(t, ts.URL, `[{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":1},{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":2}]`, nil)
		resp.Body.Close()

		cur := scrape()
		for name, p := range prev {
			c, ok := cur[name]
			if !ok {
				t.Fatalf("scrape %d: metric %s disappeared", round, name)
			}
			if c.typ != p.typ {
				t.Fatalf("scrape %d: %s changed type %s -> %s", round, name, p.typ, c.typ)
			}
			if p.typ == "counter" && c.value < p.value {
				t.Fatalf("scrape %d: counter %s went backward: %v -> %v", round, name, p.value, c.value)
			}
		}
		prev = cur
	}
	if prev["getm_serve_requests_total"].value < 9+6 {
		t.Fatalf("requests_total %v after 9 singles + 3 batches of 2, want >= 15", prev["getm_serve_requests_total"].value)
	}
	if prev["getm_serve_batches_total"].value != 3 {
		t.Fatalf("batches_total %v, want 3", prev["getm_serve_batches_total"].value)
	}
}

// Satellite: the queue-drain Retry-After estimate is never below one second
// (sub-second mean latencies must not produce Retry-After: 0).
func TestRetryAfterSecondsFloor(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer s.Drain(time.Second)
	// No traffic yet: mean latency 0.
	if got := s.retryAfterSeconds(); got < 1 {
		t.Fatalf("retryAfterSeconds with no data = %d, want >= 1", got)
	}
	// Sub-millisecond latencies: 64 queued / 4 workers * ~0ms rounds to 0s
	// without the clamp.
	s.met.observe(200*time.Microsecond, nil, nil)
	s.met.observe(300*time.Microsecond, nil, nil)
	if got := s.retryAfterSeconds(); got < 1 {
		t.Fatalf("retryAfterSeconds with sub-second mean = %d, want >= 1", got)
	}
}
