package serve

import (
	"math"
	"sync"
	"time"
)

// quotaMaxClients bounds the bucket table; when a new client would exceed
// it, full/stale buckets are evicted first (evicting a full bucket loses
// nothing — it refills to the same state on recreation).
const quotaMaxClients = 8192

// quotas is the per-client token-bucket admission filter ahead of the wait
// queue: each client key earns rps tokens per second up to burst, and a
// request without a token is shed with 429 + Retry-After before it can
// touch the queue. The fair queue makes dequeue order fair; the quota makes
// admission itself fair, so a client flooding faster than its rate cannot
// even consume queue slots.
type quotas struct {
	rps   float64
	burst float64

	mu sync.Mutex
	m  map[string]*bucket
}

// bucket is one client's token state, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotas(rps float64, burst int) *quotas {
	if rps <= 0 {
		return nil
	}
	if burst <= 0 {
		// Default: one second's worth of rate, at least one request.
		burst = int(math.Max(1, math.Ceil(rps)))
	}
	return &quotas{rps: rps, burst: float64(burst), m: make(map[string]*bucket)}
}

// allow spends one token for client if available. When the bucket is empty
// it returns ok=false and the wait until the next token accrues — the
// Retry-After hint.
func (q *quotas) allow(client string, now time.Time) (ok bool, retry time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.m[client]
	if b == nil {
		if len(q.m) >= quotaMaxClients {
			q.evictLocked(now)
		}
		b = &bucket{tokens: q.burst, last: now}
		q.m[client] = b
	}
	// Lazy refill. Concurrent callers can observe now values out of order;
	// only a forward step accrues tokens, so accounting never double-counts.
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(q.burst, b.tokens+dt*q.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / q.rps * float64(time.Second))
}

// evictLocked drops buckets that carry no information: full (would refill
// to the same state) or idle past a minute. If every bucket is hot, one
// arbitrary entry goes — 8192 concurrently-hot clients exceeding their
// quota is a load the fair queue behind us still bounds.
func (q *quotas) evictLocked(now time.Time) {
	for k, b := range q.m {
		full := b.tokens+now.Sub(b.last).Seconds()*q.rps >= q.burst
		if full || now.Sub(b.last) > time.Minute {
			delete(q.m, k)
		}
	}
	if len(q.m) >= quotaMaxClients {
		for k := range q.m {
			delete(q.m, k)
			break
		}
	}
}

// size returns the tracked client count.
func (q *quotas) size() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.m)
}

// retryAfterSecs renders a wait as a Retry-After value: whole seconds,
// rounded up, clamped to [1, 600]. The clamp to 1 matters — sub-second
// waits must never round down to "Retry-After: 0", which clients read as
// "immediately" and turn into a tight retry loop.
func retryAfterSecs(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 600 {
		return 600
	}
	return secs
}
