package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/harness"
	"getm/internal/stats"
	"getm/internal/trace"
)

// admitOutcome is the queue's verdict on one submission.
type admitOutcome int

const (
	admitOK         admitOutcome = iota // admitted (or joined an existing job)
	admitFull                           // queue full: shed with 429
	admitClientFull                     // this client's backlog full: shed with 429
	admitDraining                       // server draining: refuse with 503
)

// pool is the execution side of the server: a fixed worker set behind a
// bounded weighted-fair wait queue, a job table deduplicating distinct
// requests, and one harness.Runner per (scale, seed) sharing the durable
// store. Admission, status, and drain all meet here.
type pool struct {
	s *Server

	fq       *fairQueue
	workerWG sync.WaitGroup
	taskWG   sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64 // busy workers

	// baseCtx parents every request context; canceled (with cause) when a
	// drain runs out of patience.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	// jobsFast mirrors jobs for lock-free reads: the admission fast path and
	// the status endpoint load from it without touching mu. Writes happen
	// under mu (store-after-insert), so a fast-path hit always sees a
	// fully-initialized jobState.
	jobsFast sync.Map // id -> *jobState

	mu      sync.Mutex
	jobs    map[string]*jobState
	runners map[runnerKey]*harness.Runner
}

// runnerKey identifies one workload parameterization; jobs differing only in
// machine knobs share a runner (and its caches).
type runnerKey struct {
	scale float64
	seed  uint64
}

func newPool(s *Server) *pool {
	var weightOf func(string) int
	if len(s.cfg.ClientWeights) > 0 {
		w := s.cfg.ClientWeights
		weightOf = func(client string) int { return w[client] }
	}
	p := &pool{
		s:       s,
		fq:      newFairQueue(s.cfg.QueueDepth, s.cfg.PerClientQueue, weightOf),
		jobs:    make(map[string]*jobState),
		runners: make(map[runnerKey]*harness.Runner),
	}
	p.baseCtx, p.baseCancel = context.WithCancelCause(context.Background())
	p.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// perClientCap reports the effective per-client backlog bound.
func (p *pool) perClientCap() int { return p.fq.perCap }

// admit places one validated spec: joining an identical live (or completed)
// job, serving a completed cell from a cache tier without a queue slot, or
// taking a fair-queue slot under the submitting client's key — all
// atomically, so identical concurrent submissions collapse onto one
// jobState.
func (p *pool) admit(sp RunSpec, client string) (*jobState, admitOutcome) {
	if p.draining.Load() {
		return nil, admitDraining
	}
	r := p.runnerFor(sp)
	job := sp.job()
	id := runID(r.StoreKey(job), sp)

	p.mu.Lock()
	defer p.mu.Unlock()
	if js, ok := p.jobs[id]; ok {
		// Join the existing job — unless it finished in failure: failures
		// from per-request deadlines are timing-dependent, so a fresh
		// submission deserves a fresh attempt.
		retry := false
		select {
		case <-js.done:
			retry = js.err != nil
		default:
		}
		if !retry {
			p.s.met.deduped.Add(1)
			return js, admitOK
		}
	}

	// Fast path: the cell already has a completed result in a cache tier.
	// Serving it costs a map lookup or a disk read — never a queue slot, so
	// repeat traffic cannot be shed even under saturation.
	if m, ok := r.Lookup(job); ok && !m.Truncated {
		js := &jobState{id: id, spec: sp, client: client, done: make(chan struct{}), m: m, source: "cache"}
		js.setStatus(statusDone)
		close(js.done)
		p.insertLocked(id, sp, js)
		p.s.span(stageJoin, client, id, 0, 0)
		return js, admitOK
	}

	js := &jobState{id: id, spec: sp, client: client, done: make(chan struct{}), queuedAt: time.Now()}
	js.setStatus(statusQueued)
	switch err := p.fq.push(client, js); err {
	case nil:
		p.insertLocked(id, sp, js)
		p.taskWG.Add(1)
		p.s.span(stageMiss, client, id, 0, 0)
		p.s.span(stageEnqueue, client, id, 0, 0)
		return js, admitOK
	case errClientFull:
		return nil, admitClientFull
	default: // errQueueFull, errQueueDone
		return nil, admitFull
	}
}

// insertLocked publishes a jobState to the locked table, the lock-free
// mirror, and the spec→id cache (in that order, so fast-path hits only see
// published jobs). Caller holds p.mu.
func (p *pool) insertLocked(id string, sp RunSpec, js *jobState) {
	p.jobs[id] = js
	p.jobsFast.Store(id, js)
	p.s.idCache.Store(sp.cacheKey(), id)
}

// lookup finds a live or completed job by id, lock-free.
func (p *pool) lookup(id string) (*jobState, bool) {
	v, ok := p.jobsFast.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*jobState), true
}

// hasHeadroom reports whether the wait queue can absorb another request.
func (p *pool) hasHeadroom() bool {
	return p.fq.len() < p.fq.capacity
}

func (p *pool) worker() {
	defer p.workerWG.Done()
	for {
		js, ok := p.fq.pop()
		if !ok {
			return
		}
		p.runTask(js)
	}
}

// runTask executes one admitted job under its per-request deadline and
// publishes the outcome.
func (p *pool) runTask(js *jobState) {
	defer p.taskWG.Done()
	p.running.Add(1)
	defer p.running.Add(-1)
	js.setStatus(statusRunning)
	wait := time.Since(js.queuedAt)
	js.queueUS = wait.Microseconds()
	p.s.span(stageDequeue, js.client, js.id, uint64(js.queueUS), 0)

	timeout := p.s.cfg.RequestTimeout
	if t := time.Duration(js.spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(p.baseCtx, timeout)
	p.s.span(stageSimStart, js.client, js.id, 0, 0)
	start := time.Now()
	m, source, err := p.s.execute(ctx, js)
	cancel()
	elapsed := time.Since(start)
	js.simUS = elapsed.Microseconds()
	var cycles uint64
	if m != nil {
		cycles = m.TotalCycles
	}
	p.s.span(stageSimFinish, js.client, js.id, uint64(js.simUS), cycles)

	p.s.met.observe(elapsed, m, err)
	p.s.met.observeStages(wait, elapsed, time.Duration(js.persistUS.Load())*time.Microsecond)
	js.m, js.source, js.err = m, source, err
	js.elapsedMS = elapsed.Milliseconds()
	if err != nil {
		js.setStatus(statusFailed)
	} else {
		js.setStatus(statusDone)
	}
	close(js.done)
}

// simulate is the production execute hook: the request's (scale, seed)
// runner memoizes, singleflights, and persists the cell.
func (s *Server) simulate(ctx context.Context, js *jobState) (*stats.Metrics, string, error) {
	r := s.pool.runnerFor(js.spec)
	m, err := r.RunECtx(ctx, js.spec.job())
	return m, "run", err
}

// runnerFor returns (creating on first use) the runner owning this
// workload parameterization's caches.
func (p *pool) runnerFor(sp RunSpec) *harness.Runner {
	k := runnerKey{sp.Scale, sp.Seed}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.runners[k]; ok {
		return r
	}
	r := harness.NewRunner(sp.Scale)
	r.Seed = sp.Seed
	r.Store = p.s.cfg.Store
	r.StoreReuse = true
	r.Verbose = p.s.cfg.Verbose
	switch {
	case p.s.coal != nil:
		// Write-behind: completed cells accumulate in the coalescer and hit
		// the disk as batched commits instead of one fsync per simulation.
		r.Persist = p.timedPersist(p.s.coal.put)
	case p.s.cfg.Store != nil:
		// Baseline (or coalescer-less) arm: the synchronous per-simulation
		// Store.Put discipline, routed through the timing wrapper so stage
		// timings cover both arms.
		st := p.s.cfg.Store
		r.Persist = p.timedPersist(func(key, desc string, m *stats.Metrics) error {
			return st.Put(key, desc, m)
		})
	}
	if p.s.traces != nil {
		// Span capture extends to the engine: executed runs carry a sim-level
		// recorder, retained in a bounded LRU keyed by run id so /v1/spans
		// can put the request span and its engine events on one timeline.
		r.Trace = &trace.Options{RingSize: simTraceRing}
		r.TraceSink = p.s.traces.put
	}
	p.runners[k] = r
	return r
}

// simTraceRing sizes the per-run sim recorder rings under span capture:
// small enough that eight retained runs stay cheap, large enough to hold the
// tail of a serving-scale simulation.
const simTraceRing = 1 << 12

// timedPersist wraps a Persist hook with stage timing: the measured duration
// lands on the owning jobState (resolved by store key — the run id), in the
// persist-stage histogram via runTask's observe, and on the span timeline.
func (p *pool) timedPersist(inner func(string, string, *stats.Metrics) error) func(string, string, *stats.Metrics) error {
	return func(storeKey, desc string, m *stats.Metrics) error {
		t0 := time.Now()
		err := inner(storeKey, desc, m)
		d := time.Since(t0)
		if v, ok := p.jobsFast.Load(storeKey); ok {
			v.(*jobState).persistUS.Store(d.Microseconds())
		}
		p.s.span(stagePersist, "", storeKey, uint64(d.Microseconds()), 0)
		return err
	}
}

// simulated and storeHits aggregate the runner instrumentation across every
// workload parameterization.
func (p *pool) simulated() int {
	n := 0
	for _, r := range p.snapshotRunners() {
		n += r.Simulated()
	}
	return n
}

func (p *pool) storeHits() int {
	n := 0
	for _, r := range p.snapshotRunners() {
		n += r.StoreHits()
	}
	return n
}

func (p *pool) snapshotRunners() []*harness.Runner {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := make([]*harness.Runner, 0, len(p.runners))
	for _, r := range p.runners {
		rs = append(rs, r)
	}
	return rs
}

// drain refuses new work, gives queued and in-flight runs until timeout to
// finish, cancels whatever remains (engines stop within one chunk of
// simulated cycles), and stops the workers.
func (p *pool) drain(timeout time.Duration) error {
	p.draining.Store(true)
	finished := make(chan struct{})
	go func() {
		p.taskWG.Wait()
		close(finished)
	}()

	var err error
	select {
	case <-finished:
	case <-time.After(timeout):
		p.baseCancel(fmt.Errorf("server draining: %s drain timeout elapsed", timeout))
		// Cancellation propagates within one engine chunk; allow a grace
		// period before declaring the pool wedged.
		select {
		case <-finished:
			err = fmt.Errorf("drain: in-flight work canceled after %s", timeout)
		case <-time.After(30 * time.Second):
			return errors.New("drain: tasks still running after cancellation grace period")
		}
	}
	p.fq.close()
	p.workerWG.Wait()
	return err
}
