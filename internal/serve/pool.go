package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/harness"
	"getm/internal/stats"
)

// admitOutcome is the queue's verdict on one submission.
type admitOutcome int

const (
	admitOK       admitOutcome = iota // admitted (or joined an existing job)
	admitFull                         // queue full: shed with 429
	admitDraining                     // server draining: refuse with 503
)

// pool is the execution side of the server: a fixed worker set behind a
// bounded wait queue, a job table deduplicating distinct requests, and one
// harness.Runner per (scale, seed) sharing the durable store. Admission,
// status, and drain all meet here.
type pool struct {
	s *Server

	queue    chan *jobState
	quit     chan struct{}
	quitOnce sync.Once
	workerWG sync.WaitGroup
	taskWG   sync.WaitGroup
	draining atomic.Bool
	running  atomic.Int64 // busy workers

	// baseCtx parents every request context; canceled (with cause) when a
	// drain runs out of patience.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	mu      sync.Mutex
	jobs    map[string]*jobState
	runners map[runnerKey]*harness.Runner
}

// runnerKey identifies one workload parameterization; jobs differing only in
// machine knobs share a runner (and its caches).
type runnerKey struct {
	scale float64
	seed  uint64
}

func newPool(s *Server) *pool {
	p := &pool{
		s:       s,
		queue:   make(chan *jobState, s.cfg.QueueDepth),
		quit:    make(chan struct{}),
		jobs:    make(map[string]*jobState),
		runners: make(map[runnerKey]*harness.Runner),
	}
	p.baseCtx, p.baseCancel = context.WithCancelCause(context.Background())
	p.workerWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go p.worker()
	}
	return p
}

// admit places one validated spec: joining an identical live (or completed)
// job, serving a completed cell from a cache tier without a queue slot, or
// taking a queue slot — all atomically, so identical concurrent submissions
// collapse onto one jobState.
func (p *pool) admit(sp RunSpec) (*jobState, admitOutcome) {
	if p.draining.Load() {
		return nil, admitDraining
	}
	r := p.runnerFor(sp)
	job := sp.job()
	id := runID(r.StoreKey(job), sp)

	p.mu.Lock()
	defer p.mu.Unlock()
	if js, ok := p.jobs[id]; ok {
		// Join the existing job — unless it finished in failure: failures
		// from per-request deadlines are timing-dependent, so a fresh
		// submission deserves a fresh attempt.
		retry := false
		select {
		case <-js.done:
			retry = js.err != nil
		default:
		}
		if !retry {
			p.s.met.deduped.Add(1)
			return js, admitOK
		}
	}

	// Fast path: the cell already has a completed result in a cache tier.
	// Serving it costs a map lookup or a disk read — never a queue slot, so
	// repeat traffic cannot be shed even under saturation.
	if m, ok := r.Lookup(job); ok && !m.Truncated {
		js := &jobState{id: id, spec: sp, done: make(chan struct{}), m: m, source: "cache", status: statusDone}
		close(js.done)
		p.jobs[id] = js
		return js, admitOK
	}

	js := &jobState{id: id, spec: sp, done: make(chan struct{}), status: statusQueued}
	select {
	case p.queue <- js:
		p.jobs[id] = js
		p.taskWG.Add(1)
		return js, admitOK
	default:
		return nil, admitFull
	}
}

// lookup finds a live or completed job by id.
func (p *pool) lookup(id string) (*jobState, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	js, ok := p.jobs[id]
	return js, ok
}

func (p *pool) statusOf(js *jobState) jobStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return js.status
}

func (p *pool) setStatus(js *jobState, st jobStatus) {
	p.mu.Lock()
	js.status = st
	p.mu.Unlock()
}

// hasHeadroom reports whether the wait queue can absorb another request.
func (p *pool) hasHeadroom() bool {
	return len(p.queue) < cap(p.queue)
}

func (p *pool) worker() {
	defer p.workerWG.Done()
	for {
		select {
		case js := <-p.queue:
			p.runTask(js)
		case <-p.quit:
			// Don't strand anything admitted before the stop signal.
			for {
				select {
				case js := <-p.queue:
					p.runTask(js)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one admitted job under its per-request deadline and
// publishes the outcome.
func (p *pool) runTask(js *jobState) {
	defer p.taskWG.Done()
	p.running.Add(1)
	defer p.running.Add(-1)
	p.setStatus(js, statusRunning)

	timeout := p.s.cfg.RequestTimeout
	if t := time.Duration(js.spec.TimeoutMS) * time.Millisecond; t > 0 && t < timeout {
		timeout = t
	}
	ctx, cancel := context.WithTimeout(p.baseCtx, timeout)
	start := time.Now()
	m, source, err := p.s.execute(ctx, js)
	cancel()
	elapsed := time.Since(start)

	p.s.met.observe(elapsed, m, err)
	p.mu.Lock()
	js.m, js.source, js.err = m, source, err
	js.elapsedMS = elapsed.Milliseconds()
	if err != nil {
		js.status = statusFailed
	} else {
		js.status = statusDone
	}
	p.mu.Unlock()
	close(js.done)
}

// simulate is the production execute hook: the request's (scale, seed)
// runner memoizes, singleflights, and persists the cell.
func (s *Server) simulate(ctx context.Context, js *jobState) (*stats.Metrics, string, error) {
	r := s.pool.runnerFor(js.spec)
	m, err := r.RunECtx(ctx, js.spec.job())
	return m, "run", err
}

// runnerFor returns (creating on first use) the runner owning this
// workload parameterization's caches.
func (p *pool) runnerFor(sp RunSpec) *harness.Runner {
	k := runnerKey{sp.Scale, sp.Seed}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.runners[k]; ok {
		return r
	}
	r := harness.NewRunner(sp.Scale)
	r.Seed = sp.Seed
	r.Store = p.s.cfg.Store
	r.StoreReuse = true
	r.Verbose = p.s.cfg.Verbose
	p.runners[k] = r
	return r
}

// simulated and storeHits aggregate the runner instrumentation across every
// workload parameterization.
func (p *pool) simulated() int {
	n := 0
	for _, r := range p.snapshotRunners() {
		n += r.Simulated()
	}
	return n
}

func (p *pool) storeHits() int {
	n := 0
	for _, r := range p.snapshotRunners() {
		n += r.StoreHits()
	}
	return n
}

func (p *pool) snapshotRunners() []*harness.Runner {
	p.mu.Lock()
	defer p.mu.Unlock()
	rs := make([]*harness.Runner, 0, len(p.runners))
	for _, r := range p.runners {
		rs = append(rs, r)
	}
	return rs
}

// drain refuses new work, gives queued and in-flight runs until timeout to
// finish, cancels whatever remains (engines stop within one chunk of
// simulated cycles), and stops the workers.
func (p *pool) drain(timeout time.Duration) error {
	p.draining.Store(true)
	finished := make(chan struct{})
	go func() {
		p.taskWG.Wait()
		close(finished)
	}()

	var err error
	select {
	case <-finished:
	case <-time.After(timeout):
		p.baseCancel(fmt.Errorf("server draining: %s drain timeout elapsed", timeout))
		// Cancellation propagates within one engine chunk; allow a grace
		// period before declaring the pool wedged.
		select {
		case <-finished:
			err = fmt.Errorf("drain: in-flight work canceled after %s", timeout)
		case <-time.After(30 * time.Second):
			return errors.New("drain: tasks still running after cancellation grace period")
		}
	}
	p.quitOnce.Do(func() { close(p.quit) })
	p.workerWG.Wait()
	return err
}
