package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"getm/internal/stats"
	"getm/internal/store"
)

func testMetrics(cycles uint64) *stats.Metrics {
	m := stats.NewMetrics()
	m.TotalCycles = cycles
	m.Commits = 7
	return m
}

func TestCoalescerFlushesOnInterval(t *testing.T) {
	st := store.Open(t.TempDir())
	c := newCoalescer(st, 5*time.Millisecond, 1000, nil)
	defer c.close()

	if err := c.put("key1", "desc", testMetrics(100)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := st.Get("key1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flush never persisted the record")
		}
		time.Sleep(time.Millisecond)
	}
	m, _ := st.Get("key1")
	if m.TotalCycles != 100 {
		t.Fatalf("persisted TotalCycles %d, want 100", m.TotalCycles)
	}
}

func TestCoalescerAbsorbsDuplicateWrites(t *testing.T) {
	st := store.Open(t.TempDir())
	// Huge interval: nothing flushes until close, so all puts coalesce.
	c := newCoalescer(st, time.Hour, 1000, nil)

	for i := 0; i < 10; i++ {
		c.put("dup", "desc", testMetrics(uint64(i)))
	}
	if n := c.pendingCount(); n != 1 {
		t.Fatalf("10 puts of one key left %d pending records, want 1", n)
	}
	if n := c.absorbed.Load(); n != 9 {
		t.Fatalf("absorbed %d writes, want 9", n)
	}
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	m, ok := st.Get("dup")
	if !ok {
		t.Fatal("close did not flush the pending record")
	}
	if m.TotalCycles != 9 {
		t.Fatalf("persisted TotalCycles %d, want the last put (9)", m.TotalCycles)
	}
	if n := c.flushed.Load(); n != 1 {
		t.Fatalf("flushed %d records for 10 puts of one key, want 1", n)
	}
}

func TestCoalescerHighWaterForcesFlush(t *testing.T) {
	st := store.Open(t.TempDir())
	c := newCoalescer(st, time.Hour, 4, nil) // interval never fires; high water does
	defer c.close()

	for i := 0; i < 4; i++ {
		c.put("hw"+string(rune('a'+i)), "desc", testMetrics(uint64(i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.flushes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("high-water mark never triggered a flush")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := st.Get("hwa"); !ok {
		t.Fatal("high-water flush did not persist")
	}
}

func TestCoalescerRefusesTruncated(t *testing.T) {
	st := store.Open(t.TempDir())
	c := newCoalescer(st, time.Hour, 1000, nil)
	defer c.close()

	m := testMetrics(1)
	m.Truncated = true
	err := c.put("trunc", "desc", m)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated metrics accepted (err=%v); the store backstop must hold on every write path", err)
	}
	if c.pendingCount() != 0 {
		t.Fatal("refused record still pending")
	}
}

func TestCoalescerCloseIsFinalAndIdempotent(t *testing.T) {
	st := store.Open(t.TempDir())
	c := newCoalescer(st, time.Hour, 1000, nil)
	c.put("k", "desc", testMetrics(5))
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("k"); !ok {
		t.Fatal("close lost the pending record")
	}
	if err := c.close(); err != nil {
		t.Fatalf("second close errored: %v", err)
	}
}

func TestCoalescerConcurrentPuts(t *testing.T) {
	st := store.Open(t.TempDir())
	c := newCoalescer(st, time.Millisecond, 16, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := "k" + string(rune('0'+i%10))
				c.put(key, "desc", testMetrics(uint64(i)))
			}
		}(g)
	}
	wg.Wait()
	if err := c.close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		key := "k" + string(rune('0'+i))
		if _, ok := st.Get(key); !ok {
			t.Fatalf("key %s missing after concurrent puts + close", key)
		}
	}
}
