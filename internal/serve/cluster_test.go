package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"getm/internal/store"
)

// testCluster is an in-process coordinator/worker fabric on loopback
// listeners: real HTTP between nodes, every Server reachable for white-box
// assertions (simulated counts, peer tables, stub substitution).
type testCluster struct {
	coord   *testNode
	workers []*testNode
}

type testNode struct {
	s   *Server
	srv *http.Server
	url string
}

// kill severs the node from the network — listener and live connections —
// without draining it, simulating a crashed worker. Its in-process state
// stays readable.
func (n *testNode) kill() { n.srv.Close() }

// clusterOpts tweaks the harness per test.
type clusterOpts struct {
	workerCfg  func(i int, cfg *Config) // per-worker config hook
	coordCfg   func(cfg *Config)
	sharedDir  string // non-empty: all nodes share one store directory
	workerDirs []string
}

// newTestCluster starts `workers` worker nodes plus one coordinator routing
// across them. Every node gets a store; workers peer with each other (store
// sync), the coordinator peers with every worker (routing).
func newTestCluster(t *testing.T, workers int, opts clusterOpts) *testCluster {
	t.Helper()
	n := workers + 1 // + coordinator
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	workerURLs := urls[:workers]

	tc := &testCluster{}
	dirFor := func(i int) string {
		if opts.sharedDir != "" {
			return opts.sharedDir
		}
		if i < len(opts.workerDirs) {
			return opts.workerDirs[i]
		}
		return t.TempDir()
	}
	start := func(i int, cfg Config) *testNode {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("node %d config: %v", i, err)
		}
		s := New(cfg)
		node := &testNode{s: s, srv: &http.Server{Handler: s}, url: urls[i]}
		go node.srv.Serve(lns[i])
		return node
	}
	for i := 0; i < workers; i++ {
		var peers []string
		for j := 0; j < workers; j++ {
			if j != i {
				peers = append(peers, workerURLs[j])
			}
		}
		cfg := Config{
			Role:          RoleWorker,
			Peers:         peers,
			Workers:       2,
			QueueDepth:    64,
			Store:         store.Open(dirFor(i)),
			FlushInterval: 5 * time.Millisecond,
			ProbeInterval: 25 * time.Millisecond,
		}
		if opts.workerCfg != nil {
			opts.workerCfg(i, &cfg)
		}
		tc.workers = append(tc.workers, start(i, cfg))
	}
	ccfg := Config{
		Role:          RoleCoordinator,
		Peers:         workerURLs,
		Workers:       2,
		QueueDepth:    64,
		Store:         store.Open(dirFor(workers)),
		FlushInterval: 5 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
	}
	if opts.coordCfg != nil {
		opts.coordCfg(&ccfg)
	}
	tc.coord = start(workers, ccfg)

	t.Cleanup(func() {
		tc.coord.srv.Close()
		tc.coord.s.Drain(5 * time.Second)
		for _, w := range tc.workers {
			w.srv.Close()
			w.s.Drain(5 * time.Second)
		}
	})
	return tc
}

// waitProbed blocks until the server's prober has seen every peer healthy
// with positive headroom. Tests that assert on shard distribution call this
// first: before the first probe lands, a peer's headroom reads 0 and the
// planner would (correctly, but unhelpfully for the assertion) steal its
// work.
func waitProbed(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ready := true
		for _, p := range s.cluster.peers {
			if !p.healthy.Load() || p.headroom.Load() <= 0 {
				ready = false
			}
		}
		if ready {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never saw every peer healthy with headroom")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// simulatedTotal sums getm_serve_simulated_total across the fabric — the
// "no cell paid for twice" acceptance signal.
func (tc *testCluster) simulatedTotal() int {
	n := tc.coord.s.pool.simulated()
	for _, w := range tc.workers {
		n += w.s.pool.simulated()
	}
	return n
}

// paperGrid is the full protocol × benchmark sweep the acceptance criteria
// reference, at test scale.
func paperGrid() []string {
	var specs []string
	for _, proto := range []string{"getm", "warptm", "warptm-el", "eapg", "fglock"} {
		for _, bench := range []string{"ht-h", "ht-m", "ht-l", "atm"} {
			specs = append(specs,
				fmt.Sprintf(`{"protocol":%q,"benchmark":%q,"scale":0.02}`, proto, bench))
		}
	}
	return specs
}

// submitAll posts each spec synchronously through url and returns the
// decoded responses, failing the test on any non-done outcome.
func submitAll(t *testing.T, url string, specs []string) []Response {
	t.Helper()
	out := make([]Response, len(specs))
	for i, spec := range specs {
		resp := postRun(t, url, spec)
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("spec %s: status %d: %s", spec, resp.StatusCode, b)
		}
		out[i] = decodeRun(t, resp)
		if out[i].Status != "done" {
			t.Fatalf("spec %s: status %q (%s)", spec, out[i].Status, out[i].Error)
		}
	}
	return out
}

// storeBytes maps key -> raw record bytes for every committed record in dir.
func storeBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(name, ".json")] = b
	}
	return out
}

// waitRecords blocks until the union of the store dirs holds at least n
// committed records. (Polling the coalescers' pending counts is not enough:
// a flush empties pending before its renames land on disk.)
func waitRecords(t *testing.T, n int, dirs ...string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		keys := map[string]bool{}
		for _, dir := range dirs {
			for k := range storeBytes(t, dir) {
				keys[k] = true
			}
		}
		if len(keys) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stores hold %d records, want %d", len(keys), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestClusterShardedSweepMatchesSingleNode drives the full paper grid
// through a 3-worker cluster and through one single-node server, then
// compares store contents byte for byte: sharding the sweep must change
// where cells run, never what they produce. Also pins the sharding itself
// (every worker simulated something, the coordinator nothing) and the
// cluster-wide dedupe (cells simulated exactly once).
func TestClusterShardedSweepMatchesSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid sweep in -short mode")
	}
	specs := paperGrid()

	// Reference arm: one node, one store.
	singleDir := t.TempDir()
	single := New(Config{Workers: 2, QueueDepth: 64, Store: store.Open(singleDir), FlushInterval: 5 * time.Millisecond})
	singleTS := newLocalServer(t, single)
	submitAll(t, singleTS, specs)
	if err := single.Drain(30 * time.Second); err != nil {
		t.Fatalf("single-node drain: %v", err)
	}
	want := storeBytes(t, singleDir)
	if len(want) != len(specs) {
		t.Fatalf("single-node store holds %d records, want %d", len(want), len(specs))
	}

	// Cluster arm: per-worker stores, coordinator routing.
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	tc := newTestCluster(t, 3, clusterOpts{workerDirs: dirs})
	waitProbed(t, tc.coord.s)
	submitAll(t, tc.coord.url, specs)
	waitRecords(t, len(specs), dirs...)

	if got, wantN := tc.simulatedTotal(), len(specs); got != wantN {
		t.Errorf("cluster simulated %d cells, want exactly %d (each cell once)", got, wantN)
	}
	if n := tc.coord.s.pool.simulated(); n != 0 {
		t.Errorf("coordinator simulated %d cells; a coordinator must only route", n)
	}

	// Union of the worker stores == the single-node store, byte for byte.
	got := map[string][]byte{}
	perWorker := make([]int, len(dirs))
	for i, dir := range dirs {
		for k, b := range storeBytes(t, dir) {
			if prev, ok := got[k]; ok && string(prev) != string(b) {
				t.Errorf("workers disagree on record %s", k)
			}
			got[k] = b
			perWorker[i]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("cluster produced %d distinct records, single node %d", len(got), len(want))
	}
	for k, b := range want {
		cb, ok := got[k]
		if !ok {
			t.Errorf("cluster store is missing record %s", k)
			continue
		}
		if string(cb) != string(b) {
			t.Errorf("record %s differs between cluster and single node", k)
		}
	}
	for i, n := range perWorker {
		if n == 0 {
			t.Errorf("worker %d simulated nothing; rendezvous sharding is not spreading the grid", i)
		}
	}
}

// newLocalServer is httptest.NewServer without the import cycle drama: a
// plain loopback http.Server wired to s, closed via t.Cleanup.
func newLocalServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestClusterKillWorkerResume kills one worker mid-sweep and re-drives the
// whole grid: the survivors absorb the dead worker's cells, completed work
// resumes from the shared store, and getm_serve_simulated_total across the
// fabric stays at one execution per cell.
func TestClusterKillWorkerResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-wave sweep in -short mode")
	}
	shared := t.TempDir()
	tc := newTestCluster(t, 3, clusterOpts{sharedDir: shared})
	waitProbed(t, tc.coord.s)
	specs := paperGrid()

	// Wave 1: half the grid completes and flushes durably.
	wave1 := specs[:len(specs)/2]
	submitAll(t, tc.coord.url, wave1)
	waitRecords(t, len(wave1), shared)
	sim1 := tc.simulatedTotal()
	if sim1 != len(wave1) {
		t.Fatalf("wave 1 simulated %d, want %d", sim1, len(wave1))
	}

	// Kill a worker that actually executed part of wave 1.
	victim := -1
	for i, w := range tc.workers {
		if w.s.pool.simulated() > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no worker simulated anything in wave 1")
	}
	tc.workers[victim].kill()

	// Wave 2: the full grid. The victim's completed cells must resolve from
	// the shared store on whichever survivor inherits them; only the cells
	// nobody ran yet may simulate.
	submitAll(t, tc.coord.url, specs)
	waitRecords(t, len(specs), shared)
	if got := tc.simulatedTotal(); got != len(specs) {
		t.Errorf("after kill+resume the fabric simulated %d cell-executions for %d cells — %s",
			got, len(specs),
			map[bool]string{true: "cells were re-simulated", false: "cells were lost"}[got > len(specs)])
	}
	if n := tc.workers[victim].s.pool.simulated(); n == 0 {
		t.Error("victim simulated nothing before the kill; the test lost its point")
	}

	// Every cell of the grid is durably in the shared store.
	if got := len(storeBytes(t, shared)); got != len(specs) {
		t.Errorf("shared store holds %d records, want %d", got, len(specs))
	}
}

// specOwnedBy finds a spec whose rendezvous owner (per the coordinator's
// ranking) is the peer at targetURL, by scanning seeds.
func specOwnedBy(t *testing.T, coord *Server, targetURL string) (string, string) {
	t.Helper()
	for seed := 1; seed < 4096; seed++ {
		sp := RunSpec{Protocol: "getm", Benchmark: "ht-h", Scale: 0.1, Seed: uint64(seed)}
		sp.normalize()
		if err := sp.validate(1.0); err != nil {
			t.Fatal(err)
		}
		id := coord.runIDFor(&sp)
		if coord.cluster.rank(baseID(id))[0].url == targetURL {
			return fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, seed), id
		}
	}
	t.Fatal("no seed hashed onto the target worker")
	return "", ""
}

// TestClusterHedgedRetry pins the hedge path: the rendezvous owner sits on
// a run past the hedge delay, the coordinator launches a second request
// against the next-ranked peer, the fast peer's response wins, and the slow
// (losing) request's context is canceled. The slow owner is a stub HTTP
// server rather than a real node so the loser's request-context cancellation
// is directly observable.
func TestClusterHedgedRetry(t *testing.T) {
	var fastExecs atomic.Int64
	slowCanceled := make(chan struct{}, 4)
	stall := make(chan struct{})
	defer close(stall)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/readyz":
			w.Header().Set(headerHeadroom, "8")
			io.WriteString(w, "ready\n")
		case r.URL.Path == "/v1/runs" && r.Method == http.MethodPost:
			// Drain the body so the server's background read is armed and a
			// client disconnect cancels r.Context() (as a real node, which
			// decodes the spec immediately, would observe it).
			io.Copy(io.Discard, r.Body)
			select {
			case <-stall:
				http.Error(w, "released", http.StatusInternalServerError)
			case <-r.Context().Done():
				slowCanceled <- struct{}{}
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer slow.Close()

	fastLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fast := New(Config{Workers: 2, QueueDepth: 16})
	fast.execute = instantStub(&fastExecs)
	fastSrv := &http.Server{Handler: fast}
	go fastSrv.Serve(fastLn)
	defer func() {
		fastSrv.Close()
		fast.Drain(5 * time.Second)
	}()
	fastURL := "http://" + fastLn.Addr().String()

	coord := New(Config{
		Role:          RoleCoordinator,
		Peers:         []string{slow.URL, fastURL},
		Workers:       2,
		QueueDepth:    16,
		HedgeDelay:    15 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond,
	})
	coordURL := newLocalServer(t, coord)
	defer coord.Drain(5 * time.Second)
	waitProbed(t, coord) // otherwise an unprobed owner would be stolen from, not hedged
	spec, id := specOwnedBy(t, coord, slow.URL)

	start := time.Now()
	resp := postRun(t, coordURL, spec)
	got := decodeRun(t, resp)
	if resp.StatusCode != http.StatusOK || got.Status != "done" {
		t.Fatalf("hedged run: status %d / %q (%s)", resp.StatusCode, got.Status, got.Error)
	}
	if got.ID != id {
		t.Fatalf("hedged run answered id %s, want %s", got.ID, id)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedged run took %s; the hedge did not rescue it", elapsed)
	}
	if fastExecs.Load() == 0 {
		t.Fatal("the hedge target never executed; response came from nowhere")
	}
	if n := coord.met.hedges.Load(); n < 1 {
		t.Fatalf("hedges counter = %d, want >= 1", n)
	}
	var hedgedPeer *peer
	for _, p := range coord.cluster.peers {
		if p.url == fastURL {
			hedgedPeer = p
		}
	}
	if n := hedgedPeer.hedged.Load(); n < 1 {
		t.Fatalf("per-peer hedged counter = %d, want >= 1", n)
	}

	// Loser canceled: the slow owner's in-flight request must observe its
	// context dying once the winning response is relayed.
	select {
	case <-slowCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing (slow) request was never canceled")
	}
}

// TestClusterDeadPeerFailover pins the transport-failure path: the owner is
// gone entirely, the forward fails fast, and the submission completes on
// the next-ranked peer without waiting out the hedge delay machinery.
func TestClusterDeadPeerFailover(t *testing.T) {
	var execs0, execs1 atomic.Int64
	tc := newTestCluster(t, 2, clusterOpts{
		coordCfg: func(cfg *Config) { cfg.HedgeDelay = time.Hour }, // hedging must not be what saves this
	})
	tc.workers[0].s.execute = instantStub(&execs0)
	tc.workers[1].s.execute = instantStub(&execs1)
	spec, _ := specOwnedBy(t, tc.coord.s, tc.coord.s.cluster.peers[0].url)
	tc.workers[0].kill()

	resp := postRun(t, tc.coord.url, spec)
	got := decodeRun(t, resp)
	if resp.StatusCode != http.StatusOK || got.Status != "done" {
		t.Fatalf("failover run: status %d / %q (%s)", resp.StatusCode, got.Status, got.Error)
	}
	if execs1.Load() == 0 {
		t.Fatal("surviving peer never executed the failed-over run")
	}
	p0 := tc.coord.s.cluster.peers[0]
	if p0.failed.Load() == 0 {
		t.Error("dead peer's failure counter never moved")
	}
	if p0.healthy.Load() {
		t.Error("dead peer still marked healthy after a transport failure")
	}
}

// TestClusterWorkStealing saturates the owner's queue and checks the
// planner routes around it: the next-ranked peer absorbs the run and its
// stolen counter records the steal.
func TestClusterWorkStealing(t *testing.T) {
	var fastExecs atomic.Int64
	block := make(chan struct{})
	var blockedExecs atomic.Int64
	tc := newTestCluster(t, 2, clusterOpts{
		workerCfg: func(i int, cfg *Config) {
			cfg.Workers = 1
			cfg.QueueDepth = 2
		},
	})
	tc.workers[0].s.execute = blockingStub(&blockedExecs, block)
	tc.workers[1].s.execute = instantStub(&fastExecs)
	defer close(block)
	waitProbed(t, tc.coord.s)

	// Saturate worker 0: one run occupies its single worker, two more fill
	// the queue — zero headroom.
	for seed := 1; seed <= 3; seed++ {
		resp := postRun(t, tc.workers[0].url,
			fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-m","scale":0.1,"seed":%d,"async":true}`, seed+100000))
		resp.Body.Close()
		if seed == 1 {
			waitInflight(t, tc.workers[0].s, 1)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for tc.workers[0].s.pool.fq.len() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("worker 0 queue never filled (len %d)", tc.workers[0].s.pool.fq.len())
		}
		time.Sleep(time.Millisecond)
	}
	// Wait for the coordinator's prober to observe the saturation (headroom
	// started positive after waitProbed, so the drop is a real observation).
	failedBefore := tc.coord.s.cluster.peers[0].failed.Load()
	for tc.coord.s.cluster.peers[0].headroom.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("prober never observed saturation (headroom %d)", tc.coord.s.cluster.peers[0].headroom.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := tc.coord.s.cluster.peers[0].failed.Load(); n != failedBefore {
		t.Fatalf("probing a saturated peer recorded %d transport failures; saturation must not read as death", n-failedBefore)
	}

	spec, _ := specOwnedBy(t, tc.coord.s, tc.coord.s.cluster.peers[0].url)
	resp := postRun(t, tc.coord.url, spec)
	got := decodeRun(t, resp)
	if resp.StatusCode != http.StatusOK || got.Status != "done" {
		t.Fatalf("stolen run: status %d / %q (%s)", resp.StatusCode, got.Status, got.Error)
	}
	if fastExecs.Load() == 0 {
		t.Fatal("the unsaturated peer never executed the stolen run")
	}
	if n := tc.coord.s.cluster.peers[1].stolen.Load(); n < 1 {
		t.Fatalf("per-peer stolen counter = %d, want >= 1", n)
	}
}

// TestClusterStoreSync pins the store-sync path end to end: a cell executes
// on its owner, and a status read against the coordinator — whose local
// store has never seen the cell — resolves by fetching the raw record from
// the peer, verifying it, and writing it through.
func TestClusterStoreSync(t *testing.T) {
	workerDirs := []string{t.TempDir(), t.TempDir()}
	tc := newTestCluster(t, 2, clusterOpts{workerDirs: workerDirs})
	specs := []string{`{"protocol":"getm","benchmark":"ht-l","scale":0.02}`}
	got := submitAll(t, tc.coord.url, specs)
	waitRecords(t, 1, workerDirs...)
	id := got[0].ID

	code, body := getBody(t, tc.coord.url+"/v1/runs/"+id)
	if code != http.StatusOK {
		t.Fatalf("coordinator status read: %d: %s", code, body)
	}
	var r Response
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Status != "done" || r.Metrics == nil {
		t.Fatalf("coordinator status read: %+v", r)
	}
	if tc.coord.s.met.storeFills.Load() < 1 {
		t.Error("coordinator answered without a peer fill; expected a store-sync fetch")
	}
	// Write-through: the record is now in the coordinator's own store.
	if _, ok := tc.coord.s.cfg.Store.ReadRaw(baseID(id)); !ok {
		t.Error("peer fill was not written through to the coordinator's store")
	}
	// The non-owner worker can answer too (fills from its peer).
	for _, w := range tc.workers {
		code, _ := getBody(t, w.url+"/v1/runs/"+id)
		if code != http.StatusOK {
			t.Errorf("worker %s cannot answer for the cell: %d", w.url, code)
		}
	}
}

// TestClusterPeerMetricsLint drives a little traffic and lints the
// coordinator's per-peer metric families: HELP/TYPE present, every sample
// labeled with its peer, counters consistent with the traffic.
func TestClusterPeerMetricsLint(t *testing.T) {
	var e0, e1 atomic.Int64
	tc := newTestCluster(t, 2, clusterOpts{})
	tc.workers[0].s.execute = instantStub(&e0)
	tc.workers[1].s.execute = instantStub(&e1)
	for seed := 1; seed <= 8; seed++ {
		resp := postRun(t, tc.coord.url,
			fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, seed))
		resp.Body.Close()
	}
	code, body := getBody(t, tc.coord.url+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics scrape: %d", code)
	}
	families := []string{
		"getm_serve_peer_healthy",
		"getm_serve_peer_headroom",
		"getm_serve_peer_forwarded_total",
		"getm_serve_peer_stolen_total",
		"getm_serve_peer_hedged_total",
		"getm_serve_peer_failed_total",
		"getm_serve_peer_fills_total",
		"getm_serve_cluster_peers",
		"getm_serve_hedges_total",
		"getm_serve_store_peer_fills_total",
	}
	for _, f := range families {
		if !strings.Contains(body, "# HELP "+f+" ") {
			t.Errorf("family %s missing HELP", f)
		}
		if !strings.Contains(body, "# TYPE "+f+" ") {
			t.Errorf("family %s missing TYPE", f)
		}
	}
	// Every per-peer family exposes one labeled sample per configured peer.
	for _, p := range tc.coord.s.cluster.peers {
		for _, f := range families[:7] {
			if !strings.Contains(body, f+`{peer="`+p.name+`"}`) {
				t.Errorf("family %s missing sample for peer %s", f, p.name)
			}
		}
	}
	var forwarded int64
	for _, p := range tc.coord.s.cluster.peers {
		forwarded += p.forwarded.Load()
	}
	if forwarded < 8 {
		t.Errorf("forwarded across peers = %d, want >= 8 (one per submission)", forwarded)
	}
	if e0.Load()+e1.Load() == 0 {
		t.Error("no worker executed anything; the lint ran against idle counters")
	}
}

// TestClusterBatchSharding drives one batch through the coordinator: the
// specs shard across workers by rendezvous, invalid entries answer in
// place, and the response array preserves submission order.
func TestClusterBatchSharding(t *testing.T) {
	var e0, e1 atomic.Int64
	tc := newTestCluster(t, 2, clusterOpts{})
	tc.workers[0].s.execute = instantStub(&e0)
	tc.workers[1].s.execute = instantStub(&e1)
	waitProbed(t, tc.coord.s)

	var entries []string
	for seed := 1; seed <= 12; seed++ {
		entries = append(entries, fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d}`, seed))
	}
	entries = append(entries, `{"protocol":"nope","benchmark":"ht-h"}`) // invalid, answered locally
	batch := "[" + strings.Join(entries, ",") + "]"
	resp, err := http.Post(tc.coord.url+"/v1/runs/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d", resp.StatusCode)
	}
	var out []Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(entries) {
		t.Fatalf("batch returned %d entries, want %d", len(out), len(entries))
	}
	for i := 0; i < 12; i++ {
		if out[i].Status != "done" {
			t.Errorf("batch entry %d: status %q (%s)", i, out[i].Status, out[i].Error)
		}
	}
	if out[12].Status != "invalid" {
		t.Errorf("invalid entry answered %q, want invalid", out[12].Status)
	}
	if e0.Load() == 0 || e1.Load() == 0 {
		t.Errorf("batch did not shard: worker execs %d/%d", e0.Load(), e1.Load())
	}
}

// TestClusterDrainAcceptRaceCoordinator is the coordinator-role arm of the
// drain/accept race: submissions racing the coordinator's drain either
// complete (having been forwarded and executed) or get a clean 503 — never
// an acceptance the drain then drops on the floor.
func TestClusterDrainAcceptRaceCoordinator(t *testing.T) {
	var execs atomic.Int64
	tc := newTestCluster(t, 1, clusterOpts{})
	tc.workers[0].s.execute = instantStub(&execs)

	stop := make(chan struct{})
	wg := drainFlood(t, tc.coord.url, stop)
	time.Sleep(20 * time.Millisecond)
	if err := tc.coord.s.Drain(10 * time.Second); err != nil {
		t.Errorf("coordinator drain under flood: %v", err)
	}
	close(stop)
	wg.Wait()
	if execs.Load() == 0 {
		t.Fatal("flood never reached the worker; the race was not exercised")
	}
	// The worker must hold no stuck jobs either.
	tc.workers[0].s.pool.jobsFast.Range(func(_, v any) bool {
		js := v.(*jobState)
		select {
		case <-js.done:
		default:
			t.Errorf("worker run %s accepted but never finished", js.id)
		}
		return true
	})
}

// TestClusterRendezvousDeterminism pins the routing function itself: stable
// across calls and instances, key-dependent, and minimally disruptive (a
// removed peer reassigns only its own cells).
func TestClusterRendezvousDeterminism(t *testing.T) {
	s := &Server{cfg: Config{Peers: []string{"http://a:1", "http://b:2", "http://c:3"}}.withDefaults()}
	c := newCluster(s)
	defer c.close()
	s2 := &Server{cfg: Config{Peers: []string{"http://c:3", "http://a:1", "http://b:2"}}.withDefaults()}
	c2 := newCluster(s2)
	defer c2.close()

	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	owners := map[string]int{}
	for _, k := range keys {
		r1 := c.rank(k)
		if got := c.rank(k); got[0] != r1[0] || got[1] != r1[1] {
			t.Fatal("rank is not deterministic across calls")
		}
		// Peer-list order must not matter: both instances agree on the owner.
		if c2.rank(k)[0].url != r1[0].url {
			t.Fatalf("rank depends on peer declaration order for key %s", k)
		}
		owners[r1[0].url]++
	}
	if len(owners) != 3 {
		t.Fatalf("64 keys landed on %d of 3 peers: %v", len(owners), owners)
	}
	// Simulate peer b dying: keys owned by a or c must keep their owner.
	for _, k := range keys {
		full := c.rank(k)
		var survivors []*peer
		for _, p := range full {
			if p.url != "http://b:2" {
				survivors = append(survivors, p)
			}
		}
		if full[0].url != "http://b:2" && survivors[0] != full[0] {
			t.Fatalf("losing peer b reassigned key %s away from its live owner", k)
		}
	}
}

// TestClusterConfigValidate pins the config surface.
func TestClusterConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{}, true},
		{Config{Role: RoleWorker}, true},
		{Config{Role: RoleWorker, Peers: []string{"http://h:1"}}, true},
		{Config{Role: RoleCoordinator, Peers: []string{"http://h:1"}}, true},
		{Config{Role: "boss"}, false},
		{Config{Role: RoleCoordinator}, false}, // nobody to route to
		{Config{Role: RoleCoordinator, Peers: []string{"h:1"}}, false},
		{Config{Peers: []string{"ftp://h:1"}}, false},
		{Config{Peers: []string{"http://"}}, false},
	}
	for i, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d (%+v): err=%v, want ok=%v", i, c.cfg, err, c.ok)
		}
	}
}
