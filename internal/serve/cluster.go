// Cluster mode: N getm-serve processes act as one sweep fabric. A
// coordinator owns no simulations — it routes every validated submission to
// a worker chosen by rendezvous hashing of the run's store key, so a given
// cell always lands on the same worker and the worker-side dedupe tiers
// (fast join, job table, runner singleflight) keep collapsing repeat
// traffic exactly as they do single-node. Three mechanisms keep the fabric
// live under skew and failure:
//
//   - Work-stealing: each peer's /readyz reply carries its live queue
//     headroom (X-Getm-Headroom). When the rendezvous owner reports no
//     headroom, the submission is routed to the next-ranked peer with room
//     instead of bouncing off the owner's 429.
//   - Hedged retries: a forwarded run that has not answered after a
//     p99-derived delay is retried against the next-ranked peer; the first
//     response wins and the loser's request context is canceled.
//     Simulations are deterministic and results content-addressed, so a
//     duplicated execution is wasted work at worst, never wrong data.
//   - Store sync: every node serves its raw record files on
//     GET /v1/store/{key}, and every node's store, on a local miss, fetches
//     from its peers and writes the verified record through. Any node
//     answers GET /v1/runs/{id}; a worker inheriting a dead peer's cells
//     re-simulates only what no surviving store holds.

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"getm/internal/stats"
)

// Cluster wire headers.
const (
	// headerForwarded marks a request already routed by a coordinator; a
	// node receiving it always executes locally, so a misconfigured peer
	// ring cannot loop a request forever.
	headerForwarded = "X-Getm-Forwarded"
	// headerHeadroom carries a node's live queue headroom on /readyz.
	headerHeadroom = "X-Getm-Headroom"
)

// peer is one remote node's tracked state: liveness and headroom from the
// health prober, plus the per-peer counters behind the /metrics peers table.
type peer struct {
	url  string // base URL, no trailing slash
	name string // bounded metrics label: URL minus scheme

	healthy  atomic.Bool
	headroom atomic.Int64

	forwarded atomic.Int64 // submissions routed here
	stolen    atomic.Int64 // submissions absorbed here because the owner was saturated
	hedged    atomic.Int64 // hedge requests sent here
	failed    atomic.Int64 // transport failures talking to this peer
	fills     atomic.Int64 // store records fetched from here
}

// cluster is the peer-facing half of a Server: the peer table, the health
// prober, the forwarding client, and the latency tracker the hedge delay
// derives from.
type cluster struct {
	s     *Server
	peers []*peer
	hc    *http.Client

	mu     sync.Mutex
	fwdLat stats.LogHist // forward round-trip latency, µs

	quit chan struct{}
	wg   sync.WaitGroup
}

func newCluster(s *Server) *cluster {
	c := &cluster{
		s: s,
		// Transport defaults suffice: forwards are bounded per-request by
		// context, probes by their own short deadline.
		hc:   &http.Client{},
		quit: make(chan struct{}),
	}
	for _, raw := range s.cfg.Peers {
		u := strings.TrimRight(raw, "/")
		p := &peer{url: u, name: trimScheme(u)}
		p.healthy.Store(true) // optimistic until the first probe or failure
		c.peers = append(c.peers, p)
	}
	c.wg.Add(1)
	go c.probeLoop()
	return c
}

func trimScheme(u string) string {
	if i := strings.Index(u, "://"); i >= 0 {
		return u[i+3:]
	}
	return u
}

// close stops the prober. In-flight forwards finish under their own request
// contexts.
func (c *cluster) close() {
	select {
	case <-c.quit:
	default:
		close(c.quit)
	}
	c.wg.Wait()
}

// routesRemotely reports whether this request should be forwarded to a peer
// rather than executed locally: the node is a coordinator with a cluster,
// and the request did not already come from one (the forwarded marker is the
// loop breaker — a forwarded request always executes where it lands).
func (s *Server) routesRemotely(r *http.Request) bool {
	return s.cluster != nil && s.cfg.Role == RoleCoordinator && r.Header.Get(headerForwarded) == ""
}

// rank orders every peer by rendezvous (highest-random-weight) hash of the
// store key: each peer scores fnv64a(key|url) and the key's owner is the top
// score. Any two nodes agree on the order without coordination, and removing
// a peer only reassigns that peer's cells.
func (c *cluster) rank(key string) []*peer {
	type scored struct {
		p     *peer
		score uint64
	}
	rs := make([]scored, len(c.peers))
	for i, p := range c.peers {
		h := fnv.New64a()
		io.WriteString(h, key)
		io.WriteString(h, "|")
		io.WriteString(h, p.url)
		rs[i] = scored{p, h.Sum64()}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].score != rs[j].score {
			return rs[i].score > rs[j].score
		}
		return rs[i].p.url < rs[j].p.url
	})
	out := make([]*peer, len(rs))
	for i, r := range rs {
		out[i] = r.p
	}
	return out
}

// plan builds the forward order for one store key: healthy peers in
// rendezvous rank, with a saturated owner demoted behind peers that still
// have headroom (work-stealing — the steal is attributed to the peer that
// absorbs the work). An empty plan means no healthy peer exists.
func (c *cluster) plan(key string) (targets []*peer, stole bool) {
	for _, p := range c.rank(key) {
		if p.healthy.Load() {
			targets = append(targets, p)
		}
	}
	if len(targets) < 2 || targets[0].headroom.Load() > 0 {
		return targets, false
	}
	for i := 1; i < len(targets); i++ {
		if targets[i].headroom.Load() > 0 {
			owner := targets[0]
			copy(targets, targets[1:i+1])
			targets[i] = owner
			return targets, true
		}
	}
	return targets, false
}

// fwdResult is one peer's answer (or transport failure).
type fwdResult struct {
	peer   *peer
	status int
	header http.Header
	body   []byte
	err    error
}

// send issues one forwarded request and reads the full response. Transport
// failures mark the peer unhealthy immediately (the prober restores it);
// any HTTP response — success or shed — counts as the peer answering.
func (c *cluster) send(ctx context.Context, p *peer, method, path string, body []byte, client string) fwdResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, p.url+path, rd)
	if err != nil {
		return fwdResult{peer: p, err: err}
	}
	req.Header.Set(headerForwarded, "1")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if client != "" {
		// Preserve the end client's identity so worker-side quotas, fair
		// queueing, and per-client metrics see the tenant, not the
		// coordinator.
		req.Header.Set(c.s.cfg.ClientHeader, client)
	}
	t0 := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		p.failed.Add(1)
		p.healthy.Store(false)
		return fwdResult{peer: p, err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		p.failed.Add(1)
		return fwdResult{peer: p, err: err}
	}
	c.mu.Lock()
	c.fwdLat.Add(time.Since(t0).Microseconds())
	c.mu.Unlock()
	return fwdResult{peer: p, status: resp.StatusCode, header: resp.Header, body: b}
}

// hedgeDelay is how long a forwarded run may stay unanswered before a hedge
// launches: the configured fixed delay, else 1.5× the observed forward p99,
// clamped to [5ms, 2s], with a 50ms floor until enough samples exist.
func (c *cluster) hedgeDelay() time.Duration {
	if d := c.s.cfg.HedgeDelay; d > 0 {
		return d
	}
	c.mu.Lock()
	n := c.fwdLat.Total()
	p99 := c.fwdLat.Quantile(0.99)
	c.mu.Unlock()
	if n < 16 || p99 <= 0 {
		return 50 * time.Millisecond
	}
	d := time.Duration(p99*1.5) * time.Microsecond
	return min(max(d, 5*time.Millisecond), 2*time.Second)
}

// forwardTimeout bounds one forwarded submission: the run's own wall-clock
// deadline plus transport slack.
func (c *cluster) forwardTimeout(sp *RunSpec) time.Duration {
	t := c.s.cfg.RequestTimeout
	if d := time.Duration(sp.TimeoutMS) * time.Millisecond; d > 0 && d < t {
		t = d
	}
	return t + 10*time.Second
}

// forwardRun routes one validated submission: rendezvous owner first
// (saturation-stolen if needed), a hedge to the next-ranked peer when the
// owner is slow, immediate failover on transport errors, first response
// relayed, losers canceled.
func (c *cluster) forwardRun(w http.ResponseWriter, r *http.Request, sp RunSpec, client string, start time.Time) {
	s := c.s
	if s.pool.draining.Load() {
		s.met.rejected.Add(1)
		s.met.clientShed(client, 1)
		w.Header().Set("Connection", "close")
		writeError(w, http.StatusServiceUnavailable, errors.New("server is draining"))
		return
	}
	id := s.runIDFor(&sp)
	targets, stole := c.plan(baseID(id))
	if len(targets) == 0 {
		s.met.rejected.Add(1)
		s.met.clientShed(client, 1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("no healthy workers"))
		return
	}
	body, err := json.Marshal(sp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("encode spec: %w", err))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), c.forwardTimeout(&sp))
	defer cancel()
	results := make(chan fwdResult, len(targets))
	cancels := make([]context.CancelFunc, 0, len(targets))
	defer func() {
		for _, cf := range cancels {
			cf()
		}
	}()
	launch := func(p *peer, hedge bool) {
		p.forwarded.Add(1)
		if hedge {
			p.hedged.Add(1)
			s.met.hedges.Add(1)
		}
		actx, acancel := context.WithCancel(ctx)
		cancels = append(cancels, acancel)
		go func() {
			results <- c.send(actx, p, "POST", "/v1/runs", body, client)
		}()
	}

	next := 0 // index into targets of the next peer to try
	launch(targets[next], false)
	if stole {
		targets[0].stolen.Add(1)
	}
	next++
	pending := 1
	hedgeTimer := time.NewTimer(c.hedgeDelay())
	defer hedgeTimer.Stop()
	for {
		select {
		case res := <-results:
			pending--
			if res.err == nil {
				// First answer wins — relay it; the deferred cancels reel in
				// any hedge still in flight.
				relayResponse(w, res)
				s.span(stageRespond, client, id, uint64(time.Since(start).Microseconds()), 0)
				return
			}
			// Transport failure: fail over to the next target immediately.
			if next < len(targets) {
				launch(targets[next], false)
				next++
				pending++
			} else if pending == 0 {
				s.met.rejected.Add(1)
				s.met.clientShed(client, 1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusBadGateway, fmt.Errorf("all workers unreachable: %v", res.err))
				return
			}
		case <-hedgeTimer.C:
			// The owner is slow; hedge once against the next-ranked peer.
			if next < len(targets) {
				launch(targets[next], true)
				next++
				pending++
			}
		case <-ctx.Done():
			return // client gone or deadline passed; nothing useful to write
		}
	}
}

// relayResponse writes a peer's answer through to the submitting client,
// preserving the headers the serving API documents.
func relayResponse(w http.ResponseWriter, res fwdResult) {
	for _, h := range []string{"Content-Type", "Retry-After", "X-Getm-Timings", "X-Getm-Shed"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// forwardBatch shards one batch submission: each spec is validated and
// quota-checked locally, valid specs are grouped by their planned worker,
// the sub-batches forward concurrently, and the responses reassemble in
// submission order. Sub-batches fail over peer by peer on transport errors
// (no hedging: a batch's loss profile is dominated by sharding, and the
// per-run path covers tail latency); specs no healthy peer could take are
// shed. The X-Getm-Shed header sums local sheds and every sub-batch's.
func (c *cluster) forwardBatch(w http.ResponseWriter, r *http.Request, specs []RunSpec, client string, start time.Time) {
	s := c.s
	resps := make([][]byte, len(specs))
	shed := 0
	groups := make(map[*peer][]int) // planned primary -> spec indices
	plans := make(map[*peer][]*peer)
	for i := range specs {
		sp := &specs[i]
		sp.normalize()
		if err := sp.validate(s.cfg.MaxScale); err != nil {
			resps[i] = marshalResponse(&Response{Status: "invalid", Error: err.Error()})
			continue
		}
		s.met.policyRequest(sp.policyLabel(), 1)
		if s.quotas != nil {
			if ok, _ := s.quotas.allow(client, time.Now()); !ok {
				s.met.rejected.Add(1)
				s.met.quotaRejected.Add(1)
				s.met.clientShed(client, 1)
				s.span(stageQuota, client, "", 0, 0)
				resps[i] = marshalResponse(&Response{Status: "shed", Error: "over per-client quota"})
				shed++
				continue
			}
		}
		id := s.runIDFor(sp)
		targets, stolen := c.plan(baseID(id))
		if len(targets) == 0 {
			s.met.rejected.Add(1)
			s.met.clientShed(client, 1)
			resps[i] = marshalResponse(&Response{Status: "shed", Error: "no healthy workers"})
			shed++
			continue
		}
		if stolen {
			targets[0].stolen.Add(1)
		}
		groups[targets[0]] = append(groups[targets[0]], i)
		plans[targets[0]] = targets
	}

	// Forward every group concurrently; within a group, fail over through
	// the plan on transport errors.
	var (
		wg      sync.WaitGroup
		respMu  sync.Mutex
		fwdShed int
	)
	for p, idxs := range groups {
		wg.Add(1)
		go func(targets []*peer, idxs []int) {
			defer wg.Done()
			sub := make([]RunSpec, len(idxs))
			timeout := time.Duration(0)
			for j, i := range idxs {
				sub[j] = specs[i]
				timeout = max(timeout, c.forwardTimeout(&specs[i]))
			}
			body, err := json.Marshal(sub)
			entries, subShed := c.sendSubBatch(r, targets, body, client, timeout, len(idxs), err)
			respMu.Lock()
			defer respMu.Unlock()
			fwdShed += subShed
			for j, i := range idxs {
				resps[i] = entries[j]
			}
		}(plans[p], idxs)
	}
	wg.Wait()
	shed += fwdShed

	w.Header().Set("X-Getm-Shed", strconv.Itoa(shed))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("["))
	for i := range resps {
		if i > 0 {
			w.Write([]byte(","))
		}
		if resps[i] == nil { // unreachable, but never render invalid JSON
			resps[i] = []byte(`{"status":"failed","error":"no response"}`)
		}
		w.Write(resps[i])
	}
	w.Write([]byte("]\n"))
	s.span(stageRespond, client, "", uint64(time.Since(start).Microseconds()), uint64(len(specs)))
}

// sendSubBatch forwards one peer group's sub-batch, failing over through
// targets. It returns one rendered entry per spec and the shed count:
// entries shed remotely (parsed from X-Getm-Shed) or locally when every
// target failed.
func (c *cluster) sendSubBatch(r *http.Request, targets []*peer, body []byte, client string, timeout time.Duration, n int, encErr error) ([][]byte, int) {
	shedAll := func(msg string) ([][]byte, int) {
		entry := marshalResponse(&Response{Status: "shed", Error: msg})
		out := make([][]byte, n)
		for i := range out {
			out[i] = entry
			c.s.met.rejected.Add(1)
		}
		c.s.met.clientShed(client, int64(n))
		return out, n
	}
	if encErr != nil {
		return shedAll("encode batch: " + encErr.Error())
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	for _, p := range targets {
		p.forwarded.Add(int64(n))
		res := c.send(ctx, p, "POST", "/v1/runs/batch", body, client)
		if res.err != nil {
			continue // transport failure: next target
		}
		if res.status != http.StatusOK {
			// The whole sub-batch was refused (e.g. the peer started
			// draining); relay the refusal per entry.
			return shedAll(fmt.Sprintf("worker %s refused batch: %d", p.name, res.status))
		}
		var entries []json.RawMessage
		if err := json.Unmarshal(res.body, &entries); err != nil || len(entries) != n {
			return shedAll("worker " + p.name + " returned a malformed batch response")
		}
		out := make([][]byte, n)
		for i := range entries {
			out[i] = entries[i]
		}
		subShed, _ := strconv.Atoi(res.header.Get("X-Getm-Shed"))
		return out, subShed
	}
	return shedAll("no reachable worker")
}

func marshalResponse(resp *Response) []byte {
	b, err := json.Marshal(resp)
	if err != nil {
		return []byte(`{"status":"failed","error":"encode error"}`)
	}
	return b
}

// runIDFor resolves a validated spec's public run id, caching the content
// address exactly like the admission fast path.
func (s *Server) runIDFor(sp *RunSpec) string {
	if v, ok := s.idCache.Load(sp.cacheKey()); ok {
		return v.(string)
	}
	r := s.pool.runnerFor(*sp)
	id := runID(r.StoreKey(sp.job()), *sp)
	s.idCache.Store(sp.cacheKey(), id)
	return id
}

// proxyStatus resolves a status read for a run this node does not hold:
// peers are asked in rendezvous order (stealing and hedging can land a cell
// off-owner, so a 404 tries the next) and the first definite answer is
// relayed. The forwarded marker keeps the fan-out single-hop.
func (c *cluster) proxyStatus(w http.ResponseWriter, r *http.Request, id string) bool {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	for _, p := range c.rank(baseID(id)) {
		if !p.healthy.Load() {
			continue
		}
		res := c.send(ctx, p, "GET", "/v1/runs/"+id, nil, "")
		if res.err != nil || res.status == http.StatusNotFound {
			continue
		}
		relayResponse(w, res)
		return true
	}
	return false
}

// fill is the store's peer-fetch hook: on a local miss, ask each healthy
// peer (rendezvous order, owner first) for the raw record. The store layer
// verifies the bytes and writes them through, so this returns raw wire
// bytes, trusted by no one.
func (c *cluster) fill(key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, p := range c.rank(key) {
		if !p.healthy.Load() {
			continue
		}
		res := c.send(ctx, p, "GET", "/v1/store/"+key, nil, "")
		if res.err != nil || res.status != http.StatusOK {
			continue
		}
		p.fills.Add(1)
		c.s.met.storeFills.Add(1)
		return res.body, true
	}
	return nil, false
}

// probeLoop refreshes every peer's liveness and headroom each interval: a
// transport failure or a draining peer is out of the routing plan; any
// /readyz answer (ready or saturated) restores liveness and updates the
// headroom that work-stealing keys off.
func (c *cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.s.cfg.ProbeInterval)
	defer t.Stop()
	c.probeOnce()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.probeOnce()
		}
	}
}

func (c *cluster) probeOnce() {
	var wg sync.WaitGroup
	for _, p := range c.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.s.cfg.ProbeInterval*4)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, "GET", p.url+"/readyz", nil)
			if err != nil {
				return
			}
			resp, err := c.hc.Do(req)
			if err != nil {
				p.failed.Add(1)
				p.healthy.Store(false)
				p.headroom.Store(0)
				return
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 64))
			resp.Body.Close()
			if h, err := strconv.Atoi(resp.Header.Get(headerHeadroom)); err == nil {
				p.headroom.Store(int64(h))
			}
			// Draining means gone-soon: stop routing there. Saturated stays
			// healthy — it can still absorb hedges and answer status reads —
			// but with zero headroom the planner steers new work away.
			p.healthy.Store(!strings.HasPrefix(strings.TrimSpace(string(body)), "draining"))
		}(p)
	}
	wg.Wait()
}
