package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"getm/internal/store"
)

// TestRetryAfterLiveOccupancy pins the Retry-After estimate to the work
// actually waiting, on both shed paths. The regression: the estimate used
// cfg.QueueDepth, so a client shed by its per-client cap in front of a
// nearly-empty queue was told to back off as if the whole queue were full.
func TestRetryAfterLiveOccupancy(t *testing.T) {
	var execs atomic.Int64
	release := make(chan struct{})

	// Per-client-cap path: a deep shared queue (64) that stays nearly empty,
	// a per-client backlog of 1, and a seeded 5s mean latency. The shed
	// client's real wait is its one queued request plus its own slot — ~10s —
	// not the 320s a full 64-deep queue would imply.
	s := New(Config{Workers: 1, QueueDepth: 64, PerClientQueue: 1})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer func() {
		close(release)
		ts.Close()
		s.Drain(time.Second)
	}()
	s.met.observe(5*time.Second, nil, nil) // mean latency: exactly 5000ms

	post := func(seed int) *http.Response {
		t.Helper()
		return postRun(t, ts.URL, fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d,"async":true}`, seed))
	}
	post(1).Body.Close() // occupies the single worker
	waitInflight(t, s, 1)
	post(2).Body.Close() // the client's one allowed queue slot
	resp := post(3)      // shed: client backlog full, shared queue 1/64 used
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 on the per-client path, got %d", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("bad Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	if ra != 10 {
		t.Fatalf("per-client shed Retry-After = %ds, want 10s ((1 queued + 1)×5s mean); the old full-QueueDepth estimate gives 320s", ra)
	}

	// Queue-full path: occupancy equals capacity, so the live estimate is
	// (capacity+1)×mean — the old behaviour was only correct here.
	var execs2 atomic.Int64
	release2 := make(chan struct{})
	s2 := New(Config{Workers: 1, QueueDepth: 2})
	s2.execute = blockingStub(&execs2, release2)
	ts2 := httptest.NewServer(s2)
	defer func() {
		close(release2)
		ts2.Close()
		s2.Drain(time.Second)
	}()
	s2.met.observe(5*time.Second, nil, nil)
	for seed := 1; seed <= 3; seed++ { // 1 running + 2 queued
		r := postRun(t, ts2.URL, fmt.Sprintf(`{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":%d,"async":true}`, seed))
		r.Body.Close()
		if seed == 1 {
			waitInflight(t, s2, 1)
		}
	}
	resp2 := postRun(t, ts2.URL, `{"protocol":"getm","benchmark":"ht-h","scale":0.1,"seed":9,"async":true}`)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 on the queue-full path, got %d", resp2.StatusCode)
	}
	ra2, _ := strconv.Atoi(resp2.Header.Get("Retry-After"))
	if ra2 != 15 {
		t.Fatalf("queue-full shed Retry-After = %ds, want 15s ((2 queued + 1)×5s mean)", ra2)
	}
}

// waitInflight blocks until n workers report busy, so queue-occupancy
// assertions are not racing admission.
func waitInflight(t *testing.T, s *Server, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.running.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the run (inflight %d, want %d)", s.pool.running.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestParseRunID pins the wire-shape validation of run ids.
func TestParseRunID(t *testing.T) {
	valid := strings.Repeat("0123456789abcdef", 4) // 64 hex chars
	cases := []struct {
		id   string
		ok   bool
		base string
	}{
		{valid, true, valid},
		{valid + "-b1", true, valid},
		{valid + "-b18446744073709551615", true, valid}, // max uint64
		{"", false, ""},
		{"abc", false, ""},
		{valid[:63], false, ""},                          // truncated key
		{valid + "0", false, ""},                         // 65 chars, no suffix marker
		{strings.ToUpper(valid), false, ""},              // uppercase hex
		{strings.Replace(valid, "0", "g", 1), false, ""}, // non-hex
		{valid + "-", false, ""},                         // bare dash
		{valid + "-b", false, ""},                        // suffix without digits
		{valid + "-b0", false, ""},                       // zero budget never gets a suffix
		{valid + "-b12x", false, ""},                     // trailing junk
		{valid + "-b184467440737095516160", false, ""},   // uint64 overflow
		{valid + "-c12", false, ""},                      // wrong suffix marker
		{valid + "/timings", false, ""},
		{"../../" + valid[:58], false, ""},
		{strings.Repeat("a", 10_000), false, ""}, // over-long, all hex: no suffix marker
	}
	for _, c := range cases {
		base, ok := parseRunID(c.id)
		if ok != c.ok || base != c.base {
			t.Errorf("parseRunID(%.80q) = (%q, %v), want (%q, %v)", c.id, base, ok, c.base, c.ok)
		}
	}
}

// TestStatusMalformedIDs hits GET /v1/runs/{id} (and /timings) with every
// malformed-id shape: each must be a clean 404 — never a 500, a panic, or a
// filesystem probe outside the store (the encoded-traversal case decodes to
// a path-escaping id).
func TestStatusMalformedIDs(t *testing.T) {
	dir := t.TempDir()
	var execs atomic.Int64
	release := make(chan struct{})
	close(release)
	s := New(Config{Workers: 1, QueueDepth: 4, Store: store.Open(dir)})
	s.execute = blockingStub(&execs, release)
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer s.Drain(time.Second)

	valid := strings.Repeat("ab", 32)
	paths := []string{
		"/v1/runs/%20",            // effectively-empty id
		"/v1/runs/" + valid + "/", // trailing slash
		"/v1/runs/abc",            // short
		"/v1/runs/" + valid + "0", // over-long
		"/v1/runs/" + strings.ToUpper(valid),
		"/v1/runs/" + valid + "-b",                     // budget suffix without digits
		"/v1/runs/" + valid + "-bb12",                  // doubled marker
		"/v1/runs/" + valid + "-b99999999999999999999", // overflow
		"/v1/runs/" + strings.Repeat("ff", 4096),       // very long
		"/v1/runs/..%2F..%2F" + valid,                  // encoded traversal: id decodes to ../../<hex>
		"/v1/runs/" + valid,                            // well-formed but unknown
		"/v1/runs/" + valid + "-b123",                  // well-formed budgeted, unknown
		"/v1/runs/" + valid + "/timings",               // timings for an unknown id
		"/v1/store/" + valid,                           // store record endpoint, unknown key
		"/v1/store/..%2F..%2Fescape",                   // store record endpoint, traversal
	}
	for _, p := range paths {
		req, err := http.NewRequest("GET", ts.URL+p, nil)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", p, resp.StatusCode)
		}
	}
}
